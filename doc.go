// Package repro reproduces Patrick J. McGuire's "A Measurement-Based
// Study of Concurrency in a Multiprocessor" (University of Illinois /
// NASA CR-180318, 1987): a simulated Alliant FX/8 Computational
// Cluster (internal/fx8), a Concentrix-like operating system layer
// (internal/concentrix), a synthetic CSRD-style production workload
// (internal/workload), DAS 9100-class hardware monitoring
// (internal/monitor), the study's concurrency-measurement methodology
// (internal/core), and SAS-style analysis rendering (internal/sas,
// internal/experiments).
//
// Campaigns and sweeps execute on the shared session-execution engine
// (internal/engine): independent sessions — each booting its own
// machine, OS and workload from a derived seed — fan out over a
// bounded worker pool and are reduced in session order, so results
// are identical for every worker count.  core.RunStudyWorkers and the
// experiments Sweep*Workers variants expose the knob; the cmd tools
// surface it as -workers (default: one worker per CPU).
//
// The session lifecycle is allocation-free after warm-up: each worker
// rebuilds its session in place on a pooled core.SessionArena —
// Reset()-style reuse of the cluster, OS, analyzer and workload
// generator, with concurrent-loop bodies regenerated into per-CE
// buffers (fx8.Loop.BodyInto) — rather than booting fresh state.
// Reuse is bit-exact, and removing the shared allocator/GC traffic is
// what lets the embarrassingly-parallel campaign actually scale with
// workers.  engine.MapWith threads explicit per-worker state through
// the pool (one state per goroutine, never shared; see the engine
// package docs for the contract).
//
// Completed campaigns flow through a two-tier cache
// (core.StudyCache): an in-process memo (bounded, FIFO-evicted) in
// front of an optional content-addressed on-disk store
// (internal/store), in front of the compute path.  Store entries are
// keyed by a stable hash of the canonically encoded StudyConfig,
// written atomically with a versioned, checksummed header, and
// recomputed when corrupt or format-incompatible; the cmd tools'
// -cache DIR flag and the daemon share one store directory.
// Concurrent requests for the same configuration singleflight down to
// one campaign run.
//
// Where a unit of work executes is abstracted behind engine.Runner
// (unit in, result out): engine.Local computes sessions and sweep
// points in-process, and the internal/remote client shards them
// across a fleet of fx8d backends via POST /v1/run/session and POST
// /v1/run/sweep — rerouting failed units, hedging slow ones, and
// falling back to local compute when no backend answers.  Large
// campaigns batch contiguous session units through POST
// /v1/run/sessions (engine.BatchRunner); the engine caps batch size
// so batching never starves the worker pool, and a backend without
// the endpoint degrades quietly to per-unit requests.  Results are
// reassembled in unit order, so sharded output — batched or not — is
// byte-identical to local output for every backend count; cmd/sweep,
// cmd/measure and cmd/figures surface the fleet as -backends
// host:port,....  The in-process memo behind the caches (engine.Memo)
// never evicts an in-flight entry, preserving singleflight under cap
// pressure.
//
// The fx8d daemon (cmd/fx8d, internal/service) serves the campaign's
// artefacts over HTTP: the study summary, every table and figure, and
// the parameter sweeps as addressable JSON resources, plus per-unit
// and batched execution endpoints for sharding, an SSE progress
// stream for in-flight campaigns, per-endpoint latency and cache
// hit-rate counters, bounded request admission with a bounded wait
// queue (excess load shed as 429 + Retry-After), strong ETags with
// If-None-Match revalidation on artefact endpoints, and graceful
// shutdown.  cmd/loadgen drives the daemon with deterministic
// open-loop traffic — steady or bursty Poisson arrivals over
// artefact, unit and mixed request mixes — and records the resulting
// latency/throughput/shed profile as a perf set for the CI bench
// gate (make bench-load).
//
// The root package holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation, plus ablation benchmarks
// for the design choices documented in DESIGN.md.
//
// # Benchmarking
//
// The session hot path is benchmarked at every layer: the fx8 cluster
// step loop, the shared cache and memory buses, the Concentrix
// scheduling tick, the monitor's sampling loop, both session kinds,
// the sweep point, and the daemon's warm /v1/study serving path.
// make bench records one parsed result set per layer
// (BENCH_<layer>.json) through internal/perf, and cmd/benchdiff
// parses, summarizes and diffs those sets against a regression
// threshold — the same code path the CI bench-gate job uses to
// compare a pull request against its merge base and fail the build
// on a hot-path regression.  Optimizations are pinned behavior-
// preserving by the golden paper-scale test and byte-identical
// canonical study output.
package repro
