// Package repro reproduces Patrick J. McGuire's "A Measurement-Based
// Study of Concurrency in a Multiprocessor" (University of Illinois /
// NASA CR-180318, 1987): a simulated Alliant FX/8 Computational
// Cluster (internal/fx8), a Concentrix-like operating system layer
// (internal/concentrix), a synthetic CSRD-style production workload
// (internal/workload), DAS 9100-class hardware monitoring
// (internal/monitor), the study's concurrency-measurement methodology
// (internal/core), and SAS-style analysis rendering (internal/sas,
// internal/experiments).
//
// The root package holds the benchmark harness: one benchmark per
// table and figure of the paper's evaluation, plus ablation benchmarks
// for the design choices documented in DESIGN.md.
package repro
