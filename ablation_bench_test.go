package repro

// Ablation benchmarks for the design choices DESIGN.md calls out: each
// toggles one mechanism of the simulator or workload and reports the
// resulting shift in the measure that mechanism is supposed to
// explain.  They double as evidence that the reproduced effects are
// caused by the modelled mechanisms rather than artefacts.

import (
	"testing"

	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/workload"
)

func paperMixProfile(seed uint64) workload.Profile {
	return workload.PaperMix(seed)
}

// transitionShare2 runs transition-triggered captures on a system with
// the given machine config and workload profile and returns the
// 2-active share plus the CE 0+7 share of per-processor transition
// activity.
func transitionShare2(cfg fx8.Config, prof workload.Profile, buffers int) (share2, ce07 float64) {
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	gen := workload.NewGenerator(prof)
	for _, p := range gen.Session(4_000_000) {
		sys.Submit(p)
	}
	ctl := monitor.NewController(sys)
	var stats core.TransitionStats
	for i := 0; i < buffers; i++ {
		recs, ok := ctl.AcquireBuffer(monitor.TriggerTransition, 400_000)
		if !ok {
			continue
		}
		for _, r := range recs {
			stats.AddRecord(r)
		}
	}
	var profTotal int
	for _, c := range stats.Prof {
		profTotal += c
	}
	if profTotal > 0 {
		ce07 = float64(stats.Prof[0]+stats.Prof[7]) / float64(profTotal)
	}
	return stats.TransitionShare(2), ce07
}

// BenchmarkAblation_LeftoverIterations compares transition shape with
// and without the trips ≡ 2 (mod 8) bias — the section 4.3 "leftover
// iterations" hypothesis.
func BenchmarkAblation_LeftoverIterations(b *testing.B) {
	var withBias, without float64
	for i := 0; i < b.N; i++ {
		withBias, without = 0, 0
		// Average over several sessions: a single session's handful
		// of buffers is dominated by whichever loops happened to end
		// in the capture windows.
		const sessions = 3
		for s := uint64(0); s < sessions; s++ {
			p := paperMixProfile(70 + s)
			p.LeftoverTwoProb = 1.0
			// Resident-only loops isolate the leftover mechanism
			// from streaming-induced desynchronization.
			p.StreamingProb = 0
			sh, _ := transitionShare2(fx8.DefaultConfig(), p, 16)
			withBias += sh / sessions
			p = paperMixProfile(70 + s)
			p.LeftoverTwoProb = 0.0
			p.StreamingProb = 0
			sh, _ = transitionShare2(fx8.DefaultConfig(), p, 16)
			without += sh / sessions
		}
	}
	b.ReportMetric(withBias, "share2/biased")
	b.ReportMetric(without, "share2/unbiased")
}

// BenchmarkAblation_CrossbarPriority compares the CE 0/7 dominance of
// transition activity with and without the machine's priority
// asymmetry (CCB dispatch chain + crossbar bias).
func BenchmarkAblation_CrossbarPriority(b *testing.B) {
	var withBias, without float64
	for i := 0; i < b.N; i++ {
		cfg := fx8.DefaultConfig()
		_, withBias = transitionShare2(cfg, paperMixProfile(78), 12)
		cfg.CCBDispatchExtra = nil
		cfg.ArbBias = nil
		_, without = transitionShare2(cfg, paperMixProfile(78), 12)
	}
	b.ReportMetric(withBias, "ce07/asymmetric")
	b.ReportMetric(without, "ce07/uniform")
}

// loopMissRate runs one 8-wide numeric job built from the profile and
// returns the miss-qualified fraction of CE bus cycles during its
// execution.
func loopMissRate(prof workload.Profile, seed uint64) float64 {
	cl := fx8.New(fx8.DefaultConfig())
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	gen := workload.NewGenerator(prof)
	p, _ := gen.Job(workload.KindNumeric)
	sys.Submit(p)
	var counts monitor.EventCounts
	for i := 0; i < 2_000_000 && !sys.Drained(); i++ {
		sys.Step()
		counts.AddRecord(cl.Snapshot())
	}
	return counts.MissRate()
}

// BenchmarkAblation_DataIntensity compares concurrent-code miss rates
// between a fully streaming and a fully resident loop mix — the
// section 5.3 explanation for Missrate's Cw sensitivity.
func BenchmarkAblation_DataIntensity(b *testing.B) {
	var streaming, resident float64
	for i := 0; i < b.N; i++ {
		p := paperMixProfile(79)
		p.StreamingProb = 1.0
		streaming = loopMissRate(p, 79)
		p = paperMixProfile(79)
		p.StreamingProb = 0.0
		resident = loopMissRate(p, 79)
	}
	b.ReportMetric(streaming, "missrate/streaming")
	b.ReportMetric(resident, "missrate/resident")
}

// clusterMissRatio runs one shared-walk loop at the given cluster size
// and returns the shared-cache miss ratio — the cross-CE locality
// effect of section 5.1 predicts near-insensitivity to the processor
// count.
func clusterMissRatio(size int) float64 {
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	cl := fx8.New(cfg)
	loop := workload.NewLoop(workload.LoopParams{
		Trips:             128,
		ChunksMean:        4,
		VecLen:            32,
		ReuseBase:         0x100000,
		ReuseBytes:        64 << 10,
		FreshBase:         0x400000,
		FreshBytesPerIter: 512,
		VComputeCycles:    40,
		ScalarCycles:      16,
		CodeBase:          0x3000,
		Seed:              5,
	})
	serial := &fx8.SliceStream{Instrs: []fx8.Instr{workload.CStart(loop, 0)}}
	if err := cl.Run(serial, size); err != nil {
		panic(err)
	}
	for i := 0; i < 3_000_000 && !cl.Idle(); i++ {
		cl.Step()
	}
	return cl.Cache().MissRatio()
}

// BenchmarkAblation_CrossCELocality compares the cache miss ratio of
// the same loop run 2-wide and 8-wide: shared data locality across
// processors should keep the ratios close (Missrate ≁ Pc).
func BenchmarkAblation_CrossCELocality(b *testing.B) {
	var wide, narrow float64
	for i := 0; i < b.N; i++ {
		narrow = clusterMissRatio(2)
		wide = clusterMissRatio(8)
	}
	b.ReportMetric(narrow, "missratio/2CE")
	b.ReportMetric(wide, "missratio/8CE")
}

// depLoopBusBusy runs one dependence-synchronized loop and returns the
// CE bus busy fraction while it executes — dependence waiting uses the
// CCB, not the memory system, so bus activity flattens (section 5.3).
func depLoopBusBusy(dep int) float64 {
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	cl := fx8.New(cfg)
	loop := workload.NewLoop(workload.LoopParams{
		Trips:          128,
		Dep:            dep,
		ChunksMean:     4,
		VecLen:         32,
		ReuseBase:      0x100000,
		ReuseBytes:     64 << 10,
		VComputeCycles: 40,
		ScalarCycles:   16,
		CodeBase:       0x3000,
		Seed:           6,
	})
	serial := &fx8.SliceStream{Instrs: []fx8.Instr{workload.CStart(loop, 0)}}
	if err := cl.Run(serial, 8); err != nil {
		panic(err)
	}
	var counts monitor.EventCounts
	for i := 0; i < 3_000_000 && !cl.Idle(); i++ {
		cl.Step()
		counts.AddRecord(cl.Snapshot())
	}
	return counts.BusBusy()
}

// BenchmarkAblation_DependencyWaiting compares bus activity of the
// same loop with and without a tight loop-carried dependence.
func BenchmarkAblation_DependencyWaiting(b *testing.B) {
	var free, dep float64
	for i := 0; i < b.N; i++ {
		free = depLoopBusBusy(0)
		dep = depLoopBusBusy(3)
	}
	b.ReportMetric(free, "busbusy/independent")
	b.ReportMetric(dep, "busbusy/dep3")
}
