GO ?= go

.PHONY: all build fmt vet lint test race chaos bench bench-coord bench-load profile ci

all: build

build:
	$(GO) build ./...

# fmt fails if any file is not gofmt-clean, printing the offenders.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint runs fxlint, the repo's own analyzer suite (see internal/lint):
# determinism, layering, resetcomplete and truncation.  The second
# pass analyzes the GOARCH=386 file set: fxlint itself is built
# natively and reads GOARCH at run time (the loader passes it to
# go list and go/types), so 386-only files and sizes are covered
# without executing a 386 binary.
lint:
	@mkdir -p .bin
	$(GO) build -o .bin/fxlint ./cmd/fxlint
	.bin/fxlint ./...
	GOARCH=386 .bin/fxlint ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite.  -short skips the paper-scale
# calibration campaign, which is prohibitively slow under the race
# detector; the engine's fan-out paths are all exercised regardless.
race:
	$(GO) test -race -short ./...

# chaos runs the seeded fault-injection suite (see internal/chaos and
# the "Fault tolerance & chaos testing" README section) under the
# race detector — the same invocation as CI's chaos job.  Reproduce a
# nightly failure by exporting its uploaded seeds first:
#
#   CHAOS_SEEDS=12345,67890 make chaos
chaos:
	$(GO) test -race -count=1 -run TestChaos ./internal/integration

# bench runs one benchmark set per layer of the stack and records
# each as a parsed result set in BENCH_<layer>.json through
# cmd/benchdiff, the same code path the CI bench-gate uses to diff a
# PR against its merge base (see .github/workflows/ci.yml).  Every
# layer runs -count >= 2 and the parser keeps the fastest run,
# damping machine noise before the 15% gate sees the numbers.
#
#   make bench                # all layers, then a parsed summary
#   benchdiff old/ new/       # diff two directories of BENCH files
#
# BENCHTIME scales the micro-benchmark runs; session-, sweep- and
# study-level benchmarks use fixed iteration counts because one op
# already spans millions of simulated cycles.
BENCHTIME ?= 0.2s

# bench_layer runs one layer's benchmarks as test2json events and
# parses them into $(1); $(2) is the bench regex, $(3) the package,
# $(4) extra go test flags.
define bench_layer
	$(GO) test -json -run '^$$' -bench '$(2)' $(4) $(3) > .bench.tmp
	$(GO) run ./cmd/benchdiff -parse -o $(1) .bench.tmp
endef

bench:
	$(call bench_layer,BENCH_fx8.json,ClusterStep|SharedCacheLookup|MemSystem,./internal/fx8,-benchtime $(BENCHTIME) -count 3)
	$(call bench_layer,BENCH_concentrix.json,SystemStep|VMTouch,./internal/concentrix,-benchtime $(BENCHTIME) -count 3)
	$(call bench_layer,BENCH_monitor.json,CollectSample|DASObserve,./internal/monitor,-benchtime $(BENCHTIME) -count 3)
	$(call bench_layer,BENCH_core.json,RunRandomSession|RunTriggeredSession,./internal/core,-benchtime 10x -count 2)
	$(call bench_layer,BENCH_experiments.json,SweepPoint,./internal/experiments,-benchtime 5x -count 2)
	$(call bench_layer,BENCH_service.json,ServiceStudy|MetricsRecord,./internal/service,-benchtime 20x -count 2)
	$(call bench_layer,BENCH_obs.json,HistogramObserve|PrometheusRender|MutexMapRecord|TracerRecord,./internal/obs,-benchtime $(BENCHTIME) -count 3)
	$(call bench_layer,BENCH_study.json,RunStudy,./internal/core,-benchtime 1x -count 3)
	$(call bench_layer,BENCH_coord.json,JobCold|JobResume,./internal/coord,-benchtime 5x -count 2)
	@rm -f .bench.tmp
	$(GO) run ./cmd/benchdiff -print BENCH_fx8.json BENCH_concentrix.json BENCH_monitor.json BENCH_core.json BENCH_experiments.json BENCH_service.json BENCH_obs.json BENCH_study.json BENCH_coord.json

# bench-coord measures the fleet coordinator's job machinery alone:
# the same campaign job run cold (every unit computed) and resumed
# against a warm unit cache (every unit replayed from the store) —
# the checkpoint/resume overhead the /v1/jobs API rides on.
bench-coord:
	$(call bench_layer,BENCH_coord.json,JobCold|JobResume,./internal/coord,-benchtime 5x -count 2)
	@rm -f .bench.tmp
	$(GO) run ./cmd/benchdiff -print BENCH_coord.json

# bench-load measures the fx8d service under open-loop traffic with
# cmd/loadgen: steady and bursty arrivals over the artefact, unit and
# mixed request mixes, recorded as BENCH_service-load.json (p50
# latency gates, p95/p99/rps/error/shed rates inform) and diffed by
# the CI bench gate like any other layer.  LOADGEN_FLAGS passes extra
# harness flags, e.g. -saturate or -slo-p99 50ms.
bench-load:
	$(GO) run ./cmd/loadgen -out BENCH_service-load.json $(LOADGEN_FLAGS)
	$(GO) run ./cmd/benchdiff -print BENCH_service-load.json

# profile records CPU and heap profiles of the session and study
# benchmarks into profiles/ (gitignored), together with the test
# binaries pprof needs to symbolize them.  See README "Profiling" for
# the pprof workflow.
profile:
	mkdir -p profiles
	$(GO) test -run '^$$' -bench 'RunRandomSession|RunTriggeredSession' -benchtime 30x \
		-cpuprofile profiles/session.cpu.pprof -memprofile profiles/session.mem.pprof \
		-o profiles/session.test ./internal/core
	$(GO) test -run '^$$' -bench 'RunStudy/workers=max' -benchtime 1x \
		-cpuprofile profiles/study.cpu.pprof -memprofile profiles/study.mem.pprof \
		-o profiles/study.test ./internal/core
	@echo "profiles written to profiles/; inspect with e.g."
	@echo "  go tool pprof -top profiles/session.test profiles/session.cpu.pprof"
	@echo "  go tool pprof -top -sample_index=alloc_objects profiles/session.test profiles/session.mem.pprof"

ci: fmt vet lint build test race
