GO ?= go

.PHONY: all build vet test race bench ci

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite.  -short skips the paper-scale
# calibration campaign, which is prohibitively slow under the race
# detector; the engine's fan-out paths are all exercised regardless.
race:
	$(GO) test -race -short ./...

bench:
	$(GO) test -bench=BenchmarkRunStudy -benchtime=1x -run=^$$ ./internal/core/

ci: vet build test race
