GO ?= go

.PHONY: all build fmt vet test race bench ci

all: build

build:
	$(GO) build ./...

# fmt fails if any file is not gofmt-clean, printing the offenders.
fmt:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-enabled run of the full suite.  -short skips the paper-scale
# calibration campaign, which is prohibitively slow under the race
# detector; the engine's fan-out paths are all exercised regardless.
race:
	$(GO) test -race -short ./...

# bench runs the campaign benchmark (workers=1 vs workers=max) and
# records the run as test2json events in BENCH_study.json, so CI and
# successive sessions can diff engine throughput mechanically.
bench:
	$(GO) test -json -bench=BenchmarkRunStudy -benchtime=1x -run=^$$ ./internal/core/ > BENCH_study.json
	@grep -o '"Output":".*Benchmark[^"]*"' BENCH_study.json | head -20 || true

ci: fmt vet build test race
