// Transition analysis: reproduce section 4.3 — trigger the analyzer
// on the drop from 8-active to fewer, analyze the captured buffers,
// and render Figures 6 and 7.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/monitor"
)

func main() {
	var all core.TransitionStats
	var buffers int
	for i := 0; i < 3; i++ {
		spec := core.TriggeredSpec{
			Mode:           monitor.TriggerTransition,
			Samples:        10,
			Buffers:        5,
			BudgetCycles:   400_000,
			Seed:           500 + uint64(i),
			WorkloadCycles: 4_000_000,
		}
		ts := core.RunTriggeredSession(i+1, spec)
		buffers += len(ts.Buffers)
		all.Add(core.AnalyzeTransitions(ts.Buffers))
	}
	fmt.Printf("captured %d transition buffers (%d records, %d in transition states)\n\n",
		buffers, all.Records, all.TransitionRecords)

	// Render the figures from a study wrapper holding only the
	// transition analysis.
	st := &core.Study{Transitions: all}
	fmt.Println(experiments.Figure6(st))
	fmt.Println(experiments.Figure7(st))

	fmt.Printf("2-active share of transition states: %.1f%% (paper: 52%%)\n",
		100*all.TransitionShare(2))
	a, b := all.DominantPair()
	fmt.Printf("dominant processors: CE %d and CE %d (paper: CEs 7 and 0)\n", a, b)
}
