// Assembler: write a concurrent program in the fxasm textual format,
// run it on the simulated FX/8, and watch the measures — including a
// trips = 8j+2 loop producing the end-of-loop transition the study's
// section 4.3 analyzes.
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/fxasm"
	"repro/internal/monitor"
)

const program = `
# Setup: scalar prologue.
compute 200
load 0x10000
load 0x10040

# A 34-trip concurrent loop (8*4 + 2: two leftover iterations).
body daxpy
  vload  0x100000, 32, @*256
  vload  0x200000, 32, @*256
  vcompute 32
  vstore 0x200000, 32, @*256
end
cstart trips=34 body=daxpy

# A dependence-carried sweep.
body sweep
  await @-4
  vload  0x300000, 32, @*512
  vcompute 48
  vstore 0x300000, 32, @*512
  advance @
end
cstart trips=24 body=sweep

compute 100
`

func main() {
	prog, err := fxasm.AssembleString(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Assembled serial stream:")
	fmt.Print(fxasm.Disassemble(prog.Serial))
	fmt.Println()

	// Run it bare on the cluster, tracking the active-processor
	// distribution cycle by cycle.
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	cl := fx8.New(cfg)
	if err := cl.Run(prog.Stream(), 8); err != nil {
		log.Fatal(err)
	}
	var counts monitor.EventCounts
	for i := 0; i < 1_000_000 && !cl.Idle(); i++ {
		cl.Step()
		counts.AddRecord(cl.Snapshot())
	}
	m := core.MeasuresFromCounts(counts)
	fmt.Printf("cycles: %d\n", counts.Records)
	fmt.Printf("Cw: %.3f   ", m.Cw)
	if m.Defined {
		fmt.Printf("Pc: %.2f", m.Pc)
	}
	fmt.Println()
	fmt.Println("\nActive-processor distribution (note the transition states):")
	for j := 8; j >= 0; j-- {
		fmt.Printf("  %d active: %6d cycles\n", j, counts.Num[j])
	}
	var await uint64
	for i := 0; i < 8; i++ {
		await += cl.CE(i).AwaitCycles
	}
	fmt.Printf("\ndependence wait cycles (CCB, no bus traffic): %d\n", await)
}
