// Program profile: the study's proposed future work — apply the
// workload-level concurrency measures at the scope of an individual
// program, characterizing its behaviour within the workload
// environment (conclusion, chapter 6).
package main

import (
	"fmt"

	"repro/internal/experiments"
	"repro/internal/workload"
)

func main() {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 3}

	fmt.Print(experiments.ProgramProfileReport("DAXPY n=8192",
		workload.KernelProgram(workload.DAXPY(8192, layout), layout), 8))
	fmt.Println()
	fmt.Print(experiments.ProgramProfileReport("Solver sweep n=128 dist=4",
		workload.KernelProgram(workload.SolverSweep(128, 4, layout), layout), 8))
	fmt.Println()

	// A generated production job, profiled in isolation.
	gen := workload.NewGenerator(workload.PaperMix(11))
	job, _ := gen.Job(workload.KindNumeric)
	fmt.Print(experiments.ProgramProfileReport(job.Name, job.Serial, job.ClusterSize))
}
