// Workload study: reproduce the chapter 4 random-sampling campaign at
// reduced scale — several sessions of five-snapshot samples on a
// production-like workload — and render Table 2 and Figures 3-5.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/monitor"
)

func main() {
	cfg := core.StudyConfig{
		RandomSessions:    4,
		SamplesPerSession: 24,
		Sampling:          monitor.SampleSpec{Snapshots: 5, GapCycles: 20_000},
		BaseSeed:          1987,
	}
	st := core.RunStudy(cfg)

	fmt.Println(experiments.Table2(st))
	fmt.Println(experiments.Figure3(st))
	fmt.Println(experiments.Figure4(st))
	fmt.Println(experiments.Figure5(st))

	m := st.OverallMeasures
	fmt.Printf("Paper: Cw = 0.35, Pc = 7.66.  Measured: Cw = %.3f", m.Cw)
	if m.Defined {
		fmt.Printf(", Pc = %.2f", m.Pc)
	}
	fmt.Println()

	// Per-sample view: how many samples show any concurrency (the
	// paper reports 55%), and how many concurrent samples run near
	// the maximum level (the paper reports >94% above 6.5)?
	conc, _ := core.SplitByConcurrency(st.RandomSamples)
	frac := float64(len(conc)) / float64(len(st.RandomSamples))
	high := 0
	for _, s := range conc {
		if s.Conc.Pc > 6.5 {
			high++
		}
	}
	fmt.Printf("samples with concurrency: %.0f%% (paper: 55%%)\n", 100*frac)
	if len(conc) > 0 {
		fmt.Printf("concurrent samples with Pc > 6.5: %.0f%% (paper: >94%%)\n",
			100*float64(high)/float64(len(conc)))
	}
}
