// Regression models: reproduce chapter 5 — combine random and
// high-concurrency samples, median-bin the system measures against the
// concurrency measures, fit the second-order models of Tables 3 and 4,
// and plot Figures 12-14.
package main

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	st := core.RunStudy(core.QuickScale())

	fmt.Println(experiments.Table3(st))
	fmt.Println(experiments.Table4(st))
	fmt.Println(experiments.Figure12(st))
	fmt.Println(experiments.Figure13(st))
	fmt.Println(experiments.Figure14(st))

	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	fmt.Printf("Missrate model: Cw=0.5 -> %.4f, Cw=1.0 -> %.4f (x%.1f)\n",
		atHalf, atFull, ratio)
	fmt.Println("Paper: .007 -> .024, a greater-than-triple increase.")

	missCw := st.Models.VsCw[core.MeasureMissRate]
	missPc := st.Models.VsPc[core.MeasureMissRate]
	if missCw.Err == nil && missPc.Err == nil {
		fmt.Printf("\nMissrate R2: vs Cw = %.2f, vs Pc = %.2f\n",
			missCw.Fit.R2, missPc.Fit.R2)
		fmt.Println("Paper: 0.74 vs 0.07 — miss rate depends on the fraction of")
		fmt.Println("parallel code, not the processor count within parallel operations.")
	}
}
