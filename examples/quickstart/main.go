// Quickstart: boot a simulated FX/8, run a tiny program with one
// concurrent loop, and compute the study's concurrency measures from
// monitor records.
package main

import (
	"fmt"

	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/workload"
)

func main() {
	// 1. Boot the machine: an 8-CE cluster with the measured FX/8's
	//    caches and buses, under a Concentrix-like OS.
	cl := fx8.New(fx8.DefaultConfig())
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())

	// 2. Build a program: serial setup, one concurrent DO loop over
	//    66 iterations (8*8+2 — note the two leftover iterations),
	//    then a serial tail.
	loop := workload.NewLoop(workload.LoopParams{
		Trips:             66,
		ChunksMean:        4,
		VecLen:            32,
		ReuseBase:         0x100000,
		ReuseBytes:        64 << 10,
		FreshBase:         0x200000,
		FreshBytesPerIter: 512,
		VComputeCycles:    40,
		ScalarCycles:      16,
		CodeBase:          0x3000,
		Seed:              42,
	})
	serial := &fx8.ConcatStream{Streams: []fx8.Stream{
		workload.NewSerialPhase(workload.SerialParams{
			Instrs: 2000, MemProb: 0.25, WSBase: 0x10000, Seed: 1,
		}),
		&fx8.SliceStream{Instrs: []fx8.Instr{workload.CStart(loop, 0x2000)}},
		workload.NewSerialPhase(workload.SerialParams{
			Instrs: 2000, MemProb: 0.25, WSBase: 0x10000, Seed: 2,
		}),
	}}
	sys.Submit(&concentrix.Process{PID: 1, Name: "quickstart", ClusterSize: 8, Serial: serial})

	// 3. Attach the logic analyzer and record the whole run.
	var counts monitor.EventCounts
	for i := 0; i < 200_000 && !sys.Drained(); i++ {
		sys.Step()
		counts.AddRecord(cl.Snapshot())
	}

	// 4. Compute the measures of equations 4.1-4.4.
	m := core.MeasuresFromCounts(counts)
	fmt.Println("Quickstart: one job with a 66-trip concurrent loop")
	fmt.Printf("  records observed:        %d\n", counts.Records)
	fmt.Printf("  Workload Concurrency Cw: %.3f\n", m.Cw)
	if m.Defined {
		fmt.Printf("  Mean Concurrency Pc:     %.2f\n", m.Pc)
		fmt.Printf("  c_8|c:                   %.3f\n", m.CCond[8])
	}
	fmt.Printf("  CE Bus Busy:             %.3f\n", counts.BusBusy())
	fmt.Printf("  Missrate:                %.4f\n", counts.MissRate())
	fmt.Printf("  page faults:             %d\n", sys.Kernel.PageFaults())
	fmt.Printf("  loop iterations run:     %d\n", cl.CCBus().IterationsRun)
}
