// Speedup curve: the classical program-level evaluation the study's
// background chapter contrasts with its workload-level measures — run
// the repository's named kernels at cluster sizes 1..8 and report
// Speedup (S = T1/Tp) and Efficiency (E = S/P).
//
// The dependence-carrying solver sweep shows the study's point about
// overheads: its efficiency collapses as processors wait on the
// Concurrency Control Bus, while DAXPY and the stencil scale.
package main

import (
	"fmt"

	"repro/internal/experiments"
)

func main() {
	fmt.Print(experiments.StandardKernelSpeedups())
	fmt.Println("Note how the dependence-carrying solver sweep saturates early")
	fmt.Println("(CCB waiting), while the independent kernels approach linear")
	fmt.Println("speedup — the efficiency effects sections 2 and 5.3 describe.")
}
