package main

import (
	"strings"
	"testing"
)

func TestRunSingleFigure(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "quick", "-only", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "Figure 3") {
		t.Errorf("output missing Figure 3 title:\n%s", got)
	}
}

func TestRunAllFiguresSharesCampaign(t *testing.T) {
	// The campaign is memoized by config, so this reuses the
	// TestRunSingleFigure campaign instead of re-running it.
	var out strings.Builder
	if err := run([]string{"-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Figure 3", "Figure 14", "Figure B.10"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("unknown scale should error")
	}
	if err := run([]string{"-scale", "quick", "-only", "nope"}, &out); err == nil {
		t.Error("unknown figure should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
