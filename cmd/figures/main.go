// Command figures runs the measurement campaign and regenerates the
// study's figures (3-14 and the appendix series) as SAS-style text
// charts.  The campaign's sessions fan out over the session engine's
// worker pool, and the completed campaign is memoized by configuration
// so repeated artefact generation shares one run.
//
// Usage:
//
//	figures [-scale quick|paper] [-only NAME] [-workers N]
//
// -only selects a single figure by name (e.g. "6", "12", "B.3").
package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
)

var figureFns = []struct {
	Name string
	Fn   func(*core.Study) string
}{
	{"3", experiments.Figure3},
	{"4", experiments.Figure4},
	{"5", experiments.Figure5},
	{"6", experiments.Figure6},
	{"7", experiments.Figure7},
	{"8", experiments.Figure8},
	{"9", experiments.Figure9},
	{"10", experiments.Figure10},
	{"11", experiments.Figure11},
	{"12", experiments.Figure12},
	{"13", experiments.Figure13},
	{"14", experiments.Figure14},
	{"A.1", experiments.FigureA1A2},
	{"A.3", experiments.FigureA3},
	{"A.4", experiments.FigureA4},
	{"A.5", experiments.FigureA5},
	{"B.1", experiments.FigureB1},
	{"B.2", experiments.FigureB2},
	{"B.3", experiments.FigureB3},
	{"B.4", experiments.FigureB4},
	{"B.5", experiments.FigureB5},
	{"B.6", experiments.FigureB6},
	{"B.7", experiments.FigureB7},
	{"B.8", experiments.FigureB8},
	{"B.9", experiments.FigureB9},
	{"B.10", experiments.FigureB10},
}

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "campaign scale: quick or paper")
	only := fs.String("only", "", "render a single figure by name")
	workers := fs.Int("workers", 0, "parallel session workers (0 = one per CPU)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg, err := core.ScaleConfig(*scale)
	if err != nil {
		return err
	}
	st := core.CachedStudy(cfg, *workers)

	if *only != "" {
		for _, f := range figureFns {
			if f.Name == *only {
				fmt.Fprintln(stdout, f.Fn(st))
				return nil
			}
		}
		return fmt.Errorf("unknown figure %q", *only)
	}
	for _, f := range figureFns {
		fmt.Fprintln(stdout, f.Fn(st))
	}
	return nil
}
