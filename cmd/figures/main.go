// Command figures runs the measurement campaign and regenerates the
// study's figures (3-14 and the appendix series) as SAS-style text
// charts.  The campaign's sessions fan out over the session engine's
// worker pool, or, with -backends, shard across a fleet of fx8d
// nodes (failed or slow backends are retried and hedged; local
// compute is the fallback), and the completed campaign is served
// through the two-tier cache: memoized in-process and, with -cache,
// persisted to the on-disk campaign store shared with the other
// tools and fx8d.
//
// Usage:
//
//	figures [-scale quick|paper] [-only NAME] [-workers N] [-cache DIR]
//	        [-backends HOST:PORT,...]
//
// -only selects a single figure by name (e.g. "6", "12", "B.3").
package main

import (
	"flag"
	"fmt"
	"io"
	"strings"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/remote"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("figures", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "campaign scale: quick or paper")
	only := fs.String("only", "", "render a single figure by name")
	workers := fs.Int("workers", 0, "parallel session workers (0 = one per CPU, or sized to the backend fleet)")
	cacheDir := fs.String("cache", "", "campaign store directory (shared with the other tools and fx8d)")
	backends := fs.String("backends", "", "comma-separated fx8d backends (host:port,...) to shard campaign sessions across")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg, err := core.ScaleConfig(*scale)
	if err != nil {
		return err
	}
	runner := remote.StudyRunner(remote.ParseBackends(*backends))
	st, err := core.StudyAtRunner(*cacheDir, cfg, *workers, runner)
	if err != nil {
		return err
	}

	if *only != "" {
		text, ok := experiments.RenderFigure(*only, st)
		if !ok {
			return fmt.Errorf("unknown figure %q (valid figures: %s)",
				*only, strings.Join(experiments.Names(experiments.Figures()), ", "))
		}
		fmt.Fprintln(stdout, text)
		return nil
	}
	for _, f := range experiments.Figures() {
		fmt.Fprintln(stdout, f.Render(st))
	}
	return nil
}
