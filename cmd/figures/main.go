// Command figures runs the measurement campaign and regenerates the
// study's figures (3-14 and the appendix series) as SAS-style text
// charts.
//
// Usage:
//
//	figures [-scale quick|paper] [-only NAME]
//
// -only selects a single figure by name (e.g. "6", "12", "B.3").
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
)

var figureFns = []struct {
	Name string
	Fn   func(*core.Study) string
}{
	{"3", experiments.Figure3},
	{"4", experiments.Figure4},
	{"5", experiments.Figure5},
	{"6", experiments.Figure6},
	{"7", experiments.Figure7},
	{"8", experiments.Figure8},
	{"9", experiments.Figure9},
	{"10", experiments.Figure10},
	{"11", experiments.Figure11},
	{"12", experiments.Figure12},
	{"13", experiments.Figure13},
	{"14", experiments.Figure14},
	{"A.1", experiments.FigureA1A2},
	{"A.3", experiments.FigureA3},
	{"A.4", experiments.FigureA4},
	{"A.5", experiments.FigureA5},
	{"B.1", experiments.FigureB1},
	{"B.2", experiments.FigureB2},
	{"B.3", experiments.FigureB3},
	{"B.4", experiments.FigureB4},
	{"B.5", experiments.FigureB5},
	{"B.6", experiments.FigureB6},
	{"B.7", experiments.FigureB7},
	{"B.8", experiments.FigureB8},
	{"B.9", experiments.FigureB9},
	{"B.10", experiments.FigureB10},
}

func main() {
	scale := flag.String("scale", "quick", "campaign scale: quick or paper")
	only := flag.String("only", "", "render a single figure by name")
	flag.Parse()

	var cfg core.StudyConfig
	switch *scale {
	case "quick":
		cfg = core.QuickScale()
	case "paper":
		cfg = core.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	st := core.RunStudy(cfg)

	if *only != "" {
		for _, f := range figureFns {
			if f.Name == *only {
				fmt.Println(f.Fn(st))
				return
			}
		}
		log.Fatalf("unknown figure %q", *only)
	}
	for _, f := range figureFns {
		fmt.Println(f.Fn(st))
	}
}
