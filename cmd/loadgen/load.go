package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/fastrand"
	"repro/internal/monitor"
	"repro/internal/perf"
	"repro/internal/service"
)

// Arrival processes and request mixes a scenario can combine.
const (
	arrivalSteady = "steady" // Poisson arrivals at a constant rate
	arrivalBursty = "bursty" // Poisson arrivals under an on/off envelope

	mixArtefacts = "artefacts" // GET study/tables/figures/sweep
	mixUnits     = "units"     // POST run/session and run/sessions
	mixMixed     = "mixed"     // both, evenly
)

// Bursty traffic alternates burstPeriod halves at burstHi / burstLo
// times the mean rate, so the long-run average still equals Rate.
const (
	burstPeriod = time.Second
	burstHi     = 1.6
	burstLo     = 0.4
)

// loadConfig describes one load scenario against one target.
type loadConfig struct {
	Scenario string        // name for reports ("steady-artefacts")
	Arrival  string        // arrivalSteady | arrivalBursty
	Mix      string        // mixArtefacts | mixUnits | mixMixed
	Rate     float64       // mean arrivals per second
	Duration time.Duration // measured window
	Warmup   time.Duration // unrecorded traffic before the window;
	// warmup also primes every distinct request once (caches, ETags),
	// so 0 measures a cold daemon
	Seed    uint64
	BaseURL string       // target daemon
	Client  *http.Client // nil uses http.DefaultClient
}

// loadReport is one scenario's measured outcome.
type loadReport struct {
	Scenario string  `json:"scenario"`
	Arrival  string  `json:"arrival"`
	Mix      string  `json:"mix"`
	Rate     float64 `json:"offered_rps"`

	Offered        int  `json:"offered"`   // arrivals in the window
	Completed      int  `json:"completed"` // 200s + 304s
	NotModified    int  `json:"not_modified"`
	Errors         int  `json:"errors"` // transport failures + 5xx + 4xx outside the protocol
	Shed           int  `json:"shed"`   // 429s
	RetryAfterSeen bool `json:"retry_after_seen"`

	Elapsed    time.Duration `json:"elapsed_ns"`
	Throughput float64       `json:"rps"` // completed per elapsed second
	P50        time.Duration `json:"p50_ns"`
	P95        time.Duration `json:"p95_ns"`
	P99        time.Duration `json:"p99_ns"`
	Max        time.Duration `json:"max_ns"`

	// SaturationRPS is set by the -saturate ramp: the highest measured
	// throughput the target sustained within the ramp's SLO.
	SaturationRPS float64 `json:"saturation_rps,omitempty"`

	// Server-side deltas, scraped from the target's /v1/metrics
	// before and after the measured window.  The client sees a 429;
	// the server knows why — these fold the daemon's own accounting
	// (sheds booked, cache and store hit rates) into the load report.
	// Absent (ServerScraped false) when the target's metrics endpoint
	// was unreachable; a scrape failure never fails the run.
	ServerScraped bool    `json:"server_scraped,omitempty"`
	ServerShed    uint64  `json:"server_shed,omitempty"`
	ServerHitRate float64 `json:"server_hit_rate,omitempty"`
}

// serverSample is the slice of the daemon's /v1/metrics document the
// harness diffs across the measured window.
type serverSample struct {
	shed         uint64 // requests the daemon shed with 429
	hits, misses uint64 // campaign-cache + store outcomes
}

// scrapeServer fetches the target's JSON metrics document, reporting
// ok == false on any failure (absent endpoint, old daemon, transport
// error) so callers can silently skip the server-side columns.
func scrapeServer(client *http.Client, baseURL string) (serverSample, bool) {
	resp, err := client.Get(baseURL + "/v1/metrics")
	if err != nil {
		return serverSample{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return serverSample{}, false
	}
	var m service.MetricsResponse
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		return serverSample{}, false
	}
	var s serverSample
	for _, ep := range m.Endpoints {
		s.shed += ep.Shed
	}
	s.hits = m.Cache.MemoryHits + m.Cache.DiskHits
	s.misses = m.Cache.Computes
	if m.Store != nil {
		s.hits += m.Store.Hits
		s.misses += m.Store.Misses
	}
	return s, true
}

// arrivals is the deterministic open-loop arrival process: a virtual
// clock advanced by exponential inter-arrival gaps, modulated by the
// burst envelope.  The whole schedule is a pure function of the seed.
type arrivals struct {
	rng    fastrand.PCG
	rate   float64
	bursty bool
	vt     time.Duration // virtual time of the last arrival
}

func newArrivals(seed uint64, arrival string, rate float64) *arrivals {
	return &arrivals{
		rng:    fastrand.New(seed, 0x10ad),
		rate:   rate,
		bursty: arrival == arrivalBursty,
	}
}

// next advances to the following arrival and returns its virtual
// time (offset from the window start).
func (a *arrivals) next() time.Duration {
	rate := a.rate
	if a.bursty {
		if (a.vt/burstPeriod)%2 == 0 {
			rate *= burstHi
		} else {
			rate *= burstLo
		}
	}
	// Exponential inter-arrival: -ln(U)/rate, guarding U=0.
	u := a.rng.Float64()
	for u == 0 {
		u = a.rng.Float64()
	}
	gap := time.Duration(-math.Log(u) / rate * float64(time.Second))
	a.vt += gap
	return a.vt
}

// request is one generated HTTP request.
type request struct {
	method string
	path   string
	body   []byte
}

// reqGen deterministically generates the scenario's request sequence.
type reqGen struct {
	rng   fastrand.PCG
	mix   string
	units [][]byte // pre-marshaled single-unit payloads
	batch [][]byte // pre-marshaled 4-unit batch payloads
}

// artefactPaths are the conditional-request endpoints a steady reader
// would poll, plus a sweep (deliberately ETag-less).
var artefactPaths = []string{
	"/v1/study?scale=quick",
	"/v1/tables/1",
	"/v1/tables/2",
	"/v1/figures/3",
	"/v1/figures/7",
	"/v1/sweep?param=ce&samples=2&seed=17",
}

// loadUnitCount is how many distinct session units the unit mix
// rotates through; small specs keep one unit's compute in the tens of
// microseconds so the wire, not the simulator, is what's measured.
const loadUnitCount = 16

func newReqGen(seed uint64, mix string) *reqGen {
	g := &reqGen{rng: fastrand.New(seed, 0x4e47), mix: mix}
	units := make([]core.StudyUnit, loadUnitCount)
	for i := range units {
		spec := core.SessionSpec{
			Samples:  1,
			Sampling: monitor.SampleSpec{Snapshots: 1, GapCycles: 2_000},
			Seed:     uint64(100 + i),
		}
		units[i] = core.StudyUnit{ID: i + 1, Random: &spec}
		payload, _ := json.Marshal(units[i])
		g.units = append(g.units, payload)
	}
	for lo := 0; lo+4 <= len(units); lo += 4 {
		payload, _ := json.Marshal(units[lo : lo+4])
		g.batch = append(g.batch, payload)
	}
	return g
}

// next returns the i-th request of the schedule.
func (g *reqGen) next() request {
	mix := g.mix
	if mix == mixMixed {
		if g.rng.IntN(2) == 0 {
			mix = mixArtefacts
		} else {
			mix = mixUnits
		}
	}
	if mix == mixArtefacts {
		return request{method: http.MethodGet, path: artefactPaths[g.rng.IntN(len(artefactPaths))]}
	}
	// Unit mix: two single-unit POSTs for every batched POST.
	if g.rng.IntN(3) == 0 {
		return request{method: http.MethodPost, path: "/v1/run/sessions", body: g.batch[g.rng.IntN(len(g.batch))]}
	}
	return request{method: http.MethodPost, path: "/v1/run/session", body: g.units[g.rng.IntN(len(g.units))]}
}

// primeTargets returns every distinct request the mix can generate,
// for the one-each warmup pass.
func (g *reqGen) primeTargets() []request {
	var out []request
	if g.mix == mixArtefacts || g.mix == mixMixed {
		for _, p := range artefactPaths {
			out = append(out, request{method: http.MethodGet, path: p})
		}
	}
	if g.mix == mixUnits || g.mix == mixMixed {
		for _, b := range g.units {
			out = append(out, request{method: http.MethodPost, path: "/v1/run/session", body: b})
		}
		for _, b := range g.batch {
			out = append(out, request{method: http.MethodPost, path: "/v1/run/sessions", body: b})
		}
	}
	return out
}

// loader drives one scenario and accumulates its outcome.
type loader struct {
	cfg    loadConfig
	gen    *reqGen
	client *http.Client

	etags sync.Map // path -> ETag last seen, for If-None-Match

	mu             sync.Mutex
	lats           []time.Duration
	completed      int
	notModified    int
	errors         int
	shed           int
	retryAfterSeen bool
}

func validateConfig(cfg loadConfig) error {
	switch cfg.Arrival {
	case arrivalSteady, arrivalBursty:
	default:
		return fmt.Errorf("unknown arrival process %q (valid: %s, %s)", cfg.Arrival, arrivalSteady, arrivalBursty)
	}
	switch cfg.Mix {
	case mixArtefacts, mixUnits, mixMixed:
	default:
		return fmt.Errorf("unknown request mix %q (valid: %s, %s, %s)", cfg.Mix, mixArtefacts, mixUnits, mixMixed)
	}
	if cfg.Rate <= 0 {
		return fmt.Errorf("rate must be positive, got %g", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return fmt.Errorf("duration must be positive, got %v", cfg.Duration)
	}
	return nil
}

// runLoad executes one scenario and returns its report.
func runLoad(cfg loadConfig) (*loadReport, error) {
	if err := validateConfig(cfg); err != nil {
		return nil, err
	}
	l := &loader{cfg: cfg, gen: newReqGen(cfg.Seed, cfg.Mix), client: cfg.Client}
	if l.client == nil {
		l.client = http.DefaultClient
	}

	if cfg.Warmup > 0 {
		// Prime every distinct request once (campaign caches, unit
		// store records, ETags), then run unrecorded traffic so the
		// measured window starts on a warm, already-loaded daemon.
		for _, r := range l.gen.primeTargets() {
			l.fire(r, false)
		}
		l.drive(newArrivals(cfg.Seed^1, cfg.Arrival, cfg.Rate), cfg.Warmup, false)
	}

	before, scrapedBefore := scrapeServer(l.client, cfg.BaseURL)
	start := time.Now()
	offered := l.drive(newArrivals(cfg.Seed, cfg.Arrival, cfg.Rate), cfg.Duration, true)
	elapsed := time.Since(start)
	after, scrapedAfter := scrapeServer(l.client, cfg.BaseURL)

	l.mu.Lock()
	defer l.mu.Unlock()
	rep := &loadReport{
		Scenario:       cfg.Scenario,
		Arrival:        cfg.Arrival,
		Mix:            cfg.Mix,
		Rate:           cfg.Rate,
		Offered:        offered,
		Completed:      l.completed,
		NotModified:    l.notModified,
		Errors:         l.errors,
		Shed:           l.shed,
		RetryAfterSeen: l.retryAfterSeen,
		Elapsed:        elapsed,
	}
	if elapsed > 0 {
		rep.Throughput = float64(l.completed) / elapsed.Seconds()
	}
	rep.P50, rep.P95, rep.P99, rep.Max = percentiles(l.lats)
	if scrapedBefore && scrapedAfter {
		rep.ServerScraped = true
		// Keep the counter delta in uint64 end to end; a daemon
		// restart mid-window makes it wrap, which the guard treats
		// as "no usable delta" rather than a garbage count.
		if after.shed >= before.shed {
			rep.ServerShed = after.shed - before.shed
		}
		hits := after.hits - before.hits
		if total := hits + (after.misses - before.misses); total > 0 {
			rep.ServerHitRate = float64(hits) / float64(total)
		}
	}
	return rep, nil
}

// drive fires the arrival schedule open-loop for window: each arrival
// dispatches on its own goroutine at its scheduled time whether or
// not earlier requests have answered — a slow target faces mounting
// concurrency, exactly like production traffic, instead of a
// politely waiting closed loop.  Returns the number of arrivals.
func (l *loader) drive(sched *arrivals, window time.Duration, record bool) int {
	var wg sync.WaitGroup
	start := time.Now()
	offered := 0
	for {
		at := sched.next()
		if at > window {
			break
		}
		req := l.gen.next()
		if sleep := time.Until(start.Add(at)); sleep > 0 {
			time.Sleep(sleep)
		}
		offered++
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.fire(req, record)
		}()
	}
	wg.Wait()
	return offered
}

// fire sends one request and classifies its outcome.
func (l *loader) fire(r request, record bool) {
	var body io.Reader
	if r.body != nil {
		body = bytes.NewReader(r.body)
	}
	req, err := http.NewRequest(r.method, l.cfg.BaseURL+r.path, body)
	if err != nil {
		l.count(func() { l.errors++ }, record)
		return
	}
	if r.body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if r.method == http.MethodGet {
		if etag, ok := l.etags.Load(r.path); ok {
			req.Header.Set("If-None-Match", etag.(string))
		}
	}

	begin := time.Now()
	resp, err := l.client.Do(req)
	if err != nil {
		l.count(func() { l.errors++ }, record)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	lat := time.Since(begin)

	if etag := resp.Header.Get("ETag"); etag != "" {
		l.etags.Store(r.path, etag)
	}
	switch {
	case resp.StatusCode == http.StatusOK, resp.StatusCode == http.StatusNotModified:
		nm := resp.StatusCode == http.StatusNotModified
		l.count(func() {
			l.completed++
			if nm {
				l.notModified++
			}
			l.lats = append(l.lats, lat)
		}, record)
	case resp.StatusCode == http.StatusTooManyRequests:
		retryAfter := resp.Header.Get("Retry-After") != ""
		l.count(func() {
			l.shed++
			if retryAfter {
				l.retryAfterSeen = true
			}
		}, record)
	default:
		l.count(func() { l.errors++ }, record)
	}
}

// count applies a counter update under the lock, unless the request
// fell in an unrecorded (warmup) phase.
func (l *loader) count(update func(), record bool) {
	if !record {
		return
	}
	l.mu.Lock()
	update()
	l.mu.Unlock()
}

// percentiles returns the p50/p95/p99/max of the recorded latencies.
func percentiles(lats []time.Duration) (p50, p95, p99, max time.Duration) {
	if len(lats) == 0 {
		return 0, 0, 0, 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) time.Duration {
		i := int(math.Ceil(q*float64(len(sorted)))) - 1
		if i < 0 {
			i = 0
		}
		return sorted[i]
	}
	return at(0.50), at(0.95), at(0.99), sorted[len(sorted)-1]
}

// perfResult renders the report as one row of the
// BENCH_service-load.json layer: p50 latency is the gated ns/op, and
// the rest of the load profile rides along as custom metrics (which
// inform benchdiff reports but never gate).
func (r *loadReport) perfResult() perf.Result {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	metrics := map[string]float64{
		"p95-ms": ms(r.P95),
		"p99-ms": ms(r.P99),
		"rps":    r.Throughput,
	}
	if n := r.Completed + r.Errors + r.Shed; n > 0 {
		metrics["err-rate"] = float64(r.Errors) / float64(n)
		metrics["shed-rate"] = float64(r.Shed) / float64(n)
	}
	if r.SaturationRPS > 0 {
		metrics["saturation-rps"] = r.SaturationRPS
	}
	if r.ServerScraped {
		metrics["server-shed"] = float64(r.ServerShed)
		metrics["server-hit-rate"] = r.ServerHitRate
	}
	return perf.Result{
		Name:       "Load" + camel(r.Scenario),
		Iterations: int64(r.Completed),
		NsPerOp:    float64(r.P50),
		Metrics:    metrics,
	}
}

// camel turns "steady-artefacts" into "SteadyArtefacts".
func camel(s string) string {
	parts := strings.Split(s, "-")
	for i, p := range parts {
		if p != "" {
			parts[i] = strings.ToUpper(p[:1]) + p[1:]
		}
	}
	return strings.Join(parts, "")
}

// summarize prints the human-readable scenario row.
func (r *loadReport) summarize(w io.Writer) {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	fmt.Fprintf(w, "%-18s %7.0f rps offered  %7.1f rps served  p50 %7.3fms  p95 %7.3fms  p99 %7.3fms",
		r.Scenario, r.Rate, r.Throughput, ms(r.P50), ms(r.P95), ms(r.P99))
	if r.NotModified > 0 {
		fmt.Fprintf(w, "  %d revalidated", r.NotModified)
	}
	if r.Shed > 0 {
		fmt.Fprintf(w, "  %d shed", r.Shed)
	}
	if r.Errors > 0 {
		fmt.Fprintf(w, "  %d ERRORS", r.Errors)
	}
	if r.SaturationRPS > 0 {
		fmt.Fprintf(w, "  saturation ~%.0f rps", r.SaturationRPS)
	}
	if r.ServerScraped {
		fmt.Fprintf(w, "  [server: %d shed, %.0f%% hit rate]", r.ServerShed, r.ServerHitRate*100)
	}
	fmt.Fprintln(w)
}
