package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/service"
	"repro/internal/store"
)

// bootTestDaemon boots a loopback fx8d sized by cfg for one test.
func bootTestDaemon(t *testing.T, cfg service.Config) string {
	t.Helper()
	if cfg.Cache == nil {
		cfg.Cache = core.NewStudyCache()
	}
	base, shutdown, err := bootInproc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(shutdown)
	return base
}

func TestScheduleIsDeterministic(t *testing.T) {
	t.Parallel()
	for _, arrival := range []string{arrivalSteady, arrivalBursty} {
		a := newArrivals(42, arrival, 100)
		b := newArrivals(42, arrival, 100)
		for i := 0; i < 500; i++ {
			if at, bt := a.next(), b.next(); at != bt {
				t.Fatalf("%s arrival %d: %v vs %v; schedule not a pure function of the seed", arrival, i, at, bt)
			}
		}
	}
	g1, g2 := newReqGen(42, mixMixed), newReqGen(42, mixMixed)
	for i := 0; i < 500; i++ {
		r1, r2 := g1.next(), g2.next()
		if r1.method != r2.method || r1.path != r2.path || !bytes.Equal(r1.body, r2.body) {
			t.Fatalf("request %d: %v vs %v; sequence not a pure function of the seed", i, r1, r2)
		}
	}
	if other := newArrivals(43, arrivalSteady, 100); other.next() == newArrivals(42, arrivalSteady, 100).next() {
		t.Error("different seeds produced the same first arrival")
	}
}

func TestBurstyArrivalsModulate(t *testing.T) {
	t.Parallel()
	// Count arrivals in hi vs lo halves of the burst envelope over
	// many periods: the on/off modulation must be visible.
	a := newArrivals(7, arrivalBursty, 200)
	var hi, lo int
	for i := 0; i < 4000; i++ {
		at := a.next()
		if (at/burstPeriod)%2 == 0 {
			hi++
		} else {
			lo++
		}
	}
	if hi < 2*lo {
		t.Errorf("bursty schedule not modulated: %d arrivals in hi halves, %d in lo", hi, lo)
	}
}

func TestPercentiles(t *testing.T) {
	t.Parallel()
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	p50, p95, p99, max := percentiles(lats)
	if p50 != 50*time.Millisecond || p95 != 95*time.Millisecond || p99 != 99*time.Millisecond || max != 100*time.Millisecond {
		t.Errorf("percentiles = %v %v %v %v", p50, p95, p99, max)
	}
	if p50, _, _, _ := percentiles(nil); p50 != 0 {
		t.Errorf("empty percentiles = %v, want 0", p50)
	}
}

func TestRunLoadUnitsMix(t *testing.T) {
	t.Parallel()
	// A store-backed cache so unit results are cacheable — the
	// server-side hit-rate column needs a disk tier to count against.
	cache := core.NewStudyCache()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cache.SetStore(st)
	base := bootTestDaemon(t, service.Config{MaxInFlight: 8, Cache: cache})
	rep, err := runLoad(loadConfig{
		Scenario: "steady-units",
		Arrival:  arrivalSteady,
		Mix:      mixUnits,
		Rate:     300,
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     11,
		BaseURL:  base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Completed == 0 {
		t.Fatal("no requests completed")
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d against a healthy daemon", rep.Errors)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("latency profile inconsistent: p50=%v p99=%v", rep.P50, rep.P99)
	}
	if rep.Throughput <= 0 {
		t.Errorf("throughput = %g", rep.Throughput)
	}
	if !rep.ServerScraped {
		t.Error("server-side metrics not scraped from a live daemon")
	}
	// The warmup primed every unit into the daemon's store, so the
	// measured window's units are served as cache hits.
	if rep.ServerHitRate <= 0 {
		t.Errorf("server hit rate = %g, want > 0 after a priming warmup", rep.ServerHitRate)
	}
}

func TestRunLoadArtefactsRevalidates(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("campaign-warming load run in -short mode")
	}
	base := bootTestDaemon(t, service.Config{MaxInFlight: 8})
	rep, err := runLoad(loadConfig{
		Scenario: "steady-artefacts",
		Arrival:  arrivalSteady,
		Mix:      mixArtefacts,
		Rate:     300,
		Duration: 500 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     13,
		BaseURL:  base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d against a healthy daemon", rep.Errors)
	}
	// The warmup collected ETags, so the measured window's artefact
	// reads mostly revalidate as 304s.
	if rep.NotModified == 0 {
		t.Error("no requests revalidated via If-None-Match")
	}
}

// TestOverloadObserves429WithRetryAfter is the backpressure
// acceptance proof: offered load far past the admission queue bound
// of a deliberately tiny daemon is shed with 429 + Retry-After, and
// the shed traffic is not booked as errors.
func TestOverloadObserves429WithRetryAfter(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("campaign-computing overload run in -short mode")
	}
	base := bootTestDaemon(t, service.Config{MaxInFlight: 1, MaxQueue: 1})
	// No warmup: every artefact request wants the quick campaign, so
	// the single admission slot stays occupied for seconds while
	// arrivals keep coming — the queue fills immediately.
	rep, err := runLoad(loadConfig{
		Scenario: "overload",
		Arrival:  arrivalSteady,
		Mix:      mixArtefacts,
		Rate:     100,
		Duration: 300 * time.Millisecond,
		Warmup:   0,
		Seed:     17,
		BaseURL:  base,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Shed == 0 {
		t.Fatal("no requests shed past the admission queue bound")
	}
	if !rep.RetryAfterSeen {
		t.Error("shed responses carried no Retry-After header")
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d; sheds must not be booked as errors", rep.Errors)
	}
	// The daemon's own shed accounting corroborates the client's 429
	// count: every shed the client saw was booked server-side.
	if rep.ServerScraped && rep.ServerShed < uint64(rep.Shed) {
		t.Errorf("server booked %d sheds, client saw %d", rep.ServerShed, rep.Shed)
	}
}

func TestRunWritesPerfSet(t *testing.T) {
	t.Parallel()
	out := filepath.Join(t.TempDir(), "BENCH_service-load.json")
	var buf bytes.Buffer
	err := run([]string{
		"-scenario", "steady-units",
		"-rate", "200",
		"-duration", "300ms",
		"-warmup", "100ms",
		"-out", out,
		"-slo-p99", "30s",
		"-slo-errors", "0.2",
	}, &buf)
	if err != nil {
		t.Fatalf("run: %v\n%s", err, buf.String())
	}
	set, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	res, ok := set.Lookup("LoadSteadyUnits")
	if !ok {
		t.Fatalf("LoadSteadyUnits missing from %s: %+v", out, set.Results)
	}
	if res.NsPerOp <= 0 || res.Iterations == 0 {
		t.Errorf("result not measured: %+v", res)
	}
	for _, unit := range []string{"p95-ms", "p99-ms", "rps", "err-rate", "shed-rate"} {
		if _, ok := res.Metrics[unit]; !ok {
			t.Errorf("metric %q missing: %+v", unit, res.Metrics)
		}
	}
	if !strings.Contains(buf.String(), "steady-units") {
		t.Errorf("summary missing scenario row:\n%s", buf.String())
	}
}

func TestSLOGateFails(t *testing.T) {
	t.Parallel()
	reports := []*loadReport{{
		Scenario:  "steady-units",
		Completed: 90,
		Shed:      10,
		P99:       40 * time.Millisecond,
	}}
	if err := checkSLOs(reports, 10*time.Millisecond, -1); err == nil {
		t.Error("p99 SLO violation not reported")
	}
	if err := checkSLOs(reports, 0, 0.05); err == nil {
		t.Error("error-rate SLO violation not reported")
	}
	if err := checkSLOs(reports, 100*time.Millisecond, 0.2); err != nil {
		t.Errorf("SLOs within bounds failed: %v", err)
	}
}

func TestUnknownScenarioAndMixRejected(t *testing.T) {
	t.Parallel()
	var buf bytes.Buffer
	if err := run([]string{"-scenario", "bogus"}, &buf); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := runLoad(loadConfig{Arrival: "bogus", Mix: mixUnits, Rate: 1, Duration: time.Second}); err == nil {
		t.Error("unknown arrival accepted")
	}
	if _, err := runLoad(loadConfig{Arrival: arrivalSteady, Mix: "bogus", Rate: 1, Duration: time.Second}); err == nil {
		t.Error("unknown mix accepted")
	}
	if _, err := runLoad(loadConfig{Arrival: arrivalSteady, Mix: mixUnits, Rate: 0, Duration: time.Second}); err == nil {
		t.Error("zero rate accepted")
	}
}
