// Command loadgen is the fx8d load harness: an open-loop traffic
// generator that drives a daemon with the request mixes real clients
// produce — artefact reads revalidating with ETags, sharded unit and
// batched-unit POSTs — under steady or bursty Poisson arrivals, and
// reports the resulting latency distribution, throughput, error and
// shed rates.
//
// Usage:
//
//	loadgen [-target URL] [-scenario NAME] [-rate N] [-duration D]
//	        [-warmup D] [-seed N] [-out FILE] [-saturate]
//	        [-slo-p99 D] [-slo-errors FRAC]
//	        [-max-inflight N] [-max-queue N] [-workers N]
//
// Without -target, loadgen boots an in-process fx8d on a loopback
// listener (sized by -max-inflight/-max-queue/-workers) and drives it
// over real HTTP, so the harness needs no running daemon.  Arrival
// schedules and request sequences are pure functions of -seed: two
// runs against equivalent targets offer identical traffic.
//
// Open loop means arrivals fire on schedule whether or not earlier
// requests have completed — a saturated target faces mounting
// concurrency instead of a politely waiting benchmark, which is what
// exposes queueing collapse.
//
// With -out, the scenario results are written as a perf result set
// (BENCH_service-load.json): p50 latency is the gated ns/op and
// p95/p99/rps/error/shed rates ride along as metrics, so `make
// bench-load` and the CI bench gate diff service latency under load
// exactly like any other layer's benchmarks.  -slo-p99 / -slo-errors
// turn the run into a gate of its own: the command fails if any
// scenario exceeds them.  -saturate appends a ramp that raises the
// offered rate until the target sheds or its p99 collapses, and
// reports the last sustainable throughput.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/perf"
	"repro/internal/service"
)

func main() {
	cli.Main(run)
}

// scenarios is the standard suite `make bench-load` records.
func scenarios() []loadConfig {
	return []loadConfig{
		{Scenario: "steady-artefacts", Arrival: arrivalSteady, Mix: mixArtefacts, Rate: 400, Duration: 4 * time.Second, Warmup: time.Second},
		{Scenario: "steady-units", Arrival: arrivalSteady, Mix: mixUnits, Rate: 300, Duration: 4 * time.Second, Warmup: time.Second},
		{Scenario: "bursty-mixed", Arrival: arrivalBursty, Mix: mixMixed, Rate: 300, Duration: 4 * time.Second, Warmup: time.Second},
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	target := fs.String("target", "", "fx8d base URL (empty boots an in-process daemon)")
	scenario := fs.String("scenario", "", "run one scenario (steady-artefacts|steady-units|bursty-mixed; empty runs all)")
	rate := fs.Float64("rate", 0, "override offered arrivals per second (0 = scenario default)")
	duration := fs.Duration("duration", 0, "override measured window (0 = scenario default)")
	warmup := fs.Duration("warmup", -1, "override warmup (negative = scenario default; 0 measures a cold daemon)")
	seed := fs.Uint64("seed", 1987, "schedule seed (same seed, same traffic)")
	out := fs.String("out", "", "write results as a perf set (BENCH_service-load.json)")
	saturate := fs.Bool("saturate", false, "after the scenarios, ramp the first scenario's rate to find the saturation point")
	sloP99 := fs.Duration("slo-p99", 0, "fail if any scenario's p99 exceeds this (0 = no SLO)")
	sloErrors := fs.Float64("slo-errors", -1, "fail if any scenario's error+shed fraction exceeds this (negative = no SLO)")
	inflight := fs.Int("max-inflight", 4, "in-process daemon: concurrently admitted expensive requests")
	maxQueue := fs.Int("max-queue", 0, "in-process daemon: admission queue bound (0 = 4x max-inflight)")
	workers := fs.Int("workers", 0, "in-process daemon: campaign workers (0 = one per CPU)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	base := *target
	if base == "" {
		url, shutdown, err := bootInproc(service.Config{
			Cache:       core.NewStudyCache(),
			Workers:     *workers,
			MaxInFlight: *inflight,
			MaxQueue:    *maxQueue,
		})
		if err != nil {
			return err
		}
		defer shutdown()
		base = url
		fmt.Fprintf(stdout, "in-process fx8d at %s\n", base)
	}

	suite := scenarios()
	if *scenario != "" {
		var picked []loadConfig
		for _, cfg := range suite {
			if cfg.Scenario == *scenario {
				picked = append(picked, cfg)
			}
		}
		if picked == nil {
			return fmt.Errorf("unknown scenario %q (valid: steady-artefacts, steady-units, bursty-mixed)", *scenario)
		}
		suite = picked
	}

	var set perf.Set
	var reports []*loadReport
	for _, cfg := range suite {
		cfg.BaseURL = base
		cfg.Seed = *seed
		if *rate > 0 {
			cfg.Rate = *rate
		}
		if *duration > 0 {
			cfg.Duration = *duration
		}
		if *warmup >= 0 {
			cfg.Warmup = *warmup
		}
		rep, err := runLoad(cfg)
		if err != nil {
			return fmt.Errorf("scenario %s: %w", cfg.Scenario, err)
		}
		if *saturate && len(reports) == 0 {
			sat, err := findSaturation(cfg, rep, stdout)
			if err != nil {
				return fmt.Errorf("saturation ramp: %w", err)
			}
			rep.SaturationRPS = sat
		}
		rep.summarize(stdout)
		reports = append(reports, rep)
		set.Results = append(set.Results, rep.perfResult())
	}

	if *out != "" {
		if err := set.WriteFile(*out); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "results written to %s\n", *out)
	}
	return checkSLOs(reports, *sloP99, *sloErrors)
}

// bootInproc starts an fx8d on a loopback listener, so the harness
// measures the daemon over the real network stack without needing a
// separately managed process.
func bootInproc(cfg service.Config) (baseURL string, shutdown func(), err error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	hs := &http.Server{Handler: service.New(cfg)}
	go hs.Serve(ln)
	return "http://" + ln.Addr().String(), func() { hs.Close() }, nil
}

// Saturation-ramp policy: the rate rises by satStep per round (short
// satWindow windows) until more than satShedFrac of requests fail or
// shed, or p99 exceeds satP99Cap; the last sustainable round's
// throughput is the saturation point.
const (
	satStep     = 1.5
	satRounds   = 6
	satWindow   = time.Second
	satShedFrac = 0.05
	satP99Cap   = 250 * time.Millisecond
)

// findSaturation ramps cfg's offered rate until the target stops
// keeping up, returning the last sustained throughput.
func findSaturation(cfg loadConfig, base *loadReport, stdout io.Writer) (float64, error) {
	sustained := base.Throughput
	rate := cfg.Rate
	for round := 0; round < satRounds; round++ {
		rate *= satStep
		step := cfg
		step.Scenario = fmt.Sprintf("saturate@%.0frps", rate)
		step.Rate = rate
		step.Duration = satWindow
		step.Warmup = 0 // the suite run already warmed the target
		rep, err := runLoad(step)
		if err != nil {
			return 0, err
		}
		total := rep.Completed + rep.Errors + rep.Shed
		badFrac := 0.0
		if total > 0 {
			badFrac = float64(rep.Errors+rep.Shed) / float64(total)
		}
		fmt.Fprintf(stdout, "  ramp %7.0f rps offered: %7.1f served, p99 %6.1fms, %4.1f%% shed+err\n",
			rate, rep.Throughput, float64(rep.P99)/float64(time.Millisecond), badFrac*100)
		if badFrac > satShedFrac || rep.P99 > satP99Cap {
			break
		}
		sustained = rep.Throughput
	}
	return sustained, nil
}

// checkSLOs turns the run into a gate when SLO flags are set.
func checkSLOs(reports []*loadReport, p99 time.Duration, errFrac float64) error {
	for _, r := range reports {
		if p99 > 0 && r.P99 > p99 {
			return fmt.Errorf("SLO violation: %s p99 %v exceeds %v", r.Scenario, r.P99, p99)
		}
		if errFrac >= 0 {
			total := r.Completed + r.Errors + r.Shed
			if total > 0 {
				if got := float64(r.Errors+r.Shed) / float64(total); got > errFrac {
					return fmt.Errorf("SLO violation: %s error+shed rate %.3f exceeds %.3f", r.Scenario, got, errFrac)
				}
			}
		}
	}
	return nil
}
