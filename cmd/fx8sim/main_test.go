package main

import (
	"strings"
	"testing"
)

func TestRunSmallSimulation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-cycles", "50000", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"fx8sim:", "Active-processor state distribution",
		"Workload Concurrency", "Shared cache:", "Kernel:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
