// Command fx8sim boots a simulated Alliant FX/8 under a generated
// PaperMix workload, runs it for a given number of cycles, and prints
// the emergent machine statistics: the active-processor state
// distribution, the concurrency measures, cache and bus behaviour, and
// kernel counters.
//
// Usage:
//
//	fx8sim [-seed N] [-cycles N] [-quiet-ips]
package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cli"
	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/workload"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fx8sim", flag.ContinueOnError)
	seed := fs.Uint64("seed", 2026, "workload session seed")
	cycles := fs.Int("cycles", 4_000_000, "cycles to simulate")
	quietIPs := fs.Bool("quiet-ips", false, "disable IP background traffic")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg := fx8.DefaultConfig()
	cfg.Seed = *seed
	if *quietIPs {
		cfg.NumIP = 0
	}
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	gen := workload.NewGenerator(workload.PaperMix(*seed))
	jobs := gen.Session(uint64(*cycles))
	for _, p := range jobs {
		sys.Submit(p)
	}
	fmt.Fprintf(stdout, "fx8sim: %d jobs submitted, simulating %d cycles (seed %d)\n\n",
		len(jobs), *cycles, *seed)

	var num [core.P + 1]int
	var busy, miss uint64
	for i := 0; i < *cycles; i++ {
		sys.Step()
		rec := cl.Snapshot()
		num[rec.ActiveCount()]++
		busy += uint64(rec.BusyCount())
		miss += uint64(rec.MissCount())
	}

	m := core.MeasuresFromNum(num)
	fmt.Fprintln(stdout, "Active-processor state distribution:")
	for j := core.P; j >= 0; j-- {
		fmt.Fprintf(stdout, "  %d active: %10d cycles (c_%d = %.4f)\n", j, num[j], j, m.C[j])
	}
	fmt.Fprintf(stdout, "\nWorkload Concurrency  Cw = %.4f\n", m.Cw)
	if m.Defined {
		fmt.Fprintf(stdout, "Mean Concurrency Level Pc = %.2f\n", m.Pc)
		fmt.Fprintf(stdout, "8-active share of concurrency c_8|c = %.3f\n", m.CCond[8])
	}
	total := uint64(*cycles) * core.P
	fmt.Fprintf(stdout, "\nCE Bus Busy  = %.4f\n", float64(busy)/float64(total))
	fmt.Fprintf(stdout, "Missrate     = %.5f\n", float64(miss)/float64(total))

	cache := cl.Cache()
	fmt.Fprintf(stdout, "\nShared cache: %d hits, %d misses (ratio %.4f), %d write-backs, %d invalidations\n",
		cache.Hits, cache.Misses, cache.MissRatio(), cache.WriteBacks, cache.Invalidations)
	fmt.Fprintf(stdout, "Memory buses: %d transactions, %d busy cycles\n",
		cl.Mem().Transactions, cl.Mem().BusyCycles)
	fmt.Fprintf(stdout, "CCB: %d loops, %d iterations, %d advances\n",
		cl.CCBus().LoopsStarted, cl.CCBus().IterationsRun, cl.CCBus().AdvanceOps)
	fmt.Fprintf(stdout, "Kernel: %d page faults (%d user, %d system), %d context switches, %d jobs done\n",
		sys.Kernel.PageFaults(), sys.Kernel.PageFaultsUser, sys.Kernel.PageFaultsSystem,
		sys.Kernel.ContextSwitches, sys.Kernel.JobsCompleted)
	fmt.Fprintf(stdout, "Idle cycles: %d (%.1f%%)\n",
		sys.IdleCycles, 100*float64(sys.IdleCycles)/float64(*cycles))
	return nil
}
