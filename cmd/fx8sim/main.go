// Command fx8sim boots a simulated Alliant FX/8 under a generated
// PaperMix workload, runs it for a given number of cycles, and prints
// the emergent machine statistics: the active-processor state
// distribution, the concurrency measures, cache and bus behaviour, and
// kernel counters.
//
// Usage:
//
//	fx8sim [-seed N] [-cycles N] [-quiet-ips]
package main

import (
	"flag"
	"fmt"

	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/workload"
)

func main() {
	seed := flag.Uint64("seed", 2026, "workload session seed")
	cycles := flag.Int("cycles", 4_000_000, "cycles to simulate")
	quietIPs := flag.Bool("quiet-ips", false, "disable IP background traffic")
	flag.Parse()

	cfg := fx8.DefaultConfig()
	cfg.Seed = *seed
	if *quietIPs {
		cfg.NumIP = 0
	}
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	gen := workload.NewGenerator(workload.PaperMix(*seed))
	jobs := gen.Session(uint64(*cycles))
	for _, p := range jobs {
		sys.Submit(p)
	}
	fmt.Printf("fx8sim: %d jobs submitted, simulating %d cycles (seed %d)\n\n",
		len(jobs), *cycles, *seed)

	var num [core.P + 1]int
	var busy, miss uint64
	for i := 0; i < *cycles; i++ {
		sys.Step()
		rec := cl.Snapshot()
		num[rec.ActiveCount()]++
		busy += uint64(rec.BusyCount())
		miss += uint64(rec.MissCount())
	}

	m := core.MeasuresFromNum(num)
	fmt.Println("Active-processor state distribution:")
	for j := core.P; j >= 0; j-- {
		fmt.Printf("  %d active: %10d cycles (c_%d = %.4f)\n", j, num[j], j, m.C[j])
	}
	fmt.Printf("\nWorkload Concurrency  Cw = %.4f\n", m.Cw)
	if m.Defined {
		fmt.Printf("Mean Concurrency Level Pc = %.2f\n", m.Pc)
		fmt.Printf("8-active share of concurrency c_8|c = %.3f\n", m.CCond[8])
	}
	total := uint64(*cycles) * core.P
	fmt.Printf("\nCE Bus Busy  = %.4f\n", float64(busy)/float64(total))
	fmt.Printf("Missrate     = %.5f\n", float64(miss)/float64(total))

	cache := cl.Cache()
	fmt.Printf("\nShared cache: %d hits, %d misses (ratio %.4f), %d write-backs, %d invalidations\n",
		cache.Hits, cache.Misses, cache.MissRatio(), cache.WriteBacks, cache.Invalidations)
	fmt.Printf("Memory buses: %d transactions, %d busy cycles\n",
		cl.Mem().Transactions, cl.Mem().BusyCycles)
	fmt.Printf("CCB: %d loops, %d iterations, %d advances\n",
		cl.CCBus().LoopsStarted, cl.CCBus().IterationsRun, cl.CCBus().AdvanceOps)
	fmt.Printf("Kernel: %d page faults (%d user, %d system), %d context switches, %d jobs done\n",
		sys.Kernel.PageFaults(), sys.Kernel.PageFaultsUser, sys.Kernel.PageFaultsSystem,
		sys.Kernel.ContextSwitches, sys.Kernel.JobsCompleted)
	fmt.Printf("Idle cycles: %d (%.1f%%)\n",
		sys.IdleCycles, 100*float64(sys.IdleCycles)/float64(*cycles))
}
