package main

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"
)

// syncBuilder is a strings.Builder safe for the daemon goroutine and
// the test to share.
type syncBuilder struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuilder) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuilder) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestDaemonServesAndShutsDownGracefully boots the daemon on an
// ephemeral port, probes /v1/healthz, and cancels the run context —
// the daemon must drain and exit cleanly.
func TestDaemonServesAndShutsDownGracefully(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuilder
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-cache", t.TempDir()}, &out)
	}()

	// The daemon prints its resolved address before serving.
	var addr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its address; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "fx8d listening on "); ok {
				addr = rest
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/v1/healthz", addr))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status string `json:"status"`
		Store  bool   `json:"store_attached"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Store {
		t.Errorf("healthz = %+v", h)
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
	if !strings.Contains(out.String(), "fx8d stopped") {
		t.Errorf("missing shutdown confirmation in %q", out.String())
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out syncBuilder
	ctx := context.Background()
	if err := run(ctx, []string{"-max-inflight", "0"}, &out); err == nil {
		t.Error("zero max-inflight should error")
	}
	if err := run(ctx, []string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run(ctx, []string{"-addr", "not an address"}, &out); err == nil {
		t.Error("unlistenable address should error")
	}
}

// TestDebugAddrServesPprof boots the daemon with a debug listener and
// checks the pprof index answers there, not on the service port.
func TestDebugAddrServesPprof(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var out syncBuilder
	errc := make(chan error, 1)
	go func() {
		errc <- run(ctx, []string{"-addr", "127.0.0.1:0", "-debug-addr", "127.0.0.1:0"}, &out)
	}()

	var addr, debugAddr string
	deadline := time.Now().Add(5 * time.Second)
	for addr == "" || debugAddr == "" {
		if time.Now().After(deadline) {
			t.Fatalf("daemon never announced its addresses; output: %q", out.String())
		}
		for _, line := range strings.Split(out.String(), "\n") {
			if rest, ok := strings.CutPrefix(line, "fx8d listening on "); ok {
				addr = rest
			}
			if rest, ok := strings.CutPrefix(line, "fx8d debug (pprof) on "); ok {
				debugAddr = rest
			}
		}
		time.Sleep(10 * time.Millisecond)
	}

	resp, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", debugAddr))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof on debug listener = %d, want 200", resp.StatusCode)
	}

	svc, err := http.Get(fmt.Sprintf("http://%s/debug/pprof/cmdline", addr))
	if err != nil {
		t.Fatal(err)
	}
	svc.Body.Close()
	if svc.StatusCode == http.StatusOK {
		t.Error("pprof reachable on the service port; want it confined to -debug-addr")
	}

	cancel()
	select {
	case err := <-errc:
		if err != nil {
			t.Errorf("daemon exit: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("daemon did not shut down after cancel")
	}
}
