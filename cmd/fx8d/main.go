// Command fx8d is the measurement daemon: it serves the study's
// campaign artefacts — studies, tables, figures, sweeps — over HTTP,
// backed by the two-tier campaign cache.  Campaigns run on the
// session-execution engine's worker pool; identical concurrent
// requests share one run, and with -cache the completed campaign is
// persisted so later processes (daemon or CLI) restore it from disk.
//
// Usage:
//
//	fx8d [-addr HOST:PORT] [-cache DIR] [-workers N] [-max-inflight N]
//	     [-max-queue N] [-cache-max-bytes N] [-debug-addr HOST:PORT]
//	     [-access-log] [-join URL] [-advertise ADDR] [-heartbeat DUR]
//
// -debug-addr starts a second listener serving net/http/pprof
// (/debug/pprof/) — profiling stays off the service port and off by
// default.  -access-log emits one structured log line per request to
// stderr, carrying the request ID that GET /v1/trace/{id} keys on.
//
// Every daemon embeds a fleet campaign coordinator behind the
// /v1/jobs API; with -cache it resumes interrupted jobs at boot.
// -join URL registers this daemon as a work backend with another
// daemon's coordinator, re-registering every -heartbeat until
// shutdown, so the fleet's membership follows the live processes.
//
// The daemon shuts down gracefully on SIGINT/SIGTERM, draining
// in-flight requests.  See internal/service for the endpoint list.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on DefaultServeMux for -debug-addr
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/cli"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	cli.Main(func(args []string, stdout io.Writer) error {
		ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
		defer stop()
		return run(ctx, args, stdout)
	})
}

// drainTimeout bounds graceful shutdown: in-flight requests get this
// long to finish once the stop signal arrives.
const drainTimeout = 10 * time.Second

func run(ctx context.Context, args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("fx8d", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8087", "listen address")
	cacheDir := fs.String("cache", "", "campaign store directory (persists campaigns across restarts; shared with the CLI tools)")
	cacheMax := fs.Int64("cache-max-bytes", 0, "evict oldest store entries beyond this total size (0 = unbounded)")
	workers := fs.Int("workers", 0, "parallel session workers per campaign (0 = one per CPU)")
	inflight := fs.Int("max-inflight", 4, "concurrently admitted expensive requests")
	maxQueue := fs.Int("max-queue", 0, "expensive requests allowed to wait for admission before 429s (0 = 4x max-inflight)")
	debugAddr := fs.String("debug-addr", "", "listen address for the pprof debug server (empty = disabled)")
	accessLog := fs.Bool("access-log", false, "log one structured line per request to stderr")
	join := fs.String("join", "", "coordinator URL to register with as a fleet backend (empty = standalone)")
	advertise := fs.String("advertise", "", "address to advertise to the coordinator (default: the listen address)")
	heartbeat := fs.Duration("heartbeat", coord.DefaultTTL/3, "re-registration cadence while joined to a coordinator")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *inflight < 1 {
		return fmt.Errorf("-max-inflight must be >= 1, got %d", *inflight)
	}
	if *maxQueue < 0 {
		return fmt.Errorf("-max-queue must be >= 0, got %d", *maxQueue)
	}

	cache := core.NewStudyCache()
	if *cacheDir != "" {
		s, err := store.Open(*cacheDir, store.WithMaxBytes(*cacheMax))
		if err != nil {
			return err
		}
		cache.SetStore(s)
		fmt.Fprintf(stdout, "campaign store: %s\n", s.Dir())
	}

	cfg := service.Config{
		Cache:       cache,
		Workers:     *workers,
		MaxInFlight: *inflight,
		MaxQueue:    *maxQueue,
	}
	if *accessLog {
		cfg.Logger = slog.New(slog.NewTextHandler(os.Stderr, nil))
	}
	srv := service.New(cfg)
	defer srv.Close()

	// A persistent store may hold jobs a previous daemon left in state
	// running (crash, kill -9, graceful stop mid-campaign); restart
	// them — completed units replay from the unit cache, so resume
	// costs only what the dead daemon had not finished.
	if n := srv.Coordinator().ResumeInterrupted(); n > 0 {
		fmt.Fprintf(stdout, "resumed %d interrupted job(s)\n", n)
	}

	if *debugAddr != "" {
		// pprof registers on http.DefaultServeMux; serving it from a
		// second listener keeps profiling endpoints off the service
		// port entirely.
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			return fmt.Errorf("debug listener: %w", err)
		}
		defer dln.Close()
		go http.Serve(dln, http.DefaultServeMux) //nolint:errcheck // dies with the process
		fmt.Fprintf(stdout, "fx8d debug (pprof) on %s\n", dln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: srv}
	fmt.Fprintf(stdout, "fx8d listening on %s\n", ln.Addr())

	// Fleet membership: announce this daemon to a coordinator and keep
	// the registration alive until shutdown.  The coordinator will
	// then dispatch campaign units here via POST /v1/run/*.
	if *join != "" {
		workerAddr := *advertise
		if workerAddr == "" {
			workerAddr = ln.Addr().String()
		}
		fmt.Fprintf(stdout, "joining fleet at %s as %s\n", *join, workerAddr)
		go coord.HeartbeatLoop(ctx, nil, *join, workerAddr, *heartbeat)
	}

	// Graceful shutdown: when the signal context fires, stop
	// accepting, drain in-flight requests, then let Serve return.
	shutdownErr := make(chan error, 1)
	go func() {
		<-ctx.Done()
		drainCtx, cancel := context.WithTimeout(context.Background(), drainTimeout)
		defer cancel()
		shutdownErr <- hs.Shutdown(drainCtx)
	}()

	if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	if err := <-shutdownErr; err != nil {
		return fmt.Errorf("draining: %w", err)
	}
	fmt.Fprintln(stdout, "fx8d stopped")
	return nil
}
