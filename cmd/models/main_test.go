package main

import (
	"strings"
	"testing"
)

func TestRunQuickModels(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"Median Miss Rate vs Cw", "Median CE Bus Busy vs Pc", "model: y ="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("unknown scale should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
