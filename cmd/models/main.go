// Command models runs the measurement campaign and prints the section
// 5.2 model-building internals: the median points on each concurrency
// grid and the fitted second-order models, for all three system
// measures.  The campaign's sessions fan out over the session engine's
// worker pool.
//
// Usage:
//
//	models [-scale quick|paper] [-workers N] [-cache DIR]
package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/sas"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("models", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "campaign scale: quick or paper")
	workers := fs.Int("workers", 0, "parallel session workers (0 = one per CPU)")
	cacheDir := fs.String("cache", "", "campaign store directory (shared with the other tools and fx8d)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg, err := core.ScaleConfig(*scale)
	if err != nil {
		return err
	}
	st, err := core.StudyAt(*cacheDir, cfg, *workers)
	if err != nil {
		return err
	}

	dump := func(axis string, models [core.NumSystemMeasures]core.Model) {
		for _, m := range models {
			fmt.Fprintf(stdout, "%s vs %s:\n", m.Measure, axis)
			if m.Err != nil {
				fmt.Fprintf(stdout, "  fit failed: %v\n\n", m.Err)
				continue
			}
			for _, p := range m.Points {
				fmt.Fprintf(stdout, "  %s=%-5.2f median=%-12.5g n=%d\n", axis, p.X, p.Y, p.N)
			}
			fmt.Fprintf(stdout, "  model: y = %s*x + %s*x^2 + %s   R2=%.3f\n\n",
				sas.Sci(m.Fit.B1), sas.Sci(m.Fit.B2), sas.Sci(m.Fit.C), m.Fit.R2)
		}
	}
	dump("Cw", st.Models.VsCw)
	dump("Pc", st.Models.VsPc)
	return nil
}
