// Command models runs the measurement campaign and prints the section
// 5.2 model-building internals: the median points on each concurrency
// grid and the fitted second-order models, for all three system
// measures.
//
// Usage:
//
//	models [-scale quick|paper]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/sas"
)

func main() {
	scale := flag.String("scale", "quick", "campaign scale: quick or paper")
	flag.Parse()

	var cfg core.StudyConfig
	switch *scale {
	case "quick":
		cfg = core.QuickScale()
	case "paper":
		cfg = core.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}
	st := core.RunStudy(cfg)

	dump := func(axis string, models [core.NumSystemMeasures]core.Model) {
		for _, m := range models {
			fmt.Printf("%s vs %s:\n", m.Measure, axis)
			if m.Err != nil {
				fmt.Printf("  fit failed: %v\n\n", m.Err)
				continue
			}
			for _, p := range m.Points {
				fmt.Printf("  %s=%-5.2f median=%-12.5g n=%d\n", axis, p.X, p.Y, p.N)
			}
			fmt.Printf("  model: y = %s*x + %s*x^2 + %s   R2=%.3f\n\n",
				sas.Sci(m.Fit.B1), sas.Sci(m.Fit.B2), sas.Sci(m.Fit.C), m.Fit.R2)
		}
	}
	dump("Cw", st.Models.VsCw)
	dump("Pc", st.Models.VsPc)
}
