// Command fxrun assembles an fxasm program and profiles it on the
// simulated machine: the per-program evaluation of the study's future
// work, driven from a textual program.
//
// Usage:
//
//	fxrun [-cluster N] [-limit N] program.fxasm
//	echo "compute 100" | fxrun
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/fxasm"
)

func main() {
	cli.Main(func(args []string, stdout io.Writer) error {
		return run(args, os.Stdin, stdout)
	})
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("fxrun", flag.ContinueOnError)
	cluster := fs.Int("cluster", 8, "cluster resource class (1..8 CEs)")
	limit := fs.Int("limit", 50_000_000, "cycle budget")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	src := stdin
	name := "(stdin)"
	if fs.NArg() > 0 {
		f, err := os.Open(fs.Arg(0))
		if err != nil {
			return err
		}
		defer f.Close()
		src = f
		name = fs.Arg(0)
	}
	prog, err := fxasm.Assemble(src)
	if err != nil {
		return err
	}

	prof := core.ProfileProgram(fx8.DefaultConfig(), prog.Stream(), *cluster, *limit)
	fmt.Fprintf(stdout, "%s on a %d-CE cluster:\n", name, *cluster)
	fmt.Fprintf(stdout, "  completed:        %v\n", prof.Completed)
	fmt.Fprintf(stdout, "  cycles:           %d\n", prof.Cycles)
	fmt.Fprintf(stdout, "  loops/iterations: %d / %d\n", prof.LoopCount, prof.Iterations)
	fmt.Fprintf(stdout, "  Cw:               %.3f\n", prof.Conc.Cw)
	if prof.Conc.Defined {
		fmt.Fprintf(stdout, "  Pc:               %.2f\n", prof.Conc.Pc)
	}
	fmt.Fprintf(stdout, "  CE bus busy:      %.3f\n", prof.BusBusy)
	fmt.Fprintf(stdout, "  missrate:         %.4f\n", prof.MissRate)
	fmt.Fprintf(stdout, "  page faults:      %d\n", prof.PageFaults)
	return nil
}
