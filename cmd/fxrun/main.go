// Command fxrun assembles an fxasm program and profiles it on the
// simulated machine: the per-program evaluation of the study's future
// work, driven from a textual program.
//
// Usage:
//
//	fxrun [-cluster N] [-limit N] program.fxasm
//	echo "compute 100" | fxrun
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/fxasm"
)

func main() {
	cluster := flag.Int("cluster", 8, "cluster resource class (1..8 CEs)")
	limit := flag.Int("limit", 50_000_000, "cycle budget")
	flag.Parse()

	var src io.Reader = os.Stdin
	name := "(stdin)"
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		src = f
		name = flag.Arg(0)
	}
	prog, err := fxasm.Assemble(src)
	if err != nil {
		log.Fatal(err)
	}

	prof := core.ProfileProgram(fx8.DefaultConfig(), prog.Stream(), *cluster, *limit)
	fmt.Printf("%s on a %d-CE cluster:\n", name, *cluster)
	fmt.Printf("  completed:        %v\n", prof.Completed)
	fmt.Printf("  cycles:           %d\n", prof.Cycles)
	fmt.Printf("  loops/iterations: %d / %d\n", prof.LoopCount, prof.Iterations)
	fmt.Printf("  Cw:               %.3f\n", prof.Conc.Cw)
	if prof.Conc.Defined {
		fmt.Printf("  Pc:               %.2f\n", prof.Conc.Pc)
	}
	fmt.Printf("  CE bus busy:      %.3f\n", prof.BusBusy)
	fmt.Printf("  missrate:         %.4f\n", prof.MissRate)
	fmt.Printf("  page faults:      %d\n", prof.PageFaults)
}
