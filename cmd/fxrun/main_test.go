package main

import (
	"strings"
	"testing"
)

func TestRunProgramFromStdin(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-cluster", "4", "-limit", "1000000"},
		strings.NewReader("compute 100\n"), &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"(stdin) on a 4-CE cluster", "completed:", "cycles:"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	var out strings.Builder
	if err := run(nil, strings.NewReader("not an opcode at all\n"), &out); err == nil {
		t.Error("bad program should error")
	}
	if err := run([]string{"-no-such-flag"}, strings.NewReader(""), &out); err == nil {
		t.Error("unknown flag should error")
	}
	if err := run([]string{"/no/such/file.fxasm"}, strings.NewReader(""), &out); err == nil {
		t.Error("missing file should error")
	}
}
