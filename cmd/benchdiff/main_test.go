package main

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/perf"
)

func writeSet(t *testing.T, path string, pairs ...any) {
	t.Helper()
	var s perf.Set
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Results = append(s.Results, perf.Result{
			Name: pairs[i].(string), NsPerOp: pairs[i+1].(float64), Iterations: 10,
		})
	}
	if err := s.WriteFile(path); err != nil {
		t.Fatal(err)
	}
}

func TestParseModeWritesResultSet(t *testing.T) {
	dir := t.TempDir()
	stream := filepath.Join(dir, "stream.json")
	out := filepath.Join(dir, "BENCH_x.json")
	raw := `{"Action":"output","Output":"BenchmarkY-8 \t 200\t 5000 ns/op\n"}` + "\n"
	if err := os.WriteFile(stream, []byte(raw), 0o644); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-parse", "-o", out, stream}, &buf); err != nil {
		t.Fatal(err)
	}
	s, err := perf.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 1 || s.Results[0].Name != "BenchmarkY" || s.Results[0].NsPerOp != 5000 {
		t.Errorf("parsed set = %+v", s)
	}
}

func TestCompareFilesPassAndFail(t *testing.T) {
	dir := t.TempDir()
	oldF, newF := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeSet(t, oldF, "BenchmarkA", 1000.0)
	writeSet(t, newF, "BenchmarkA", 1100.0)

	var buf bytes.Buffer
	if err := run([]string{"-threshold", "15%", oldF, newF}, &buf); err != nil {
		t.Fatalf("+10%% should pass: %v\n%s", err, buf.String())
	}

	writeSet(t, newF, "BenchmarkA", 1300.0)
	buf.Reset()
	err := run([]string{"-threshold", "15%", oldF, newF}, &buf)
	if !errors.Is(err, errRegression) {
		t.Fatalf("+30%% should fail the gate, got %v", err)
	}
	if !strings.Contains(buf.String(), "REGRESSION") {
		t.Errorf("output should name the regression:\n%s", buf.String())
	}
}

func TestCompareDirectoriesMatchesByName(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeSet(t, filepath.Join(oldDir, "BENCH_fx8.json"), "BenchmarkStep", 100.0)
	writeSet(t, filepath.Join(newDir, "BENCH_fx8.json"), "BenchmarkStep", 90.0)
	// A brand-new layer with no baseline must not gate.
	writeSet(t, filepath.Join(newDir, "BENCH_service.json"), "BenchmarkStudy", 5000.0)

	var buf bytes.Buffer
	if err := run([]string{oldDir, newDir}, &buf); err != nil {
		t.Fatalf("compare failed: %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "no baseline") {
		t.Errorf("new layer should be reported as skipped:\n%s", buf.String())
	}
}

func TestVanishedLayerFileGatesUnlessAllowed(t *testing.T) {
	oldDir, newDir := t.TempDir(), t.TempDir()
	writeSet(t, filepath.Join(oldDir, "BENCH_fx8.json"), "BenchmarkStep", 100.0)
	writeSet(t, filepath.Join(oldDir, "BENCH_core.json"), "BenchmarkSession", 100.0)
	writeSet(t, filepath.Join(newDir, "BENCH_fx8.json"), "BenchmarkStep", 100.0)

	var buf bytes.Buffer
	err := run([]string{oldDir, newDir}, &buf)
	if !errors.Is(err, errRegression) {
		t.Fatalf("a layer file missing from NEW should gate, got %v\n%s", err, buf.String())
	}
	if !strings.Contains(buf.String(), "BENCH_core.json") {
		t.Errorf("output should name the vanished layer:\n%s", buf.String())
	}
	buf.Reset()
	if err := run([]string{"-allow-missing", oldDir, newDir}, &buf); err != nil {
		t.Fatalf("-allow-missing should pass: %v\n%s", err, buf.String())
	}
}

func TestVanishedBenchmarkGatesUnlessAllowed(t *testing.T) {
	dir := t.TempDir()
	oldF, newF := filepath.Join(dir, "old.json"), filepath.Join(dir, "new.json")
	writeSet(t, oldF, "BenchmarkA", 1000.0, "BenchmarkGone", 1000.0)
	writeSet(t, newF, "BenchmarkA", 1000.0)

	var buf bytes.Buffer
	if err := run([]string{oldF, newF}, &buf); !errors.Is(err, errRegression) {
		t.Fatalf("vanished benchmark should gate, got %v", err)
	}
	buf.Reset()
	if err := run([]string{"-allow-missing", oldF, newF}, &buf); err != nil {
		t.Fatalf("-allow-missing should pass: %v\n%s", err, buf.String())
	}
}

func TestPrintSummarizes(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "BENCH_core.json")
	writeSet(t, f, "BenchmarkRunRandomSession", 14_000_000.0)
	var buf bytes.Buffer
	if err := run([]string{"-print", f}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "BenchmarkRunRandomSession") {
		t.Errorf("summary missing benchmark name:\n%s", buf.String())
	}
}

func TestThresholdParsing(t *testing.T) {
	for in, want := range map[string]float64{"15%": 0.15, "0.15": 0.15, "20%": 0.20} {
		got, err := parseThreshold(in)
		if err != nil || got != want {
			t.Errorf("parseThreshold(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := parseThreshold("nope"); err == nil {
		t.Error("bad threshold should error")
	}
}

func TestPrintShowsMetricsAndGeomean(t *testing.T) {
	dir := t.TempDir()
	f := filepath.Join(dir, "BENCH_study.json")
	s := perf.Set{Results: []perf.Result{
		{Name: "BenchmarkRunStudy/workers=1", NsPerOp: 900_000_000, Iterations: 2},
		{Name: "BenchmarkRunStudy/workers=max", NsPerOp: 280_000_000, Iterations: 2,
			Metrics: map[string]float64{"speedup-x": 3.21}},
	}}
	if err := s.WriteFile(f); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{"-print", f}, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "speedup-x") {
		t.Errorf("-print omits custom metric:\n%s", out)
	}
	if !strings.Contains(out, "geomean") {
		t.Errorf("-print omits geomean line:\n%s", out)
	}
}

func TestCompareShowsMetricMovement(t *testing.T) {
	dir := t.TempDir()
	oldF := filepath.Join(dir, "old.json")
	newF := filepath.Join(dir, "new.json")
	old := perf.Set{Results: []perf.Result{
		{Name: "BenchmarkRunStudy/workers=max", NsPerOp: 900, Iterations: 2,
			Metrics: map[string]float64{"speedup-x": 1.0}},
	}}
	cur := perf.Set{Results: []perf.Result{
		{Name: "BenchmarkRunStudy/workers=max", NsPerOp: 850, Iterations: 2,
			Metrics: map[string]float64{"speedup-x": 3.4}},
	}}
	if err := old.WriteFile(oldF); err != nil {
		t.Fatal(err)
	}
	if err := cur.WriteFile(newF); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := run([]string{oldF, newF}, &buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "metric speedup-x") {
		t.Errorf("compare output omits metric movement:\n%s", buf.String())
	}
}
