// Command benchdiff is the benchmark toolchain shared by make bench
// and the CI regression gate: it parses `go test -json` bench streams
// into the BENCH_<layer>.json result format, prints human-readable
// summaries, and compares two result sets (or two directories of
// them) against a regression threshold.
//
// Usage:
//
//	benchdiff -parse [-o BENCH_x.json] [STREAM]   parse a bench run (stdin default)
//	benchdiff -print FILE...                      summarize result files
//	benchdiff [-threshold 15%] [-allow-missing] OLD NEW
//	                                              compare sets; exits 1 past threshold
//
// OLD and NEW are files in any accepted form, or directories whose
// BENCH_*.json files are matched by name.  A baseline that lacks a
// benchmark (or a whole layer file) never fails the gate — every
// benchmark is new once; a benchmark that vanishes from NEW fails
// unless -allow-missing is given.
//
// Custom b.ReportMetric values (e.g. the study benchmark's speedup-x
// scaling ratio) appear in -print summaries on their benchmark's row
// and in comparisons as indented movement sub-rows; they inform but
// never gate, because a custom metric has no universal better
// direction.  -print also closes each set with a geomean ns/op line,
// the single number that tracks a layer's overall drift.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cli"
	"repro/internal/perf"
)

func main() { cli.Main(run) }

var errRegression = errors.New("benchmark regression past threshold")

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	parse := fs.Bool("parse", false, "parse a go test -json bench stream into a result set")
	out := fs.String("o", "", "with -parse: write the result set to this file (default stdout)")
	print := fs.Bool("print", false, "print a summary of each result file")
	threshold := fs.String("threshold", "15%", "regression threshold, e.g. 15% or 0.15")
	allowMissing := fs.Bool("allow-missing", false, "do not fail when a baseline benchmark vanished from NEW")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	switch {
	case *parse:
		return runParse(fs.Args(), *out, stdout)
	case *print:
		return runPrint(fs.Args(), stdout)
	}

	if fs.NArg() != 2 {
		return fmt.Errorf("usage: benchdiff [-threshold 15%%] [-allow-missing] OLD NEW (or -parse / -print; see -h)")
	}
	th, err := parseThreshold(*threshold)
	if err != nil {
		return err
	}
	return runCompare(fs.Arg(0), fs.Arg(1), th, *allowMissing, stdout)
}

// runParse converts one bench stream (file or stdin) into a result
// set document.
func runParse(args []string, out string, stdout io.Writer) error {
	var in io.Reader = os.Stdin
	switch len(args) {
	case 0:
	case 1:
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	default:
		return fmt.Errorf("-parse takes at most one input file")
	}
	s, err := perf.Parse(in)
	if err != nil {
		return err
	}
	if out == "" {
		return s.Write(stdout)
	}
	if err := s.WriteFile(out); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "%s: %d benchmarks\n", out, len(s.Results))
	return nil
}

// runPrint summarizes each result file.
func runPrint(paths []string, stdout io.Writer) error {
	if len(paths) == 0 {
		return fmt.Errorf("-print needs at least one result file")
	}
	for _, p := range paths {
		s, err := perf.ReadFile(p)
		if err != nil {
			return err
		}
		fmt.Fprintf(stdout, "== %s\n", p)
		s.Summarize(stdout)
	}
	return nil
}

// runCompare diffs NEW against OLD, which are either two result files
// or two directories matched by BENCH_*.json base name.
func runCompare(oldPath, newPath string, threshold float64, allowMissing bool, stdout io.Writer) error {
	pairs, err := matchPairs(oldPath, newPath)
	if err != nil {
		return err
	}
	failed := false
	for _, p := range pairs {
		if p.oldFile == "" {
			fmt.Fprintf(stdout, "== %s: no baseline (layer is new) — skipped\n", filepath.Base(p.newFile))
			continue
		}
		if p.newFile == "" {
			fmt.Fprintf(stdout, "== %s: layer VANISHED from NEW\n", filepath.Base(p.oldFile))
			if !allowMissing {
				failed = true
				fmt.Fprintf(stdout, "FAIL: %s: %s\n", filepath.Base(p.oldFile), perf.StatusVanished)
			}
			continue
		}
		oldSet, err := perf.ReadFile(p.oldFile)
		if err != nil {
			return err
		}
		newSet, err := perf.ReadFile(p.newFile)
		if err != nil {
			return err
		}
		rep := perf.Compare(oldSet, newSet, threshold)
		fmt.Fprintf(stdout, "== %s vs %s (threshold %.0f%%)\n", p.oldFile, p.newFile, threshold*100)
		rep.Format(stdout)
		if fails := rep.Failures(allowMissing); len(fails) > 0 {
			failed = true
			for _, d := range fails {
				fmt.Fprintf(stdout, "FAIL: %s: %s\n", d.Name, d.Status)
			}
		}
	}
	if failed {
		return errRegression
	}
	fmt.Fprintln(stdout, "benchdiff: no regressions")
	return nil
}

type pair struct{ oldFile, newFile string }

// matchPairs resolves the OLD/NEW arguments: two plain files compare
// directly; two directories match their BENCH_*.json files by base
// name.  A NEW file with no OLD counterpart is reported but never
// gates (the layer is new); an OLD file with no NEW counterpart is a
// vanished layer and gates like a vanished benchmark.
func matchPairs(oldPath, newPath string) ([]pair, error) {
	oi, errOld := os.Stat(oldPath)
	ni, errNew := os.Stat(newPath)
	if errNew != nil {
		return nil, errNew
	}
	if errOld != nil {
		return nil, errOld
	}
	if oi.IsDir() != ni.IsDir() {
		return nil, fmt.Errorf("OLD and NEW must both be files or both directories")
	}
	if !ni.IsDir() {
		return []pair{{oldFile: oldPath, newFile: newPath}}, nil
	}
	news, err := filepath.Glob(filepath.Join(newPath, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	if len(news) == 0 {
		return nil, fmt.Errorf("no BENCH_*.json files in %s", newPath)
	}
	sort.Strings(news)
	matched := map[string]bool{}
	var pairs []pair
	for _, nf := range news {
		of := filepath.Join(oldPath, filepath.Base(nf))
		if _, err := os.Stat(of); err != nil {
			of = ""
		} else {
			matched[filepath.Base(nf)] = true
		}
		pairs = append(pairs, pair{oldFile: of, newFile: nf})
	}
	olds, err := filepath.Glob(filepath.Join(oldPath, "BENCH_*.json"))
	if err != nil {
		return nil, err
	}
	sort.Strings(olds)
	for _, of := range olds {
		if !matched[filepath.Base(of)] {
			pairs = append(pairs, pair{oldFile: of})
		}
	}
	return pairs, nil
}

// parseThreshold accepts "15%" or "0.15".
func parseThreshold(s string) (float64, error) {
	pct := strings.HasSuffix(s, "%")
	v, err := strconv.ParseFloat(strings.TrimSuffix(s, "%"), 64)
	if err != nil || v < 0 {
		return 0, fmt.Errorf("invalid threshold %q (want e.g. 15%% or 0.15)", s)
	}
	if pct {
		v /= 100
	}
	return v, nil
}
