package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunRandomSession(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "random", "-samples", "2", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"random: 1 sessions, 2 samples", "num_8", "Cw ="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunParallelSessionsMatchSequential(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		err := run([]string{"-mode", "random", "-samples", "1", "-seed", "7",
			"-sessions", "3", "-workers", workers}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	seq, par := render("1"), render("8")
	if seq != par {
		t.Errorf("-workers changed the output:\nseq:\n%s\npar:\n%s", seq, par)
	}
	if !strings.Contains(seq, "random: 3 sessions") {
		t.Errorf("session count missing:\n%s", seq)
	}
}

func TestRunTransitionMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "transition", "-samples", "1", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "transition: 1 sessions") {
		t.Errorf("header missing:\n%s", got)
	}
}

// TestRunCacheRoundTrip proves -cache: the second invocation restores
// the sessions from the store and prints identical output.
func TestRunCacheRoundTrip(t *testing.T) {
	dir := t.TempDir()
	render := func() string {
		var out strings.Builder
		err := run([]string{"-mode", "transition", "-samples", "1", "-seed", "5", "-cache", dir}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	first := render()
	entries, err := filepath.Glob(filepath.Join(dir, "*.fx8s"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries after first run = %v, %v; want one", entries, err)
	}
	info1, _ := os.Stat(entries[0])
	if second := render(); second != first {
		t.Errorf("cached run output differs:\n%s\nvs\n%s", first, second)
	}
	info2, _ := os.Stat(entries[0])
	if info1.ModTime() != info2.ModTime() {
		t.Error("second run rewrote the store entry instead of hitting it")
	}
}

// TestRunBackendsFallBackToLocal proves the -backends contract at
// the CLI surface: with no backend answering, every session falls
// back to local compute and the output is identical to a plain local
// run.  (Byte-identity against live backends is covered by
// internal/integration.)
func TestRunBackendsFallBackToLocal(t *testing.T) {
	render := func(extra ...string) string {
		var out strings.Builder
		args := append([]string{"-mode", "random", "-samples", "1", "-seed", "11", "-sessions", "2"}, extra...)
		if err := run(args, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	local := render()
	// Port 1 on localhost: connections are refused immediately, so
	// the run exercises reroute-then-fallback without a live daemon.
	viaDead := render("-backends", "127.0.0.1:1")
	if local != viaDead {
		t.Errorf("-backends fallback output differs from local:\n%s\nvs\n%s", local, viaDead)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run([]string{"-sessions", "0"}, &out); err == nil {
		t.Error("zero sessions should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
