package main

import (
	"strings"
	"testing"
)

func TestRunRandomSession(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "random", "-samples", "2", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"random: 1 sessions, 2 samples", "num_8", "Cw ="} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunParallelSessionsMatchSequential(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		err := run([]string{"-mode", "random", "-samples", "1", "-seed", "7",
			"-sessions", "3", "-workers", workers}, &out)
		if err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	seq, par := render("1"), render("8")
	if seq != par {
		t.Errorf("-workers changed the output:\nseq:\n%s\npar:\n%s", seq, par)
	}
	if !strings.Contains(seq, "random: 3 sessions") {
		t.Errorf("session count missing:\n%s", seq)
	}
}

func TestRunTransitionMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "transition", "-samples", "1", "-seed", "5"}, &out); err != nil {
		t.Fatal(err)
	}
	if got := out.String(); !strings.Contains(got, "transition: 1 sessions") {
		t.Errorf("header missing:\n%s", got)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-mode", "bogus"}, &out); err == nil {
		t.Error("unknown mode should error")
	}
	if err := run([]string{"-sessions", "0"}, &out); err == nil {
		t.Error("zero sessions should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
