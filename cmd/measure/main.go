// Command measure runs measurement sessions against freshly booted
// machines — random workload sampling or triggered captures — and
// prints the reduced event counts and concurrency measures, as the
// study's measurement control scripts did.  Multiple sessions (the
// study's "different measurement days") fan out over the session
// engine's worker pool, or, with -backends, shard across a fleet of
// fx8d nodes (failed or slow backends are retried and hedged; local
// compute is the fallback).
//
// With -job, the sessions are instead submitted to an fx8d
// coordinator as one persistent job (POST /v1/jobs) and polled to
// completion — the submit-and-poll path for ad-hoc unit lists, with
// the daemon checkpointing per unit so an interrupted run resumes.
//
// Usage:
//
//	measure [-mode random|all8|transition] [-seed N] [-samples N]
//	        [-sessions N] [-workers N] [-cache DIR]
//	        [-backends HOST:PORT,...] [-job URL]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/cli"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/remote"
	"repro/internal/store"
)

func main() { cli.Main(run) }

// sessionsKey is the content-address configuration of a cached
// measure invocation: results are a pure function of these fields
// (worker count provably does not change them).
type sessionsKey struct {
	Mode     string
	Seed     uint64
	Samples  int
	Sessions int
}

// runSessions fans n session units over the runner (local pool or a
// backend fleet) and unwraps one result field per unit, in session
// order: mkUnit builds unit i, pick selects the session from its
// result (nil marks a defective runner result).  Like the sweep and
// campaign paths, a defective fleet — a backend answering 200 with
// the wrong shape — costs a local recompute, never the run.
//
// With jobURL the units are instead submitted to an fx8d coordinator
// as one persistent job and the job's result unwrapped; job failures
// are the coordinator's to retry (it drains failed backends locally),
// so there is no client-side fallback on that path.
func runSessions[T any](jobURL string, workers int, runner core.StudyRunner, n int,
	mkUnit func(i int) core.StudyUnit, pick func(core.StudyUnitResult) *T) ([]*T, error) {
	units := make([]core.StudyUnit, n)
	for i := range units {
		units[i] = mkUnit(i)
	}
	unwrap := func(results []core.StudyUnitResult) ([]*T, error) {
		out := make([]*T, len(results))
		for i, res := range results {
			p := pick(res)
			if p == nil {
				return nil, fmt.Errorf("runner returned no session for unit %d", i+1)
			}
			out[i] = p
		}
		return out, nil
	}
	if jobURL != "" {
		res, err := coord.SubmitAndWait(context.Background(), nil, jobURL,
			coord.JobSpec{Kind: "sessions", Units: units}, 100*time.Millisecond)
		if err != nil {
			return nil, err
		}
		if len(res.Sessions) != len(units) {
			return nil, fmt.Errorf("job returned %d results for %d units", len(res.Sessions), len(units))
		}
		return unwrap(res.Sessions)
	}
	run := func(r core.StudyRunner) ([]*T, error) {
		results, err := engine.RunAll(context.Background(), workers, units, r, nil)
		if err != nil {
			return nil, err
		}
		return unwrap(results)
	}
	if runner == nil {
		return run(core.LocalStudyRunner())
	}
	out, err := run(runner)
	if err != nil {
		return run(core.LocalStudyRunner())
	}
	return out, nil
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("measure", flag.ContinueOnError)
	mode := fs.String("mode", "random", "session mode: random, all8 or transition")
	seed := fs.Uint64("seed", 1987, "base workload seed; session i uses seed+i")
	samples := fs.Int("samples", 20, "samples to collect per session")
	sessions := fs.Int("sessions", 1, "independent sessions to run (consecutive seeds)")
	workers := fs.Int("workers", 0, "parallel session workers (0 = one per CPU)")
	wave := fs.Int("wave", 0, "render the first N records of the first buffer as a waveform")
	cacheDir := fs.String("cache", "", "campaign store directory (shared with the other tools and fx8d)")
	backends := fs.String("backends", "", "comma-separated fx8d backends (host:port,...) to shard sessions across")
	jobURL := fs.String("job", "", "fx8d coordinator URL to submit the sessions to as a persistent job (empty = run here)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}
	if *sessions < 1 {
		return fmt.Errorf("-sessions must be >= 1, got %d", *sessions)
	}
	var st *store.Store
	if *cacheDir != "" {
		var err error
		if st, err = store.Open(*cacheDir); err != nil {
			return err
		}
	}
	key := sessionsKey{Mode: *mode, Seed: *seed, Samples: *samples, Sessions: *sessions}
	runner := remote.StudyRunner(remote.ParseBackends(*backends))

	switch *mode {
	case "random":
		runs, err := store.GetOrComputeJSON(st, "measure-random/v1", key, func() ([]*core.Session, error) {
			return runSessions(*jobURL, *workers, runner, *sessions,
				func(i int) core.StudyUnit {
					spec := core.DefaultSessionSpec(*seed + uint64(i))
					spec.Samples = *samples
					return core.StudyUnit{ID: i + 1, Random: &spec}
				},
				func(res core.StudyUnitResult) *core.Session { return res.Random })
		})
		if err != nil {
			return err
		}
		var total monitor.EventCounts
		var faults uint64
		nsamples := 0
		for _, ses := range runs {
			total.Add(ses.Total)
			faults += ses.TotalFaults
			nsamples += len(ses.Samples)
		}
		fmt.Fprintf(stdout, "random: %d sessions, %d samples, %d records\n\n",
			len(runs), nsamples, total.Records)
		fmt.Fprintln(stdout, experiments.Table1(total))
		m := core.MeasuresFromCounts(total)
		fmt.Fprintf(stdout, "Cw = %.4f", m.Cw)
		if m.Defined {
			fmt.Fprintf(stdout, "   Pc = %.2f", m.Pc)
		}
		fmt.Fprintf(stdout, "   BusBusy = %.4f   Missrate = %.5f   PageFaults = %d\n",
			total.BusBusy(), total.MissRate(), faults)

	case "all8", "transition":
		trigger := monitor.TriggerAll8
		if *mode == "transition" {
			trigger = monitor.TriggerTransition
		}
		runs, err := store.GetOrComputeJSON(st, "measure-triggered/v1", key, func() ([]*core.TriggeredSession, error) {
			return runSessions(*jobURL, *workers, runner, *sessions,
				func(i int) core.StudyUnit {
					spec := core.DefaultTriggeredSpec(trigger, *seed+uint64(i))
					spec.Samples = *samples
					return core.StudyUnit{ID: i + 1, Triggered: &spec}
				},
				func(res core.StudyUnitResult) *core.TriggeredSession { return res.Triggered })
		})
		if err != nil {
			return err
		}
		var total monitor.EventCounts
		timeouts, nbufs := 0, 0
		for _, ts := range runs {
			total.Add(ts.Total)
			timeouts += ts.Timeouts
			nbufs += len(ts.Buffers)
		}
		fmt.Fprintf(stdout, "%s: %d sessions, %d buffers captured, %d timeouts\n\n",
			trigger, len(runs), nbufs, timeouts)
		fmt.Fprintln(stdout, experiments.Table1(total))
		if *wave > 0 && len(runs) > 0 && len(runs[0].Buffers) > 0 {
			buf := runs[0].Buffers[0]
			n := *wave
			if n > len(buf) {
				n = len(buf)
			}
			fmt.Fprintln(stdout, monitor.Waveform(buf[:n], 100))
		}
		if trigger == monitor.TriggerTransition {
			var st core.TransitionStats
			for _, ts := range runs {
				st.Add(core.AnalyzeTransitions(ts.Buffers))
			}
			fmt.Fprintln(stdout, "Transition-state shares:")
			for j := 7; j >= 2; j-- {
				fmt.Fprintf(stdout, "  %d active: %.1f%%\n", j, 100*st.TransitionShare(j))
			}
			a, b := st.DominantPair()
			fmt.Fprintf(stdout, "Dominant processors during transitions: CE %d and CE %d\n", a, b)
		}

	default:
		return fmt.Errorf("unknown mode %q", *mode)
	}
	return nil
}
