// Command measure runs one measurement session against a freshly
// booted machine — random workload sampling or a triggered capture —
// and prints the reduced event counts and concurrency measures, as the
// study's measurement control scripts did.
//
// Usage:
//
//	measure [-mode random|all8|transition] [-seed N] [-samples N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/monitor"
)

func main() {
	mode := flag.String("mode", "random", "session mode: random, all8 or transition")
	seed := flag.Uint64("seed", 1987, "session workload seed")
	samples := flag.Int("samples", 20, "samples to collect")
	wave := flag.Int("wave", 0, "render the first N records of the first buffer as a waveform")
	flag.Parse()

	switch *mode {
	case "random":
		spec := core.DefaultSessionSpec(*seed)
		spec.Samples = *samples
		ses := core.RunRandomSession(1, spec)
		fmt.Printf("random session: %d samples, %d records\n\n",
			len(ses.Samples), ses.Total.Records)
		fmt.Println(experiments.Table1(ses.Total))
		m := core.MeasuresFromCounts(ses.Total)
		fmt.Printf("Cw = %.4f", m.Cw)
		if m.Defined {
			fmt.Printf("   Pc = %.2f", m.Pc)
		}
		fmt.Printf("   BusBusy = %.4f   Missrate = %.5f   PageFaults = %d\n",
			ses.Total.BusBusy(), ses.Total.MissRate(), ses.TotalFaults)

	case "all8", "transition":
		trigger := monitor.TriggerAll8
		if *mode == "transition" {
			trigger = monitor.TriggerTransition
		}
		spec := core.DefaultTriggeredSpec(trigger, *seed)
		spec.Samples = *samples
		ts := core.RunTriggeredSession(1, spec)
		fmt.Printf("%s session: %d buffers captured, %d timeouts\n\n",
			trigger, len(ts.Buffers), ts.Timeouts)
		fmt.Println(experiments.Table1(ts.Total))
		if *wave > 0 && len(ts.Buffers) > 0 {
			n := *wave
			if n > len(ts.Buffers[0]) {
				n = len(ts.Buffers[0])
			}
			fmt.Println(monitor.Waveform(ts.Buffers[0][:n], 100))
		}
		if trigger == monitor.TriggerTransition {
			st := core.AnalyzeTransitions(ts.Buffers)
			fmt.Println("Transition-state shares:")
			for j := 7; j >= 2; j-- {
				fmt.Printf("  %d active: %.1f%%\n", j, 100*st.TransitionShare(j))
			}
			a, b := st.DominantPair()
			fmt.Printf("Dominant processors during transitions: CE %d and CE %d\n", a, b)
		}

	default:
		log.Fatalf("unknown mode %q", *mode)
	}
}
