package main

import (
	"strings"
	"testing"
)

func TestRunQuickTables(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"campaign complete", "TABLE 1", "TABLE 4", "Table A.1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("unknown scale should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
