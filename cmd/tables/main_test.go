package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func TestRunQuickTables(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"campaign complete", "TABLE 1", "TABLE 4", "Table A.1"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-scale", "bogus"}, &out)
	if err == nil {
		t.Error("unknown scale should error")
	} else if !strings.Contains(err.Error(), "quick") || !strings.Contains(err.Error(), "paper") {
		t.Errorf("scale error %q does not enumerate valid scales", err)
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}

// TestRunWritesCampaignStore proves -cache persists the campaign.
func TestRunWritesCampaignStore(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	if err := run([]string{"-scale", "quick", "-cache", dir}, &out); err != nil {
		t.Fatal(err)
	}
	entries, err := filepath.Glob(filepath.Join(dir, "*.fx8s"))
	if err != nil || len(entries) != 1 {
		t.Fatalf("store entries = %v, %v; want the quick campaign persisted", entries, err)
	}
}
