// Command tables runs the measurement campaign and regenerates the
// study's Tables 1, 2, 3, 4 and A.1, plus the paper-vs-measured
// headline summary.  The campaign's sessions fan out over the session
// engine's worker pool, and the completed campaign is served through
// the two-tier cache: memoized in-process and, with -cache, persisted
// to the on-disk campaign store shared with the other tools and fx8d.
//
// Usage:
//
//	tables [-scale quick|paper] [-workers N] [-cache DIR]
package main

import (
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("tables", flag.ContinueOnError)
	scale := fs.String("scale", "quick", "campaign scale: quick or paper")
	workers := fs.Int("workers", 0, "parallel session workers (0 = one per CPU)")
	cacheDir := fs.String("cache", "", "campaign store directory (shared with the other tools and fx8d)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg, err := core.ScaleConfig(*scale)
	if err != nil {
		return err
	}

	start := time.Now()
	st, err := core.StudyAt(*cacheDir, cfg, *workers)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "campaign complete in %v: %d random, %d all-8, %d transition sessions\n\n",
		time.Since(start).Round(time.Millisecond),
		len(st.Random), len(st.HighConc), len(st.Transition))

	fmt.Fprintln(stdout, experiments.Table1(st.Overall))
	fmt.Fprintln(stdout, experiments.Table2(st))
	fmt.Fprintln(stdout, experiments.Table3(st))
	fmt.Fprintln(stdout, experiments.Table4(st))
	fmt.Fprintln(stdout, experiments.TableA1(st))
	fmt.Fprintln(stdout, experiments.Headline(st))
	return nil
}
