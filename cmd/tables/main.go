// Command tables runs the measurement campaign and regenerates the
// study's Tables 1, 2, 3, 4 and A.1, plus the paper-vs-measured
// headline summary.
//
// Usage:
//
//	tables [-scale quick|paper]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "quick", "campaign scale: quick or paper")
	flag.Parse()

	var cfg core.StudyConfig
	switch *scale {
	case "quick":
		cfg = core.QuickScale()
	case "paper":
		cfg = core.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	start := time.Now()
	st := core.RunStudy(cfg)
	fmt.Printf("campaign complete in %v: %d random, %d all-8, %d transition sessions\n\n",
		time.Since(start).Round(time.Millisecond),
		len(st.Random), len(st.HighConc), len(st.Transition))

	fmt.Println(experiments.Table1(st.Overall))
	fmt.Println(experiments.Table2(st))
	fmt.Println(experiments.Table3(st))
	fmt.Println(experiments.Table4(st))
	fmt.Println(experiments.TableA1(st))
	fmt.Println(experiments.Headline(st))
}
