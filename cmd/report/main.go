// Command report runs the full measurement campaign and writes the
// complete reproduction report — every table and figure in paper
// order plus the paper-vs-measured headline — to stdout or a file.
//
// Usage:
//
//	report [-scale quick|paper] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
)

func main() {
	scale := flag.String("scale", "paper", "campaign scale: quick or paper")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	var cfg core.StudyConfig
	switch *scale {
	case "quick":
		cfg = core.QuickScale()
	case "paper":
		cfg = core.PaperScale()
	default:
		log.Fatalf("unknown scale %q", *scale)
	}

	start := time.Now()
	st := core.RunStudy(cfg)
	report := fmt.Sprintf("Reproduction report (scale=%s, %v)\n\n%s",
		*scale, time.Since(start).Round(time.Millisecond), experiments.FullReport(st))

	if *out == "" {
		fmt.Print(report)
		return
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("report written to %s\n", *out)
}
