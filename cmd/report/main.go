// Command report runs the full measurement campaign and writes the
// complete reproduction report — every table and figure in paper
// order plus the paper-vs-measured headline — to stdout or a file.
// The campaign's sessions fan out over the session engine's worker
// pool.
//
// Usage:
//
//	report [-scale quick|paper] [-workers N] [-cache DIR] [-o FILE]
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/cli"
	"repro/internal/core"
	"repro/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("report", flag.ContinueOnError)
	scale := fs.String("scale", "paper", "campaign scale: quick or paper")
	workers := fs.Int("workers", 0, "parallel session workers (0 = one per CPU)")
	cacheDir := fs.String("cache", "", "campaign store directory (shared with the other tools and fx8d)")
	out := fs.String("o", "", "output file (default stdout)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg, err := core.ScaleConfig(*scale)
	if err != nil {
		return err
	}

	start := time.Now()
	st, err := core.StudyAt(*cacheDir, cfg, *workers)
	if err != nil {
		return err
	}
	report := fmt.Sprintf("Reproduction report (scale=%s, %v)\n\n%s",
		*scale, time.Since(start).Round(time.Millisecond), experiments.FullReport(st))

	if *out == "" {
		fmt.Fprint(stdout, report)
		return nil
	}
	if err := os.WriteFile(*out, []byte(report), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(stdout, "report written to %s\n", *out)
	return nil
}
