package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunWritesReportFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.txt")
	var out strings.Builder
	if err := run([]string{"-scale", "quick", "-o", path}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "report written to") {
		t.Errorf("confirmation missing:\n%s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Reproduction report (scale=quick", "TABLE 1", "HEADLINE RESULTS"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("report file missing %q", want)
		}
	}
}

func TestRunReportToStdout(t *testing.T) {
	// Memoization: reuses the campaign from TestRunWritesReportFile.
	var out strings.Builder
	if err := run([]string{"-scale", "quick"}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "HEADLINE RESULTS") {
		t.Error("stdout report incomplete")
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-scale", "bogus"}, &out); err == nil {
		t.Error("unknown scale should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
