package main

import (
	"strings"
	"testing"
)

func TestRunCESweep(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "ce", "-samples", "1", "-seed", "3"}, &out); err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"CE count", "CEs=1", "CEs=8"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunWorkerCountInvariant(t *testing.T) {
	render := func(workers string) string {
		var out strings.Builder
		if err := run([]string{"-kind", "ce", "-samples", "1", "-workers", workers}, &out); err != nil {
			t.Fatal(err)
		}
		return out.String()
	}
	if seq, par := render("1"), render("4"); seq != par {
		t.Errorf("-workers changed sweep output:\nseq:\n%s\npar:\n%s", seq, par)
	}
}

// TestRunBackendsSmoke: -backends with no live daemon still renders
// the sweep (units fall back to local compute).  A distinct seed
// keeps this run out of the process-wide sweep memo the other tests
// populate.
func TestRunBackendsSmoke(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-kind", "ce", "-samples", "1", "-seed", "23",
		"-backends", "127.0.0.1:1"}, &out)
	if err != nil {
		t.Fatal(err)
	}
	got := out.String()
	for _, want := range []string{"CEs=1", "CEs=8"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-kind", "bogus"}, &out); err == nil {
		t.Error("unknown kind should error")
	}
	if err := run([]string{"-no-such-flag"}, &out); err == nil {
		t.Error("unknown flag should error")
	}
}
