// Command sweep runs the measurement pipeline across configuration
// parameters — the study's proposed extensions: scheduling quantum
// (software-level parameter), shared cache size, and CE count
// (FX/1-FX/8 configurations).  Sweep points are independent machines
// and fan out over the session engine's worker pool, or, with
// -backends, shard across a fleet of fx8d nodes (failed or slow
// backends are retried and hedged; local compute is the fallback).
// With -cache, completed sweeps are persisted to the campaign store
// shared with the other tools and fx8d.
//
// With -job, the sweep is instead submitted to an fx8d coordinator as
// a persistent job (POST /v1/jobs) and polled to completion: the
// daemon executes and checkpoints it, so a sweep interrupted by a
// daemon restart resumes from its completed units rather than
// starting over.
//
// Usage:
//
//	sweep [-kind sched|cache|ce] [-seed N] [-samples N] [-workers N]
//	      [-cache DIR] [-backends HOST:PORT,...] [-job URL]
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"time"

	"repro/internal/cli"
	"repro/internal/coord"
	"repro/internal/experiments"
	"repro/internal/remote"
	"repro/internal/store"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	kind := fs.String("kind", "sched", "sweep kind: sched, cache or ce")
	seed := fs.Uint64("seed", 1987, "workload seed")
	samples := fs.Int("samples", 12, "samples per configuration")
	workers := fs.Int("workers", 0, "parallel sweep-point workers (0 = one per CPU, or sized to the backend fleet)")
	cacheDir := fs.String("cache", "", "campaign store directory (shared with the other tools and fx8d)")
	backends := fs.String("backends", "", "comma-separated fx8d backends (host:port,...) to shard sweep points across")
	jobURL := fs.String("job", "", "fx8d coordinator URL to submit the sweep to as a persistent job (empty = run here)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	cfg := experiments.SweepConfig{
		Kind:    *kind,
		Values:  experiments.DefaultSweepValues(*kind),
		Seed:    *seed,
		Samples: *samples,
	}
	if *jobURL != "" {
		res, err := coord.SubmitAndWait(context.Background(), nil, *jobURL,
			coord.JobSpec{Kind: "sweep", Sweep: &cfg}, 100*time.Millisecond)
		if err != nil {
			return err
		}
		fmt.Fprintln(stdout, experiments.SweepTable(experiments.SweepTitle(*kind), res.Points))
		return nil
	}
	var st *store.Store
	if *cacheDir != "" {
		var err error
		if st, err = store.Open(*cacheDir); err != nil {
			return err
		}
	}
	runner := remote.SweepRunner(remote.ParseBackends(*backends))
	pts, _, err := experiments.CachedSweepRunner(st, cfg, *workers, runner)
	if err != nil {
		return err
	}
	fmt.Fprintln(stdout, experiments.SweepTable(experiments.SweepTitle(*kind), pts))
	return nil
}
