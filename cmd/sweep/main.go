// Command sweep runs the measurement pipeline across configuration
// parameters — the study's proposed extensions: scheduling quantum
// (software-level parameter), shared cache size, and CE count
// (FX/1-FX/8 configurations).
//
// Usage:
//
//	sweep [-kind sched|cache|ce] [-seed N] [-samples N]
package main

import (
	"flag"
	"fmt"
	"log"

	"repro/internal/experiments"
)

func main() {
	kind := flag.String("kind", "sched", "sweep kind: sched, cache or ce")
	seed := flag.Uint64("seed", 1987, "workload seed")
	samples := flag.Int("samples", 12, "samples per configuration")
	flag.Parse()

	switch *kind {
	case "sched":
		pts := experiments.SchedulerSweep(
			[]int{10_000, 30_000, 100_000, 300_000, 1_000_000}, *seed, *samples)
		fmt.Println(experiments.SweepTable(
			"Concurrency measures vs. scheduling quantum.", pts))
	case "cache":
		pts := experiments.CacheSweep(
			[]int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}, *seed, *samples)
		fmt.Println(experiments.SweepTable(
			"System measures vs. shared cache size.", pts))
	case "ce":
		pts := experiments.CESweep([]int{1, 2, 4, 8}, *seed, *samples)
		fmt.Println(experiments.SweepTable(
			"Workload measures vs. CE count (FX/1..FX/8).", pts))
	default:
		log.Fatalf("unknown sweep kind %q", *kind)
	}
}
