// Command sweep runs the measurement pipeline across configuration
// parameters — the study's proposed extensions: scheduling quantum
// (software-level parameter), shared cache size, and CE count
// (FX/1-FX/8 configurations).  Sweep points are independent machines
// and fan out over the session engine's worker pool.
//
// Usage:
//
//	sweep [-kind sched|cache|ce] [-seed N] [-samples N] [-workers N]
package main

import (
	"flag"
	"fmt"
	"io"

	"repro/internal/cli"
	"repro/internal/experiments"
)

func main() { cli.Main(run) }

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("sweep", flag.ContinueOnError)
	kind := fs.String("kind", "sched", "sweep kind: sched, cache or ce")
	seed := fs.Uint64("seed", 1987, "workload seed")
	samples := fs.Int("samples", 12, "samples per configuration")
	workers := fs.Int("workers", 0, "parallel sweep-point workers (0 = one per CPU)")
	if err := cli.Parse(fs, args); err != nil {
		return err
	}

	switch *kind {
	case "sched":
		pts := experiments.SchedulerSweepWorkers(
			[]int{10_000, 30_000, 100_000, 300_000, 1_000_000}, *seed, *samples, *workers)
		fmt.Fprintln(stdout, experiments.SweepTable(
			"Concurrency measures vs. scheduling quantum.", pts))
	case "cache":
		pts := experiments.CacheSweepWorkers(
			[]int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}, *seed, *samples, *workers)
		fmt.Fprintln(stdout, experiments.SweepTable(
			"System measures vs. shared cache size.", pts))
	case "ce":
		pts := experiments.CESweepWorkers([]int{1, 2, 4, 8}, *seed, *samples, *workers)
		fmt.Fprintln(stdout, experiments.SweepTable(
			"Workload measures vs. CE count (FX/1..FX/8).", pts))
	default:
		return fmt.Errorf("unknown sweep kind %q", *kind)
	}
	return nil
}
