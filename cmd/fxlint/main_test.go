package main

import (
	"path/filepath"
	"strings"
	"testing"
)

func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "internal", "lint", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

// TestRunFlagsFixture: a tree with violations exits 1 and prints the
// diagnostics on stdout with the summary on stderr.
func TestRunFlagsFixture(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", fixtureDir(t, "truncation"), "-only", "truncation", "./..."}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit code = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if !strings.Contains(out.String(), "[truncation]") {
		t.Errorf("stdout missing [truncation] diagnostics:\n%s", out.String())
	}
	if !strings.Contains(errb.String(), "diagnostic(s) from truncation") {
		t.Errorf("stderr missing summary:\n%s", errb.String())
	}
}

// TestRunOnlySkipsOtherAnalyzers: -only restricts the run, so the
// resetcomplete fixture is clean under the truncation analyzer alone.
func TestRunOnlySkipsOtherAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-dir", fixtureDir(t, "resetcomplete"), "-only", "truncation", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

// TestRunRepoLayeringClean is the CI invocation that replaced the
// "obs stays stdlib-only" grep: layering over the real tree is clean.
func TestRunRepoLayeringClean(t *testing.T) {
	var out, errb strings.Builder
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	code := run([]string{"-dir", root, "-only", "layering", "./..."}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit code = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-only", "nosuch"}, &out, &errb); code != 2 {
		t.Errorf("unknown analyzer: exit code = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown analyzer") {
		t.Errorf("stderr missing unknown-analyzer message:\n%s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-skip", "determinism,layering,resetcomplete,truncation"}, &out, &errb); code != 2 {
		t.Errorf("all skipped: exit code = %d, want 2", code)
	}
}

func TestRunList(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit code = %d, want 0", code)
	}
	for _, name := range []string{"determinism", "layering", "resetcomplete", "truncation", "layering rules:"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing %q:\n%s", name, out.String())
		}
	}
}
