// Command fxlint runs the repo's custom analyzer suite (internal/lint)
// over the module: determinism, layering, resetcomplete and
// truncation — the invariants the compiler cannot check and CI used
// to approximate with greps and per-struct tests.
//
// Usage:
//
//	fxlint [-only names] [-skip names] [-list] [-dir DIR] [packages]
//
// Packages default to ./... relative to -dir (default ".").  Exit
// status is 1 when any diagnostic is reported, 2 on usage or load
// errors, 0 on a clean tree.  Set GOARCH=386 to analyze the 32-bit
// file set; the truncation analyzer assumes 32-bit int either way.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("fxlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated analyzers to run (default: all)")
	skip := fs.String("skip", "", "comma-separated analyzers to skip")
	list := fs.Bool("list", false, "list analyzers and the layering rules, then exit")
	dir := fs.String("dir", ".", "module directory to load packages from")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := lint.Analyzers()
	if *only != "" {
		var err error
		if analyzers, err = lint.ByName(*only); err != nil {
			fmt.Fprintln(stderr, "fxlint:", err)
			return 2
		}
	}
	if *skip != "" {
		skipped, err := lint.ByName(*skip)
		if err != nil {
			fmt.Fprintln(stderr, "fxlint:", err)
			return 2
		}
		var kept []*lint.Analyzer
		for _, a := range analyzers {
			drop := false
			for _, s := range skipped {
				if s == a {
					drop = true
					break
				}
			}
			if !drop {
				kept = append(kept, a)
			}
		}
		analyzers = kept
	}

	if *list {
		for _, a := range lint.Analyzers() {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		fmt.Fprintf(stdout, "\nlayering rules:\n%s", lint.DescribeRules())
		return 0
	}
	if len(analyzers) == 0 {
		fmt.Fprintln(stderr, "fxlint: no analyzers selected")
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	prog, err := lint.Load(*dir, patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "fxlint:", err)
		return 2
	}
	diags := lint.Run(prog, analyzers)
	for _, d := range diags {
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		names := make([]string, len(analyzers))
		for i, a := range analyzers {
			names[i] = a.Name
		}
		fmt.Fprintf(stderr, "fxlint: %d diagnostic(s) from %s\n", len(diags), strings.Join(names, ","))
		return 1
	}
	return 0
}
