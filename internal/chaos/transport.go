package chaos

import (
	"bytes"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Transport injects the plan's network faults around an
// http.RoundTripper.  Requests are keyed by method, path and body
// hash — never by host or port, which differ between runs when
// backends listen on ephemeral ports — so the seq-th request carrying
// a given unit draws the same fault in every run.
//
// Injections and what a correct client must do with them:
//
//	refused     RoundTrip fails before any bytes move (*FaultError)
//	latency     the response is delayed, then delivered intact
//	err5xx      a synthesized 500 carrying the service error envelope
//	disconnect  the body dies mid-read with io.ErrUnexpectedEOF
//	corrupt     one body byte is smashed to NUL, breaking the JSON
//	truncate    the body is cut short, breaking the JSON
//
// Corruption smashes a byte to NUL rather than flipping a bit: the
// wire format is JSON, so a NUL is guaranteed-detectable, whereas a
// bit flip inside a numeric literal could decode cleanly and the
// chaos suite's whole point is that faults are never silently wrong
// answers.
type Transport struct {
	plan *Plan
	base http.RoundTripper
}

// Transport wraps base (nil means http.DefaultTransport) with the
// plan's network-fault schedule.
func (p *Plan) Transport(base http.RoundTripper) *Transport {
	if base == nil {
		base = http.DefaultTransport
	}
	return &Transport{plan: p, base: base}
}

// requestKey is the request's schedule identity: method, path, and
// the FNV-1a hash of the body when one is replayable via GetBody
// (true for every bytes.Reader-backed request the clients build).
func requestKey(req *http.Request) string {
	key := req.Method + " " + req.URL.Path
	if req.GetBody != nil {
		if body, err := req.GetBody(); err == nil {
			data, err := io.ReadAll(body)
			body.Close()
			if err == nil {
				key += "#" + strconv.FormatUint(hashBytes(data), 16)
			}
		}
	}
	return key
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	key := requestKey(req)
	f := t.plan.next(ClassNet, key)
	switch f.Kind {
	case KindRefused:
		return nil, &FaultError{Class: ClassNet, Kind: KindRefused, Key: key}
	case KindErr5xx:
		body := `{"code":"internal","message":"chaos: injected err5xx"}`
		return &http.Response{
			Status:        "500 Internal Server Error",
			StatusCode:    http.StatusInternalServerError,
			Proto:         req.Proto,
			ProtoMajor:    req.ProtoMajor,
			ProtoMinor:    req.ProtoMinor,
			Header:        http.Header{"Content-Type": []string{"application/json"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	case KindLatency:
		select {
		case <-time.After(f.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	resp, err := t.base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	switch f.Kind {
	case KindDisconnect, KindCorrupt, KindTruncate:
		data, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			return nil, rerr
		}
		switch f.Kind {
		case KindDisconnect:
			// The connection dies mid-body: half the bytes arrive,
			// then the read errors like a peer reset would.
			resp.Body = io.NopCloser(io.MultiReader(
				bytes.NewReader(data[:len(data)/2]),
				errReader{&FaultError{Class: ClassNet, Kind: KindDisconnect, Key: key}},
			))
		case KindCorrupt:
			if len(data) > 0 {
				data[hashBytes([]byte(key))%uint64(len(data))] = 0x00
			}
			resp.Body = io.NopCloser(bytes.NewReader(data))
		case KindTruncate:
			resp.Body = io.NopCloser(bytes.NewReader(data[:len(data)/2]))
			resp.ContentLength = int64(len(data) / 2)
		}
	}
	return resp, nil
}

// errReader fails every Read with the injected fault, wrapped so the
// reader sees the canonical mid-body error and errors.As still finds
// the *FaultError.
type errReader struct{ fault *FaultError }

func (r errReader) Read([]byte) (int, error) {
	return 0, &unexpectedEOF{r.fault}
}

// unexpectedEOF is io.ErrUnexpectedEOF carrying its injected cause.
type unexpectedEOF struct{ fault *FaultError }

func (e *unexpectedEOF) Error() string { return io.ErrUnexpectedEOF.Error() + ": " + e.fault.Error() }
func (e *unexpectedEOF) Unwrap() error { return e.fault }
func (e *unexpectedEOF) Is(target error) bool {
	return target == io.ErrUnexpectedEOF
}
