package chaos_test

import (
	"errors"
	"os"
	"strings"
	"testing"

	"repro/internal/chaos"
	"repro/internal/store"
)

// openFaulted opens a store whose disk operations run under the
// plan's schedule.  Opening itself must survive any budget: the
// writability probe is store-internal and never a fault target.
func openFaulted(t *testing.T, seed uint64, b chaos.Budget) (*chaos.Plan, *store.Store, string) {
	t.Helper()
	dir := t.TempDir()
	p := chaos.NewPlan(seed, b)
	s, err := store.Open(dir, store.WithFS(p.FS(nil)))
	if err != nil {
		t.Fatalf("faulted store failed to open: %v", err)
	}
	return p, s, dir
}

func strayFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var stray []string
	for _, e := range ents {
		if !strings.HasSuffix(e.Name(), ".fx8s") {
			stray = append(stray, e.Name())
		}
	}
	return stray
}

func TestFSWriteErrFailsPutTyped(t *testing.T) {
	t.Parallel()
	_, s, dir := openFaulted(t, 1, chaos.Budget{WriteErr: 1000})
	key, err := store.Key("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	putErr := s.Put(key, []byte("payload"))
	if putErr == nil {
		t.Fatal("write_err fault let the Put succeed")
	}
	var fe *chaos.FaultError
	if !errors.As(putErr, &fe) || fe.Kind != chaos.KindWriteErr {
		t.Fatalf("want typed *FaultError{write_err}, got %v", putErr)
	}
	if stray := strayFiles(t, dir); len(stray) != 0 {
		t.Errorf("failed Put littered the store: %v", stray)
	}
	if s.Has(key) {
		t.Error("entry exists after a failed publish")
	}
}

func TestFSShortWriteAndBitFlipReadAsCorruptMiss(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		b    chaos.Budget
	}{
		{"short_write", chaos.Budget{ShortWrite: 1000}},
		{"bit_flip", chaos.Budget{BitFlip: 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, s, _ := openFaulted(t, 2, tc.b)
			key, err := store.Key("ns", tc.name)
			if err != nil {
				t.Fatal(err)
			}
			if err := s.Put(key, []byte("a payload long enough to damage")); err != nil {
				t.Fatalf("%s must land the entry, damaged: %v", tc.name, err)
			}
			if _, ok := s.Get(key); ok {
				t.Fatalf("%s entry served intact; the checksum did not catch it", tc.name)
			}
			if got := s.Stats().Corrupt; got != 1 {
				t.Errorf("Corrupt = %d, want 1", got)
			}
		})
	}
}

func TestFSEvictUnderReaderIsAMissAndRemoves(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	clean, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	key, err := store.Key("ns", "victim")
	if err != nil {
		t.Fatal(err)
	}
	if err := clean.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}

	p := chaos.NewPlan(3, chaos.Budget{Evict: 1000})
	s, err := store.Open(dir, store.WithFS(p.FS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(key); ok {
		t.Fatal("evict-under-reader served the entry")
	}
	if clean.Has(key) {
		t.Error("evicted entry still on disk")
	}
	ev := p.Events()
	if len(ev) == 0 || ev[0].Kind != chaos.KindEvict {
		t.Errorf("event log %v, want an evict", ev)
	}
}

// A zero-budget chaos FS must be a no-op shim: every store operation
// behaves exactly as on the real filesystem.
func TestFSZeroBudgetIsTransparent(t *testing.T) {
	t.Parallel()
	_, s, _ := openFaulted(t, 4, chaos.Budget{})
	key, err := store.Key("ns", "k")
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	data, ok := s.Get(key)
	if !ok || string(data) != "payload" {
		t.Fatalf("round trip through zero-budget FS: %q, %v", data, ok)
	}
}
