package chaos

import (
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// allFaults is a budget dense enough that a few hundred draws hit
// every kind.
var allFaults = Budget{
	Refused: 100, Latency: 100, Disconnect: 100, Err5xx: 100, Corrupt: 100, Truncate: 100,
	MaxLatency: 5 * time.Millisecond,
	WriteErr:   150, ShortWrite: 150, BitFlip: 150, Evict: 150,
}

func TestDecideIsPureAndSeedDeterministic(t *testing.T) {
	t.Parallel()
	a, b := NewPlan(42, allFaults), NewPlan(42, allFaults)
	diffSeed := NewPlan(43, allFaults)
	var differs bool
	for seq := uint64(1); seq <= 200; seq++ {
		for _, class := range []Class{ClassNet, ClassDisk} {
			for _, key := range []string{"POST /v1/run/session#abc", "deadbeef.fx8s"} {
				fa, fb := a.Decide(class, key, seq), b.Decide(class, key, seq)
				if fa != fb {
					t.Fatalf("Decide(%s,%s,%d) not deterministic: %+v vs %+v", class, key, seq, fa, fb)
				}
				if fa != diffSeed.Decide(class, key, seq) {
					differs = true
				}
			}
		}
	}
	if !differs {
		t.Error("seeds 42 and 43 drew identical 800-fault schedules")
	}
}

func TestDecideHonorsZeroBudget(t *testing.T) {
	t.Parallel()
	p := NewPlan(7, Budget{})
	for seq := uint64(1); seq <= 500; seq++ {
		if f := p.Decide(ClassNet, "k", seq); !f.None() {
			t.Fatalf("zero budget injected %+v at seq %d", f, seq)
		}
	}
}

func TestDecideHitsEveryBudgetedKind(t *testing.T) {
	t.Parallel()
	p := NewPlan(11, allFaults)
	seen := map[Kind]bool{}
	for seq := uint64(1); seq <= 2000; seq++ {
		seen[p.Decide(ClassNet, "k", seq).Kind] = true
		seen[p.Decide(ClassDisk, "k", seq).Kind] = true
	}
	for _, k := range []Kind{KindRefused, KindLatency, KindDisconnect, KindErr5xx,
		KindCorrupt, KindTruncate, KindWriteErr, KindShortWrite, KindBitFlip, KindEvict} {
		if !seen[k] {
			t.Errorf("2000 draws under a dense budget never hit %s", k)
		}
	}
}

// The event log must replay through Decide: every booked fault is
// exactly what the pure schedule says for that (class, key, seq).
// This is the property that makes a logged CI failure reproducible
// from its seed.
func TestEventsReplayThroughDecide(t *testing.T) {
	t.Parallel()
	p := NewPlan(99, allFaults)
	for i := 0; i < 300; i++ {
		p.next(ClassNet, "a")
		p.next(ClassNet, "b")
		p.next(ClassDisk, "c.fx8s")
	}
	events := p.Events()
	if len(events) == 0 {
		t.Fatal("dense budget injected nothing over 900 operations")
	}
	for _, e := range events {
		if got := p.Decide(e.Class, e.Key, e.Seq).Kind; got != e.Kind {
			t.Errorf("event %v does not replay: Decide says %s", e, got)
		}
	}
	// And the sorted log is run-independent: a fresh plan driven the
	// same way produces the identical fingerprint.
	q := NewPlan(99, allFaults)
	for i := 0; i < 300; i++ {
		q.next(ClassNet, "a")
		q.next(ClassNet, "b")
		q.next(ClassDisk, "c.fx8s")
	}
	a, b := p.Events(), q.Events()
	if len(a) != len(b) {
		t.Fatalf("event logs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event logs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestKillPointDeterministicAndInRange(t *testing.T) {
	t.Parallel()
	p, q := NewPlan(5, Budget{}), NewPlan(5, Budget{})
	for _, max := range []int{1, 2, 8, 100} {
		a, b := p.KillPoint("backend-0", max), q.KillPoint("backend-0", max)
		if a != b {
			t.Errorf("KillPoint(max=%d) not deterministic: %d vs %d", max, a, b)
		}
		if a < 1 || a > max {
			t.Errorf("KillPoint(max=%d) = %d, out of range", max, a)
		}
	}
	if NewPlan(5, Budget{}).KillPoint("backend-1", 100) == NewPlan(5, Budget{}).KillPoint("backend-0", 100) {
		// Not impossible, but with max=100 a collision is 1%; the
		// names must feed the draw.
		t.Log("kill points for distinct names collided (possible but unlikely)")
	}
}

// transportFor drives one fault kind through a Transport against a
// live server and returns the outcome of a full request/read cycle.
func transportFor(t *testing.T, b Budget, seed uint64) (*Plan, *http.Client, *httptest.Server) {
	t.Helper()
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"answer":42,"pad":"xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"}`))
	}))
	t.Cleanup(srv.Close)
	p := NewPlan(seed, b)
	return p, &http.Client{Transport: p.Transport(nil)}, srv
}

func TestTransportRefusedSurfacesTypedError(t *testing.T) {
	t.Parallel()
	p, client, srv := transportFor(t, Budget{Refused: 1000}, 1)
	_, err := client.Get(srv.URL + "/v1/ping")
	if err == nil {
		t.Fatal("refused fault let the request through")
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != KindRefused {
		t.Fatalf("want *FaultError{refused}, got %v", err)
	}
	if ev := p.Events(); len(ev) != 1 || ev[0].Kind != KindRefused {
		t.Fatalf("event log %v, want one refused", ev)
	}
}

func TestTransportErr5xxSynthesizesEnvelope(t *testing.T) {
	t.Parallel()
	_, client, srv := transportFor(t, Budget{Err5xx: 1000}, 1)
	resp, err := client.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), `"code":"internal"`) {
		t.Fatalf("synthesized body %q lacks the error envelope", body)
	}
}

func TestTransportDisconnectDiesMidBody(t *testing.T) {
	t.Parallel()
	_, client, srv := transportFor(t, Budget{Disconnect: 1000}, 1)
	resp, err := client.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	_, err = io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("mid-body read error %v, want io.ErrUnexpectedEOF", err)
	}
	var fe *FaultError
	if !errors.As(err, &fe) || fe.Kind != KindDisconnect {
		t.Fatalf("disconnect not typed: %v", err)
	}
}

func TestTransportCorruptAndTruncateBreakJSONDetectably(t *testing.T) {
	t.Parallel()
	for _, tc := range []struct {
		name string
		b    Budget
	}{
		{"corrupt", Budget{Corrupt: 1000}},
		{"truncate", Budget{Truncate: 1000}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			_, client, srv := transportFor(t, tc.b, 1)
			resp, err := client.Get(srv.URL + "/v1/ping")
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			body, err := io.ReadAll(resp.Body)
			if err != nil {
				t.Fatal(err)
			}
			var out struct {
				Answer int `json:"answer"`
			}
			if jsonErr := json.Unmarshal(body, &out); jsonErr == nil {
				t.Fatalf("%s body still decodes (%q) — the fault is silently absorbable", tc.name, body)
			}
		})
	}
}

func TestTransportLatencyDelaysIntactResponse(t *testing.T) {
	t.Parallel()
	_, client, srv := transportFor(t, Budget{Latency: 1000, MaxLatency: 30 * time.Millisecond}, 3)
	start := time.Now()
	resp, err := client.Get(srv.URL + "/v1/ping")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(resp.Body)
	if elapsed := time.Since(start); elapsed < time.Millisecond {
		t.Errorf("latency fault added no delay (%v)", elapsed)
	}
	if !strings.Contains(string(body), `"answer":42`) {
		t.Errorf("latency fault damaged the body: %q", body)
	}
}

func TestTransportKeyIgnoresHost(t *testing.T) {
	t.Parallel()
	p := NewPlan(1, Budget{})
	r1, _ := http.NewRequest(http.MethodPost, "http://127.0.0.1:1111/v1/run/session", strings.NewReader(`{"id":1}`))
	r2, _ := http.NewRequest(http.MethodPost, "http://127.0.0.1:2222/v1/run/session", strings.NewReader(`{"id":1}`))
	if k1, k2 := requestKey(r1), requestKey(r2); k1 != k2 {
		t.Errorf("same unit on different ports keys differently: %q vs %q", k1, k2)
	}
	r3, _ := http.NewRequest(http.MethodPost, "http://127.0.0.1:1111/v1/run/session", strings.NewReader(`{"id":2}`))
	if requestKey(r1) == requestKey(r3) {
		t.Error("different payloads share one key; their fault schedules would be entangled")
	}
	_ = p
}
