package chaos

import (
	"path/filepath"
	"strings"

	"repro/internal/store"
)

// faultFS injects the plan's disk faults around a store.FS.  Faults
// are keyed by the base name of the *entry* being written or read —
// the store's content-addressed file name, stable across runs — never
// by temp-file names, whose random suffixes would make the schedule
// depend on creation order.  Internal names (dot-prefixed temps and
// probes) pass through untouched, so a faulted store still opens.
//
// Write faults are applied at the publish step (Rename), where the
// entry's identity is first known:
//
//	write_err    the publish fails with a *FaultError; the caller's
//	             temp-file cleanup runs exactly as for a real error
//	short_write  the entry lands truncated; the store's read-side
//	             checksum rejects it as corrupt and recomputes
//	bit_flip     one stored byte is flipped; rejected the same way
//	evict        (read side) the entry vanishes under its reader —
//	             the read fails and the file is gone, as if the
//	             size bound evicted it mid-access
//
// Claim's hard-link publish is deliberately not faulted: leases are
// exercised by write faults on their refresh (Put) path, and a Claim
// that failed non-atomically could wedge both contenders — a bug this
// layer must not be able to inject.
type faultFS struct {
	store.FS
	plan *Plan
}

// FS wraps base (nil means store.OS()) with the plan's disk-fault
// schedule.
func (p *Plan) FS(base store.FS) store.FS {
	if base == nil {
		base = store.OS()
	}
	return &faultFS{FS: base, plan: p}
}

// internalName reports store-internal files — write temps and the
// open-time writability probe — which are never fault targets.
func internalName(base string) bool { return strings.HasPrefix(base, ".") }

func (f *faultFS) Rename(oldpath, newpath string) error {
	base := filepath.Base(newpath)
	if internalName(base) {
		return f.FS.Rename(oldpath, newpath)
	}
	switch fault := f.plan.next(ClassDisk, base); fault.Kind {
	case KindWriteErr:
		return &FaultError{Class: ClassDisk, Kind: KindWriteErr, Key: base}
	case KindShortWrite:
		if err := f.mutate(oldpath, base, true); err != nil {
			return err
		}
	case KindBitFlip:
		if err := f.mutate(oldpath, base, false); err != nil {
			return err
		}
	}
	return f.FS.Rename(oldpath, newpath)
}

func (f *faultFS) ReadFile(name string) ([]byte, error) {
	base := filepath.Base(name)
	if internalName(base) {
		return f.FS.ReadFile(name)
	}
	if fault := f.plan.next(ClassDisk, base); fault.Kind == KindEvict {
		f.FS.Remove(name)
		return nil, &FaultError{Class: ClassDisk, Kind: KindEvict, Key: base}
	}
	return f.FS.ReadFile(name)
}

// mutate rewrites the temp at path with damaged content — truncated
// to half, or with one deterministically-chosen byte flipped — via a
// sibling temp so the damage is atomic like the write it models.
func (f *faultFS) mutate(path, key string, truncate bool) error {
	data, err := f.FS.ReadFile(path)
	if err != nil {
		return err
	}
	if truncate {
		data = data[:len(data)/2]
	} else if len(data) > 0 {
		data[hashBytes([]byte(key))%uint64(len(data))] ^= 0x40
	}
	tmp, err := f.FS.CreateTemp(filepath.Dir(path), ".chaos-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		f.FS.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		f.FS.Remove(tmp.Name())
		return err
	}
	return f.FS.Rename(tmp.Name(), path)
}
