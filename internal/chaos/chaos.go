// Package chaos is the repo's deterministic fault injector.  A Plan
// is a pure function of a seed: given a fault Budget (per-mille rates
// per fault kind), Decide(class, key, seq) answers "does the seq-th
// operation on key suffer a fault, and which" — the same seed always
// yields the same schedule, so a chaos campaign that fails in CI is
// reproduced locally by its seed alone.
//
// Faults are injected at the stack's three seams:
//
//   - network: Transport wraps an http.RoundTripper (see
//     transport.go) — connection refused, injected latency, mid-body
//     disconnect, synthesized 5xx, corrupted and truncated bodies;
//   - disk: FS wraps a store.FS (see fs.go) — write errors, short
//     writes, bit-flip corruption, eviction under a reader;
//   - process: KillPoint draws the deterministic unit count at which
//     a test kills a backend or coordinator.
//
// Keys are chosen by the wrappers to be stable across runs (request
// method+path+body hash, entry base names — never ports or temp
// suffixes), so per-key fault sequences do not depend on goroutine
// interleaving.  Every injected fault is booked in an event log
// (Events) whose sorted form is a schedule fingerprint comparable
// across runs and attachable to a CI failure artifact.
package chaos

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/fastrand"
)

// Class partitions fault schedules by the seam they strike.  Each
// (class, key) pair draws an independent deterministic sequence.
type Class string

const (
	ClassNet  Class = "net"
	ClassDisk Class = "disk"
	ClassProc Class = "proc"
)

// Kind names one fault.  The zero Kind means "no fault".
type Kind string

const (
	// Network faults, injected by Transport.
	KindRefused    Kind = "refused"    // dial-level failure before any bytes
	KindLatency    Kind = "latency"    // delivery delayed by Fault.Latency
	KindDisconnect Kind = "disconnect" // connection dies mid response body
	KindErr5xx     Kind = "err5xx"     // synthesized 500, backend never reached
	KindCorrupt    Kind = "corrupt"    // one response byte smashed
	KindTruncate   Kind = "truncate"   // response body cut short

	// Disk faults, injected by FS.
	KindWriteErr   Kind = "write_err"   // entry write fails outright
	KindShortWrite Kind = "short_write" // entry lands truncated on disk
	KindBitFlip    Kind = "bit_flip"    // one stored byte flipped
	KindEvict      Kind = "evict"       // entry vanishes under its reader

	// Process faults, scheduled by KillPoint.
	KindKill Kind = "kill"
)

// Fault is one scheduled injection.  The zero value is "no fault".
type Fault struct {
	Kind Kind

	// Latency is the injected delay for KindLatency, zero otherwise.
	Latency time.Duration
}

// None reports whether no fault was scheduled.
func (f Fault) None() bool { return f.Kind == "" }

// Budget declares a plan's fault rates, in per-mille of operations
// per (class, key) draw.  Network and disk rates are independent;
// rates within a class are additive and must sum to at most 1000.
// The zero Budget injects nothing.
type Budget struct {
	// Network rates (per mille of RoundTrips).
	Refused    int
	Latency    int
	Disconnect int
	Err5xx     int
	Corrupt    int
	Truncate   int

	// MaxLatency bounds one injected delay; 0 means 20ms.  Keep it
	// well under the client's per-attempt timeout or latency faults
	// escalate into timeouts.
	MaxLatency time.Duration

	// Disk rates (per mille of entry writes / reads).
	WriteErr   int
	ShortWrite int
	BitFlip    int
	Evict      int
}

// Event is one injected fault: the seq-th operation on key under
// class suffered kind.  Sorted event logs are the plan's schedule
// fingerprint.
type Event struct {
	Class Class  `json:"class"`
	Key   string `json:"key"`
	Seq   uint64 `json:"seq"`
	Kind  Kind   `json:"kind"`
}

func (e Event) String() string {
	return fmt.Sprintf("%s %s #%d %s", e.Class, e.Key, e.Seq, e.Kind)
}

// FaultError is the typed error every unabsorbable injected fault
// surfaces as: test assertions match it with errors.As, never by
// string.  An injected fault escaping as anything else — or worse, as
// a wrong answer — is a chaos-suite failure.
type FaultError struct {
	Class Class
	Kind  Kind
	Key   string
}

func (e *FaultError) Error() string {
	return fmt.Sprintf("chaos: injected %s/%s fault on %s", e.Class, e.Kind, e.Key)
}

// Plan is one seeded fault schedule.  The schedule is a pure function
// of (seed, budget): Decide answers any (class, key, seq) without
// state, and the stateful wrappers (Transport, FS) only track how
// many operations each key has seen.  Safe for concurrent use.
type Plan struct {
	seed   uint64
	budget Budget

	mu     sync.Mutex
	seq    map[string]uint64
	events []Event
}

// NewPlan builds the fault schedule for seed under budget.
func NewPlan(seed uint64, budget Budget) *Plan {
	return &Plan{seed: seed, budget: budget, seq: make(map[string]uint64)}
}

// Seed returns the plan's seed — quote it in failure artifacts; it is
// the whole reproduction recipe.
func (p *Plan) Seed() uint64 { return p.seed }

// Decide is the schedule itself: the fault (or none) striking the
// seq-th operation on key under class.  Pure — no Plan state is read
// or written — so a recorded event log can be replayed against Decide
// to prove the schedule is a function of the seed.  Seq counts from 1.
func (p *Plan) Decide(class Class, key string, seq uint64) Fault {
	rng := fastrand.New(mixSeed(p.seed, class, key), seq)
	draw := rng.IntN(1000)
	acc := 0
	pick := func(kind Kind, rate int) bool {
		acc += rate
		return draw < acc
	}
	switch class {
	case ClassNet:
		b := p.budget
		switch {
		case pick(KindRefused, b.Refused):
			return Fault{Kind: KindRefused}
		case pick(KindDisconnect, b.Disconnect):
			return Fault{Kind: KindDisconnect}
		case pick(KindErr5xx, b.Err5xx):
			return Fault{Kind: KindErr5xx}
		case pick(KindCorrupt, b.Corrupt):
			return Fault{Kind: KindCorrupt}
		case pick(KindTruncate, b.Truncate):
			return Fault{Kind: KindTruncate}
		case pick(KindLatency, b.Latency):
			maxMs := int(p.budget.MaxLatency / time.Millisecond) //fxlint:allow truncation — a test budget's delay bound, clamped small
			if maxMs <= 0 {
				maxMs = 20
			}
			return Fault{Kind: KindLatency, Latency: time.Duration(1+rng.IntN(maxMs)) * time.Millisecond}
		}
	case ClassDisk:
		b := p.budget
		switch {
		case pick(KindWriteErr, b.WriteErr):
			return Fault{Kind: KindWriteErr}
		case pick(KindShortWrite, b.ShortWrite):
			return Fault{Kind: KindShortWrite}
		case pick(KindBitFlip, b.BitFlip):
			return Fault{Kind: KindBitFlip}
		case pick(KindEvict, b.Evict):
			return Fault{Kind: KindEvict}
		}
	}
	return Fault{}
}

// next books key's next operation under class: bumps the per-key
// sequence, consults Decide, and logs any fault drawn.  This is the
// only stateful step between a seed and its injected faults.
func (p *Plan) next(class Class, key string) Fault {
	p.mu.Lock()
	sk := string(class) + "|" + key
	p.seq[sk]++
	seq := p.seq[sk]
	p.mu.Unlock()
	f := p.Decide(class, key, seq)
	if !f.None() {
		p.record(Event{Class: class, Key: key, Seq: seq, Kind: f.Kind})
	}
	return f
}

func (p *Plan) record(e Event) {
	p.mu.Lock()
	p.events = append(p.events, e)
	p.mu.Unlock()
}

// KillPoint draws the operation count at which the named process dies
// — deterministic in [1, max] — and books it as a proc/kill event.
// Tests use it to schedule backend deaths and coordinator kills from
// the same seed that drives the network and disk faults.
func (p *Plan) KillPoint(name string, max int) int {
	rng := fastrand.New(mixSeed(p.seed, ClassProc, name), 0)
	n := 1 + rng.IntN(max)
	p.record(Event{Class: ClassProc, Key: name, Seq: uint64(n), Kind: KindKill})
	return n
}

// Events returns the injected-fault log sorted by (class, key, seq) —
// a canonical fingerprint independent of goroutine interleaving.  Two
// runs of the same campaign under the same seed produce equal logs
// whenever each key sees a deterministic operation count.
func (p *Plan) Events() []Event {
	p.mu.Lock()
	out := append([]Event(nil), p.events...)
	p.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Class != b.Class {
			return a.Class < b.Class
		}
		if a.Key != b.Key {
			return a.Key < b.Key
		}
		return a.Seq < b.Seq
	})
	return out
}

// FNV-1a, the repo's standard cheap mixer (store keys use it too).
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

// mixSeed folds the plan seed, class and key into one 64-bit
// generator seed via FNV-1a.  Writing the seed byte-wise keeps the
// mix identical on every platform.
func mixSeed(seed uint64, class Class, key string) uint64 {
	h := uint64(fnvOffset)
	for i := 0; i < 8; i++ {
		h ^= (seed >> (8 * i)) & 0xff
		h *= fnvPrime
	}
	for i := 0; i < len(class); i++ {
		h ^= uint64(class[i])
		h *= fnvPrime
	}
	h ^= 0xff // separator: ("ab","c") must not collide with ("a","bc")
	h *= fnvPrime
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime
	}
	return h
}

// hashBytes is FNV-1a over raw bytes, used by the wrappers to fold
// payloads into stable keys and positions.
func hashBytes(data []byte) uint64 {
	h := uint64(fnvOffset)
	for _, b := range data {
		h ^= uint64(b)
		h *= fnvPrime
	}
	return h
}
