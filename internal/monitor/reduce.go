package monitor

import "repro/internal/trace"

// EventCounts is the reduced set of events derived from a monitor
// buffer — exactly Table 1 of the study:
//
//	num_j   number of records with j processors active
//	prof_j  number of records with processor j active
//	ceop_j  number of records with CE bus opcode = j (summed over CEs)
//	membop_j number of records with mem bus opcode = j (summed over buses)
type EventCounts struct {
	Num     [trace.NumCE + 1]int
	Prof    [trace.NumCE]int
	CEOp    [trace.NumCEOps]int
	MemOp   [trace.NumMemOps]int
	Records int
}

// Reduce condenses an acquisition buffer into event counts, as the
// study's real-time reduction program did before writing to disk.
func Reduce(recs []trace.Record) EventCounts {
	var e EventCounts
	for _, r := range recs {
		e.AddRecord(r)
	}
	return e
}

// AddRecord accumulates a single record.
func (e *EventCounts) AddRecord(r trace.Record) {
	e.Records++
	e.Num[r.ActiveCount()]++
	for i, a := range r.Active {
		if a {
			e.Prof[i]++
		}
	}
	for _, op := range r.CE {
		e.CEOp[op]++
	}
	for _, op := range r.Mem {
		e.MemOp[op]++
	}
}

// Add accumulates another count set (summing sessions or samples).
func (e *EventCounts) Add(o EventCounts) {
	e.Records += o.Records
	for i := range e.Num {
		e.Num[i] += o.Num[i]
	}
	for i := range e.Prof {
		e.Prof[i] += o.Prof[i]
	}
	for i := range e.CEOp {
		e.CEOp[i] += o.CEOp[i]
	}
	for i := range e.MemOp {
		e.MemOp[i] += o.MemOp[i]
	}
}

// BusCycles returns the total number of CE bus cycles covered (records
// times buses).
func (e EventCounts) BusCycles() int {
	return e.Records * trace.NumCE
}

// BusBusy returns the fraction of CE bus cycles that are not idle,
// averaged over all eight buses — the study's CE Bus Busy measure.
func (e EventCounts) BusBusy() float64 {
	total := e.BusCycles()
	if total == 0 {
		return 0
	}
	return float64(total-e.CEOp[trace.CEIdle]) / float64(total)
}

// MissRate returns the fraction of CE bus cycles carrying a
// miss-qualified opcode — the study's Missrate measure.
func (e EventCounts) MissRate() float64 {
	total := e.BusCycles()
	if total == 0 {
		return 0
	}
	miss := e.CEOp[trace.CEReadMiss] + e.CEOp[trace.CEWriteMiss] + e.CEOp[trace.CEFetchMiss]
	return float64(miss) / float64(total)
}

// MemBusBusy returns the fraction of memory bus cycles that are not
// idle, averaged over the memory buses.
func (e EventCounts) MemBusBusy() float64 {
	total := e.Records * trace.NumMemBus
	if total == 0 {
		return 0
	}
	return float64(total-e.MemOp[trace.MemIdle]) / float64(total)
}
