package monitor

import (
	"encoding/json"
	"fmt"
	"io"
)

// Persistence of reduced measurement data.  The study's control
// scripts condensed each acquisition into event counts and wrote the
// result to disk for later SAS analysis; these helpers do the same
// with a JSON encoding, so sessions can be captured once and analyzed
// repeatedly.

// SessionFile is the on-disk form of one measurement session's
// reduced data.
type SessionFile struct {
	// Version guards the format.
	Version int `json:"version"`

	// Mode names the trigger mode the session used.
	Mode string `json:"mode"`

	// Seed identifies the workload.
	Seed uint64 `json:"seed"`

	// Samples holds the session's reduced samples in order.
	Samples []Sample `json:"samples"`
}

// fileVersion is the current SessionFile format version.
const fileVersion = 1

// WriteSession encodes a session's reduced samples.
func WriteSession(w io.Writer, mode TriggerMode, seed uint64, samples []Sample) error {
	f := SessionFile{
		Version: fileVersion,
		Mode:    mode.String(),
		Seed:    seed,
		Samples: samples,
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// ReadSession decodes a session file, validating the format version.
func ReadSession(r io.Reader) (SessionFile, error) {
	var f SessionFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return f, fmt.Errorf("monitor: decoding session: %w", err)
	}
	if f.Version != fileVersion {
		return f, fmt.Errorf("monitor: unsupported session file version %d", f.Version)
	}
	return f, nil
}

// Totals sums the event counts of every sample in the file.
func (f SessionFile) Totals() EventCounts {
	var e EventCounts
	for _, s := range f.Samples {
		e.Add(s.Counts)
	}
	return e
}
