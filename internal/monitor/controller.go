package monitor

import (
	"repro/internal/concentrix"
	"repro/internal/trace"
)

// Controller is the measurement control program of section 3.4: it
// configures the analyzer, arms its trigger, steps the machine while
// the analyzer observes, transfers buffers, reduces them to event
// counts, and reads the kernel's software counters alongside.
type Controller struct {
	Sys *concentrix.System
	DAS *DAS
}

// NewController attaches a fresh analyzer to a system.
func NewController(sys *concentrix.System) *Controller {
	return &Controller{Sys: sys, DAS: NewDAS()}
}

// Reset re-attaches the controller (and its analyzer, cleared in
// place) to a system, so a session arena reuses one instrument per
// worker instead of allocating a controller and analyzer per session.
func (c *Controller) Reset(sys *concentrix.System) {
	c.Sys = sys
	c.DAS.Reset()
}

// Acquire arms the analyzer in the given mode and steps the system
// until the buffer fills or maxCycles elapse.  It returns the reduced
// event counts and whether the acquisition completed (a triggered
// acquisition may time out if the trigger condition never occurs).
func (c *Controller) Acquire(mode TriggerMode, maxCycles int) (EventCounts, bool) {
	if !c.run(mode, maxCycles) {
		// Timed out; discard the partial buffer.
		return EventCounts{}, false
	}
	return c.DAS.ReduceBuffer(), true
}

// run arms the analyzer and steps the machine until the buffer fills
// or maxCycles elapse, reporting completion.  The analyzer observes
// through the probe fast path, so the machine only pays for a full
// signal snapshot on the cycles the instrument stores a record.
func (c *Controller) run(mode TriggerMode, maxCycles int) bool {
	c.DAS.Arm(mode)
	for i := 0; i < maxCycles && c.DAS.Armed(); i++ {
		c.Sys.Step()
		c.DAS.ObserveProbe(c.Sys.Cluster)
	}
	return !c.DAS.Armed()
}

// AcquireBuffer is Acquire returning the raw record buffer instead of
// reduced counts, for record-level analyses such as the transition
// study.
func (c *Controller) AcquireBuffer(mode TriggerMode, maxCycles int) ([]trace.Record, bool) {
	if !c.run(mode, maxCycles) {
		return nil, false
	}
	return c.DAS.Transfer(), true
}

// Sample is one workload sample: the study grouped five snapshots in a
// five-minute interval together with the kernel counters read at
// store time.
type Sample struct {
	Counts     EventCounts
	PageFaults uint64 // kernel page-fault delta over the interval
	StartCycle uint64
	EndCycle   uint64
	Complete   bool // all snapshots acquired
}

// SampleSpec configures workload sampling.
type SampleSpec struct {
	// Snapshots per sample (5 in the study).
	Snapshots int

	// GapCycles is the machine time between snapshot acquisitions,
	// so a sample spans roughly Snapshots*(GapCycles+BufferDepth)
	// cycles — the study's five-minute interval.
	GapCycles int
}

// DefaultSampleSpec returns the study's sampling configuration scaled
// to simulator time: five snapshots spread over the sampling interval.
func DefaultSampleSpec() SampleSpec {
	return SampleSpec{Snapshots: 5, GapCycles: 40_000}
}

// CollectSample performs one workload sample: Snapshots immediate
// acquisitions spaced GapCycles apart, reduced and summed, with the
// kernel page-fault counters read before and after.
func (c *Controller) CollectSample(spec SampleSpec) Sample {
	s := Sample{
		StartCycle: c.Sys.Cluster.Cycle(),
		PageFaults: 0,
		Complete:   true,
	}
	faultsBefore := c.Sys.Kernel.PageFaults()
	for i := 0; i < spec.Snapshots; i++ {
		counts, ok := c.Acquire(TriggerImmediate, spec.GapCycles+c.DAS.Span())
		if !ok {
			s.Complete = false
		}
		s.Counts.Add(counts)
		// Let the workload advance between snapshots.
		c.Sys.StepN(spec.GapCycles)
	}
	s.EndCycle = c.Sys.Cluster.Cycle()
	s.PageFaults = c.Sys.Kernel.PageFaults() - faultsBefore
	return s
}
