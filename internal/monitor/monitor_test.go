package monitor

import (
	"testing"

	"repro/internal/concentrix"
	"repro/internal/fx8"
	"repro/internal/trace"
	"repro/internal/workload"
)

func recActive(n int) trace.Record {
	var r trace.Record
	for i := 0; i < n; i++ {
		r.Active[i] = true
		r.CE[i] = trace.CERead
	}
	return r
}

func TestDASImmediateFills(t *testing.T) {
	d := NewDASDepth(16, 1)
	d.Arm(TriggerImmediate)
	for i := 0; i < 20; i++ {
		d.Observe(recActive(i % 9))
	}
	if !d.Full() {
		t.Fatal("buffer should be full")
	}
	recs := d.Transfer()
	if len(recs) != 16 {
		t.Fatalf("records = %d, want 16", len(recs))
	}
	// Records stored from the first observed cycle.
	if recs[0].ActiveCount() != 0 || recs[1].ActiveCount() != 1 {
		t.Error("immediate mode should store from the first observation")
	}
	if d.Acquisitions != 1 {
		t.Errorf("acquisitions = %d", d.Acquisitions)
	}
}

func TestDASStopsWhenFull(t *testing.T) {
	d := NewDASDepth(4, 1)
	d.Arm(TriggerImmediate)
	for i := 0; i < 100; i++ {
		d.Observe(recActive(8))
	}
	if got := len(d.Transfer()); got != 4 {
		t.Fatalf("records = %d, want 4 (no overwrite)", got)
	}
}

func TestDASAll8Trigger(t *testing.T) {
	d := NewDASDepth(4, 1)
	d.Arm(TriggerAll8)
	// Below-threshold activity must not trigger.
	for i := 0; i < 10; i++ {
		d.Observe(recActive(7))
	}
	if len(d.Transfer()) != 0 {
		t.Fatal("should not have triggered below 8 active")
	}
	d.Observe(recActive(8))
	d.Observe(recActive(8))
	d.Observe(recActive(7))
	d.Observe(recActive(6))
	recs := d.Transfer()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	if recs[0].ActiveCount() != 8 {
		t.Error("first stored record should be the trigger cycle")
	}
}

func TestDASTransitionTrigger(t *testing.T) {
	d := NewDASDepth(3, 1)
	d.Arm(TriggerTransition)
	// 8-active alone must not trigger.
	for i := 0; i < 5; i++ {
		d.Observe(recActive(8))
	}
	if d.Full() {
		t.Fatal("transition trigger fired during steady 8-active")
	}
	// Drop to 5: trigger fires and the drop cycle is stored.
	d.Observe(recActive(5))
	d.Observe(recActive(3))
	d.Observe(recActive(1))
	if !d.Full() {
		t.Fatal("buffer should have filled after the transition")
	}
	recs := d.Transfer()
	if recs[0].ActiveCount() != 5 || recs[2].ActiveCount() != 1 {
		t.Errorf("stored records wrong: %v", recs)
	}
}

func TestDASTransitionRequiresFullConcurrencyFirst(t *testing.T) {
	d := NewDASDepth(2, 1)
	d.Arm(TriggerTransition)
	// 7 -> 5 is a drop but not from 8: no trigger.
	d.Observe(recActive(7))
	d.Observe(recActive(5))
	d.Observe(recActive(2))
	if d.Full() || len(d.Transfer()) != 0 {
		t.Fatal("transition trigger must require a drop from 8")
	}
}

func TestDASRearm(t *testing.T) {
	d := NewDASDepth(2, 1)
	d.Arm(TriggerImmediate)
	d.Observe(recActive(1))
	d.Observe(recActive(2))
	if !d.Full() {
		t.Fatal("first acquisition incomplete")
	}
	d.Arm(TriggerImmediate)
	if d.Full() || len(d.Transfer()) != 0 {
		t.Fatal("rearm should clear the buffer")
	}
}

func TestTriggerModeString(t *testing.T) {
	if TriggerImmediate.String() != "immediate" ||
		TriggerAll8.String() != "all-8-active" ||
		TriggerTransition.String() != "8-to-fewer transition" ||
		TriggerMode(9).String() != "unknown" {
		t.Error("trigger mode names wrong")
	}
}

func TestReduceCounts(t *testing.T) {
	var r1, r2 trace.Record
	r1.Active[0] = true
	r1.Active[7] = true
	r1.CE[0] = trace.CERead
	r1.CE[7] = trace.CEWriteMiss
	r1.Mem[0] = trace.MemRead
	r2.Active[0] = true
	r2.CE[0] = trace.CEFetch

	e := Reduce([]trace.Record{r1, r2})
	if e.Records != 2 {
		t.Fatalf("records = %d", e.Records)
	}
	if e.Num[2] != 1 || e.Num[1] != 1 {
		t.Errorf("num = %v", e.Num)
	}
	if e.Prof[0] != 2 || e.Prof[7] != 1 || e.Prof[3] != 0 {
		t.Errorf("prof = %v", e.Prof)
	}
	if e.CEOp[trace.CERead] != 1 || e.CEOp[trace.CEWriteMiss] != 1 ||
		e.CEOp[trace.CEFetch] != 1 {
		t.Errorf("ceop = %v", e.CEOp)
	}
	if e.CEOp[trace.CEIdle] != 2*8-3 {
		t.Errorf("idle ceop = %d, want %d", e.CEOp[trace.CEIdle], 13)
	}
	if e.MemOp[trace.MemRead] != 1 || e.MemOp[trace.MemIdle] != 3 {
		t.Errorf("memop = %v", e.MemOp)
	}
}

func TestEventCountsAdd(t *testing.T) {
	a := Reduce([]trace.Record{recActive(3)})
	b := Reduce([]trace.Record{recActive(8)})
	a.Add(b)
	if a.Records != 2 || a.Num[3] != 1 || a.Num[8] != 1 {
		t.Errorf("sum wrong: %+v", a)
	}
	if a.Prof[0] != 2 || a.Prof[7] != 1 {
		t.Errorf("prof sum wrong: %v", a.Prof)
	}
}

func TestDerivedMeasures(t *testing.T) {
	var r trace.Record
	r.CE[0] = trace.CERead
	r.CE[1] = trace.CEReadMiss
	// 6 idle buses.
	e := Reduce([]trace.Record{r})
	if got := e.BusBusy(); got != 2.0/8.0 {
		t.Errorf("BusBusy = %v, want 0.25", got)
	}
	if got := e.MissRate(); got != 1.0/8.0 {
		t.Errorf("MissRate = %v, want 0.125", got)
	}
	var empty EventCounts
	if empty.BusBusy() != 0 || empty.MissRate() != 0 || empty.MemBusBusy() != 0 {
		t.Error("empty counts should yield zero measures")
	}
}

func TestMemBusBusy(t *testing.T) {
	var r trace.Record
	r.Mem[0] = trace.MemRead
	e := Reduce([]trace.Record{r})
	if got := e.MemBusBusy(); got != 0.5 {
		t.Errorf("MemBusBusy = %v, want 0.5", got)
	}
}

func newTestSystem(seed uint64) *concentrix.System {
	cfg := fx8.DefaultConfig()
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	g := workload.NewGenerator(workload.PaperMix(seed))
	for _, p := range g.Session(600_000) {
		sys.Submit(p)
	}
	return sys
}

func TestControllerImmediateAcquire(t *testing.T) {
	c := NewController(newTestSystem(1))
	counts, ok := c.Acquire(TriggerImmediate, 10_000)
	if !ok {
		t.Fatal("immediate acquisition should complete")
	}
	if counts.Records != BufferDepth {
		t.Fatalf("records = %d, want %d", counts.Records, BufferDepth)
	}
}

func TestControllerTriggeredAcquire(t *testing.T) {
	c := NewController(newTestSystem(2))
	counts, ok := c.Acquire(TriggerAll8, 3_000_000)
	if !ok {
		t.Skip("workload never reached 8-active in budget (seed-dependent)")
	}
	// The trigger cycle has all 8 active, so num_8 >= 1.
	if counts.Num[8] == 0 {
		t.Error("all-8 trigger should capture 8-active records")
	}
}

func TestControllerAcquireTimeout(t *testing.T) {
	// An idle system never reaches 8-active: acquisition must time
	// out and report failure.
	cfg := fx8.DefaultConfig()
	sys := concentrix.NewSystem(fx8.New(cfg), concentrix.DefaultSysConfig())
	c := NewController(sys)
	if _, ok := c.Acquire(TriggerAll8, 5_000); ok {
		t.Fatal("acquisition should time out on an idle machine")
	}
}

func TestControllerCollectSample(t *testing.T) {
	c := NewController(newTestSystem(3))
	spec := SampleSpec{Snapshots: 5, GapCycles: 5_000}
	s := c.CollectSample(spec)
	if !s.Complete {
		t.Fatal("sample should complete")
	}
	if s.Counts.Records != 5*BufferDepth {
		t.Fatalf("records = %d, want %d", s.Counts.Records, 5*BufferDepth)
	}
	if s.EndCycle <= s.StartCycle {
		t.Fatal("sample should advance time")
	}
}

func TestControllerAcquireBuffer(t *testing.T) {
	c := NewController(newTestSystem(4))
	recs, ok := c.AcquireBuffer(TriggerImmediate, 10_000)
	if !ok || len(recs) != BufferDepth {
		t.Fatalf("buffer acquisition failed: ok=%v len=%d", ok, len(recs))
	}
}
