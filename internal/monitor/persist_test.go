package monitor

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/trace"
)

func sampleFixture() []Sample {
	var r1, r2 trace.Record
	r1.Active[0] = true
	r1.CE[0] = trace.CEReadMiss
	r2.Active[0], r2.Active[1] = true, true
	r2.CE[1] = trace.CEWrite
	return []Sample{
		{Counts: Reduce([]trace.Record{r1}), PageFaults: 3, StartCycle: 10, EndCycle: 20, Complete: true},
		{Counts: Reduce([]trace.Record{r2}), PageFaults: 7, StartCycle: 20, EndCycle: 30, Complete: true},
	}
}

func TestSessionRoundTrip(t *testing.T) {
	samples := sampleFixture()
	var buf bytes.Buffer
	if err := WriteSession(&buf, TriggerImmediate, 42, samples); err != nil {
		t.Fatal(err)
	}
	f, err := ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if f.Mode != "immediate" || f.Seed != 42 || f.Version != fileVersion {
		t.Errorf("header = %+v", f)
	}
	if len(f.Samples) != 2 {
		t.Fatalf("samples = %d", len(f.Samples))
	}
	if f.Samples[0].PageFaults != 3 || f.Samples[1].PageFaults != 7 {
		t.Error("fault counts lost")
	}
	if f.Samples[0].Counts.CEOp[trace.CEReadMiss] != 1 {
		t.Error("event counts lost")
	}
}

func TestSessionTotals(t *testing.T) {
	f := SessionFile{Samples: sampleFixture()}
	tot := f.Totals()
	if tot.Records != 2 {
		t.Errorf("records = %d", tot.Records)
	}
	if tot.Num[1] != 1 || tot.Num[2] != 1 {
		t.Errorf("num = %v", tot.Num)
	}
}

// TestSessionRoundTripPreservesReduction pins the full measurement
// persistence path: acquisition buffers reduced to event counts,
// written to disk, reloaded, and reduced again must yield the exact
// waveform reduction of the original records — every counter of
// every sample, and the file's totals.
func TestSessionRoundTripPreservesReduction(t *testing.T) {
	recs := randomRecords(3*BufferDepth, 0xDA5)
	var samples []Sample
	var want EventCounts
	for i := 0; i < 3; i++ {
		buf := recs[i*BufferDepth : (i+1)*BufferDepth]
		counts := Reduce(buf)
		want.Add(counts)
		samples = append(samples, Sample{
			Counts:     counts,
			PageFaults: uint64(i * 11),
			StartCycle: uint64(i * 1000),
			EndCycle:   uint64(i*1000 + 512),
			Complete:   true,
		})
	}

	var disk bytes.Buffer
	if err := WriteSession(&disk, TriggerTransition, 0xDA5, samples); err != nil {
		t.Fatal(err)
	}
	f, err := ReadSession(&disk)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Samples) != len(samples) {
		t.Fatalf("samples = %d, want %d", len(f.Samples), len(samples))
	}
	for i := range samples {
		if f.Samples[i] != samples[i] {
			t.Errorf("sample %d changed across round trip:\n got %+v\nwant %+v",
				i, f.Samples[i], samples[i])
		}
	}
	if got := f.Totals(); got != want {
		t.Errorf("reloaded totals differ from the original reduction:\n got %+v\nwant %+v", got, want)
	}
	// The reduction itself must be reproducible from the raw records
	// — the property that makes persisting only reduced data safe.
	var again EventCounts
	for i := 0; i < 3; i++ {
		again.Add(Reduce(recs[i*BufferDepth : (i+1)*BufferDepth]))
	}
	if again != want {
		t.Error("re-reducing the raw records gave different counts")
	}
}

func TestReadSessionRejectsBadVersion(t *testing.T) {
	in := strings.NewReader(`{"version": 99, "mode": "immediate", "samples": []}`)
	if _, err := ReadSession(in); err == nil {
		t.Fatal("version 99 should be rejected")
	}
}

func TestReadSessionRejectsGarbage(t *testing.T) {
	if _, err := ReadSession(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage should be rejected")
	}
}

func TestWriteSessionIsHumanReadable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSession(&buf, TriggerAll8, 1, sampleFixture()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "all-8-active") || !strings.Contains(out, "\n") {
		t.Error("output should be indented JSON with the mode name")
	}
}
