package monitor

import (
	"strings"
	"testing"

	"repro/internal/trace"
)

func TestWaveformLanes(t *testing.T) {
	var r trace.Record
	r.CE[0] = trace.CERead
	r.CE[1] = trace.CEWriteMiss
	r.Active[0], r.Active[1] = true, true
	r.Mem[0] = trace.MemRead
	r.Mem[1] = trace.MemIPWrite

	out := Waveform([]trace.Record{r}, 10)
	lines := strings.Split(out, "\n")
	find := func(prefix string) string {
		for _, l := range lines {
			if strings.HasPrefix(l, prefix) {
				return l
			}
		}
		t.Fatalf("lane %q missing:\n%s", prefix, out)
		return ""
	}
	if !strings.Contains(find("CE0"), "r") {
		t.Error("CE0 read glyph missing")
	}
	if !strings.Contains(find("CE1"), "W") {
		t.Error("CE1 write-miss glyph missing")
	}
	if !strings.Contains(find("ACT"), "2") {
		t.Error("activity count missing")
	}
	if !strings.Contains(find("MB0"), "r") || !strings.Contains(find("MB1"), "q") {
		t.Error("memory bus glyphs missing")
	}
}

func TestWaveformWraps(t *testing.T) {
	recs := make([]trace.Record, 25)
	out := Waveform(recs, 10)
	if got := strings.Count(out, "records "); got != 3 {
		t.Errorf("windows = %d, want 3", got)
	}
	if !strings.Contains(out, "records 20..24") {
		t.Error("final partial window missing")
	}
}

func TestWaveformGlyphsTotal(t *testing.T) {
	// Every opcode has a distinct glyph.
	seen := map[byte]bool{}
	for op := 0; op < trace.NumCEOps; op++ {
		g := ceOpGlyph(trace.CEOp(op))
		if seen[g] {
			t.Errorf("duplicate CE glyph %c", g)
		}
		seen[g] = true
	}
	seen = map[byte]bool{}
	for op := 0; op < trace.NumMemOps; op++ {
		g := memOpGlyph(trace.MemOp(op))
		if seen[g] {
			t.Errorf("duplicate mem glyph %c", g)
		}
		seen[g] = true
	}
	if ceOpGlyph(trace.CEOp(99)) != '?' || memOpGlyph(trace.MemOp(99)) != '?' {
		t.Error("unknown opcodes should render '?'")
	}
}

func TestWaveformDefaultWidth(t *testing.T) {
	recs := make([]trace.Record, 150)
	out := Waveform(recs, 0)
	if !strings.Contains(out, "records 0..99") {
		t.Error("default width should be 100")
	}
}
