// Package monitor simulates the study's instrumentation: a DAS
// 9100-class logic analyzer probing the cluster's buses (hardware
// level) and the Concentrix kernel counters (software level), plus the
// control programs that ran acquisitions and reduced buffers to event
// counts.
//
// The monitor is non-intrusive by construction: it only reads the
// per-cycle signal snapshot the cluster exposes and never perturbs
// execution, matching the measurement philosophy of chapter 3.
package monitor

import "repro/internal/trace"

// BufferDepth is the DAS 9100's acquisition memory depth.
const BufferDepth = 512

// TriggerMode selects the acquisition trigger comparator.
type TriggerMode int

const (
	// TriggerImmediate begins storing on the first observed cycle —
	// the random workload sampling mode.
	TriggerImmediate TriggerMode = iota

	// TriggerAll8 begins storing when every CE is active — the
	// high-concurrency capture mode (ten sessions in the study).
	TriggerAll8

	// TriggerTransition begins storing when the active count drops
	// from all-8 to fewer — the concurrency transition mode (five
	// sessions in the study).
	TriggerTransition
)

// String names the trigger mode.
func (m TriggerMode) String() string {
	switch m {
	case TriggerImmediate:
		return "immediate"
	case TriggerAll8:
		return "all-8-active"
	case TriggerTransition:
		return "8-to-fewer transition"
	}
	return "unknown"
}

// DAS is the logic analyzer: an armed trigger comparator and a
// fixed-depth buffer of packed records.  Observe is called once per
// machine cycle with the latched probe signals.
type DAS struct {
	// Buffer depth and timebase are the instrument's hardware
	// geometry; Reset clears an acquisition, not the instrument
	// (fxlint:keep).
	depth      int // fxlint:keep
	every      int // store one record per this many observed cycles; fxlint:keep
	phase      int
	mode       TriggerMode
	armed      bool
	triggered  bool
	prevActive int
	buf        []uint64 // packed records, as stored by the probe pods

	// Acquisitions counts completed (filled) buffers.
	Acquisitions uint64
}

// Timebase is the default sampling decimation: the instrument's
// sample clock stores one record per this many bus cycles, so a full
// buffer spans Timebase*BufferDepth cycles of machine time — wide
// enough to cover an entire end-of-loop transition.
const Timebase = 4

// NewDAS returns an analyzer with the standard buffer depth and
// timebase.
func NewDAS() *DAS { return NewDASDepth(BufferDepth, Timebase) }

// NewDASDepth returns an analyzer with a custom buffer depth and
// sampling timebase (the instrument's record clock is selectable).
func NewDASDepth(depth, every int) *DAS {
	if depth < 1 {
		depth = 1
	}
	if every < 1 {
		every = 1
	}
	return &DAS{depth: depth, every: every, buf: make([]uint64, 0, depth)}
}

// Arm clears the buffer and arms the trigger in the given mode.
func (d *DAS) Arm(mode TriggerMode) {
	d.mode = mode
	d.armed = true
	d.triggered = mode == TriggerImmediate
	d.prevActive = -1
	d.phase = 0
	d.buf = d.buf[:0]
}

// Armed reports whether an acquisition is in progress.
func (d *DAS) Armed() bool { return d.armed }

// Reset returns the analyzer to its just-constructed state — disarmed,
// buffer empty, acquisition counter zeroed — reusing the buffer's
// backing array.  Depth and timebase are kept.
func (d *DAS) Reset() {
	d.mode = TriggerImmediate
	d.armed = false
	d.triggered = false
	d.prevActive = 0
	d.phase = 0
	d.buf = d.buf[:0]
	d.Acquisitions = 0
}

// Full reports whether the buffer has filled since the last Arm.
func (d *DAS) Full() bool { return !d.armed && len(d.buf) == d.depth }

// Observe latches one cycle's probe signals.  Before the trigger
// condition is met the comparator watches the activity bits on every
// cycle; once triggered, one record per timebase tick is stored until
// the buffer fills.
func (d *DAS) Observe(r trace.Record) {
	if !d.armed {
		return
	}
	if !d.triggered && !d.watch(r.ActiveCount()) {
		return
	}
	if d.phase == 0 {
		d.store(r)
	}
	d.tick()
}

// Probe is the machine-side view the analyzer's pods latch: the
// activity count the trigger comparator watches, and the full signal
// record when the record clock stores one.  ActiveCount must equal
// Snapshot().ActiveCount(); fx8.Cluster satisfies both.
type Probe interface {
	ActiveCount() int
	Snapshot() trace.Record
}

// ObserveProbe is Observe against a live machine: it latches only the
// signals the analyzer actually inspects this cycle — the activity
// bits while the comparator awaits its trigger, the full record on
// record-clock ticks, and nothing between ticks — so the hot sampling
// loop does not pay for a full probe snapshot on cycles the
// instrument ignores.  It behaves identically to calling
// Observe(p.Snapshot()) every cycle.
func (d *DAS) ObserveProbe(p Probe) {
	if !d.armed {
		return
	}
	if !d.triggered && !d.watch(p.ActiveCount()) {
		return
	}
	if d.phase == 0 {
		d.store(p.Snapshot())
	}
	d.tick()
}

// watch runs the trigger comparator on one cycle's activity count and
// reports whether the analyzer is (now) triggered.
func (d *DAS) watch(n int) bool {
	switch d.mode {
	case TriggerAll8:
		if n == trace.NumCE {
			d.triggered = true
		}
	case TriggerTransition:
		if d.prevActive == trace.NumCE && n < trace.NumCE {
			d.triggered = true
		}
	}
	d.prevActive = n
	return d.triggered
}

// store packs one record into the buffer, disarming on fill.
func (d *DAS) store(r trace.Record) {
	d.buf = append(d.buf, r.Pack())
	if len(d.buf) == d.depth {
		d.armed = false
		d.Acquisitions++
	}
}

// tick advances the record clock one cycle.
func (d *DAS) tick() {
	d.phase++
	if d.phase == d.every {
		d.phase = 0
	}
}

// Transfer returns the acquired records (unpacking the pod words) and
// leaves the buffer intact until the next Arm.  Transferring a
// partially filled buffer is allowed, matching the instrument's
// host-initiated readout.
func (d *DAS) Transfer() []trace.Record {
	out := make([]trace.Record, len(d.buf))
	for i, w := range d.buf {
		out[i] = trace.Unpack(w)
	}
	return out
}

// ReduceBuffer reduces the acquired buffer straight from the packed
// pod words — the counts Transfer+Reduce would produce, without
// materializing the record slice.
func (d *DAS) ReduceBuffer() EventCounts {
	var e EventCounts
	for _, w := range d.buf {
		e.AddRecord(trace.Unpack(w))
	}
	return e
}

// Depth returns the configured buffer depth.
func (d *DAS) Depth() int { return d.depth }

// Span returns the machine cycles a full buffer covers.
func (d *DAS) Span() int { return d.depth * d.every }
