package monitor

import (
	"fmt"
	"strings"

	"repro/internal/trace"
)

// Waveform renders a record buffer as a textual timing diagram — one
// lane per probed signal group — the way an engineer reads a logic
// analyzer screen.  Lanes:
//
//	CEn   per-CE bus activity: '.' idle, 'r'/'w'/'f' read/write/fetch,
//	      'R'/'W'/'F' the miss-qualified forms
//	An    per-CE activity bit: '#' active, ' ' inactive
//	Mn    memory bus: '.' idle, 'r' read, 'w' write, 'i' invalidate,
//	      'p'/'q' IP read/write
//
// width limits the rendered records per row; long buffers wrap.
func Waveform(recs []trace.Record, width int) string {
	if width <= 0 {
		width = 100
	}
	var b strings.Builder
	for start := 0; start < len(recs); start += width {
		end := start + width
		if end > len(recs) {
			end = len(recs)
		}
		window := recs[start:end]
		fmt.Fprintf(&b, "records %d..%d\n", start, end-1)
		for ce := 0; ce < trace.NumCE; ce++ {
			fmt.Fprintf(&b, "CE%d |", ce)
			for _, r := range window {
				b.WriteByte(ceOpGlyph(r.CE[ce]))
			}
			b.WriteString("|\n")
		}
		b.WriteString("ACT |")
		for _, r := range window {
			n := r.ActiveCount()
			if n == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte("0123456789"[n])
			}
		}
		b.WriteString("|\n")
		for m := 0; m < trace.NumMemBus; m++ {
			fmt.Fprintf(&b, "MB%d |", m)
			for _, r := range window {
				b.WriteByte(memOpGlyph(r.Mem[m]))
			}
			b.WriteString("|\n")
		}
		b.WriteString("\n")
	}
	return b.String()
}

func ceOpGlyph(op trace.CEOp) byte {
	switch op {
	case trace.CEIdle:
		return '.'
	case trace.CERead:
		return 'r'
	case trace.CEWrite:
		return 'w'
	case trace.CEFetch:
		return 'f'
	case trace.CEReadMiss:
		return 'R'
	case trace.CEWriteMiss:
		return 'W'
	case trace.CEFetchMiss:
		return 'F'
	}
	return '?'
}

func memOpGlyph(op trace.MemOp) byte {
	switch op {
	case trace.MemIdle:
		return '.'
	case trace.MemRead:
		return 'r'
	case trace.MemWrite:
		return 'w'
	case trace.MemInval:
		return 'i'
	case trace.MemIPRead:
		return 'p'
	case trace.MemIPWrite:
		return 'q'
	}
	return '?'
}
