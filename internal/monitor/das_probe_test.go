package monitor

import (
	"math/rand/v2"
	"testing"

	"repro/internal/trace"
)

// scriptProbe replays a fixed record sequence as a Probe; it counts
// how often each accessor runs so tests can pin the fast path's
// laziness.
type scriptProbe struct {
	recs          []trace.Record
	pos           int
	activeCalls   int
	snapshotCalls int
}

func (p *scriptProbe) ActiveCount() int {
	p.activeCalls++
	return p.recs[p.pos].ActiveCount()
}

func (p *scriptProbe) Snapshot() trace.Record {
	p.snapshotCalls++
	return p.recs[p.pos]
}

// randomRecords builds a record sequence that exercises every trigger
// mode: activity ramps to all-8 and falls back repeatedly.
func randomRecords(n int, seed uint64) []trace.Record {
	rng := rand.New(rand.NewPCG(seed, 7))
	recs := make([]trace.Record, n)
	for i := range recs {
		var r trace.Record
		active := rng.IntN(trace.NumCE + 1)
		for c := 0; c < active; c++ {
			r.Active[c] = true
			r.CE[c] = trace.CEOp(rng.IntN(int(trace.NumCEOps)))
		}
		for b := range r.Mem {
			r.Mem[b] = trace.MemOp(rng.IntN(int(trace.NumMemOps)))
		}
		recs[i] = r
	}
	return recs
}

// TestObserveProbeMatchesObserve pins the probe fast path: for every
// trigger mode, feeding the same cycle sequence through ObserveProbe
// and through Observe must produce identical acquisitions.
func TestObserveProbeMatchesObserve(t *testing.T) {
	for _, mode := range []TriggerMode{TriggerImmediate, TriggerAll8, TriggerTransition} {
		recs := randomRecords(5_000, 42+uint64(mode))

		slow := NewDASDepth(64, 3)
		slow.Arm(mode)
		for _, r := range recs {
			if !slow.Armed() {
				break
			}
			slow.Observe(r)
		}

		fast := NewDASDepth(64, 3)
		fast.Arm(mode)
		probe := &scriptProbe{recs: recs}
		for probe.pos = 0; probe.pos < len(recs) && fast.Armed(); probe.pos++ {
			fast.ObserveProbe(probe)
		}

		if slow.Armed() != fast.Armed() {
			t.Fatalf("mode %v: armed mismatch: observe=%v probe=%v", mode, slow.Armed(), fast.Armed())
		}
		a, b := slow.Transfer(), fast.Transfer()
		if len(a) != len(b) {
			t.Fatalf("mode %v: buffer lengths %d vs %d", mode, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("mode %v: record %d differs: %+v vs %+v", mode, i, a[i], b[i])
			}
		}
		// The fast path must not have snapshotted more often than it
		// stored records (that is its entire point).
		if probe.snapshotCalls != len(b) {
			t.Errorf("mode %v: %d snapshots for %d stored records", mode, probe.snapshotCalls, len(b))
		}
	}
}

// TestReduceBufferMatchesTransferReduce pins the alloc-free reduction
// against the reference Transfer+Reduce composition.
func TestReduceBufferMatchesTransferReduce(t *testing.T) {
	d := NewDASDepth(128, 1)
	d.Arm(TriggerImmediate)
	for _, r := range randomRecords(128, 99) {
		d.Observe(r)
	}
	if d.Armed() {
		t.Fatal("buffer should have filled")
	}
	want := Reduce(d.Transfer())
	if got := d.ReduceBuffer(); got != want {
		t.Errorf("ReduceBuffer = %+v, want %+v", got, want)
	}
}
