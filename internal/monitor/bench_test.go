package monitor

import (
	"testing"

	"repro/internal/concentrix"
	"repro/internal/fx8"
	"repro/internal/workload"
)

// Benchmarks for the measurement layer: the analyzer's per-cycle
// observation and the controller's full sampling loop.  make bench
// records them in BENCH_monitor.json for the CI regression gate.

// benchSystem boots a small machine under the paper's workload mix —
// what the controller steps while sampling.
func benchSystem(seed uint64) *concentrix.System {
	cfg := fx8.DefaultConfig()
	cfg.Seed = seed
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	for _, p := range workload.NewGenerator(workload.PaperMix(seed)).Session(50_000_000) {
		sys.Submit(p)
	}
	return sys
}

// BenchmarkCollectSample measures one workload sample: snapshots
// acquired through the analyzer plus the inter-snapshot stepping —
// the unit the random-sampling sessions repeat.
func BenchmarkCollectSample(b *testing.B) {
	ctl := NewController(benchSystem(7))
	spec := SampleSpec{Snapshots: 2, GapCycles: 2_000}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctl.CollectSample(spec)
	}
}

// BenchmarkDASObserve measures the analyzer's per-cycle observation
// in the storing state (immediate trigger), re-arming on each fill.
func BenchmarkDASObserve(b *testing.B) {
	d := NewDAS()
	d.Arm(TriggerImmediate)
	recs := randomRecords(4, 11)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !d.Armed() {
			d.Arm(TriggerImmediate)
		}
		d.Observe(recs[i&3])
	}
}
