package obs

import (
	"context"
	"hash/fnv"
	"math/rand/v2"
	"strconv"
	"sync"
	"time"
)

// RequestIDHeader is the HTTP header carrying a request's trace ID.
// fx8d assigns one when a request arrives without it and echoes it on
// the response; the remote client forwards it on every unit and batch
// POST, so a sharded campaign's work is attributable end to end.
const RequestIDHeader = "X-Request-Id"

// NewRequestID returns a fresh 16-hex-character request ID.  IDs need
// uniqueness for correlation, not unpredictability, so a fast
// process-seeded generator is the right tool.
func NewRequestID() string {
	return strconv.FormatUint(rand.Uint64(), 16)
}

// requestIDKey is the context key for the propagated request ID.
type requestIDKey struct{}

// WithRequestID returns a context carrying id, for propagation into
// outbound unit requests.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the request ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// Span is one recorded step of a traced request: what ran, when, for
// how long, how it ended, and (for unit-execution endpoints) which
// work-unit IDs it covered.
type Span struct {
	Name     string        `json:"name"`
	Start    time.Time     `json:"start"`
	Duration time.Duration `json:"duration_ns"`
	Outcome  string        `json:"outcome"` // ok | error | canceled | shed
	Units    []int         `json:"units,omitempty"`
}

// DefaultMaxTraces bounds how many distinct request IDs a Tracer
// retains; the oldest trace is evicted when a new ID arrives past the
// bound.
const DefaultMaxTraces = 1024

// maxSpansPerTrace bounds one trace's span list so a single
// long-running ID cannot grow without bound; spans past the cap are
// counted, not stored.
const maxSpansPerTrace = 4096

// traceShards spreads tracer recording across independent locks so
// concurrent requests with different IDs never contend.  Requests
// sharing one ID (a sharded campaign's units) share a shard, which is
// exactly when ordering matters anyway.
const traceShards = 16

// Tracer is a bounded in-memory span store keyed by request ID — the
// reconstruction substrate behind fx8d's GET /v1/trace/{id}.  The
// zero value is not usable; construct with NewTracer.
type Tracer struct {
	perShard int
	shards   [traceShards]traceShard
}

type traceShard struct {
	mu     sync.Mutex
	traces map[string]*trace
	order  []string // insertion order, for FIFO eviction
}

type trace struct {
	spans   []Span
	dropped int
}

// NewTracer returns a tracer retaining at most maxTraces request IDs
// (<= 0 means DefaultMaxTraces).
func NewTracer(maxTraces int) *Tracer {
	if maxTraces <= 0 {
		maxTraces = DefaultMaxTraces
	}
	per := (maxTraces + traceShards - 1) / traceShards
	if per < 1 {
		per = 1
	}
	return &Tracer{perShard: per}
}

func (t *Tracer) shard(id string) *traceShard {
	h := fnv.New32a()
	h.Write([]byte(id))
	return &t.shards[h.Sum32()%traceShards]
}

// Record appends a span to id's trace, evicting the shard's oldest
// trace if id is new and the shard is full.  A trace past
// maxSpansPerTrace counts further spans as dropped instead of
// storing them.
func (t *Tracer) Record(id string, s Span) {
	if id == "" {
		return
	}
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.traces == nil {
		sh.traces = make(map[string]*trace)
	}
	tr := sh.traces[id]
	if tr == nil {
		for len(sh.order) >= t.perShard {
			delete(sh.traces, sh.order[0])
			sh.order = sh.order[1:]
		}
		tr = &trace{}
		sh.traces[id] = tr
		sh.order = append(sh.order, id)
	}
	if len(tr.spans) >= maxSpansPerTrace {
		tr.dropped++
		return
	}
	tr.spans = append(tr.spans, s)
}

// Trace returns a copy of id's spans in recording order and how many
// spans were dropped past the per-trace bound; ok reports whether the
// ID is known.
func (t *Tracer) Trace(id string) (spans []Span, dropped int, ok bool) {
	sh := t.shard(id)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	tr := sh.traces[id]
	if tr == nil {
		return nil, 0, false
	}
	return append([]Span(nil), tr.spans...), tr.dropped, true
}

// Len returns the number of retained traces.
func (t *Tracer) Len() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		n += len(sh.traces)
		sh.mu.Unlock()
	}
	return n
}
