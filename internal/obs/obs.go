// Package obs is the repo's telemetry substrate: dependency-free
// counters, gauges and latency histograms, a registry that renders
// Prometheus text exposition, and a bounded request tracer.  The
// source paper's whole premise is that a monitor must observe a
// running machine without perturbing it; obs applies the same
// discipline to the serving stack — every recording primitive is a
// handful of atomic operations, never a lock shared across request
// goroutines, so instrumentation costs ≈nothing on the hot path.
//
// The package deliberately imports nothing outside the standard
// library (CI asserts this), so any layer — engine, store, remote,
// service — can depend on it without dependency cycles or bloat.
//
// # Primitives
//
//   - Counter: a monotonically increasing atomic count.
//   - Gauge: an instantaneous atomic level (can go down).
//   - Histogram: a fixed-bucket latency histogram with sharded
//     atomic bucket counters and p50/p95/p99 estimation; see
//     histogram.go.
//   - Tracer: a bounded per-request-ID span store; see trace.go.
//
// # Registry
//
// A Registry names metrics, groups them into families, and renders
// the whole set in Prometheus text exposition format (version
// 0.0.4).  Callers that need a custom JSON shape — the fx8d service
// preserves its historical /v1/metrics document — snapshot the same
// primitives and marshal them however they like; the registry's job
// is only the Prometheus side.  Func variants (CounterFunc,
// GaugeFunc) export counters owned elsewhere (store.Stats,
// engine.Stats) without double bookkeeping.
package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing counter.  The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is an instantaneous level.  The zero value is ready to use;
// all methods are safe for concurrent use.
type Gauge struct{ v atomic.Int64 }

// Set replaces the level.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the level by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Labels are one series' label set.  Registration copies them;
// mutating the map afterwards has no effect.
type Labels map[string]string

// metricKind is the Prometheus TYPE of a family.
type metricKind string

const (
	kindCounter   metricKind = "counter"
	kindGauge     metricKind = "gauge"
	kindHistogram metricKind = "histogram"
)

// series is one labeled instance within a family.  Exactly one of
// the value fields is set.
type series struct {
	labels  string // pre-rendered {k="v",...} or ""
	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// family is one metric name with its help text, type and series.
type family struct {
	name   string
	help   string
	kind   metricKind
	scale  float64 // histogram value -> exposition unit (e.g. 1e-9 ns->s)
	series []series
}

// Registry names metrics and renders them as Prometheus text
// exposition.  Register everything at setup time; registration takes
// a lock, but reads of registered metrics never do.  The zero value
// is ready to use.
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
	ord  []string // registration order of family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

func (r *Registry) add(name, help string, kind metricKind, scale float64, s series) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.fams == nil {
		r.fams = make(map[string]*family)
	}
	f := r.fams[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, scale: scale}
		r.fams[name] = f
		r.ord = append(r.ord, name)
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as both %s and %s", name, f.kind, kind))
	}
	f.series = append(f.series, s)
	return f
}

// Counter registers and returns a counter series.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	c := &Counter{}
	r.add(name, help, kindCounter, 1, series{labels: renderLabels(labels), counter: c})
	return c
}

// CounterFunc registers a counter whose value is read from fn at
// render time — the bridge for counters owned by other packages.
// fn must be safe for concurrent use.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, kindCounter, 1, series{labels: renderLabels(labels), fn: fn})
}

// Gauge registers and returns a gauge series.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	g := &Gauge{}
	r.add(name, help, kindGauge, 1, series{labels: renderLabels(labels), gauge: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at render
// time.  fn must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.add(name, help, kindGauge, 1, series{labels: renderLabels(labels), fn: fn})
}

// Histogram registers and returns a histogram series recording int64
// observations (typically nanoseconds) into the given bucket upper
// bounds; scale converts recorded units to exposition units — 1e-9
// renders nanosecond observations as Prometheus-conventional seconds.
func (r *Registry) Histogram(name, help string, labels Labels, bounds []int64, scale float64) *Histogram {
	h := NewHistogram(bounds)
	r.add(name, help, kindHistogram, scale, series{labels: renderLabels(labels), hist: h})
	return h
}

// renderLabels pre-renders a label set as `{k="v",...}`, keys
// sorted, values escaped per the exposition format.
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(labels[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the text exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return v
}

// withLabel splices an extra label (histograms' le) into a
// pre-rendered label string.
func withLabel(labels, k, v string) string {
	extra := k + `="` + v + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatValue renders a sample value the way Prometheus expects.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WritePrometheus renders every registered family in text exposition
// format (version 0.0.4): families in registration order, a HELP and
// TYPE line each, series in registration order, histograms as
// cumulative _bucket/_sum/_count series.  Safe to call concurrently
// with recording.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.ord))
	for _, name := range r.ord {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for _, s := range f.series {
			switch {
			case s.counter != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.counter.Value())))
			case s.gauge != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(float64(s.gauge.Value())))
			case s.fn != nil:
				fmt.Fprintf(&b, "%s%s %s\n", f.name, s.labels, formatValue(s.fn()))
			case s.hist != nil:
				writeHistogram(&b, f, s)
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram renders one histogram series: cumulative buckets
// (le-labeled, ending at +Inf), then _sum and _count.
func writeHistogram(b *strings.Builder, f *family, s series) {
	snap := s.hist.Snapshot()
	cum := uint64(0)
	for i, bound := range snap.Bounds {
		cum += snap.Counts[i]
		le := formatValue(float64(bound) * f.scale)
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", le), cum)
	}
	cum += snap.Counts[len(snap.Bounds)]
	fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), cum)
	fmt.Fprintf(b, "%s_sum%s %s\n", f.name, s.labels, formatValue(float64(snap.Sum)*f.scale))
	fmt.Fprintf(b, "%s_count%s %d\n", f.name, s.labels, snap.Count)
}
