package obs

import (
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// BenchmarkHistogramObserve measures the sequential record path —
// the per-request cost every instrumented endpoint pays.  make bench
// records it in BENCH_obs.json for the CI regression gate.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(int64(i) * 1000)
	}
}

// BenchmarkHistogramObserveParallel measures the contended record
// path: many goroutines observing one histogram, the shape a loaded
// daemon produces.  Shard striping is what keeps this flat as
// parallelism grows.
func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(nil)
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		v := int64(17)
		for pb.Next() {
			v += 40_503 // vary observations so shards spread
			h.Observe(v % int64(time.Second))
		}
	})
}

// BenchmarkPrometheusRender measures a full scrape render of a
// realistically sized registry (a dozen endpoint families).
func BenchmarkPrometheusRender(b *testing.B) {
	r := NewRegistry()
	for _, ep := range []string{"study", "tables", "figures", "sweep", "metrics", "healthz",
		"purge", "run_session", "run_sessions", "run_sweep", "progress", "trace"} {
		labels := Labels{"endpoint": ep}
		r.Counter("fx8d_requests_total", "requests", labels).Add(12345)
		h := r.Histogram("fx8d_request_duration_seconds", "latency", labels, nil, 1e-9)
		for i := 0; i < 256; i++ {
			h.Observe(int64(i) * int64(time.Millisecond) / 4)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.WritePrometheus(io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMutexMapRecord is the "before" shape of the service's old
// metrics.record: one global mutex around a map of per-endpoint
// structs, taken on every request.  It exists as the baseline the
// sharded-histogram replacement (BenchmarkHistogramObserveParallel
// and the service's BenchmarkMetricsRecord) is measured against.
func BenchmarkMutexMapRecord(b *testing.B) {
	var mu sync.Mutex
	type row struct {
		requests uint64
		total    time.Duration
		max      time.Duration
	}
	per := map[string]*row{"study": {}}
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		d := time.Microsecond
		for pb.Next() {
			d += 37 * time.Nanosecond
			mu.Lock()
			r := per["study"]
			r.requests++
			r.total += d
			if d > r.max {
				r.max = d
			}
			mu.Unlock()
		}
	})
}

// BenchmarkTracerRecord measures span recording under one shared
// request ID — the sharded-campaign shape where every unit of one
// trace lands on the same tracer shard.
func BenchmarkTracerRecord(b *testing.B) {
	tr := NewTracer(0)
	id := strings.Repeat("a", 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if i%maxSpansPerTrace == 0 {
			id = NewRequestID() // stay under the per-trace span bound
		}
		tr.Record(id, Span{Name: "run_session", Outcome: "ok"})
	}
}
