package obs

import (
	"context"
	"fmt"
	"go/parser"
	"go/token"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	t.Parallel()
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter = %d, want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge = %d, want 4", g.Value())
	}
}

func TestHistogramBucketsSumCountMax(t *testing.T) {
	t.Parallel()
	h := NewHistogram([]int64{10, 100, 1000})
	for _, v := range []int64{1, 10, 11, 100, 5000} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// Bounds are inclusive: 10 lands in the first bucket, 11 in the
	// second, 5000 in +Inf.
	want := []uint64{2, 2, 0, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count = %d, want 5", s.Count)
	}
	if s.Sum != 1+10+11+100+5000 {
		t.Errorf("sum = %d", s.Sum)
	}
	if s.Max != 5000 {
		t.Errorf("max = %d, want 5000", s.Max)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	t.Parallel()
	h := NewHistogram([]int64{100, 200, 300, 400})
	// 100 observations spread uniformly over (0, 400]: quantile
	// estimates should land within one bucket of the true value.
	for i := 1; i <= 100; i++ {
		h.Observe(int64(4 * i))
	}
	s := h.Snapshot()
	p50, p95, p99 := s.Quantiles()
	if p50 < 100 || p50 > 200 {
		t.Errorf("p50 = %d, want within (100, 200]", p50)
	}
	if p95 < 300 || p95 > 400 {
		t.Errorf("p95 = %d, want within (300, 400]", p95)
	}
	if p99 < 300 || p99 > 400 {
		t.Errorf("p99 = %d, want within (300, 400]", p99)
	}
	// Quantiles never exceed the observed max.
	h2 := NewHistogram([]int64{1000})
	h2.Observe(5)
	if q := h2.Snapshot().Quantile(0.99); q > 5 {
		t.Errorf("quantile %d exceeds observed max 5", q)
	}
	var empty HistogramSnapshot
	if empty.Quantile(0.5) != 0 {
		t.Error("empty snapshot quantile should be 0")
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	t.Parallel()
	h := NewHistogram(nil)
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(g*per + i))
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*per {
		t.Errorf("count = %d, want %d", s.Count, goroutines*per)
	}
	var bucketTotal uint64
	for _, c := range s.Counts {
		bucketTotal += c
	}
	if bucketTotal != s.Count {
		t.Errorf("bucket total %d != count %d", bucketTotal, s.Count)
	}
}

func TestExponentialBounds(t *testing.T) {
	t.Parallel()
	b := ExponentialBounds(10, 10000, 7)
	if len(b) != 7 || b[0] != 10 || b[len(b)-1] != 10000 {
		t.Fatalf("bounds = %v", b)
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not strictly increasing: %v", b)
		}
	}
}

// parsePrometheus splits an exposition document into samples,
// skipping comments.  It fails the test on any malformed line — the
// format check half of the satellite test task.
func parsePrometheus(t *testing.T, text string) map[string]float64 {
	t.Helper()
	samples := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimSuffix(text, "\n"), "\n") {
		if line == "" {
			t.Fatalf("blank line in exposition output")
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("malformed sample line %q", line)
		}
		name, val := line[:sp], line[sp+1:]
		f, err := strconv.ParseFloat(val, 64)
		if err != nil {
			t.Fatalf("unparseable value in %q: %v", line, err)
		}
		if _, dup := samples[name]; dup {
			t.Fatalf("duplicate series %q", name)
		}
		samples[name] = f
	}
	return samples
}

func TestRegistryPrometheusExposition(t *testing.T) {
	t.Parallel()
	r := NewRegistry()
	c := r.Counter("test_requests_total", "requests", Labels{"endpoint": "study"})
	c.Add(3)
	r.Counter("test_requests_total", "requests", Labels{"endpoint": "sweep"}).Add(1)
	g := r.Gauge("test_in_flight", "in flight", nil)
	g.Set(2)
	r.GaugeFunc("test_uptime_seconds", "uptime", nil, func() float64 { return 1.5 })
	r.CounterFunc("test_evictions_total", "evictions", nil, func() float64 { return 9 })
	h := r.Histogram("test_latency_seconds", "latency", Labels{"endpoint": "study"},
		[]int64{int64(time.Millisecond), int64(10 * time.Millisecond)}, 1e-9)
	h.ObserveDuration(500 * time.Microsecond)
	h.ObserveDuration(5 * time.Millisecond)
	h.ObserveDuration(time.Second)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	text := b.String()
	samples := parsePrometheus(t, text)

	if samples[`test_requests_total{endpoint="study"}`] != 3 {
		t.Errorf("study counter sample missing or wrong in:\n%s", text)
	}
	if samples[`test_in_flight`] != 2 || samples[`test_uptime_seconds`] != 1.5 || samples[`test_evictions_total`] != 9 {
		t.Errorf("gauge/func samples wrong in:\n%s", text)
	}

	// Histogram: buckets must be cumulative (monotonically
	// nondecreasing in le order), +Inf must equal _count, and _sum
	// must match the observations.
	buckets := []string{
		`test_latency_seconds_bucket{endpoint="study",le="0.001"}`,
		`test_latency_seconds_bucket{endpoint="study",le="0.01"}`,
		`test_latency_seconds_bucket{endpoint="study",le="+Inf"}`,
	}
	prev := -1.0
	for _, name := range buckets {
		v, ok := samples[name]
		if !ok {
			t.Fatalf("missing bucket %q in:\n%s", name, text)
		}
		if v < prev {
			t.Errorf("bucket %q = %g below previous %g: not cumulative", name, v, prev)
		}
		prev = v
	}
	if inf := samples[buckets[2]]; inf != 3 {
		t.Errorf("+Inf bucket = %g, want 3", inf)
	}
	if cnt := samples[`test_latency_seconds_count{endpoint="study"}`]; cnt != 3 {
		t.Errorf("_count = %g, want 3", cnt)
	}
	wantSum := (500*time.Microsecond + 5*time.Millisecond + time.Second).Seconds()
	if sum := samples[`test_latency_seconds_sum{endpoint="study"}`]; math.Abs(sum-wantSum) > 1e-9 {
		t.Errorf("_sum = %g, want %g", sum, wantSum)
	}

	// One HELP and one TYPE line per family, before its samples.
	for _, fam := range []string{"test_requests_total", "test_latency_seconds"} {
		if strings.Count(text, "# HELP "+fam+" ") != 1 || strings.Count(text, "# TYPE "+fam+" ") != 1 {
			t.Errorf("family %s lacks exactly one HELP and TYPE line:\n%s", fam, text)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	t.Parallel()
	got := renderLabels(Labels{"path": `a"b\c` + "\n"})
	want := `{path="a\"b\\c\n"}`
	if got != want {
		t.Errorf("renderLabels = %q, want %q", got, want)
	}
}

func TestTracerRecordAndEvict(t *testing.T) {
	t.Parallel()
	tr := NewTracer(traceShards) // one trace per shard
	tr.Record("a", Span{Name: "study", Outcome: "ok"})
	tr.Record("a", Span{Name: "study", Outcome: "error", Units: []int{1, 2}})
	spans, dropped, ok := tr.Trace("a")
	if !ok || len(spans) != 2 || dropped != 0 {
		t.Fatalf("trace a = %v dropped=%d ok=%v", spans, dropped, ok)
	}
	if spans[1].Units[1] != 2 || spans[0].Outcome != "ok" {
		t.Errorf("span contents wrong: %+v", spans)
	}
	if _, _, ok := tr.Trace("missing"); ok {
		t.Error("unknown id reported ok")
	}

	// FIFO eviction within a shard: find two ids hashing to one
	// shard; recording the second must evict the first.
	base := tr.shard("a")
	other := ""
	for i := 0; ; i++ {
		id := fmt.Sprintf("evict-%d", i)
		if tr.shard(id) == base && id != "a" {
			other = id
			break
		}
	}
	tr.Record(other, Span{Name: "x"})
	if _, _, ok := tr.Trace("a"); ok {
		t.Error("oldest trace survived past the shard bound")
	}
	if _, _, ok := tr.Trace(other); !ok {
		t.Error("newest trace missing after eviction")
	}
}

func TestTracerSpanBound(t *testing.T) {
	t.Parallel()
	tr := NewTracer(0)
	for i := 0; i < maxSpansPerTrace+5; i++ {
		tr.Record("big", Span{Name: "unit"})
	}
	spans, dropped, ok := tr.Trace("big")
	if !ok || len(spans) != maxSpansPerTrace || dropped != 5 {
		t.Errorf("spans=%d dropped=%d ok=%v", len(spans), dropped, ok)
	}
}

func TestTracerConcurrent(t *testing.T) {
	t.Parallel()
	tr := NewTracer(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				id := fmt.Sprintf("t%d", i%32)
				tr.Record(id, Span{Name: "n"})
				tr.Trace(id)
			}
		}(g)
	}
	wg.Wait()
	if tr.Len() == 0 {
		t.Error("no traces retained")
	}
}

func TestRequestIDContextRoundTrip(t *testing.T) {
	t.Parallel()
	id := NewRequestID()
	if len(id) == 0 || len(id) > 16 {
		t.Errorf("request id %q has unexpected length", id)
	}
	ctx := WithRequestID(context.Background(), id)
	if got := RequestID(ctx); got != id {
		t.Errorf("RequestID = %q, want %q", got, id)
	}
	if got := RequestID(context.Background()); got != "" {
		t.Errorf("RequestID on bare context = %q, want empty", got)
	}
}

// TestStdlibOnlyImports pins the package's dependency-freedom: obs
// must import nothing outside the Go standard library, so every
// layer of the repo can depend on it without cycles.  CI enforces the
// same invariant with go list; this test catches it at go test time.
func TestStdlibOnlyImports(t *testing.T) {
	t.Parallel()
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, ".", nil, parser.ImportsOnly)
	if err != nil {
		t.Fatal(err)
	}
	var imports []string
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, imp := range f.Imports {
				imports = append(imports, strings.Trim(imp.Path.Value, `"`))
			}
		}
	}
	sort.Strings(imports)
	for _, path := range imports {
		first, _, _ := strings.Cut(path, "/")
		if strings.Contains(first, ".") || strings.HasPrefix(path, "repro/") {
			t.Errorf("internal/obs imports non-stdlib package %q", path)
		}
	}
}
