package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefaultLatencyBounds are histogram bucket upper bounds (in
// nanoseconds) spanning 50µs to 30s — wide enough for a cached
// artefact read and a cold paper-scale campaign alike.  Bounds are
// inclusive: an observation lands in the first bucket whose bound it
// does not exceed.
var DefaultLatencyBounds = []int64{
	int64(50 * time.Microsecond),
	int64(100 * time.Microsecond),
	int64(250 * time.Microsecond),
	int64(500 * time.Microsecond),
	int64(1 * time.Millisecond),
	int64(2500 * time.Microsecond),
	int64(5 * time.Millisecond),
	int64(10 * time.Millisecond),
	int64(25 * time.Millisecond),
	int64(50 * time.Millisecond),
	int64(100 * time.Millisecond),
	int64(250 * time.Millisecond),
	int64(500 * time.Millisecond),
	int64(1 * time.Second),
	int64(2500 * time.Millisecond),
	int64(5 * time.Second),
	int64(10 * time.Second),
	int64(30 * time.Second),
}

// histShards is the number of independent shards an observation may
// land in.  Shards exist purely to spread concurrent writers across
// cache lines; snapshots sum them.  Must be a power of two.
const histShards = 8

// histShard is one shard's counters, padded so two shards never
// share a cache line (the whole point of sharding).
type histShard struct {
	counts []atomic.Uint64 // len(bounds)+1; last is +Inf
	sum    atomic.Int64
	count  atomic.Uint64
	max    atomic.Int64
	_      [32]byte // pad the hot fields away from the next shard
}

// Histogram is a fixed-bucket histogram of int64 observations
// (typically latencies in nanoseconds).  Observations are a bucket
// search plus four atomic adds on one of histShards shards — no
// locks, no allocation — so concurrent request goroutines never
// serialize on it.  The zero value is not usable; construct with
// NewHistogram.
type Histogram struct {
	bounds []int64
	shards [histShards]histShard
}

// NewHistogram returns a histogram over the given strictly
// increasing bucket upper bounds (nil means
// DefaultLatencyBounds).  The implicit final bucket is +Inf.
func NewHistogram(bounds []int64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	h := &Histogram{bounds: bounds}
	for i := range h.shards {
		h.shards[i].counts = make([]atomic.Uint64, len(bounds)+1)
	}
	return h
}

// mix is splitmix64's finalizer: it turns an observation's noisy low
// bits into a shard index, spreading concurrent writers across
// shards without any shared state (a round-robin counter would
// itself be a contended atomic).
func mix(v uint64) uint64 {
	v ^= v >> 30
	v *= 0xbf58476d1ce4e5b9
	v ^= v >> 27
	v *= 0x94d049bb133111eb
	v ^= v >> 31
	return v
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	s := &h.shards[mix(uint64(v))&(histShards-1)]
	// Bucket search: the bound list is short (≈18), so a linear scan
	// beats binary search's branch misses for the common small
	// latencies; sort.Search would also allocate nothing, but this is
	// simpler and measurably cheaper at the low end.
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	s.counts[i].Add(1)
	s.sum.Add(v)
	s.count.Add(1)
	for {
		old := s.max.Load()
		if v <= old || s.max.CompareAndSwap(old, v) {
			break
		}
	}
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(int64(d)) }

// HistogramSnapshot is a point-in-time copy of a histogram's state.
// Counts are per-bucket (not cumulative); Counts[len(Bounds)] is the
// +Inf bucket.
type HistogramSnapshot struct {
	Bounds []int64
	Counts []uint64
	Sum    int64
	Count  uint64
	Max    int64
}

// Snapshot sums the shards.  Concurrent observations may land
// between shard reads, so Sum/Count/Counts are each internally
// consistent but only approximately mutually so — the usual contract
// of lock-free scrapes.
func (h *Histogram) Snapshot() HistogramSnapshot {
	snap := HistogramSnapshot{
		Bounds: h.bounds,
		Counts: make([]uint64, len(h.bounds)+1),
	}
	for i := range h.shards {
		s := &h.shards[i]
		for j := range snap.Counts {
			snap.Counts[j] += s.counts[j].Load()
		}
		snap.Sum += s.sum.Load()
		snap.Count += s.count.Load()
		if m := s.max.Load(); m > snap.Max {
			snap.Max = m
		}
	}
	return snap
}

// Quantile estimates the q-th quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the q-th observation.  The
// +Inf bucket reports the observed max; an empty histogram reports
// 0.  Estimates inherit the bucket resolution — exact enough for the
// p50/p95/p99 the load gates watch, not for microsecond forensics.
func (s HistogramSnapshot) Quantile(q float64) int64 {
	if s.Count == 0 || q <= 0 {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	cum := uint64(0)
	for i, c := range s.Counts {
		if cum+c >= rank {
			if i == len(s.Bounds) {
				return s.Max // +Inf bucket: best estimate is the max
			}
			lo := int64(0)
			if i > 0 {
				lo = s.Bounds[i-1]
			}
			hi := s.Bounds[i]
			if hi > s.Max {
				hi = s.Max // never report past the observed max
			}
			if hi < lo {
				return lo
			}
			frac := float64(rank-cum) / float64(c)
			return lo + int64(frac*float64(hi-lo))
		}
		cum += c
	}
	return s.Max
}

// Quantiles returns the p50, p95 and p99 estimates in one pass over
// a snapshot — the triple every latency report in the repo wants.
func (s HistogramSnapshot) Quantiles() (p50, p95, p99 int64) {
	return s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99)
}

// ExponentialBounds returns n strictly increasing bounds growing
// geometrically from min to max — a helper for histograms whose
// range is known but whose shape is not latency-like.
func ExponentialBounds(min, max int64, n int) []int64 {
	if n < 2 || min <= 0 || max <= min {
		return []int64{min, max}
	}
	ratio := math.Pow(float64(max)/float64(min), 1/float64(n-1))
	out := make([]int64, 0, n)
	v := float64(min)
	for i := 0; i < n; i++ {
		b := int64(math.Round(v))
		if len(out) > 0 && b <= out[len(out)-1] {
			b = out[len(out)-1] + 1
		}
		out = append(out, b)
		v *= ratio
	}
	if out[n-1] < max {
		out[n-1] = max
	}
	return out
}
