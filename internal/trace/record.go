package trace

import (
	"fmt"
	"strconv"
)

// NumCE is the number of Computational Elements in the measured
// cluster configuration (an FX/8).
const NumCE = 8

// NumMemBus is the number of shared memory buses between the caches
// and main memory.
const NumMemBus = 2

// Record is one logic-analyzer record: the state of the probed signals
// latched on a single bus cycle.  It matches the three probe points of
// the study: the eight CE buses, the memory buses, and the Concurrency
// Control Bus activity state.
//
// Active[i] reports whether CE i was executing on that cycle — either
// inside a concurrent operation (CCB concurrency-active) or running
// the serial thread of a scheduled process.  num_j / prof_j event
// counts reduce over this field.
type Record struct {
	CE     [NumCE]CEOp
	Mem    [NumMemBus]MemOp
	Active [NumCE]bool
}

// ActiveCount returns the number of processors active in the record.
func (r Record) ActiveCount() int {
	n := 0
	for _, a := range r.Active {
		if a {
			n++
		}
	}
	return n
}

// BusyCount returns the number of CE buses occupied in the record.
func (r Record) BusyCount() int {
	n := 0
	for _, op := range r.CE {
		if op.Busy() {
			n++
		}
	}
	return n
}

// MissCount returns the number of CE buses carrying a miss-qualified
// opcode in the record.
func (r Record) MissCount() int {
	n := 0
	for _, op := range r.CE {
		if op.Miss() {
			n++
		}
	}
	return n
}

// Signal packing.  The DAS 9100 used in the study acquires up to 80
// binary signals per record.  The simulated probe head packs a Record
// into a 64-bit word: 3 bits of opcode per CE bus (24), 3 bits per
// memory bus (6), and 1 activity bit per CE (8), totaling 38 signals.

const (
	ceOpBits  = 3
	memOpBits = 3
	ceOpMask  = 1<<ceOpBits - 1
	memOpMask = 1<<memOpBits - 1

	memShift    = NumCE * ceOpBits
	activeShift = memShift + NumMemBus*memOpBits

	// SignalCount is the number of probe signals a packed record
	// occupies on the analyzer pod (must be <= the pod width, 80).
	SignalCount = activeShift + NumCE
)

// Pack encodes the record into a signal word as captured on the
// analyzer probe pods.
func (r Record) Pack() uint64 {
	var w uint64
	for i, op := range r.CE {
		w |= uint64(op&ceOpMask) << (i * ceOpBits)
	}
	for i, op := range r.Mem {
		w |= uint64(op&memOpMask) << (memShift + i*memOpBits)
	}
	for i, a := range r.Active {
		if a {
			w |= 1 << (activeShift + i)
		}
	}
	return w
}

// MarshalJSON encodes the record as its packed signal word — the same
// 38-signal form the analyzer pods capture — so persisted buffers cost
// a short integer per record instead of three expanded arrays.
func (r Record) MarshalJSON() ([]byte, error) {
	return strconv.AppendUint(nil, r.Pack(), 10), nil
}

// UnmarshalJSON decodes a packed signal word.
func (r *Record) UnmarshalJSON(data []byte) error {
	w, err := strconv.ParseUint(string(data), 10, 64)
	if err != nil {
		return fmt.Errorf("trace: decoding packed record: %w", err)
	}
	*r = Unpack(w)
	return nil
}

// Unpack decodes a signal word captured on the analyzer probe pods.
func Unpack(w uint64) Record {
	var r Record
	for i := range r.CE {
		r.CE[i] = CEOp(w >> (i * ceOpBits) & ceOpMask)
	}
	for i := range r.Mem {
		r.Mem[i] = MemOp(w >> (memShift + i*memOpBits) & memOpMask)
	}
	for i := range r.Active {
		r.Active[i] = w>>(activeShift+i)&1 != 0
	}
	return r
}
