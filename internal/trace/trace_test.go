package trace

import (
	"bytes"
	"encoding/json"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestCEOpStrings(t *testing.T) {
	want := map[CEOp]string{
		CEIdle:      "IDLE",
		CERead:      "READ",
		CEWrite:     "WRITE",
		CEFetch:     "FETCH",
		CEReadMiss:  "READ.MISS",
		CEWriteMiss: "WRITE.MISS",
		CEFetchMiss: "FETCH.MISS",
	}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Errorf("CEOp(%d).String() = %q, want %q", op, got, s)
		}
	}
	if got := CEOp(99).String(); got != "CEOp(99)" {
		t.Errorf("unknown opcode String() = %q", got)
	}
}

func TestMemOpStrings(t *testing.T) {
	want := map[MemOp]string{
		MemIdle:    "IDLE",
		MemRead:    "READ",
		MemWrite:   "WRITE",
		MemInval:   "INVAL",
		MemIPRead:  "IP.READ",
		MemIPWrite: "IP.WRITE",
	}
	for op, s := range want {
		if got := op.String(); got != s {
			t.Errorf("MemOp(%d).String() = %q, want %q", op, got, s)
		}
	}
	if got := MemOp(99).String(); got != "MemOp(99)" {
		t.Errorf("unknown opcode String() = %q", got)
	}
}

func TestCEOpBusy(t *testing.T) {
	if CEIdle.Busy() {
		t.Error("CEIdle should not be busy")
	}
	for _, op := range []CEOp{CERead, CEWrite, CEFetch, CEReadMiss, CEWriteMiss, CEFetchMiss} {
		if !op.Busy() {
			t.Errorf("%v should be busy", op)
		}
	}
}

func TestCEOpMiss(t *testing.T) {
	misses := map[CEOp]bool{
		CEIdle: false, CERead: false, CEWrite: false, CEFetch: false,
		CEReadMiss: true, CEWriteMiss: true, CEFetchMiss: true,
	}
	for op, want := range misses {
		if got := op.Miss(); got != want {
			t.Errorf("%v.Miss() = %v, want %v", op, got, want)
		}
	}
}

func TestMemOpBusy(t *testing.T) {
	if MemIdle.Busy() {
		t.Error("MemIdle should not be busy")
	}
	for _, op := range []MemOp{MemRead, MemWrite, MemInval, MemIPRead, MemIPWrite} {
		if !op.Busy() {
			t.Errorf("%v should be busy", op)
		}
	}
}

func TestRecordCounts(t *testing.T) {
	var r Record
	if r.ActiveCount() != 0 || r.BusyCount() != 0 || r.MissCount() != 0 {
		t.Fatalf("zero record should have zero counts: %+v", r)
	}

	r.Active[0] = true
	r.Active[7] = true
	r.CE[0] = CERead
	r.CE[3] = CEReadMiss
	r.CE[7] = CEWriteMiss

	if got := r.ActiveCount(); got != 2 {
		t.Errorf("ActiveCount = %d, want 2", got)
	}
	if got := r.BusyCount(); got != 3 {
		t.Errorf("BusyCount = %d, want 3", got)
	}
	if got := r.MissCount(); got != 2 {
		t.Errorf("MissCount = %d, want 2", got)
	}
}

func TestSignalCountFitsPod(t *testing.T) {
	if SignalCount > 80 {
		t.Fatalf("SignalCount = %d exceeds the 80-signal pod capacity", SignalCount)
	}
	if SignalCount > 64 {
		t.Fatalf("SignalCount = %d does not fit the 64-bit packed word", SignalCount)
	}
}

func randomRecord(rng *rand.Rand) Record {
	var r Record
	for i := range r.CE {
		r.CE[i] = CEOp(rng.IntN(NumCEOps))
	}
	for i := range r.Mem {
		r.Mem[i] = MemOp(rng.IntN(NumMemOps))
	}
	for i := range r.Active {
		r.Active[i] = rng.IntN(2) == 1
	}
	return r
}

func TestPackUnpackRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for i := 0; i < 1000; i++ {
		r := randomRecord(rng)
		got := Unpack(r.Pack())
		if got != r {
			t.Fatalf("round trip failed: %+v -> %#x -> %+v", r, r.Pack(), got)
		}
	}
}

func TestPackUnpackQuick(t *testing.T) {
	// Property: packing then unpacking any in-range record is the
	// identity, and the packed word never uses bits beyond SignalCount.
	f := func(ceRaw [NumCE]uint8, memRaw [NumMemBus]uint8, act [NumCE]bool) bool {
		var r Record
		for i, v := range ceRaw {
			r.CE[i] = CEOp(int(v) % NumCEOps)
		}
		for i, v := range memRaw {
			r.Mem[i] = MemOp(int(v) % NumMemOps)
		}
		r.Active = act
		w := r.Pack()
		if w>>SignalCount != 0 {
			return false
		}
		return Unpack(w) == r
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRecordJSONRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	for i := 0; i < 200; i++ {
		r := randomRecord(rng)
		data, err := json.Marshal(r)
		if err != nil {
			t.Fatal(err)
		}
		// The packed form is a bare integer, not an object.
		if bytes.ContainsAny(data, "{[") {
			t.Fatalf("record encoded expanded: %s", data)
		}
		var got Record
		if err := json.Unmarshal(data, &got); err != nil {
			t.Fatal(err)
		}
		if got != r {
			t.Fatalf("JSON round trip failed: %+v -> %s -> %+v", r, data, got)
		}
	}
	// Buffers (the persisted form) round-trip as integer arrays.
	buf := []Record{randomRecord(rng), randomRecord(rng)}
	data, err := json.Marshal(buf)
	if err != nil {
		t.Fatal(err)
	}
	var got []Record
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0] != buf[0] || got[1] != buf[1] {
		t.Fatalf("buffer round trip failed: %s", data)
	}
	// Garbage fails loudly rather than zero-filling.
	if err := json.Unmarshal([]byte(`"text"`), new(Record)); err == nil {
		t.Error("non-numeric record decoded")
	}
}

func TestUnpackIgnoresHighBits(t *testing.T) {
	r := Record{CE: [NumCE]CEOp{CERead}, Active: [NumCE]bool{true}}
	w := r.Pack() | 0xFF<<SignalCount&^(1<<64-1>>0) // no-op guard for readability
	_ = w
	// Explicitly set a bit above the signal range and confirm the
	// decoded record is unchanged.
	if SignalCount < 64 {
		w = r.Pack() | 1<<63
		if got := Unpack(w); got != r {
			t.Errorf("Unpack with stray high bit = %+v, want %+v", got, r)
		}
	}
}

func TestActiveCountMatchesPackedPopcount(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	for i := 0; i < 200; i++ {
		r := randomRecord(rng)
		n := 0
		w := r.Pack() >> activeShift
		for w != 0 {
			n += int(w & 1)
			w >>= 1
		}
		if n != r.ActiveCount() {
			t.Fatalf("popcount %d != ActiveCount %d", n, r.ActiveCount())
		}
	}
}
