// Package trace defines the signal-level vocabulary observed by the
// hardware monitor: the per-cycle opcodes visible on each Computational
// Element (CE) bus and on the shared memory buses of the simulated
// Alliant FX/8, and the fixed-width records a logic analyzer captures.
//
// The package corresponds to the probe points of McGuire's study
// (chapter 3.3): CE-to-cache bus opcode per CE, shared memory bus
// opcode, and the Concurrency Control Bus activity state.
package trace

import "fmt"

// CEOp is the opcode visible on a CE-to-cache bus during one cycle.
// Miss-qualified opcodes are emitted on the cycle an access is
// determined to miss in the shared cache; the study's Missrate is the
// fraction of bus cycles carrying a miss-qualified opcode.
type CEOp uint8

// CE bus opcodes.
const (
	CEIdle  CEOp = iota // bus not occupied
	CERead              // data read, shared-cache hit path
	CEWrite             // data write, shared-cache hit path
	CEFetch             // instruction fetch forwarded to shared cache
	CEReadMiss
	CEWriteMiss
	CEFetchMiss
	numCEOps
)

// NumCEOps is the number of distinct CE bus opcodes.
const NumCEOps = int(numCEOps)

// String returns the mnemonic used in reduced event-count listings.
func (op CEOp) String() string {
	switch op {
	case CEIdle:
		return "IDLE"
	case CERead:
		return "READ"
	case CEWrite:
		return "WRITE"
	case CEFetch:
		return "FETCH"
	case CEReadMiss:
		return "READ.MISS"
	case CEWriteMiss:
		return "WRITE.MISS"
	case CEFetchMiss:
		return "FETCH.MISS"
	}
	return fmt.Sprintf("CEOp(%d)", uint8(op))
}

// Busy reports whether the opcode occupies the bus (anything but idle).
func (op CEOp) Busy() bool { return op != CEIdle }

// Miss reports whether the opcode is miss-qualified.
func (op CEOp) Miss() bool {
	return op == CEReadMiss || op == CEWriteMiss || op == CEFetchMiss
}

// MemOp is the opcode visible on a shared memory bus during one cycle.
type MemOp uint8

// Memory bus opcodes.
const (
	MemIdle  MemOp = iota
	MemRead        // cache line fill from main memory
	MemWrite       // dirty line write-back
	MemInval       // coherence invalidate between caches
	MemIPRead
	MemIPWrite
	numMemOps
)

// NumMemOps is the number of distinct memory bus opcodes.
const NumMemOps = int(numMemOps)

// String returns the mnemonic used in reduced event-count listings.
func (op MemOp) String() string {
	switch op {
	case MemIdle:
		return "IDLE"
	case MemRead:
		return "READ"
	case MemWrite:
		return "WRITE"
	case MemInval:
		return "INVAL"
	case MemIPRead:
		return "IP.READ"
	case MemIPWrite:
		return "IP.WRITE"
	}
	return fmt.Sprintf("MemOp(%d)", uint8(op))
}

// Busy reports whether the opcode occupies the bus.
func (op MemOp) Busy() bool { return op != MemIdle }
