package coord_test

import (
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/store"
)

// leaseFlakyFS makes lease writes fail: renames whose target is the
// job's lease entry error out, everything else passes through.  The
// store stays readable and record/unit writes keep working — exactly
// the "store briefly unwritable for the lease" failure mode the
// keepLease loop must survive or cleanly stand down from.
type leaseFlakyFS struct {
	store.FS
	leaseFile string       // base name of the lease entry
	attempts  atomic.Int64 // lease-rename attempts seen
	failFirst int64        // attempts 1..failFirst fail; < 0 means always fail
}

func (f *leaseFlakyFS) Rename(oldpath, newpath string) error {
	if filepath.Base(newpath) == f.leaseFile {
		n := f.attempts.Add(1)
		if f.failFirst < 0 || n <= f.failFirst {
			return errors.New("injected: lease write failed")
		}
	}
	return f.FS.Rename(oldpath, newpath)
}

// stallingUnitBackend serves real session units for the first
// serveFirst requests, then parks further requests until release is
// closed.  canceled is signaled once when a parked request's context
// is canceled — the observable moment a coordinator stood down.
func stallingUnitBackend(t *testing.T, serveFirst int64, release <-chan struct{}) (srv *httptest.Server, canceled <-chan struct{}) {
	t.Helper()
	cancelCh := make(chan struct{})
	var once sync.Once
	var served atomic.Int64
	srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		var u core.StudyUnit
		if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		if served.Add(1) > serveFirst {
			select {
			case <-release:
			case <-r.Context().Done():
				once.Do(func() { close(cancelCh) })
				return
			}
		}
		res, err := core.RunStudyUnit(u)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(res)
	}))
	t.Cleanup(srv.Close)
	return srv, cancelCh
}

// The invariant under test: a coordinator whose lease refreshes fail
// mid-run either keeps the lease (failure window shorter than the
// TTL, refresh retried and recovered) or cleanly loses the job to a
// peer (window longer than the TTL) — but the two owners never
// compute concurrently, so no unit is ever executed twice.  Asserted
// via the coordinators' compute counters.
func TestLeaseRefreshFailureMidRun(t *testing.T) {
	t.Run("loses cleanly to peer", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		spec := coord.JobSpec{Kind: "sessions", Units: sessionUnits(8)}
		id, err := coord.JobID(spec)
		if err != nil {
			t.Fatal(err)
		}
		leaseKey, err := coord.LeaseKey(id)
		if err != nil {
			t.Fatal(err)
		}

		// c1's store: every lease refresh fails, forever.
		flaky := &leaseFlakyFS{FS: store.OS(), leaseFile: leaseKey + ".fx8s", failFirst: -1}
		s1, err := store.Open(dir, store.WithFS(flaky))
		if err != nil {
			t.Fatal(err)
		}
		release := make(chan struct{})
		defer close(release)
		srv, canceled := stallingUnitBackend(t, 3, release)

		reg := coord.NewRegistry()
		reg.Register(srv.URL, time.Minute)
		c1 := coord.New(coord.Config{
			Store: s1, Registry: reg,
			PerBackend: 1, LeaseTTL: 600 * time.Millisecond,
		})
		defer c1.Close()
		if _, _, err := c1.Submit(spec); err != nil {
			t.Fatal(err)
		}

		// c1 serves three units, stalls on the fourth, and — unable to
		// refresh its lease before it expires — self-fences: the run
		// context is canceled, which aborts the parked request.
		select {
		case <-canceled:
		case <-time.After(30 * time.Second):
			t.Fatal("c1 never stood down after its lease refreshes failed past the TTL")
		}
		if n := c1.Stats().UnitsComputed; n != 3 {
			t.Fatalf("c1 computed %d units before standing down, want 3", n)
		}

		// c2: clean store on the same directory, no backends.  It
		// takes over the expired lease and finishes the job, replaying
		// c1's three completed units from the cache.
		s2, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		c2 := coord.New(coord.Config{Store: s2, Workers: 2})
		defer c2.Close()
		if _, _, err := c2.Submit(spec); err != nil {
			t.Fatal(err)
		}
		st := await(t, c2, id)
		if st.State != coord.StateDone {
			t.Fatalf("job ended %s (%s), want done", st.State, st.Error)
		}

		// Exactly-once across the handover: c1's and c2's computed
		// units partition the job — nothing ran twice, nothing was
		// lost — and c2 replayed precisely what c1 had finished.
		st1, st2 := c1.Stats(), c2.Stats()
		if st1.UnitsComputed+st2.UnitsComputed != 8 {
			t.Errorf("computed %d + %d units across owners, want exactly 8 (a unit ran twice or was lost)",
				st1.UnitsComputed, st2.UnitsComputed)
		}
		if st2.UnitsReplayed != st1.UnitsComputed {
			t.Errorf("c2 replayed %d units, want c1's %d completions", st2.UnitsReplayed, st1.UnitsComputed)
		}
		if s2.Has(leaseKey) {
			t.Error("lease entry leaked after the takeover owner finished")
		}
	})

	t.Run("keeps lease on recovery", func(t *testing.T) {
		t.Parallel()
		dir := t.TempDir()
		spec := coord.JobSpec{Kind: "sessions", Units: sessionUnits(4)}
		id, err := coord.JobID(spec)
		if err != nil {
			t.Fatal(err)
		}
		leaseKey, err := coord.LeaseKey(id)
		if err != nil {
			t.Fatal(err)
		}

		// The first two lease refresh attempts fail, then the store
		// recovers — a failure window much shorter than the TTL.
		flaky := &leaseFlakyFS{FS: store.OS(), leaseFile: leaseKey + ".fx8s", failFirst: 2}
		s1, err := store.Open(dir, store.WithFS(flaky))
		if err != nil {
			t.Fatal(err)
		}
		release := make(chan struct{})
		srv, _ := stallingUnitBackend(t, 2, release)

		reg := coord.NewRegistry()
		reg.Register(srv.URL, time.Minute)
		c1 := coord.New(coord.Config{
			Store: s1, Registry: reg,
			PerBackend: 1, LeaseTTL: 3 * time.Second,
		})
		defer c1.Close()
		if _, _, err := c1.Submit(spec); err != nil {
			t.Fatal(err)
		}

		// Hold the job mid-run until the refresh loop has exercised
		// the failure window and recovered (attempt 3 succeeds).
		deadline := time.Now().Add(30 * time.Second)
		for flaky.attempts.Load() < 3 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if flaky.attempts.Load() < 3 {
			t.Fatal("lease refresh never retried through the failure window")
		}
		close(release)

		st := await(t, c1, id)
		if st.State != coord.StateDone {
			t.Fatalf("job ended %s (%s), want done — a recovered refresh must keep the lease", st.State, st.Error)
		}
		if n := c1.Stats().UnitsComputed; n != 4 {
			t.Errorf("c1 computed %d units, want all 4 — no peer ever owned this job", n)
		}
		if s1.Has(leaseKey) {
			t.Error("lease entry leaked after the job finished")
		}
	})
}
