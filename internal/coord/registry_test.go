package coord

import (
	"testing"
	"time"
)

func TestRegistryLifecycle(t *testing.T) {
	r := NewRegistry()
	if got := r.Snapshot(); len(got) != 0 {
		t.Fatalf("empty registry Snapshot() = %v", got)
	}

	r.Register("b:2", time.Minute)
	r.Register("a:1", time.Minute)
	got := r.Snapshot()
	if len(got) != 2 || got[0] != "a:1" || got[1] != "b:2" {
		t.Fatalf("Snapshot() = %v, want sorted [a:1 b:2]", got)
	}

	r.Deregister("a:1")
	if got := r.Snapshot(); len(got) != 1 || got[0] != "b:2" {
		t.Fatalf("Snapshot() after deregister = %v, want [b:2]", got)
	}
}

func TestRegistryTTLExpiry(t *testing.T) {
	r := NewRegistry()
	// MinTTL clamps the requested TTL up to 1s, so expiry is tested
	// by rewinding the stored deadline instead of sleeping.
	r.Register("stale:1", time.Minute)
	r.Register("live:1", time.Minute)
	r.mu.Lock()
	r.members["stale:1"] = time.Now().Add(-time.Second)
	r.mu.Unlock()

	if got := r.Snapshot(); len(got) != 1 || got[0] != "live:1" {
		t.Fatalf("Snapshot() = %v, want the lapsed member dropped", got)
	}
	// The lapsed entry was reaped, not just filtered.
	r.mu.Lock()
	_, still := r.members["stale:1"]
	r.mu.Unlock()
	if still {
		t.Error("lapsed member still in the map after Snapshot")
	}

	// Re-registration revives it.
	r.Register("stale:1", time.Minute)
	if got := r.Snapshot(); len(got) != 2 {
		t.Fatalf("Snapshot() after re-register = %v, want 2 members", got)
	}
}

func TestRegistryTTLClamp(t *testing.T) {
	r := NewRegistry()
	now := time.Now()
	if deadline := r.Register("a:1", time.Millisecond); deadline.Before(now.Add(MinTTL / 2)) {
		t.Errorf("deadline %v not clamped up to MinTTL", deadline)
	}
	if deadline := r.Register("a:1", time.Hour); deadline.After(now.Add(MaxTTL + time.Minute)) {
		t.Errorf("deadline %v not clamped down to MaxTTL", deadline)
	}
	if deadline := r.Register("a:1", 0); deadline.Before(now.Add(DefaultTTL / 2)) {
		t.Errorf("deadline %v ignores DefaultTTL", deadline)
	}
	entries := r.Entries()
	if len(entries) != 1 || entries[0].Addr != "a:1" {
		t.Fatalf("Entries() = %+v", entries)
	}
}
