package coord

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// Paths of the job-resource API, shared with internal/service so
// client and server cannot drift.
const (
	JobsPath             = "/v1/jobs"
	BackendsPath         = "/v1/backends"
	BackendsRegisterPath = "/v1/backends/register"
)

// RegisterRequest is the POST /v1/backends/register body.
type RegisterRequest struct {
	// Addr is the worker's advertised address ("host:port" or URL).
	Addr string `json:"addr"`

	// TTLSeconds is the requested heartbeat TTL; 0 means DefaultTTL.
	TTLSeconds int `json:"ttl_seconds,omitempty"`
}

// doJSON issues one request and decodes the 200 response into out.
func doJSON(ctx context.Context, httpc *http.Client, method, url string, body, out any) error {
	if httpc == nil {
		httpc = http.DefaultClient
	}
	var rd io.Reader
	if body != nil {
		payload, err := json.Marshal(body)
		if err != nil {
			return fmt.Errorf("coord: encoding request: %w", err)
		}
		rd = bytes.NewReader(payload)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return fmt.Errorf("coord: %s: %w", url, err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if id := obs.RequestID(ctx); id != "" {
		req.Header.Set(obs.RequestIDHeader, id)
	}
	resp, err := httpc.Do(req)
	if err != nil {
		return fmt.Errorf("coord: %s: %w", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("coord: %s: reading response: %w", url, err)
	}
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusCreated {
		msg := strings.TrimSpace(string(data))
		if len(msg) > 200 {
			msg = msg[:200]
		}
		return fmt.Errorf("coord: %s: %s: %s", url, resp.Status, msg)
	}
	if out == nil {
		return nil
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("coord: %s: decoding response: %w", url, err)
	}
	return nil
}

// SubmitJob POSTs a job spec to a coordinator daemon and returns the
// job's status (201 for a new job, 200 for a known one).
func SubmitJob(ctx context.Context, httpc *http.Client, base string, spec JobSpec) (JobStatus, error) {
	var st JobStatus
	err := doJSON(ctx, httpc, http.MethodPost, baseURL(base)+JobsPath, spec, &st)
	return st, err
}

// FetchStatus GETs a job's status.
func FetchStatus(ctx context.Context, httpc *http.Client, base, id string) (JobStatus, error) {
	var st JobStatus
	err := doJSON(ctx, httpc, http.MethodGet, baseURL(base)+JobsPath+"/"+id, nil, &st)
	return st, err
}

// FetchResult GETs a done job's payload.
func FetchResult(ctx context.Context, httpc *http.Client, base, id string) (JobResult, error) {
	var res JobResult
	err := doJSON(ctx, httpc, http.MethodGet, baseURL(base)+JobsPath+"/"+id+"/result", nil, &res)
	return res, err
}

// AwaitJob polls a job's status every poll interval until it reaches
// a terminal state (or ctx ends), returning the final status.  poll
// <= 0 means 500ms.
func AwaitJob(ctx context.Context, httpc *http.Client, base, id string, poll time.Duration) (JobStatus, error) {
	if poll <= 0 {
		poll = 500 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	for {
		st, err := FetchStatus(ctx, httpc, base, id)
		if err != nil {
			return st, err
		}
		if TerminalState(st.State) {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return st, ctx.Err()
		}
	}
}

// SubmitAndWait is the submit-and-poll convenience the CLI tools use:
// submit a spec, await the job, and fetch its result.  A job that
// ends failed or canceled is an error quoting the job's Error.
func SubmitAndWait(ctx context.Context, httpc *http.Client, base string, spec JobSpec, poll time.Duration) (JobResult, error) {
	st, err := SubmitJob(ctx, httpc, base, spec)
	if err != nil {
		return JobResult{}, err
	}
	if st, err = AwaitJob(ctx, httpc, base, st.ID, poll); err != nil {
		return JobResult{}, err
	}
	if st.State != StateDone {
		return JobResult{}, fmt.Errorf("coord: job %s ended %s: %s", st.ID, st.State, st.Error)
	}
	return FetchResult(ctx, httpc, base, st.ID)
}

// RegisterBackend announces a worker to a coordinator daemon.
func RegisterBackend(ctx context.Context, httpc *http.Client, base, addr string, ttl time.Duration) error {
	if ttl > MaxTTL {
		ttl = MaxTTL // the registry clamps to this anyway
	}
	req := RegisterRequest{Addr: addr, TTLSeconds: int(ttl / time.Second)} //fxlint:allow truncation — clamped to MaxTTL seconds
	return doJSON(ctx, httpc, http.MethodPost, baseURL(base)+BackendsRegisterPath, req, nil)
}

// HeartbeatLoop re-registers addr with the coordinator at every
// interval until ctx ends — the worker side of TTL'd membership.  The
// TTL is three intervals, so one dropped heartbeat does not evict the
// worker.  Registration failures are retried at the same cadence (the
// coordinator may simply not be up yet).
func HeartbeatLoop(ctx context.Context, httpc *http.Client, base, addr string, interval time.Duration) {
	if interval <= 0 {
		interval = DefaultTTL / 3
	}
	ttl := 3 * interval
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		RegisterBackend(ctx, httpc, base, addr, ttl)
		select {
		case <-t.C:
		case <-ctx.Done():
			return
		}
	}
}
