package coord

import (
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/store"
)

// Store namespaces.  The unit namespaces are the per-unit result
// caches the service already writes (its POST /v1/run/* endpoints
// compute through them); they are defined here — the lowest layer
// that names them — so the coordinator's checkpoint writes and the
// service's unit cache are one and the same, which is what makes
// resume a replay of store hits.
const (
	// SessionUnitNamespace caches one campaign session per entry,
	// keyed by its core.StudyUnit.
	SessionUnitNamespace = "unit-session/v1"

	// SweepUnitNamespace caches one sweep point per entry, keyed by
	// its experiments.SweepUnit.
	SweepUnitNamespace = "unit-sweep/v1"

	// jobSpecNamespace derives job IDs from specs, making submission
	// idempotent: the same spec is the same job.
	jobSpecNamespace = "job-spec/v1"

	// jobNamespace stores job records (spec, state, unit ledger).
	jobNamespace = "job/v1"

	// jobLeaseNamespace stores job ownership leases, claimed with
	// store.Claim so two coordinators racing on one job lease it
	// exactly once.
	jobLeaseNamespace = "job-lease/v1"
)

// Job states.  queued and running jobs are resumable; done, failed
// and canceled are terminal.
const (
	StateQueued   = "queued"
	StateRunning  = "running"
	StateDone     = "done"
	StateFailed   = "failed"
	StateCanceled = "canceled"
)

// TerminalState reports whether a job in state will never change
// again.
func TerminalState(state string) bool {
	return state == StateDone || state == StateFailed || state == StateCanceled
}

// JobSpec describes one campaign as pure data: exactly one payload
// field matching Kind is set.  The spec is the job's identity — its
// canonical JSON hashes to the job ID — so submitting the same spec
// twice addresses the same job.
type JobSpec struct {
	// Kind is "study", "sweep" or "sessions".
	Kind string `json:"kind"`

	// Study is the campaign configuration for Kind "study".
	Study *core.StudyConfig `json:"study,omitempty"`

	// Sweep is the sweep configuration for Kind "sweep".
	Sweep *experiments.SweepConfig `json:"sweep,omitempty"`

	// Units are explicit session units for Kind "sessions" — the
	// submit-and-poll path of cmd/measure, which runs ad-hoc unit
	// lists that are not a named campaign.
	Units []core.StudyUnit `json:"units,omitempty"`

	// Workers bounds local compute when the coordinator executes
	// units in-process; 0 means one worker per CPU.
	Workers int `json:"workers,omitempty"`
}

// Validate rejects specs that name no work.
func (s JobSpec) Validate() error {
	switch s.Kind {
	case "study":
		if s.Study == nil {
			return errors.New("coord: study job without study config")
		}
		if s.Study.TotalSessions() <= 0 {
			return errors.New("coord: study config has no sessions")
		}
	case "sweep":
		if s.Sweep == nil {
			return errors.New("coord: sweep job without sweep config")
		}
		if experiments.DefaultSweepValues(s.Sweep.Kind) == nil {
			return fmt.Errorf("coord: unknown sweep kind %q", s.Sweep.Kind)
		}
		if len(s.Sweep.Values) == 0 {
			return errors.New("coord: sweep config has no values")
		}
	case "sessions":
		if len(s.Units) == 0 {
			return errors.New("coord: sessions job without units")
		}
	default:
		return fmt.Errorf("coord: unknown job kind %q (valid kinds: study, sweep, sessions)", s.Kind)
	}
	return nil
}

// JobID derives the job's identity from its spec: the first 16 hex
// digits of the spec's content address.  Deterministic, so submission
// is idempotent across processes and restarts.
func JobID(spec JobSpec) (string, error) {
	key, err := store.Key(jobSpecNamespace, spec)
	if err != nil {
		return "", err
	}
	return key[:16], nil
}

// JobRecord is the persisted form of a job: what a restarted
// coordinator needs to resume it.  The record does not carry unit
// results — those live in the per-unit cache entries named by
// UnitKeys — so the record stays small and checkpointing it is one
// O(units) write of keys, not payloads.
type JobRecord struct {
	ID    string  `json:"id"`
	Spec  JobSpec `json:"spec"`
	State string  `json:"state"`

	// Done / Total are unit completion counts as of the last
	// checkpoint; the unit cache is the source of truth on resume.
	Done  int `json:"done"`
	Total int `json:"total"`

	// UnitKeys are the per-unit completion keys, in unit order: entry
	// i of the campaign is complete exactly when the store holds
	// UnitKeys[i].
	UnitKeys []string `json:"unit_keys"`

	// Error holds the failure reason of a failed job.
	Error string `json:"error,omitempty"`

	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
}

// JobStatus is the client-facing view of a job — what GET
// /v1/jobs/{id} returns.
type JobStatus struct {
	ID      string    `json:"id"`
	Kind    string    `json:"kind"`
	State   string    `json:"state"`
	Done    int       `json:"done"`
	Total   int       `json:"total"`
	Steals  uint64    `json:"steals,omitempty"`
	Summary string    `json:"summary,omitempty"`
	Error   string    `json:"error,omitempty"`
	Created time.Time `json:"created"`
	Updated time.Time `json:"updated"`
}

// JobResult is a finished job's payload: the field matching the
// spec's Kind is set.
type JobResult struct {
	Study    *core.Study              `json:"study,omitempty"`
	Points   []experiments.SweepPoint `json:"points,omitempty"`
	Sessions []core.StudyUnitResult   `json:"sessions,omitempty"`
}

// specUnits expands a spec into its session or sweep units and their
// per-unit completion keys, in canonical unit order.  Exactly one of
// the returned slices is non-nil.
func specUnits(spec JobSpec) (study []core.StudyUnit, sweep []experiments.SweepUnit, keys []string, err error) {
	switch spec.Kind {
	case "study":
		study = spec.Study.Units()
	case "sessions":
		study = spec.Units
	case "sweep":
		sweep = spec.Sweep.Units()
	}
	if study != nil {
		keys = make([]string, len(study))
		for i, u := range study {
			if keys[i], err = store.Key(SessionUnitNamespace, u); err != nil {
				return nil, nil, nil, err
			}
		}
		return study, nil, keys, nil
	}
	keys = make([]string, len(sweep))
	for i, u := range sweep {
		if keys[i], err = store.Key(SweepUnitNamespace, u); err != nil {
			return nil, nil, nil, err
		}
	}
	return nil, sweep, keys, nil
}

// recordKey returns the store key of a job's record.
func recordKey(id string) (string, error) {
	return store.Key(jobNamespace, id)
}

// LeaseKey returns the store key of a job's ownership lease.  It is
// exported for tests that assert lease hygiene — a finished or
// cleanly-lost job must leave no lease entry behind — and for fault
// injectors that target lease writes specifically.
func LeaseKey(id string) (string, error) {
	return store.Key(jobLeaseNamespace, id)
}

// indexKey returns the store key of the job index — the ID list
// behind GET /v1/jobs.
func indexKey() (string, error) {
	return store.Key(jobNamespace, "index")
}

// leaseRecord is a job lease's payload: who owns the job and until
// when.  An expired lease is taken over, so a coordinator that died
// without releasing does not wedge its jobs forever.
type leaseRecord struct {
	Owner   string    `json:"owner"`
	Expires time.Time `json:"expires"`
}
