package coord_test

import (
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/store"
)

// awaitB polls a job to a terminal state for benchmarks.
func awaitB(b *testing.B, c *coord.Coordinator, id string) {
	b.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err == nil && st.State == coord.StateDone {
			return
		}
		if err == nil && coord.TerminalState(st.State) {
			b.Fatalf("job ended %s: %s", st.State, st.Error)
		}
		time.Sleep(time.Millisecond)
	}
	b.Fatalf("job %s did not finish", id)
}

// BenchmarkJobCold measures a campaign job executed from nothing: a
// fresh store per iteration, every unit computed.
func BenchmarkJobCold(b *testing.B) {
	spec := coord.JobSpec{Kind: "sessions", Units: sessionUnits(4)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		s, err := store.Open(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		c := coord.New(coord.Config{Store: s})
		b.StartTimer()

		st, _, err := c.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		awaitB(b, c, st.ID)

		b.StopTimer()
		c.Close()
		b.StartTimer()
	}
}

// BenchmarkJobResume measures the same campaign resumed against a
// pre-warmed unit cache: the job record is dropped, so the job
// restarts, but every unit replays as a store hit — the pure
// coordinator + checkpoint-replay overhead benchdiff gates.
func BenchmarkJobResume(b *testing.B) {
	spec := coord.JobSpec{Kind: "sessions", Units: sessionUnits(4)}
	dir := b.TempDir()
	s, err := store.Open(dir)
	if err != nil {
		b.Fatal(err)
	}
	warm := coord.New(coord.Config{Store: s})
	st, _, err := warm.Submit(spec)
	if err != nil {
		b.Fatal(err)
	}
	awaitB(b, warm, st.ID)
	warm.Close()
	recKey, err := store.Key("job/v1", st.ID)
	if err != nil {
		b.Fatal(err)
	}

	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Dropping the record makes the next Submit restart the job;
		// the unit entries stay, so the run is a pure replay.
		if err := s.Delete(recKey); err != nil {
			b.Fatal(err)
		}
		c := coord.New(coord.Config{Store: s})
		b.StartTimer()

		st, _, err := c.Submit(spec)
		if err != nil {
			b.Fatal(err)
		}
		awaitB(b, c, st.ID)

		b.StopTimer()
		if got := c.Stats(); got.UnitsComputed != 0 {
			b.Fatalf("resume iteration computed %d units; want pure replay", got.UnitsComputed)
		}
		c.Close()
		b.StartTimer()
	}
}
