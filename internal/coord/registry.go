package coord

import (
	"sort"
	"sync"
	"time"
)

// Heartbeat TTL bounds: a worker that stops heartbeating is dropped
// from Snapshot once its TTL lapses, so the clamp keeps one stuck
// client from registering itself immortal (or flapping every
// millisecond).
const (
	DefaultTTL = 30 * time.Second
	MinTTL     = time.Second
	MaxTTL     = 10 * time.Minute
)

// Member is one registered backend and its heartbeat deadline.
type Member struct {
	Addr    string    `json:"addr"`
	Expires time.Time `json:"expires"`
}

// Registry tracks dynamic fleet membership: backends announce
// themselves with POST /v1/backends/register and keep their entry
// alive by re-registering before the TTL lapses.  Snapshot returns
// the live members sorted by address, which makes Registry a
// remote.BackendSource — clients and the coordinator's dispatch loop
// follow joins and leaves without reconstruction.  A lapsed member is
// dropped lazily on the next read; there is no reaper goroutine.
type Registry struct {
	mu      sync.Mutex
	members map[string]time.Time // addr -> heartbeat deadline
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{members: make(map[string]time.Time)}
}

// Register records a heartbeat for addr, returning the entry's new
// deadline.  ttl <= 0 means DefaultTTL; out-of-range TTLs are clamped
// to [MinTTL, MaxTTL].
func (r *Registry) Register(addr string, ttl time.Duration) time.Time {
	if ttl <= 0 {
		ttl = DefaultTTL
	}
	if ttl < MinTTL {
		ttl = MinTTL
	}
	if ttl > MaxTTL {
		ttl = MaxTTL
	}
	deadline := time.Now().Add(ttl)
	r.mu.Lock()
	r.members[addr] = deadline
	r.mu.Unlock()
	return deadline
}

// Deregister drops addr immediately (a worker shutting down cleanly
// need not wait out its TTL).
func (r *Registry) Deregister(addr string) {
	r.mu.Lock()
	delete(r.members, addr)
	r.mu.Unlock()
}

// Snapshot returns the live member addresses, sorted, dropping lapsed
// entries as a side effect.  It implements remote.BackendSource.
func (r *Registry) Snapshot() []string {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []string
	for addr, deadline := range r.members {
		if now.After(deadline) {
			delete(r.members, addr)
			continue
		}
		out = append(out, addr)
	}
	sort.Strings(out)
	return out
}

// Entries returns the live members with their deadlines, sorted by
// address — the GET /v1/backends listing.
func (r *Registry) Entries() []Member {
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Member
	for addr, deadline := range r.members {
		if now.After(deadline) {
			delete(r.members, addr)
			continue
		}
		out = append(out, Member{Addr: addr, Expires: deadline})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}
