// Package coord is the fleet campaign coordinator: it turns
// campaigns into persistent, resumable job resources.
//
// A job is identified by its spec — the canonical JSON of a JobSpec
// hashes to the job ID — and is persisted as a JobRecord in the
// campaign store under the job/v1 namespace: spec, state machine
// (queued → running → done/failed/canceled), progress counts, and the
// per-unit completion keys of its unit ledger.  Unit results
// themselves ride the existing content-addressed unit caches
// (SessionUnitNamespace, SweepUnitNamespace), the same entries fx8d's
// POST /v1/run/* endpoints write; the checkpoint is therefore nothing
// more than the cache filling up, and resuming a half-finished
// campaign — after a coordinator restart, a daemon crash, a kill
// -9 — is a replay of store hits: only units whose entries are absent
// are recomputed.
//
// Execution pulls, it does not push.  A job's pending units go into
// an engine.Ledger with one deque per live backend (fleet membership
// comes from a Registry fed by POST /v1/backends/register
// heartbeats); per-backend workers lease units, POST them to their
// backend, and — when their own deque runs dry — steal from the back
// of the slowest peer's deque, so one degraded node cannot tail-block
// a campaign.  A backend that keeps failing is abandoned and its
// remaining units are stolen or drained locally; with no backends at
// all the coordinator computes in-process.  Either way the assembled
// result is byte-identical to local execution, because units are pure
// functions of their spec and assembly reduces them in canonical unit
// order.
//
// Exactly-once across coordinators is a store lease: before running a
// job, a coordinator claims the job's lease key with store.Claim
// (O_EXCL semantics), so two coordinators racing on the same job ID
// lease it exactly once; the loser tracks the job read-through from
// the store.  Leases carry a TTL and are refreshed while the job
// runs — an expired lease is taken over, so a coordinator that died
// without releasing does not wedge its jobs.
//
// Close stops execution but deliberately leaves running jobs' records
// in state running with their leases released: that is the resumable
// state ResumeInterrupted looks for at the next startup.
package coord

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/retry"
	"repro/internal/store"
)

// Defaults for Config's zero fields.
const (
	DefaultPerBackend  = 4
	DefaultMaxFailures = 3
	DefaultLeaseTTL    = 30 * time.Second
)

// checkpointEvery throttles mid-run record persists: completions
// within this window coalesce into one write, and the final
// completion always checkpoints.
const checkpointEvery = 200 * time.Millisecond

// localOwner is the ledger owner name for in-process compute.
const localOwner = "local"

// Sentinel errors, mapped to HTTP statuses by the service layer.
var (
	// ErrNotFound: no job under that ID.
	ErrNotFound = errors.New("coord: job not found")

	// ErrTerminal: the operation needs a live job but the job already
	// finished (cancelling a done job).
	ErrTerminal = errors.New("coord: job already terminal")

	// ErrNotDone: the job's result was requested before it finished.
	ErrNotDone = errors.New("coord: job not done")
)

// Config sizes a Coordinator.
type Config struct {
	// Store persists job records, leases and unit results.  nil runs
	// memory-only: jobs work but nothing survives a restart and no
	// cross-coordinator exclusion happens.
	Store *store.Store

	// Registry supplies fleet membership.  nil (or an empty registry)
	// computes every unit in-process.
	Registry *Registry

	// Workers bounds in-process compute (local jobs and the drain of
	// units no backend could run); 0 means one worker per CPU.
	Workers int

	// PerBackend is how many units are kept in flight per live
	// backend; 0 means DefaultPerBackend, matching fx8d's default
	// admission budget.
	PerBackend int

	// MaxFailures is how many consecutive unit failures make a
	// dispatch worker abandon its backend for the rest of the job;
	// 0 means DefaultMaxFailures.
	MaxFailures int

	// LeaseTTL is the job-ownership lease duration; the lease is
	// refreshed at a third of this. 0 means DefaultLeaseTTL.
	LeaseTTL time.Duration

	// UnitTimeout bounds one unit POST to one backend; 0 means
	// remote.DefaultUnitTimeout.
	UnitTimeout time.Duration

	// Retry is the retry/backoff policy for dispatch failures and
	// lease refreshes: a dispatch worker whose unit POST failed backs
	// off under it before retrying (honoring a shedding backend's
	// Retry-After), and lease refreshes that hit a briefly-unwritable
	// store are retried under it instead of silently dropped.  The
	// zero value means the retry package defaults; its Metrics field
	// is resolved to the coordinator's own (see RetryStats).
	Retry retry.Policy

	// HTTPClient overrides the dispatch transport (tests).
	HTTPClient *http.Client
}

// Stats counts a coordinator's unit outcomes since New.
type Stats struct {
	// UnitsComputed were executed (remotely or locally) by this
	// coordinator's jobs.
	UnitsComputed uint64

	// UnitsReplayed were satisfied from the store's unit cache —
	// checkpoint hits, the currency of resume.
	UnitsReplayed uint64

	// UnitsStolen were leased from another owner's pending deque.
	UnitsStolen uint64

	// JobsResumed counts jobs restarted from a persisted record.
	JobsResumed uint64
}

// job is one locally-tracked job: its record, live counters, and —
// when this coordinator owns the lease — its execution state.
type job struct {
	mu        sync.Mutex
	rec       JobRecord
	steals    uint64
	lastCkpt  time.Time
	userStop  bool // Cancel() was called, as opposed to Close()
	leaseLost bool // ownership moved to a peer mid-run
	owned     bool
	cancel    context.CancelFunc
	done      chan struct{} // closed when the run goroutine returns
	result    *JobResult    // in-memory result tier (nil-store coordinators)
}

func (j *job) status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	return statusFrom(j.rec, j.steals)
}

func statusFrom(rec JobRecord, steals uint64) JobStatus {
	s := JobStatus{
		ID:      rec.ID,
		Kind:    rec.Spec.Kind,
		State:   rec.State,
		Done:    rec.Done,
		Total:   rec.Total,
		Steals:  steals,
		Error:   rec.Error,
		Created: rec.Created,
		Updated: rec.Updated,
	}
	s.Summary = fmt.Sprintf("%d/%d units complete", s.Done, s.Total)
	if steals > 0 {
		s.Summary += fmt.Sprintf(" (%d stolen)", steals)
	}
	return s
}

// Coordinator runs and tracks campaign jobs.  All methods are safe
// for concurrent use.
type Coordinator struct {
	cfg      Config
	httpc    *http.Client
	owner    string         // lease identity of this coordinator
	retry    retry.Policy   // resolved dispatch/lease retry policy
	rmetrics *retry.Metrics // retry outcome counters, see RetryStats

	ctx    context.Context
	cancel context.CancelFunc
	wg     sync.WaitGroup
	closed atomic.Bool

	mu   sync.Mutex
	jobs map[string]*job

	computed, replayed, stolen, resumed atomic.Uint64
}

// New returns a Coordinator.  Call ResumeInterrupted after New to
// pick up jobs a previous process left half-finished, and Close on
// shutdown.
func New(cfg Config) *Coordinator {
	if cfg.PerBackend <= 0 {
		cfg.PerBackend = DefaultPerBackend
	}
	if cfg.MaxFailures <= 0 {
		cfg.MaxFailures = DefaultMaxFailures
	}
	if cfg.LeaseTTL <= 0 {
		cfg.LeaseTTL = DefaultLeaseTTL
	}
	if cfg.UnitTimeout <= 0 {
		cfg.UnitTimeout = remote.DefaultUnitTimeout
	}
	if cfg.Registry == nil {
		cfg.Registry = NewRegistry()
	}
	c := &Coordinator{
		cfg:   cfg,
		httpc: cfg.HTTPClient,
		owner: obs.NewRequestID(),
		jobs:  make(map[string]*job),
	}
	if c.httpc == nil {
		c.httpc = &http.Client{}
	}
	c.retry = cfg.Retry
	c.rmetrics = c.retry.Metrics
	if c.rmetrics == nil {
		c.rmetrics = &retry.Metrics{}
		c.retry.Metrics = c.rmetrics
	}
	c.ctx, c.cancel = context.WithCancel(context.Background())
	return c
}

// Registry returns the coordinator's fleet registry — the one POST
// /v1/backends/register must feed for this coordinator to dispatch.
func (c *Coordinator) Registry() *Registry {
	return c.cfg.Registry
}

// Stats returns a snapshot of the coordinator's unit outcomes.
func (c *Coordinator) Stats() Stats {
	return Stats{
		UnitsComputed: c.computed.Load(),
		UnitsReplayed: c.replayed.Load(),
		UnitsStolen:   c.stolen.Load(),
		JobsResumed:   c.resumed.Load(),
	}
}

// RetryStats snapshots the coordinator's retry-policy outcomes —
// dispatch retries, backoff waits, give-ups — which the service
// surfaces in /v1/metrics.
func (c *Coordinator) RetryStats() retry.Snapshot {
	return c.rmetrics.Snapshot()
}

// Submit registers the job for spec and starts it if this coordinator
// wins its lease.  Submission is idempotent: the same spec addresses
// the same job, so created reports whether the job is new (the
// service's 201 vs 200).  A resubmitted spec whose job already
// finished returns the terminal status without recomputing anything.
func (c *Coordinator) Submit(spec JobSpec) (JobStatus, bool, error) {
	if err := spec.Validate(); err != nil {
		return JobStatus{}, false, err
	}
	id, err := JobID(spec)
	if err != nil {
		return JobStatus{}, false, err
	}
	_, _, keys, err := specUnits(spec)
	if err != nil {
		return JobStatus{}, false, err
	}

	c.mu.Lock()
	if j, ok := c.jobs[id]; ok {
		c.mu.Unlock()
		return j.status(), false, nil
	}
	c.mu.Unlock()

	created := true
	rec, found := c.loadRecord(id)
	if found {
		created = false
		if TerminalState(rec.State) {
			j := c.track(rec, false)
			return j.status(), false, nil
		}
	} else {
		now := time.Now()
		rec = JobRecord{
			ID: id, Spec: spec, State: StateQueued,
			Total: len(keys), UnitKeys: keys,
			Created: now, Updated: now,
		}
	}

	won, err := c.acquireLease(id)
	if err != nil {
		return JobStatus{}, false, err
	}
	j := c.track(rec, won)
	if !won {
		// Another coordinator owns it; Status reads through the store.
		return j.status(), created, nil
	}
	if found {
		// A persisted, non-terminal record whose lease we won: this
		// submission restarts an interrupted job.
		c.resumed.Add(1)
	}
	c.persist(j)
	c.addToIndex(id)
	c.start(j)
	return j.status(), created, nil
}

// track registers a job locally, resolving the race where two Submits
// (or a Submit and a resume) track the same ID: the first one in
// wins and the other's entry is discarded.
func (c *Coordinator) track(rec JobRecord, owned bool) *job {
	c.mu.Lock()
	defer c.mu.Unlock()
	if j, ok := c.jobs[rec.ID]; ok {
		return j
	}
	j := &job{rec: rec, owned: owned, done: make(chan struct{})}
	if !owned {
		close(j.done)
	}
	c.jobs[rec.ID] = j
	return j
}

// Status returns a job's current state: live for jobs this
// coordinator runs, read through the store for jobs owned elsewhere.
func (c *Coordinator) Status(id string) (JobStatus, error) {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	if j != nil {
		j.mu.Lock()
		owned := j.owned
		j.mu.Unlock()
		if owned || c.cfg.Store == nil {
			return j.status(), nil
		}
	}
	if rec, ok := c.loadRecord(id); ok {
		return statusFrom(rec, 0), nil
	}
	if j != nil {
		return j.status(), nil
	}
	return JobStatus{}, ErrNotFound
}

// List returns every known job — local ones and those recorded in the
// store's job index — sorted by creation time, then ID.
func (c *Coordinator) List() []JobStatus {
	byID := make(map[string]JobStatus)
	if ids, ok := c.loadIndex(); ok {
		for _, id := range ids {
			if rec, ok := c.loadRecord(id); ok {
				byID[id] = statusFrom(rec, 0)
			}
		}
	}
	c.mu.Lock()
	locals := make([]*job, 0, len(c.jobs))
	for _, j := range c.jobs {
		locals = append(locals, j)
	}
	c.mu.Unlock()
	for _, j := range locals {
		s := j.status()
		j.mu.Lock()
		owned := j.owned
		j.mu.Unlock()
		if _, ok := byID[s.ID]; !ok || owned || c.cfg.Store == nil {
			byID[s.ID] = s
		}
	}
	out := make([]JobStatus, 0, len(byID))
	for _, s := range byID {
		out = append(out, s)
	}
	sort.Slice(out, func(i, k int) bool {
		if !out[i].Created.Equal(out[k].Created) {
			return out[i].Created.Before(out[k].Created)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Cancel stops a job.  Cancelling a job this coordinator runs aborts
// its in-flight units (their leases release back to the ledger, which
// is already canceled — no orphans) and persists state canceled; a
// job recorded elsewhere is marked canceled best-effort.  Cancelling
// a terminal job reports ErrTerminal.
func (c *Coordinator) Cancel(id string) (JobStatus, error) {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	if j != nil {
		j.mu.Lock()
		if TerminalState(j.rec.State) {
			j.mu.Unlock()
			return j.status(), ErrTerminal
		}
		if j.owned {
			j.userStop = true
			cancel := j.cancel
			j.mu.Unlock()
			if cancel != nil {
				cancel()
			}
			<-j.done
			return j.status(), nil
		}
		j.mu.Unlock()
	}
	rec, ok := c.loadRecord(id)
	if !ok {
		return JobStatus{}, ErrNotFound
	}
	if TerminalState(rec.State) {
		return statusFrom(rec, 0), ErrTerminal
	}
	rec.State = StateCanceled
	rec.Updated = time.Now()
	if key, err := recordKey(id); err == nil {
		store.PutJSON(c.cfg.Store, key, rec)
	}
	return statusFrom(rec, 0), nil
}

// Result returns a done job's payload: from memory when this
// coordinator assembled it, otherwise re-read from the store's
// content-addressed artefacts (the study under its study key, sweep
// points under their sweep key, session units from the unit cache).
func (c *Coordinator) Result(id string) (*JobResult, error) {
	c.mu.Lock()
	j := c.jobs[id]
	c.mu.Unlock()
	var rec JobRecord
	if j != nil {
		j.mu.Lock()
		rec = j.rec
		res := j.result
		j.mu.Unlock()
		if res != nil {
			return res, nil
		}
	}
	if j == nil {
		var ok bool
		if rec, ok = c.loadRecord(id); !ok {
			return nil, ErrNotFound
		}
	}
	if rec.State != StateDone {
		return nil, fmt.Errorf("%w: job %s is %s", ErrNotDone, id, rec.State)
	}
	return c.loadResult(rec)
}

// loadResult reassembles a done job's payload from the store.
func (c *Coordinator) loadResult(rec JobRecord) (*JobResult, error) {
	switch rec.Spec.Kind {
	case "study":
		key, err := core.StudyKey(*rec.Spec.Study)
		if err != nil {
			return nil, err
		}
		if c.cfg.Store != nil {
			if data, ok := c.cfg.Store.Get(key); ok {
				st, err := core.DecodeStudy(data)
				if err != nil {
					return nil, err
				}
				return &JobResult{Study: st}, nil
			}
		}
		return nil, fmt.Errorf("coord: study artefact for job %s not in store", rec.ID)
	case "sweep":
		key, err := experiments.SweepKey(*rec.Spec.Sweep)
		if err != nil {
			return nil, err
		}
		var pts []experiments.SweepPoint
		if !store.GetJSON(c.cfg.Store, key, &pts) {
			return nil, fmt.Errorf("coord: sweep artefact for job %s not in store", rec.ID)
		}
		return &JobResult{Points: pts}, nil
	case "sessions":
		out := make([]core.StudyUnitResult, len(rec.UnitKeys))
		for i, key := range rec.UnitKeys {
			if !store.GetJSON(c.cfg.Store, key, &out[i]) {
				return nil, fmt.Errorf("coord: unit %d of job %s not in store", i, rec.ID)
			}
		}
		return &JobResult{Sessions: out}, nil
	}
	return nil, fmt.Errorf("coord: unknown job kind %q", rec.Spec.Kind)
}

// ResumeInterrupted scans the job index for records left queued or
// running — a previous coordinator died or was closed mid-campaign —
// and restarts every one whose lease it can claim.  Thanks to the
// unit-cache checkpoint, a resumed job recomputes only units without
// store entries.  Returns how many jobs this coordinator resumed.
func (c *Coordinator) ResumeInterrupted() int {
	ids, ok := c.loadIndex()
	if !ok {
		return 0
	}
	n := 0
	for _, id := range ids {
		c.mu.Lock()
		_, known := c.jobs[id]
		c.mu.Unlock()
		if known {
			continue
		}
		rec, ok := c.loadRecord(id)
		if !ok || TerminalState(rec.State) {
			continue
		}
		won, err := c.acquireLease(id)
		if err != nil || !won {
			continue
		}
		j := c.track(rec, true)
		c.start(j)
		c.resumed.Add(1)
		n++
	}
	return n
}

// Close stops the coordinator: every running job's context is
// canceled, in-flight units release their leases, and each job's
// record is left in state running with its store lease released — the
// resumable state, not a terminal one, so a successor (or a restarted
// process calling ResumeInterrupted) picks the campaign back up from
// its completed-unit set.
func (c *Coordinator) Close() {
	if c.closed.Swap(true) {
		return
	}
	c.cancel()
	c.wg.Wait()
}

// start launches a job's run goroutine.
func (c *Coordinator) start(j *job) {
	ctx, cancel := context.WithCancel(c.ctx)
	j.mu.Lock()
	j.cancel = cancel
	j.mu.Unlock()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		defer cancel()
		c.run(ctx, j)
	}()
}

// run executes a job to a terminal state — or, on coordinator
// shutdown, leaves it resumable.
func (c *Coordinator) run(ctx context.Context, j *job) {
	defer close(j.done)
	stopBeat := c.keepLease(ctx, j)
	defer stopBeat()

	j.mu.Lock()
	j.rec.State = StateRunning
	j.mu.Unlock()
	c.persist(j)

	res, err := c.execute(ctx, j)

	j.mu.Lock()
	lost := j.leaseLost
	switch {
	case err == nil:
		j.rec.State = StateDone
		j.rec.Done = j.rec.Total
		j.result = res
	case j.userStop:
		j.rec.State = StateCanceled
		j.rec.Error = "canceled"
	case ctx.Err() != nil && errors.Is(err, ctx.Err()):
		// Coordinator shutdown (Close) or a lost lease, not a failure:
		// leave the record in state running — the resumable state —
		// with the Done count advanced to the last completion.
	default:
		j.rec.State = StateFailed
		j.rec.Error = err.Error()
	}
	j.mu.Unlock()

	if lost && err != nil {
		// Ownership moved to a peer mid-run: the record and the lease
		// are the new owner's now.  Persisting would clobber the
		// peer's progress, and releaseLease would race its lease —
		// this coordinator just walks away.  (A completed result is
		// still booked above: the units were finished before the loss
		// surfaced, and persist is last-writer-wins on identical
		// content-addressed unit entries either way.)
		return
	}
	c.persist(j)
	c.releaseLease(j.rec.ID)
}

// execute runs a job's units and assembles its result.
func (c *Coordinator) execute(ctx context.Context, j *job) (*JobResult, error) {
	j.mu.Lock()
	spec := j.rec.Spec
	j.mu.Unlock()
	study, sweep, keys, err := specUnits(spec)
	if err != nil {
		return nil, err
	}
	if study != nil {
		results, err := runUnits(ctx, c, j, study, keys, remote.SessionPath, core.RunStudyUnit)
		if err != nil {
			return nil, err
		}
		if spec.Kind == "sessions" {
			return &JobResult{Sessions: results}, nil
		}
		st, err := assembleStudy(ctx, *spec.Study, study, results)
		if err != nil {
			return nil, err
		}
		data, err := core.EncodeStudy(st)
		if err != nil {
			return nil, err
		}
		key, err := core.StudyKey(*spec.Study)
		if err != nil {
			return nil, err
		}
		if c.cfg.Store != nil {
			c.cfg.Store.Put(key, data)
		}
		return &JobResult{Study: st}, nil
	}
	results, err := runUnits(ctx, c, j, sweep, keys, remote.SweepPath, experiments.RunSweepUnit)
	if err != nil {
		return nil, err
	}
	key, err := experiments.SweepKey(*spec.Sweep)
	if err != nil {
		return nil, err
	}
	store.PutJSON(c.cfg.Store, key, results)
	return &JobResult{Points: results}, nil
}

// assembleStudy reduces unit results into the full Study through
// core.RunStudyRunner with a pure-replay runner, so the reduction —
// and therefore the bytes — are exactly those of local execution.
func assembleStudy(ctx context.Context, cfg core.StudyConfig, units []core.StudyUnit, results []core.StudyUnitResult) (*core.Study, error) {
	byUnit := make(map[string]core.StudyUnitResult, len(units))
	for i, u := range units {
		b, err := json.Marshal(u)
		if err != nil {
			return nil, err
		}
		byUnit[string(b)] = results[i]
	}
	replay := engine.Local[core.StudyUnit, core.StudyUnitResult]{
		Fn: func(u core.StudyUnit) (core.StudyUnitResult, error) {
			b, err := json.Marshal(u)
			if err != nil {
				return core.StudyUnitResult{}, err
			}
			res, ok := byUnit[string(b)]
			if !ok {
				return core.StudyUnitResult{}, fmt.Errorf("coord: no result for unit %s", b)
			}
			return res, nil
		},
	}
	return core.RunStudyRunner(ctx, cfg, 1, replay, nil)
}

// runUnits is the dispatch loop: replay completed units from the
// store, push the rest into a per-backend ledger, and drain it with
// pulling workers — per-backend ones first, a local pool for whatever
// the fleet could not serve.
func runUnits[U, R any](ctx context.Context, c *Coordinator, j *job, units []U, keys []string, path string, local func(U) (R, error)) ([]R, error) {
	results := make([]R, len(units))
	var pending []int
	for i := range units {
		if store.GetJSON(c.cfg.Store, keys[i], &results[i]) {
			c.replayed.Add(1)
			continue
		}
		pending = append(pending, i)
	}
	j.mu.Lock()
	j.rec.Done = len(units) - len(pending)
	j.mu.Unlock()
	c.persist(j)
	if len(pending) == 0 {
		return results, ctx.Err()
	}

	var backends []string
	if c.cfg.Registry != nil {
		backends = c.cfg.Registry.Snapshot()
	}
	owners := backends
	if len(owners) == 0 {
		owners = []string{localOwner}
	}
	led := engine.NewLedger[int](owners...)
	for k, idx := range pending {
		// Contiguous shares: owner k gets the k-th slice of pending
		// units, so steals (from the back) take the victim's most
		// distant work first.
		led.Add(owners[k*len(owners)/len(pending)], idx)
	}
	go func() {
		<-ctx.Done()
		led.Cancel()
	}()

	var failMu sync.Mutex
	var failErr error
	fail := func(err error) {
		failMu.Lock()
		if failErr == nil {
			failErr = err
		}
		failMu.Unlock()
		led.Cancel()
	}

	completeUnit := func(ls engine.Lease[int], res R) {
		idx := ls.Item
		results[idx] = res
		store.PutJSON(c.cfg.Store, keys[idx], res)
		led.Complete(ls)
		c.computed.Add(1)
		if ls.Stolen {
			c.stolen.Add(1)
		}
		j.mu.Lock()
		j.rec.Done++
		if ls.Stolen {
			j.steals++
		}
		final := j.rec.Done == j.rec.Total
		due := final || time.Since(j.lastCkpt) >= checkpointEvery
		if due {
			j.lastCkpt = time.Now()
		}
		j.mu.Unlock()
		if due {
			c.persist(j)
		}
	}

	var wg sync.WaitGroup
	for _, addr := range backends {
		base := baseURL(addr)
		for w := 0; w < c.cfg.PerBackend; w++ {
			wg.Add(1)
			go func(owner, base string) {
				defer wg.Done()
				failures := 0
				for {
					ls, ok := led.Lease(owner)
					if !ok {
						return
					}
					if ctx.Err() != nil {
						led.Release(ls)
						return
					}
					c.rmetrics.Attempts.Inc()
					res, err := remote.PostUnit[U, R](ctx, c.httpc, base+path, units[ls.Item], c.cfg.UnitTimeout)
					if err != nil {
						led.Release(ls)
						failures++
						if ctx.Err() != nil || failures >= c.cfg.MaxFailures {
							// Abandon this backend: its remaining
							// units are stolen by peers or drained
							// locally below.
							c.rmetrics.GiveUps.Inc()
							return
						}
						// Back off under the retry policy before the
						// next lease — honoring the backend's
						// Retry-After when it shed — instead of
						// hammering a struggling node.
						hint, _ := retry.AfterHint(err)
						c.rmetrics.Retries.Inc()
						if c.retry.Wait(ctx, failures, hint) != nil {
							c.rmetrics.GiveUps.Inc()
							return
						}
						continue
					}
					failures = 0
					completeUnit(ls, res)
				}
			}(addr, base)
		}
	}
	wg.Wait()

	// Local drain: the whole job when no backends exist, the
	// leftovers when the fleet degraded mid-run.  This pool is what
	// guarantees a job always finishes.
	workers := c.cfg.Workers
	if wn := j.specWorkers(); wn > 0 {
		workers = wn
	}
	if workers <= 0 {
		workers = engine.DefaultWorkers()
	}
	var lwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lwg.Add(1)
		go func() {
			defer lwg.Done()
			for {
				ls, ok := led.Lease(localOwner)
				if !ok {
					return
				}
				if ctx.Err() != nil {
					led.Release(ls)
					return
				}
				res, err := local(units[ls.Item])
				if err != nil {
					led.Release(ls)
					fail(err)
					return
				}
				completeUnit(ls, res)
			}
		}()
	}
	lwg.Wait()

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	failMu.Lock()
	err := failErr
	failMu.Unlock()
	if err != nil {
		return nil, err
	}
	return results, nil
}

// specWorkers reads the job spec's worker bound.
func (j *job) specWorkers() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.rec.Spec.Workers
}

// baseURL normalizes a backend address to a URL prefix, the same way
// the remote client does.
func baseURL(addr string) string {
	url := addr
	if !strings.Contains(url, "://") {
		url = "http://" + url
	}
	return strings.TrimRight(url, "/")
}

// --- persistence helpers ---

// persist writes a job's record to the store (no-op without one).
func (c *Coordinator) persist(j *job) {
	if c.cfg.Store == nil {
		return
	}
	j.mu.Lock()
	j.rec.Updated = time.Now()
	rec := j.rec
	j.mu.Unlock()
	if key, err := recordKey(rec.ID); err == nil {
		store.PutJSON(c.cfg.Store, key, rec)
	}
}

// loadRecord reads a job record; a corrupt or truncated record reads
// as a miss (the store removes it), so a damaged job simply restarts
// from its unit cache.
func (c *Coordinator) loadRecord(id string) (JobRecord, bool) {
	if c.cfg.Store == nil {
		return JobRecord{}, false
	}
	key, err := recordKey(id)
	if err != nil {
		return JobRecord{}, false
	}
	var rec JobRecord
	if !store.GetJSON(c.cfg.Store, key, &rec) {
		return JobRecord{}, false
	}
	if rec.ID != id {
		return JobRecord{}, false
	}
	return rec, true
}

// loadIndex reads the job-ID index.
func (c *Coordinator) loadIndex() ([]string, bool) {
	if c.cfg.Store == nil {
		return nil, false
	}
	key, err := indexKey()
	if err != nil {
		return nil, false
	}
	var ids []string
	if !store.GetJSON(c.cfg.Store, key, &ids) {
		return nil, false
	}
	return ids, true
}

// addToIndex merges id into the job index.  Two coordinators updating
// concurrently can lose one ID from the listing (last writer wins);
// records and leases are untouched, so this only narrows GET /v1/jobs
// until the next submit — an accepted cost of keeping the index a
// plain entry.
func (c *Coordinator) addToIndex(id string) {
	if c.cfg.Store == nil {
		return
	}
	key, err := indexKey()
	if err != nil {
		return
	}
	var ids []string
	store.GetJSON(c.cfg.Store, key, &ids)
	for _, have := range ids {
		if have == id {
			return
		}
	}
	ids = append(ids, id)
	sort.Strings(ids)
	store.PutJSON(c.cfg.Store, key, ids)
}

// --- lease helpers ---

// acquireLease claims job ownership, taking over an expired lease.
func (c *Coordinator) acquireLease(id string) (bool, error) {
	if c.cfg.Store == nil {
		return true, nil
	}
	key, err := LeaseKey(id)
	if err != nil {
		return false, err
	}
	lease := leaseRecord{Owner: c.owner, Expires: time.Now().Add(c.cfg.LeaseTTL)}
	won, err := store.ClaimJSON(c.cfg.Store, key, lease)
	if err != nil || won {
		return won, err
	}
	var cur leaseRecord
	if store.GetJSON(c.cfg.Store, key, &cur) && time.Now().Before(cur.Expires) {
		return false, nil // live lease held elsewhere
	}
	// Expired (or vanished between the claim and the read): take over.
	// The delete-then-claim window is racy, but Claim keeps the
	// takeover itself exactly-once.
	c.cfg.Store.Delete(key)
	lease.Expires = time.Now().Add(c.cfg.LeaseTTL)
	return store.ClaimJSON(c.cfg.Store, key, lease)
}

// keepLease refreshes a running job's lease at TTL/3 until the
// returned stop function is called or ctx ends, and — the other half
// of exactly-once — detects losing the lease.  Ownership is lost two
// ways: a peer's live lease appears under the key (it took over after
// ours expired), or refreshes keep failing past our own lease's
// expiry (the store is unwritable, so a peer is free to take over any
// moment — self-fence rather than risk two owners).  Either way the
// job's context is canceled: in-flight units release their ledger
// leases and the record is left resumable for the new owner, never
// finalized by both sides.  Refresh failures inside the window are
// retried under the coordinator's retry policy — a briefly-unwritable
// store costs backoff waits, not the lease.
func (c *Coordinator) keepLease(ctx context.Context, j *job) (stop func()) {
	if c.cfg.Store == nil {
		return func() {}
	}
	key, err := LeaseKey(j.rec.ID)
	if err != nil {
		return func() {}
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(c.cfg.LeaseTTL / 3)
		defer t.Stop()
		deadline := time.Now().Add(c.cfg.LeaseTTL) // expiry of the lease as last written
		for {
			select {
			case <-t.C:
				var cur leaseRecord
				if store.GetJSON(c.cfg.Store, key, &cur) &&
					cur.Owner != c.owner && time.Now().Before(cur.Expires) {
					// A peer holds a live lease: ours expired and was
					// taken over.  Stand down.
					c.loseLease(j)
					return
				}
				var next time.Time
				err := c.retry.Do(ctx, func(context.Context) error {
					next = time.Now().Add(c.cfg.LeaseTTL)
					return store.PutJSON(c.cfg.Store, key, leaseRecord{Owner: c.owner, Expires: next})
				})
				switch {
				case err == nil:
					deadline = next
				case ctx.Err() != nil:
					return
				case time.Now().After(deadline):
					// Could not refresh before our own lease expired:
					// assume a peer owns it now (or will momentarily).
					c.loseLease(j)
					return
				}
			case <-done:
				return
			case <-ctx.Done():
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// loseLease marks a job's ownership as lost and cancels its run:
// better to halt and leave the record resumable than to keep
// computing against a peer that now owns the job.
func (c *Coordinator) loseLease(j *job) {
	j.mu.Lock()
	j.leaseLost = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
}

// releaseLease deletes a job's lease if this coordinator holds it.
func (c *Coordinator) releaseLease(id string) {
	if c.cfg.Store == nil {
		return
	}
	key, err := LeaseKey(id)
	if err != nil {
		return
	}
	var cur leaseRecord
	if store.GetJSON(c.cfg.Store, key, &cur) && cur.Owner != c.owner {
		return // someone else's lease (we lost ours to a takeover)
	}
	c.cfg.Store.Delete(key)
}
