package coord_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/store"
)

// smallStudy is a three-session campaign small enough for tier-1.
func smallStudy() core.StudyConfig {
	return core.StudyConfig{
		RandomSessions:     1,
		HighConcSessions:   1,
		TransitionSessions: 1,
		SamplesPerSession:  2,
		Sampling:           monitor.SampleSpec{Snapshots: 2, GapCycles: 2_000},
		TriggeredSamples:   1,
		TriggeredBuffers:   1,
		TriggerBudget:      50_000,
		BaseSeed:           7,
	}
}

// sessionUnits builds n independent cheap session units.
func sessionUnits(n int) []core.StudyUnit {
	units := make([]core.StudyUnit, n)
	for i := range units {
		spec := core.SessionSpec{
			Samples:  1,
			Sampling: monitor.SampleSpec{Snapshots: 1, GapCycles: 2_000},
			Seed:     100 + uint64(i),
		}
		units[i] = core.StudyUnit{ID: i + 1, Random: &spec}
	}
	return units
}

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// await polls a job to a terminal state.
func await(t *testing.T, c *coord.Coordinator, id string) coord.JobStatus {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err == nil && coord.TerminalState(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	st, err := c.Status(id)
	t.Fatalf("job %s did not finish: status=%+v err=%v", id, st, err)
	return coord.JobStatus{}
}

func TestStudyJobMatchesLocalBytes(t *testing.T) {
	t.Parallel()
	cfg := smallStudy()
	local, err := core.EncodeStudy(core.RunStudyWorkers(cfg, 0))
	if err != nil {
		t.Fatal(err)
	}

	c := coord.New(coord.Config{Store: openStore(t, t.TempDir())})
	defer c.Close()
	st, created, err := c.Submit(coord.JobSpec{Kind: "study", Study: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("first Submit reported created=false")
	}
	final := await(t, c, st.ID)
	if final.State != coord.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	if final.Done != final.Total || final.Total != cfg.TotalSessions() {
		t.Errorf("progress = %d/%d, want %d/%d", final.Done, final.Total, cfg.TotalSessions(), cfg.TotalSessions())
	}

	res, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	got, err := core.EncodeStudy(res.Study)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, local) {
		t.Error("coordinator study differs from local bytes")
	}

	// Resubmitting the same spec addresses the same, finished job.
	again, created, err := c.Submit(coord.JobSpec{Kind: "study", Study: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if created || again.ID != st.ID || again.State != coord.StateDone {
		t.Errorf("resubmit = created=%v %+v, want the done job %s", created, again, st.ID)
	}
}

func TestSweepJobMatchesLocal(t *testing.T) {
	t.Parallel()
	cfg := experiments.SweepConfig{Kind: "ce", Values: []int{1, 2}, Seed: 3, Samples: 1}
	local, err := experiments.RunSweepConfig(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}

	c := coord.New(coord.Config{Store: openStore(t, t.TempDir())})
	defer c.Close()
	st, _, err := c.Submit(coord.JobSpec{Kind: "sweep", Sweep: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	if final := await(t, c, st.ID); final.State != coord.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	res, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := json.Marshal(local)
	got, _ := json.Marshal(res.Points)
	if !bytes.Equal(got, want) {
		t.Errorf("sweep job points = %s, want %s", got, want)
	}
}

func TestMemoryOnlyCoordinator(t *testing.T) {
	t.Parallel()
	c := coord.New(coord.Config{}) // no store: nothing persists, jobs still run
	defer c.Close()
	st, _, err := c.Submit(coord.JobSpec{Kind: "sessions", Units: sessionUnits(3)})
	if err != nil {
		t.Fatal(err)
	}
	if final := await(t, c, st.ID); final.State != coord.StateDone {
		t.Fatalf("job ended %s: %s", final.State, final.Error)
	}
	res, err := c.Result(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 3 || res.Sessions[0].Random == nil {
		t.Fatalf("sessions result = %+v", res.Sessions)
	}
}

func TestResumeReplaysFromUnitCache(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	units := sessionUnits(4)
	spec := coord.JobSpec{Kind: "sessions", Units: units}

	c1 := coord.New(coord.Config{Store: openStore(t, dir)})
	st, _, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	await(t, c1, st.ID)
	c1.Close()
	if got := c1.Stats(); got.UnitsComputed != 4 {
		t.Fatalf("cold run computed %d units, want 4", got.UnitsComputed)
	}

	// Simulate an interruption: rewind the record to running, as if
	// the coordinator died between the last checkpoint and completion.
	s := openStore(t, dir)
	recKey, err := store.Key("job/v1", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	var rec coord.JobRecord
	if !store.GetJSON(s, recKey, &rec) {
		t.Fatal("job record missing after completion")
	}
	rec.State = coord.StateRunning
	rec.Done = 2
	if err := store.PutJSON(s, recKey, rec); err != nil {
		t.Fatal(err)
	}

	c2 := coord.New(coord.Config{Store: s})
	defer c2.Close()
	if n := c2.ResumeInterrupted(); n != 1 {
		t.Fatalf("ResumeInterrupted() = %d, want 1", n)
	}
	final := await(t, c2, st.ID)
	if final.State != coord.StateDone {
		t.Fatalf("resumed job ended %s: %s", final.State, final.Error)
	}
	got := c2.Stats()
	if got.UnitsReplayed != 4 || got.UnitsComputed != 0 {
		t.Errorf("resume stats = %+v, want 4 replayed / 0 computed (pure store replay)", got)
	}
	if got.JobsResumed != 1 {
		t.Errorf("JobsResumed = %d, want 1", got.JobsResumed)
	}
}

// TestCorruptJobRecordRestartsCleanly is the durability edge from the
// issue: a truncated job record must read as a miss, and resubmitting
// the spec restarts the job cleanly — still replaying the intact unit
// entries.
func TestCorruptJobRecordRestartsCleanly(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := coord.JobSpec{Kind: "sessions", Units: sessionUnits(3)}

	c1 := coord.New(coord.Config{Store: openStore(t, dir)})
	st, _, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	await(t, c1, st.ID)
	c1.Close()

	// Truncate the record entry mid-payload.
	recKey, err := store.Key("job/v1", st.ID)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, recKey+".fx8s")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c2 := coord.New(coord.Config{Store: openStore(t, dir)})
	defer c2.Close()
	st2, created, err := c2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Error("Submit after record corruption reported created=false; corrupt record must read as a miss")
	}
	if st2.ID != st.ID {
		t.Errorf("job ID changed across corruption: %s != %s", st2.ID, st.ID)
	}
	final := await(t, c2, st2.ID)
	if final.State != coord.StateDone {
		t.Fatalf("restarted job ended %s: %s", final.State, final.Error)
	}
	got := c2.Stats()
	if got.UnitsReplayed != 3 || got.UnitsComputed != 0 {
		t.Errorf("restart stats = %+v, want 3 replayed / 0 computed (unit entries survive record corruption)", got)
	}
}

// TestRacingCoordinatorsLeaseExactlyOnce: two coordinators over one
// store directory submit the same spec concurrently; the job must be
// executed exactly once, and both must eventually observe it done.
func TestRacingCoordinatorsLeaseExactlyOnce(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	spec := coord.JobSpec{Kind: "sessions", Units: sessionUnits(4)}

	c1 := coord.New(coord.Config{Store: openStore(t, dir)})
	defer c1.Close()
	c2 := coord.New(coord.Config{Store: openStore(t, dir)})
	defer c2.Close()

	var wg sync.WaitGroup
	var id1, id2 string
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		st, _, err := c1.Submit(spec)
		id1, err1 = st.ID, err
	}()
	go func() {
		defer wg.Done()
		st, _, err := c2.Submit(spec)
		id2, err2 = st.ID, err
	}()
	wg.Wait()
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if id1 != id2 {
		t.Fatalf("same spec produced different job IDs: %s / %s", id1, id2)
	}

	f1 := await(t, c1, id1)
	f2 := await(t, c2, id2)
	if f1.State != coord.StateDone || f2.State != coord.StateDone {
		t.Fatalf("states = %s / %s, want done / done", f1.State, f2.State)
	}
	n1 := c1.Stats().UnitsComputed
	n2 := c2.Stats().UnitsComputed
	if n1+n2 != 4 {
		t.Errorf("computed %d + %d units, want 4 total (no double execution)", n1, n2)
	}
	if n1 != 0 && n2 != 0 {
		t.Errorf("both coordinators computed units (%d / %d); the lease must pick exactly one", n1, n2)
	}
}

func TestCancelRunningJob(t *testing.T) {
	t.Parallel()
	// A backend that never answers, so the job reliably hangs until
	// canceled.
	stall := make(chan struct{})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-stall
	}))
	t.Cleanup(func() { close(stall); srv.Close() })

	reg := coord.NewRegistry()
	reg.Register(srv.URL, time.Minute)
	c := coord.New(coord.Config{
		Store:    openStore(t, t.TempDir()),
		Registry: reg,
		Workers:  1,
	})
	defer c.Close()

	st, _, err := c.Submit(coord.JobSpec{Kind: "sessions", Units: sessionUnits(4)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Cancel(st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != coord.StateCanceled {
		t.Fatalf("state after cancel = %s, want canceled", got.State)
	}
	// A second cancel refuses: the job is terminal.
	if _, err := c.Cancel(st.ID); err != coord.ErrTerminal {
		t.Fatalf("second Cancel err = %v, want ErrTerminal", err)
	}
}

func TestStatusUnknownJob(t *testing.T) {
	t.Parallel()
	c := coord.New(coord.Config{})
	defer c.Close()
	if _, err := c.Status("no-such-job"); err != coord.ErrNotFound {
		t.Fatalf("Status err = %v, want ErrNotFound", err)
	}
	if _, err := c.Result("no-such-job"); err != coord.ErrNotFound {
		t.Fatalf("Result err = %v, want ErrNotFound", err)
	}
}

func TestSubmitRejectsInvalidSpecs(t *testing.T) {
	t.Parallel()
	c := coord.New(coord.Config{})
	defer c.Close()
	bad := []coord.JobSpec{
		{},
		{Kind: "study"},
		{Kind: "sweep"},
		{Kind: "sweep", Sweep: &experiments.SweepConfig{Kind: "bogus", Values: []int{1}}},
		{Kind: "sessions"},
		{Kind: "nonsense"},
	}
	for _, spec := range bad {
		if _, _, err := c.Submit(spec); err == nil {
			t.Errorf("Submit(%+v) accepted an invalid spec", spec)
		}
	}
}

func TestListOrdersJobs(t *testing.T) {
	t.Parallel()
	c := coord.New(coord.Config{Store: openStore(t, t.TempDir())})
	defer c.Close()
	a, _, err := c.Submit(coord.JobSpec{Kind: "sessions", Units: sessionUnits(1)})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := c.Submit(coord.JobSpec{Kind: "sessions", Units: sessionUnits(2)})
	if err != nil {
		t.Fatal(err)
	}
	await(t, c, a.ID)
	await(t, c, b.ID)
	list := c.List()
	if len(list) != 2 {
		t.Fatalf("List() = %d jobs, want 2", len(list))
	}
	seen := map[string]bool{list[0].ID: true, list[1].ID: true}
	if !seen[a.ID] || !seen[b.ID] {
		t.Errorf("List() = %+v, missing submitted jobs", list)
	}
}

func TestJobIDDeterministic(t *testing.T) {
	t.Parallel()
	cfg := smallStudy()
	id1, err := coord.JobID(coord.JobSpec{Kind: "study", Study: &cfg})
	if err != nil {
		t.Fatal(err)
	}
	id2, _ := coord.JobID(coord.JobSpec{Kind: "study", Study: &cfg})
	if id1 != id2 || len(id1) != 16 {
		t.Fatalf("JobID = %q / %q, want equal 16-hex IDs", id1, id2)
	}
	other := smallStudy()
	other.BaseSeed++
	id3, _ := coord.JobID(coord.JobSpec{Kind: "study", Study: &other})
	if id3 == id1 {
		t.Error("different specs hashed to the same job ID")
	}
}

func TestSubmitAndWaitOverContextCancel(t *testing.T) {
	t.Parallel()
	// AwaitJob must return promptly when its context ends.
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		json.NewEncoder(w).Encode(coord.JobStatus{ID: "x", State: coord.StateRunning})
	}))
	t.Cleanup(srv.Close)
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if _, err := coord.AwaitJob(ctx, nil, srv.URL, "x", 10*time.Millisecond); err == nil {
		t.Fatal("AwaitJob returned nil error after context deadline")
	}
}
