// Package fastrand is math/rand/v2's generator without the Source
// interface: the exact PCG state and draw algorithms of
// rand.New(rand.NewPCG(s1, s2)) on the concrete type, so per-cycle
// and per-instruction call sites (IP traffic, workload instruction
// streams) skip an interface dispatch per draw.  The draw sequence is
// pinned bit-for-bit against the stdlib by this package's tests.
// Unlike the stdlib, which switches reduction algorithms on 32-bit
// hosts, the sequence is the 64-bit one on every platform, so seeded
// workloads never depend on GOARCH.
package fastrand

import (
	"math/bits"
	"math/rand/v2"
)

// PCG draws the same sequence as rand.New(rand.NewPCG(seed1, seed2)).
// The zero value is the zero-seeded generator; use New for seeded
// ones.  Not safe for concurrent use, like rand.Rand.
type PCG struct {
	src rand.PCG
}

// New returns a generator with the state of rand.NewPCG(seed1, seed2).
func New(seed1, seed2 uint64) PCG {
	return PCG{src: *rand.NewPCG(seed1, seed2)}
}

// Uint64 matches (*rand.Rand).Uint64.
func (p *PCG) Uint64() uint64 { return p.src.Uint64() }

// IntN matches (*rand.Rand).IntN's 64-bit path, including the panic
// on n <= 0.
func (p *PCG) IntN(n int) int {
	if n <= 0 {
		panic("invalid argument to IntN")
	}
	u := uint64(n)
	if u&(u-1) == 0 { // n is power of two, can mask
		return int(p.src.Uint64() & (u - 1))
	}
	hi, lo := bits.Mul64(p.src.Uint64(), u)
	if lo < u {
		thresh := -u % u
		for lo < thresh {
			hi, lo = bits.Mul64(p.src.Uint64(), u)
		}
	}
	// hi = floor(x*n / 2^64) < n, an int; narrowing cannot truncate.
	return int(hi) //fxlint:allow truncation — hi < n
}

// Float64 matches (*rand.Rand).Float64.
func (p *PCG) Float64() float64 {
	return float64(p.src.Uint64()<<11>>11) / (1 << 53)
}
