package fastrand

import (
	"math/bits"
	"math/rand/v2"
	"testing"
)

// TestMatchesRandV2 pins the generator to the stdlib: PCG must
// consume and produce the exact draw sequence of
// rand.New(rand.NewPCG(...)), mixing every method the simulator and
// workload generator call, so swapping it in changed no study byte.
// The stdlib takes a different reduction path on 32-bit hosts; this
// package deliberately implements the 64-bit algorithm everywhere,
// so the pin only holds (and only runs) on 64-bit.
func TestMatchesRandV2(t *testing.T) {
	if bits.UintSize == 32 {
		t.Skip("stdlib IntN uses a different draw algorithm on 32-bit hosts")
	}
	for seed := uint64(0); seed < 4; seed++ {
		ref := rand.New(rand.NewPCG(seed, seed+0xA5))
		fast := New(seed, seed+0xA5)
		// The moduli the IP model and workload generator actually
		// roll, plus edge cases: powers of two, 1, and a modulus
		// large enough to make the rejection threshold nontrivial.
		// The large modulus goes through a variable so the conversion
		// happens at run time (after the 32-bit skip above); a
		// constant literal would fail to compile on 386.
		bigMod := uint64(1)<<62 + 12345
		moduli := []int{1000, 4, 2, 1, 7, 3, 1 << 20, int(bigMod)}
		for i := 0; i < 300_000; i++ {
			switch i % 4 {
			case 0:
				if a, b := ref.Uint64(), fast.Uint64(); a != b {
					t.Fatalf("seed %d draw %d: Uint64 %d != %d", seed, i, a, b)
				}
			case 1:
				if a, b := ref.Float64(), fast.Float64(); a != b {
					t.Fatalf("seed %d draw %d: Float64 %v != %v", seed, i, a, b)
				}
			default:
				n := moduli[i%len(moduli)]
				if a, b := ref.IntN(n), fast.IntN(n); a != b {
					t.Fatalf("seed %d draw %d: IntN(%d) %d != %d", seed, i, n, a, b)
				}
			}
		}
	}
}

func TestIntNPanicsOnNonPositive(t *testing.T) {
	p := New(1, 2)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("IntN(%d) should panic", n)
				}
			}()
			p.IntN(n)
		}()
	}
}
