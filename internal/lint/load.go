package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.  Module packages carry
// their parsed files and full type information; standard-library
// dependencies are type-checked only so module expressions resolve,
// and their syntax is dropped.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Standard   bool
	Imports    []string

	// Files holds the parsed non-test Go files.  Populated for
	// module packages only.
	Files []*ast.File

	// Types and Info are the go/types results.  Info is populated
	// for module packages only.
	Types *types.Package
	Info  *types.Info

	// TypeErrs collects type-checker errors.  Analyzing a package
	// that failed to type-check produces unreliable results, so the
	// driver refuses module packages with errors.
	TypeErrs []error

	// allow caches the //fxlint:allow suppression comments, keyed by
	// filename then line.  Built lazily by Pass.Reportf.
	allow map[string]map[int][]string
}

// Program is a loaded module: every package named by the load
// patterns plus the full dependency closure, type-checked from source
// in dependency order.
type Program struct {
	Fset *token.FileSet

	// Pkgs indexes every listed package (module and standard) by
	// import path.
	Pkgs map[string]*Package

	// Roots are the packages matched by the load patterns, in load
	// order.  These are the packages analyzers run over.
	Roots []*Package

	// GOARCH is the architecture the load resolved files and sizes
	// for (the GOARCH environment variable, or the host).
	GOARCH string

	deps map[string]map[string]bool // memoized transitive import closures
}

// listPackage mirrors the fields of `go list -json` output the loader
// consumes.
type listPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Imports    []string
	Standard   bool
	DepOnly    bool
	Module     *struct{ GoVersion string }
	Error      *struct{ Err string }
}

// Load enumerates patterns with `go list -json -deps` in dir and
// type-checks every package from source with go/ast + go/types — no
// tooling outside the standard library.  CGO is disabled so the pure
// Go file set is selected; GOARCH is honoured (set GOARCH=386 to
// analyze the 32-bit build).
func Load(dir string, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	goarch := os.Getenv("GOARCH")
	if goarch == "" {
		goarch = runtime.GOARCH
	}

	args := append([]string{"list", "-e", "-json", "-deps"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	cmd.Env = append(os.Environ(), "CGO_ENABLED=0")
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	var listed []*listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list -json: %v", err)
		}
		listed = append(listed, &p)
	}

	prog := &Program{
		Fset:   token.NewFileSet(),
		Pkgs:   make(map[string]*Package, len(listed)),
		GOARCH: goarch,
		deps:   make(map[string]map[string]bool),
	}
	byPath := make(map[string]*listPackage, len(listed))
	for _, lp := range listed {
		byPath[lp.ImportPath] = lp
	}
	sizes := types.SizesFor("gc", goarch)

	var check func(path string) (*types.Package, error)
	check = func(path string) (*types.Package, error) {
		if path == "unsafe" {
			return types.Unsafe, nil
		}
		lp, ok := byPath[path]
		if !ok {
			// GOROOT-vendored dependencies are listed under their
			// vendor/ prefix while source files import the bare path.
			if v, vok := byPath["vendor/"+path]; vok {
				lp = v
			} else {
				return nil, fmt.Errorf("package %s not listed", path)
			}
		}
		if pkg, done := prog.Pkgs[lp.ImportPath]; done {
			return pkg.Types, nil
		}
		if lp.Error != nil && !lp.Standard {
			return nil, fmt.Errorf("%s: %s", lp.ImportPath, lp.Error.Err)
		}

		pkg := &Package{
			ImportPath: lp.ImportPath,
			Name:       lp.Name,
			Dir:        lp.Dir,
			Standard:   lp.Standard,
			Imports:    lp.Imports,
		}
		mode := parser.SkipObjectResolution
		if !lp.Standard {
			mode |= parser.ParseComments
		}
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(prog.Fset, filepath.Join(lp.Dir, name), nil, mode)
			if err != nil {
				return nil, fmt.Errorf("%s: %v", lp.ImportPath, err)
			}
			files = append(files, f)
		}
		conf := types.Config{
			Importer: importerFunc(check),
			Sizes:    sizes,
			Error:    func(err error) { pkg.TypeErrs = append(pkg.TypeErrs, err) },
		}
		if lp.Module != nil && lp.Module.GoVersion != "" {
			conf.GoVersion = "go" + lp.Module.GoVersion
		}
		if !lp.Standard {
			pkg.Info = &types.Info{
				Types:      make(map[ast.Expr]types.TypeAndValue),
				Defs:       make(map[*ast.Ident]types.Object),
				Uses:       make(map[*ast.Ident]types.Object),
				Selections: make(map[*ast.SelectorExpr]*types.Selection),
			}
			pkg.Files = files
		}
		// Register before the recursive check so import cycles
		// cannot loop; go list has already rejected true cycles.
		prog.Pkgs[lp.ImportPath] = pkg
		tp, _ := conf.Check(lp.ImportPath, prog.Fset, files, pkg.Info)
		pkg.Types = tp
		if lp.Standard {
			// The syntax of dependencies is dead weight once their
			// types exist.
			pkg.TypeErrs = nil
		}
		return tp, nil
	}

	for _, lp := range listed {
		if _, err := check(lp.ImportPath); err != nil {
			if lp.Standard || lp.DepOnly {
				continue // tolerated: only module roots must be analyzable
			}
			return nil, err
		}
		if !lp.DepOnly {
			prog.Roots = append(prog.Roots, prog.Pkgs[lp.ImportPath])
		}
	}

	var broken []string
	for _, pkg := range prog.Roots {
		if len(pkg.TypeErrs) > 0 {
			broken = append(broken, fmt.Sprintf("%s: %v", pkg.ImportPath, pkg.TypeErrs[0]))
		}
	}
	if len(broken) > 0 {
		sort.Strings(broken)
		return nil, fmt.Errorf("packages failed to type-check (fix the build before linting):\n  %s",
			strings.Join(broken, "\n  "))
	}
	return prog, nil
}

// Deps returns the transitive import closure of the named package
// (not including the package itself), memoized across calls.
func (prog *Program) Deps(path string) map[string]bool {
	if d, ok := prog.deps[path]; ok {
		return d
	}
	closure := make(map[string]bool)
	prog.deps[path] = closure // placeholder guards against cycles
	if pkg, ok := prog.Pkgs[path]; ok {
		for _, imp := range pkg.Imports {
			if closure[imp] {
				continue
			}
			closure[imp] = true
			for dep := range prog.Deps(imp) {
				closure[dep] = true
			}
		}
	}
	return closure
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
