package lint

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// TruncationAnalyzer flags int(x) / int32(x) conversions of wider
// integer values — the exact class that overflowed triggeredSpec and
// remote.pick on GOARCH=386, where int is 32 bits.  A conversion is
// accepted when the operand is provably reduced first: a constant
// that fits, or a top-level % / & / &^ whose result the conversion
// cannot truncate further in the idiomatic counter-reduction pattern
// (reduce in uint64, then convert).  Conversions that are bounded for
// non-local reasons annotate the site with //fxlint:allow truncation
// and say why.
var TruncationAnalyzer = &Analyzer{
	Name: "truncation",
	Doc:  "forbid int/int32 conversions of 64-bit (or word-sized) counters unless reduced first; int is 32 bits on 386",
	Run:  runTruncation,
}

func runTruncation(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			tv, ok := pass.Pkg.Info.Types[call.Fun]
			if !ok || !tv.IsType() {
				return true
			}
			target, ok := tv.Type.Underlying().(*types.Basic)
			if !ok || (target.Kind() != types.Int && target.Kind() != types.Int32) {
				return true
			}
			arg := ast.Unparen(call.Args[0])
			atv, ok := pass.Pkg.Info.Types[arg]
			if !ok {
				return true
			}
			operand, ok := atv.Type.Underlying().(*types.Basic)
			if !ok {
				return true
			}
			switch operand.Kind() {
			case types.Int64, types.Uint64, types.Uint, types.Uintptr:
			default:
				return true
			}
			// A constant operand that fits in int32 cannot truncate.
			if atv.Value != nil {
				if v, exact := constant.Int64Val(atv.Value); exact && v >= -1<<31 && v < 1<<31 {
					return true
				}
			}
			// Reduction idiom: int(x % uint64(n)), int(x & mask).
			if be, ok := arg.(*ast.BinaryExpr); ok {
				switch be.Op {
				case token.REM, token.AND, token.AND_NOT:
					return true
				}
			}
			src := "a"
			if fromAtomic(pass, arg) {
				src = "an atomic"
			}
			pass.Reportf(call.Pos(),
				"%s(...) of %s %s value truncates on 32-bit platforms; reduce first (%% or & in the wide type) or annotate //fxlint:allow truncation with the bound",
				target.Name(), src, operand.Name())
			return true
		})
	}
}

// fromAtomic reports whether the expression is directly a sync/atomic
// load, add or swap, so the diagnostic can name the counter class.
func fromAtomic(pass *Pass, expr ast.Expr) bool {
	call, ok := ast.Unparen(expr).(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == "sync/atomic"
}
