// Package store stands in for the real persistence layer the
// simulator stack must never depend on.
package store

// Kind identifies the fixture package in diagnostics.
const Kind = "store"
