// Package fx8 mirrors the simulator core: it reaches the forbidden
// store package only transitively, through mid, which the analyzer
// must still catch and explain with the shortest chain.
package fx8

import (
	"repro/internal/mid"   // want "repro/internal/fx8 must not depend on repro/internal/store"
	"repro/internal/retry" // want "repro/internal/fx8 must not depend on repro/internal/retry"
)

// Uses keeps the imports live.
const Uses = mid.Via + retry.Uses
