// Package service stands in for the real HTTP daemon: the layer
// nothing below it — coordinator, retry, chaos — may ever import.
package service

// Kind identifies the fixture package in diagnostics.
const Kind = "service"
