// Package mid is an unconstrained intermediary: it may import store,
// but anything in the simulator stack importing mid inherits the
// forbidden transitive edge.
package mid

import "repro/internal/store"

// Via re-exports store.Kind so the import is used.
const Via = store.Kind
