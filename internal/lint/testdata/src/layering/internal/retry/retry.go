// Package retry mirrors the real backoff policy, which must stay a
// near-leaf (fastrand + obs only): pulling in a seam it is meant to
// sit below — here the store — cycles the DAG.
package retry

import "repro/internal/store" // want "repro/internal/retry must not depend on repro/internal/store"

// Uses keeps the import live.
const Uses = store.Kind
