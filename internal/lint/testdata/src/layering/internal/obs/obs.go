// Package obs mirrors the real telemetry substrate, which must stay
// stdlib-only: any repro import is a violation.
package obs

import (
	"fmt"

	"repro/internal/deep" // want "repro/internal/obs must not depend on repro/internal/deep"
)

// Describe uses both imports.
func Describe() string {
	return fmt.Sprint(deep.Marker)
}
