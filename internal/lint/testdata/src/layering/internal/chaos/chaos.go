// Package chaos mirrors the real fault injector: it may import the
// seams it wraps (the store import below is legal and must produce no
// diagnostic) but never the service that fronts them.
package chaos

import (
	"repro/internal/service" // want "repro/internal/chaos must not depend on repro/internal/service"
	"repro/internal/store"
)

// Uses keeps both imports live.
const Uses = store.Kind + service.Kind
