// Package deep is an unconstrained helper package in the layering
// fixture; importing it is only a violation for stdlib-only layers.
package deep

// Marker exists so importers have something to reference.
const Marker = 1
