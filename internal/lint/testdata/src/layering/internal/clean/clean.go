// Package clean is an unconstrained package: it may import anything,
// including store, without a diagnostic.
package clean

import (
	"repro/internal/deep"
	"repro/internal/store"
)

// Both uses both imports.
const Both = store.Kind + "-clean" + string(rune('0'+deep.Marker))
