// Package truncation is an fxlint test fixture: narrowing conversions
// of wide counters that wrap on GOARCH=386, with // want markers for
// the expected diagnostics.
package truncation

import "sync/atomic"

func toInt(x uint64) int {
	return int(x) // want "int(...) of a uint64 value truncates on 32-bit platforms"
}

func toInt32(x int64) int32 {
	return int32(x) // want "int32(...) of a int64 value truncates on 32-bit platforms"
}

func fromAtomicCounter(c *atomic.Int64) int {
	return int(c.Add(1)) // want "int(...) of an atomic int64 value truncates on 32-bit platforms"
}

func fromWord(x uintptr) int {
	return int(x) // want "int(...) of a uintptr value truncates on 32-bit platforms"
}

func afterArithmetic(x uint64) int {
	return int(x + 1) // want "int(...) of a uint64 value truncates on 32-bit platforms"
}
