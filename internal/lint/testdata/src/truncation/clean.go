package truncation

// reducedMod converts after reducing in the wide type: the result
// cannot exceed n, an int.
func reducedMod(x uint64, n int) int {
	return int(x % uint64(n))
}

// reducedMask masks before converting.
func reducedMask(x uint64) int {
	return int(x & 0xffff)
}

// reducedClear uses AND-NOT in the wide type.
func reducedClear(x uint64) int {
	return int(x &^ ^uint64(0xffff))
}

// constantFits converts a constant that fits in int32.
const pageSize = 1 << 20

func constantFits() int {
	return int(int64(pageSize))
}

// narrowOperand converts from a type no wider than int32.
func narrowOperand(x int32) int {
	return int(x)
}

// annotated documents an out-of-band bound with a suppression.
func annotated(x uint64) int {
	return int(x) //fxlint:allow truncation — callers pass x < 4096
}
