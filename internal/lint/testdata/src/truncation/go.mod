module truncation

go 1.24
