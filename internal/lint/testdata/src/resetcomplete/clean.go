package resetcomplete

type inner struct{ n int }

func (i *inner) Reset() { i.n = 0 }

// Full exercises every coverage form: direct assignment, reslice,
// clear, delegated Reset on value and pointer fields, and a
// fxlint:keep opt-out for configuration that survives resets.
type Full struct {
	cfg   int // fxlint:keep — configuration survives reset
	count int
	buf   []byte
	set   map[int]bool
	sub   inner
	ptr   *inner
}

func (f *Full) Reset() {
	f.count = 0
	f.buf = f.buf[:0]
	clear(f.set)
	f.sub.Reset()
	f.ptr.Reset()
}

// Whole overwrites the entire receiver: everything is covered.
type Whole struct {
	x, y int
	tags []string
}

func (w *Whole) Reset() { *w = Whole{} }

// Flushed shows sibling-method coverage: Reset calls Flush, which
// covers lines, so Reset only owes stamp.
type Flushed struct {
	lines []int
	stamp int
}

func (c *Flushed) Flush() {
	for i := range c.lines {
		c.lines[i] = 0
	}
}

func (c *Flushed) Reset() {
	c.Flush()
	c.stamp = 0
}

// ByAddress passes a field by address to a helper that zeroes it.
type ByAddress struct {
	state int
}

func zero(p *int) { *p = 0 }

func (b *ByAddress) Reset() {
	zero(&b.state)
}
