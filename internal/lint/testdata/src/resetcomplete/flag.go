// Package resetcomplete is an fxlint test fixture: Reset methods that
// miss receiver fields, with // want markers for the expected
// diagnostics.
package resetcomplete

// Leaky resets a but forgets b and c.
type Leaky struct {
	a int
	b []int
	c map[int]bool
}

func (l *Leaky) Reset() { // want "(Leaky).Reset does not reset fields: b, c"
	l.a = 0
}

// Delegating covers inner via a method call but still misses n.
type part struct{ x int }

func (p *part) Reset() { p.x = 0 }

type Delegating struct {
	inner part
	n     int
}

func (d *Delegating) Reset() { // want "(Delegating).Reset does not reset fields: n"
	d.inner.Reset()
}

// ValueRecv has a value receiver; coverage rules apply the same way.
type ValueRecv struct {
	hits  int
	total int
}

func (v ValueRecv) Reset() { // want "(ValueRecv).Reset does not reset fields: total"
	v.hits = 0
}
