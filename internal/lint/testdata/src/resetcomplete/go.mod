module resetcomplete

go 1.24
