package determinism

import (
	"fmt"
	randv2 "math/rand/v2"
	"sort"
	"strings"
)

// seeded uses an explicitly seeded local generator: allowed.
func seeded(seed uint64) int {
	rng := randv2.New(randv2.NewPCG(seed, 1))
	return rng.IntN(8)
}

// renderSorted is the collect-keys-sort-iterate idiom: the append
// target is sorted after the loop, and the emitting loop ranges over
// the slice, not the map.
func renderSorted(m map[string]int) string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		fmt.Fprintf(&b, "%s=%d\n", k, m[k])
	}
	return b.String()
}

// sum is order-insensitive accumulation: no append, no sink.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// localAppend appends to a slice declared inside the loop body; the
// order never escapes one iteration.
func localAppend(m map[string][]int, f func([]int)) {
	for _, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		f(doubled)
	}
}

// allowed demonstrates the suppression comment: the consumer sorts.
func allowed(m map[string]bool) []string {
	var out []string
	for k := range m {
		//fxlint:allow determinism — sole caller sorts before use
		out = append(out, k)
	}
	return out
}
