module determinism

go 1.24
