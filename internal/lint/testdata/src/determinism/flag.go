// Package determinism is an fxlint test fixture: every construct the
// determinism analyzer must flag, with // want markers naming the
// expected diagnostic substring.
package determinism

import (
	"fmt"
	"math/rand"
	randv2 "math/rand/v2"
	"strings"
	"time"
)

func wallClock() time.Time {
	return time.Now() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func globalRandV1() int {
	return rand.Intn(8) // want "rand.Intn uses the global math/rand source"
}

func globalRandV2() int {
	return randv2.IntN(8) // want "rand.IntN uses the global math/rand source"
}

func render(m map[string]int) string {
	var b strings.Builder
	for k, v := range m {
		fmt.Fprintf(&b, "%s=%d\n", k, v) // want "Fprintf inside map iteration makes output depend on map order"
	}
	return b.String()
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "keys accumulates map-iteration values in map order"
	}
	return keys
}
