package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strconv"
	"strings"
)

// LayerRule forbids one set of import edges: no package matching Pkgs
// may depend (directly or transitively) on a package matching Deny.
type LayerRule struct {
	// Pkgs are the constrained import paths (exact matches).
	Pkgs []string

	// Deny are forbidden dependency paths: an exact import path, or
	// a prefix when it ends in "/".
	Deny []string

	// Why names the invariant the rule encodes, quoted in the
	// diagnostic so a failure explains itself.
	Why string
}

func (r *LayerRule) denies(dep string) bool {
	for _, d := range r.Deny {
		if strings.HasSuffix(d, "/") {
			if strings.HasPrefix(dep, d) {
				return true
			}
		} else if dep == d {
			return true
		}
	}
	return false
}

// LayerRules is the repo's import-DAG whitelist.  The table is a
// variable so tests can run the analyzer against fixture rules.
var LayerRules = []*LayerRule{
	{
		Pkgs: []string{"repro/internal/obs"},
		Deny: []string{"repro/"},
		Why:  "obs is the telemetry substrate every layer imports; it must stay stdlib-only or instrumentation creates import cycles",
	},
	{
		Pkgs: []string{"repro/internal/perf"},
		Deny: []string{"repro/"},
		Why:  "perf is a leaf: benchmark parsing must not pull simulator or service code into cmd/benchdiff",
	},
	{
		Pkgs: []string{
			"repro/internal/fx8",
			"repro/internal/concentrix",
			"repro/internal/monitor",
			"repro/internal/workload",
			"repro/internal/fxasm",
		},
		Deny: []string{
			"repro/internal/service",
			"repro/internal/remote",
			"repro/internal/store",
			"repro/internal/engine",
			"repro/internal/obs",
			"repro/internal/coord",
			"repro/internal/retry",
			"repro/internal/chaos",
		},
		Why: "the simulator stack must stay a pure library: serving, distribution, persistence, telemetry and fault injection layer above it",
	},
	{
		Pkgs: []string{"repro/internal/core", "repro/internal/experiments"},
		Deny: []string{
			"repro/internal/service",
			"repro/internal/remote",
			"repro/internal/coord",
			"repro/internal/retry",
			"repro/internal/chaos",
		},
		Why: "the measurement/experiment layer is what the service serves; retry and chaos belong to the distribution layers above it",
	},
	{
		Pkgs: []string{"repro/internal/retry"},
		Deny: []string{
			"repro/internal/service",
			"repro/internal/remote",
			"repro/internal/store",
			"repro/internal/coord",
			"repro/internal/core",
			"repro/internal/experiments",
			"repro/internal/engine",
			"repro/internal/chaos",
			"repro/internal/fx8",
			"repro/internal/concentrix",
			"repro/internal/monitor",
			"repro/internal/workload",
		},
		Why: "retry is the one backoff policy remote and coord share; it must stay a near-leaf (fastrand + obs only) or the DAG cycles",
	},
	{
		Pkgs: []string{"repro/internal/chaos"},
		Deny: []string{"repro/internal/service"},
		Why:  "chaos injects faults at the transport, disk and process seams; it may import those seams (remote, store, coord) but never the service that fronts them",
	},
	{
		Pkgs: []string{"repro/internal/coord"},
		Deny: []string{"repro/internal/service"},
		Why:  "the service fronts the coordinator over HTTP; the coordinator importing the service inverts the DAG",
	},
}

// LayeringAnalyzer enforces LayerRules over the transitive import
// graph, replacing the CI grep that only guarded internal/obs.
var LayeringAnalyzer = &Analyzer{
	Name: "layering",
	Doc:  "enforce the import-DAG whitelist (obs/perf stdlib-only, simulator below service/remote/store)",
	Run:  runLayering,
}

func runLayering(pass *Pass) {
	path := pass.Pkg.ImportPath
	for _, rule := range LayerRules {
		constrained := false
		for _, p := range rule.Pkgs {
			if p == path {
				constrained = true
				break
			}
		}
		if !constrained {
			continue
		}
		deps := pass.Prog.Deps(path)
		var bad []string
		for dep := range deps {
			if dep != path && rule.denies(dep) {
				bad = append(bad, dep)
			}
		}
		sort.Strings(bad)
		reported := make(map[string]bool)
		for _, dep := range bad {
			chain := importChain(pass.Prog, path, dep)
			// Reporting per first forbidden hop keeps one diagnostic
			// per leaked edge rather than one per transitive target.
			if reported[chain[0]] {
				continue
			}
			reported[chain[0]] = true
			pass.Reportf(importPos(pass, chain[0]),
				"%s must not depend on %s (via %s): %s",
				path, dep, strings.Join(append([]string{path}, chain...), " -> "), rule.Why)
		}
	}
}

// importChain returns the shortest import path from 'from' (exclusive)
// to 'to' (inclusive) in prog's graph.
func importChain(prog *Program, from, to string) []string {
	type node struct {
		path string
		prev *node
	}
	visited := map[string]bool{from: true}
	queue := []*node{{path: from}}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		pkg, ok := prog.Pkgs[cur.path]
		if !ok {
			continue
		}
		imports := append([]string(nil), pkg.Imports...)
		sort.Strings(imports)
		for _, imp := range imports {
			if visited[imp] {
				continue
			}
			visited[imp] = true
			next := &node{path: imp, prev: cur}
			if imp == to {
				var chain []string
				for n := next; n.prev != nil; n = n.prev {
					chain = append([]string{n.path}, chain...)
				}
				return chain
			}
			queue = append(queue, next)
		}
	}
	return []string{to}
}

// importPos locates the import declaration of dep in the package under
// analysis, so the diagnostic anchors at the offending line; falls
// back to the first file when the edge is transitive.
func importPos(pass *Pass, dep string) token.Pos {
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			if p, err := strconv.Unquote(imp.Path.Value); err == nil && p == dep {
				return imp.Pos()
			}
		}
	}
	if len(pass.Pkg.Files) > 0 {
		return pass.Pkg.Files[0].Package
	}
	return token.NoPos
}

// DescribeRules renders the whitelist, one "constrained !-> denied"
// line per rule, for fxlint -list output.
func DescribeRules() string {
	var b strings.Builder
	for _, r := range LayerRules {
		fmt.Fprintf(&b, "  %s !-> %s\n", strings.Join(r.Pkgs, ", "), strings.Join(r.Deny, ", "))
	}
	return b.String()
}
