// Package lint is fxlint's analyzer suite: whole-program static
// checks for the invariants this reproduction depends on but the
// compiler cannot see.  Each has bitten the repo at least once; each
// began life as an ad-hoc per-struct test or CI grep and is encoded
// here as an analysis that holds everywhere, including in code that
// does not exist yet.
//
// The four analyzers:
//
//   - determinism: in the simulator and experiment packages (fx8,
//     concentrix, monitor, core, workload, fxasm, experiments)
//     sessions must be byte-identical across workers, arenas and
//     backends.  The analyzer forbids time.Now/time.Since, any use of
//     the process-global math/rand source (seeded local generators
//     and internal/fastrand are fine), and map iteration whose order
//     leaks into output: emitting bytes (Print/Write/Sum/Encode)
//     inside a range over a map, or appending map-iteration values to
//     an outer slice that is never sorted afterwards.  The
//     "collect keys, sort, iterate" idiom passes.
//
//   - resetcomplete: any type with a Reset method must cover every
//     field of its receiver struct — assign it, clear/copy it, pass
//     it by address, delegate to a method on the field, or overwrite
//     the whole receiver.  Calls to sibling methods on the receiver
//     (e.g. Reset calling Flush) contribute their coverage.  Fields
//     deliberately preserved across resets — configuration, derived
//     constants, backing arrays a guard field invalidates — opt out
//     with "// fxlint:keep" on the field declaration, which doubles
//     as documentation that the omission is intentional.  This is the
//     static generalization of the per-struct reflect guards the
//     session-arena work introduced: those verify one struct at one
//     version; this holds for every Reset, including future ones.
//
//   - layering: the import-DAG whitelist (LayerRules).  internal/obs
//     and internal/perf import no repro packages; the simulator stack
//     (fx8, concentrix, monitor, workload, fxasm) never depends on
//     service/remote/store/engine/obs; core and experiments never
//     depend on service/remote.  Checked transitively, and a
//     violation names the first offending edge and the shortest
//     chain.  Replaces the CI grep that guarded only internal/obs.
//
//   - truncation: int(x) and int32(x) conversions of int64, uint64,
//     uint or uintptr values — the class that overflowed
//     StudyConfig.triggeredSpec and remote.Client.pick once each on
//     GOARCH=386, where int is 32 bits.  Conversions of constants
//     that fit and of operands reduced at the conversion site
//     (x % n, x & mask in the wide type) pass; conversions bounded
//     for non-local reasons annotate //fxlint:allow truncation with
//     the bound.  The analyzer assumes the 32-bit layout regardless
//     of host GOARCH, so amd64 CI catches 386 overflow.
//
// Suppressions: "//fxlint:allow <analyzer>[,<analyzer>] rationale"
// on the flagged line, or on its own line directly above, silences
// that diagnostic.  The rationale is not optional in spirit: a
// suppression without a stated bound or reason should not survive
// review.
//
// The driver (Load) is standard library only, like the module itself:
// packages are enumerated with `go list -json -deps` and type-checked
// from source with go/ast and go/types in dependency order, stdlib
// included, so analyzers see full type information without
// golang.org/x/tools.  Run `make lint` or `go run ./cmd/fxlint ./...`;
// CI runs the suite on every PR for both GOARCH=amd64 and GOARCH=386.
package lint
