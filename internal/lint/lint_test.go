package lint

import (
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// loadFixture type-checks one testdata module.  Each fixture is its
// own module (testdata is invisible to the repo's ./...) so the
// production Load path — go list, source type-checking, suppression
// index — is exercised exactly as fxlint uses it.
func loadFixture(t *testing.T, name string) *Program {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	prog, err := Load(dir, "./...")
	if err != nil {
		t.Fatalf("Load(%s): %v", dir, err)
	}
	return prog
}

// unscoped clones an analyzer with its package scope removed, so
// fixtures in toy modules (whose import paths are not repro/...) still
// reach Run.  The layering fixture keeps the real scope: its go.mod
// declares module repro, so the production rules apply verbatim.
func unscoped(a *Analyzer) *Analyzer {
	clone := *a
	clone.Scope = nil
	return &clone
}

// wantMarkers scans fixture sources for trailing `// want "substring"`
// comments and returns them keyed by "file:line".
func wantMarkers(t *testing.T, name string) map[string][]string {
	t.Helper()
	dir := filepath.Join("testdata", "src", name)
	wants := make(map[string][]string)
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || !strings.HasSuffix(path, ".go") {
			return err
		}
		abs, err := filepath.Abs(path)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		for i, line := range strings.Split(string(data), "\n") {
			const marker = `// want "`
			at := strings.Index(line, marker)
			if at < 0 {
				continue
			}
			rest := line[at+len(marker):]
			end := strings.LastIndex(rest, `"`)
			if end < 0 {
				t.Fatalf("%s:%d: unterminated want marker", path, i+1)
			}
			key := fmt.Sprintf("%s:%d", abs, i+1)
			wants[key] = append(wants[key], rest[:end])
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
	return wants
}

// checkFixture runs one analyzer over one fixture and requires the
// diagnostics to match the want markers exactly: every marker matched
// by a diagnostic on its line, every diagnostic explained by a marker.
func checkFixture(t *testing.T, fixture string, a *Analyzer) {
	t.Helper()
	prog := loadFixture(t, fixture)
	diags := Run(prog, []*Analyzer{a})
	wants := wantMarkers(t, fixture)

	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want markers; flagging fixtures must assert something", fixture)
	}

	matched := make(map[string]bool)
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		ok := false
		for _, want := range wants[key] {
			if strings.Contains(d.Message, want) {
				ok = true
				matched[key+"\x00"+want] = true
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	var missing []string
	for key, subs := range wants {
		for _, want := range subs {
			if !matched[key+"\x00"+want] {
				missing = append(missing, fmt.Sprintf("%s: want %q", key, want))
			}
		}
	}
	sort.Strings(missing)
	for _, m := range missing {
		t.Errorf("missing diagnostic: %s", m)
	}
}

func TestDeterminismFixture(t *testing.T) {
	checkFixture(t, "determinism", unscoped(DeterminismAnalyzer))
}

func TestResetCompleteFixture(t *testing.T) {
	checkFixture(t, "resetcomplete", ResetCompleteAnalyzer)
}

func TestTruncationFixture(t *testing.T) {
	checkFixture(t, "truncation", TruncationAnalyzer)
}

func TestLayeringFixture(t *testing.T) {
	// Production scope and production LayerRules: the fixture module
	// is named repro so the real whitelist applies as-is.
	checkFixture(t, "layering", LayeringAnalyzer)
}

func TestByName(t *testing.T) {
	as, err := ByName("layering,truncation")
	if err != nil {
		t.Fatalf("ByName: %v", err)
	}
	if len(as) != 2 || as[0] != LayeringAnalyzer || as[1] != TruncationAnalyzer {
		t.Fatalf("ByName returned %v", as)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch): expected error")
	}
}

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//fxlint:allow truncation — bounded by n", []string{"truncation"}, true},
		{"// fxlint:allow determinism,truncation why", []string{"determinism", "truncation"}, true},
		{"//fxlint:allow", nil, false},
		{"// just a comment", nil, false},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok=%v, want %v", c.text, ok, c.ok)
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(c.want) && c.ok {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}
