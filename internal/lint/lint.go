package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one whole-program invariant check.  Run is invoked once
// per module package within Scope; analyzers needing the import graph
// reach it through Pass.Prog.
type Analyzer struct {
	Name string
	Doc  string

	// Scope restricts which packages Run sees; nil means every
	// module package the load matched.
	Scope func(importPath string) bool

	Run func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Prog     *Program
	Pkg      *Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos unless the source line (or the
// full-line comment directly above it) carries a matching
// "//fxlint:allow <analyzer>" suppression.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Prog.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressed(pos token.Position) bool {
	if p.Pkg.allow == nil {
		p.Pkg.allow = buildAllowIndex(p.Prog.Fset, p.Pkg.Files)
	}
	for _, name := range p.Pkg.allow[pos.Filename][pos.Line] {
		if name == p.Analyzer.Name {
			return true
		}
	}
	return false
}

// buildAllowIndex maps filename -> line -> analyzer names allowed on
// that line.  A suppression covers its own line (trailing comment)
// and the line below it (standalone comment above the flagged code).
func buildAllowIndex(fset *token.FileSet, files []*ast.File) map[string]map[int][]string {
	idx := make(map[string]map[int][]string)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int][]string)
					idx[pos.Filename] = lines
				}
				lines[pos.Line] = append(lines[pos.Line], names...)
				lines[pos.Line+1] = append(lines[pos.Line+1], names...)
			}
		}
	}
	return idx
}

// parseAllow extracts the analyzer names from an
// "//fxlint:allow name[,name] [rationale]" comment.
func parseAllow(text string) ([]string, bool) {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "fxlint:allow") {
		return nil, false
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "fxlint:allow"))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	return strings.Split(fields[0], ","), true
}

// Analyzers returns the full suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		LayeringAnalyzer,
		ResetCompleteAnalyzer,
		TruncationAnalyzer,
	}
}

// ByName resolves a comma-separated analyzer list ("determinism,layering").
func ByName(names string) ([]*Analyzer, error) {
	all := Analyzers()
	var out []*Analyzer
	for _, name := range strings.Split(names, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		found := false
		for _, a := range all {
			if a.Name == name {
				out = append(out, a)
				found = true
				break
			}
		}
		if !found {
			known := make([]string, len(all))
			for i, a := range all {
				known[i] = a.Name
			}
			return nil, fmt.Errorf("unknown analyzer %q (have %s)", name, strings.Join(known, ", "))
		}
	}
	return out, nil
}

// Run applies the analyzers to every root package of prog (honouring
// per-analyzer scopes) and returns the surviving diagnostics sorted
// by position.
func Run(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range prog.Roots {
			if a.Scope != nil && !a.Scope(pkg.ImportPath) {
				continue
			}
			pass := &Pass{Analyzer: a, Prog: prog, Pkg: pkg, diags: &diags}
			a.Run(pass)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}
