package lint

import "testing"

// TestRepoTreeClean is the invariant the whole suite exists for: the
// real module, loaded exactly as `make lint` loads it, produces zero
// diagnostics from all four analyzers.  A failure here means either a
// genuine violation slipped in or an analyzer regressed into a false
// positive — both are merge blockers.
func TestRepoTreeClean(t *testing.T) {
	prog, err := Load("../..", "./...")
	if err != nil {
		t.Fatalf("Load repo root: %v", err)
	}
	diags := Run(prog, Analyzers())
	for _, d := range diags {
		t.Errorf("repo tree not fxlint-clean: %s", d)
	}
}
