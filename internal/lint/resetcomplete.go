package lint

import (
	"go/ast"
	"sort"
	"strings"
)

// ResetCompleteAnalyzer checks that every Reset method assigns,
// clears or delegates a reset for every field of its receiver struct
// — the static generalization of the per-struct reflect guards the
// session-arena work introduced.  A field deliberately preserved
// across resets (configuration, derived constants, backing arrays a
// guard field invalidates) opts out with a "// fxlint:keep" comment
// on its declaration.
var ResetCompleteAnalyzer = &Analyzer{
	Name: "resetcomplete",
	Doc:  "a Reset method must cover every receiver field (assign, clear, delegate) or mark it // fxlint:keep",
	Run:  runResetComplete,
}

func runResetComplete(pass *Pass) {
	// Index the package's struct declarations and method sets once.
	structs := make(map[string]*ast.StructType)
	methods := make(map[string]map[string]*ast.FuncDecl) // type -> method name -> decl
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					if st, ok := ts.Type.(*ast.StructType); ok {
						structs[ts.Name.Name] = st
					}
				}
			case *ast.FuncDecl:
				tname, _ := receiverType(d)
				if tname == "" {
					continue
				}
				if methods[tname] == nil {
					methods[tname] = make(map[string]*ast.FuncDecl)
				}
				methods[tname][d.Name.Name] = d
			}
		}
	}

	for tname, ms := range methods {
		reset, ok := ms["Reset"]
		if !ok || reset.Body == nil {
			continue
		}
		st, ok := structs[tname]
		if !ok {
			continue // non-struct receiver: nothing to enumerate
		}
		_, recvName := receiverType(reset)
		if recvName == "" || recvName == "_" {
			continue
		}

		covered, all := methodCoverage(reset, recvName, ms, map[*ast.FuncDecl]bool{reset: true})
		if all {
			continue
		}
		var missing []string
		for _, field := range st.Fields.List {
			if keepField(field) {
				continue
			}
			for _, name := range fieldNames(field) {
				if !covered[name] {
					missing = append(missing, name)
				}
			}
		}
		if len(missing) == 0 {
			continue
		}
		sort.Strings(missing)
		pass.Reportf(reset.Pos(),
			"(%s).Reset does not reset fields: %s (assign or clear them, delegate a reset, or mark the field // fxlint:keep)",
			tname, strings.Join(missing, ", "))
	}
}

// receiverType returns the receiver's type name and parameter name
// for a method declaration ("" for plain functions).  Pointer and
// generic receivers unwrap to the base type name.
func receiverType(fd *ast.FuncDecl) (typeName, recvName string) {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return "", ""
	}
	recv := fd.Recv.List[0]
	t := recv.Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		typeName = tt.Name
	case *ast.IndexExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	case *ast.IndexListExpr:
		if id, ok := tt.X.(*ast.Ident); ok {
			typeName = id.Name
		}
	}
	if len(recv.Names) == 1 {
		recvName = recv.Names[0].Name
	}
	return typeName, recvName
}

// fieldNames lists the names a struct field declares (the embedded
// type's base name for anonymous fields).
func fieldNames(field *ast.Field) []string {
	if len(field.Names) > 0 {
		names := make([]string, len(field.Names))
		for i, n := range field.Names {
			names[i] = n.Name
		}
		return names
	}
	t := field.Type
	if st, ok := t.(*ast.StarExpr); ok {
		t = st.X
	}
	switch tt := t.(type) {
	case *ast.Ident:
		return []string{tt.Name}
	case *ast.SelectorExpr:
		return []string{tt.Sel.Name}
	}
	return nil
}

// keepField reports whether the field opts out via fxlint:keep in its
// doc or trailing comment.
func keepField(field *ast.Field) bool {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if strings.Contains(c.Text, "fxlint:keep") {
				return true
			}
		}
	}
	return false
}

// methodCoverage walks a method body and returns the receiver fields
// it covers.  A field counts as covered when it (or a projection of
// it) is assigned, incremented, cleared or copied over, passed by
// address, or is the receiver of a method call (delegated reset).
// Calls to sibling methods on the bare receiver recurse, so e.g. a
// Reset that calls Flush inherits Flush's assignments.  all=true
// means the whole receiver was overwritten (*r = T{...}).
func methodCoverage(fd *ast.FuncDecl, recvName string, siblings map[string]*ast.FuncDecl, seen map[*ast.FuncDecl]bool) (covered map[string]bool, all bool) {
	covered = make(map[string]bool)
	cover := func(expr ast.Expr) {
		if name, whole := receiverField(expr, recvName); whole {
			all = true
		} else if name != "" {
			covered[name] = true
		}
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				cover(lhs)
			}
		case *ast.IncDecStmt:
			cover(n.X)
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok && id.Name == recvName {
					// r.Sibling(...): inherit its coverage.
					if sib, ok := siblings[sel.Sel.Name]; ok && !seen[sib] && sib.Body != nil {
						if sibRecv, sibName := receiverType(sib); sibRecv != "" && sibName != "" {
							seen[sib] = true
							c, a := methodCoverage(sib, sibName, siblings, seen)
							for f := range c {
								covered[f] = true
							}
							all = all || a
						}
					}
				} else {
					// r.field.Method(...) delegates field state.
					cover(sel.X)
				}
			}
			// clear(r.f), copy(r.f, x), and &r.f passed anywhere all
			// hand the field to resetting code.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && (id.Name == "clear" || id.Name == "copy") && len(n.Args) > 0 {
				cover(n.Args[0])
			}
			for _, arg := range n.Args {
				if ue, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && ue.Op.String() == "&" {
					cover(ue.X)
				}
			}
		}
		return true
	})
	return covered, all
}

// receiverField resolves which field of the named receiver an
// expression touches.  whole=true means the expression is the
// receiver itself (or *receiver): writing through it covers every
// field.
func receiverField(expr ast.Expr, recvName string) (field string, whole bool) {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			if e.Name == recvName {
				return "", true
			}
			return "", false
		case *ast.SelectorExpr:
			if id, ok := ast.Unparen(e.X).(*ast.Ident); ok && id.Name == recvName {
				return e.Sel.Name, false
			}
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return "", false
		}
	}
}
