package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// determinismScope lists the simulator and experiment packages whose
// output must be a pure function of their inputs: sessions are pinned
// byte-identical across workers, arenas and backends, so wall-clock
// reads, the shared global RNG and map-order-dependent output are all
// bugs there even when they "work" locally.
var determinismScope = map[string]bool{
	"repro/internal/fx8":         true,
	"repro/internal/concentrix":  true,
	"repro/internal/monitor":     true,
	"repro/internal/core":        true,
	"repro/internal/workload":    true,
	"repro/internal/fxasm":       true,
	"repro/internal/experiments": true,
}

// DeterminismAnalyzer forbids the nondeterminism sources the
// simulator's byte-identity pins cannot tolerate.
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc: "forbid time.Now/time.Since, the global math/rand source, and " +
		"map iteration whose order leaks into output in simulator/experiment packages",
	Scope: func(path string) bool { return determinismScope[path] },
	Run:   runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeterministicCall(pass, n)
			case *ast.BlockStmt:
				checkStmtList(pass, n.List)
			case *ast.CaseClause:
				checkStmtList(pass, n.Body)
			case *ast.CommClause:
				checkStmtList(pass, n.Body)
			}
			return true
		})
	}
}

// checkDeterministicCall flags wall-clock reads and uses of the
// process-global math/rand source.
func checkDeterministicCall(pass *Pass, call *ast.CallExpr) {
	fn := calleeFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Only package-level functions matter here: methods on rand.Rand
	// or time.Time values are deterministic given their inputs.
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		return
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Now" || fn.Name() == "Since" {
			pass.Reportf(call.Pos(),
				"time.%s reads the wall clock; simulated time must come from the cycle counter", fn.Name())
		}
	case "math/rand", "math/rand/v2":
		// Constructors (New, NewPCG, NewSource, ...) build explicitly
		// seeded local generators and are fine; everything else draws
		// from the process-global source.
		if !strings.HasPrefix(fn.Name(), "New") {
			pass.Reportf(call.Pos(),
				"%s.%s uses the global math/rand source; use a seeded local generator (rand.New or internal/fastrand)",
				fn.Pkg().Name(), fn.Name())
		}
	}
}

// calleeFunc resolves a call's target to a *types.Func when it is a
// direct function or method reference.
func calleeFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.Pkg.Info.Uses[id].(*types.Func)
	return fn
}

// checkStmtList examines each range-over-map statement with its
// trailing statements in view, so the "collect keys, then sort"
// idiom can be recognised.
func checkStmtList(pass *Pass, stmts []ast.Stmt) {
	for i, stmt := range stmts {
		rs, ok := stmt.(*ast.RangeStmt)
		if !ok {
			continue
		}
		t := pass.Pkg.Info.TypeOf(rs.X)
		if t == nil {
			continue
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			continue
		}
		checkMapRange(pass, rs, stmts[i+1:])
	}
}

// sinkNames are method/function names that emit bytes in call order:
// writing them inside a map range bakes the iteration order into
// rendered tables, figures, hashes or wire output.
var sinkNames = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"WriteTo": true, "Encode": true,
	"Sum": true, "Sum32": true, "Sum64": true,
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	// appended maps the outer slice variables this loop appends map
	// values into, to the position of the first such append.
	appended := make(map[types.Object]ast.Node)

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := callName(n); ok && sinkNames[name] {
				pass.Reportf(n.Pos(),
					"%s inside map iteration makes output depend on map order; iterate over sorted keys", name)
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltin(pass, call, "append") || i >= len(n.Lhs) {
					continue
				}
				obj := rootObject(pass, n.Lhs[i])
				if obj == nil {
					continue
				}
				// Appends to loop-local slices order a value that
				// never escapes one iteration.
				if obj.Pos() >= rs.Pos() && obj.Pos() < rs.End() {
					continue
				}
				if _, seen := appended[obj]; !seen {
					appended[obj] = n
				}
			}
		}
		return true
	})

	for obj, site := range appended {
		if sortedAfter(pass, obj, rest) {
			continue
		}
		pass.Reportf(site.Pos(),
			"%s accumulates map-iteration values in map order; sort it before use or iterate over sorted keys", obj.Name())
	}
}

// sortedAfter reports whether any statement after the range loop
// sorts obj (a call into package sort or slices mentioning it).
func sortedAfter(pass *Pass, obj types.Object, rest []ast.Stmt) bool {
	for _, stmt := range rest {
		found := false
		ast.Inspect(stmt, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			fn := calleeFunc(pass, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			if p := fn.Pkg().Path(); p != "sort" && p != "slices" {
				return true
			}
			for _, arg := range call.Args {
				mentions := false
				ast.Inspect(arg, func(an ast.Node) bool {
					if id, ok := an.(*ast.Ident); ok && pass.Pkg.Info.Uses[id] == obj {
						mentions = true
					}
					return !mentions
				})
				if mentions {
					found = true
					break
				}
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// callName extracts the bare name a call invokes (method or function).
func callName(call *ast.CallExpr) (string, bool) {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name, true
	case *ast.SelectorExpr:
		return fun.Sel.Name, true
	}
	return "", false
}

// isBuiltin reports whether call invokes the named builtin.
func isBuiltin(pass *Pass, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.Pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// rootObject resolves the outermost variable an lvalue expression
// writes through: x, x.f, x[i], *x all root at x.
func rootObject(pass *Pass, expr ast.Expr) types.Object {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.Ident:
			return pass.Pkg.Info.Uses[e]
		case *ast.SelectorExpr:
			expr = e.X
		case *ast.IndexExpr:
			expr = e.X
		case *ast.StarExpr:
			expr = e.X
		case *ast.SliceExpr:
			expr = e.X
		default:
			return nil
		}
	}
}
