package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
)

// Artefact registries: every table and figure of the paper addressed
// by name, shared by the cmd tools and the fx8d service so both
// expose exactly the same artefact set.

// StudyRenderer names one artefact derived from a completed campaign.
type StudyRenderer struct {
	Name   string
	Render func(*core.Study) string
}

// Tables lists the study's tables in paper order.
func Tables() []StudyRenderer {
	return []StudyRenderer{
		{"1", func(st *core.Study) string { return Table1(st.Overall) }},
		{"2", Table2},
		{"3", Table3},
		{"4", Table4},
		{"a1", TableA1},
	}
}

// Figures lists the study's figures in paper order (3-14, then the
// appendix series).
func Figures() []StudyRenderer {
	return []StudyRenderer{
		{"3", Figure3},
		{"4", Figure4},
		{"5", Figure5},
		{"6", Figure6},
		{"7", Figure7},
		{"8", Figure8},
		{"9", Figure9},
		{"10", Figure10},
		{"11", Figure11},
		{"12", Figure12},
		{"13", Figure13},
		{"14", Figure14},
		{"A.1", FigureA1A2},
		{"A.3", FigureA3},
		{"A.4", FigureA4},
		{"A.5", FigureA5},
		{"B.1", FigureB1},
		{"B.2", FigureB2},
		{"B.3", FigureB3},
		{"B.4", FigureB4},
		{"B.5", FigureB5},
		{"B.6", FigureB6},
		{"B.7", FigureB7},
		{"B.8", FigureB8},
		{"B.9", FigureB9},
		{"B.10", FigureB10},
	}
}

// lookup finds a renderer by case-insensitive name.
func lookup(rs []StudyRenderer, name string) (StudyRenderer, bool) {
	for _, r := range rs {
		if strings.EqualFold(r.Name, name) {
			return r, true
		}
	}
	return StudyRenderer{}, false
}

// HasTable reports whether name addresses a registered table —
// validity without the campaign, so the service can answer
// conditional requests before computing anything.
func HasTable(name string) bool {
	_, ok := lookup(Tables(), name)
	return ok
}

// HasFigure is HasTable for figures.
func HasFigure(name string) bool {
	_, ok := lookup(Figures(), name)
	return ok
}

// RenderTable renders the named table from a completed campaign.
func RenderTable(name string, st *core.Study) (string, bool) {
	r, ok := lookup(Tables(), name)
	if !ok {
		return "", false
	}
	return r.Render(st), true
}

// RenderFigure renders the named figure from a completed campaign.
func RenderFigure(name string, st *core.Study) (string, bool) {
	r, ok := lookup(Figures(), name)
	if !ok {
		return "", false
	}
	return r.Render(st), true
}

// Names lists the names in a renderer set, for error messages and
// service discovery.
func Names(rs []StudyRenderer) []string {
	out := make([]string, len(rs))
	for i, r := range rs {
		out[i] = r.Name
	}
	return out
}

// Parameter-sweep configurations, addressable and cacheable the same
// way campaigns are.

// sweepNamespace versions the stored encoding of sweep results.
const sweepNamespace = "sweep/v1"

// SweepConfig names one parameter sweep: the swept parameter, its
// values, and the per-point sampling.  It is the content-address key
// of cached sweep results.
type SweepConfig struct {
	// Kind selects the swept parameter: "sched" (scheduling
	// quantum), "cache" (shared cache bytes) or "ce" (CE count).
	Kind string

	// Values are the parameter values, in output order.
	Values []int

	// Seed and Samples size each sweep point's session.
	Seed    uint64
	Samples int
}

// SweepKey returns the content address of a sweep's cached points —
// the same key CachedSweep reads and writes, exported so the
// coordinator can assemble a campaign's points under the address the
// service and CLI tools already look up.
func SweepKey(cfg SweepConfig) (string, error) {
	return store.Key(sweepNamespace, cfg)
}

// Units expands the sweep into its work units, in output order.
func (cfg SweepConfig) Units() []SweepUnit {
	return sweepUnits(cfg.Kind, cfg.Values, cfg.Seed, cfg.Samples)
}

// SweepKinds lists the valid sweep kinds.
func SweepKinds() []string { return []string{"sched", "cache", "ce"} }

// DefaultSweepValues returns the values the cmd tools sweep for a
// kind, or nil for an unknown kind.
func DefaultSweepValues(kind string) []int {
	switch kind {
	case "sched":
		return []int{10_000, 30_000, 100_000, 300_000, 1_000_000}
	case "cache":
		return []int{32 << 10, 64 << 10, 128 << 10, 256 << 10, 512 << 10}
	case "ce":
		return []int{1, 2, 4, 8}
	}
	return nil
}

// SweepTitle returns the rendered table title for a kind.
func SweepTitle(kind string) string {
	switch kind {
	case "sched":
		return "Concurrency measures vs. scheduling quantum."
	case "cache":
		return "System measures vs. shared cache size."
	case "ce":
		return "Workload measures vs. CE count (FX/1..FX/8)."
	}
	return ""
}

// RunSweepConfig executes a sweep on the local worker pool.  Results
// are identical for every worker count.
func RunSweepConfig(cfg SweepConfig, workers int) ([]SweepPoint, error) {
	return RunSweepRunner(cfg, workers, nil)
}

// RunSweepRunner executes a sweep on an arbitrary SweepRunner (nil
// selects the local pool), reassembling points in value order so
// sharded execution is byte-identical to local execution for every
// worker and backend count.  Like the campaign path, a defective
// fleet cannot corrupt results: a sharded run that fails or returns
// empty points (a version-skewed backend answering well-formed JSON)
// is recomputed locally before anything is memoized or stored.
func RunSweepRunner(cfg SweepConfig, workers int, r SweepRunner) ([]SweepPoint, error) {
	if DefaultSweepValues(cfg.Kind) == nil {
		return nil, fmt.Errorf("unknown sweep kind %q (valid kinds: %s)",
			cfg.Kind, strings.Join(SweepKinds(), ", "))
	}
	if r == nil {
		return runSweepKind(cfg.Kind, cfg.Values, cfg.Seed, cfg.Samples, workers, LocalSweepRunner())
	}
	pts, err := runSweepKind(cfg.Kind, cfg.Values, cfg.Seed, cfg.Samples, workers, r)
	if err == nil {
		err = validateSweepPoints(pts)
	}
	if err != nil {
		return runSweepKind(cfg.Kind, cfg.Values, cfg.Seed, cfg.Samples, workers, LocalSweepRunner())
	}
	return pts, nil
}

// validateSweepPoints rejects results a healthy executor cannot
// produce: RunSweepUnit labels every point, so an empty label marks a
// unit result that decoded from the wrong shape.
func validateSweepPoints(pts []SweepPoint) error {
	for i, p := range pts {
		if p.Label == "" {
			return fmt.Errorf("runner returned an empty result for sweep unit %d", i)
		}
	}
	return nil
}

// sweepMemo memoizes sweeps in-process, like core.CachedStudy does
// campaigns.  Keyed by the canonical store key because SweepConfig
// itself (a slice field) is not comparable.
var sweepMemo = engine.Memo[string, []SweepPoint]{MaxEntries: 16}

// CachedSweep returns the sweep for cfg through the same two tiers as
// campaigns: in-process memo, then the store (nil skips the disk
// tier), then RunSweepConfig.  hit reports whether any cache tier
// served the result.  Like the campaign cache, a store write failure
// never fails the call — the computed points are still returned.
func CachedSweep(s *store.Store, cfg SweepConfig, workers int) (pts []SweepPoint, hit bool, err error) {
	return CachedSweepRunner(s, cfg, workers, nil)
}

// CachedSweepRunner is CachedSweep computing through an arbitrary
// SweepRunner (nil selects the local pool) — the cmd tools' -backends
// path.  Cache tiers are consulted before the runner, so a memoized
// or stored sweep never touches a backend.
func CachedSweepRunner(s *store.Store, cfg SweepConfig, workers int, r SweepRunner) (pts []SweepPoint, hit bool, err error) {
	if DefaultSweepValues(cfg.Kind) == nil {
		// Reject unknown kinds before memoizing anything.
		_, err := RunSweepConfig(cfg, 1)
		return nil, false, err
	}
	key, err := store.Key(sweepNamespace, cfg)
	if err != nil {
		return nil, false, err
	}
	computed := false
	pts = sweepMemo.Get(key, func() []SweepPoint {
		var cached []SweepPoint
		if store.GetJSON(s, key, &cached) {
			return cached
		}
		computed = true
		// The kind was validated above and RunSweepRunner recomputes
		// locally on any sharded failure, so this cannot fail.
		out, _ := RunSweepRunner(cfg, workers, r)
		store.PutJSON(s, key, out)
		return out
	})
	return pts, !computed, nil
}
