package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
)

// testStudy returns the shared quick-scale campaign for all tests in
// the package.  core.CachedStudy runs it once even when parallel tests
// ask for it concurrently.
func testStudy(t *testing.T) *core.Study {
	t.Helper()
	return core.CachedStudy(core.QuickScale(), 0)
}

func TestTable1Rendering(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := Table1(st.Overall)
	for _, want := range []string{"num_0", "num_8", "prof_7", "ceop_READ.MISS", "membop_IP.READ"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
}

func TestTable2Rendering(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := Table2(st)
	for _, want := range []string{"c_0", "c_8", "Cw", "Pc"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 2 missing %q", want)
		}
	}
}

func TestTable3And4Rendering(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	for name, out := range map[string]string{"3": Table3(st), "4": Table4(st)} {
		for _, want := range []string{"Median Miss Rate", "Median CE Bus Busy", "Median Page Fault Rate", "R2"} {
			if !strings.Contains(out, want) {
				t.Errorf("Table %s missing %q", name, want)
			}
		}
	}
	if !strings.Contains(Table3(st), "Cw") || !strings.Contains(Table4(st), "Pc") {
		t.Error("model form lines missing")
	}
}

func TestTableA1Rendering(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := TableA1(st)
	if !strings.Contains(out, "Session") || !strings.Contains(out, "Mean Cw") {
		t.Error("Table A.1 headers missing")
	}
	// One row per random session.
	if got := strings.Count(out, "\n") - 6; got < len(st.Random) {
		t.Errorf("Table A.1 too few rows: %d", got)
	}
}

func TestFigure3ShowsDominantStates(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := Figure3(st)
	if !strings.Contains(out, "Figure 3") {
		t.Error("title missing")
	}
	// The paper's three dominant states: 0, 1 and 8 active.  8 must
	// dominate the interior states.
	if st.Overall.Num[8] < st.Overall.Num[4] {
		t.Error("8-active should dominate mid states")
	}
}

func TestFigure4And5(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	if !strings.Contains(Figure4(st), "Cw") {
		t.Error("Figure 4 missing label")
	}
	if !strings.Contains(Figure5(st), "Pc") {
		t.Error("Figure 5 missing label")
	}
}

func TestFigure6TwoActiveDominates(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := Figure6(st)
	if !strings.Contains(out, "Figure 6") {
		t.Error("title missing")
	}
	share2 := st.Transitions.TransitionShare(2)
	for j := 3; j <= 7; j++ {
		if st.Transitions.TransitionShare(j) > share2 {
			t.Errorf("share(%d) exceeds share(2)", j)
		}
	}
}

func TestFigure7DominantPair(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := Figure7(st)
	if !strings.Contains(out, "CE 0") || !strings.Contains(out, "CE 7") {
		t.Error("per-CE labels missing")
	}
	a, b := st.Transitions.DominantPair()
	pair := map[int]bool{a: true, b: true}
	if !pair[0] || !pair[7] {
		t.Errorf("dominant pair = %d,%d", a, b)
	}
}

func TestScatterFigures(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	for name, out := range map[string]string{
		"8": Figure8(st), "9": Figure9(st),
		"B.1": FigureB1(st), "B.2": FigureB2(st),
		"B.5": FigureB5(st), "B.6": FigureB6(st),
	} {
		if !strings.Contains(out, "LEGEND") {
			t.Errorf("Figure %s missing legend", name)
		}
		if !strings.Contains(out, "A") {
			t.Errorf("Figure %s appears empty", name)
		}
	}
}

func TestBandFigures(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	for name, out := range map[string]string{
		"10": Figure10(st), "11": Figure11(st),
		"B.3": FigureB3(st), "B.4": FigureB4(st),
		"B.7": FigureB7(st), "B.8": FigureB8(st),
	} {
		if strings.Count(out, "(a)")+strings.Count(out, "(b)")+strings.Count(out, "(c)") != 3 {
			t.Errorf("Figure %s should have three bands", name)
		}
		if !strings.Contains(out, "MEAN:") {
			t.Errorf("Figure %s missing band summaries", name)
		}
	}
}

func TestMissRateMedianRisesAcrossCwBands(t *testing.T) {
	t.Parallel()
	// The core claim of Figure 10: the median miss rate of the top
	// Cw band exceeds the bottom band's.
	st := testStudy(t)
	xs, ys := core.Columns(st.AllSamples, core.SelCw, core.SelMissRate)
	var lo, hi []float64
	for i := range xs {
		switch {
		case xs[i] <= 0.4:
			lo = append(lo, ys[i])
		case xs[i] > 0.8:
			hi = append(hi, ys[i])
		}
	}
	if len(lo) == 0 || len(hi) == 0 {
		t.Skip("bands unpopulated at quick scale")
	}
	loMed, hiMed := medianOf(lo), medianOf(hi)
	if hiMed <= loMed {
		t.Errorf("median miss rate: low band %v, high band %v; want increase", loMed, hiMed)
	}
}

func medianOf(v []float64) float64 {
	c := append([]float64(nil), v...)
	for i := range c {
		for j := i + 1; j < len(c); j++ {
			if c[j] < c[i] {
				c[i], c[j] = c[j], c[i]
			}
		}
	}
	return c[len(c)/2]
}

func TestModelFigures(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	for name, out := range map[string]string{
		"12": Figure12(st), "13": Figure13(st), "14": Figure14(st),
		"B.9": FigureB9(st), "B.10": FigureB10(st),
	} {
		if !strings.Contains(out, "Figure") {
			t.Errorf("Figure %s missing title", name)
		}
		if !strings.Contains(out, "o") && !strings.Contains(out, "unavailable") {
			t.Errorf("Figure %s missing curve", name)
		}
	}
}

func TestAppendixAFigures(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	if !strings.Contains(FigureA1A2(st), "Session") {
		t.Error("A.1/A.2 missing session titles")
	}
	if !strings.Contains(FigureA3(st), "BUS BUSY") {
		t.Error("A.3 missing label")
	}
	if !strings.Contains(FigureA4(st), "MISSRATE") {
		t.Error("A.4 missing label")
	}
	if !strings.Contains(FigureA5(st), "PF RATE") {
		t.Error("A.5 missing label")
	}
}

func TestHeadline(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := Headline(st)
	for _, want := range []string{"Workload Concurrency", "Mean Concurrency Level",
		"Transition 2-active", "Missrate model"} {
		if !strings.Contains(out, want) {
			t.Errorf("headline missing %q", want)
		}
	}
}

func TestFullReportContainsEverything(t *testing.T) {
	t.Parallel()
	st := testStudy(t)
	out := FullReport(st)
	wants := []string{
		"TABLE 1", "TABLE 2", "TABLE 3", "TABLE 4", "Table A.1",
		"Figure 3", "Figure 4", "Figure 5", "Figure 6", "Figure 7",
		"Figure 8", "Figure 9", "Figure 10", "Figure 11",
		"Figure 12", "Figure 13", "Figure 14",
		"Figure A.1", "Figure A.3", "Figure A.4", "Figure A.5",
		"Figure B.1", "Figure B.2", "Figure B.3", "Figure B.4",
		"Figure B.5", "Figure B.6", "Figure B.7", "Figure B.8",
		"Figure B.9", "Figure B.10",
		"HEADLINE RESULTS",
	}
	for _, w := range wants {
		if !strings.Contains(out, w) {
			t.Errorf("full report missing %q", w)
		}
	}
}
