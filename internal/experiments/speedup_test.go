package experiments

import (
	"strings"
	"testing"

	"repro/internal/fx8"
	"repro/internal/workload"
)

func TestKernelSpeedupTable(t *testing.T) {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 1}
	out := KernelSpeedup("DAXPY test", func() fx8.Stream {
		return workload.KernelProgram(workload.DAXPY(1024, layout), layout)
	})
	if !strings.Contains(out, "DAXPY test") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "Speedup Sp") || !strings.Contains(out, "Efficiency Ep") {
		t.Error("headers missing")
	}
	// Eight rows: one per cluster size.
	if got := strings.Count(out, "\n|") - 1; got != 8 {
		t.Errorf("rows = %d, want 8\n%s", got, out)
	}
}

func TestStandardKernelSpeedups(t *testing.T) {
	if testing.Short() {
		t.Skip("kernel sweep in -short mode")
	}
	out := StandardKernelSpeedups()
	for _, want := range []string{"DAXPY", "MatMul", "Solver sweep", "Stencil"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing kernel %q", want)
		}
	}
}

func TestProgramProfileReport(t *testing.T) {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 2}
	out := ProgramProfileReport("daxpy",
		workload.KernelProgram(workload.DAXPY(1024, layout), layout), 8)
	for _, want := range []string{"completed:        true", "Cw:", "Pc:", "missrate:", "loops/iterations: 1 /"} {
		if !strings.Contains(out, want) {
			t.Errorf("profile missing %q:\n%s", want, out)
		}
	}
}

func TestProgramProfileSerialHasNoPc(t *testing.T) {
	out := ProgramProfileReport("serial",
		workload.NewSerialPhase(workload.SerialParams{Instrs: 500, MemProb: 0.2, WSBase: 0x1000, Seed: 3}), 1)
	if strings.Contains(out, "Pc:") {
		t.Error("serial profile should omit Pc")
	}
}
