package experiments

import (
	"testing"

	"repro/internal/core"
)

// TestPaperScaleHeadline is the calibration regression test: it runs
// the full deterministic paper-scale campaign and pins the headline
// results to the bands EXPERIMENTS.md documents.  Any change to the
// simulator, OS, workload generator or methodology that moves the
// reproduction away from the paper fails here.
//
// The campaign takes ~20 s; skipped under -short.
func TestPaperScaleHeadline(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("paper-scale campaign in -short mode")
	}
	st := core.RunStudy(core.PaperScale())

	m := st.OverallMeasures
	if m.Cw < 0.28 || m.Cw > 0.42 {
		t.Errorf("Cw = %.3f, want ~0.35 (paper) within [0.28, 0.42]", m.Cw)
	}
	if !m.Defined {
		t.Fatal("Pc undefined at paper scale")
	}
	if m.Pc < 7.4 || m.Pc > 8.0 {
		t.Errorf("Pc = %.2f, want ~7.66 within [7.4, 8.0]", m.Pc)
	}
	if m.CCond[8] < 0.88 {
		t.Errorf("c_8|c = %.3f, want > 0.88 (paper: 0.93)", m.CCond[8])
	}

	// Transitions: 2-active is modal; CEs 0 and 7 dominate.
	tr := st.Transitions
	share2 := tr.TransitionShare(2)
	if share2 < 0.17 {
		t.Errorf("2-active share = %.2f, want > 0.17", share2)
	}
	for j := 3; j <= 7; j++ {
		if tr.TransitionShare(j) > share2 {
			t.Errorf("share(%d) = %.2f exceeds share(2) = %.2f", j, tr.TransitionShare(j), share2)
		}
	}
	a, b := tr.DominantPair()
	pair := map[int]bool{a: true, b: true}
	if !pair[0] || !pair[7] {
		t.Errorf("dominant transition pair = %d,%d, want 0 and 7", a, b)
	}

	// Chapter 5 models.
	miss := st.Models.VsCw[core.MeasureMissRate]
	if miss.Err != nil {
		t.Fatalf("miss-vs-Cw model failed: %v", miss.Err)
	}
	if miss.Fit.R2 < 0.6 {
		t.Errorf("miss-vs-Cw R2 = %.2f, want > 0.6 (paper: 0.74)", miss.Fit.R2)
	}
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	if atFull <= atHalf || ratio < 1.3 {
		t.Errorf("miss model increase %.4f -> %.4f (x%.1f), want rising substantially",
			atHalf, atFull, ratio)
	}
	bus := st.Models.VsCw[core.MeasureBusBusy]
	if bus.Err != nil || bus.Fit.R2 < 0.85 {
		t.Errorf("bus-vs-Cw fit R2 = %.2f, want > 0.85 (paper: 0.89)", bus.Fit.R2)
	}
	// Bus busy rises roughly linearly: the quadratic term stays small
	// relative to the linear term.
	if b1, b2 := bus.Fit.B1, bus.Fit.B2; b1 <= 0 || b2 > b1 {
		t.Errorf("bus model not near-linear: B1=%.3g B2=%.3g", b1, b2)
	}

	// The fault rate rises from the serial end into the concurrent
	// range: some interior median must exceed the Cw = 0 median.
	// (Both the paper's B.9 model and ours have negative quadratic
	// terms — the curve peaks rather than rising monotonically.)
	pf := st.Models.VsCw[core.MeasurePageFaultRate]
	if pf.Err == nil && len(pf.Points) >= 2 {
		base := pf.Points[0].Y
		peak := base
		for _, p := range pf.Points[1:] {
			if p.Y > peak {
				peak = p.Y
			}
		}
		if peak <= base {
			t.Errorf("page fault medians never rise above the serial level %.1f", base)
		}
	}
}
