package experiments

import (
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/store"
)

func registryStudy() *core.Study {
	return core.CachedStudy(core.QuickScale(), 0)
}

func TestRegistryCoversAllArtefacts(t *testing.T) {
	if len(Tables()) != 5 {
		t.Errorf("table registry has %d entries, want 5", len(Tables()))
	}
	if len(Figures()) != 26 {
		t.Errorf("figure registry has %d entries, want 26", len(Figures()))
	}
	st := registryStudy()
	for _, r := range append(Tables(), Figures()...) {
		if out := r.Render(st); out == "" {
			t.Errorf("artefact %q rendered empty", r.Name)
		}
	}
}

func TestRenderLookupIsCaseInsensitive(t *testing.T) {
	st := registryStudy()
	lower, ok1 := RenderTable("a1", st)
	upper, ok2 := RenderTable("A1", st)
	if !ok1 || !ok2 || lower != upper {
		t.Error("table lookup is case-sensitive")
	}
	if _, ok := RenderFigure("b.3", st); !ok {
		t.Error("figure lookup is case-sensitive")
	}
	if _, ok := RenderFigure("99", st); ok {
		t.Error("unknown figure resolved")
	}
}

func TestRunSweepConfigRejectsUnknownKind(t *testing.T) {
	_, err := RunSweepConfig(SweepConfig{Kind: "bogus"}, 1)
	if err == nil {
		t.Fatal("unknown kind accepted")
	}
	for _, k := range SweepKinds() {
		if !strings.Contains(err.Error(), k) {
			t.Errorf("error %q does not enumerate kind %q", err, k)
		}
	}
}

func TestCachedSweepTwoTier(t *testing.T) {
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := SweepConfig{Kind: "ce", Values: []int{1, 2}, Seed: 91, Samples: 1}
	pts, hit, err := CachedSweep(s, cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Error("cold sweep reported a cache hit")
	}
	if len(pts) != 2 || pts[0].Label != "CEs=1" {
		t.Fatalf("sweep points = %+v", pts)
	}
	// Memo tier.
	again, hit, err := CachedSweep(s, cfg, 0)
	if err != nil || !hit {
		t.Fatalf("warm sweep: hit=%v err=%v", hit, err)
	}
	if len(again) != len(pts) || again[0] != pts[0] {
		t.Error("memo tier returned different points")
	}
	// Disk tier: the store has the entry under the canonical key.
	key, _ := store.Key(sweepNamespace, cfg)
	var fromDisk []SweepPoint
	if !store.GetJSON(s, key, &fromDisk) {
		t.Fatal("sweep not written to the store")
	}
	if len(fromDisk) != len(pts) || fromDisk[1] != pts[1] {
		t.Error("disk tier drifted from computed points")
	}
	// Unknown kinds fail without poisoning the memo.
	if _, _, err := CachedSweep(s, SweepConfig{Kind: "nope"}, 0); err == nil {
		t.Error("unknown kind accepted by CachedSweep")
	}
}

func TestDefaultSweepValuesMatchKinds(t *testing.T) {
	for _, k := range SweepKinds() {
		if DefaultSweepValues(k) == nil {
			t.Errorf("kind %q has no default values", k)
		}
		if SweepTitle(k) == "" {
			t.Errorf("kind %q has no title", k)
		}
	}
	if DefaultSweepValues("bogus") != nil {
		t.Error("unknown kind has default values")
	}
}
