// Package experiments regenerates every table and figure of the
// study's evaluation from a completed measurement campaign
// (core.Study).  Each function returns the rendered artefact;
// FullReport concatenates them all in paper order.
package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/sas"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Table1 renders the hardware event counts derived from monitor data —
// the reduced event vocabulary of Table 1 applied to actual counts.
func Table1(e monitor.EventCounts) string {
	var rows [][]string
	for j, n := range e.Num {
		rows = append(rows, []string{fmt.Sprintf("num_%d", j),
			fmt.Sprintf("records with %d processors active", j), fmt.Sprintf("%d", n)})
	}
	for j, n := range e.Prof {
		rows = append(rows, []string{fmt.Sprintf("prof_%d", j),
			fmt.Sprintf("records with processor %d active", j), fmt.Sprintf("%d", n)})
	}
	for op := 0; op < trace.NumCEOps; op++ {
		rows = append(rows, []string{fmt.Sprintf("ceop_%s", trace.CEOp(op)),
			fmt.Sprintf("records with CE bus opcode = %s", trace.CEOp(op)),
			fmt.Sprintf("%d", e.CEOp[op])})
	}
	for op := 0; op < trace.NumMemOps; op++ {
		rows = append(rows, []string{fmt.Sprintf("membop_%s", trace.MemOp(op)),
			fmt.Sprintf("records with mem bus opcode = %s", trace.MemOp(op)),
			fmt.Sprintf("%d", e.MemOp[op])})
	}
	return sas.Table("TABLE 1. Hardware Event Counts.",
		[]string{"Name", "Event", "Count"}, rows)
}

// Table2 renders the overall concurrency measures for all random
// sessions: c_0..c_8, Cw, c_{j|c} and Pc.
func Table2(st *core.Study) string {
	m := st.OverallMeasures
	var rows [][]string
	for j := 0; j <= core.P; j++ {
		rows = append(rows, []string{
			fmt.Sprintf("c_%d", j),
			fmt.Sprintf("%.4f", m.C[j]),
			condStr(m, j),
		})
	}
	rows = append(rows, []string{"Cw", fmt.Sprintf("%.4f", m.Cw), ""})
	pc := "undefined"
	if m.Defined {
		pc = fmt.Sprintf("%.2f", m.Pc)
	}
	rows = append(rows, []string{"Pc", pc, ""})
	return sas.Table("TABLE 2. Overall Concurrency Measures for All Sessions.",
		[]string{"Measure", "Value", "c_j|c"}, rows)
}

func condStr(m core.Concurrency, j int) string {
	if !m.Defined || j < 2 {
		return ""
	}
	return fmt.Sprintf("%.4f", m.CCond[j])
}

// modelTable renders a Table 3/4-style regression summary.
func modelTable(title, axis string, models [core.NumSystemMeasures]core.Model) string {
	var rows [][]string
	for _, mdl := range models {
		if mdl.Err != nil {
			rows = append(rows, []string{mdl.Measure.String(), "-", "-", "-", "-",
				fmt.Sprintf("fit failed: %v", mdl.Err)})
			continue
		}
		rows = append(rows, []string{
			mdl.Measure.String(),
			sas.Sci(mdl.Fit.B1),
			sas.Sci(mdl.Fit.B2),
			sas.Sci(mdl.Fit.C),
			fmt.Sprintf("%.2f", mdl.Fit.R2),
			stats.RelationshipLabel(mdl.Fit.R2),
		})
	}
	return sas.Table(title,
		[]string{"System Measure", "B1", "B2", "C", "R2", "Relationship"}, rows) +
		fmt.Sprintf("\nModel form: measure = B1*%s + B2*%s^2 + C (section 5.2)\n", axis, axis)
}

// Table3 renders the regression models versus Workload Concurrency.
func Table3(st *core.Study) string {
	return modelTable("TABLE 3. Regression Models verses Cw.", "Cw", st.Models.VsCw)
}

// Table4 renders the regression models versus Mean Concurrency Level.
func Table4(st *core.Study) string {
	return modelTable("TABLE 4. Regression Models verses Pc.", "Pc", st.Models.VsPc)
}

// TableA1 renders the per-session mean concurrency measures of the
// random samples.
func TableA1(st *core.Study) string {
	var rows [][]string
	for _, ses := range st.Random {
		var cwSum, pcSum float64
		pcN := 0
		for _, m := range ses.Measures {
			cwSum += m.Conc.Cw
			if m.Conc.Defined {
				pcSum += m.Conc.Pc
				pcN++
			}
		}
		meanCw := cwSum / float64(len(ses.Measures))
		meanPc := "-"
		if pcN > 0 {
			meanPc = fmt.Sprintf("%.2f", pcSum/float64(pcN))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", ses.ID),
			fmt.Sprintf("%d", len(ses.Measures)),
			fmt.Sprintf("%.4f", meanCw),
			meanPc,
			fmt.Sprintf("%d", ses.TotalFaults),
		})
	}
	return sas.Table("Table A.1. Mean Concurrency Measures for Random Samples.",
		[]string{"Session", "Samples", "Mean Cw", "Mean Pc", "Page Faults"}, rows)
}

// Headline summarizes the study's key claims against the measured
// reproduction — the paper-vs-measured record for EXPERIMENTS.md.
func Headline(st *core.Study) string {
	var b strings.Builder
	m := st.OverallMeasures
	fmt.Fprintf(&b, "HEADLINE RESULTS (paper -> measured)\n\n")
	fmt.Fprintf(&b, "Workload Concurrency Cw:        0.35  -> %.3f\n", m.Cw)
	if m.Defined {
		fmt.Fprintf(&b, "Mean Concurrency Level Pc:      7.66  -> %.2f\n", m.Pc)
		fmt.Fprintf(&b, "c_8|c (8-active share):         0.93  -> %.3f\n", m.CCond[8])
	}
	tr := st.Transitions
	fmt.Fprintf(&b, "Transition 2-active share:      0.52  -> %.2f\n", tr.TransitionShare(2))
	a, c := tr.DominantPair()
	fmt.Fprintf(&b, "Dominant transition CEs:        7,0   -> %d,%d\n", a, c)
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	fmt.Fprintf(&b, "Missrate model Cw=0.5 -> 1.0:   .007 -> .024 (x3.4)  ->  %.4f -> %.4f (x%.1f)\n",
		atHalf, atFull, ratio)
	missCw := st.Models.VsCw[core.MeasureMissRate]
	missPc := st.Models.VsPc[core.MeasureMissRate]
	if missCw.Err == nil {
		fmt.Fprintf(&b, "Missrate-vs-Cw R2:              0.74  -> %.2f\n", missCw.Fit.R2)
	}
	if missPc.Err == nil {
		fmt.Fprintf(&b, "Missrate-vs-Pc R2:              0.07  -> %.2f\n", missPc.Fit.R2)
	}
	busCw := st.Models.VsCw[core.MeasureBusBusy]
	if busCw.Err == nil {
		fmt.Fprintf(&b, "BusBusy-vs-Cw R2:               0.89  -> %.2f\n", busCw.Fit.R2)
	}
	return b.String()
}
