package experiments

import (
	"strings"
	"testing"
)

func TestSchedulerSweep(t *testing.T) {
	t.Parallel()
	pts := SchedulerSweep([]int{20_000, 200_000}, 5, 4)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Cw < 0 || p.Cw > 1 {
			t.Errorf("%s: Cw = %v", p.Label, p.Cw)
		}
		if !strings.HasPrefix(p.Label, "quantum=") {
			t.Errorf("label = %q", p.Label)
		}
	}
}

func TestCESweepPcBounded(t *testing.T) {
	t.Parallel()
	pts := CESweep([]int{2, 4}, 5, 4)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Pc can never exceed the CE count.
	if pts[0].Pc > 2.01 {
		t.Errorf("2-CE Pc = %v", pts[0].Pc)
	}
	if pts[1].Pc > 4.01 {
		t.Errorf("4-CE Pc = %v", pts[1].Pc)
	}
}

func TestCacheSweepMissrateDecreases(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("cache sweep in -short mode")
	}
	pts := CacheSweep([]int{32 << 10, 512 << 10}, 5, 6)
	if pts[0].MissRate <= pts[1].MissRate {
		t.Errorf("missrate should fall with cache size: %v vs %v",
			pts[0].MissRate, pts[1].MissRate)
	}
}

func TestSweepTableRendering(t *testing.T) {
	t.Parallel()
	out := SweepTable("T", []SweepPoint{
		{Label: "a", Cw: 0.5, Pc: 7, BusBusy: 0.2, MissRate: 0.01, Faults: 3},
		{Label: "b"},
	})
	if !strings.Contains(out, "| a") || !strings.Contains(out, "7.00") {
		t.Errorf("table:\n%s", out)
	}
	// Zero Pc renders as "-".
	if !strings.Contains(out, "| -") {
		t.Errorf("undefined Pc should render as dash:\n%s", out)
	}
}
