package experiments

import (
	"context"
	"reflect"
	"strings"
	"testing"
)

func TestSchedulerSweep(t *testing.T) {
	t.Parallel()
	pts := SchedulerSweep([]int{20_000, 200_000}, 5, 4)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	for _, p := range pts {
		if p.Cw < 0 || p.Cw > 1 {
			t.Errorf("%s: Cw = %v", p.Label, p.Cw)
		}
		if !strings.HasPrefix(p.Label, "quantum=") {
			t.Errorf("label = %q", p.Label)
		}
	}
}

func TestCESweepPcBounded(t *testing.T) {
	t.Parallel()
	pts := CESweep([]int{2, 4}, 5, 4)
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	// Pc can never exceed the CE count.
	if pts[0].Pc > 2.01 {
		t.Errorf("2-CE Pc = %v", pts[0].Pc)
	}
	if pts[1].Pc > 4.01 {
		t.Errorf("4-CE Pc = %v", pts[1].Pc)
	}
}

func TestCacheSweepMissrateDecreases(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("cache sweep in -short mode")
	}
	pts := CacheSweep([]int{32 << 10, 512 << 10}, 5, 6)
	if pts[0].MissRate <= pts[1].MissRate {
		t.Errorf("missrate should fall with cache size: %v vs %v",
			pts[0].MissRate, pts[1].MissRate)
	}
}

// defectiveSweepRunner models a version-skewed backend: every unit
// "succeeds" with a zero-valued point (well-formed JSON of the wrong
// shape decodes exactly like this).
type defectiveSweepRunner struct{}

func (defectiveSweepRunner) RunUnit(_ context.Context, _ SweepUnit) (SweepPoint, error) {
	return SweepPoint{}, nil
}

// TestRunSweepRunnerRecoversFromDefectiveRunner pins the
// defective-fleet guard: invalid sharded results are recomputed
// locally, never returned (or cached) as-is.
func TestRunSweepRunnerRecoversFromDefectiveRunner(t *testing.T) {
	t.Parallel()
	cfg := SweepConfig{Kind: "ce", Values: []int{1, 2}, Seed: 5, Samples: 1}
	want, err := RunSweepConfig(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	got, err := RunSweepRunner(cfg, 0, defectiveSweepRunner{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("defective runner result not recomputed locally:\n%+v\nvs\n%+v", got, want)
	}
}

func TestSweepTableRendering(t *testing.T) {
	t.Parallel()
	out := SweepTable("T", []SweepPoint{
		{Label: "a", Cw: 0.5, Pc: 7, BusBusy: 0.2, MissRate: 0.01, Faults: 3},
		{Label: "b"},
	})
	if !strings.Contains(out, "| a") || !strings.Contains(out, "7.00") {
		t.Errorf("table:\n%s", out)
	}
	// Zero Pc renders as "-".
	if !strings.Contains(out, "| -") {
		t.Errorf("undefined Pc should render as dash:\n%s", out)
	}
}
