package experiments

import (
	"testing"
)

// BenchmarkSweepPoint measures one sweep point — the work unit the
// scheduler/cache/CE sweeps shard across fx8d backends.  make bench
// records it in BENCH_experiments.json for the CI regression gate.
func BenchmarkSweepPoint(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		u := SweepUnit{Kind: "sched", Value: 100_000, Seed: uint64(i), Samples: 1}
		if _, err := RunSweepUnit(u); err != nil {
			b.Fatal(err)
		}
	}
}
