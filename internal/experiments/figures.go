package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/sas"
	"repro/internal/stats"
)

// Figure3 charts the number of records with N processors active over
// all random sessions.
func Figure3(st *core.Study) string {
	return sas.Chart(stats.IntHistogram(st.Overall.Num[:]), sas.ChartOptions{
		Title:       "Figure 3. Number of Records with N Processors Active / All Sessions.",
		Label:       "N PROC",
		Width:       60,
		Descending:  true,
		ShowPercent: true,
	})
}

// Figure4 charts the distribution of samples by Workload Concurrency.
func Figure4(st *core.Study) string {
	xs, _ := core.Columns(st.RandomSamples, core.SelCw, core.SelCw)
	h := stats.NewHistogram(xs, 0, 1, 0.125)
	return sas.Chart(h, sas.ChartOptions{
		Title:          "Figure 4. Distribution of Samples by Workload Concurrency / All Sessions.",
		Label:          "Cw",
		Width:          50,
		MidpointFormat: "%.3f",
		ShowPercent:    true,
	})
}

// Figure5 charts the distribution of samples by Mean Concurrency
// Level (samples with concurrency only).
func Figure5(st *core.Study) string {
	conc, _ := core.SplitByConcurrency(st.RandomSamples)
	xs, _ := core.Columns(conc, core.SelPc, core.SelPc)
	h := stats.NewHistogram(xs, 2, 8, 0.5)
	return sas.Chart(h, sas.ChartOptions{
		Title:          "Figure 5. Distribution of Samples by Mean Concurrency Level / All Sessions.",
		Label:          "Pc",
		Width:          50,
		MidpointFormat: "%.2f",
		ShowPercent:    true,
	})
}

// Figure6 charts the number of records with N processors active during
// concurrency transition periods (states 7 down to 2).
func Figure6(st *core.Study) string {
	counts := make([]int, 6) // index 0 -> 2-active ... 5 -> 7-active
	labels := make([]string, 6)
	for j := 2; j <= 7; j++ {
		counts[j-2] = st.Transitions.Num[j]
		labels[j-2] = fmt.Sprintf("%d (%.1f%%)", j, 100*st.Transitions.TransitionShare(j))
	}
	// The study lists 7 first.
	rev := make([]int, 6)
	revLabels := make([]string, 6)
	for i := 0; i < 6; i++ {
		rev[i] = counts[5-i]
		revLabels[i] = labels[5-i]
	}
	return sas.BarChart(
		"Figure 6. Number of Records with N Processors Active / Concurrency Transition Periods.",
		revLabels, rev, 60)
}

// Figure7 charts per-processor activity during transition periods.
func Figure7(st *core.Study) string {
	labels := make([]string, core.P)
	counts := make([]int, core.P)
	for i := 0; i < core.P; i++ {
		labels[i] = fmt.Sprintf("CE %d", i)
		counts[i] = st.Transitions.Prof[i]
	}
	return sas.BarChart(
		"Figure 7. Number of Records Active by Processor Number / Concurrency Transition Periods.",
		labels, counts, 60)
}

// scatterFigure renders a measure-vs-axis scatter over the chapter 5
// sample population.
func scatterFigure(st *core.Study, title string,
	selX, selY func(core.SampleMeasures) (float64, bool),
	xlabel, ylabel string, xmin, xmax float64) string {
	xs, ys := core.Columns(st.AllSamples, selX, selY)
	return sas.Scatter(xs, ys, sas.PlotOptions{
		Title: title, XLabel: xlabel, YLabel: ylabel,
		Cols: 72, Rows: 26, XMin: xmin, XMax: xmax,
	})
}

// Figure8 scatters Missrate against Workload Concurrency.
func Figure8(st *core.Study) string {
	return scatterFigure(st, "Figure 8. Missrate vs. Workload Concurrency.",
		core.SelCw, core.SelMissRate, "WORKLOAD CONCURRENCY Cw", "MISSRATE", 0, 1)
}

// Figure9 scatters Missrate against Mean Concurrency Level.
func Figure9(st *core.Study) string {
	return scatterFigure(st, "Figure 9. Missrate vs. Mean Concurrency Level.",
		core.SelPc, core.SelMissRate, "MEAN CONCURRENCY LEVEL Pc", "MISSRATE", 2, 8)
}

// bandFigure renders the three banded distributions of a system
// measure (Figures 10, 11, B.3, B.4, B.7, B.8).
func bandFigure(st *core.Study, figure, measureName string,
	selX, selY func(core.SampleMeasures) (float64, bool),
	axis string, cuts [2]float64, lo, hi, step float64, format string) string {

	xs, ys := core.Columns(st.AllSamples, selX, selY)
	bands := stats.BandValues(xs, ys, cuts[:])
	names := [3]string{
		fmt.Sprintf("%s <= %g", axis, cuts[0]),
		fmt.Sprintf("%g < %s <= %g", cuts[0], axis, cuts[1]),
		fmt.Sprintf("%s > %g", axis, cuts[1]),
	}
	sub := [3]string{"(a)", "(b)", "(c)"}
	var b strings.Builder
	for i, vals := range bands {
		title := fmt.Sprintf("Figure %s %s. Distribution of %s, %s", figure, sub[i], measureName, names[i])
		h := stats.NewHistogram(vals, lo, hi, step)
		b.WriteString(sas.Chart(h, sas.ChartOptions{
			Title: title, Label: measureName, Width: 46,
			MidpointFormat: format, ShowPercent: true,
		}))
		if s, err := stats.Summarize(vals); err == nil {
			fmt.Fprintf(&b, "MEAN: %.4g   MEDIAN: %.4g   N: %d\n\n", s.Mean, s.Median, s.N)
		} else {
			b.WriteString("(no observations in band)\n\n")
		}
	}
	return b.String()
}

// Figure10 renders the Missrate distributions banded by Workload
// Concurrency (cuts at 0.4 and 0.8).
func Figure10(st *core.Study) string {
	return bandFigure(st, "10", "MISSRATE", core.SelCw, core.SelMissRate,
		"Cw", [2]float64{0.4, 0.8}, 0, 0.05, 0.005, "%.3f")
}

// Figure11 renders the Missrate distributions banded by Mean
// Concurrency Level (cuts at 6.0 and 7.5).
func Figure11(st *core.Study) string {
	return bandFigure(st, "11", "MISSRATE", core.SelPc, core.SelMissRate,
		"Pc", [2]float64{6.0, 7.5}, 0, 0.05, 0.005, "%.3f")
}

// modelFigure plots a fitted regression model with its median points.
func modelFigure(title string, mdl core.Model, xmin, xmax float64, xlabel, ylabel string) string {
	if mdl.Err != nil {
		return fmt.Sprintf("%s\n(model unavailable: %v)\n", title, mdl.Err)
	}
	return sas.ModelPlot(mdl.Fit, mdl.Points, sas.PlotOptions{
		Title: title, XLabel: xlabel, YLabel: ylabel,
		Cols: 70, Rows: 22, XMin: xmin, XMax: xmax,
	})
}

// Figure12 plots the Missrate-vs-Cw regression model.
func Figure12(st *core.Study) string {
	return modelFigure("Figure 12. Plot of Regression Model, Missrate vs. Cw.",
		st.Models.VsCw[core.MeasureMissRate], 0, 1, "Cw", "MISSRATE")
}

// Figure13 plots the CE-Bus-Busy-vs-Cw regression model.
func Figure13(st *core.Study) string {
	return modelFigure("Figure 13. Plot of Regression Model, CE Bus Busy vs. Cw.",
		st.Models.VsCw[core.MeasureBusBusy], 0, 1, "Cw", "CE BUS BUSY")
}

// Figure14 plots the CE-Bus-Busy-vs-Pc regression model.
func Figure14(st *core.Study) string {
	return modelFigure("Figure 14. Plot of Regression Model, CE Bus Busy vs. Pc.",
		st.Models.VsPc[core.MeasureBusBusy], 2, 8, "Pc", "CE BUS BUSY")
}

// FigureA1A2 renders the per-session active-processor histograms for
// the first and last random sessions (the study shows sessions 1 and
// 9 as examples of inter-session variation).
func FigureA1A2(st *core.Study) string {
	var b strings.Builder
	if len(st.Random) == 0 {
		return "(no sessions)\n"
	}
	pick := []*core.Session{st.Random[0]}
	if len(st.Random) > 1 {
		pick = append(pick, st.Random[len(st.Random)-1])
	}
	names := []string{"A.1", "A.2"}
	for i, ses := range pick {
		b.WriteString(sas.Chart(stats.IntHistogram(ses.Total.Num[:]), sas.ChartOptions{
			Title: fmt.Sprintf("Figure %s. Number of Records with N Processors Active / Session %d.",
				names[i], ses.ID),
			Label: "N PROC", Width: 56, Descending: true, ShowPercent: true,
		}))
		b.WriteString("\n")
	}
	return b.String()
}

// FigureA3 renders the distribution of samples by CE Bus Busy.
func FigureA3(st *core.Study) string {
	xs, _ := core.Columns(st.RandomSamples, core.SelBusBusy, core.SelBusBusy)
	return sas.Chart(stats.NewHistogram(xs, 0, 0.5, 0.05), sas.ChartOptions{
		Title: "Figure A.3. Distribution of Samples by CE Bus Busy.",
		Label: "BUS BUSY", Width: 46, MidpointFormat: "%.2f", ShowPercent: true,
	})
}

// FigureA4 renders the distribution of samples by Miss Rate.
func FigureA4(st *core.Study) string {
	xs, _ := core.Columns(st.RandomSamples, core.SelMissRate, core.SelMissRate)
	return sas.Chart(stats.NewHistogram(xs, 0, 0.10, 0.01), sas.ChartOptions{
		Title: "Figure A.4. Distribution of Samples by Miss Rate.",
		Label: "MISSRATE", Width: 46, MidpointFormat: "%.2f", ShowPercent: true,
	})
}

// FigureA5 renders the distribution of samples by Page Fault Rate.
func FigureA5(st *core.Study) string {
	xs, _ := core.Columns(st.RandomSamples, core.SelPageFaultRate, core.SelPageFaultRate)
	_, max, err := stats.MinMax(xs)
	if err != nil || max <= 0 {
		max = 1
	}
	step := max / 10
	return sas.Chart(stats.NewHistogram(xs, 0, max, step), sas.ChartOptions{
		Title: "Figure A.5. Distribution of Samples by Page Fault Rate.",
		Label: "PF RATE", Width: 46, MidpointFormat: "%.0f", ShowPercent: true,
	})
}

// FigureB1 scatters CE Bus Busy against Workload Concurrency.
func FigureB1(st *core.Study) string {
	return scatterFigure(st, "Figure B.1. CE Bus Busy vs. Workload Concurrency.",
		core.SelCw, core.SelBusBusy, "Cw", "CE BUS BUSY", 0, 1)
}

// FigureB2 scatters CE Bus Busy against Mean Concurrency Level.
func FigureB2(st *core.Study) string {
	return scatterFigure(st, "Figure B.2. CE Bus Busy vs. Mean Concurrency Level.",
		core.SelPc, core.SelBusBusy, "Pc", "CE BUS BUSY", 2, 8)
}

// FigureB3 renders CE Bus Busy distributions banded by Cw.
func FigureB3(st *core.Study) string {
	return bandFigure(st, "B.3", "CE BUS BUSY", core.SelCw, core.SelBusBusy,
		"Cw", [2]float64{0.4, 0.8}, 0, 0.5, 0.05, "%.2f")
}

// FigureB4 renders CE Bus Busy distributions banded by Pc.
func FigureB4(st *core.Study) string {
	return bandFigure(st, "B.4", "CE BUS BUSY", core.SelPc, core.SelBusBusy,
		"Pc", [2]float64{6.0, 7.5}, 0, 0.5, 0.05, "%.2f")
}

// FigureB5 scatters Page Fault Rate against Workload Concurrency.
func FigureB5(st *core.Study) string {
	return scatterFigure(st, "Figure B.5. Page Fault Rate vs. Workload Concurrency.",
		core.SelCw, core.SelPageFaultRate, "Cw", "PAGE FAULT RATE", 0, 1)
}

// FigureB6 scatters Page Fault Rate against Mean Concurrency Level.
func FigureB6(st *core.Study) string {
	return scatterFigure(st, "Figure B.6. Page Fault Rate vs. Mean Concurrency Level.",
		core.SelPc, core.SelPageFaultRate, "Pc", "PAGE FAULT RATE", 2, 8)
}

// pfMax returns a page-fault histogram ceiling from the data.
func pfMax(st *core.Study) float64 {
	xs, _ := core.Columns(st.AllSamples, core.SelPageFaultRate, core.SelPageFaultRate)
	_, max, err := stats.MinMax(xs)
	if err != nil || max <= 0 {
		return 1
	}
	return max
}

// FigureB7 renders Page Fault Rate distributions banded by Cw.
func FigureB7(st *core.Study) string {
	max := pfMax(st)
	return bandFigure(st, "B.7", "PF RATE", core.SelCw, core.SelPageFaultRate,
		"Cw", [2]float64{0.4, 0.8}, 0, max, max/8, "%.0f")
}

// FigureB8 renders Page Fault Rate distributions banded by Pc.
func FigureB8(st *core.Study) string {
	max := pfMax(st)
	return bandFigure(st, "B.8", "PF RATE", core.SelPc, core.SelPageFaultRate,
		"Pc", [2]float64{6.0, 7.5}, 0, max, max/8, "%.0f")
}

// FigureB9 plots the Page-Fault-Rate-vs-Cw regression model.
func FigureB9(st *core.Study) string {
	return modelFigure("Figure B.9. Plot of Regression Model, Page Fault Rate vs. Cw.",
		st.Models.VsCw[core.MeasurePageFaultRate], 0, 1, "Cw", "PAGE FAULT RATE")
}

// FigureB10 plots the Page-Fault-Rate-vs-Pc regression model.
func FigureB10(st *core.Study) string {
	return modelFigure("Figure B.10. Plot of Regression Model, Page Fault Rate vs. Pc.",
		st.Models.VsPc[core.MeasurePageFaultRate], 2, 8, "Pc", "PAGE FAULT RATE")
}

// FullReport renders every table and figure in paper order.
func FullReport(st *core.Study) string {
	sections := []struct {
		name string
		fn   func(*core.Study) string
	}{
		{"TABLE 2", Table2},
		{"FIGURE 3", Figure3},
		{"FIGURE 4", Figure4},
		{"FIGURE 5", Figure5},
		{"FIGURE 6", Figure6},
		{"FIGURE 7", Figure7},
		{"FIGURE 8", Figure8},
		{"FIGURE 9", Figure9},
		{"FIGURE 10", Figure10},
		{"FIGURE 11", Figure11},
		{"TABLE 3", Table3},
		{"TABLE 4", Table4},
		{"FIGURE 12", Figure12},
		{"FIGURE 13", Figure13},
		{"FIGURE 14", Figure14},
		{"TABLE A.1", TableA1},
		{"FIGURES A.1/A.2", FigureA1A2},
		{"FIGURE A.3", FigureA3},
		{"FIGURE A.4", FigureA4},
		{"FIGURE A.5", FigureA5},
		{"FIGURE B.1", FigureB1},
		{"FIGURE B.2", FigureB2},
		{"FIGURE B.3", FigureB3},
		{"FIGURE B.4", FigureB4},
		{"FIGURE B.5", FigureB5},
		{"FIGURE B.6", FigureB6},
		{"FIGURE B.7", FigureB7},
		{"FIGURE B.8", FigureB8},
		{"FIGURE B.9", FigureB9},
		{"FIGURE B.10", FigureB10},
	}
	var b strings.Builder
	b.WriteString(Table1(st.Overall))
	b.WriteString("\n")
	for _, s := range sections {
		b.WriteString(s.fn(st))
		b.WriteString("\n")
	}
	b.WriteString(Headline(st))
	return b.String()
}
