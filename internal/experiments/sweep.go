package experiments

import (
	"fmt"

	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/sas"
	"repro/internal/workload"
)

// Parameter sweeps: the study's conclusion singles out "the
// relationship of concurrency and software-level parameters (such as
// those related to job scheduling)" as future work, and its
// methodology section argues the technique generalizes to other
// machine configurations.  These sweeps run the measurement pipeline
// across scheduler quanta and machine configurations.

// SweepPoint is one measured configuration.
type SweepPoint struct {
	Label    string
	Cw       float64
	Pc       float64
	BusBusy  float64
	MissRate float64
	Faults   uint64
}

// sweepSession measures one session on a machine + OS configuration.
func sweepSession(cfg fx8.Config, sysCfg concentrix.SysConfig, seed uint64, samples int) SweepPoint {
	cfg.Seed = seed
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, sysCfg)
	spec := core.SessionSpec{
		Samples:  samples,
		Sampling: monitor.SampleSpec{Snapshots: 5, GapCycles: 20_000},
		Seed:     seed,
	}
	span := uint64(samples) * 5 * uint64(20_000+monitor.BufferDepth*monitor.Timebase)
	for _, p := range workload.NewGenerator(workload.PaperMix(seed)).Session(span) {
		sys.Submit(p)
	}
	ses := core.SampleSystem(sys, 1, spec)
	m := core.MeasuresFromCounts(ses.Total)
	return SweepPoint{
		Cw:       m.Cw,
		Pc:       m.Pc,
		BusBusy:  ses.Total.BusBusy(),
		MissRate: ses.Total.MissRate(),
		Faults:   ses.TotalFaults,
	}
}

// SchedulerSweep measures the workload at several scheduling quanta,
// one worker per CPU.
func SchedulerSweep(quanta []int, seed uint64, samples int) []SweepPoint {
	return SchedulerSweepWorkers(quanta, seed, samples, 0)
}

// SchedulerSweepWorkers is SchedulerSweep on a bounded worker pool;
// every sweep point is an independent machine, so points fan out over
// the engine and come back in quanta order regardless of worker count.
func SchedulerSweepWorkers(quanta []int, seed uint64, samples, workers int) []SweepPoint {
	return engine.Map(workers, len(quanta), func(i int) SweepPoint {
		sysCfg := concentrix.DefaultSysConfig()
		sysCfg.TimeSlice = quanta[i]
		pt := sweepSession(fx8.DefaultConfig(), sysCfg, seed, samples)
		pt.Label = fmt.Sprintf("quantum=%d", quanta[i])
		return pt
	})
}

// CacheSweep measures the workload at several shared cache sizes, one
// worker per CPU.
func CacheSweep(sizes []int, seed uint64, samples int) []SweepPoint {
	return CacheSweepWorkers(sizes, seed, samples, 0)
}

// CacheSweepWorkers is CacheSweep on a bounded worker pool.
func CacheSweepWorkers(sizes []int, seed uint64, samples, workers int) []SweepPoint {
	return engine.Map(workers, len(sizes), func(i int) SweepPoint {
		cfg := fx8.DefaultConfig()
		cfg.SharedCacheBytes = sizes[i]
		pt := sweepSession(cfg, concentrix.DefaultSysConfig(), seed, samples)
		pt.Label = fmt.Sprintf("cache=%dKB", sizes[i]>>10)
		return pt
	})
}

// CESweep measures the workload on FX/1-FX/8-style configurations, one
// worker per CPU.
func CESweep(counts []int, seed uint64, samples int) []SweepPoint {
	return CESweepWorkers(counts, seed, samples, 0)
}

// CESweepWorkers is CESweep on a bounded worker pool.
func CESweepWorkers(counts []int, seed uint64, samples, workers int) []SweepPoint {
	return engine.Map(workers, len(counts), func(i int) SweepPoint {
		n := counts[i]
		cfg := fx8.DefaultConfig()
		cfg.NumCE = n
		if cfg.ArbBias != nil {
			cfg.ArbBias = cfg.ArbBias[:n]
		}
		if cfg.CCBDispatchExtra != nil {
			cfg.CCBDispatchExtra = cfg.CCBDispatchExtra[:n]
		}
		pt := sweepSession(cfg, concentrix.DefaultSysConfig(), seed, samples)
		pt.Label = fmt.Sprintf("CEs=%d", n)
		return pt
	})
}

// SweepTable renders sweep points.
func SweepTable(title string, pts []SweepPoint) string {
	var rows [][]string
	for _, p := range pts {
		pc := "-"
		if p.Pc > 0 {
			pc = fmt.Sprintf("%.2f", p.Pc)
		}
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.3f", p.Cw),
			pc,
			fmt.Sprintf("%.3f", p.BusBusy),
			fmt.Sprintf("%.4f", p.MissRate),
			fmt.Sprintf("%d", p.Faults),
		})
	}
	return sas.Table(title,
		[]string{"Config", "Cw", "Pc", "BusBusy", "Missrate", "Faults"}, rows)
}
