package experiments

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/sas"
)

// Parameter sweeps: the study's conclusion singles out "the
// relationship of concurrency and software-level parameters (such as
// those related to job scheduling)" as future work, and its
// methodology section argues the technique generalizes to other
// machine configurations.  These sweeps run the measurement pipeline
// across scheduler quanta and machine configurations.

// SweepPoint is one measured configuration.
type SweepPoint struct {
	Label    string
	Cw       float64
	Pc       float64
	BusBusy  float64
	MissRate float64
	Faults   uint64
}

// sweepSession measures one session on a machine + OS configuration,
// drawing a pooled session arena so consecutive points on one worker
// reuse simulator state (a point that changes the hardware
// configuration rebuilds the machine; one that only changes OS or
// seed parameters resets it in place).
func sweepSession(cfg fx8.Config, sysCfg concentrix.SysConfig, seed uint64, samples int) SweepPoint {
	spec := core.SessionSpec{
		Samples:        samples,
		Sampling:       monitor.SampleSpec{Snapshots: 5, GapCycles: 20_000},
		Seed:           seed,
		WorkloadCycles: uint64(samples) * 5 * uint64(20_000+monitor.BufferDepth*monitor.Timebase),
	}
	ses := core.RunCustomSession(cfg, sysCfg, 1, spec)
	m := core.MeasuresFromCounts(ses.Total)
	return SweepPoint{
		Cw:       m.Cw,
		Pc:       m.Pc,
		BusBusy:  ses.Total.BusBusy(),
		MissRate: ses.Total.MissRate(),
		Faults:   ses.TotalFaults,
	}
}

// SweepUnit is one sweep point as a self-contained work unit: the
// swept parameter, its value, and the point's sampling.  Units are
// pure data — they serialize to JSON for fx8d's POST /v1/run/sweep
// endpoint — and the point they describe is a pure function of the
// unit, so a unit may be executed anywhere (or more than once) with
// an identical result.
type SweepUnit struct {
	// Kind selects the swept parameter: "sched", "cache" or "ce".
	Kind string `json:"kind"`

	// Value is this point's parameter value.
	Value int `json:"value"`

	Seed    uint64 `json:"seed"`
	Samples int    `json:"samples"`
}

// RunSweepUnit executes one sweep point in-process — the compute path
// shared by the local runner and fx8d's serving side.  Unit fields
// may arrive from the network, so out-of-range values are errors, not
// panics.
func RunSweepUnit(u SweepUnit) (SweepPoint, error) {
	if u.Value < 1 {
		return SweepPoint{}, fmt.Errorf("sweep value %d must be >= 1", u.Value)
	}
	if u.Samples < 1 {
		return SweepPoint{}, fmt.Errorf("sweep samples %d must be >= 1", u.Samples)
	}
	switch u.Kind {
	case "sched":
		sysCfg := concentrix.DefaultSysConfig()
		sysCfg.TimeSlice = u.Value
		pt := sweepSession(fx8.DefaultConfig(), sysCfg, u.Seed, u.Samples)
		pt.Label = fmt.Sprintf("quantum=%d", u.Value)
		return pt, nil
	case "cache":
		cfg := fx8.DefaultConfig()
		cfg.SharedCacheBytes = u.Value
		pt := sweepSession(cfg, concentrix.DefaultSysConfig(), u.Seed, u.Samples)
		pt.Label = fmt.Sprintf("cache=%dKB", u.Value>>10)
		return pt, nil
	case "ce":
		n := u.Value
		cfg := fx8.DefaultConfig()
		if n > cfg.NumCE {
			return SweepPoint{}, fmt.Errorf("ce count %d out of range 1..%d", n, cfg.NumCE)
		}
		cfg.NumCE = n
		if cfg.ArbBias != nil {
			cfg.ArbBias = cfg.ArbBias[:n]
		}
		if cfg.CCBDispatchExtra != nil {
			cfg.CCBDispatchExtra = cfg.CCBDispatchExtra[:n]
		}
		pt := sweepSession(cfg, concentrix.DefaultSysConfig(), u.Seed, u.Samples)
		pt.Label = fmt.Sprintf("CEs=%d", n)
		return pt, nil
	}
	return SweepPoint{}, fmt.Errorf("unknown sweep kind %q (valid kinds: %s)",
		u.Kind, strings.Join(SweepKinds(), ", "))
}

// SweepRunner executes sweep-point units: the engine's local pool, or
// the internal/remote client sharding across fx8d backends.
type SweepRunner = engine.Runner[SweepUnit, SweepPoint]

// LocalSweepRunner returns the in-process SweepRunner.
func LocalSweepRunner() SweepRunner {
	return engine.Local[SweepUnit, SweepPoint]{Fn: RunSweepUnit}
}

// sweepUnits expands (kind, values, seed, samples) into work units in
// output order.
func sweepUnits(kind string, values []int, seed uint64, samples int) []SweepUnit {
	units := make([]SweepUnit, len(values))
	for i, v := range values {
		units[i] = SweepUnit{Kind: kind, Value: v, Seed: seed, Samples: samples}
	}
	return units
}

// runSweepKind executes a sweep's units on an arbitrary runner,
// reassembled in value order.
func runSweepKind(kind string, values []int, seed uint64, samples, workers int, r SweepRunner) ([]SweepPoint, error) {
	return engine.RunAll(context.Background(), workers, sweepUnits(kind, values, seed, samples), r, nil)
}

// mustSweep unwraps runSweepKind for the fixed-kind wrappers below,
// whose kind is valid by construction and whose runner is local (and
// therefore cannot fail).
func mustSweep(pts []SweepPoint, err error) []SweepPoint {
	if err != nil {
		panic(err)
	}
	return pts
}

// SchedulerSweep measures the workload at several scheduling quanta,
// one worker per CPU.
func SchedulerSweep(quanta []int, seed uint64, samples int) []SweepPoint {
	return SchedulerSweepWorkers(quanta, seed, samples, 0)
}

// SchedulerSweepWorkers is SchedulerSweep on a bounded worker pool;
// every sweep point is an independent machine, so points fan out over
// the engine and come back in quanta order regardless of worker count.
func SchedulerSweepWorkers(quanta []int, seed uint64, samples, workers int) []SweepPoint {
	return mustSweep(runSweepKind("sched", quanta, seed, samples, workers, LocalSweepRunner()))
}

// CacheSweep measures the workload at several shared cache sizes, one
// worker per CPU.
func CacheSweep(sizes []int, seed uint64, samples int) []SweepPoint {
	return CacheSweepWorkers(sizes, seed, samples, 0)
}

// CacheSweepWorkers is CacheSweep on a bounded worker pool.
func CacheSweepWorkers(sizes []int, seed uint64, samples, workers int) []SweepPoint {
	return mustSweep(runSweepKind("cache", sizes, seed, samples, workers, LocalSweepRunner()))
}

// CESweep measures the workload on FX/1-FX/8-style configurations, one
// worker per CPU.
func CESweep(counts []int, seed uint64, samples int) []SweepPoint {
	return CESweepWorkers(counts, seed, samples, 0)
}

// CESweepWorkers is CESweep on a bounded worker pool.
func CESweepWorkers(counts []int, seed uint64, samples, workers int) []SweepPoint {
	return mustSweep(runSweepKind("ce", counts, seed, samples, workers, LocalSweepRunner()))
}

// SweepTable renders sweep points.
func SweepTable(title string, pts []SweepPoint) string {
	var rows [][]string
	for _, p := range pts {
		pc := "-"
		if p.Pc > 0 {
			pc = fmt.Sprintf("%.2f", p.Pc)
		}
		rows = append(rows, []string{
			p.Label,
			fmt.Sprintf("%.3f", p.Cw),
			pc,
			fmt.Sprintf("%.3f", p.BusBusy),
			fmt.Sprintf("%.4f", p.MissRate),
			fmt.Sprintf("%d", p.Faults),
		})
	}
	return sas.Table(title,
		[]string{"Config", "Cw", "Pc", "BusBusy", "Missrate", "Faults"}, rows)
}
