package experiments

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/sas"
	"repro/internal/workload"
)

// Speedup experiments: the study's background chapter defines Speedup
// and Efficiency and cites FX/8 measurements of them ([12]); this
// regenerates such curves for the repository's named kernels, as the
// complement the paper draws between program-level and workload-level
// evaluation.

// KernelSpeedup runs the named kernel at every cluster size and
// renders its speedup/efficiency table.
func KernelSpeedup(name string, build func() fx8.Stream) string {
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	pts := core.SpeedupCurve(cfg, build, 8, 20_000_000)
	var rows [][]string
	for _, p := range pts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Processors),
			fmt.Sprintf("%d", p.Cycles),
			fmt.Sprintf("%.2f", p.Speedup),
			fmt.Sprintf("%.2f", p.Efficiency),
		})
	}
	return sas.Table(fmt.Sprintf("Speedup of %s on the simulated FX/8.", name),
		[]string{"P", "Cycles", "Speedup Sp", "Efficiency Ep"}, rows)
}

// StandardKernelSpeedups renders speedup tables for the repository's
// named kernels: DAXPY, blocked matrix multiply, a dependence-carrying
// solver sweep, and a stencil.
func StandardKernelSpeedups() string {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 9}
	kernels := []struct {
		name  string
		build func() fx8.Stream
	}{
		{"DAXPY (n=4096)", func() fx8.Stream {
			return workload.KernelProgram(workload.DAXPY(4096, layout), layout)
		}},
		{"Blocked MatMul (n=256)", func() fx8.Stream {
			return workload.KernelProgram(workload.MatMulBlocked(256, layout), layout)
		}},
		{"Solver sweep (n=96, dist=8)", func() fx8.Stream {
			return workload.KernelProgram(workload.SolverSweep(96, 8, layout), layout)
		}},
		{"Stencil (n=96)", func() fx8.Stream {
			return workload.KernelProgram(workload.Stencil(96, layout), layout)
		}},
	}
	var b strings.Builder
	for _, k := range kernels {
		b.WriteString(KernelSpeedup(k.name, k.build))
		b.WriteString("\n")
	}
	return b.String()
}

// ProgramProfileReport runs the future-work per-program evaluation on
// one program and renders its profile.
func ProgramProfileReport(name string, serial fx8.Stream, clusterSize int) string {
	prof := core.ProfileProgram(fx8.DefaultConfig(), serial, clusterSize, 30_000_000)
	var b strings.Builder
	fmt.Fprintf(&b, "Program profile: %s (cluster size %d)\n\n", name, clusterSize)
	fmt.Fprintf(&b, "  completed:        %v\n", prof.Completed)
	fmt.Fprintf(&b, "  cycles:           %d\n", prof.Cycles)
	fmt.Fprintf(&b, "  loops/iterations: %d / %d\n", prof.LoopCount, prof.Iterations)
	fmt.Fprintf(&b, "  Cw:               %.3f\n", prof.Conc.Cw)
	if prof.Conc.Defined {
		fmt.Fprintf(&b, "  Pc:               %.2f\n", prof.Conc.Pc)
	}
	fmt.Fprintf(&b, "  CE bus busy:      %.3f\n", prof.BusBusy)
	fmt.Fprintf(&b, "  missrate:         %.4f\n", prof.MissRate)
	fmt.Fprintf(&b, "  page faults:      %d\n", prof.PageFaults)
	return b.String()
}
