package sas

import (
	"strings"
	"testing"

	"repro/internal/stats"
)

func TestChartBasic(t *testing.T) {
	h := stats.IntHistogram([]int{10, 0, 5})
	out := Chart(h, ChartOptions{
		Title: "TEST CHART", Label: "N", Width: 20, ShowPercent: true,
	})
	if !strings.Contains(out, "TEST CHART") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "FREQ") || !strings.Contains(out, "CUM.PCT") {
		t.Error("headers missing")
	}
	lines := strings.Split(out, "\n")
	// Find the row for midpoint 0 (freq 10): it should carry the
	// full-width bar.
	var bar0, bar2 string
	for _, l := range lines {
		if strings.HasPrefix(l, "0 ") || strings.HasPrefix(l, "0\t") || strings.HasPrefix(l, "0  ") {
			bar0 = l
		}
		if strings.HasPrefix(l, "2 ") || strings.HasPrefix(l, "2  ") {
			bar2 = l
		}
	}
	if strings.Count(bar0, "*") != 20 {
		t.Errorf("max bin should have full bar: %q", bar0)
	}
	if strings.Count(bar2, "*") != 10 {
		t.Errorf("half bin should have half bar: %q", bar2)
	}
}

func TestChartDescending(t *testing.T) {
	h := stats.IntHistogram([]int{1, 2, 3})
	out := Chart(h, ChartOptions{Label: "N", Width: 10, Descending: true})
	i0 := strings.Index(out, "\n0 ")
	i2 := strings.Index(out, "\n2 ")
	if i0 < 0 || i2 < 0 {
		t.Fatalf("rows missing:\n%s", out)
	}
	if i2 > i0 {
		t.Error("descending chart should list midpoint 2 before 0")
	}
}

func TestChartNonzeroBinAlwaysVisible(t *testing.T) {
	h := stats.IntHistogram([]int{1000, 1})
	out := Chart(h, ChartOptions{Label: "N", Width: 30})
	for _, l := range strings.Split(out, "\n") {
		if strings.HasPrefix(l, "1 ") && !strings.Contains(l, "*") {
			t.Error("non-zero bin rendered without a star")
		}
	}
}

func TestChartEmpty(t *testing.T) {
	var h stats.Histogram
	out := Chart(h, ChartOptions{Label: "N"})
	if out == "" {
		t.Error("empty chart should still render headers")
	}
}

func TestBarChart(t *testing.T) {
	out := BarChart("PER-CE", []string{"CE0", "CE1"}, []int{4, 8}, 16)
	if !strings.Contains(out, "PER-CE") || !strings.Contains(out, "CE1") {
		t.Error("labels missing")
	}
	lines := strings.Split(out, "\n")
	var l0, l1 string
	for _, l := range lines {
		if strings.HasPrefix(l, "CE0") {
			l0 = l
		}
		if strings.HasPrefix(l, "CE1") {
			l1 = l
		}
	}
	if strings.Count(l1, "*") != 16 || strings.Count(l0, "*") != 8 {
		t.Errorf("bar widths wrong:\n%s", out)
	}
}

func TestScatterLetterCoding(t *testing.T) {
	// Three identical points in one cell -> C; one lone point -> A.
	xs := []float64{0.5, 0.5, 0.5, 0.1}
	ys := []float64{0.5, 0.5, 0.5, 0.1}
	out := Scatter(xs, ys, PlotOptions{
		Title: "T", Cols: 20, Rows: 10, XMin: 0, XMax: 1, YMin: 0, YMax: 1,
	})
	if !strings.Contains(out, "C") {
		t.Errorf("triple point should render as C:\n%s", out)
	}
	if !strings.Contains(out, "A") {
		t.Errorf("single point should render as A:\n%s", out)
	}
	if !strings.Contains(out, "LEGEND") {
		t.Error("legend missing")
	}
}

func TestScatterOverflowZ(t *testing.T) {
	var xs, ys []float64
	for i := 0; i < 30; i++ {
		xs = append(xs, 0.5)
		ys = append(ys, 0.5)
	}
	out := Scatter(xs, ys, PlotOptions{Cols: 10, Rows: 5, XMin: 0, XMax: 1, YMin: 0, YMax: 1})
	if !strings.Contains(out, "Z") {
		t.Error("26+ observations should render as Z")
	}
}

func TestScatterEmpty(t *testing.T) {
	out := Scatter(nil, nil, PlotOptions{Title: "E"})
	if !strings.Contains(out, "no observations") {
		t.Error("empty scatter should say so")
	}
}

func TestScatterAutoRange(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{10, 20, 30}
	out := Scatter(xs, ys, PlotOptions{Cols: 30, Rows: 10})
	// All three observations must appear (skip the legend line).
	body := out[strings.Index(out, "\n"):]
	if strings.Count(body, "A") != 3 {
		t.Errorf("want 3 A marks:\n%s", out)
	}
}

func TestModelPlot(t *testing.T) {
	m := stats.QuadModel{B1: 0.01, B2: 0.014, C: 0.002}
	pts := []stats.MedianPoint{{X: 0.5, Y: 0.012}, {X: 1.0, Y: 0.026}}
	out := ModelPlot(m, pts, PlotOptions{
		Title: "MODEL", XLabel: "Cw", YLabel: "MISSRATE",
		Cols: 40, Rows: 12, XMin: 0, XMax: 1,
	})
	if !strings.Contains(out, "o") {
		t.Error("model curve missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("median points missing")
	}
	if !strings.Contains(out, "Cw") {
		t.Error("axis label missing")
	}
}

func TestTable(t *testing.T) {
	out := Table("TITLE", []string{"A", "LONGHEADER"}, [][]string{
		{"1", "2"},
		{"333", "4"},
	})
	if !strings.Contains(out, "TITLE") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "LONGHEADER") {
		t.Error("header missing")
	}
	if !strings.Contains(out, "| 333") {
		t.Error("row missing")
	}
	// Every data line has the same width.
	var widths []int
	for _, l := range strings.Split(strings.TrimSpace(out), "\n") {
		if strings.HasPrefix(l, "|") || strings.HasPrefix(l, "+") {
			widths = append(widths, len(l))
		}
	}
	for _, w := range widths {
		if w != widths[0] {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
}

func TestTableShortRow(t *testing.T) {
	out := Table("", []string{"A", "B"}, [][]string{{"only"}})
	if !strings.Contains(out, "only") {
		t.Error("short row should render")
	}
}

func TestSci(t *testing.T) {
	cases := []struct {
		v    float64
		want string
	}{
		{0, "0"},
		{0.0257, "2.57 x 10^-2"},
		{-3.30e-3, "-3.30 x 10^-3"},
		{1.07e3, "1.07 x 10^3"},
	}
	for _, c := range cases {
		if got := Sci(c.v); got != c.want {
			t.Errorf("Sci(%v) = %q, want %q", c.v, got, c.want)
		}
	}
}
