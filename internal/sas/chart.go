// Package sas renders analysis results in the style of the SAS
// procedures the study used on its IBM 4381: horizontal star frequency
// charts with FREQ / CUM.FREQ / PERCENT / CUM.PERCENT columns (PROC
// CHART), letter-coded scatter plots where A is one observation, B two
// and so on (PROC PLOT), fitted-model curves, and fixed-width tables.
package sas

import (
	"fmt"
	"strings"

	"repro/internal/stats"
)

// ChartOptions controls star-chart rendering.
type ChartOptions struct {
	// Title is printed above the chart.
	Title string

	// Label names the midpoint column (e.g. "NUMBER OF PROCESSORS").
	Label string

	// Width is the maximum star-bar width in characters.
	Width int

	// MidpointFormat formats midpoints (default "%g").
	MidpointFormat string

	// ShowPercent adds PERCENT / CUM.PERCENT columns.
	ShowPercent bool

	// Descending lists bins from the highest midpoint down, as the
	// study's processor-count charts do.
	Descending bool
}

// Chart renders a histogram as a SAS-style horizontal star chart.
func Chart(h stats.Histogram, opt ChartOptions) string {
	if opt.Width <= 0 {
		opt.Width = 60
	}
	if opt.MidpointFormat == "" {
		opt.MidpointFormat = "%g"
	}
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n\n", opt.Title)
	}
	header := fmt.Sprintf("%-12s|%-*s", opt.Label, opt.Width, "")
	if opt.ShowPercent {
		fmt.Fprintf(&b, "%s %8s %8s %8s %8s\n", header, "FREQ", "CUM.FREQ", "PERCENT", "CUM.PCT")
	} else {
		fmt.Fprintf(&b, "%s %8s %8s\n", header, "FREQ", "CUM.FREQ")
	}

	maxFreq := h.MaxFreq()
	bins := h.Bins
	idx := make([]int, len(bins))
	for i := range idx {
		if opt.Descending {
			idx[i] = len(bins) - 1 - i
		} else {
			idx[i] = i
		}
	}
	for _, i := range idx {
		bin := bins[i]
		stars := 0
		if maxFreq > 0 {
			stars = bin.Freq * opt.Width / maxFreq
		}
		if bin.Freq > 0 && stars == 0 {
			stars = 1
		}
		mid := fmt.Sprintf(opt.MidpointFormat, bin.Midpoint)
		row := fmt.Sprintf("%-12s|%-*s", mid, opt.Width, strings.Repeat("*", stars))
		if opt.ShowPercent {
			fmt.Fprintf(&b, "%s %8d %8d %8.2f %8.2f\n",
				row, bin.Freq, bin.CumFreq, bin.Percent, bin.CumPercent)
		} else {
			fmt.Fprintf(&b, "%s %8d %8d\n", row, bin.Freq, bin.CumFreq)
		}
	}
	return b.String()
}

// BarChart renders labeled integer counts (e.g. per-processor
// activity) as a star chart without cumulative columns.
func BarChart(title string, labels []string, counts []int, width int) string {
	if width <= 0 {
		width = 60
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n\n", title)
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		stars := 0
		if max > 0 {
			stars = c * width / max
		}
		if c > 0 && stars == 0 {
			stars = 1
		}
		label := ""
		if i < len(labels) {
			label = labels[i]
		}
		fmt.Fprintf(&b, "%-12s|%-*s %10d\n", label, width, strings.Repeat("*", stars), c)
	}
	return b.String()
}
