package sas

import (
	"fmt"
	"strconv"
	"strings"
)

// Table renders a fixed-width table with a title, column headers and
// string rows, in the style of the study's numbered tables.
func Table(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cellText := range row {
			if i < len(widths) && len(cellText) > widths[i] {
				widths[i] = len(cellText)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n\n", title)
	}
	writeRow := func(cells []string) {
		for i := range headers {
			cellText := ""
			if i < len(cells) {
				cellText = cells[i]
			}
			fmt.Fprintf(&b, "| %-*s ", widths[i], cellText)
		}
		b.WriteString("|\n")
	}
	rule := func() {
		for i := range headers {
			b.WriteString("+")
			b.WriteString(strings.Repeat("-", widths[i]+2))
		}
		b.WriteString("+\n")
	}
	rule()
	writeRow(headers)
	rule()
	for _, row := range rows {
		writeRow(row)
	}
	rule()
	return b.String()
}

// Sci formats a value in the scientific notation the study's model
// tables use (e.g. 2.57 x 10^-2).
func Sci(v float64) string {
	if v == 0 {
		return "0"
	}
	s := fmt.Sprintf("%.2e", v)
	mant, exp, ok := strings.Cut(s, "e")
	if !ok {
		return s
	}
	e, err := strconv.Atoi(exp)
	if err != nil {
		return s
	}
	return fmt.Sprintf("%s x 10^%d", mant, e)
}
