package sas

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/stats"
)

// PlotOptions controls scatter and model-curve rendering.
type PlotOptions struct {
	Title  string
	XLabel string
	YLabel string

	// Grid dimensions in character cells.
	Cols, Rows int

	// Axis ranges; when XMax <= XMin (or YMax <= YMin) the range is
	// taken from the data.
	XMin, XMax float64
	YMin, YMax float64
}

func (o *PlotOptions) defaults() {
	if o.Cols <= 0 {
		o.Cols = 70
	}
	if o.Rows <= 0 {
		o.Rows = 24
	}
}

// Scatter renders a letter-coded scatter plot in the style of SAS PROC
// PLOT: A marks one observation in a cell, B two, up to Z for 26 or
// more.
func Scatter(xs, ys []float64, opt PlotOptions) string {
	opt.defaults()
	if len(xs) != len(ys) || len(xs) == 0 {
		return opt.Title + "\n(no observations)\n"
	}
	xmin, xmax := rangeOf(xs, opt.XMin, opt.XMax)
	ymin, ymax := rangeOf(ys, opt.YMin, opt.YMax)

	cells := make([]int, opt.Cols*opt.Rows)
	for i := range xs {
		c, r, ok := cell(xs[i], ys[i], xmin, xmax, ymin, ymax, opt.Cols, opt.Rows)
		if ok {
			cells[r*opt.Cols+c]++
		}
	}
	return render(cells, opt, xmin, xmax, ymin, ymax,
		"LEGEND: A = 1 OBS, B = 2 OBS, ETC.")
}

// ModelPlot renders a fitted quadratic's curve over the x range with
// 'o' markers, as the study's regression model figures do, optionally
// overlaying the median points it was fitted to ('*').
func ModelPlot(m stats.QuadModel, pts []stats.MedianPoint, opt PlotOptions) string {
	opt.defaults()
	xmin, xmax := opt.XMin, opt.XMax
	if xmax <= xmin {
		xmin, xmax = 0, 1
	}
	// Evaluate the curve to find the y range if not fixed.
	var ys []float64
	for c := 0; c < opt.Cols; c++ {
		x := xmin + (xmax-xmin)*float64(c)/float64(opt.Cols-1)
		ys = append(ys, m.Eval(x))
	}
	for _, p := range pts {
		ys = append(ys, p.Y)
	}
	ymin, ymax := rangeOf(ys, opt.YMin, opt.YMax)

	cells := make([]int, opt.Cols*opt.Rows)
	const curveMark, pointMark = -1, -2
	for c := 0; c < opt.Cols; c++ {
		x := xmin + (xmax-xmin)*float64(c)/float64(opt.Cols-1)
		_, r, ok := cell(x, m.Eval(x), xmin, xmax, ymin, ymax, opt.Cols, opt.Rows)
		if ok {
			cells[r*opt.Cols+c] = curveMark
		}
	}
	for _, p := range pts {
		c, r, ok := cell(p.X, p.Y, xmin, xmax, ymin, ymax, opt.Cols, opt.Rows)
		if ok {
			cells[r*opt.Cols+c] = pointMark
		}
	}
	return render(cells, opt, xmin, xmax, ymin, ymax,
		"LEGEND: o = MODEL, * = MEDIAN POINT")
}

func rangeOf(v []float64, lo, hi float64) (float64, float64) {
	if hi > lo {
		return lo, hi
	}
	min, max, err := stats.MinMax(v)
	if err != nil {
		return 0, 1
	}
	if min == max {
		return min - 1, max + 1
	}
	// Pad 5% so extremes stay visible.
	pad := (max - min) * 0.05
	return min - pad, max + pad
}

func cell(x, y, xmin, xmax, ymin, ymax float64, cols, rows int) (c, r int, ok bool) {
	if math.IsNaN(x) || math.IsNaN(y) {
		return 0, 0, false
	}
	fx := (x - xmin) / (xmax - xmin)
	fy := (y - ymin) / (ymax - ymin)
	if fx < 0 || fx > 1 || fy < 0 || fy > 1 {
		return 0, 0, false
	}
	c = int(fx * float64(cols-1))
	r = rows - 1 - int(fy*float64(rows-1))
	return c, r, true
}

func render(cells []int, opt PlotOptions, xmin, xmax, ymin, ymax float64, legend string) string {
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	fmt.Fprintf(&b, "%s\n\n", legend)
	for r := 0; r < opt.Rows; r++ {
		y := ymax - (ymax-ymin)*float64(r)/float64(opt.Rows-1)
		fmt.Fprintf(&b, "%10.4g +", y)
		for c := 0; c < opt.Cols; c++ {
			n := cells[r*opt.Cols+c]
			switch {
			case n == 0:
				b.WriteByte(' ')
			case n == -1:
				b.WriteByte('o')
			case n == -2:
				b.WriteByte('*')
			case n >= 26:
				b.WriteByte('Z')
			default:
				b.WriteByte(byte('A' + n - 1))
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%10s +%s\n", "", strings.Repeat("-", opt.Cols))
	fmt.Fprintf(&b, "%10s  %-10.4g%*s%10.4g\n", "", xmin, opt.Cols-20, "", xmax)
	if opt.XLabel != "" || opt.YLabel != "" {
		fmt.Fprintf(&b, "%10s  X: %s   Y: %s\n", "", opt.XLabel, opt.YLabel)
	}
	return b.String()
}
