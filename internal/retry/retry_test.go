package retry

import (
	"context"
	"errors"
	"testing"
	"time"
)

// noSleep makes Do/Wait instantaneous while still honoring ctx.
func noSleep(ctx context.Context, d time.Duration) error { return ctx.Err() }

func TestDelayDeterministicAndCapped(t *testing.T) {
	p := Policy{BaseDelay: 10 * time.Millisecond, MaxDelay: 80 * time.Millisecond, Seed: 42}
	for attempt := 1; attempt <= 10; attempt++ {
		d1 := p.Delay(attempt)
		d2 := p.Delay(attempt)
		if d1 != d2 {
			t.Fatalf("attempt %d: Delay not deterministic: %v vs %v", attempt, d1, d2)
		}
		base := 10 * time.Millisecond << (attempt - 1)
		if base > 80*time.Millisecond {
			base = 80 * time.Millisecond
		}
		if d1 < base/2 || d1 > base {
			t.Fatalf("attempt %d: delay %v outside [%v, %v]", attempt, d1, base/2, base)
		}
	}
	if got := p.Delay(100); got > 80*time.Millisecond {
		t.Fatalf("delay %v exceeds cap despite huge attempt", got)
	}
}

func TestDelaySeedChangesJitter(t *testing.T) {
	a := Policy{BaseDelay: time.Second, Seed: 1}
	b := Policy{BaseDelay: time.Second, Seed: 2}
	same := 0
	for attempt := 1; attempt <= 8; attempt++ {
		if a.Delay(attempt) == b.Delay(attempt) {
			same++
		}
	}
	if same == 8 {
		t.Fatal("different seeds produced identical jitter at every attempt")
	}
}

func TestDoSucceedsAfterRetries(t *testing.T) {
	var m Metrics
	p := Policy{MaxAttempts: 5, Sleep: noSleep, Metrics: &m}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	s := m.Snapshot()
	if s.Attempts != 3 || s.Retries != 2 || s.GiveUps != 0 || s.BackoffWaits != 2 {
		t.Fatalf("metrics = %+v", s)
	}
}

func TestDoGivesUpAtMaxAttempts(t *testing.T) {
	var m Metrics
	p := Policy{MaxAttempts: 3, Sleep: noSleep, Metrics: &m}
	calls := 0
	sentinel := errors.New("still broken")
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return sentinel
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want %v", err, sentinel)
	}
	if calls != 3 {
		t.Fatalf("calls = %d, want 3", calls)
	}
	if s := m.Snapshot(); s.GiveUps != 1 {
		t.Fatalf("give_ups = %d, want 1", s.GiveUps)
	}
}

func TestDoStopsOnPermanent(t *testing.T) {
	p := Policy{MaxAttempts: 5, Sleep: noSleep}
	calls := 0
	base := errors.New("bad config")
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		return Permanent(base)
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (permanent must not retry)", calls)
	}
	if !errors.Is(err, base) {
		t.Fatalf("err = %v, want wrapped %v", err, base)
	}
	if !IsPermanent(err) {
		t.Fatal("IsPermanent lost through return")
	}
}

func TestDoStopsOnContextCancel(t *testing.T) {
	p := Policy{MaxAttempts: 100, Sleep: noSleep}
	ctx, cancel := context.WithCancel(context.Background())
	calls := 0
	err := p.Do(ctx, func(ctx context.Context) error {
		calls++
		if calls == 2 {
			cancel()
		}
		return errors.New("transient")
	})
	if err == nil {
		t.Fatal("Do succeeded after cancel")
	}
	if calls > 3 {
		t.Fatalf("calls = %d after cancel, want <= 3", calls)
	}
}

func TestDoHonorsBudget(t *testing.T) {
	p := Policy{MaxAttempts: 1000, Budget: time.Nanosecond, Sleep: noSleep}
	calls := 0
	p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		time.Sleep(time.Millisecond)
		return errors.New("transient")
	})
	if calls != 1 {
		t.Fatalf("calls = %d, want 1 (budget exhausted after first attempt)", calls)
	}
}

func TestDoPerAttemptTimeout(t *testing.T) {
	p := Policy{MaxAttempts: 2, PerAttempt: 5 * time.Millisecond, Sleep: noSleep}
	calls := 0
	err := p.Do(context.Background(), func(ctx context.Context) error {
		calls++
		<-ctx.Done()
		return ctx.Err()
	})
	if calls != 2 {
		t.Fatalf("calls = %d, want 2 (per-attempt timeout is retryable)", calls)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestWaitUsesAfterHint(t *testing.T) {
	var waited time.Duration
	p := Policy{
		BaseDelay: time.Hour, // would dominate if the hint were ignored
		MaxDelay:  time.Hour,
		Sleep: func(ctx context.Context, d time.Duration) error {
			waited = d
			return nil
		},
	}
	hint, ok := AfterHint(WithAfter(errors.New("shed"), 123*time.Millisecond))
	if !ok || hint != 123*time.Millisecond {
		t.Fatalf("AfterHint = %v, %v", hint, ok)
	}
	if err := p.Wait(context.Background(), 1, hint); err != nil {
		t.Fatalf("Wait: %v", err)
	}
	if waited != 123*time.Millisecond {
		t.Fatalf("waited %v, want the 123ms hint", waited)
	}
}

func TestWaitCapsHintAtMaxDelay(t *testing.T) {
	var waited time.Duration
	p := Policy{
		MaxDelay: 50 * time.Millisecond,
		Sleep: func(ctx context.Context, d time.Duration) error {
			waited = d
			return nil
		},
	}
	p.Wait(context.Background(), 1, time.Hour)
	if waited != 50*time.Millisecond {
		t.Fatalf("waited %v, want MaxDelay cap 50ms", waited)
	}
}

func TestAfterHintAbsent(t *testing.T) {
	if _, ok := AfterHint(errors.New("plain")); ok {
		t.Fatal("AfterHint found a hint on a plain error")
	}
	if _, ok := AfterHint(nil); ok {
		t.Fatal("AfterHint found a hint on nil")
	}
}

func TestNilWrappersPassThroughNil(t *testing.T) {
	if Permanent(nil) != nil {
		t.Fatal("Permanent(nil) != nil")
	}
	if WithAfter(nil, time.Second) != nil {
		t.Fatal("WithAfter(nil) != nil")
	}
}

func TestNilMetricsSnapshot(t *testing.T) {
	var m *Metrics
	if s := m.Snapshot(); s != (Snapshot{}) {
		t.Fatalf("nil snapshot = %+v, want zero", s)
	}
}
