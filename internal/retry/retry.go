// Package retry is the repo's single retry/backoff policy: one
// Policy type replaces the hand-rolled timeout, reroute-backoff and
// lease-refresh loops that used to live separately in internal/remote
// and internal/coord.
//
// A Policy combines capped exponential backoff with *deterministic*
// jitter: the wait before attempt n is a pure function of (Seed, n),
// drawn through internal/fastrand, so a seeded run — a chaos plan, a
// reproduced CI failure — waits the exact same schedule every time.
// Policies are plain values; the zero value retries with the
// defaults below.
//
// The policy understands three stop conditions — the attempt cap, the
// elapsed-time budget, and context cancellation — plus two error
// refinements: an error wrapped with Permanent is never retried, and
// an error carrying a Retry-After hint (WithAfter, which the remote
// client attaches when a backend sheds with 429 + Retry-After)
// replaces the computed backoff with the server's advertised
// interval.  Every outcome is booked through optional obs counters
// (Metrics), which the fx8d service surfaces in /v1/metrics.
package retry

import (
	"context"
	"errors"
	"time"

	"repro/internal/fastrand"
	"repro/internal/obs"
)

// Defaults for Policy's zero fields.
const (
	DefaultMaxAttempts = 4
	DefaultBaseDelay   = 50 * time.Millisecond
	DefaultMaxDelay    = 2 * time.Second
)

// Policy is one retry/backoff schedule.  The zero value is usable and
// means the Default* constants; a Policy is a value, so deriving a
// variant (different seed, different budget) is a struct copy.
type Policy struct {
	// MaxAttempts bounds the total number of attempts (the first try
	// plus retries).  0 means DefaultMaxAttempts; negative means one
	// attempt, no retries.
	MaxAttempts int

	// BaseDelay is the backoff before the second attempt; attempt n
	// backs off BaseDelay << (n-1), capped at MaxDelay.  0 means
	// DefaultBaseDelay.
	BaseDelay time.Duration

	// MaxDelay caps a single backoff wait (including Retry-After
	// hints).  0 means DefaultMaxDelay.
	MaxDelay time.Duration

	// Budget bounds the total elapsed time across attempts and waits:
	// once exceeded, the next failure gives up instead of backing
	// off.  0 means no budget.
	Budget time.Duration

	// PerAttempt bounds one attempt: Do derives a child context with
	// this timeout for each call of the operation.  0 means no
	// per-attempt timeout.
	PerAttempt time.Duration

	// Seed derives the deterministic jitter: the wait before attempt
	// n is uniform in [delay/2, delay], drawn from
	// fastrand.New(Seed, n).  Two policies with equal fields wait
	// identical schedules.
	Seed uint64

	// Metrics, when set, books every outcome: attempts, retries,
	// give-ups, backoff waits and waited nanoseconds.
	Metrics *Metrics

	// Sleep overrides the backoff wait (tests, simulated time).  nil
	// sleeps on a real timer honoring ctx.
	Sleep func(ctx context.Context, d time.Duration) error
}

// Metrics books a policy's outcomes as obs counters.  One Metrics may
// back any number of policies; the fx8d service registers the
// coordinator's instance so retries are visible in /v1/metrics.
type Metrics struct {
	// Attempts counts operation launches (first tries and retries).
	Attempts obs.Counter

	// Retries counts relaunches after a retryable failure.
	Retries obs.Counter

	// GiveUps counts operations abandoned after exhausting the
	// attempt cap or budget (context cancellations included).
	GiveUps obs.Counter

	// BackoffWaits counts backoff sleeps; BackoffNanos accumulates
	// their total duration.
	BackoffWaits obs.Counter
	BackoffNanos obs.Counter
}

// Snapshot is a point-in-time copy of a Metrics' counters — the
// /v1/metrics JSON shape.
type Snapshot struct {
	Attempts     uint64  `json:"attempts"`
	Retries      uint64  `json:"retries"`
	GiveUps      uint64  `json:"give_ups"`
	BackoffWaits uint64  `json:"backoff_waits"`
	BackoffSecs  float64 `json:"backoff_seconds"`
}

// Snapshot returns the counters' current values.  A nil receiver
// reads as all-zero, so callers can thread optional metrics without
// branching.
func (m *Metrics) Snapshot() Snapshot {
	if m == nil {
		return Snapshot{}
	}
	return Snapshot{
		Attempts:     m.Attempts.Value(),
		Retries:      m.Retries.Value(),
		GiveUps:      m.GiveUps.Value(),
		BackoffWaits: m.BackoffWaits.Value(),
		BackoffSecs:  float64(m.BackoffNanos.Value()) / 1e9,
	}
}

// withDefaults resolves zero fields.
func (p Policy) withDefaults() Policy {
	if p.MaxAttempts == 0 {
		p.MaxAttempts = DefaultMaxAttempts
	}
	if p.MaxAttempts < 1 {
		p.MaxAttempts = 1
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = DefaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = DefaultMaxDelay
	}
	return p
}

// Delay returns the backoff before attempt+1 given `attempt` failures
// so far (attempt >= 1): capped exponential with deterministic jitter
// in [delay/2, delay].  Pure — equal (Policy, attempt) pairs always
// return the same duration.
func (p Policy) Delay(attempt int) time.Duration {
	p = p.withDefaults()
	if attempt < 1 {
		attempt = 1
	}
	d := p.BaseDelay
	// Shift in a loop with a cap check so large attempt counts cannot
	// overflow the duration.
	for i := 1; i < attempt && d < p.MaxDelay; i++ {
		d <<= 1
	}
	if d > p.MaxDelay {
		d = p.MaxDelay
	}
	if d <= 0 {
		return 0
	}
	half := d / 2
	r := fastrand.New(p.Seed, uint64(attempt))
	return half + time.Duration(r.Uint64()%uint64(half+1))
}

// Wait books and performs one backoff sleep before retry `attempt`
// (attempt >= 1 failures so far).  hint > 0 — a server's Retry-After
// — replaces the computed delay; either way the wait is capped at
// MaxDelay and aborted by ctx.  Callers that drive their own attempt
// loop (the remote client's reroute rounds, the coordinator's
// dispatch workers) use Wait directly; Do wraps the whole loop.
func (p Policy) Wait(ctx context.Context, attempt int, hint time.Duration) error {
	pd := p.withDefaults()
	d := pd.Delay(attempt)
	if hint > 0 {
		d = hint
	}
	if d > pd.MaxDelay {
		d = pd.MaxDelay
	}
	if p.Metrics != nil {
		p.Metrics.BackoffWaits.Inc()
		p.Metrics.BackoffNanos.Add(uint64(d))
	}
	if p.Sleep != nil {
		return p.Sleep(ctx, d)
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Do runs op under the policy: per-attempt timeout, capped
// exponential backoff with deterministic jitter between attempts,
// Retry-After hints honored, permanent errors respected, at most
// MaxAttempts launches within Budget.  The returned error is the last
// attempt's (or the context's).
func (p Policy) Do(ctx context.Context, op func(ctx context.Context) error) error {
	pd := p.withDefaults()
	start := time.Now()
	var err error
	for attempt := 1; ; attempt++ {
		if p.Metrics != nil {
			p.Metrics.Attempts.Inc()
			if attempt > 1 {
				p.Metrics.Retries.Inc()
			}
		}
		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if pd.PerAttempt > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, pd.PerAttempt)
		}
		err = op(attemptCtx)
		cancel()
		if err == nil {
			return nil
		}
		if ctx.Err() != nil || IsPermanent(err) || attempt >= pd.MaxAttempts ||
			(pd.Budget > 0 && time.Since(start) >= pd.Budget) {
			break
		}
		hint, _ := AfterHint(err)
		if werr := p.Wait(ctx, attempt, hint); werr != nil {
			err = werr
			break
		}
	}
	if p.Metrics != nil {
		p.Metrics.GiveUps.Inc()
	}
	return err
}

// permanentError marks an error as not-retryable.
type permanentError struct{ err error }

func (e *permanentError) Error() string { return e.err.Error() }
func (e *permanentError) Unwrap() error { return e.err }

// Permanent wraps err so Do stops retrying immediately: the failure
// is structural (a validation error, an unknown kind), not transient.
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &permanentError{err}
}

// IsPermanent reports whether err (or anything it wraps) was marked
// Permanent.
func IsPermanent(err error) bool {
	var pe *permanentError
	return errors.As(err, &pe)
}

// afterError carries a server-advertised retry interval.
type afterError struct {
	err   error
	after time.Duration
}

func (e *afterError) Error() string { return e.err.Error() }
func (e *afterError) Unwrap() error { return e.err }

// WithAfter attaches a Retry-After hint to err: the next backoff
// waits the advertised interval instead of the computed one.  The
// remote client attaches this when a backend sheds with 429.  A nil
// err stays nil.
func WithAfter(err error, after time.Duration) error {
	if err == nil {
		return nil
	}
	return &afterError{err: err, after: after}
}

// AfterHint extracts the Retry-After hint from err, reporting whether
// one was attached.
func AfterHint(err error) (time.Duration, bool) {
	var ae *afterError
	if errors.As(err, &ae) {
		return ae.after, true
	}
	return 0, false
}
