package integration

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/service"
)

// Request-tracing acceptance test: one campaign request ID, planted at
// the client, must be forwarded with every batch the study client
// ships and reconstructable from each daemon's GET /v1/trace/{id} —
// together the per-backend spans account for every unit in the
// campaign.

// fetchTrace reads one daemon's spans for id; found=false on 404.
func fetchTrace(t *testing.T, baseURL, id string) (service.TraceResponse, bool) {
	t.Helper()
	resp, err := http.Get(baseURL + "/v1/trace/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		return service.TraceResponse{}, false
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace fetch = %d", resp.StatusCode)
	}
	var tr service.TraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr, true
}

func TestCampaignTraceCoversAllUnitsAcrossDaemons(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("quick campaign in -short mode")
	}
	a, b := newBackend(t), newBackend(t)
	client := remote.NewStudyClient(remote.Config{Backends: []string{a.URL, b.URL}})

	const traceID = "campaign-trace"
	cfg := core.QuickScale()
	ctx := obs.WithRequestID(context.Background(), traceID)
	// Two workers over the 8 quick-scale units: RunAll caps batches at
	// ceil(8/2)=4 units, so two concurrent batches ship and the
	// least-loaded pick spreads them across both daemons.
	if _, err := core.RunStudyRunner(ctx, cfg, 2, client, nil); err != nil {
		t.Fatal(err)
	}

	daemonsWithSpans, unitsTraced := 0, 0
	for i, ts := range []string{a.URL, b.URL} {
		tr, found := fetchTrace(t, ts, traceID)
		if !found {
			continue
		}
		daemonsWithSpans++
		if tr.ID != traceID {
			t.Errorf("daemon %d: trace ID = %q, want %q", i, tr.ID, traceID)
		}
		if tr.Dropped != 0 {
			t.Errorf("daemon %d: %d spans dropped from a tiny campaign", i, tr.Dropped)
		}
		for _, sp := range tr.Spans {
			if sp.Name != "run_session" && sp.Name != "run_sessions" {
				t.Errorf("daemon %d: unexpected span %q in campaign trace", i, sp.Name)
			}
			if sp.Outcome != "ok" {
				t.Errorf("daemon %d: span %s outcome = %q, want ok", i, sp.Name, sp.Outcome)
			}
			if sp.Duration <= 0 {
				t.Errorf("daemon %d: span %s has non-positive duration %d", i, sp.Name, sp.Duration)
			}
			unitsTraced += len(sp.Units)
		}
	}

	// The whole fleet was exercised: both daemons hold part of the
	// trace, and the union of span unit IDs accounts for every unit.
	if daemonsWithSpans != 2 {
		t.Errorf("trace found on %d daemons, want 2", daemonsWithSpans)
	}
	if want := cfg.TotalSessions(); unitsTraced != want {
		t.Errorf("spans cover %d units, want all %d campaign units", unitsTraced, want)
	}

	// A request ID the fleet never saw stays a 404 everywhere.
	if _, found := fetchTrace(t, a.URL, "never-ran"); found {
		t.Error("unknown trace ID resolved on daemon a")
	}
}

// TestTraceIsolationBetweenCampaigns pins that two campaigns with
// distinct request IDs stay separate traces on a shared daemon.
func TestTraceIsolationBetweenCampaigns(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("quick campaigns in -short mode")
	}
	ts := newBackend(t)
	client := remote.NewStudyClient(remote.Config{Backends: []string{ts.URL}})
	cfg := core.QuickScale()
	for run := 0; run < 2; run++ {
		id := fmt.Sprintf("campaign-%d", run)
		if _, err := core.RunStudyRunner(obs.WithRequestID(context.Background(), id), cfg, 1, client, nil); err != nil {
			t.Fatal(err)
		}
		tr, found := fetchTrace(t, ts.URL, id)
		if !found {
			t.Fatalf("campaign %d left no trace", run)
		}
		units := 0
		for _, sp := range tr.Spans {
			units += len(sp.Units)
		}
		if want := cfg.TotalSessions(); units != want {
			t.Errorf("campaign %d trace covers %d units, want %d", run, units, want)
		}
	}
}
