package integration

import (
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/service"
	"repro/internal/store"
)

// Fleet-campaign acceptance tests: a campaign run as a persistent
// job, interrupted by killing its coordinator daemon mid-flight, must
// resume from the persisted ledger on a second daemon — byte-identical
// to local execution, recomputing only the units the dead daemon had
// not finished.

// newStallingBackend boots an fx8d node that serves its first
// afterUnits unit requests normally and then hangs — the view a
// coordinator has of a daemon that stops answering without closing
// connections.  The stall lifts at test cleanup so the server can
// shut down.
func newStallingBackend(t *testing.T, afterUnits int64) *httptest.Server {
	t.Helper()
	var admitted atomic.Int64
	stall := make(chan struct{})
	inner := service.New(service.Config{Workers: 1, MaxInFlight: 4})
	t.Cleanup(inner.Close)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if strings.HasPrefix(r.URL.Path, "/v1/run/") && admitted.Add(1) > afterUnits {
			<-stall
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(stall) })
	return ts
}

// registryOf builds a coord registry holding the given backends.
func registryOf(addrs ...string) *coord.Registry {
	r := coord.NewRegistry()
	for _, a := range addrs {
		r.Register(a, time.Hour)
	}
	return r
}

// TestCampaignResumesAfterCoordinatorKilledMidRun is the tentpole
// acceptance test: a quick-scale campaign job is started on
// coordinator 1, whose only backend stalls after 3 of the 8 units
// (>25% done); coordinator 1 is then killed (Close, the in-process
// equivalent of the daemon dying).  Coordinator 2 shares the store,
// resumes the job with a healthy backend, and must (a) produce the
// byte-identical study, (b) replay exactly the units completed before
// the kill, and (c) compute exactly the rest.
func TestCampaignResumesAfterCoordinatorKilledMidRun(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-campaign resume proof in -short mode")
	}
	cfg := core.QuickScale()
	units := cfg.Units()
	total := len(units)
	local := core.RunStudy(cfg)
	localJSON, err := core.EncodeStudy(local)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	const completeBeforeKill = 3 // of 8: past the 25% bar

	// Phase 1: coordinator 1 drives the job through a backend that
	// stalls after 3 units.
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stalling := newStallingBackend(t, completeBeforeKill)
	c1 := coord.New(coord.Config{
		Store:       s1,
		Registry:    registryOf(stalling.URL),
		UnitTimeout: time.Hour, // the stall must hang, not time out into a retry
	})
	spec := coord.JobSpec{Kind: "study", Study: &cfg}
	st, created, err := c1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !created || st.Total != total {
		t.Fatalf("submit: created=%v status=%+v", created, st)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if cur, err := c1.Status(st.ID); err == nil && cur.Done >= completeBeforeKill {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached %d completed units", completeBeforeKill)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c1.Close() // kill the daemon mid-campaign

	// The persisted ledger knows exactly which units finished.
	completed := 0
	for _, u := range units {
		key, err := store.Key(coord.SessionUnitNamespace, u)
		if err != nil {
			t.Fatal(err)
		}
		if s1.Has(key) {
			completed++
		}
	}
	if completed < completeBeforeKill || completed >= total {
		t.Fatalf("completed %d of %d units before the kill, want a partial campaign >= %d",
			completed, total, completeBeforeKill)
	}

	// Phase 2: a fresh coordinator on the same store resumes the job
	// with a healthy backend.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	healthy := newBackend(t)
	c2 := coord.New(coord.Config{Store: s2, Registry: registryOf(healthy.URL)})
	defer c2.Close()
	st2, created2, err := c2.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	if created2 {
		t.Error("resubmission created a new job instead of resuming the persisted one")
	}
	for {
		cur, err := c2.Status(st2.ID)
		if err != nil {
			t.Fatal(err)
		}
		if coord.TerminalState(cur.State) {
			if cur.State != coord.StateDone {
				t.Fatalf("resumed job ended %s: %s", cur.State, cur.Error)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("resumed job never finished")
		}
		time.Sleep(5 * time.Millisecond)
	}

	res, err := c2.Result(st2.ID)
	if err != nil {
		t.Fatal(err)
	}
	resumedJSON, err := core.EncodeStudy(res.Study)
	if err != nil {
		t.Fatal(err)
	}
	if string(resumedJSON) != string(localJSON) {
		t.Error("resumed campaign differs from local campaign")
	}

	stats := c2.Stats()
	if stats.JobsResumed != 1 {
		t.Errorf("JobsResumed = %d, want 1", stats.JobsResumed)
	}
	if stats.UnitsReplayed != uint64(completed) {
		t.Errorf("resumed coordinator replayed %d units, want the %d completed before the kill",
			stats.UnitsReplayed, completed)
	}
	if stats.UnitsComputed != uint64(total-completed) {
		t.Errorf("resumed coordinator computed %d units, want only the %d the dead daemon left",
			stats.UnitsComputed, total-completed)
	}
}
