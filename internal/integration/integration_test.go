// Package integration exercises the full reproduction stack end to
// end: workload generation -> OS -> machine -> monitor -> measures ->
// models, plus cross-cutting properties (determinism, persistence
// round trips, scaling invariants) that no single package can check.
package integration

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/concentrix"
	"repro/internal/core"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/workload"
)

func buildSystem(seed uint64, span uint64) *concentrix.System {
	cfg := fx8.DefaultConfig()
	cfg.Seed = seed
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	for _, p := range workload.NewGenerator(workload.PaperMix(seed)).Session(span) {
		sys.Submit(p)
	}
	return sys
}

func TestFullStackDeterminism(t *testing.T) {
	t.Parallel()
	run := func() []trace.Record {
		sys := buildSystem(33, 400_000)
		recs := make([]trace.Record, 0, 50_000)
		for i := 0; i < 50_000; i++ {
			sys.Step()
			recs = append(recs, sys.Cluster.Snapshot())
		}
		return recs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("full-stack divergence at cycle %d", i)
		}
	}
}

func TestSeedsProduceDifferentWorkloads(t *testing.T) {
	t.Parallel()
	a := buildSystem(1, 400_000)
	b := buildSystem(2, 400_000)
	var diff int
	for i := 0; i < 50_000; i++ {
		a.Step()
		b.Step()
		if a.Cluster.Snapshot() != b.Cluster.Snapshot() {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestMonitorIsNonIntrusive(t *testing.T) {
	t.Parallel()
	// A monitored machine and an unmonitored one executing the same
	// workload must follow identical trajectories: observation does
	// not perturb execution.
	bare := buildSystem(44, 400_000)
	watched := buildSystem(44, 400_000)
	das := monitor.NewDAS()
	das.Arm(monitor.TriggerImmediate)
	for i := 0; i < 50_000; i++ {
		bare.Step()
		watched.Step()
		das.Observe(watched.Cluster.Snapshot())
		if !das.Armed() {
			das.Arm(monitor.TriggerImmediate)
		}
		if bare.Cluster.Snapshot() != watched.Cluster.Snapshot() {
			t.Fatalf("monitoring perturbed execution at cycle %d", i)
		}
	}
}

func TestSessionPersistenceRoundTrip(t *testing.T) {
	t.Parallel()
	spec := core.SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 3, GapCycles: 4_000},
		Seed:     55,
	}
	ses := core.RunRandomSession(1, spec)

	var buf bytes.Buffer
	if err := monitor.WriteSession(&buf, monitor.TriggerImmediate, spec.Seed, ses.Samples); err != nil {
		t.Fatal(err)
	}
	f, err := monitor.ReadSession(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Measures computed from the decoded file must equal the live
	// session's.
	live := core.MeasuresFromCounts(ses.Total)
	loaded := core.MeasuresFromCounts(f.Totals())
	if math.Abs(live.Cw-loaded.Cw) > 1e-12 {
		t.Errorf("Cw drift through persistence: %v vs %v", live.Cw, loaded.Cw)
	}
	if live.Defined != loaded.Defined || math.Abs(live.Pc-loaded.Pc) > 1e-12 {
		t.Errorf("Pc drift through persistence")
	}
}

func TestSampleMeasuresWithinBounds(t *testing.T) {
	t.Parallel()
	// Property over a real session: every sample's measures are in
	// their legal ranges.
	spec := core.SessionSpec{
		Samples:  8,
		Sampling: monitor.SampleSpec{Snapshots: 3, GapCycles: 6_000},
		Seed:     66,
	}
	ses := core.RunRandomSession(1, spec)
	for i, m := range ses.Measures {
		if m.Conc.Cw < 0 || m.Conc.Cw > 1 {
			t.Errorf("sample %d Cw = %v", i, m.Conc.Cw)
		}
		if m.Conc.Defined && (m.Conc.Pc < 2 || m.Conc.Pc > 8) {
			t.Errorf("sample %d Pc = %v", i, m.Conc.Pc)
		}
		if m.BusBusy < 0 || m.BusBusy > 1 {
			t.Errorf("sample %d BusBusy = %v", i, m.BusBusy)
		}
		if m.MissRate < 0 || m.MissRate > m.BusBusy+1e-12 {
			t.Errorf("sample %d MissRate %v exceeds BusBusy %v", i, m.MissRate, m.BusBusy)
		}
		if m.PageFaultRate < 0 {
			t.Errorf("sample %d fault rate = %v", i, m.PageFaultRate)
		}
	}
}

func TestTriggeredBuffersStartBelowEight(t *testing.T) {
	t.Parallel()
	spec := core.TriggeredSpec{
		Mode:           monitor.TriggerTransition,
		Samples:        4,
		Buffers:        3,
		BudgetCycles:   400_000,
		Seed:           77,
		WorkloadCycles: 2_000_000,
	}
	ts := core.RunTriggeredSession(1, spec)
	if len(ts.Buffers) == 0 {
		t.Skip("no transitions captured (seed-dependent)")
	}
	for i, buf := range ts.Buffers {
		if got := buf[0].ActiveCount(); got >= 8 {
			t.Errorf("buffer %d trigger record has %d active", i, got)
		}
	}
}

func TestAll8BuffersStartAtEight(t *testing.T) {
	t.Parallel()
	spec := core.TriggeredSpec{
		Mode:           monitor.TriggerAll8,
		Samples:        4,
		Buffers:        3,
		BudgetCycles:   400_000,
		Seed:           88,
		WorkloadCycles: 2_000_000,
	}
	ts := core.RunTriggeredSession(1, spec)
	if len(ts.Buffers) == 0 {
		t.Skip("no captures (seed-dependent)")
	}
	for i, buf := range ts.Buffers {
		if got := buf[0].ActiveCount(); got != 8 {
			t.Errorf("buffer %d trigger record has %d active, want 8", i, got)
		}
	}
}

func TestKernelUnderProductionLoad(t *testing.T) {
	t.Parallel()
	// A named kernel submitted amid a production session still
	// completes, and its iterations all run.
	sys := buildSystem(99, 600_000)
	layout := workload.KernelLayout{Base: 0xC000000, CodeBase: 0xC010000, Seed: 9}
	kernel := &concentrix.Process{
		PID:         9999,
		Name:        "daxpy-under-load",
		ClusterSize: 8,
		Serial:      workload.KernelProgram(workload.DAXPY(2048, layout), layout),
		Arrival:     100_000,
	}
	sys.Submit(kernel)
	for i := 0; i < 8_000_000 && !kernel.Done; i++ {
		sys.Step()
	}
	if !kernel.Done {
		t.Fatal("kernel never completed under load")
	}
	if kernel.DoneAt <= kernel.StartedAt {
		t.Error("accounting wrong")
	}
}

// TestScalingInvariant checks that doubling the sampling density does
// not change the overall concurrency measures materially: the measures
// are properties of the workload, not the instrument.
func TestScalingInvariant(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("scaling sweep in -short mode")
	}
	measure := func(gap int, samples int) core.Concurrency {
		spec := core.SessionSpec{
			Samples:        samples,
			Sampling:       monitor.SampleSpec{Snapshots: 5, GapCycles: gap},
			Seed:           123,
			WorkloadCycles: 3_000_000,
		}
		ses := core.RunRandomSession(1, spec)
		return core.MeasuresFromCounts(ses.Total)
	}
	coarse := measure(20_000, 20)
	fine := measure(10_000, 40)
	if math.Abs(coarse.Cw-fine.Cw) > 0.15 {
		t.Errorf("Cw instrument-dependent: %v vs %v", coarse.Cw, fine.Cw)
	}
	if coarse.Defined && fine.Defined && math.Abs(coarse.Pc-fine.Pc) > 0.8 {
		t.Errorf("Pc instrument-dependent: %v vs %v", coarse.Pc, fine.Pc)
	}
}
