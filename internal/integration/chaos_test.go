package integration

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/chaos"
	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/monitor"
	"repro/internal/remote"
	"repro/internal/retry"
	"repro/internal/service"
	"repro/internal/store"
)

// The chaos suite: seeded fault plans injected at the network, disk
// and process seams of a small daemon fleet, asserting the repo's
// fault-tolerance contract —
//
//   - surviving campaigns are byte-identical to local execution;
//   - the same seed reproduces the same fault schedule (sorted event
//     logs for network plans, Decide-replay for all);
//   - unabsorbable faults surface as typed *chaos.FaultError values,
//     never as wrong answers;
//   - no leases, ledger state or goroutines leak.
//
// Chaos tests deliberately do not call t.Parallel: goroutine-leak
// accounting needs a quiet process, and the schedules themselves are
// interleaving-independent by construction.

// chaosSeed returns name's plan seed: the pinned default normally, or
// a fresh seed folded from the CHAOS_SEEDS list (comma-separated
// uint64s, set by the nightly workflow) so every plan still draws a
// distinct schedule.  A failure always logs the seed — it is the
// whole reproduction recipe.
func chaosSeed(t *testing.T, name string, def uint64) uint64 {
	env := os.Getenv("CHAOS_SEEDS")
	if env == "" {
		return def
	}
	parts := strings.Split(env, ",")
	var h uint64 = 14695981039346656037
	for i := 0; i < len(name); i++ {
		h ^= uint64(name[i])
		h *= 1099511628211
	}
	s, err := strconv.ParseUint(strings.TrimSpace(parts[h%uint64(len(parts))]), 10, 64)
	if err != nil {
		t.Fatalf("CHAOS_SEEDS entry %q: %v", parts[h%uint64(len(parts))], err)
	}
	return s ^ h
}

// reportPlan registers the failure artifact: if the test fails, the
// seed and sorted event log are logged, and written to
// $CHAOS_ARTIFACT_DIR when set so CI can upload the reproduction
// recipe.
func reportPlan(t *testing.T, name string, plan *chaos.Plan) {
	t.Cleanup(func() {
		if !t.Failed() {
			return
		}
		var b strings.Builder
		fmt.Fprintf(&b, "plan %s seed %d\n", name, plan.Seed())
		for _, e := range plan.Events() {
			fmt.Fprintf(&b, "%s\n", e)
		}
		t.Logf("chaos reproduction recipe:\n%s", b.String())
		if dir := os.Getenv("CHAOS_ARTIFACT_DIR"); dir != "" {
			path := filepath.Join(dir, strings.ReplaceAll(name, "/", "_")+".seed.log")
			if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
				t.Logf("writing chaos artifact: %v", err)
			}
		}
	})
}

// checkGoroutines registers the leak check: after the test's own
// cleanups (servers, coordinators) have run, the goroutine count must
// settle back to where it started.  Register it first so it runs
// last.
func checkGoroutines(t *testing.T) {
	before := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		n := runtime.NumGoroutine()
		for n > before && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
			n = runtime.NumGoroutine()
		}
		if n > before {
			t.Errorf("goroutines leaked under chaos: %d before, %d after settling", before, n)
		}
	})
}

// requireInjection fails a pinned-seed run whose plan drew no faults
// — the pinned seeds are chosen to exercise the campaign.  Under
// fresh nightly seeds a quiet draw is possible and merely logged.
func requireInjection(t *testing.T, plan *chaos.Plan) {
	t.Helper()
	if len(plan.Events()) > 0 {
		return
	}
	if os.Getenv("CHAOS_SEEDS") == "" {
		t.Errorf("pinned seed %d injected no faults; the campaign was not exercised", plan.Seed())
	} else {
		t.Logf("fresh seed %d drew a quiet schedule (no faults injected)", plan.Seed())
	}
}

// assertReplay proves the schedule was a pure function of the seed:
// every injected network and disk fault is exactly what Decide
// answers for its (class, key, seq).
func assertReplay(t *testing.T, plan *chaos.Plan) {
	t.Helper()
	for _, e := range plan.Events() {
		if e.Class == chaos.ClassProc {
			continue // kill points assert their own determinism
		}
		if got := plan.Decide(e.Class, e.Key, e.Seq).Kind; got != e.Kind {
			t.Errorf("schedule not pure: event %v replays as %s", e, got)
		}
	}
}

// chaosUnits builds n cheap deterministic session units.
func chaosUnits(n int) []core.StudyUnit {
	units := make([]core.StudyUnit, n)
	for i := range units {
		spec := core.SessionSpec{
			Samples:  1,
			Sampling: monitor.SampleSpec{Snapshots: 1, GapCycles: 2_000},
			Seed:     500 + uint64(i),
		}
		units[i] = core.StudyUnit{ID: i + 1, Random: &spec}
	}
	return units
}

// localUnitsJSON is the fault-free baseline every surviving chaos
// campaign must reproduce byte for byte.
func localUnitsJSON(t *testing.T, units []core.StudyUnit) string {
	t.Helper()
	res, err := engine.RunAll(context.Background(), 0, units, core.LocalStudyRunner(), nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// newChaosBackend boots an fx8d node with admission headroom well
// above anything the suite offers it, so the only 429s and failures
// in a chaos run are the injected ones — real shedding would add
// timing-dependent retries and break schedule reproducibility.
func newChaosBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{Workers: 2, MaxInFlight: 64}))
	t.Cleanup(ts.Close)
	return ts
}

// runNetStudy runs the unit set through a two-backend fleet whose
// transport injects plan's network faults, with every
// timing-sensitive client behavior pinned: hedging off (hedges fire
// on wall clock), quarantine off (it trips on cumulative counts that
// vary with interleaving), batching off (batch composition depends on
// worker scheduling).  What remains is deterministic per request key.
func runNetStudy(t *testing.T, plan *chaos.Plan, units []core.StudyUnit) (string, remote.Stats) {
	t.Helper()
	a, b := newChaosBackend(t), newChaosBackend(t)
	client := remote.NewStudyClient(remote.Config{
		Backends:    []string{a.URL, b.URL},
		HTTPClient:  &http.Client{Transport: plan.Transport(nil)},
		HedgeAfter:  time.Hour,
		MaxFailures: 1 << 30,
		BatchUnits:  1,
		Retry:       retry.Policy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	res, err := engine.RunAll(context.Background(), len(units), units, client, nil)
	if err != nil {
		t.Fatalf("campaign under %v died: %v", plan.Seed(), err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	return string(data), client.Stats()
}

// TestChaosNetworkPlans drives five network fault plans — refused
// connections, injected latency, mid-body disconnects, synthesized
// 5xx, corrupted and truncated bodies — and requires byte-identical
// results plus a reproducible schedule: the identical campaign under
// the identical seed injects the identical (sorted) fault log.
func TestChaosNetworkPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaigns in -short mode")
	}
	units := chaosUnits(6)
	baseline := localUnitsJSON(t, units)
	plans := []struct {
		name   string
		seed   uint64
		budget chaos.Budget
	}{
		{"net-refused", 101, chaos.Budget{Refused: 350}},
		{"net-latency", 102, chaos.Budget{Latency: 450, MaxLatency: 15 * time.Millisecond}},
		{"net-disconnect", 103, chaos.Budget{Disconnect: 250, Latency: 100, MaxLatency: 10 * time.Millisecond}},
		{"net-err5xx", 104, chaos.Budget{Err5xx: 300}},
		{"net-corrupt-truncate", 105, chaos.Budget{Corrupt: 200, Truncate: 200}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			checkGoroutines(t)
			seed := chaosSeed(t, tc.name, tc.seed)
			run := func() (*chaos.Plan, string) {
				plan := chaos.NewPlan(seed, tc.budget)
				reportPlan(t, tc.name, plan)
				got, _ := runNetStudy(t, plan, units)
				return plan, got
			}
			p1, got1 := run()
			if got1 != baseline {
				t.Errorf("surviving campaign differs from local baseline")
			}
			requireInjection(t, p1)
			assertReplay(t, p1)

			// Same seed, fresh fleet: the schedule must reproduce
			// exactly, independent of ports, goroutines and timing.
			p2, got2 := run()
			if got2 != baseline {
				t.Errorf("second run differs from local baseline")
			}
			e1, e2 := p1.Events(), p2.Events()
			if len(e1) != len(e2) {
				t.Fatalf("same seed injected %d faults, then %d", len(e1), len(e2))
			}
			for i := range e1 {
				if e1[i] != e2[i] {
					t.Fatalf("schedule diverged at %d: %v vs %v", i, e1[i], e2[i])
				}
			}
		})
	}
}

// runDiskJob submits the unit set as a coordinator job over a store
// whose filesystem injects plan's disk faults, and returns the
// terminal status plus the sessions JSON when the job finished.
func runDiskJob(t *testing.T, plan *chaos.Plan, units []core.StudyUnit) (coord.JobStatus, string, *store.Store, error) {
	t.Helper()
	s, err := store.Open(t.TempDir(), store.WithFS(plan.FS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	c := coord.New(coord.Config{
		Store: s, Workers: 2,
		Retry: retry.Policy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	t.Cleanup(c.Close)
	spec := coord.JobSpec{Kind: "sessions", Units: units}
	st, _, err := c.Submit(spec)
	if err != nil {
		return coord.JobStatus{}, "", s, err
	}
	st = awaitTerminal(t, c, st.ID)
	if st.State != coord.StateDone {
		return st, "", s, nil
	}
	res, err := c.Result(st.ID)
	if err != nil {
		t.Fatalf("finished job has no result: %v", err)
	}
	data, err := json.Marshal(res.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	return st, string(data), s, nil
}

// awaitTerminal polls a job to any terminal state.
func awaitTerminal(t *testing.T, c *coord.Coordinator, id string) coord.JobStatus {
	t.Helper()
	deadline := time.Now().Add(120 * time.Second)
	for time.Now().Before(deadline) {
		st, err := c.Status(id)
		if err == nil && coord.TerminalState(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached a terminal state", id)
	return coord.JobStatus{}
}

// TestChaosDiskPlans drives three disk fault plans — outright write
// errors, short writes and bit flips (caught by the store's read-side
// checksum), and eviction under the reader — through coordinator
// jobs.  A fault the stack absorbs must leave a byte-identical
// campaign; one it cannot absorb must surface as a typed injected
// fault, never as a wrong answer; either way the lease is released
// and nothing litters the store.
func TestChaosDiskPlans(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaigns in -short mode")
	}
	units := chaosUnits(6)
	baseline := localUnitsJSON(t, units)
	id, err := coord.JobID(coord.JobSpec{Kind: "sessions", Units: units})
	if err != nil {
		t.Fatal(err)
	}
	leaseKey, err := coord.LeaseKey(id)
	if err != nil {
		t.Fatal(err)
	}
	plans := []struct {
		name   string
		seed   uint64
		budget chaos.Budget
	}{
		{"disk-write-errors", 201, chaos.Budget{WriteErr: 80}},
		{"disk-corrupt", 202, chaos.Budget{ShortWrite: 80, BitFlip: 80}},
		{"disk-evict", 203, chaos.Budget{Evict: 150}},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			checkGoroutines(t)
			plan := chaos.NewPlan(chaosSeed(t, tc.name, tc.seed), tc.budget)
			reportPlan(t, tc.name, plan)
			st, got, s, err := runDiskJob(t, plan, units)
			var fe *chaos.FaultError
			switch {
			case err != nil:
				// Submission itself hit an unabsorbed fault: legal only
				// as a typed error.
				if !errors.As(err, &fe) {
					t.Fatalf("untyped submit failure under chaos: %v", err)
				}
			case st.State == coord.StateDone:
				if got != baseline {
					t.Errorf("surviving campaign differs from local baseline")
				}
				if st.Done != st.Total {
					t.Errorf("done job ledger incomplete: %d/%d units", st.Done, st.Total)
				}
			default:
				// The job failed: the cause must be the injected fault,
				// surfaced verbatim in the record.
				if !strings.Contains(st.Error, "chaos: injected") {
					t.Errorf("job failed for a non-injected reason under chaos: %s: %s", st.State, st.Error)
				}
			}
			requireInjection(t, plan)
			assertReplay(t, plan)
			if s.Has(leaseKey) {
				t.Errorf("job lease leaked after terminal state")
			}
		})
	}
}

// TestChaosProcessBackendDeath kills one of two backends at a unit
// count drawn from the plan — a different death point per seed — and
// requires the campaign to reroute and finish byte-identically.
func TestChaosProcessBackendDeath(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaigns in -short mode")
	}
	checkGoroutines(t)
	units := chaosUnits(6)
	baseline := localUnitsJSON(t, units)
	plan := chaos.NewPlan(chaosSeed(t, "proc-backend-death", 301), chaos.Budget{})
	reportPlan(t, "proc-backend-death", plan)

	kill := plan.KillPoint("backend-0", len(units)-1)
	dying := newKillableBackend(t, int64(kill))
	healthy := newChaosBackend(t)
	client := remote.NewStudyClient(remote.Config{
		Backends:    []string{dying.URL, healthy.URL},
		MaxFailures: 2,
		HedgeAfter:  time.Hour,
		BatchUnits:  1,
	})
	res, err := engine.RunAll(context.Background(), len(units), units, client, nil)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != baseline {
		t.Error("campaign with a dying backend differs from local baseline")
	}
	if kill2 := chaos.NewPlan(plan.Seed(), chaos.Budget{}).KillPoint("backend-0", len(units)-1); kill2 != kill {
		t.Errorf("kill point not seed-deterministic: %d vs %d", kill, kill2)
	}
}

// TestChaosProcessCoordinatorKill kills the owning coordinator at a
// progress point drawn from the plan and lets a peer take over the
// persisted job: the reassembled campaign must be byte-identical, the
// two owners' computed units must exactly partition the job, and the
// finished job must leave no lease behind.
func TestChaosProcessCoordinatorKill(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaigns in -short mode")
	}
	checkGoroutines(t)
	units := chaosUnits(6)
	baseline := localUnitsJSON(t, units)
	plan := chaos.NewPlan(chaosSeed(t, "proc-coord-kill", 302), chaos.Budget{})
	reportPlan(t, "proc-coord-kill", plan)

	total := len(units)
	kill := plan.KillPoint("coordinator", total-1) // die mid-campaign, never at the finish line
	spec := coord.JobSpec{Kind: "sessions", Units: units}
	id, err := coord.JobID(spec)
	if err != nil {
		t.Fatal(err)
	}
	leaseKey, err := coord.LeaseKey(id)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	stalling := newStallingBackend(t, int64(kill))
	c1 := coord.New(coord.Config{
		Store:       s1,
		Registry:    registryOf(stalling.URL),
		PerBackend:  1, // one unit in flight: progress stalls exactly at the kill point
		UnitTimeout: time.Hour,
	})
	if _, _, err := c1.Submit(spec); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(60 * time.Second)
	for {
		if st, err := c1.Status(id); err == nil && st.Done >= kill {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("job never reached the drawn kill point (%d units)", kill)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c1.Close() // the process dies mid-campaign

	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := coord.New(coord.Config{Store: s2, Workers: 2})
	t.Cleanup(c2.Close)
	if _, created, err := c2.Submit(spec); err != nil {
		t.Fatal(err)
	} else if created {
		t.Error("takeover coordinator created a fresh job instead of resuming the ledger")
	}
	st := awaitTerminal(t, c2, id)
	if st.State != coord.StateDone {
		t.Fatalf("resumed job ended %s: %s", st.State, st.Error)
	}
	res, err := c2.Result(id)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(res.Sessions)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != baseline {
		t.Error("resumed campaign differs from local baseline")
	}
	st1, st2 := c1.Stats(), c2.Stats()
	if st1.UnitsComputed+st2.UnitsComputed != uint64(total) {
		t.Errorf("owners computed %d + %d units, want exactly %d across the kill",
			st1.UnitsComputed, st2.UnitsComputed, total)
	}
	if st2.UnitsReplayed != st1.UnitsComputed {
		t.Errorf("takeover replayed %d units, want the %d the dead owner finished",
			st2.UnitsReplayed, st1.UnitsComputed)
	}
	if s2.Has(leaseKey) {
		t.Error("lease leaked after the takeover owner finished")
	}
}

// TestChaosCombinedPlan turns network and disk faults on at once
// under a coordinator-driven fleet — the full stack absorbing refused
// connections, 5xx, flipped bits and evictions in one campaign.
func TestChaosCombinedPlan(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos campaigns in -short mode")
	}
	checkGoroutines(t)
	units := chaosUnits(6)
	baseline := localUnitsJSON(t, units)
	plan := chaos.NewPlan(chaosSeed(t, "combined", 401), chaos.Budget{
		Refused: 60, Err5xx: 60, Latency: 60, MaxLatency: 10 * time.Millisecond,
		BitFlip: 40, Evict: 40,
	})
	reportPlan(t, "combined", plan)

	s, err := store.Open(t.TempDir(), store.WithFS(plan.FS(nil)))
	if err != nil {
		t.Fatal(err)
	}
	a, b := newChaosBackend(t), newChaosBackend(t)
	c := coord.New(coord.Config{
		Store:    s,
		Registry: registryOf(a.URL, b.URL),
		Workers:  2,
		HTTPClient: &http.Client{
			Transport: plan.Transport(nil),
		},
		Retry: retry.Policy{MaxAttempts: 4, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond},
	})
	t.Cleanup(c.Close)
	spec := coord.JobSpec{Kind: "sessions", Units: units}
	id, err := coord.JobID(spec)
	if err != nil {
		t.Fatal(err)
	}
	leaseKey, err := coord.LeaseKey(id)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.Submit(spec); err != nil {
		var fe *chaos.FaultError
		if !errors.As(err, &fe) {
			t.Fatalf("untyped submit failure under chaos: %v", err)
		}
		return
	}
	st := awaitTerminal(t, c, id)
	switch st.State {
	case coord.StateDone:
		res, err := c.Result(id)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(res.Sessions)
		if err != nil {
			t.Fatal(err)
		}
		if string(data) != baseline {
			t.Error("combined-fault campaign differs from local baseline")
		}
	default:
		if !strings.Contains(st.Error, "chaos: injected") {
			t.Errorf("job failed for a non-injected reason: %s: %s", st.State, st.Error)
		}
	}
	requireInjection(t, plan)
	assertReplay(t, plan)
	if s.Has(leaseKey) {
		t.Error("lease leaked after terminal state")
	}
}

// TestChaosUnabsorbableFaultIsTyped pins the error contract at the
// lowest client primitive: a fault nothing above it can absorb must
// reach the caller as a *chaos.FaultError — matchable with errors.As,
// never a silent wrong answer or an anonymous string.
func TestChaosUnabsorbableFaultIsTyped(t *testing.T) {
	checkGoroutines(t)
	backend := newChaosBackend(t)
	plan := chaos.NewPlan(chaosSeed(t, "unabsorbable", 501), chaos.Budget{Refused: 1000})
	reportPlan(t, "unabsorbable", plan)
	httpc := &http.Client{Transport: plan.Transport(nil)}
	_, err := remote.PostUnit[core.StudyUnit, core.StudyUnitResult](
		context.Background(), httpc, backend.URL+remote.SessionPath, chaosUnits(1)[0], time.Minute)
	if err == nil {
		t.Fatal("total-refusal plan let a unit through")
	}
	var fe *chaos.FaultError
	if !errors.As(err, &fe) || fe.Kind != chaos.KindRefused {
		t.Fatalf("unabsorbable fault not typed: %v", err)
	}
}
