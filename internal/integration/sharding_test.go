package integration

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/remote"
	"repro/internal/service"
)

// Sharded-execution acceptance tests: sweeps and campaigns executed
// across a fleet of in-process fx8d backends must be byte-identical
// to local execution — for every backend count, and with a backend
// killed mid-run (its work is re-routed, never lost).

// newBackend boots one in-process fx8d node.
func newBackend(t *testing.T) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(service.New(service.Config{Workers: 1, MaxInFlight: 4}))
	t.Cleanup(ts.Close)
	return ts
}

// newKillableBackend boots an fx8d node that dies after serving
// afterUnits requests: later requests abort at the connection level,
// exactly what a killed process looks like to the client.
func newKillableBackend(t *testing.T, afterUnits int64) *httptest.Server {
	t.Helper()
	var admitted atomic.Int64
	inner := service.New(service.Config{Workers: 1, MaxInFlight: 4})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		// Count admissions, not completions: concurrent requests
		// beyond the budget abort even while the first is still
		// being served — the node dies with work in flight.
		if admitted.Add(1) > afterUnits {
			panic(http.ErrAbortHandler)
		}
		inner.ServeHTTP(w, r)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func TestShardedSchedulerSweepByteIdentical(t *testing.T) {
	t.Parallel()
	cfg := experiments.SweepConfig{
		Kind:    "sched",
		Values:  []int{10_000, 30_000, 100_000, 300_000},
		Seed:    5,
		Samples: 2,
	}
	local, err := experiments.RunSweepConfig(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(local)

	a, b := newBackend(t), newBackend(t)
	client := remote.NewSweepClient(remote.Config{Backends: []string{a.URL, b.URL}})
	sharded, err := experiments.RunSweepRunner(cfg, 0, client)
	if err != nil {
		t.Fatal(err)
	}
	shardedJSON, _ := json.Marshal(sharded)
	if string(shardedJSON) != string(localJSON) {
		t.Errorf("sharded sweep differs from local:\n%s\nvs\n%s", shardedJSON, localJSON)
	}
	st := client.Stats()
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 with two live backends", st.Fallbacks)
	}
	var total uint64
	for _, bs := range st.Backends {
		total += bs.Units
	}
	if total != uint64(len(cfg.Values)) {
		t.Errorf("backends served %d units, want %d", total, len(cfg.Values))
	}
}

func TestShardedQuickCampaignByteIdentical(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-campaign sharding proof in -short mode")
	}
	cfg := core.QuickScale()
	local := core.RunStudy(cfg)
	localJSON, err := core.EncodeStudy(local)
	if err != nil {
		t.Fatal(err)
	}

	// Healthy fleet: every session served remotely, reassembled
	// byte-identically.
	t.Run("healthy fleet", func(t *testing.T) {
		t.Parallel()
		a, b := newBackend(t), newBackend(t)
		client := remote.NewStudyClient(remote.Config{Backends: []string{a.URL, b.URL}})
		sharded, err := core.RunStudyRunner(context.Background(), cfg, 0, client, nil)
		if err != nil {
			t.Fatal(err)
		}
		shardedJSON, err := core.EncodeStudy(sharded)
		if err != nil {
			t.Fatal(err)
		}
		if string(shardedJSON) != string(localJSON) {
			t.Error("sharded campaign differs from local campaign")
		}
		st := client.Stats()
		if st.Fallbacks != 0 {
			t.Errorf("fallbacks = %d, want 0 with two live backends", st.Fallbacks)
		}
		for _, bs := range st.Backends {
			if bs.Units == 0 {
				t.Errorf("backend %s served no units; campaign was not sharded", bs.Addr)
			}
		}
	})

	// One backend killed mid-run: its remaining units are re-routed
	// to the survivor (or computed locally), and the reassembled
	// campaign is still byte-identical.
	t.Run("backend killed mid-run", func(t *testing.T) {
		t.Parallel()
		dying := newKillableBackend(t, 1)
		healthy := newBackend(t)
		client := remote.NewStudyClient(remote.Config{
			Backends:    []string{dying.URL, healthy.URL},
			MaxFailures: 2,
		})
		sharded, err := core.RunStudyRunner(context.Background(), cfg, 0, client, nil)
		if err != nil {
			t.Fatal(err)
		}
		shardedJSON, err := core.EncodeStudy(sharded)
		if err != nil {
			t.Fatal(err)
		}
		if string(shardedJSON) != string(localJSON) {
			t.Error("campaign with a killed backend differs from local campaign")
		}
		st := client.Stats()
		var dead bool
		var unitsServed uint64
		for _, bs := range st.Backends {
			unitsServed += bs.Units
			if bs.Addr == dying.URL {
				dead = bs.Dead
			}
		}
		if !dead {
			t.Errorf("killed backend not marked dead: %+v", st.Backends)
		}
		if got := unitsServed + st.Fallbacks; got < uint64(cfg.TotalSessions()) {
			t.Errorf("accounted for %d of %d sessions; work was lost", got, cfg.TotalSessions())
		}
	})
}

// TestBatchedCampaignByteIdentical is the batch-path acceptance
// proof: a campaign executed over POST /v1/run/sessions — many units
// per request — reassembles byte-identically to local execution, and
// the batch endpoint actually carried the work.
func TestBatchedCampaignByteIdentical(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-campaign batching proof in -short mode")
	}
	cfg := core.QuickScale()
	local := core.RunStudy(cfg)
	localJSON, err := core.EncodeStudy(local)
	if err != nil {
		t.Fatal(err)
	}

	// One backend, half as many workers as units: the engine cuts
	// multi-unit batches, all carried by the batch endpoint.
	backend := newBackend(t)
	client := remote.NewStudyClient(remote.Config{Backends: []string{backend.URL}})
	workers := cfg.TotalSessions() / 2
	sharded, err := core.RunStudyRunner(context.Background(), cfg, workers, client, nil)
	if err != nil {
		t.Fatal(err)
	}
	shardedJSON, err := core.EncodeStudy(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(shardedJSON) != string(localJSON) {
		t.Error("batched campaign differs from local campaign")
	}
	st := client.Stats()
	if st.Batches == 0 {
		t.Error("campaign ran without a single batched request")
	}
	if st.Fallbacks != 0 {
		t.Errorf("fallbacks = %d, want 0 with a live backend", st.Fallbacks)
	}
	if st.Backends[0].Units != uint64(cfg.TotalSessions()) {
		t.Errorf("backend served %d units, want all %d", st.Backends[0].Units, cfg.TotalSessions())
	}
}

// TestBatchedCampaignSurvivesBatchlessBackend proves version-skew
// safety: a fleet mixing a batch-capable daemon with an older one
// that 404s the batch path still reassembles byte-identically, and
// the older daemon is not marked dead for the skew.
func TestBatchedCampaignSurvivesBatchlessBackend(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("multi-campaign batching proof in -short mode")
	}
	cfg := core.QuickScale()
	local := core.RunStudy(cfg)
	localJSON, err := core.EncodeStudy(local)
	if err != nil {
		t.Fatal(err)
	}

	modern := newBackend(t)
	// An older daemon: same unit endpoint, no batch endpoint.
	older := service.New(service.Config{Workers: 1, MaxInFlight: 4})
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == remote.SessionBatchPath {
			http.NotFound(w, r)
			return
		}
		older.ServeHTTP(w, r)
	}))
	t.Cleanup(legacy.Close)

	client := remote.NewStudyClient(remote.Config{Backends: []string{modern.URL, legacy.URL}})
	sharded, err := core.RunStudyRunner(context.Background(), cfg, cfg.TotalSessions()/2, client, nil)
	if err != nil {
		t.Fatal(err)
	}
	shardedJSON, err := core.EncodeStudy(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if string(shardedJSON) != string(localJSON) {
		t.Error("mixed-fleet campaign differs from local campaign")
	}
	for _, bs := range client.Stats().Backends {
		if bs.Dead {
			t.Errorf("backend %s marked dead in a healthy mixed fleet", bs.Addr)
		}
	}
}

// TestShardedSweepSurvivesKilledBackend is the sweep-side half of the
// kill-mid-run proof.
func TestShardedSweepSurvivesKilledBackend(t *testing.T) {
	t.Parallel()
	cfg := experiments.SweepConfig{
		Kind:    "ce",
		Values:  []int{1, 2, 4, 8},
		Seed:    5,
		Samples: 2,
	}
	local, err := experiments.RunSweepConfig(cfg, 0)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(local)

	dying := newKillableBackend(t, 1)
	healthy := newBackend(t)
	client := remote.NewSweepClient(remote.Config{
		Backends:    []string{dying.URL, healthy.URL},
		MaxFailures: 2,
	})
	sharded, err := experiments.RunSweepRunner(cfg, 0, client)
	if err != nil {
		t.Fatal(err)
	}
	shardedJSON, _ := json.Marshal(sharded)
	if string(shardedJSON) != string(localJSON) {
		t.Errorf("sweep with a killed backend differs from local:\n%s\nvs\n%s", shardedJSON, localJSON)
	}
}

// TestShardedMeasureSessionsMatchLocal drives the cmd/measure-shaped
// path: session units built outside a campaign, run through a fleet,
// equal to in-process execution.
func TestShardedMeasureSessionsMatchLocal(t *testing.T) {
	t.Parallel()
	units := make([]core.StudyUnit, 3)
	for i := range units {
		spec := core.DefaultSessionSpec(uint64(40 + i))
		spec.Samples = 2
		units[i] = core.StudyUnit{ID: i + 1, Random: &spec}
	}
	localRes, err := engine.RunAll(context.Background(), 0, units, core.LocalStudyRunner(), nil)
	if err != nil {
		t.Fatal(err)
	}
	a := newBackend(t)
	client := remote.NewStudyClient(remote.Config{Backends: []string{a.URL}})
	remoteRes, err := engine.RunAll(context.Background(), 0, units, client, nil)
	if err != nil {
		t.Fatal(err)
	}
	localJSON, _ := json.Marshal(localRes)
	remoteJSON, _ := json.Marshal(remoteRes)
	if string(localJSON) != string(remoteJSON) {
		t.Error("remote measure sessions differ from local sessions")
	}
}
