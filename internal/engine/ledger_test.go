package engine

import (
	"sort"
	"sync"
	"sync/atomic"
	"testing"
)

func TestLedgerDrainSingleOwner(t *testing.T) {
	l := NewLedger[int]("a")
	l.Add("a", 1, 2, 3)
	var got []int
	for {
		ls, ok := l.Lease("a")
		if !ok {
			break
		}
		got = append(got, ls.Item)
		if ls.Stolen {
			t.Errorf("lease of own item %d marked stolen", ls.Item)
		}
		l.Complete(ls)
	}
	if want := []int{1, 2, 3}; !equalInts(got, want) {
		t.Fatalf("drained %v, want %v (FIFO from own deque)", got, want)
	}
	if !l.Drained() {
		t.Error("Drained() = false after all items completed")
	}
	if n := l.Steals(); n != 0 {
		t.Errorf("Steals() = %d, want 0", n)
	}
}

func TestLedgerStealFromSlowest(t *testing.T) {
	l := NewLedger[int]("fast", "slow", "slower")
	l.Add("slow", 1, 2)
	l.Add("slower", 10, 11, 12, 13)

	// "fast" has nothing of its own: each lease must steal from the
	// owner with the most pending work, popping from the back.
	ls, ok := l.Lease("fast")
	if !ok || !ls.Stolen {
		t.Fatalf("Lease(fast) = %+v, %v; want a steal", ls, ok)
	}
	if ls.Owner != "slower" || ls.Item != 13 {
		t.Fatalf("first steal = item %d from %q, want 13 from slower (back of deepest deque)", ls.Item, ls.Owner)
	}
	l.Complete(ls)

	// slower now has 3 pending, slow has 2: still steal from slower.
	ls, ok = l.Lease("fast")
	if !ok || ls.Owner != "slower" || ls.Item != 12 {
		t.Fatalf("second steal = item %d from %q (ok=%v), want 12 from slower", ls.Item, ls.Owner, ok)
	}
	l.Complete(ls)

	// The victim's own front is untouched by steals.
	own, ok := l.Lease("slower")
	if !ok || own.Stolen || own.Item != 10 {
		t.Fatalf("Lease(slower) = %+v, %v; want own front item 10", own, ok)
	}
	l.Complete(own)

	if n := l.Steals(); n != 2 {
		t.Errorf("Steals() = %d, want 2", n)
	}
}

func TestLedgerReleaseRequeuesToOrigin(t *testing.T) {
	l := NewLedger[int]("a", "b")
	l.Add("a", 1, 2)

	ls, ok := l.Lease("b") // steals 2 from the back of a
	if !ok || ls.Owner != "a" || ls.Item != 2 {
		t.Fatalf("Lease(b) = %+v, %v; want steal of 2 from a", ls, ok)
	}
	l.Release(ls)

	if n := l.Pending("a"); n != 2 {
		t.Fatalf("Pending(a) = %d after release, want 2", n)
	}
	// Released items return to the FRONT of the origin deque so a
	// retried unit is picked up before untouched work.
	next, ok := l.Lease("a")
	if !ok || next.Item != 2 {
		t.Fatalf("Lease(a) after release = %+v, %v; want item 2 first", next, ok)
	}
	l.Complete(next)
}

// TestLedgerLeaseBlocksOnOutstanding pins the no-strand guarantee: a
// leaser seeing empty deques while a peer holds a lease must wait, not
// exit, because a Release may hand the item back.
func TestLedgerLeaseBlocksOnOutstanding(t *testing.T) {
	l := NewLedger[int]("a", "b")
	l.Add("a", 7)

	ls, ok := l.Lease("a")
	if !ok {
		t.Fatal("Lease(a) failed")
	}

	got := make(chan Lease[int], 1)
	var done atomic.Bool
	go func() {
		second, ok := l.Lease("b")
		done.Store(true)
		if ok {
			got <- second
		}
		close(got)
	}()

	if done.Load() {
		t.Fatal("Lease(b) returned while a lease was outstanding and deques were empty")
	}
	l.Release(ls)

	second, open := <-got
	if !open {
		t.Fatal("Lease(b) reported drained; want the released item")
	}
	if second.Item != 7 || second.Owner != "a" {
		t.Fatalf("Lease(b) after release = %+v, want item 7 from a", second)
	}
	l.Complete(second)

	if _, ok := l.Lease("a"); ok {
		t.Error("Lease(a) succeeded on a drained ledger")
	}
}

// TestLedgerCancelMidStealNoOrphans is the satellite durability edge:
// cancel while stolen leases are in flight, then have every holder
// release — the ledger must account for every lease (Outstanding 0)
// and wake all blocked leasers with ok == false.
func TestLedgerCancelMidStealNoOrphans(t *testing.T) {
	l := NewLedger[int]("a", "b", "c")
	l.Add("a", 1, 2, 3, 4, 5, 6)

	var held []Lease[int]
	for _, owner := range []string{"b", "c", "b"} {
		ls, ok := l.Lease(owner)
		if !ok || !ls.Stolen {
			t.Fatalf("Lease(%s) = %+v, %v; want a steal", owner, ls, ok)
		}
		held = append(held, ls)
	}

	// A leaser blocked after cancel must return promptly.
	blocked := make(chan bool, 1)
	go func() {
		_, ok := l.Lease("zzz-unregistered")
		blocked <- ok
	}()
	// Not blocked, actually: deques still hold 1,2,3 so this steals.
	if ok := <-blocked; !ok {
		t.Fatal("pre-cancel Lease should still succeed")
	}

	l.Cancel()

	if _, ok := l.Lease("a"); ok {
		t.Error("Lease succeeded after Cancel")
	}
	for _, ls := range held {
		l.Release(ls)
	}
	if n := l.Outstanding(); n != 1 {
		// The steal taken by the goroutine above is still held; all
		// explicitly-held leases were released.
		t.Errorf("Outstanding() = %d after releases, want 1 (the probe goroutine's lease)", n)
	}
	if n := l.Pending("a"); n != 3+2 {
		t.Errorf("Pending(a) = %d, want 5 (3 never leased + 2 released)", n)
	}
}

func TestLedgerConcurrentDrain(t *testing.T) {
	const (
		owners  = 4
		perDeck = 64
		workers = 3 // per owner
	)
	names := make([]string, owners)
	for i := range names {
		names[i] = string(rune('a' + i))
	}
	l := NewLedger[int](names...)
	total := 0
	for i, name := range names {
		// Skewed load: owner i gets (i+1)*perDeck items, so early
		// owners finish first and steal from late ones.
		items := make([]int, (i+1)*perDeck)
		for j := range items {
			items[j] = total + j
		}
		total += len(items)
		l.Add(name, items...)
	}

	var (
		mu   sync.Mutex
		seen = make(map[int]int)
		wg   sync.WaitGroup
	)
	for _, name := range names {
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(owner string) {
				defer wg.Done()
				for {
					ls, ok := l.Lease(owner)
					if !ok {
						return
					}
					mu.Lock()
					seen[ls.Item]++
					mu.Unlock()
					l.Complete(ls)
				}
			}(name)
		}
	}
	wg.Wait()

	if len(seen) != total {
		t.Fatalf("completed %d distinct items, want %d", len(seen), total)
	}
	for item, n := range seen {
		if n != 1 {
			t.Fatalf("item %d completed %d times, want exactly once", item, n)
		}
	}
	if !l.Drained() {
		t.Error("Drained() = false after concurrent drain")
	}
	if l.Outstanding() != 0 {
		t.Errorf("Outstanding() = %d, want 0", l.Outstanding())
	}
	if l.Steals() == 0 {
		t.Error("Steals() = 0 under skewed load; expected work-stealing")
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestLedgerPendingTotal(t *testing.T) {
	l := NewLedger[string]()
	l.Add("x", "u1", "u2")
	l.Add("y", "u3")
	if n := l.PendingTotal(); n != 3 {
		t.Fatalf("PendingTotal() = %d, want 3", n)
	}
	ls, _ := l.Lease("x")
	if n := l.PendingTotal(); n != 2 {
		t.Fatalf("PendingTotal() = %d after lease, want 2", n)
	}
	l.Complete(ls)
	if n := l.PendingTotal(); n != 2 {
		t.Fatalf("PendingTotal() = %d after complete, want 2", n)
	}
	// Owner scan order is deterministic: sorted registration order is
	// whatever Add saw first; victims resolve ties by that order.
	want := []string{"x", "y"}
	gotOrder := append([]string(nil), l.order...)
	sort.Strings(gotOrder)
	if !equalStrings(gotOrder, want) {
		t.Fatalf("owners = %v, want %v", gotOrder, want)
	}
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
