package engine

import (
	"sync"
)

// Ledger is the engine's pull-based unit-leasing primitive: work
// items are assigned to named owners (one pending deque per owner —
// a backend's share of a campaign, say), and owner workers *pull*
// leases instead of having units pushed at them.  A worker whose own
// deque is empty steals from the back of the peer with the most
// pending work — the slowest owner — so one degraded owner cannot
// tail-block a run: its untouched share drains through everyone
// else.  The coordinator (internal/coord) drives its fleet dispatch
// loop on a Ledger; the type itself knows nothing about backends or
// HTTP.
//
// The leasing contract mirrors the engine's purity assumption: items
// are independent and may be executed by any owner, so a lease that
// is Released (holder failed, or run canceled) simply returns to its
// origin deque and is picked up — usually stolen — by someone else.
// Every leased item is eventually Completed or Released; the ledger
// is drained exactly when every item has been Completed.
//
// All methods are safe for concurrent use.  Lease blocks while the
// ledger is neither drained nor canceled but has no pending item —
// an outstanding lease may yet be Released back — so workers can
// loop on Lease until it reports false and never busy-wait.
type Ledger[T any] struct {
	mu       sync.Mutex
	cond     *sync.Cond
	pending  map[string][]T
	order    []string // owner scan order (registration order)
	leased   int
	total    int
	complete int
	steals   uint64
	canceled bool
}

// Lease is one leased item: the item itself, the owner whose deque it
// came from, and whether taking it was a steal (the leasing owner's
// own deque was empty).
type Lease[T any] struct {
	Item   T
	Owner  string // origin owner (steal victim when Stolen)
	Stolen bool
}

// NewLedger returns an empty ledger with the given owners registered,
// in scan order.  Further owners may be added with AddOwner.
func NewLedger[T any](owners ...string) *Ledger[T] {
	l := &Ledger[T]{pending: make(map[string][]T)}
	l.cond = sync.NewCond(&l.mu)
	for _, o := range owners {
		l.addOwnerLocked(o)
	}
	return l
}

func (l *Ledger[T]) addOwnerLocked(owner string) {
	if _, ok := l.pending[owner]; ok {
		return
	}
	l.pending[owner] = nil
	l.order = append(l.order, owner)
}

// AddOwner registers an owner (idempotent).  Owners unknown to the
// ledger may still call Lease — they just have nothing of their own
// and always steal — so registration matters only for Add.
func (l *Ledger[T]) AddOwner(owner string) {
	l.mu.Lock()
	l.addOwnerLocked(owner)
	l.mu.Unlock()
}

// Add appends items to owner's pending deque, registering the owner
// if needed, and wakes blocked leasers.
func (l *Ledger[T]) Add(owner string, items ...T) {
	if len(items) == 0 {
		return
	}
	l.mu.Lock()
	l.addOwnerLocked(owner)
	l.pending[owner] = append(l.pending[owner], items...)
	l.total += len(items)
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Lease pulls one item for owner: the front of owner's own deque, or
// — when it is empty — the back of the deque of the peer with the
// most pending items (the steal).  It blocks while no item is
// pending but leases are outstanding (a Release may return one), and
// reports ok == false only when the ledger is drained or canceled.
// Every true lease must be matched by exactly one Complete or
// Release.
func (l *Ledger[T]) Lease(owner string) (Lease[T], bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for {
		if l.canceled {
			return Lease[T]{}, false
		}
		if q := l.pending[owner]; len(q) > 0 {
			item := q[0]
			l.pending[owner] = q[1:]
			l.leased++
			return Lease[T]{Item: item, Owner: owner}, true
		}
		if victim := l.victimLocked(owner); victim != "" {
			q := l.pending[victim]
			item := q[len(q)-1]
			l.pending[victim] = q[:len(q)-1]
			l.leased++
			l.steals++
			return Lease[T]{Item: item, Owner: victim, Stolen: true}, true
		}
		if l.leased == 0 {
			return Lease[T]{}, false // drained: nothing pending, nothing in flight
		}
		l.cond.Wait()
	}
}

// victimLocked picks the owner with the most pending items, excluding
// the leasing owner (whose deque is known empty).  Ties resolve to
// the earliest-registered owner, keeping victim choice deterministic
// for a given ledger state.
func (l *Ledger[T]) victimLocked(owner string) string {
	best, bestN := "", 0
	for _, o := range l.order {
		if o == owner {
			continue
		}
		if n := len(l.pending[o]); n > bestN {
			best, bestN = o, n
		}
	}
	return best
}

// Complete retires a lease: its item is done and never reappears.
func (l *Ledger[T]) Complete(Lease[T]) {
	l.mu.Lock()
	l.leased--
	l.complete++
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Release returns a leased item to the front of its origin owner's
// deque — the holder failed or gave up, and someone else (typically a
// stealing peer) should run it.  Releasing after Cancel still
// requeues the item, so Outstanding reliably reaches zero once every
// holder has released: cancellation never orphans a lease.
func (l *Ledger[T]) Release(ls Lease[T]) {
	l.mu.Lock()
	l.addOwnerLocked(ls.Owner)
	l.pending[ls.Owner] = append([]T{ls.Item}, l.pending[ls.Owner]...)
	l.leased--
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Cancel makes every current and future Lease call report false.
// Outstanding leases are unaffected — holders still Complete or
// Release them — so callers can wait for Outstanding() == 0 to know
// every in-flight item is accounted for.
func (l *Ledger[T]) Cancel() {
	l.mu.Lock()
	l.canceled = true
	l.mu.Unlock()
	l.cond.Broadcast()
}

// Drained reports whether every added item has been Completed.
func (l *Ledger[T]) Drained() bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.complete == l.total
}

// Outstanding returns the number of leases neither Completed nor
// Released.
func (l *Ledger[T]) Outstanding() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.leased
}

// Pending returns the number of items waiting in owner's deque.
func (l *Ledger[T]) Pending(owner string) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.pending[owner])
}

// PendingTotal returns the number of items waiting across all owners.
func (l *Ledger[T]) PendingTotal() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, q := range l.pending {
		n += len(q)
	}
	return n
}

// Steals returns how many leases were taken from a peer's deque.
func (l *Ledger[T]) Steals() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.steals
}
