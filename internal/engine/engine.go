// Package engine is the shared session-execution engine: it fans
// independent units of work — simulator sessions, sweep points — out
// over a bounded worker pool and reassembles results in index order,
// so parallel output is identical to sequential output for every
// worker count.
//
// The measurement campaign is embarrassingly parallel: each session
// boots its own fx8.Cluster and concentrix.System from a derived seed
// and shares no state with any other session.  The engine exploits
// exactly that shape; it makes no attempt to parallelize within a
// session, where cycle-by-cycle ordering is the whole point.
package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DefaultWorkers returns the default degree of parallelism: one worker
// per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// clamp resolves a requested worker count against the number of units:
// zero or negative means DefaultWorkers, and there is never a reason
// to start more workers than units.
func clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Map runs fn(0) ... fn(n-1) on a pool of at most workers goroutines
// and returns the results indexed by unit: out[i] = fn(i) regardless
// of scheduling.  workers <= 0 selects DefaultWorkers.  fn must be
// safe to call from multiple goroutines on distinct indices; a panic
// in any unit is re-raised on the caller after the pool drains.
func Map[T any](workers, n int, fn func(i int) T) []T {
	return MapProgress(workers, n, fn, nil)
}

// MapProgress is Map with a completion callback: after each unit
// finishes, progress(done, n) is invoked with the number of completed
// units so far.  The callback runs on worker goroutines (possibly
// concurrently for distinct counts) and must be cheap and
// thread-safe; nil disables reporting.  Completion order — and hence
// the sequence of done values observed — depends on scheduling, but
// progress(n, n) is always the final call.
func MapProgress[T any](workers, n int, fn func(i int) T, progress func(done, total int)) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = clamp(workers, n)
	if workers == 1 {
		for i := range out {
			out[i] = fn(i)
			if progress != nil {
				progress(i+1, n)
			}
		}
		return out
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n || panicked.Load() != nil {
					return
				}
				func() {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &r)
						}
					}()
					out[i] = fn(i)
				}()
				if progress != nil {
					progress(int(done.Add(1)), n)
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	return out
}

// Memo is a deterministic result cache keyed by a comparable
// configuration.  Concurrent Gets for the same key share one
// computation (the rest block until it finishes); Gets for different
// keys compute independently.  The zero value is ready to use and
// grows without bound; set MaxEntries before first use to cap it.
type Memo[K comparable, V any] struct {
	// MaxEntries, when positive, bounds the number of cached keys:
	// inserting a new key beyond the cap evicts the oldest-inserted
	// key first (FIFO).  Callers holding an evicted value keep it;
	// eviction only forgets the cache's reference.  Zero means
	// unbounded.  Set before first use; not safe to change
	// concurrently with Get.
	MaxEntries int

	mu    sync.Mutex
	m     map[K]*memoEntry[V]
	order []K // insertion order, for FIFO eviction
}

type memoEntry[V any] struct {
	once sync.Once
	done atomic.Bool
	v    V
}

// Get returns the cached value for key, computing it with compute on
// first use.  compute runs outside the cache lock, so a slow
// computation for one key never blocks lookups for another.
func (c *Memo[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e := c.m[key]
	if e == nil {
		if c.MaxEntries > 0 && len(c.order) >= c.MaxEntries {
			evict := c.order[0]
			c.order = c.order[1:]
			delete(c.m, evict)
		}
		e = &memoEntry[V]{}
		c.m[key] = e
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.v = compute()
		e.done.Store(true)
	})
	return e.v
}

// Peek reports whether key has a completed cached value, returning it
// if so.  It never triggers or waits for a computation.
func (c *Memo[K, V]) Peek(key K) (V, bool) {
	var zero V
	c.mu.Lock()
	e := c.m[key]
	c.mu.Unlock()
	if e == nil || !e.done.Load() {
		return zero, false
	}
	return e.v, true
}

// Len returns the number of cached keys, including entries whose
// computation is still in flight.
func (c *Memo[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Purge drops every cached entry.  In-flight computations are
// unaffected — their waiters still receive the computed value — but
// subsequent Gets recompute.
func (c *Memo[K, V]) Purge() {
	c.mu.Lock()
	c.m = nil
	c.order = nil
	c.mu.Unlock()
}
