// Package engine is the shared session-execution engine: it fans
// independent units of work — simulator sessions, sweep points — out
// over a bounded worker pool and reassembles results in index order,
// so parallel output is identical to sequential output for every
// worker count.
//
// The measurement campaign is embarrassingly parallel: each session
// boots its own fx8.Cluster and concentrix.System from a derived seed
// and shares no state with any other session.  The engine exploits
// exactly that shape; it makes no attempt to parallelize within a
// session, where cycle-by-cycle ordering is the whole point.
//
// # Per-worker state
//
// Every Map variant runs on one pool of exactly min(workers, n)
// goroutines pulling unit indices from a shared atomic counter —
// never a goroutine per unit — so a worker is a stable home for
// scratch that is expensive to build and unsafe to share.  The
// contract has three clauses: (1) state is created once per worker,
// on the worker's goroutine, and is never touched by two units
// concurrently; (2) fn owns the state only for the duration of one
// call and must not retain it; (3) the result of a unit must be a
// pure function of its index — state is scratch, never input — which
// is what keeps output identical across worker counts.  MapWith
// threads such state explicitly; code whose scratch should outlive
// one Map call (core's session arenas) uses a sync.Pool instead,
// which degenerates to the same per-worker ownership under a pool
// because each goroutine re-Gets the arena it just Put.
//
// # Instrumentation
//
// Every pool books its units through process-wide atomic counters —
// queue depth, in-flight units, cumulative worker busy time —
// snapshotted by Stats().  The fx8d service exports these through
// /v1/metrics; the engine itself depends on nothing, so the
// accounting costs a handful of atomics and two clock reads per
// unit, invisible next to units that each simulate millions of
// machine cycles.
package engine

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// DefaultWorkers returns the default degree of parallelism: one worker
// per available CPU.
func DefaultWorkers() int { return runtime.GOMAXPROCS(0) }

// poolStats is the engine's process-wide instrumentation: every Map
// variant books units through these atomics, so the service's
// /v1/metrics can report queue depth, in-flight units and worker
// busy time without the engine knowing the service exists.  The cost
// is a few atomic adds and two clock reads per unit — noise against
// units that each simulate millions of machine cycles.
var poolStats struct {
	started   atomic.Uint64
	completed atomic.Uint64
	busyNs    atomic.Int64
	inFlight  atomic.Int64
	queued    atomic.Int64
	pools     atomic.Uint64
}

// PoolStats snapshots the engine's cumulative work accounting across
// every pool the process has run.
type PoolStats struct {
	UnitsStarted   uint64 // units handed to a worker
	UnitsCompleted uint64 // units that returned normally
	InFlight       int64  // units executing right now
	Queued         int64  // units accepted by a pool but not yet started
	BusyNs         int64  // cumulative worker time spent inside units
	Pools          uint64 // Map/RunAll invocations
}

// Stats returns a snapshot of the engine's work accounting.  Gauges
// (InFlight, Queued) are instantaneous; the rest are cumulative since
// process start.
func Stats() PoolStats {
	return PoolStats{
		UnitsStarted:   poolStats.started.Load(),
		UnitsCompleted: poolStats.completed.Load(),
		InFlight:       poolStats.inFlight.Load(),
		Queued:         poolStats.queued.Load(),
		BusyNs:         poolStats.busyNs.Load(),
		Pools:          poolStats.pools.Load(),
	}
}

// runUnit books one unit's execution around fn: queue leave,
// in-flight window, busy time, completion.
func runUnit(run func()) {
	poolStats.queued.Add(-1)
	poolStats.started.Add(1)
	poolStats.inFlight.Add(1)
	t0 := time.Now()
	defer func() {
		poolStats.busyNs.Add(int64(time.Since(t0)))
		poolStats.inFlight.Add(-1)
	}()
	run()
	poolStats.completed.Add(1)
}

// clamp resolves a requested worker count against the number of units:
// zero or negative means DefaultWorkers, and there is never a reason
// to start more workers than units.
func clamp(workers, n int) int {
	if workers <= 0 {
		workers = DefaultWorkers()
	}
	if workers > n {
		workers = n
	}
	return workers
}

// Map runs fn(0) ... fn(n-1) on a pool of at most workers goroutines
// and returns the results indexed by unit: out[i] = fn(i) regardless
// of scheduling.  workers <= 0 selects DefaultWorkers.  fn must be
// safe to call from multiple goroutines on distinct indices; a panic
// in any unit is re-raised on the caller after the pool drains.
func Map[T any](workers, n int, fn func(i int) T) []T {
	return MapProgress(workers, n, fn, nil)
}

// MapWith is Map with per-worker state: each worker goroutine calls
// newState exactly once and threads the returned value through every
// unit it runs, so S can hold scratch that is expensive to build and
// unsafe to share — a simulator arena, a decode buffer, a local RNG.
// newState runs on the worker goroutine; fn(s, i) owns s for the
// duration of the call and must not retain it past returning.  States
// are never shared between workers, never used concurrently, and are
// dropped when the pool drains (put long-lived scratch in a sync.Pool
// instead if it should outlive the call).  For every worker count the
// output is out[i] = fn(·, i) in index order; determinism therefore
// requires fn's result to be independent of which state runs it —
// state must be scratch, not input.
func MapWith[S, T any](workers, n int, newState func() S, fn func(s S, i int) T) []T {
	return mapPool(workers, n, newState, fn, nil)
}

// MapProgress is Map with a completion callback: after each unit
// finishes, progress(done, n) is invoked with the number of completed
// units so far.  The callback runs on worker goroutines (possibly
// concurrently for distinct counts) and must be cheap and
// thread-safe; nil disables reporting.  Completion order — and hence
// the sequence of done values observed — depends on scheduling.  When
// every unit returns normally, progress(n, n) is always the final
// call; if a unit panics, the panic is re-raised after the pool
// drains, the panicking unit is not counted, and progress never
// reports n — callers observing a panic must not expect a final
// full-count call.
func MapProgress[T any](workers, n int, fn func(i int) T, progress func(done, total int)) []T {
	return mapPool(workers, n, func() struct{} { return struct{}{} },
		func(_ struct{}, i int) T { return fn(i) }, progress)
}

// mapPool is the one worker pool behind Map, MapWith and MapProgress:
// exactly min(workers, n) goroutines are started (never one per unit)
// and each pulls unit indices from a shared atomic counter until the
// units are exhausted, building its per-worker state once on the way
// in.  The only cross-worker synchronization on the unit path is that
// counter (plus the optional progress counter), so workers running
// allocation-free units share nothing that serializes them.
func mapPool[S, T any](workers, n int, newState func() S, fn func(s S, i int) T, progress func(done, total int)) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	workers = clamp(workers, n)

	// Work accounting: n units enter the queue now; each leaves it as
	// a worker picks it up (runUnit), and whatever never started —
	// units abandoned after a panic — is drained on the way out so
	// the queue gauge always returns to zero.
	poolStats.pools.Add(1)
	poolStats.queued.Add(int64(n))
	var started atomic.Int64
	defer func() { poolStats.queued.Add(started.Load() - int64(n)) }()

	if workers == 1 {
		s := newState()
		for i := range out {
			started.Add(1)
			runUnit(func() { out[i] = fn(s, i) })
			if progress != nil {
				progress(i+1, n)
			}
		}
		return out
	}

	var (
		next     atomic.Int64
		done     atomic.Int64
		wg       sync.WaitGroup
		panicked atomic.Pointer[any]
	)
	wg.Add(workers)
	for g := 0; g < workers; g++ {
		go func() {
			defer wg.Done()
			s := newState()
			for {
				// Bound-check in int64 before narrowing: on
				// GOARCH=386 the old int(next.Add(1)) wrapped
				// negative past 2^31 and indexed out of range
				// instead of terminating.
				v := next.Add(1) - 1
				if v >= int64(n) || panicked.Load() != nil {
					return
				}
				i := int(v) //fxlint:allow truncation — v < n, an int
				completed := func() (completed bool) {
					defer func() {
						if r := recover(); r != nil {
							panicked.CompareAndSwap(nil, &r)
						}
					}()
					started.Add(1)
					runUnit(func() { out[i] = fn(s, i) })
					return true
				}()
				// A panicked unit is not counted, so done can never
				// reach n once a unit has failed — the documented
				// "no final progress(n, n) after a panic" contract.
				if completed && progress != nil {
					// done counts completed units, so it never
					// exceeds n, an int.
					progress(int(done.Add(1)), n) //fxlint:allow truncation — done <= n
				}
			}
		}()
	}
	wg.Wait()
	if p := panicked.Load(); p != nil {
		panic(*p)
	}
	return out
}

// Memo is a deterministic result cache keyed by a comparable
// configuration.  Concurrent Gets for the same key share one
// computation (the rest block until it finishes); Gets for different
// keys compute independently.  The zero value is ready to use and
// grows without bound; set MaxEntries before first use to cap it.
type Memo[K comparable, V any] struct {
	// MaxEntries, when positive, bounds the number of cached keys:
	// inserting a new key beyond the cap evicts the oldest-inserted
	// key whose computation has completed (FIFO over completed
	// entries).  In-flight entries are never evicted — evicting one
	// would let a concurrent Get for the same key launch a duplicate
	// computation, breaking the singleflight guarantee — so the memo
	// may transiently exceed the cap while more than MaxEntries
	// computations are in flight; it shrinks back as they complete
	// and later insertions evict.  Callers holding an evicted value
	// keep it; eviction only forgets the cache's reference.  Zero
	// means unbounded.  Set before first use; not safe to change
	// concurrently with Get.
	MaxEntries int

	mu    sync.Mutex
	m     map[K]*memoEntry[V]
	order []K // insertion order, for FIFO eviction
}

type memoEntry[V any] struct {
	once sync.Once
	done atomic.Bool
	v    V
}

// Get returns the cached value for key, computing it with compute on
// first use.  compute runs outside the cache lock, so a slow
// computation for one key never blocks lookups for another.
func (c *Memo[K, V]) Get(key K, compute func() V) V {
	c.mu.Lock()
	if c.m == nil {
		c.m = make(map[K]*memoEntry[V])
	}
	e := c.m[key]
	if e == nil {
		// Evict oldest completed entries until the insertion fits the
		// cap.  An in-flight entry must survive: a concurrent Get for
		// its key has to find it and join the computation rather than
		// start a second one.  If only in-flight entries remain, the
		// insertion goes over cap; the loop (not a single eviction)
		// is what shrinks an over-cap memo back to MaxEntries once
		// those computations complete and new keys arrive.
		for c.MaxEntries > 0 && len(c.order) >= c.MaxEntries {
			victim := -1
			for i, k := range c.order {
				if old := c.m[k]; old == nil || old.done.Load() {
					victim = i
					break
				}
			}
			if victim < 0 {
				break
			}
			delete(c.m, c.order[victim])
			c.order = append(c.order[:victim], c.order[victim+1:]...)
		}
		e = &memoEntry[V]{}
		c.m[key] = e
		c.order = append(c.order, key)
	}
	c.mu.Unlock()
	e.once.Do(func() {
		e.v = compute()
		e.done.Store(true)
	})
	return e.v
}

// Peek reports whether key has a completed cached value, returning it
// if so.  It never triggers or waits for a computation.
func (c *Memo[K, V]) Peek(key K) (V, bool) {
	var zero V
	c.mu.Lock()
	e := c.m[key]
	c.mu.Unlock()
	if e == nil || !e.done.Load() {
		return zero, false
	}
	return e.v, true
}

// Len returns the number of cached keys, including entries whose
// computation is still in flight.
func (c *Memo[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}

// Purge drops every cached entry.  In-flight computations are
// unaffected — their waiters still receive the computed value — but
// subsequent Gets recompute.
func (c *Memo[K, V]) Purge() {
	c.mu.Lock()
	c.m = nil
	c.order = nil
	c.mu.Unlock()
}

// Runner executes one independent work unit — a simulator session, a
// sweep point — and returns its result: unit in, result out.  The
// engine's worker pool (Local) computes units in-process; the
// internal/remote client ships them to fx8d backends.  RunUnit must
// be safe for concurrent calls on distinct units, and because every
// unit is a pure function of its description, a Runner may execute a
// unit more than once (retries, hedges) without changing the result.
type Runner[U, R any] interface {
	RunUnit(ctx context.Context, unit U) (R, error)
}

// Local is the in-process Runner: it computes every unit with Fn on
// the calling goroutine.  Concurrency comes from the pool driving it
// (RunAll), not from Local itself.
type Local[U, R any] struct {
	Fn func(U) (R, error)
}

// RunUnit implements Runner.
func (l Local[U, R]) RunUnit(_ context.Context, unit U) (R, error) {
	return l.Fn(unit)
}

// Sizer is optionally implemented by Runners that know their own
// ideal concurrency — a remote client sized by its backend count
// rather than by local CPUs.  RunAll consults it when the caller
// requests the default worker count.
type Sizer interface {
	// Concurrency resolves a requested worker count (<= 0 meaning
	// "you choose") to the pool size the Runner wants driving it.
	Concurrency(requested int) int
}

// BatchRunner is optionally implemented by Runners that can execute
// many units in one round trip — the remote client's batched POST
// amortizes the per-unit HTTP and JSON overhead that dominates the
// sharded path.  RunAll detects it and dispatches batches instead of
// units; because batches are cut from the unit slice in index order
// and each batch returns one result per unit in unit order, batched
// output is identical to unbatched output.
type BatchRunner[U, R any] interface {
	Runner[U, R]

	// BatchUnits returns the preferred number of units per batch;
	// values <= 1 disable batching and RunAll falls back to RunUnit.
	BatchUnits() int

	// RunBatch executes units and returns exactly one result per
	// unit, in unit order.
	RunBatch(ctx context.Context, units []U) ([]R, error)
}

// RunAll drives every unit through r on a bounded worker pool and
// returns results in unit order, so sharded execution is
// byte-identical to local execution for every worker and backend
// count.  workers <= 0 selects DefaultWorkers unless r implements
// Sizer, which then chooses.  progress follows the MapProgress
// contract; nil disables it.  The first unit error cancels ctx for
// the remaining units and is returned after the pool drains.
func RunAll[U, R any](ctx context.Context, workers int, units []U, r Runner[U, R], progress func(done, total int)) ([]R, error) {
	if s, ok := any(r).(Sizer); ok && workers <= 0 {
		workers = s.Concurrency(workers)
	}
	if br, ok := any(r).(BatchRunner[U, R]); ok {
		if size := br.BatchUnits(); size > 1 && len(units) > 1 {
			// Batching amortizes per-unit round trips; it must not
			// starve the pool.  Cap the batch size so every worker
			// (and hence every backend keeping the pool busy) still
			// gets work — small runs degrade to the per-unit path,
			// large runs batch at full size.
			if w := clamp(workers, len(units)); w > 1 {
				if perWorker := (len(units) + w - 1) / w; size > perWorker {
					size = perWorker
				}
			}
			if size > 1 {
				return runAllBatches(ctx, workers, size, units, br, progress)
			}
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
	)
	out := MapProgress(workers, len(units), func(i int) R {
		res, err := r.RunUnit(ctx, units[i])
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			cancel()
		}
		return res
	}, progress)
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}

// runAllBatches is RunAll's batched dispatch: units are cut into
// contiguous index-order batches of at most size, batches fan out
// over the pool, and each batch's results land at its units' offsets
// — so results stay in unit order for every worker count and batch
// size.  progress reports completed units (whole batches at a time),
// and the first batch error cancels the remaining batches.
func runAllBatches[U, R any](ctx context.Context, workers, size int, units []U, r BatchRunner[U, R], progress func(done, total int)) ([]R, error) {
	n := len(units)
	batches := (n + size - 1) / size
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		mu       sync.Mutex
		firstErr error
		done     atomic.Int64
	)
	out := make([]R, n)
	Map(workers, batches, func(bi int) struct{} {
		lo := bi * size
		hi := min(lo+size, n)
		res, err := r.RunBatch(ctx, units[lo:hi])
		if err == nil && len(res) != hi-lo {
			err = fmt.Errorf("engine: batch returned %d results for %d units", len(res), hi-lo)
		}
		if err != nil {
			mu.Lock()
			if firstErr == nil {
				firstErr = err
			}
			mu.Unlock()
			cancel()
			return struct{}{}
		}
		copy(out[lo:hi], res)
		if progress != nil {
			// done sums batch sizes over disjoint [lo,hi) windows of
			// the n units, so it never exceeds n, an int.
			progress(int(done.Add(int64(hi-lo))), n) //fxlint:allow truncation — done <= n
		}
		return struct{}{}
	})
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
