package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got := Map(workers, 50, func(i int) int {
			// Finish out of submission order to stress reassembly.
			time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
			return i * i
		})
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(int) int { return 1 }); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
	if got := Map(4, -3, func(int) int { return 1 }); got != nil {
		t.Errorf("n<0 should return nil, got %v", got)
	}
}

func TestMapEachIndexExactlyOnce(t *testing.T) {
	const n = 200
	var calls [n]atomic.Int32
	Map(8, n, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Errorf("index %d called %d times", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	Map(workers, 40, func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > workers {
		t.Errorf("peak in-flight = %d, want <= %d", p, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "unit 3 failed" {
			t.Errorf("recovered %v, want unit 3's panic", r)
		}
	}()
	Map(4, 8, func(i int) int {
		if i == 3 {
			panic("unit 3 failed")
		}
		return i
	})
	t.Error("Map returned instead of panicking")
}

func TestClamp(t *testing.T) {
	if got := clamp(0, 100); got != DefaultWorkers() {
		t.Errorf("clamp(0, 100) = %d, want DefaultWorkers %d", got, DefaultWorkers())
	}
	if got := clamp(-1, 100); got != DefaultWorkers() {
		t.Errorf("clamp(-1, 100) = %d", got)
	}
	if got := clamp(16, 4); got != 4 {
		t.Errorf("clamp(16, 4) = %d, want 4", got)
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[int, int]
	var computes atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				if got := m.Get(k, func() int {
					computes.Add(1)
					time.Sleep(time.Millisecond)
					return k * 10
				}); got != k*10 {
					t.Errorf("Get(%d) = %d", k, got)
				}
			}
		}()
	}
	wg.Wait()
	if c := computes.Load(); c != 4 {
		t.Errorf("computed %d times, want once per key (4)", c)
	}
}

func TestMapProgressReachesTotal(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var calls atomic.Int32
		var sawFinal atomic.Bool
		const n = 25
		Map := MapProgress(workers, n, func(i int) int { return i }, func(done, total int) {
			calls.Add(1)
			if total != n {
				t.Errorf("workers=%d: total = %d, want %d", workers, total, n)
			}
			if done == total {
				sawFinal.Store(true)
			}
		})
		if len(Map) != n {
			t.Fatalf("workers=%d: len = %d", workers, len(Map))
		}
		if c := calls.Load(); c != n {
			t.Errorf("workers=%d: progress called %d times, want %d", workers, c, n)
		}
		if !sawFinal.Load() {
			t.Errorf("workers=%d: progress never reported done == total", workers)
		}
	}
}

func TestMemoMaxEntriesEvictsOldest(t *testing.T) {
	m := Memo[int, int]{MaxEntries: 2}
	var computes atomic.Int32
	get := func(k int) int {
		return m.Get(k, func() int { computes.Add(1); return k })
	}
	get(1)
	get(2)
	get(3) // evicts 1
	if n := m.Len(); n != 2 {
		t.Errorf("Len = %d, want 2", n)
	}
	if _, ok := m.Peek(1); ok {
		t.Error("key 1 should have been evicted")
	}
	if _, ok := m.Peek(3); !ok {
		t.Error("key 3 should be cached")
	}
	get(1) // recomputes
	if c := computes.Load(); c != 4 {
		t.Errorf("computed %d times, want 4 (1, 2, 3, then 1 again)", c)
	}
}

func TestMemoPurge(t *testing.T) {
	var m Memo[int, int]
	var computes atomic.Int32
	for i := 0; i < 3; i++ {
		m.Get(i, func() int { computes.Add(1); return i })
	}
	m.Purge()
	if n := m.Len(); n != 0 {
		t.Errorf("Len after Purge = %d", n)
	}
	m.Get(0, func() int { computes.Add(1); return 0 })
	if c := computes.Load(); c != 4 {
		t.Errorf("computed %d times, want 4 (purge forces recompute)", c)
	}
}

func TestMemoPeekIgnoresInFlight(t *testing.T) {
	var m Memo[string, int]
	started := make(chan struct{})
	release := make(chan struct{})
	go m.Get("k", func() int { close(started); <-release; return 7 })
	<-started
	if _, ok := m.Peek("k"); ok {
		t.Error("Peek returned an in-flight computation")
	}
	close(release)
	if got := m.Get("k", func() int { return 0 }); got != 7 {
		t.Errorf("Get after release = %d, want 7", got)
	}
	if v, ok := m.Peek("k"); !ok || v != 7 {
		t.Errorf("Peek after completion = %d, %v", v, ok)
	}
}

// TestMemoEvictionSkipsInFlight pins the singleflight-under-eviction
// guarantee: an in-flight entry must never be chosen as the eviction
// victim, because a concurrent Get for its key would then launch a
// duplicate computation.
func TestMemoEvictionSkipsInFlight(t *testing.T) {
	m := Memo[int, int]{MaxEntries: 1}
	var computesA atomic.Int32
	started := make(chan struct{})
	release := make(chan struct{})
	firstA := make(chan int, 1)
	go func() {
		firstA <- m.Get(1, func() int {
			computesA.Add(1)
			close(started)
			<-release
			return 10
		})
	}()
	<-started

	// Inserting a second key is over cap, but the only candidate is
	// in flight: it must survive, not be evicted.
	if got := m.Get(2, func() int { return 20 }); got != 20 {
		t.Fatalf("Get(2) = %d", got)
	}

	// A concurrent Get for the in-flight key must join the running
	// computation, not start a second one.
	secondA := make(chan int, 1)
	go func() {
		secondA <- m.Get(1, func() int { computesA.Add(1); return 99 })
	}()
	close(release)
	if a, b := <-firstA, <-secondA; a != 10 || b != 10 {
		t.Errorf("Get(1) pair = %d, %d, want shared result 10", a, b)
	}
	if c := computesA.Load(); c != 1 {
		t.Errorf("key 1 computed %d times under eviction pressure, want 1", c)
	}

	// Once complete, both entries become evictable: the next
	// insertion evicts in a loop, shrinking the over-cap memo all
	// the way back to the bound.
	m.Get(3, func() int { return 30 })
	if n := m.Len(); n != 1 {
		t.Errorf("Len after completion = %d, want the memo back at MaxEntries (1)", n)
	}
}

// TestMemoEvictionUnderChurn races many goroutines over a tiny capped
// memo and checks (under -race) that singleflight accounting stays
// sane: every Get observes the value its key computes.
func TestMemoEvictionUnderChurn(t *testing.T) {
	m := Memo[int, int]{MaxEntries: 2}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := (g + i) % 5
				if got := m.Get(k, func() int { return k * 7 }); got != k*7 {
					t.Errorf("Get(%d) = %d, want %d", k, got, k*7)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestMapProgressPanicSkipsFinalCall pins the documented panic
// contract: a panicking unit is re-raised, is not counted, and
// progress never reports done == total.
func TestMapProgressPanicSkipsFinalCall(t *testing.T) {
	for _, workers := range []int{1, 4} {
		var sawFull atomic.Bool
		func() {
			defer func() {
				if r := recover(); r != "unit 2 failed" {
					t.Errorf("workers=%d: recovered %v, want unit 2's panic", workers, r)
				}
			}()
			MapProgress(workers, 6, func(i int) int {
				if i == 2 {
					panic("unit 2 failed")
				}
				return i
			}, func(done, total int) {
				if done == total {
					sawFull.Store(true)
				}
			})
			t.Errorf("workers=%d: MapProgress returned instead of panicking", workers)
		}()
		if sawFull.Load() {
			t.Errorf("workers=%d: progress reported done == total despite a panicked unit", workers)
		}
	}
}

func TestRunAllMatchesLocalMap(t *testing.T) {
	units := make([]int, 30)
	for i := range units {
		units[i] = i
	}
	r := Local[int, int]{Fn: func(u int) (int, error) { return u * u, nil }}
	for _, workers := range []int{0, 1, 3} {
		got, err := RunAll(context.Background(), workers, units, r, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestRunAllPropagatesFirstError(t *testing.T) {
	boom := errors.New("boom")
	r := Local[int, int]{Fn: func(u int) (int, error) {
		if u == 5 {
			return 0, fmt.Errorf("unit %d: %w", u, boom)
		}
		return u, nil
	}}
	units := make([]int, 10)
	for i := range units {
		units[i] = i
	}
	out, err := RunAll(context.Background(), 4, units, r, nil)
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if out != nil {
		t.Errorf("out = %v, want nil on error", out)
	}
}

// TestRunAllCancelsContextOnError: the ctx handed to remaining units
// is canceled once any unit fails, so remote units fail fast instead
// of completing work whose batch is already doomed.  The assertion is
// timing: without cancellation the surviving units would sleep out
// their full 5s budget.
func TestRunAllCancelsContextOnError(t *testing.T) {
	start := time.Now()
	_, err := RunAll(context.Background(), 2, []int{0, 1, 2, 3},
		runnerFunc[int, int](func(ctx context.Context, u int) (int, error) {
			if u == 0 {
				return 0, errors.New("first unit fails")
			}
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-time.After(5 * time.Second):
				return u, nil
			}
		}), nil)
	if err == nil {
		t.Fatal("want error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("RunAll took %v; cancellation did not propagate to running units", elapsed)
	}
}

// runnerFunc adapts a function to the Runner interface for tests.
type runnerFunc[U, R any] func(ctx context.Context, u U) (R, error)

func (f runnerFunc[U, R]) RunUnit(ctx context.Context, u U) (R, error) { return f(ctx, u) }

// sizedRunner tests the Sizer escape hatch.
type sizedRunner struct{ picked atomic.Int32 }

func (s *sizedRunner) RunUnit(_ context.Context, u int) (int, error) { return u, nil }
func (s *sizedRunner) Concurrency(requested int) int {
	s.picked.Add(1)
	return 2
}

func TestRunAllConsultsSizer(t *testing.T) {
	var r sizedRunner
	if _, err := RunAll(context.Background(), 0, []int{1, 2, 3}, &r, nil); err != nil {
		t.Fatal(err)
	}
	if r.picked.Load() == 0 {
		t.Error("RunAll ignored the Runner's Sizer with workers <= 0")
	}
	r.picked.Store(0)
	if _, err := RunAll(context.Background(), 3, []int{1, 2, 3}, &r, nil); err != nil {
		t.Fatal(err)
	}
	if r.picked.Load() != 0 {
		t.Error("RunAll consulted Sizer despite an explicit worker count")
	}
}

// batchRunner tests the BatchRunner dispatch: it records batch sizes
// and can fail or mis-size a chosen batch.
type batchRunner struct {
	size      int
	mu        sync.Mutex
	batches   [][]int
	unitCalls atomic.Int32
	failAt    int // 1-based batch ordinal to fail, 0 = never
	shortAt   int // 1-based batch ordinal to return short, 0 = never
}

func (b *batchRunner) RunUnit(_ context.Context, u int) (int, error) {
	b.unitCalls.Add(1)
	return u * u, nil
}

func (b *batchRunner) BatchUnits() int { return b.size }

func (b *batchRunner) RunBatch(_ context.Context, units []int) ([]int, error) {
	b.mu.Lock()
	b.batches = append(b.batches, append([]int(nil), units...))
	ordinal := len(b.batches)
	b.mu.Unlock()
	if ordinal == b.failAt {
		return nil, errors.New("batch failed")
	}
	out := make([]int, len(units))
	for i, u := range units {
		out[i] = u * u
	}
	if ordinal == b.shortAt {
		out = out[:len(out)-1]
	}
	return out, nil
}

func TestRunAllDispatchesBatches(t *testing.T) {
	units := make([]int, 20)
	for i := range units {
		units[i] = i
	}
	r := &batchRunner{size: 5}
	got, err := RunAll(context.Background(), 4, units, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if r.unitCalls.Load() != 0 {
		t.Errorf("RunUnit called %d times; batches should carry all units", r.unitCalls.Load())
	}
	if len(r.batches) != 4 {
		t.Errorf("got %d batches, want 4 (20 units / 5 per batch)", len(r.batches))
	}
	for _, b := range r.batches {
		for i := 1; i < len(b); i++ {
			if b[i] != b[i-1]+1 {
				t.Errorf("batch %v is not a contiguous index-order run", b)
			}
		}
	}
}

func TestRunAllCapsBatchSizeToKeepWorkersFed(t *testing.T) {
	// 8 units, batch size 16, 4 workers: a single 8-unit batch would
	// idle three workers, so the engine cuts per-worker batches of 2.
	units := make([]int, 8)
	for i := range units {
		units[i] = i
	}
	r := &batchRunner{size: 16}
	got, err := RunAll(context.Background(), 4, units, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
	if r.unitCalls.Load() != 0 {
		t.Errorf("RunUnit called %d times, want batched dispatch", r.unitCalls.Load())
	}
	if len(r.batches) != 4 {
		t.Errorf("got %d batches, want 4 (one per worker)", len(r.batches))
	}
}

func TestRunAllBatchSizeOneUsesUnitPath(t *testing.T) {
	// 2 units across 2 workers leave one unit per worker: batching
	// would amortize nothing, so the per-unit path runs.
	r := &batchRunner{size: 16}
	got, err := RunAll(context.Background(), 2, []int{3, 4}, r, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 9 || got[1] != 16 {
		t.Fatalf("got %v, want [9 16]", got)
	}
	if len(r.batches) != 0 {
		t.Errorf("got %d batches, want unit-path dispatch", len(r.batches))
	}
	if r.unitCalls.Load() != 2 {
		t.Errorf("RunUnit called %d times, want 2", r.unitCalls.Load())
	}
}

func TestRunAllBatchErrorPropagates(t *testing.T) {
	units := make([]int, 20)
	for i := range units {
		units[i] = i
	}
	r := &batchRunner{size: 5, failAt: 2}
	if _, err := RunAll(context.Background(), 1, units, r, nil); err == nil {
		t.Error("want error from failed batch")
	}
	short := &batchRunner{size: 5, shortAt: 1}
	_, err := RunAll(context.Background(), 1, units, short, nil)
	if err == nil || !strings.Contains(err.Error(), "results") {
		t.Errorf("err = %v, want result-count mismatch", err)
	}
}

func TestRunAllBatchProgressCountsUnits(t *testing.T) {
	units := make([]int, 12)
	for i := range units {
		units[i] = i
	}
	var finalDone atomic.Int32
	r := &batchRunner{size: 3}
	// One worker keeps progress calls sequential, so the last call
	// observed is the final one.
	_, err := RunAll(context.Background(), 1, units, r, func(done, total int) {
		if total != 12 {
			t.Errorf("progress total = %d, want 12 units (not batches)", total)
		}
		finalDone.Store(int32(done))
	})
	if err != nil {
		t.Fatal(err)
	}
	if finalDone.Load() != 12 {
		t.Errorf("final progress done = %d, want 12", finalDone.Load())
	}
}

func TestMemoKeysIndependent(t *testing.T) {
	var m Memo[string, string]
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Get("slow", func() string { <-release; return "s" })
		close(done)
	}()
	// A different key must not block behind the slow computation.
	got := make(chan string, 1)
	go func() { got <- m.Get("fast", func() string { return "f" }) }()
	select {
	case v := <-got:
		if v != "f" {
			t.Errorf("fast key = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast key blocked behind slow key")
	}
	close(release)
	<-done
}

// TestMapWithOneStatePerWorker pins the pool shape satellite: MapWith
// builds exactly min(workers, n) states — one per pool goroutine,
// never one per unit — which is only possible if the pool starts a
// bounded number of goroutines that each loop over units.
func TestMapWithOneStatePerWorker(t *testing.T) {
	for _, tc := range []struct{ workers, n, want int }{
		{4, 100, 4},
		{8, 3, 3},
		{1, 50, 1},
	} {
		var states atomic.Int32
		got := MapWith(tc.workers, tc.n, func() int {
			return int(states.Add(1))
		}, func(s, i int) int {
			if s < 1 || s > tc.want {
				t.Errorf("unit %d ran with state %d, want 1..%d", i, s, tc.want)
			}
			return i
		})
		if int(states.Load()) != tc.want {
			t.Errorf("workers=%d n=%d: newState called %d times, want %d",
				tc.workers, tc.n, states.Load(), tc.want)
		}
		for i, v := range got {
			if v != i {
				t.Fatalf("out[%d] = %d", i, v)
			}
		}
	}
}

// mutableState is per-worker scratch that would race if two units
// ever shared it concurrently: units mutate it without any
// synchronization, so `go test -race` proves the isolation contract.
type mutableState struct {
	units int
	sum   int
}

// TestMapWithStateIsolation runs many quick units over few workers
// and checks, under the race detector, that per-worker state is never
// mutated concurrently and that every unit ran on exactly one state.
func TestMapWithStateIsolation(t *testing.T) {
	const workers, n = 4, 400
	var mu sync.Mutex
	var states []*mutableState
	MapWith(workers, n, func() *mutableState {
		s := &mutableState{}
		mu.Lock()
		states = append(states, s)
		mu.Unlock()
		return s
	}, func(s *mutableState, i int) int {
		s.units++ // unsynchronized on purpose: -race enforces ownership
		s.sum += i
		return i
	})
	totalUnits, totalSum := 0, 0
	for _, s := range states {
		totalUnits += s.units
		totalSum += s.sum
	}
	if totalUnits != n {
		t.Errorf("states saw %d units, want %d", totalUnits, n)
	}
	if want := n * (n - 1) / 2; totalSum != want {
		t.Errorf("states saw index sum %d, want %d", totalSum, want)
	}
}

// TestMapWithPanicPropagates: MapWith shares the pool's panic
// contract with Map.
func TestMapWithPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r == nil {
			t.Error("panic did not propagate")
		}
	}()
	MapWith(4, 20, func() int { return 0 }, func(s, i int) int {
		if i == 7 {
			panic("unit 7")
		}
		return i
	})
}

// TestStatsAccountsUnits: the pool's process-wide work accounting
// must book every unit — started, completed, busy time — and its
// gauges (queued, in-flight) must return to their pre-call level
// even when a unit panics mid-pool.
func TestStatsAccountsUnits(t *testing.T) {
	before := Stats()
	const n = 24
	Map(4, n, func(i int) int {
		time.Sleep(100 * time.Microsecond)
		return i
	})
	after := Stats()
	if got := after.UnitsStarted - before.UnitsStarted; got != n {
		t.Errorf("UnitsStarted delta = %d, want %d", got, n)
	}
	if got := after.UnitsCompleted - before.UnitsCompleted; got != n {
		t.Errorf("UnitsCompleted delta = %d, want %d", got, n)
	}
	if after.BusyNs <= before.BusyNs {
		t.Errorf("BusyNs did not advance: %d -> %d", before.BusyNs, after.BusyNs)
	}
	if after.Pools != before.Pools+1 {
		t.Errorf("Pools delta = %d, want 1", after.Pools-before.Pools)
	}

	// Gauges return to baseline after a panicking pool too: the
	// abandoned units drain from the queue on the way out.
	func() {
		defer func() { recover() }()
		Map(2, 16, func(i int) int {
			if i == 3 {
				panic("boom")
			}
			return i
		})
	}()
	// In-flight/queued are global gauges shared with parallel tests,
	// so assert deltas only when the process is otherwise quiet: the
	// panicking pool must not leak its own bookkeeping.
	end := Stats()
	if leaked := (end.Queued - before.Queued) + (end.InFlight - before.InFlight); leaked < 0 {
		t.Errorf("gauges went negative relative to baseline: queued %d in-flight %d",
			end.Queued, end.InFlight)
	}
	if end.UnitsCompleted > end.UnitsStarted {
		t.Errorf("completed %d exceeds started %d", end.UnitsCompleted, end.UnitsStarted)
	}
}
