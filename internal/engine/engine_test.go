package engine

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapResultsInIndexOrder(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 8, 100} {
		got := Map(workers, 50, func(i int) int {
			// Finish out of submission order to stress reassembly.
			time.Sleep(time.Duration((i*7)%5) * time.Millisecond)
			return i * i
		})
		if len(got) != 50 {
			t.Fatalf("workers=%d: len = %d", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	if got := Map(4, 0, func(int) int { return 1 }); got != nil {
		t.Errorf("n=0 should return nil, got %v", got)
	}
	if got := Map(4, -3, func(int) int { return 1 }); got != nil {
		t.Errorf("n<0 should return nil, got %v", got)
	}
}

func TestMapEachIndexExactlyOnce(t *testing.T) {
	const n = 200
	var calls [n]atomic.Int32
	Map(8, n, func(i int) struct{} {
		calls[i].Add(1)
		return struct{}{}
	})
	for i := range calls {
		if c := calls[i].Load(); c != 1 {
			t.Errorf("index %d called %d times", i, c)
		}
	}
}

func TestMapBoundsConcurrency(t *testing.T) {
	const workers = 3
	var inFlight, peak atomic.Int32
	Map(workers, 40, func(i int) int {
		cur := inFlight.Add(1)
		for {
			p := peak.Load()
			if cur <= p || peak.CompareAndSwap(p, cur) {
				break
			}
		}
		time.Sleep(time.Millisecond)
		inFlight.Add(-1)
		return i
	})
	if p := peak.Load(); p > workers {
		t.Errorf("peak in-flight = %d, want <= %d", p, workers)
	}
}

func TestMapPanicPropagates(t *testing.T) {
	defer func() {
		if r := recover(); r != "unit 3 failed" {
			t.Errorf("recovered %v, want unit 3's panic", r)
		}
	}()
	Map(4, 8, func(i int) int {
		if i == 3 {
			panic("unit 3 failed")
		}
		return i
	})
	t.Error("Map returned instead of panicking")
}

func TestClamp(t *testing.T) {
	if got := clamp(0, 100); got != DefaultWorkers() {
		t.Errorf("clamp(0, 100) = %d, want DefaultWorkers %d", got, DefaultWorkers())
	}
	if got := clamp(-1, 100); got != DefaultWorkers() {
		t.Errorf("clamp(-1, 100) = %d", got)
	}
	if got := clamp(16, 4); got != 4 {
		t.Errorf("clamp(16, 4) = %d, want 4", got)
	}
}

func TestMemoComputesOncePerKey(t *testing.T) {
	var m Memo[int, int]
	var computes atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 4; k++ {
				if got := m.Get(k, func() int {
					computes.Add(1)
					time.Sleep(time.Millisecond)
					return k * 10
				}); got != k*10 {
					t.Errorf("Get(%d) = %d", k, got)
				}
			}
		}()
	}
	wg.Wait()
	if c := computes.Load(); c != 4 {
		t.Errorf("computed %d times, want once per key (4)", c)
	}
}

func TestMemoKeysIndependent(t *testing.T) {
	var m Memo[string, string]
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		m.Get("slow", func() string { <-release; return "s" })
		close(done)
	}()
	// A different key must not block behind the slow computation.
	got := make(chan string, 1)
	go func() { got <- m.Get("fast", func() string { return "f" }) }()
	select {
	case v := <-got:
		if v != "f" {
			t.Errorf("fast key = %q", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("fast key blocked behind slow key")
	}
	close(release)
	<-done
}
