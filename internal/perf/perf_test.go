package perf

import (
	"bytes"
	"strings"
	"testing"
)

const streamFixture = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkClusterStep-8   \t  123456\t      9876 ns/op\t     144 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSession-8   \t     100\t  17807386 ns/op\t 1934659 B/op\t    4887 allocs/op\t   0.350 Cw\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`

func TestParseStream(t *testing.T) {
	s, err := Parse(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(s.Results))
	}
	r := s.Results[0]
	if r.Name != "BenchmarkClusterStep" || r.Iterations != 123456 || r.NsPerOp != 9876 ||
		r.BytesPerOp != 144 || r.AllocsPerOp != 3 {
		t.Errorf("first result = %+v", r)
	}
	if s.Results[1].Metrics["Cw"] != 0.350 {
		t.Errorf("custom metric lost: %+v", s.Results[1])
	}
}

func TestParsePlainTextAndCountFolding(t *testing.T) {
	text := `goos: linux
BenchmarkX-16   	100	 2000 ns/op
BenchmarkX-16   	100	 1500 ns/op
BenchmarkX-16   	100	 1800 ns/op
PASS
`
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 1 {
		t.Fatalf("results = %d, want 1 (folded)", len(s.Results))
	}
	if s.Results[0].Name != "BenchmarkX" || s.Results[0].NsPerOp != 1500 {
		t.Errorf("folded result = %+v, want min ns/op 1500", s.Results[0])
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(s.Results) {
		t.Fatalf("round trip lost results: %d vs %d", len(back.Results), len(s.Results))
	}
	for i := range s.Results {
		a, b := s.Results[i], back.Results[i]
		if a.Name != b.Name || a.NsPerOp != b.NsPerOp || a.AllocsPerOp != b.AllocsPerOp {
			t.Errorf("result %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestParseRejectsUnknownVersion(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"version": 99, "results": []}`)); err == nil {
		t.Fatal("version 99 should be rejected")
	}
}

func set(pairs ...any) Set {
	s := Set{Version: setVersion}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Results = append(s.Results, Result{Name: pairs[i].(string), NsPerOp: pairs[i+1].(float64), Iterations: 1})
	}
	return s
}

func TestCompareClassification(t *testing.T) {
	oldSet := set("A", 1000.0, "B", 1000.0, "C", 1000.0, "D", 1000.0)
	newSet := set("A", 1100.0, "B", 1200.0, "C", 700.0, "E", 50.0)
	rep := Compare(oldSet, newSet, 0.15)

	want := map[string]Status{
		"A": StatusOK,         // +10% within 15%
		"B": StatusRegression, // +20%
		"C": StatusFaster,     // -30%
		"D": StatusVanished,
		"E": StatusNew,
	}
	if len(rep.Deltas) != len(want) {
		t.Fatalf("deltas = %d, want %d", len(rep.Deltas), len(want))
	}
	for _, d := range rep.Deltas {
		if want[d.Name] != d.Status {
			t.Errorf("%s: status = %s, want %s", d.Name, d.Status, want[d.Name])
		}
	}

	fails := rep.Failures(false)
	if len(fails) != 2 {
		t.Errorf("failures = %+v, want regression B and vanished D", fails)
	}
	fails = rep.Failures(true)
	if len(fails) != 1 || fails[0].Name != "B" {
		t.Errorf("failures(allowMissing) = %+v, want only B", fails)
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	rep := Compare(set("A", 1000.0), set("A", 1150.0), 0.15)
	if rep.Deltas[0].Status != StatusOK {
		t.Errorf("exactly +15%% should pass, got %s", rep.Deltas[0].Status)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":         "BenchmarkX",
		"BenchmarkX-128":       "BenchmarkX",
		"BenchmarkX/sub=2-8":   "BenchmarkX/sub=2",
		"BenchmarkNoSuffix":    "BenchmarkNoSuffix",
		"BenchmarkDash-suffix": "BenchmarkDash-suffix",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCompareCarriesMetricDeltas(t *testing.T) {
	oldSet := Set{Version: 1, Results: []Result{
		{Name: "BenchmarkRunStudy/workers=max", NsPerOp: 900, Metrics: map[string]float64{"speedup-x": 1.0}},
	}}
	newSet := Set{Version: 1, Results: []Result{
		{Name: "BenchmarkRunStudy/workers=max", NsPerOp: 300, Metrics: map[string]float64{"speedup-x": 3.2, "extra": 7}},
	}}
	rep := Compare(oldSet, newSet, 0.15)
	if len(rep.Deltas) != 1 {
		t.Fatalf("deltas = %d", len(rep.Deltas))
	}
	m := rep.Deltas[0].Metrics
	if len(m) != 2 {
		t.Fatalf("metric deltas = %+v, want union of 2 units", m)
	}
	// Sorted by unit: extra before speedup-x.
	if m[0].Unit != "extra" || m[0].Old != 0 || m[0].New != 7 {
		t.Errorf("extra delta = %+v", m[0])
	}
	if m[1].Unit != "speedup-x" || m[1].Old != 1.0 || m[1].New != 3.2 {
		t.Errorf("speedup delta = %+v", m[1])
	}
	var buf bytes.Buffer
	rep.Format(&buf)
	out := buf.String()
	if !strings.Contains(out, "speedup-x") || !strings.Contains(out, "3.2") {
		t.Errorf("formatted report omits metric movement:\n%s", out)
	}
	// Metrics never gate.
	if fails := rep.Failures(false); len(fails) != 0 {
		t.Errorf("metric movement gated the report: %+v", fails)
	}
}

func TestSummarizeMetricsAndGeomean(t *testing.T) {
	s := Set{Version: 1, Results: []Result{
		{Name: "BenchmarkA", Iterations: 10, NsPerOp: 100},
		{Name: "BenchmarkB", Iterations: 10, NsPerOp: 400, Metrics: map[string]float64{"speedup-x": 3.1}},
	}}
	gm, n := s.GeomeanNsPerOp()
	if n != 2 || gm < 199.9 || gm > 200.1 {
		t.Errorf("geomean = %v over %d, want 200 over 2", gm, n)
	}
	var buf bytes.Buffer
	s.Summarize(&buf)
	out := buf.String()
	if !strings.Contains(out, "speedup-x") {
		t.Errorf("summary omits custom metric:\n%s", out)
	}
	if !strings.Contains(out, "geomean") || !strings.Contains(out, "(over 2 benchmarks)") {
		t.Errorf("summary omits geomean line:\n%s", out)
	}
}

func TestGeomeanEmptySet(t *testing.T) {
	if gm, n := (Set{}).GeomeanNsPerOp(); gm != 0 || n != 0 {
		t.Errorf("empty set geomean = %v, %d", gm, n)
	}
	var buf bytes.Buffer
	(Set{}).Summarize(&buf)
	if strings.Contains(buf.String(), "geomean") {
		t.Error("empty set should not print a geomean line")
	}
}

func TestCountFoldingKeepsBestMetrics(t *testing.T) {
	text := `BenchmarkRunStudy/workers=max-8   	1	 900 ns/op	 2.1 speedup-x
BenchmarkRunStudy/workers=max-8   	1	 800 ns/op	 1.4 speedup-x
BenchmarkRunStudy/workers=max-8   	1	 850 ns/op	 3.0 speedup-x
PASS
`
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 1 {
		t.Fatalf("results = %d, want 1 (folded)", len(s.Results))
	}
	r := s.Results[0]
	if r.NsPerOp != 800 {
		t.Errorf("folded ns/op = %v, want fastest 800", r.NsPerOp)
	}
	if r.Metrics["speedup-x"] != 3.0 {
		t.Errorf("folded speedup-x = %v, want best 3.0 (not the fastest repeat's 1.4)", r.Metrics["speedup-x"])
	}
}

func TestParseReportsOverlongLine(t *testing.T) {
	// A single line longer than the 1 MiB scanner buffer must be a
	// parse error, not a silently truncated set.
	text := "BenchmarkA-8 \t10\t100 ns/op\n" + strings.Repeat("x", 2<<20) + "\nBenchmarkB-8 \t10\t200 ns/op\n"
	if _, err := Parse(strings.NewReader(text)); err == nil {
		t.Error("over-long line parsed without error (set would be silently truncated)")
	}
}
