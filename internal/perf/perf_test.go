package perf

import (
	"bytes"
	"strings"
	"testing"
)

const streamFixture = `{"Action":"start","Package":"repro"}
{"Action":"output","Package":"repro","Output":"goos: linux\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkClusterStep-8   \t  123456\t      9876 ns/op\t     144 B/op\t       3 allocs/op\n"}
{"Action":"output","Package":"repro","Output":"BenchmarkSession-8   \t     100\t  17807386 ns/op\t 1934659 B/op\t    4887 allocs/op\t   0.350 Cw\n"}
{"Action":"output","Package":"repro","Output":"PASS\n"}
{"Action":"pass","Package":"repro"}
`

func TestParseStream(t *testing.T) {
	s, err := Parse(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 2 {
		t.Fatalf("results = %d, want 2", len(s.Results))
	}
	r := s.Results[0]
	if r.Name != "BenchmarkClusterStep" || r.Iterations != 123456 || r.NsPerOp != 9876 ||
		r.BytesPerOp != 144 || r.AllocsPerOp != 3 {
		t.Errorf("first result = %+v", r)
	}
	if s.Results[1].Metrics["Cw"] != 0.350 {
		t.Errorf("custom metric lost: %+v", s.Results[1])
	}
}

func TestParsePlainTextAndCountFolding(t *testing.T) {
	text := `goos: linux
BenchmarkX-16   	100	 2000 ns/op
BenchmarkX-16   	100	 1500 ns/op
BenchmarkX-16   	100	 1800 ns/op
PASS
`
	s, err := Parse(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Results) != 1 {
		t.Fatalf("results = %d, want 1 (folded)", len(s.Results))
	}
	if s.Results[0].Name != "BenchmarkX" || s.Results[0].NsPerOp != 1500 {
		t.Errorf("folded result = %+v, want min ns/op 1500", s.Results[0])
	}
}

func TestRoundTrip(t *testing.T) {
	s, err := Parse(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Results) != len(s.Results) {
		t.Fatalf("round trip lost results: %d vs %d", len(back.Results), len(s.Results))
	}
	for i := range s.Results {
		a, b := s.Results[i], back.Results[i]
		if a.Name != b.Name || a.NsPerOp != b.NsPerOp || a.AllocsPerOp != b.AllocsPerOp {
			t.Errorf("result %d changed: %+v vs %+v", i, a, b)
		}
	}
}

func TestParseRejectsUnknownVersion(t *testing.T) {
	if _, err := Parse(strings.NewReader(`{"version": 99, "results": []}`)); err == nil {
		t.Fatal("version 99 should be rejected")
	}
}

func set(pairs ...any) Set {
	s := Set{Version: setVersion}
	for i := 0; i+1 < len(pairs); i += 2 {
		s.Results = append(s.Results, Result{Name: pairs[i].(string), NsPerOp: pairs[i+1].(float64), Iterations: 1})
	}
	return s
}

func TestCompareClassification(t *testing.T) {
	oldSet := set("A", 1000.0, "B", 1000.0, "C", 1000.0, "D", 1000.0)
	newSet := set("A", 1100.0, "B", 1200.0, "C", 700.0, "E", 50.0)
	rep := Compare(oldSet, newSet, 0.15)

	want := map[string]Status{
		"A": StatusOK,         // +10% within 15%
		"B": StatusRegression, // +20%
		"C": StatusFaster,     // -30%
		"D": StatusVanished,
		"E": StatusNew,
	}
	if len(rep.Deltas) != len(want) {
		t.Fatalf("deltas = %d, want %d", len(rep.Deltas), len(want))
	}
	for _, d := range rep.Deltas {
		if want[d.Name] != d.Status {
			t.Errorf("%s: status = %s, want %s", d.Name, d.Status, want[d.Name])
		}
	}

	fails := rep.Failures(false)
	if len(fails) != 2 {
		t.Errorf("failures = %+v, want regression B and vanished D", fails)
	}
	fails = rep.Failures(true)
	if len(fails) != 1 || fails[0].Name != "B" {
		t.Errorf("failures(allowMissing) = %+v, want only B", fails)
	}
}

func TestCompareExactThresholdPasses(t *testing.T) {
	rep := Compare(set("A", 1000.0), set("A", 1150.0), 0.15)
	if rep.Deltas[0].Status != StatusOK {
		t.Errorf("exactly +15%% should pass, got %s", rep.Deltas[0].Status)
	}
}

func TestNormalizeName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-8":         "BenchmarkX",
		"BenchmarkX-128":       "BenchmarkX",
		"BenchmarkX/sub=2-8":   "BenchmarkX/sub=2",
		"BenchmarkNoSuffix":    "BenchmarkNoSuffix",
		"BenchmarkDash-suffix": "BenchmarkDash-suffix",
	} {
		if got := normalizeName(in); got != want {
			t.Errorf("normalizeName(%q) = %q, want %q", in, got, want)
		}
	}
}
