// Package perf is the benchmark-result model shared by make bench,
// cmd/benchdiff and the CI regression gate: it parses `go test -json`
// benchmark events into compact result sets, reads and writes the
// per-layer BENCH_<layer>.json files, and diffs two sets against a
// configurable regression threshold.  Keeping one code path for
// humans and CI means the gate can never drift from what a developer
// sees locally.
package perf

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measured cost: the quantities the study's
// instrumentation-first methodology tracks for every layer of the
// stack.
type Result struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix
	// stripped, so results compare across machines.
	Name string `json:"name"`

	// Iterations is the b.N the numbers were averaged over.
	Iterations int64 `json:"iterations"`

	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`

	// Metrics holds any custom b.ReportMetric values.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Set is a collection of benchmark results — the content of one
// BENCH_<layer>.json file.
type Set struct {
	Version int      `json:"version"`
	Results []Result `json:"results"`
}

// setVersion is the current Set file format version.
const setVersion = 1

// Lookup returns the result with the given (normalized) name.
func (s Set) Lookup(name string) (Result, bool) {
	for _, r := range s.Results {
		if r.Name == name {
			return r, true
		}
	}
	return Result{}, false
}

// testEvent is the subset of a test2json event the parser needs.
type testEvent struct {
	Action string `json:"Action"`
	Output string `json:"Output"`
}

// Parse reads benchmark results from r, accepting any of the three
// forms the toolchain produces: a `go test -json` event stream, plain
// `go test -bench` text, or an already-parsed Set document.  Repeated
// runs of the same benchmark (-count=N) are folded to the minimum
// ns/op — the standard noise reduction for regression gating.
func Parse(r io.Reader) (Set, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return Set{}, fmt.Errorf("perf: reading input: %w", err)
	}
	trimmed := strings.TrimSpace(string(data))
	if trimmed == "" {
		return Set{Version: setVersion}, nil
	}

	// An already-parsed Set round-trips unchanged.
	if strings.HasPrefix(trimmed, "{") && strings.Contains(trimmed, "\"version\"") {
		var s Set
		if err := json.Unmarshal([]byte(trimmed), &s); err == nil && s.Version != 0 {
			if s.Version != setVersion {
				return Set{}, fmt.Errorf("perf: unsupported result set version %d", s.Version)
			}
			return s, nil
		}
	}

	// A test2json stream is one JSON object per line; reassembling
	// the Output payloads reproduces the plain-text bench output.
	var text strings.Builder
	stream := true
	sc := bufio.NewScanner(strings.NewReader(trimmed))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			stream = false
			break
		}
		if ev.Action == "output" {
			text.WriteString(ev.Output)
		}
	}
	// A scanner error (an over-long line) would silently truncate the
	// set; a truncated PR-side file makes baseline benchmarks read as
	// VANISHED in the gate, so surface the real failure instead.
	if err := sc.Err(); err != nil {
		return Set{}, fmt.Errorf("perf: scanning input: %w", err)
	}
	if !stream {
		text.Reset()
		text.WriteString(trimmed)
	}
	return parseText(text.String())
}

// parseText scans plain benchmark output lines.
func parseText(text string) (Set, error) {
	s := Set{Version: setVersion}
	index := map[string]int{}
	sc := bufio.NewScanner(strings.NewReader(text))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		res, ok := parseBenchLine(sc.Text())
		if !ok {
			continue
		}
		if i, seen := index[res.Name]; seen {
			// Fold -count repeats: ns/op (with its B/op, allocs/op and
			// iteration count) keeps the fastest run, and each custom
			// metric independently keeps its maximum across repeats —
			// the best observed value, mirroring fold-to-fastest.
			// Taking the fastest run's metrics wholesale would instead
			// record whichever repeat happened to win on ns/op: for a
			// ratio metric like the study benchmark's speedup-x
			// (measured against that repeat's own baseline) that is
			// just noise, not the benchmark's demonstrated best.
			prev := s.Results[i]
			if res.NsPerOp < prev.NsPerOp {
				merged := res
				merged.Metrics = foldMetrics(res.Metrics, prev.Metrics)
				s.Results[i] = merged
			} else {
				s.Results[i].Metrics = foldMetrics(prev.Metrics, res.Metrics)
			}
			continue
		}
		index[res.Name] = len(s.Results)
		s.Results = append(s.Results, res)
	}
	if err := sc.Err(); err != nil {
		return Set{}, fmt.Errorf("perf: scanning bench text: %w", err)
	}
	return s, nil
}

// foldMetrics merges two repeats' custom metrics, keeping the
// maximum of each unit (missing units pass through).  base may be
// mutated and returned.
func foldMetrics(base, other map[string]float64) map[string]float64 {
	if len(other) == 0 {
		return base
	}
	if base == nil {
		base = make(map[string]float64, len(other))
	}
	for u, v := range other {
		if cur, ok := base[u]; !ok || v > cur {
			base[u] = v
		}
	}
	return base
}

// parseBenchLine parses one `BenchmarkName-8  <N>  <value> <unit>...`
// line.
func parseBenchLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	res := Result{Name: normalizeName(fields[0]), Iterations: iters}
	seen := false
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			res.NsPerOp = v
			seen = true
		case "B/op":
			res.BytesPerOp = v
		case "allocs/op":
			res.AllocsPerOp = v
		default:
			if res.Metrics == nil {
				res.Metrics = map[string]float64{}
			}
			res.Metrics[unit] = v
		}
	}
	return res, seen
}

// normalizeName strips the trailing -GOMAXPROCS suffix so result
// names are stable across machines with different core counts.
func normalizeName(name string) string {
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// ReadFile loads a result set from path (any form Parse accepts).
func ReadFile(path string) (Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return Set{}, err
	}
	defer f.Close()
	s, err := Parse(f)
	if err != nil {
		return Set{}, fmt.Errorf("perf: %s: %w", path, err)
	}
	return s, nil
}

// Write encodes the set as the BENCH_<layer>.json document.
func (s Set) Write(w io.Writer) error {
	s.Version = setVersion
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(s)
}

// WriteFile writes the set to path.
func (s Set) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.Write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Status classifies one benchmark's movement between two sets.
type Status string

const (
	// StatusOK means the change is within the threshold.
	StatusOK Status = "ok"

	// StatusFaster means ns/op improved by more than the threshold.
	StatusFaster Status = "faster"

	// StatusRegression means ns/op worsened past the threshold.
	StatusRegression Status = "REGRESSION"

	// StatusNew means the benchmark has no baseline (never a
	// failure: every benchmark is new once).
	StatusNew Status = "new"

	// StatusVanished means the baseline benchmark is missing from
	// the new set — a failure unless explicitly allowed, because a
	// deleted benchmark is how a regression hides.
	StatusVanished Status = "VANISHED"
)

// MetricDelta is the movement of one custom b.ReportMetric value
// between two sets.  Custom metrics have no universal better
// direction (speedup-x rises when things improve, a latency metric
// falls), so they inform the report but never gate it.
type MetricDelta struct {
	Unit string
	Old  float64
	New  float64
}

// Delta is one benchmark's comparison row.
type Delta struct {
	Name   string
	Old    float64 // baseline ns/op (0 when new)
	New    float64 // current ns/op (0 when vanished)
	Ratio  float64 // New/Old when both present
	Status Status

	// Metrics are the custom-metric movements for benchmarks present
	// in both sets (union of units; a side that lacks the unit
	// reports 0).
	Metrics []MetricDelta
}

// Report is the outcome of comparing two sets.
type Report struct {
	Threshold float64 // regression threshold as a fraction (0.15 = 15%)
	Deltas    []Delta
}

// Compare diffs a new result set against a baseline: a benchmark
// regresses when its ns/op exceeds the baseline by more than the
// threshold fraction.
func Compare(oldSet, newSet Set, threshold float64) Report {
	rep := Report{Threshold: threshold}
	for _, o := range oldSet.Results {
		d := Delta{Name: o.Name, Old: o.NsPerOp}
		n, ok := newSet.Lookup(o.Name)
		if !ok {
			d.Status = StatusVanished
			rep.Deltas = append(rep.Deltas, d)
			continue
		}
		d.New = n.NsPerOp
		if o.NsPerOp > 0 {
			d.Ratio = n.NsPerOp / o.NsPerOp
		}
		d.Metrics = metricDeltas(o.Metrics, n.Metrics)
		switch {
		case d.Ratio > 1+threshold:
			d.Status = StatusRegression
		case d.Ratio < 1-threshold:
			d.Status = StatusFaster
		default:
			d.Status = StatusOK
		}
		rep.Deltas = append(rep.Deltas, d)
	}
	for _, n := range newSet.Results {
		if _, ok := oldSet.Lookup(n.Name); !ok {
			rep.Deltas = append(rep.Deltas, Delta{Name: n.Name, New: n.NsPerOp, Status: StatusNew})
		}
	}
	sort.SliceStable(rep.Deltas, func(i, j int) bool { return rep.Deltas[i].Name < rep.Deltas[j].Name })
	return rep
}

// metricDeltas pairs the custom metrics of two results over the
// union of their units, sorted by unit name for stable output.
func metricDeltas(oldM, newM map[string]float64) []MetricDelta {
	if len(oldM) == 0 && len(newM) == 0 {
		return nil
	}
	units := map[string]bool{}
	for u := range oldM {
		units[u] = true
	}
	for u := range newM {
		units[u] = true
	}
	names := make([]string, 0, len(units))
	for u := range units {
		names = append(names, u)
	}
	sort.Strings(names)
	out := make([]MetricDelta, 0, len(names))
	for _, u := range names {
		out = append(out, MetricDelta{Unit: u, Old: oldM[u], New: newM[u]})
	}
	return out
}

// Failures returns the deltas that should fail a gate: regressions
// always, vanished benchmarks unless allowMissing.
func (r Report) Failures(allowMissing bool) []Delta {
	var out []Delta
	for _, d := range r.Deltas {
		if d.Status == StatusRegression || (d.Status == StatusVanished && !allowMissing) {
			out = append(out, d)
		}
	}
	return out
}

// Format renders the report as an aligned text table.  Custom-metric
// movements print as indented sub-rows under their benchmark; they
// are informational and never gate.
func (r Report) Format(w io.Writer) {
	for _, d := range r.Deltas {
		switch d.Status {
		case StatusNew:
			fmt.Fprintf(w, "%-60s %14s %12.0f ns/op  %s\n", d.Name, "-", d.New, d.Status)
		case StatusVanished:
			fmt.Fprintf(w, "%-60s %12.0f ns/op %12s  %s\n", d.Name, d.Old, "-", d.Status)
		default:
			fmt.Fprintf(w, "%-60s %12.0f -> %12.0f ns/op  %+6.1f%%  %s\n",
				d.Name, d.Old, d.New, (d.Ratio-1)*100, d.Status)
			for _, m := range d.Metrics {
				change := ""
				if m.Old != 0 {
					change = fmt.Sprintf("  %+6.1f%%", (m.New/m.Old-1)*100)
				}
				fmt.Fprintf(w, "    metric %-43s %12.4g -> %12.4g %s%s\n",
					m.Unit, m.Old, m.New, m.Unit, change)
			}
		}
	}
}

// Summarize renders a set as the human-readable summary make bench
// prints: one row per benchmark (custom metrics appended to their
// row) and a closing geomean line over ns/op, the single number that
// tracks a layer's overall drift.
func (s Set) Summarize(w io.Writer) {
	for _, r := range s.Results {
		fmt.Fprintf(w, "%-60s %12d iters %14.0f ns/op", r.Name, r.Iterations, r.NsPerOp)
		if r.BytesPerOp > 0 || r.AllocsPerOp > 0 {
			fmt.Fprintf(w, " %12.0f B/op %8.0f allocs/op", r.BytesPerOp, r.AllocsPerOp)
		}
		for _, u := range sortedMetricUnits(r.Metrics) {
			fmt.Fprintf(w, " %10.4g %s", r.Metrics[u], u)
		}
		fmt.Fprintln(w)
	}
	if gm, n := s.GeomeanNsPerOp(); n > 0 {
		fmt.Fprintf(w, "%-60s %12s       %14.0f ns/op (over %d benchmarks)\n", "geomean", "", gm, n)
	}
}

func sortedMetricUnits(m map[string]float64) []string {
	if len(m) == 0 {
		return nil
	}
	units := make([]string, 0, len(m))
	for u := range m {
		units = append(units, u)
	}
	sort.Strings(units)
	return units
}

// GeomeanNsPerOp returns the geometric mean of ns/op over the set's
// benchmarks with a positive ns/op, and how many contributed.  The
// geometric mean is the standard cross-benchmark aggregate: a 2x
// regression and a 2x improvement cancel regardless of the
// benchmarks' absolute magnitudes.
func (s Set) GeomeanNsPerOp() (geomean float64, n int) {
	sumLog := 0.0
	for _, r := range s.Results {
		if r.NsPerOp > 0 {
			sumLog += math.Log(r.NsPerOp)
			n++
		}
	}
	if n == 0 {
		return 0, 0
	}
	return math.Exp(sumLog / float64(n)), n
}
