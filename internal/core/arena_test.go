package core

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/concentrix"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/workload"
)

// freshRandomSession runs a random session the pre-arena way: every
// piece of simulator state newly allocated, nothing reused.  The
// reuse tests compare arena output against this reference.
func freshRandomSession(id int, spec SessionSpec) *Session {
	span := spec.WorkloadCycles
	if span == 0 {
		span = spec.span()
	}
	return SampleSystem(NewSystem(workload.PaperMix(spec.Seed), span), id, spec)
}

func freshTriggeredSession(id int, spec TriggeredSpec) *TriggeredSession {
	return TriggerSystem(NewSystem(workload.PaperMix(spec.Seed), spec.WorkloadCycles), id, spec)
}

// TestArenaReuseBitIdentical is the session-reuse determinism test:
// a session run in a dirty arena — one that has already executed a
// different session, of either kind — must equal the same session on
// freshly allocated state, field for field.
func TestArenaReuseBitIdentical(t *testing.T) {
	t.Parallel()
	spec := SessionSpec{
		Samples:  3,
		Sampling: monitor.SampleSpec{Snapshots: 2, GapCycles: 3_000},
		Seed:     77,
	}
	tspec := TriggeredSpec{
		Mode:           monitor.TriggerAll8,
		Samples:        2,
		Buffers:        2,
		BudgetCycles:   60_000,
		Seed:           78,
		WorkloadCycles: 400_000,
	}
	want := freshRandomSession(1, spec)
	twant := freshTriggeredSession(2, tspec)

	a := NewSessionArena()
	// Dirty the arena with other sessions (different seeds and
	// session kinds), then rerun the reference specs in place.
	other := spec
	other.Seed = 999
	a.RunRandomSession(9, other)
	a.RunTriggeredSession(9, tspec)
	a.RunRandomSession(9, other)

	if got := a.RunRandomSession(1, spec); !reflect.DeepEqual(got, want) {
		t.Error("random session in a dirty arena diverges from fresh allocation")
	}
	if got := a.RunTriggeredSession(2, tspec); !reflect.DeepEqual(got, twant) {
		t.Error("triggered session in a dirty arena diverges from fresh allocation")
	}
}

// TestArenaStudyByteIdentical runs the same campaign twice through
// the pooled session lifecycle — the second pass entirely on reused
// arenas — and asserts the canonical Study JSON is byte-identical to
// both the first pass and a fresh-allocation reduction of the same
// units.
func TestArenaStudyByteIdentical(t *testing.T) {
	t.Parallel()
	cfg := tinyConfig()
	cfg.BaseSeed = 31337 // private seed space: do not share pool warmth semantics with other tests

	first := RunStudyWorkers(cfg, 2)
	second := RunStudyWorkers(cfg, 2)
	e1, err := EncodeStudy(first)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := EncodeStudy(second)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(e1, e2) {
		t.Fatal("second (arena-warm) campaign run is not byte-identical to the first")
	}

	// Fresh-allocation reference: the same units computed without any
	// arena, through the exported pre-arena primitives.
	units := cfg.Units()
	results := make([]StudyUnitResult, len(units))
	for i, u := range units {
		switch {
		case u.Random != nil:
			results[i] = StudyUnitResult{Random: freshRandomSession(u.ID, *u.Random)}
		case u.Triggered != nil:
			results[i] = StudyUnitResult{Triggered: freshTriggeredSession(u.ID, *u.Triggered)}
		}
	}
	for i, res := range results {
		var got, want any
		if units[i].Random != nil {
			got, want = res.Random, first.Random[i]
		} else {
			j := i - cfg.RandomSessions
			if j < cfg.HighConcSessions {
				got, want = res.Triggered, first.HighConc[j]
			} else {
				got, want = res.Triggered, first.Transition[j-cfg.HighConcSessions]
			}
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("unit %d: pooled campaign session diverges from fresh allocation", i)
		}
	}
}

// TestArenaCustomConfigRebuild: an arena asked for a different
// machine configuration rebuilds, then resets in place again once the
// configuration repeats — and both transitions are invisible in the
// output.
func TestArenaCustomConfigRebuild(t *testing.T) {
	t.Parallel()
	spec := SessionSpec{
		Samples:        2,
		Sampling:       monitor.SampleSpec{Snapshots: 2, GapCycles: 3_000},
		Seed:           5,
		WorkloadCycles: 100_000,
	}
	sysCfg := concentrix.DefaultSysConfig()
	wantDefault := RunCustomSession(fx8.DefaultConfig(), sysCfg, 1, spec)
	wantFX4 := RunCustomSession(fx8.FX4Config(), sysCfg, 1, spec)

	a := NewSessionArena()
	for pass := 0; pass < 2; pass++ {
		if got := a.RunCustomSession(fx8.DefaultConfig(), sysCfg, 1, spec); !reflect.DeepEqual(got, wantDefault) {
			t.Errorf("pass %d: default-config session diverges after config churn", pass)
		}
		if got := a.RunCustomSession(fx8.FX4Config(), sysCfg, 1, spec); !reflect.DeepEqual(got, wantFX4) {
			t.Errorf("pass %d: FX4 session diverges after config churn", pass)
		}
	}

	// Varying only OS parameters must reset in place (same machine)
	// and still match a fresh run.
	fast := sysCfg
	fast.TimeSlice = 50_000
	wantFast := SampleSystem(func() *concentrix.System {
		cfg := fx8.DefaultConfig()
		cfg.Seed = spec.Seed
		cl := fx8.New(cfg)
		sys := concentrix.NewSystem(cl, fast)
		for _, p := range workload.NewGenerator(workload.PaperMix(spec.Seed)).Session(spec.WorkloadCycles) {
			sys.Submit(p)
		}
		return sys
	}(), 1, spec)
	a.RunCustomSession(fx8.DefaultConfig(), sysCfg, 1, spec)
	if got := a.RunCustomSession(fx8.DefaultConfig(), fast, 1, spec); !reflect.DeepEqual(got, wantFast) {
		t.Error("OS-parameter-only change diverges from fresh run")
	}
}

// TestComparableConfigCoversConfig guards sameHardware against
// fx8.Config drift: every Config field must be either mirrored in
// comparableConfig (scalars) or in the explicit non-scalar list the
// comparison handles separately.  A field added to fx8.Config without
// updating scalars() would otherwise be silently ignored, making the
// arena reuse a machine built with a different value of it.
func TestComparableConfigCoversConfig(t *testing.T) {
	t.Parallel()
	handled := map[string]bool{
		"Seed":             true, // replaced by Reset, deliberately ignored
		"ArbBias":          true, // compared with slices.Equal
		"CCBDispatchExtra": true, // compared with slices.Equal
	}
	cc := reflect.TypeOf(comparableConfig{})
	ccFields := map[string]reflect.Type{}
	for i := 0; i < cc.NumField(); i++ {
		ccFields[cc.Field(i).Name] = cc.Field(i).Type
	}
	cfg := reflect.TypeOf(fx8.Config{})
	for i := 0; i < cfg.NumField(); i++ {
		f := cfg.Field(i)
		if handled[f.Name] {
			continue
		}
		typ, ok := ccFields[f.Name]
		if !ok {
			t.Errorf("fx8.Config field %s is not mirrored in comparableConfig: sameHardware would ignore it", f.Name)
			continue
		}
		if typ != f.Type {
			t.Errorf("comparableConfig field %s has type %v, fx8.Config has %v", f.Name, typ, f.Type)
		}
	}
	if cc.NumField() != cfg.NumField()-len(handled) {
		t.Errorf("comparableConfig has %d fields, want %d (Config fields minus %d handled separately)",
			cc.NumField(), cfg.NumField()-len(handled), len(handled))
	}
}

// TestArenaSurvivesBootPanic: a Boot that panics on an invalid
// configuration must leave the arena coherent, because the pooled
// entry points release the arena during unwinding and a later caller
// (e.g. an HTTP handler that recovered the panic) will reuse it.
func TestArenaSurvivesBootPanic(t *testing.T) {
	t.Parallel()
	spec := SessionSpec{
		Samples:        2,
		Sampling:       monitor.SampleSpec{Snapshots: 2, GapCycles: 3_000},
		Seed:           5,
		WorkloadCycles: 100_000,
	}
	sysCfg := concentrix.DefaultSysConfig()
	want := RunCustomSession(fx8.DefaultConfig(), sysCfg, 1, spec)

	a := NewSessionArena()
	a.RunCustomSession(fx8.DefaultConfig(), sysCfg, 1, spec) // warm

	bad := fx8.DefaultConfig()
	bad.NumCE = 99 // fails Validate: fx8.New panics
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("invalid config did not panic")
			}
		}()
		a.RunCustomSession(bad, sysCfg, 1, spec)
	}()

	// The arena must still describe the machine it actually holds:
	// the same session reruns bit-identically on the reuse path.
	if got := a.RunCustomSession(fx8.DefaultConfig(), sysCfg, 1, spec); !reflect.DeepEqual(got, want) {
		t.Error("arena poisoned by a panicking Boot: post-panic session diverges")
	}
}
