package core

import "repro/internal/trace"

// TransitionStats is the record-level analysis of section 4.3: over
// buffers captured by the 8-to-fewer transition trigger, the
// distribution of the number of active processors and, within the
// transition states (2..7 active), the activity of each individual
// processor.
type TransitionStats struct {
	// Num[j] counts records with j processors active across all
	// transition buffers.
	Num [P + 1]int

	// Prof[i] counts records in a transition state (2..7 active)
	// where processor i was active — Figure 7's distribution.
	Prof [P]int

	// Records is the total record count analyzed;
	// TransitionRecords the count in transition states.
	Records           int
	TransitionRecords int
}

// AnalyzeTransitions reduces transition-triggered buffers.
func AnalyzeTransitions(buffers [][]trace.Record) TransitionStats {
	var t TransitionStats
	for _, buf := range buffers {
		for _, r := range buf {
			t.AddRecord(r)
		}
	}
	return t
}

// AddRecord accumulates one record.
func (t *TransitionStats) AddRecord(r trace.Record) {
	t.Records++
	n := r.ActiveCount()
	t.Num[n]++
	if n >= 2 && n <= P-1 {
		t.TransitionRecords++
		for i, a := range r.Active {
			if a {
				t.Prof[i]++
			}
		}
	}
}

// Add merges another stat set.
func (t *TransitionStats) Add(o TransitionStats) {
	t.Records += o.Records
	t.TransitionRecords += o.TransitionRecords
	for i := range t.Num {
		t.Num[i] += o.Num[i]
	}
	for i := range t.Prof {
		t.Prof[i] += o.Prof[i]
	}
}

// TransitionShare returns the fraction of transition-state records
// with exactly j processors active (Figure 6's percentages).
func (t TransitionStats) TransitionShare(j int) float64 {
	if t.TransitionRecords == 0 || j < 2 || j > P-1 {
		return 0
	}
	return float64(t.Num[j]) / float64(t.TransitionRecords)
}

// DominantPair returns the two processors most active during
// transition states — the study found CEs 7 and 0.
func (t TransitionStats) DominantPair() (first, second int) {
	first, second = -1, -1
	for i, c := range t.Prof {
		switch {
		case first == -1 || c > t.Prof[first]:
			second = first
			first = i
		case second == -1 || c > t.Prof[second]:
			second = i
		}
	}
	return first, second
}
