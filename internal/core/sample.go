package core

import "repro/internal/monitor"

// SampleMeasures pairs a sample's concurrency measures with the system
// performance measures of chapter 5: CE Bus Busy, Missrate and Page
// Fault Rate.
type SampleMeasures struct {
	Conc Concurrency

	// BusBusy is the fraction of non-idle CE bus cycles averaged
	// over the eight buses.
	BusBusy float64

	// MissRate is the fraction of CE bus cycles corresponding to
	// cache misses.
	MissRate float64

	// PageFaultRate is the CE page fault count over the sample
	// interval (user plus system mode).
	PageFaultRate float64

	// Records is the number of monitor records the sample reduced.
	Records int
}

// MeasureSample derives all per-sample measures from a collected
// sample.
func MeasureSample(s monitor.Sample) SampleMeasures {
	return SampleMeasures{
		Conc:          MeasuresFromCounts(s.Counts),
		BusBusy:       s.Counts.BusBusy(),
		MissRate:      s.Counts.MissRate(),
		PageFaultRate: float64(s.PageFaults),
		Records:       s.Counts.Records,
	}
}

// MeasureSamples maps MeasureSample over a slice.
func MeasureSamples(ss []monitor.Sample) []SampleMeasures {
	out := make([]SampleMeasures, len(ss))
	for i, s := range ss {
		out[i] = MeasureSample(s)
	}
	return out
}

// SplitByConcurrency partitions samples into those with and without
// observed concurrency; Pc analyses use only the concurrent subset.
func SplitByConcurrency(ms []SampleMeasures) (concurrent, serial []SampleMeasures) {
	for _, m := range ms {
		if m.Conc.Defined {
			concurrent = append(concurrent, m)
		} else {
			serial = append(serial, m)
		}
	}
	return concurrent, serial
}

// Columns extracts paired (x, y) vectors from samples for scatter and
// regression analyses.  The x selector and y selector choose the
// measures; samples where the x measure is undefined are skipped.
func Columns(ms []SampleMeasures, x, y func(SampleMeasures) (float64, bool)) (xs, ys []float64) {
	for _, m := range ms {
		xv, ok := x(m)
		if !ok {
			continue
		}
		yv, ok := y(m)
		if !ok {
			continue
		}
		xs = append(xs, xv)
		ys = append(ys, yv)
	}
	return xs, ys
}

// Selectors for Columns.

// SelCw selects Workload Concurrency (always defined).
func SelCw(m SampleMeasures) (float64, bool) { return m.Conc.Cw, true }

// SelPc selects Mean Concurrency Level (defined only for samples with
// concurrency).
func SelPc(m SampleMeasures) (float64, bool) { return m.Conc.Pc, m.Conc.Defined }

// SelMissRate selects the cache miss rate.
func SelMissRate(m SampleMeasures) (float64, bool) { return m.MissRate, true }

// SelBusBusy selects CE bus activity.
func SelBusBusy(m SampleMeasures) (float64, bool) { return m.BusBusy, true }

// SelPageFaultRate selects the page fault rate.
func SelPageFaultRate(m SampleMeasures) (float64, bool) { return m.PageFaultRate, true }
