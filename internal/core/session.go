package core

import (
	"repro/internal/concentrix"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/trace"
	"repro/internal/workload"
)

// SessionSpec configures one measurement session.
type SessionSpec struct {
	// Samples is the number of workload samples to take (the study's
	// sessions spanned 4-8 hours at one sample per five minutes).
	Samples int

	// Sampling configures the per-sample acquisition.
	Sampling monitor.SampleSpec

	// Seed selects the session's workload (a different production
	// day on the measured machine).
	Seed uint64

	// WorkloadCycles is the machine time the generated job list
	// should cover; it defaults to the session's sampling span.
	WorkloadCycles uint64
}

// DefaultSessionSpec returns the scaled equivalent of one measurement
// session.
func DefaultSessionSpec(seed uint64) SessionSpec {
	return SessionSpec{
		Samples:  50,
		Sampling: monitor.SampleSpec{Snapshots: 5, GapCycles: 30_000},
		Seed:     seed,
	}
}

// span returns the machine cycles a session will consume.
func (s SessionSpec) span() uint64 {
	per := uint64(s.Sampling.Snapshots) * uint64(s.Sampling.GapCycles+monitor.BufferDepth)
	return uint64(s.Samples) * per
}

// Session is the result of one random-sampling measurement session.
type Session struct {
	ID       int
	Samples  []monitor.Sample
	Measures []SampleMeasures

	// Total is the sum of all hardware event counts in the session.
	Total monitor.EventCounts

	// TotalFaults is the kernel page-fault total over the session.
	TotalFaults uint64
}

// NewSystem boots a fresh machine loaded with a session's workload.
// Each measurement session ran on a different day: a new system with a
// seed-specific job mix.
func NewSystem(profile workload.Profile, span uint64) *concentrix.System {
	cfg := fx8.DefaultConfig()
	cfg.Seed = profile.Seed
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	gen := workload.NewGenerator(profile)
	for _, p := range gen.Session(span) {
		sys.Submit(p)
	}
	return sys
}

// RunRandomSession performs one random-sampling session: a
// freshly-reset machine under the PaperMix workload, sampled
// spec.Samples times.  The machine comes from the process-wide arena
// pool, so after warm-up the session boots without heap allocation;
// the result is bit-identical to a session on a newly allocated
// machine.
func RunRandomSession(id int, spec SessionSpec) *Session {
	a := acquireArena()
	defer releaseArena(a)
	return a.RunRandomSession(id, spec)
}

// SampleSystem runs the sampling schedule of spec against an existing
// system (exported so callers can measure custom workloads).
func SampleSystem(sys *concentrix.System, id int, spec SessionSpec) *Session {
	return sampleWith(monitor.NewController(sys), id, spec)
}

// sampleWith is SampleSystem on a caller-owned (possibly reused)
// controller.
func sampleWith(ctl *monitor.Controller, id int, spec SessionSpec) *Session {
	sys := ctl.Sys
	ses := &Session{ID: id}
	faults0 := sys.Kernel.PageFaults()
	for i := 0; i < spec.Samples; i++ {
		s := ctl.CollectSample(spec.Sampling)
		ses.Samples = append(ses.Samples, s)
		ses.Total.Add(s.Counts)
	}
	ses.Measures = MeasureSamples(ses.Samples)
	ses.TotalFaults = sys.Kernel.PageFaults() - faults0
	return ses
}

// TriggeredSpec configures a triggered measurement session.
type TriggeredSpec struct {
	// Mode is the trigger condition (all-8 or transition).
	Mode monitor.TriggerMode

	// Samples is the number of grouped samples; each groups Buffers
	// triggered acquisitions (5 in the study's grouping).
	Samples int
	Buffers int

	// BudgetCycles bounds the wait for each trigger.
	BudgetCycles int

	// Seed selects the workload.
	Seed uint64

	// WorkloadCycles sizes the generated job list.
	WorkloadCycles uint64
}

// DefaultTriggeredSpec returns the scaled equivalent of one triggered
// session.
func DefaultTriggeredSpec(mode monitor.TriggerMode, seed uint64) TriggeredSpec {
	return TriggeredSpec{
		Mode:           mode,
		Samples:        20,
		Buffers:        5,
		BudgetCycles:   400_000,
		Seed:           seed,
		WorkloadCycles: 4_000_000,
	}
}

// TriggeredSession is the result of one triggered measurement session:
// the raw buffers (for record-level transition analysis) and grouped
// sample measures (for the chapter 5 high-concurrency scatter).
type TriggeredSession struct {
	ID      int
	Mode    monitor.TriggerMode
	Buffers [][]trace.Record
	Samples []monitor.Sample

	// Measures are the grouped sample measures.
	Measures []SampleMeasures

	// Total sums all acquired buffers.
	Total monitor.EventCounts

	// Timeouts counts acquisitions that never triggered within
	// budget.
	Timeouts int
}

// RunTriggeredSession performs one triggered session on a
// freshly-reset pooled machine (see RunRandomSession for the reuse
// contract).
func RunTriggeredSession(id int, spec TriggeredSpec) *TriggeredSession {
	a := acquireArena()
	defer releaseArena(a)
	return a.RunTriggeredSession(id, spec)
}

// TriggerSystem runs a triggered acquisition schedule against an
// existing system.
func TriggerSystem(sys *concentrix.System, id int, spec TriggeredSpec) *TriggeredSession {
	return triggerWith(monitor.NewController(sys), id, spec)
}

// triggerWith is TriggerSystem on a caller-owned (possibly reused)
// controller.
func triggerWith(ctl *monitor.Controller, id int, spec TriggeredSpec) *TriggeredSession {
	sys := ctl.Sys
	ts := &TriggeredSession{ID: id, Mode: spec.Mode}
	for s := 0; s < spec.Samples; s++ {
		var sample monitor.Sample
		sample.StartCycle = sys.Cluster.Cycle()
		faults0 := sys.Kernel.PageFaults()
		got := 0
		for b := 0; b < spec.Buffers; b++ {
			recs, ok := ctl.AcquireBuffer(spec.Mode, spec.BudgetCycles)
			if !ok {
				ts.Timeouts++
				continue
			}
			got++
			ts.Buffers = append(ts.Buffers, recs)
			counts := monitor.Reduce(recs)
			sample.Counts.Add(counts)
			ts.Total.Add(counts)
		}
		sample.EndCycle = sys.Cluster.Cycle()
		sample.PageFaults = sys.Kernel.PageFaults() - faults0
		sample.Complete = got == spec.Buffers
		if got > 0 {
			ts.Samples = append(ts.Samples, sample)
		}
	}
	ts.Measures = MeasureSamples(ts.Samples)
	return ts
}
