// Package core implements the study's measurement methodology — its
// primary contribution: the concurrency measures of equations 4.1-4.4
// (j-concurrency, Workload Concurrency, conditional j-concurrency,
// Mean Concurrency Level), sample and session aggregation, the
// concurrency transition analysis of section 4.3, and the
// median-binned second-order regression models of chapter 5 relating
// cache miss rate, CE bus activity and page fault rate to the
// concurrency measures.
package core

import (
	"repro/internal/monitor"
	"repro/internal/trace"
)

// P is the processor count of the measured machine.
const P = trace.NumCE

// Concurrency holds the study's concurrency measures computed from a
// distribution of the number of active processors.
type Concurrency struct {
	// C[j] is the j-concurrency c_j = Prob(active == j), eq. 4.1.
	C [P + 1]float64

	// Cw is the Workload Concurrency: the probability of any level
	// of concurrency (two or more processors in parallel), eq. 4.2.
	Cw float64

	// CCond[j] is c_{j|c} = Prob(active == j | active > 1), eq. 4.3.
	// Undefined (all zero) when the workload has no concurrency.
	CCond [P + 1]float64

	// Pc is the Mean Concurrency Level: the mean number of active
	// processors during concurrent operation, eq. 4.4.  Meaningful
	// only when Defined.
	Pc float64

	// Defined reports whether any concurrency was observed, i.e.
	// whether CCond and Pc exist (the study leaves them undefined
	// for fully serial samples).
	Defined bool
}

// MeasuresFromNum computes the concurrency measures from num_j event
// counts (records with j processors active).
func MeasuresFromNum(num [P + 1]int) Concurrency {
	var m Concurrency
	total := 0
	for _, n := range num {
		total += n
	}
	if total == 0 {
		return m
	}
	for j, n := range num {
		m.C[j] = float64(n) / float64(total)
	}
	conc := 0
	for j := 2; j <= P; j++ {
		conc += num[j]
	}
	m.Cw = float64(conc) / float64(total)
	if conc == 0 {
		return m
	}
	m.Defined = true
	for j := 2; j <= P; j++ {
		m.CCond[j] = float64(num[j]) / float64(conc)
		m.Pc += float64(j) * m.CCond[j]
	}
	return m
}

// MeasuresFromCounts computes the concurrency measures from reduced
// event counts.
func MeasuresFromCounts(e monitor.EventCounts) Concurrency {
	return MeasuresFromNum(e.Num)
}
