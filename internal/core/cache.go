package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sync/atomic"

	"repro/internal/engine"
	"repro/internal/store"
)

// studyNamespace versions the stored encoding of a Study.  Bump it
// whenever the Study schema changes incompatibly: old entries then
// miss cleanly and are recomputed.
const studyNamespace = "study/v1"

// EncodeStudy serializes a completed campaign for the on-disk store.
// The encoding is canonical — a given Study always encodes to the
// same bytes — so identical configurations produce identical entries
// regardless of which process computed them.
func EncodeStudy(st *Study) ([]byte, error) {
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("core: encoding study: %w", err)
	}
	return data, nil
}

// DecodeStudy deserializes a stored campaign.
func DecodeStudy(data []byte) (*Study, error) {
	st := new(Study)
	if err := json.Unmarshal(data, st); err != nil {
		return nil, fmt.Errorf("core: decoding study: %w", err)
	}
	return st, nil
}

// StudyKey returns the content address of a campaign configuration in
// the store.
func StudyKey(cfg StudyConfig) (string, error) {
	return store.Key(studyNamespace, cfg)
}

// CacheStats snapshots a StudyCache's outcome counters.  MemoryHits
// counts Gets served from the in-process memo, including concurrent
// Gets that waited on an in-flight computation; DiskHits counts
// campaigns restored from the store; Computes counts campaigns
// actually run.
type CacheStats struct {
	MemoryHits  uint64
	DiskHits    uint64
	Computes    uint64
	StoreErrors uint64
}

// DefaultMemoEntries caps the in-process campaign memo.  Completed
// studies are large (every session's samples and raw trigger
// buffers), and a process legitimately works with only a handful of
// configurations — the quick and paper scales plus a few variants —
// so a small FIFO bound keeps the memo from growing without bound in
// a long-lived daemon while never evicting in normal use.
const DefaultMemoEntries = 8

// StudyCache is the two-tier campaign cache: an in-process memo in
// front of an optional on-disk store, in front of the compute path
// (memory -> disk -> compute).  Concurrent Gets for the same
// configuration singleflight — exactly one goroutine probes the disk
// and, on a miss, runs the campaign; the rest block and share its
// result.  The zero value is ready to use as a memory-only cache.
type StudyCache struct {
	// OnProgress, when set, observes session completion for every
	// campaign this cache computes: OnProgress(cfg, done, total)
	// fires from worker goroutines as sessions finish.  Set before
	// first use.
	OnProgress func(cfg StudyConfig, done, total int)

	memo    engine.Memo[StudyConfig, *Study]
	runner  atomic.Pointer[StudyRunner]
	store   atomic.Pointer[store.Store]
	gets    atomic.Uint64
	disk    atomic.Uint64
	compute atomic.Uint64
	errors  atomic.Uint64
}

// DefaultStudyCache is the process-wide campaign cache used by
// CachedStudy and the cmd tools.  Its memo is bounded by
// DefaultMemoEntries.
var DefaultStudyCache = NewStudyCache()

// NewStudyCache returns a memory-only StudyCache with the default
// memo bound; attach a disk tier with SetStore.
func NewStudyCache() *StudyCache {
	c := &StudyCache{}
	c.memo.MaxEntries = DefaultMemoEntries
	return c
}

// SetStore attaches (or, with nil, detaches) the disk tier.  Attach
// before serving Gets: configurations already memoized in memory are
// not retroactively written to the store.
func (c *StudyCache) SetStore(s *store.Store) { c.store.Store(s) }

// Store returns the attached disk tier, or nil.
func (c *StudyCache) Store() *store.Store { return c.store.Load() }

// SetRunner installs (or, with nil, removes) the session runner the
// compute path executes campaign units on — the hook the cmd tools
// use to shard campaigns across fx8d backends (-backends).  Without
// one, sessions compute in-process on the engine's worker pool.
// Cache tiers are consulted before the runner, so memoized or stored
// campaigns never touch a backend.
func (c *StudyCache) SetRunner(r StudyRunner) {
	if r == nil {
		c.runner.Store(nil)
		return
	}
	c.runner.Store(&r)
}

// Stats returns a snapshot of the cache's outcome counters.
func (c *StudyCache) Stats() CacheStats {
	// Load gets last: every disk/compute increment is preceded by a
	// gets increment, so this ordering guarantees gets >= disk +
	// compute even while Gets are in flight (the subtraction cannot
	// underflow).
	disk, compute := c.disk.Load(), c.compute.Load()
	gets := c.gets.Load()
	memory := uint64(0)
	if gets > disk+compute {
		memory = gets - disk - compute
	}
	return CacheStats{
		MemoryHits:  memory,
		DiskHits:    disk,
		Computes:    compute,
		StoreErrors: c.errors.Load(),
	}
}

// Get returns the campaign for cfg through the tiers: the in-process
// memo, then the store, then RunStudyProgress with the given worker
// count.  Computed campaigns are written back to the store
// atomically; store defects (corrupt or version-mismatched entries)
// read as misses and are recomputed, and write failures are counted
// in Stats but never fail the Get — the computed Study is always
// returned.  The result is shared and must be treated as read-only.
func (c *StudyCache) Get(cfg StudyConfig, workers int) *Study {
	c.gets.Add(1)
	return c.memo.Get(cfg, func() *Study {
		if st, ok := c.load(cfg); ok {
			c.disk.Add(1)
			return st
		}
		c.compute.Add(1)
		var progress func(done, total int)
		if c.OnProgress != nil {
			progress = func(done, total int) { c.OnProgress(cfg, done, total) }
			// Announce the campaign before any session completes, so
			// observers see it running rather than idle.
			progress(0, cfg.TotalSessions())
		}
		runner := LocalStudyRunner()
		sharded := false
		if p := c.runner.Load(); p != nil {
			runner, sharded = *p, true
		}
		st, err := RunStudyRunner(context.Background(), cfg, workers, runner, progress)
		if err != nil && sharded {
			// A sharded run can fail if a backend answers with a
			// well-formed but empty unit result (version skew, a
			// wrong service on the port).  The campaign must not be
			// lost to a defective fleet: recompute locally.
			st, err = RunStudyRunner(context.Background(), cfg, workers, LocalStudyRunner(), progress)
		}
		if err != nil {
			// Unreachable: the local runner executes units produced
			// by cfg.Units(), every one of which carries a spec.
			panic(fmt.Sprintf("core: campaign run failed: %v", err))
		}
		c.save(cfg, st)
		return st
	})
}

// Cached reports whether cfg's campaign is already resident in the
// in-process memo (not merely on disk).
func (c *StudyCache) Cached(cfg StudyConfig) bool {
	_, ok := c.memo.Peek(cfg)
	return ok
}

// Purge drops the in-process memo and, when a store is attached,
// removes its entries — the shared purge hook behind the CLI and the
// daemon's /v1/purge.
func (c *StudyCache) Purge() error {
	c.memo.Purge()
	if s := c.store.Load(); s != nil {
		return s.Purge()
	}
	return nil
}

// load probes the disk tier.
func (c *StudyCache) load(cfg StudyConfig) (*Study, bool) {
	s := c.store.Load()
	if s == nil {
		return nil, false
	}
	key, err := StudyKey(cfg)
	if err != nil {
		c.errors.Add(1)
		return nil, false
	}
	data, ok := s.Get(key)
	if !ok {
		return nil, false
	}
	st, err := DecodeStudy(data)
	if err != nil {
		// The entry passed its checksum but no longer decodes — a
		// schema drift the namespace version should have caught.
		// Treat as a miss and recompute.
		c.errors.Add(1)
		return nil, false
	}
	return st, true
}

// save writes a computed campaign back to the disk tier.
func (c *StudyCache) save(cfg StudyConfig, st *Study) {
	s := c.store.Load()
	if s == nil {
		return
	}
	key, err := StudyKey(cfg)
	if err != nil {
		c.errors.Add(1)
		return
	}
	data, err := EncodeStudy(st)
	if err != nil {
		c.errors.Add(1)
		return
	}
	if err := s.Put(key, data); err != nil {
		c.errors.Add(1)
	}
}

// EnsureStored writes cfg's campaign to the disk tier if a store is
// attached and the entry is absent — the write-through path for a
// campaign memoized before the store was attached.
func (c *StudyCache) EnsureStored(cfg StudyConfig, st *Study) {
	s := c.store.Load()
	if s == nil {
		return
	}
	key, err := StudyKey(cfg)
	if err != nil {
		c.errors.Add(1)
		return
	}
	if !s.Has(key) {
		c.save(cfg, st)
	}
}

// StudyAt returns the campaign for cfg using the two-tier cache
// rooted at cacheDir — the cmd tools' -cache flag.  An empty dir uses
// the process-wide memory-only DefaultStudyCache; otherwise the store
// is opened (created if needed) and attached to DefaultStudyCache, so
// every artefact generated by the process shares both tiers, and the
// campaign is guaranteed on disk when StudyAt returns.
func StudyAt(cacheDir string, cfg StudyConfig, workers int) (*Study, error) {
	if cacheDir != "" {
		if s := DefaultStudyCache.Store(); s == nil || s.Dir() != cacheDir {
			s, err := store.Open(cacheDir)
			if err != nil {
				return nil, err
			}
			DefaultStudyCache.SetStore(s)
		}
	}
	st := DefaultStudyCache.Get(cfg, workers)
	if cacheDir != "" {
		DefaultStudyCache.EnsureStored(cfg, st)
	}
	return st, nil
}

// StudyAtRunner is StudyAt computing through the given session runner
// — the cmd tools' -backends path.  The runner is installed on the
// process-wide DefaultStudyCache (a CLI process decides its execution
// mode once, at flag-parse time); nil restores in-process compute.
// Cache tiers are unaffected: memoized or stored campaigns are served
// without consulting the runner.
func StudyAtRunner(cacheDir string, cfg StudyConfig, workers int, r StudyRunner) (*Study, error) {
	DefaultStudyCache.SetRunner(r)
	return StudyAt(cacheDir, cfg, workers)
}
