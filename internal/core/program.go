package core

import (
	"repro/internal/concentrix"
	"repro/internal/fx8"
	"repro/internal/monitor"
)

// ProgramProfile is the per-program evaluation the study's conclusion
// proposes as future work: applying the workload-level concurrency
// measures at program scope, so an individual application's behaviour
// within the workload environment can be characterized.
type ProgramProfile struct {
	// Conc holds the program's own concurrency measures over every
	// cycle of its execution (not sampled — the simulator affords
	// exhaustive observation).
	Conc Concurrency

	// BusBusy, MissRate are the program's hardware measures over its
	// execution.
	BusBusy  float64
	MissRate float64

	// PageFaults is the fault count the program generated.
	PageFaults uint64

	// Cycles is the program's makespan; LoopCount and Iterations its
	// concurrency structure.
	Cycles     uint64
	LoopCount  uint64
	Iterations uint64

	// Completed reports whether the program finished within budget.
	Completed bool
}

// ProfileProgram runs one program alone on a freshly booted machine
// and measures it exhaustively.  clusterSize is the Concentrix
// resource class to run it under; limit bounds the run.
func ProfileProgram(cfg fx8.Config, serial fx8.Stream, clusterSize, limit int) ProgramProfile {
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())
	sys.Submit(&concentrix.Process{PID: 1, Name: "profiled", ClusterSize: clusterSize, Serial: serial})

	loops0 := cl.CCBus().LoopsStarted
	iters0 := cl.CCBus().IterationsRun
	var counts monitor.EventCounts
	start := cl.Cycle()
	for i := 0; i < limit && !sys.Drained(); i++ {
		sys.Step()
		counts.AddRecord(cl.Snapshot())
	}
	return ProgramProfile{
		Conc:       MeasuresFromCounts(counts),
		BusBusy:    counts.BusBusy(),
		MissRate:   counts.MissRate(),
		PageFaults: sys.Kernel.PageFaults(),
		Cycles:     cl.Cycle() - start,
		LoopCount:  cl.CCBus().LoopsStarted - loops0,
		Iterations: cl.CCBus().IterationsRun - iters0,
		Completed:  sys.Drained(),
	}
}
