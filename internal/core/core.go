package core
