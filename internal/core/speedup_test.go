package core

import (
	"testing"

	"repro/internal/fx8"
	"repro/internal/workload"
)

func kernelBuilder(kind string) func() fx8.Stream {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 2}
	switch kind {
	case "daxpy":
		return func() fx8.Stream {
			return workload.KernelProgram(workload.DAXPY(2048, layout), layout)
		}
	case "solver":
		return func() fx8.Stream {
			return workload.KernelProgram(workload.SolverSweep(64, 2, layout), layout)
		}
	}
	panic("unknown kernel")
}

func quietCfg() fx8.Config {
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	return cfg
}

func TestSpeedupCurveDAXPY(t *testing.T) {
	pts := SpeedupCurve(quietCfg(), kernelBuilder("daxpy"), 8, 10_000_000)
	if len(pts) != 8 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].Speedup != 1 || pts[0].Efficiency != 1 {
		t.Errorf("P=1 baseline: %+v", pts[0])
	}
	// Speedup must be real and efficiency must not exceed 1.
	for _, p := range pts {
		if p.Cycles == 0 {
			t.Fatalf("P=%d did not finish", p.Processors)
		}
		if p.Efficiency > 1.05 {
			t.Errorf("P=%d superlinear efficiency %v", p.Processors, p.Efficiency)
		}
	}
	if pts[7].Speedup <= pts[1].Speedup {
		t.Errorf("8-way speedup %v should exceed 2-way %v", pts[7].Speedup, pts[1].Speedup)
	}
	// Efficiency declines with P (contention), per section 2.
	if pts[7].Efficiency >= pts[0].Efficiency {
		t.Error("efficiency should decline with processor count")
	}
}

func TestSpeedupCurveDependenceLimited(t *testing.T) {
	// A distance-2 solver sweep cannot use 8 processors effectively:
	// its 8-way speedup must fall well short of the independent
	// kernel's.
	dep := SpeedupCurve(quietCfg(), kernelBuilder("solver"), 8, 10_000_000)
	free := SpeedupCurve(quietCfg(), kernelBuilder("daxpy"), 8, 10_000_000)
	if dep[7].Speedup >= free[7].Speedup {
		t.Errorf("dependence-limited speedup %v should trail independent %v",
			dep[7].Speedup, free[7].Speedup)
	}
}

func TestSpeedupCurveClamps(t *testing.T) {
	pts := SpeedupCurve(quietCfg(), kernelBuilder("daxpy"), 99, 10_000_000)
	if len(pts) != 8 {
		t.Errorf("maxP should clamp to NumCE: %d", len(pts))
	}
	pts = SpeedupCurve(quietCfg(), kernelBuilder("daxpy"), 0, 10_000_000)
	if len(pts) != 1 {
		t.Errorf("maxP should clamp to 1: %d", len(pts))
	}
}

func TestSpeedupCurveBudgetExhausted(t *testing.T) {
	pts := SpeedupCurve(quietCfg(), kernelBuilder("daxpy"), 2, 10)
	for _, p := range pts {
		if p.Cycles != 0 || p.Speedup != 0 {
			t.Errorf("unfinished run should report zero: %+v", p)
		}
	}
}

func TestProfileProgramKernel(t *testing.T) {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 4}
	prog := workload.KernelProgram(workload.DAXPY(2048, layout), layout)
	prof := ProfileProgram(quietCfg(), prog, 8, 10_000_000)
	if !prof.Completed {
		t.Fatal("program did not complete")
	}
	if prof.LoopCount != 1 || prof.Iterations != 64 {
		t.Errorf("structure: %d loops, %d iterations", prof.LoopCount, prof.Iterations)
	}
	if !prof.Conc.Defined || prof.Conc.Pc < 6 {
		t.Errorf("Pc = %v", prof.Conc.Pc)
	}
	if prof.Conc.Cw <= 0 || prof.Conc.Cw > 1 {
		t.Errorf("Cw = %v", prof.Conc.Cw)
	}
	if prof.Cycles == 0 {
		t.Error("cycles not counted")
	}
}

func TestProfileProgramSerialOnly(t *testing.T) {
	prog := workload.NewSerialPhase(workload.SerialParams{
		Instrs: 1000, MemProb: 0.2, WSBase: 0x10000, Seed: 5,
	})
	prof := ProfileProgram(quietCfg(), prog, 1, 1_000_000)
	if !prof.Completed {
		t.Fatal("serial program did not complete")
	}
	if prof.Conc.Defined {
		t.Error("serial program should have undefined Pc")
	}
	if prof.LoopCount != 0 {
		t.Errorf("loops = %d", prof.LoopCount)
	}
}

func TestProfileProgramBudget(t *testing.T) {
	layout := workload.KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 6}
	prog := workload.KernelProgram(workload.DAXPY(4096, layout), layout)
	prof := ProfileProgram(quietCfg(), prog, 8, 100)
	if prof.Completed {
		t.Error("100 cycles cannot complete the kernel")
	}
}
