package core

import (
	"repro/internal/fx8"
)

// Speedup and Efficiency are the classical multiprocessor measures the
// study's background chapter defines (S = T1/Tp, E = S/P) and contrasts
// with its workload-level measures: they require running the same
// program at each cluster size, which is impossible for a production
// workload but natural in the simulator.  This implements the [12]-
// style speedup experiment the study cites, as a complement to the
// workload methodology.

// SpeedupPoint is one cluster-size measurement of a program.
type SpeedupPoint struct {
	Processors int
	Cycles     uint64
	Speedup    float64 // T1 / Tp
	Efficiency float64 // Speedup / Processors
}

// SpeedupCurve runs the program builder once per cluster size from 1
// to maxP and reports speedup and efficiency at each size.  The
// builder must return a fresh serial stream each call (streams are
// stateful).  limit bounds each run's cycles; runs that do not finish
// report zero cycles.
func SpeedupCurve(cfg fx8.Config, build func() fx8.Stream, maxP, limit int) []SpeedupPoint {
	if maxP < 1 {
		maxP = 1
	}
	if maxP > cfg.NumCE {
		maxP = cfg.NumCE
	}
	pts := make([]SpeedupPoint, 0, maxP)
	var t1 uint64
	for p := 1; p <= maxP; p++ {
		cl := fx8.New(cfg)
		if err := cl.Run(build(), p); err != nil {
			panic(err)
		}
		start := cl.Cycle()
		for i := 0; i < limit && !cl.Idle(); i++ {
			cl.Step()
		}
		pt := SpeedupPoint{Processors: p}
		if cl.Idle() {
			pt.Cycles = cl.Cycle() - start
		}
		if p == 1 {
			t1 = pt.Cycles
		}
		if pt.Cycles > 0 && t1 > 0 {
			pt.Speedup = float64(t1) / float64(pt.Cycles)
			pt.Efficiency = pt.Speedup / float64(p)
		}
		pts = append(pts, pt)
	}
	return pts
}
