package core

import (
	"testing"

	"repro/internal/monitor"
)

// Session-level benchmarks: the two session kinds are the work units
// every campaign, sweep and service request fans out over, so their
// ns/op is the repository's headline hot-path number.  make bench
// records them in BENCH_core.json and the CI bench-gate fails a PR
// that slows them past the threshold.

// BenchmarkRunRandomSession measures one scaled-down random-sampling
// session end to end: machine boot, workload generation, sampling
// through the analyzer, and reduction.
func BenchmarkRunRandomSession(b *testing.B) {
	spec := SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 5, GapCycles: 5_000},
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i)
		RunRandomSession(i, spec)
	}
}

// BenchmarkRunTriggeredSession measures one scaled-down triggered
// session: armed acquisitions waiting on the all-8 comparator.
func BenchmarkRunTriggeredSession(b *testing.B) {
	spec := TriggeredSpec{
		Mode:           monitor.TriggerAll8,
		Samples:        2,
		Buffers:        2,
		BudgetCycles:   60_000,
		WorkloadCycles: 400_000,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		spec.Seed = uint64(i)
		RunTriggeredSession(i, spec)
	}
}
