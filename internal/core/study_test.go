package core

import (
	"testing"

	"repro/internal/monitor"
	"repro/internal/stats"
)

// TestFitModelsSynthetic validates the model-building procedure on a
// constructed sample population with known relationships.
func TestFitModelsSynthetic(t *testing.T) {
	var samples []SampleMeasures
	// Miss rate rises quadratically with Cw; flat in Pc.
	for i := 0; i < 400; i++ {
		cw := float64(i%11) / 10
		var conc Concurrency
		conc.Cw = cw
		if cw > 0 {
			conc.Defined = true
			conc.Pc = 6 + float64(i%3)
		}
		samples = append(samples, SampleMeasures{
			Conc:          conc,
			MissRate:      0.004 + 0.02*cw*cw + 0.001*float64(i%5)/5,
			BusBusy:       0.05 + 0.25*cw,
			PageFaultRate: 100 * cw,
		})
	}
	set := FitModels(samples)

	miss := set.VsCw[MeasureMissRate]
	if miss.Err != nil {
		t.Fatalf("miss-vs-Cw fit failed: %v", miss.Err)
	}
	if miss.Fit.R2 < 0.9 {
		t.Errorf("miss-vs-Cw R2 = %v", miss.Fit.R2)
	}
	atHalf, atFull, ratio := set.MissRateIncrease()
	if atFull <= atHalf || ratio < 1.5 {
		t.Errorf("miss rate increase = (%v, %v, %v)", atHalf, atFull, ratio)
	}

	bus := set.VsCw[MeasureBusBusy]
	if bus.Err != nil || bus.Fit.R2 < 0.95 {
		t.Errorf("bus-vs-Cw fit: %+v", bus.Fit)
	}

	// Pc models exist (three distinct Pc values -> three median
	// points, enough for a quadratic).
	if set.VsPc[MeasureMissRate].Err != nil {
		t.Errorf("miss-vs-Pc fit failed: %v", set.VsPc[MeasureMissRate].Err)
	}
}

func TestFitModelsTooFewPoints(t *testing.T) {
	samples := []SampleMeasures{
		{Conc: Concurrency{Cw: 0.5, Defined: true, Pc: 8}, MissRate: 0.01},
	}
	set := FitModels(samples)
	if set.VsCw[MeasureMissRate].Err == nil {
		t.Error("single-point fit should fail")
	}
	if set.VsPc[MeasureMissRate].Err == nil {
		t.Error("single-point Pc fit should fail")
	}
}

// TestQuickStudyEndToEnd runs the reduced campaign and checks every
// headline result of the paper in shape.
func TestQuickStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline study in -short mode")
	}
	st := RunStudy(QuickScale())

	// Session bookkeeping.
	if len(st.Random) != 3 || len(st.HighConc) != 3 || len(st.Transition) != 2 {
		t.Fatalf("session counts: %d %d %d", len(st.Random), len(st.HighConc), len(st.Transition))
	}
	if len(st.RandomSamples) != 3*16 {
		t.Fatalf("random samples = %d", len(st.RandomSamples))
	}
	if len(st.AllSamples) <= len(st.RandomSamples) {
		t.Error("high-concurrency samples missing from the chapter 5 population")
	}

	// Chapter 4: workload concurrency in the paper's neighbourhood,
	// dominated by idle/serial/8-active states.
	m := st.OverallMeasures
	if m.Cw < 0.15 || m.Cw > 0.55 {
		t.Errorf("overall Cw = %v, want near 0.35", m.Cw)
	}
	if !m.Defined || m.Pc < 7.0 {
		t.Errorf("overall Pc = %v, want > 7 (paper: 7.66)", m.Pc)
	}
	if m.CCond[8] < 0.8 {
		t.Errorf("c_8|c = %v, want > 0.8 (paper: 0.93)", m.CCond[8])
	}

	// Section 4.3: the 2-active state dominates transition periods
	// and CEs 0 and 7 are the dominant pair.
	tr := st.Transitions
	if tr.TransitionRecords == 0 {
		t.Fatal("no transition records captured")
	}
	share2 := tr.TransitionShare(2)
	for j := 3; j <= 7; j++ {
		if tr.TransitionShare(j) > share2 {
			t.Errorf("share(%d)=%v exceeds share(2)=%v", j, tr.TransitionShare(j), share2)
		}
	}
	a, b := tr.DominantPair()
	pair := map[int]bool{a: true, b: true}
	if !pair[0] || !pair[7] {
		t.Errorf("dominant transition pair = %d,%d, want 0 and 7", a, b)
	}

	// Chapter 5: miss rate rises with Cw.
	miss := st.Models.VsCw[MeasureMissRate]
	if miss.Err != nil {
		t.Fatalf("miss-vs-Cw model failed: %v", miss.Err)
	}
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	if atFull <= atHalf {
		t.Errorf("miss rate model not increasing: %v -> %v", atHalf, atFull)
	}
	if ratio < 1.3 {
		t.Errorf("miss rate increase ratio = %v, want substantial (paper: >3)", ratio)
	}

	// Miss rate should relate much more strongly to Cw than to Pc.
	// With fewer than five populated Pc midpoints a quadratic fits
	// the median points nearly exactly, so the R2 comparison is only
	// meaningful at larger scales.
	if pcModel := st.Models.VsPc[MeasureMissRate]; pcModel.Err == nil && len(pcModel.Points) >= 5 {
		if pcModel.Fit.R2 > miss.Fit.R2 {
			t.Errorf("miss rate more correlated with Pc (%v) than Cw (%v)",
				pcModel.Fit.R2, miss.Fit.R2)
		}
	}

	// Bus busy rises with Cw.
	bus := st.Models.VsCw[MeasureBusBusy]
	if bus.Err != nil {
		t.Fatalf("bus-vs-Cw model failed: %v", bus.Err)
	}
	if bus.Fit.Eval(1.0) <= bus.Fit.Eval(0.1) {
		t.Error("bus busy model should increase with Cw")
	}
}

func TestSessionSpanAccounting(t *testing.T) {
	spec := SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 5, GapCycles: 1000},
	}
	want := uint64(4 * 5 * (1000 + monitor.BufferDepth))
	if got := spec.span(); got != want {
		t.Errorf("span = %d, want %d", got, want)
	}
}

func TestRunRandomSessionSmall(t *testing.T) {
	spec := SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 2, GapCycles: 4000},
		Seed:     7,
	}
	ses := RunRandomSession(1, spec)
	if len(ses.Samples) != 4 || len(ses.Measures) != 4 {
		t.Fatalf("samples = %d", len(ses.Samples))
	}
	if ses.Total.Records != 4*2*monitor.BufferDepth {
		t.Fatalf("total records = %d", ses.Total.Records)
	}
}

func TestRunTriggeredSessionTransition(t *testing.T) {
	spec := TriggeredSpec{
		Mode:           monitor.TriggerTransition,
		Samples:        3,
		Buffers:        2,
		BudgetCycles:   500_000,
		Seed:           11,
		WorkloadCycles: 2_000_000,
	}
	ts := RunTriggeredSession(1, spec)
	if len(ts.Buffers) == 0 {
		t.Skip("no transitions captured in budget (seed-dependent)")
	}
	// Every captured buffer's first record must be a sub-8 state:
	// the trigger cycle itself.
	for i, buf := range ts.Buffers {
		if buf[0].ActiveCount() >= 8 {
			t.Errorf("buffer %d first record has %d active", i, buf[0].ActiveCount())
		}
	}
}

func TestMedianGridConstants(t *testing.T) {
	// The grids must produce 11 Cw midpoints and 7 Pc midpoints as in
	// section 5.2.
	pts := stats.MedianBin(
		[]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		make([]float64, 11), CwGridLo, CwGridHi, CwGridStep)
	if len(pts) != 11 {
		t.Errorf("Cw grid midpoints = %d, want 11", len(pts))
	}
	pts = stats.MedianBin(
		[]float64{2, 3, 4, 5, 6, 7, 8},
		make([]float64, 7), PcGridLo, PcGridHi, PcGridStep)
	if len(pts) != 7 {
		t.Errorf("Pc grid midpoints = %d, want 7", len(pts))
	}
}
