package core

import (
	"reflect"
	"sync"
	"testing"

	"repro/internal/monitor"
	"repro/internal/stats"
)

// TestFitModelsSynthetic validates the model-building procedure on a
// constructed sample population with known relationships.
func TestFitModelsSynthetic(t *testing.T) {
	var samples []SampleMeasures
	// Miss rate rises quadratically with Cw; flat in Pc.
	for i := 0; i < 400; i++ {
		cw := float64(i%11) / 10
		var conc Concurrency
		conc.Cw = cw
		if cw > 0 {
			conc.Defined = true
			conc.Pc = 6 + float64(i%3)
		}
		samples = append(samples, SampleMeasures{
			Conc:          conc,
			MissRate:      0.004 + 0.02*cw*cw + 0.001*float64(i%5)/5,
			BusBusy:       0.05 + 0.25*cw,
			PageFaultRate: 100 * cw,
		})
	}
	set := FitModels(samples)

	miss := set.VsCw[MeasureMissRate]
	if miss.Err != nil {
		t.Fatalf("miss-vs-Cw fit failed: %v", miss.Err)
	}
	if miss.Fit.R2 < 0.9 {
		t.Errorf("miss-vs-Cw R2 = %v", miss.Fit.R2)
	}
	atHalf, atFull, ratio := set.MissRateIncrease()
	if atFull <= atHalf || ratio < 1.5 {
		t.Errorf("miss rate increase = (%v, %v, %v)", atHalf, atFull, ratio)
	}

	bus := set.VsCw[MeasureBusBusy]
	if bus.Err != nil || bus.Fit.R2 < 0.95 {
		t.Errorf("bus-vs-Cw fit: %+v", bus.Fit)
	}

	// Pc models exist (three distinct Pc values -> three median
	// points, enough for a quadratic).
	if set.VsPc[MeasureMissRate].Err != nil {
		t.Errorf("miss-vs-Pc fit failed: %v", set.VsPc[MeasureMissRate].Err)
	}
}

func TestFitModelsTooFewPoints(t *testing.T) {
	samples := []SampleMeasures{
		{Conc: Concurrency{Cw: 0.5, Defined: true, Pc: 8}, MissRate: 0.01},
	}
	set := FitModels(samples)
	if set.VsCw[MeasureMissRate].Err == nil {
		t.Error("single-point fit should fail")
	}
	if set.VsPc[MeasureMissRate].Err == nil {
		t.Error("single-point Pc fit should fail")
	}
}

// TestQuickStudyEndToEnd runs the reduced campaign and checks every
// headline result of the paper in shape.
func TestQuickStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("full pipeline study in -short mode")
	}
	st := RunStudy(QuickScale())

	// Session bookkeeping.
	if len(st.Random) != 3 || len(st.HighConc) != 3 || len(st.Transition) != 2 {
		t.Fatalf("session counts: %d %d %d", len(st.Random), len(st.HighConc), len(st.Transition))
	}
	if len(st.RandomSamples) != 3*16 {
		t.Fatalf("random samples = %d", len(st.RandomSamples))
	}
	if len(st.AllSamples) <= len(st.RandomSamples) {
		t.Error("high-concurrency samples missing from the chapter 5 population")
	}

	// Chapter 4: workload concurrency in the paper's neighbourhood,
	// dominated by idle/serial/8-active states.
	m := st.OverallMeasures
	if m.Cw < 0.15 || m.Cw > 0.55 {
		t.Errorf("overall Cw = %v, want near 0.35", m.Cw)
	}
	if !m.Defined || m.Pc < 7.0 {
		t.Errorf("overall Pc = %v, want > 7 (paper: 7.66)", m.Pc)
	}
	if m.CCond[8] < 0.8 {
		t.Errorf("c_8|c = %v, want > 0.8 (paper: 0.93)", m.CCond[8])
	}

	// Section 4.3: the 2-active state dominates transition periods
	// and CEs 0 and 7 are the dominant pair.
	tr := st.Transitions
	if tr.TransitionRecords == 0 {
		t.Fatal("no transition records captured")
	}
	share2 := tr.TransitionShare(2)
	for j := 3; j <= 7; j++ {
		if tr.TransitionShare(j) > share2 {
			t.Errorf("share(%d)=%v exceeds share(2)=%v", j, tr.TransitionShare(j), share2)
		}
	}
	a, b := tr.DominantPair()
	pair := map[int]bool{a: true, b: true}
	if !pair[0] || !pair[7] {
		t.Errorf("dominant transition pair = %d,%d, want 0 and 7", a, b)
	}

	// Chapter 5: miss rate rises with Cw.
	miss := st.Models.VsCw[MeasureMissRate]
	if miss.Err != nil {
		t.Fatalf("miss-vs-Cw model failed: %v", miss.Err)
	}
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	if atFull <= atHalf {
		t.Errorf("miss rate model not increasing: %v -> %v", atHalf, atFull)
	}
	if ratio < 1.3 {
		t.Errorf("miss rate increase ratio = %v, want substantial (paper: >3)", ratio)
	}

	// Miss rate should relate much more strongly to Cw than to Pc.
	// With fewer than five populated Pc midpoints a quadratic fits
	// the median points nearly exactly, so the R2 comparison is only
	// meaningful at larger scales.
	if pcModel := st.Models.VsPc[MeasureMissRate]; pcModel.Err == nil && len(pcModel.Points) >= 5 {
		if pcModel.Fit.R2 > miss.Fit.R2 {
			t.Errorf("miss rate more correlated with Pc (%v) than Cw (%v)",
				pcModel.Fit.R2, miss.Fit.R2)
		}
	}

	// Bus busy rises with Cw.
	bus := st.Models.VsCw[MeasureBusBusy]
	if bus.Err != nil {
		t.Fatalf("bus-vs-Cw model failed: %v", bus.Err)
	}
	if bus.Fit.Eval(1.0) <= bus.Fit.Eval(0.1) {
		t.Error("bus busy model should increase with Cw")
	}
}

func TestSessionSpanAccounting(t *testing.T) {
	spec := SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 5, GapCycles: 1000},
	}
	want := uint64(4 * 5 * (1000 + monitor.BufferDepth))
	if got := spec.span(); got != want {
		t.Errorf("span = %d, want %d", got, want)
	}
}

func TestRunRandomSessionSmall(t *testing.T) {
	spec := SessionSpec{
		Samples:  4,
		Sampling: monitor.SampleSpec{Snapshots: 2, GapCycles: 4000},
		Seed:     7,
	}
	ses := RunRandomSession(1, spec)
	if len(ses.Samples) != 4 || len(ses.Measures) != 4 {
		t.Fatalf("samples = %d", len(ses.Samples))
	}
	if ses.Total.Records != 4*2*monitor.BufferDepth {
		t.Fatalf("total records = %d", ses.Total.Records)
	}
}

func TestRunTriggeredSessionTransition(t *testing.T) {
	spec := TriggeredSpec{
		Mode:           monitor.TriggerTransition,
		Samples:        3,
		Buffers:        2,
		BudgetCycles:   500_000,
		Seed:           11,
		WorkloadCycles: 2_000_000,
	}
	ts := RunTriggeredSession(1, spec)
	if len(ts.Buffers) == 0 {
		t.Skip("no transitions captured in budget (seed-dependent)")
	}
	// Every captured buffer's first record must be a sub-8 state:
	// the trigger cycle itself.
	for i, buf := range ts.Buffers {
		if buf[0].ActiveCount() >= 8 {
			t.Errorf("buffer %d first record has %d active", i, buf[0].ActiveCount())
		}
	}
}

// detScale is a reduced campaign for the worker-count determinism
// tests: every session group populated, small enough to run twice.
func detScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     3,
		HighConcSessions:   2,
		TransitionSessions: 2,
		SamplesPerSession:  6,
		Sampling:           monitor.SampleSpec{Snapshots: 3, GapCycles: 5_000},
		TriggeredSamples:   3,
		TriggeredBuffers:   3,
		TriggerBudget:      200_000,
		BaseSeed:           1987,
	}
}

// TestRunStudyWorkerCountInvariant is the engine's determinism
// regression test: the same StudyConfig and seed must produce exactly
// the same Study whether sessions run on one worker or eight.
func TestRunStudyWorkerCountInvariant(t *testing.T) {
	cfg := detScale()
	seq := RunStudyWorkers(cfg, 1)
	par := RunStudyWorkers(cfg, 8)

	// Field-by-field over everything downstream artefacts consume.
	if seq.Overall != par.Overall {
		t.Errorf("Overall diverges:\n seq %+v\n par %+v", seq.Overall, par.Overall)
	}
	if seq.OverallMeasures != par.OverallMeasures {
		t.Errorf("OverallMeasures diverges:\n seq %+v\n par %+v",
			seq.OverallMeasures, par.OverallMeasures)
	}
	if len(seq.Random) != len(par.Random) {
		t.Fatalf("Random sessions: %d vs %d", len(seq.Random), len(par.Random))
	}
	for i := range seq.Random {
		a, b := seq.Random[i], par.Random[i]
		if a.ID != b.ID || a.Total != b.Total || a.TotalFaults != b.TotalFaults {
			t.Errorf("random session %d diverges: %+v vs %+v", i, a.Total, b.Total)
		}
		if !reflect.DeepEqual(a.Samples, b.Samples) || !reflect.DeepEqual(a.Measures, b.Measures) {
			t.Errorf("random session %d samples/measures diverge", i)
		}
	}
	for name, pair := range map[string][2][]*TriggeredSession{
		"HighConc":   {seq.HighConc, par.HighConc},
		"Transition": {seq.Transition, par.Transition},
	} {
		a, b := pair[0], pair[1]
		if len(a) != len(b) {
			t.Fatalf("%s sessions: %d vs %d", name, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || a[i].Mode != b[i].Mode ||
				a[i].Total != b[i].Total || a[i].Timeouts != b[i].Timeouts {
				t.Errorf("%s session %d header diverges", name, i)
			}
			if !reflect.DeepEqual(a[i].Buffers, b[i].Buffers) {
				t.Errorf("%s session %d buffers diverge", name, i)
			}
			if !reflect.DeepEqual(a[i].Measures, b[i].Measures) {
				t.Errorf("%s session %d measures diverge", name, i)
			}
		}
	}
	if !reflect.DeepEqual(seq.RandomSamples, par.RandomSamples) {
		t.Error("RandomSamples diverge")
	}
	if !reflect.DeepEqual(seq.AllSamples, par.AllSamples) {
		t.Error("AllSamples diverge")
	}
	if !reflect.DeepEqual(seq.Transitions, par.Transitions) {
		t.Errorf("Transitions diverge:\n seq %+v\n par %+v", seq.Transitions, par.Transitions)
	}
	if !reflect.DeepEqual(seq.Models, par.Models) {
		t.Error("Models diverge")
	}
	// Belt and braces: nothing else hiding in the struct.
	if !reflect.DeepEqual(seq, par) {
		t.Error("Study structs diverge outside the checked fields")
	}
}

// TestCachedStudySharesOneCampaign verifies campaign memoization:
// repeated requests for the same configuration — including concurrent
// ones — share a single Study.
func TestCachedStudySharesOneCampaign(t *testing.T) {
	cfg := detScale()
	cfg.BaseSeed = 4242 // private key: don't collide with other tests' cache entries

	first := CachedStudy(cfg, 0)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got := CachedStudy(cfg, 0); got != first {
				t.Error("CachedStudy re-ran the campaign for an identical config")
			}
		}()
	}
	wg.Wait()

	other := cfg
	other.BaseSeed = 4243
	if CachedStudy(other, 0) == first {
		t.Error("different configs must not share a campaign")
	}
}

// BenchmarkRunStudy measures the campaign at quick scale across
// worker counts — the engine's headline scaling curve.  Every
// parallel sub-benchmark reports a speedup-x metric relative to the
// workers=1 run of the same invocation, so BENCH_study.json carries
// the scaling ratio itself and benchdiff tracks it like any other
// number: on a multi-core runner workers=max should report
// speedup-x >= 3 now that sessions reuse pooled arenas instead of
// serializing in the allocator.  (The sub-benchmarks run in order, so
// the sequential baseline is always measured first.)
func BenchmarkRunStudy(b *testing.B) {
	var seqNsPerOp float64
	for _, bc := range []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=2", 2},
		{"workers=4", 4},
		{"workers=max", 0},
	} {
		b.Run(bc.name, func(b *testing.B) {
			cfg := QuickScale()
			for i := 0; i < b.N; i++ {
				RunStudyWorkers(cfg, bc.workers)
			}
			ns := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			if bc.workers == 1 {
				seqNsPerOp = ns
			} else if seqNsPerOp > 0 && ns > 0 {
				b.ReportMetric(seqNsPerOp/ns, "speedup-x")
			}
		})
	}
}

// TestTriggeredSpecWorkloadCyclesNoOverflow pins the widened
// arithmetic in triggeredSpec: the three int factors are multiplied
// in uint64, so budgets whose int product would overflow a 32-bit int
// still size the workload correctly on every platform.
func TestTriggeredSpecWorkloadCyclesNoOverflow(t *testing.T) {
	cfg := StudyConfig{
		TriggeredSamples: 1_000,
		TriggeredBuffers: 100,
		TriggerBudget:    400_000, // product 4e10 >> MaxInt32
		BaseSeed:         1,
	}
	spec := cfg.triggeredSpec(monitor.TriggerAll8, 0)
	want := uint64(1_000) * 100 * 400_000 / 4
	if spec.WorkloadCycles != want {
		t.Errorf("WorkloadCycles = %d, want %d", spec.WorkloadCycles, want)
	}
	// The paper-scale boundary: samples*buffers*budget = 3.2e7 fits
	// either way; pin it so a regression to int arithmetic cannot
	// silently change paper-scale seeds or spans.
	paper := PaperScale()
	pspec := paper.triggeredSpec(monitor.TriggerTransition, 2)
	pwant := uint64(paper.TriggeredSamples) * uint64(paper.TriggeredBuffers) * uint64(paper.TriggerBudget) / 4
	if pspec.WorkloadCycles != pwant {
		t.Errorf("paper WorkloadCycles = %d, want %d", pspec.WorkloadCycles, pwant)
	}
	if pspec.Seed != paper.BaseSeed+200+2 {
		t.Errorf("paper transition seed = %d", pspec.Seed)
	}
}

// TestStudyUnitsCanonicalOrder pins the unit expansion RunStudyRunner
// reduces over: random, then all-8, then transition, with per-group
// 1-based IDs and the derived seeds of the direct path.
func TestStudyUnitsCanonicalOrder(t *testing.T) {
	cfg := QuickScale()
	units := cfg.Units()
	if len(units) != cfg.TotalSessions() {
		t.Fatalf("len(units) = %d, want %d", len(units), cfg.TotalSessions())
	}
	for i, u := range units {
		switch {
		case i < cfg.RandomSessions:
			if u.Random == nil || u.ID != i+1 || u.Random.Seed != cfg.BaseSeed+uint64(i) {
				t.Errorf("unit %d = %+v, want random session %d", i, u, i+1)
			}
		case i < cfg.RandomSessions+cfg.HighConcSessions:
			j := i - cfg.RandomSessions
			if u.Triggered == nil || u.Triggered.Mode != monitor.TriggerAll8 || u.ID != j+1 {
				t.Errorf("unit %d = %+v, want all-8 session %d", i, u, j+1)
			}
		default:
			j := i - cfg.RandomSessions - cfg.HighConcSessions
			if u.Triggered == nil || u.Triggered.Mode != monitor.TriggerTransition || u.ID != j+1 {
				t.Errorf("unit %d = %+v, want transition session %d", i, u, j+1)
			}
		}
	}
}

// TestRunStudyUnitRejectsEmptyUnit: a unit with no spec is a protocol
// error, not a panic.
func TestRunStudyUnitRejectsEmptyUnit(t *testing.T) {
	if _, err := RunStudyUnit(StudyUnit{ID: 3}); err == nil {
		t.Error("want an error for a spec-less unit")
	}
}

func TestMedianGridConstants(t *testing.T) {
	// The grids must produce 11 Cw midpoints and 7 Pc midpoints as in
	// section 5.2.
	pts := stats.MedianBin(
		[]float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0},
		make([]float64, 11), CwGridLo, CwGridHi, CwGridStep)
	if len(pts) != 11 {
		t.Errorf("Cw grid midpoints = %d, want 11", len(pts))
	}
	pts = stats.MedianBin(
		[]float64{2, 3, 4, 5, 6, 7, 8},
		make([]float64, 7), PcGridLo, PcGridHi, PcGridStep)
	if len(pts) != 7 {
		t.Errorf("Pc grid midpoints = %d, want 7", len(pts))
	}
}
