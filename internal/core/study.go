package core

import (
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/monitor"
)

// StudyConfig sizes the full reproduction of the study's measurement
// campaign: nine random-sampling sessions, ten all-8-triggered
// sessions, and five transition-triggered sessions.
type StudyConfig struct {
	RandomSessions     int
	HighConcSessions   int
	TransitionSessions int

	// SamplesPerSession and Sampling size the random sessions.
	SamplesPerSession int
	Sampling          monitor.SampleSpec

	// Triggered sizes the triggered sessions (Samples and Buffers
	// per sample, trigger budget).
	TriggeredSamples int
	TriggeredBuffers int
	TriggerBudget    int

	// BaseSeed offsets all session seeds; sessions use consecutive
	// derived seeds (different measurement days).
	BaseSeed uint64
}

// PaperScale returns the full-size campaign matching the study's
// session counts.
func PaperScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     9,
		HighConcSessions:   10,
		TransitionSessions: 5,
		SamplesPerSession:  50,
		Sampling:           monitor.SampleSpec{Snapshots: 5, GapCycles: 30_000},
		TriggeredSamples:   16,
		TriggeredBuffers:   5,
		TriggerBudget:      400_000,
		BaseSeed:           1987,
	}
}

// QuickScale returns a reduced campaign for tests and examples: the
// same structure at roughly a tenth the machine time.
func QuickScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     3,
		HighConcSessions:   3,
		TransitionSessions: 2,
		SamplesPerSession:  16,
		Sampling:           monitor.SampleSpec{Snapshots: 5, GapCycles: 10_000},
		TriggeredSamples:   6,
		TriggeredBuffers:   5,
		TriggerBudget:      300_000,
		BaseSeed:           1987,
	}
}

// ScaleNames lists the valid campaign scale names, in the order the
// tools document them.
func ScaleNames() []string { return []string{"quick", "paper"} }

// ScaleConfig maps a campaign scale name ("quick" or "paper") to its
// configuration — the cmd tools' -scale flag and the fx8d service's
// scale parameter.  Every consumer reports an unknown scale through
// this one error, so the CLI and the daemon fail identically.
func ScaleConfig(name string) (StudyConfig, error) {
	switch name {
	case "quick":
		return QuickScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return StudyConfig{}, fmt.Errorf("unknown scale %q (valid scales: %s)",
		name, strings.Join(ScaleNames(), ", "))
}

// Study is the complete result of the measurement campaign: the inputs
// to every table and figure in the paper.
type Study struct {
	Config StudyConfig

	// Random are the random-sampling sessions (chapter 4).
	Random []*Session

	// HighConc and Transition are the triggered sessions (sections
	// 3.5 and 4.3).
	HighConc   []*TriggeredSession
	Transition []*TriggeredSession

	// Overall is the sum of hardware event counts over all random
	// sessions (Table 2, Figure 3).
	Overall monitor.EventCounts

	// OverallMeasures are the concurrency measures of the summed
	// random sessions.
	OverallMeasures Concurrency

	// RandomSamples are the per-sample measures of the random
	// sessions (Figures 4, 5, A.3-A.5, Table A.1).
	RandomSamples []SampleMeasures

	// AllSamples combines random and high-concurrency samples — the
	// population chapter 5 analyzes.
	AllSamples []SampleMeasures

	// Transitions is the record-level transition analysis (Figures
	// 6, 7).
	Transitions TransitionStats

	// Models are the chapter 5 regressions (Tables 3, 4; Figures
	// 12-14, B.9, B.10).
	Models ModelSet
}

// randomSpec returns the spec of random-sampling session i (derived
// seed: a different measurement day).
func (cfg StudyConfig) randomSpec(i int) SessionSpec {
	return SessionSpec{
		Samples:  cfg.SamplesPerSession,
		Sampling: cfg.Sampling,
		Seed:     cfg.BaseSeed + uint64(i),
	}
}

// triggeredSpec returns the spec of triggered session i in mode-
// specific seed space (+100 for all-8, +200 for transition sessions).
func (cfg StudyConfig) triggeredSpec(mode monitor.TriggerMode, i int) TriggeredSpec {
	off := uint64(100)
	if mode == monitor.TriggerTransition {
		off = 200
	}
	return TriggeredSpec{
		Mode:           mode,
		Samples:        cfg.TriggeredSamples,
		Buffers:        cfg.TriggeredBuffers,
		BudgetCycles:   cfg.TriggerBudget,
		Seed:           cfg.BaseSeed + off + uint64(i),
		WorkloadCycles: uint64(cfg.TriggeredSamples*cfg.TriggeredBuffers*cfg.TriggerBudget) / 4,
	}
}

// RunStudy executes the full campaign and computes every derived
// result, fanning sessions over one worker per available CPU.
func RunStudy(cfg StudyConfig) *Study {
	return RunStudyWorkers(cfg, 0)
}

// RunStudyWorkers executes the full campaign on a bounded worker pool.
// Every session is an independent unit — its own machine, OS and
// workload built from a derived seed — so the three session groups fan
// out over one shared pool and are reduced in session order, making
// the result identical for every worker count (workers <= 0 selects
// one worker per CPU).
func RunStudyWorkers(cfg StudyConfig, workers int) *Study {
	return RunStudyProgress(cfg, workers, nil)
}

// TotalSessions returns the number of sessions the campaign runs —
// the denominator of progress reports.
func (cfg StudyConfig) TotalSessions() int {
	return cfg.RandomSessions + cfg.HighConcSessions + cfg.TransitionSessions
}

// RunStudyProgress is RunStudyWorkers with a session-completion
// callback: progress(done, total) fires from worker goroutines as
// sessions finish (see engine.MapProgress for its contract); nil
// disables reporting.  The callback observes scheduling order, but
// the returned Study is identical regardless.
func RunStudyProgress(cfg StudyConfig, workers int, progress func(done, total int)) *Study {
	st := &Study{Config: cfg}
	nR, nH, nT := cfg.RandomSessions, cfg.HighConcSessions, cfg.TransitionSessions

	// One pool covers all three groups, so stragglers in one group
	// overlap work from the next.
	type result struct {
		random    *Session
		triggered *TriggeredSession
	}
	results := engine.MapProgress(workers, nR+nH+nT, func(u int) result {
		switch {
		case u < nR:
			return result{random: RunRandomSession(u+1, cfg.randomSpec(u))}
		case u < nR+nH:
			i := u - nR
			return result{triggered: RunTriggeredSession(i+1, cfg.triggeredSpec(monitor.TriggerAll8, i))}
		default:
			i := u - nR - nH
			return result{triggered: RunTriggeredSession(i+1, cfg.triggeredSpec(monitor.TriggerTransition, i))}
		}
	}, progress)

	// Deterministic reduction in session order.
	for _, r := range results[:nR] {
		st.Random = append(st.Random, r.random)
		st.Overall.Add(r.random.Total)
		st.RandomSamples = append(st.RandomSamples, r.random.Measures...)
	}
	st.OverallMeasures = MeasuresFromCounts(st.Overall)

	for _, r := range results[nR : nR+nH] {
		st.HighConc = append(st.HighConc, r.triggered)
	}

	for _, r := range results[nR+nH:] {
		st.Transition = append(st.Transition, r.triggered)
		for _, buf := range r.triggered.Buffers {
			for _, rec := range buf {
				st.Transitions.AddRecord(rec)
			}
		}
	}

	st.AllSamples = append(st.AllSamples, st.RandomSamples...)
	for _, ts := range st.HighConc {
		st.AllSamples = append(st.AllSamples, ts.Measures...)
	}
	st.Models = FitModels(st.AllSamples)
	return st
}

// CachedStudy returns the memoized campaign for cfg from the
// process-wide DefaultStudyCache, running it on first use with the
// given worker count.  The returned Study is shared across callers
// and must be treated as read-only.  Because RunStudy's output is
// identical for every worker count, the cache key is the
// configuration alone.
func CachedStudy(cfg StudyConfig, workers int) *Study {
	return DefaultStudyCache.Get(cfg, workers)
}
