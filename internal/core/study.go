package core

import "repro/internal/monitor"

// StudyConfig sizes the full reproduction of the study's measurement
// campaign: nine random-sampling sessions, ten all-8-triggered
// sessions, and five transition-triggered sessions.
type StudyConfig struct {
	RandomSessions     int
	HighConcSessions   int
	TransitionSessions int

	// SamplesPerSession and Sampling size the random sessions.
	SamplesPerSession int
	Sampling          monitor.SampleSpec

	// Triggered sizes the triggered sessions (Samples and Buffers
	// per sample, trigger budget).
	TriggeredSamples int
	TriggeredBuffers int
	TriggerBudget    int

	// BaseSeed offsets all session seeds; sessions use consecutive
	// derived seeds (different measurement days).
	BaseSeed uint64
}

// PaperScale returns the full-size campaign matching the study's
// session counts.
func PaperScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     9,
		HighConcSessions:   10,
		TransitionSessions: 5,
		SamplesPerSession:  50,
		Sampling:           monitor.SampleSpec{Snapshots: 5, GapCycles: 30_000},
		TriggeredSamples:   16,
		TriggeredBuffers:   5,
		TriggerBudget:      400_000,
		BaseSeed:           1987,
	}
}

// QuickScale returns a reduced campaign for tests and examples: the
// same structure at roughly a tenth the machine time.
func QuickScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     3,
		HighConcSessions:   3,
		TransitionSessions: 2,
		SamplesPerSession:  16,
		Sampling:           monitor.SampleSpec{Snapshots: 5, GapCycles: 10_000},
		TriggeredSamples:   6,
		TriggeredBuffers:   5,
		TriggerBudget:      300_000,
		BaseSeed:           1987,
	}
}

// Study is the complete result of the measurement campaign: the inputs
// to every table and figure in the paper.
type Study struct {
	Config StudyConfig

	// Random are the random-sampling sessions (chapter 4).
	Random []*Session

	// HighConc and Transition are the triggered sessions (sections
	// 3.5 and 4.3).
	HighConc   []*TriggeredSession
	Transition []*TriggeredSession

	// Overall is the sum of hardware event counts over all random
	// sessions (Table 2, Figure 3).
	Overall monitor.EventCounts

	// OverallMeasures are the concurrency measures of the summed
	// random sessions.
	OverallMeasures Concurrency

	// RandomSamples are the per-sample measures of the random
	// sessions (Figures 4, 5, A.3-A.5, Table A.1).
	RandomSamples []SampleMeasures

	// AllSamples combines random and high-concurrency samples — the
	// population chapter 5 analyzes.
	AllSamples []SampleMeasures

	// Transitions is the record-level transition analysis (Figures
	// 6, 7).
	Transitions TransitionStats

	// Models are the chapter 5 regressions (Tables 3, 4; Figures
	// 12-14, B.9, B.10).
	Models ModelSet
}

// RunStudy executes the full campaign and computes every derived
// result.
func RunStudy(cfg StudyConfig) *Study {
	st := &Study{Config: cfg}

	for i := 0; i < cfg.RandomSessions; i++ {
		spec := SessionSpec{
			Samples:  cfg.SamplesPerSession,
			Sampling: cfg.Sampling,
			Seed:     cfg.BaseSeed + uint64(i),
		}
		ses := RunRandomSession(i+1, spec)
		st.Random = append(st.Random, ses)
		st.Overall.Add(ses.Total)
		st.RandomSamples = append(st.RandomSamples, ses.Measures...)
	}
	st.OverallMeasures = MeasuresFromCounts(st.Overall)

	for i := 0; i < cfg.HighConcSessions; i++ {
		spec := TriggeredSpec{
			Mode:           monitor.TriggerAll8,
			Samples:        cfg.TriggeredSamples,
			Buffers:        cfg.TriggeredBuffers,
			BudgetCycles:   cfg.TriggerBudget,
			Seed:           cfg.BaseSeed + 100 + uint64(i),
			WorkloadCycles: uint64(cfg.TriggeredSamples*cfg.TriggeredBuffers*cfg.TriggerBudget) / 4,
		}
		ts := RunTriggeredSession(i+1, spec)
		st.HighConc = append(st.HighConc, ts)
	}

	for i := 0; i < cfg.TransitionSessions; i++ {
		spec := TriggeredSpec{
			Mode:           monitor.TriggerTransition,
			Samples:        cfg.TriggeredSamples,
			Buffers:        cfg.TriggeredBuffers,
			BudgetCycles:   cfg.TriggerBudget,
			Seed:           cfg.BaseSeed + 200 + uint64(i),
			WorkloadCycles: uint64(cfg.TriggeredSamples*cfg.TriggeredBuffers*cfg.TriggerBudget) / 4,
		}
		ts := RunTriggeredSession(i+1, spec)
		st.Transition = append(st.Transition, ts)
		for _, buf := range ts.Buffers {
			for _, r := range buf {
				st.Transitions.AddRecord(r)
			}
		}
	}

	st.AllSamples = append(st.AllSamples, st.RandomSamples...)
	for _, ts := range st.HighConc {
		st.AllSamples = append(st.AllSamples, ts.Measures...)
	}
	st.Models = FitModels(st.AllSamples)
	return st
}
