package core

import (
	"context"
	"fmt"
	"strings"

	"repro/internal/engine"
	"repro/internal/monitor"
)

// StudyConfig sizes the full reproduction of the study's measurement
// campaign: nine random-sampling sessions, ten all-8-triggered
// sessions, and five transition-triggered sessions.
type StudyConfig struct {
	RandomSessions     int
	HighConcSessions   int
	TransitionSessions int

	// SamplesPerSession and Sampling size the random sessions.
	SamplesPerSession int
	Sampling          monitor.SampleSpec

	// Triggered sizes the triggered sessions (Samples and Buffers
	// per sample, trigger budget).
	TriggeredSamples int
	TriggeredBuffers int
	TriggerBudget    int

	// BaseSeed offsets all session seeds; sessions use consecutive
	// derived seeds (different measurement days).
	BaseSeed uint64
}

// PaperScale returns the full-size campaign matching the study's
// session counts.
func PaperScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     9,
		HighConcSessions:   10,
		TransitionSessions: 5,
		SamplesPerSession:  50,
		Sampling:           monitor.SampleSpec{Snapshots: 5, GapCycles: 30_000},
		TriggeredSamples:   16,
		TriggeredBuffers:   5,
		TriggerBudget:      400_000,
		BaseSeed:           1987,
	}
}

// QuickScale returns a reduced campaign for tests and examples: the
// same structure at roughly a tenth the machine time.
func QuickScale() StudyConfig {
	return StudyConfig{
		RandomSessions:     3,
		HighConcSessions:   3,
		TransitionSessions: 2,
		SamplesPerSession:  16,
		Sampling:           monitor.SampleSpec{Snapshots: 5, GapCycles: 10_000},
		TriggeredSamples:   6,
		TriggeredBuffers:   5,
		TriggerBudget:      300_000,
		BaseSeed:           1987,
	}
}

// ScaleNames lists the valid campaign scale names, in the order the
// tools document them.
func ScaleNames() []string { return []string{"quick", "paper"} }

// ScaleConfig maps a campaign scale name ("quick" or "paper") to its
// configuration — the cmd tools' -scale flag and the fx8d service's
// scale parameter.  Every consumer reports an unknown scale through
// this one error, so the CLI and the daemon fail identically.
func ScaleConfig(name string) (StudyConfig, error) {
	switch name {
	case "quick":
		return QuickScale(), nil
	case "paper":
		return PaperScale(), nil
	}
	return StudyConfig{}, fmt.Errorf("unknown scale %q (valid scales: %s)",
		name, strings.Join(ScaleNames(), ", "))
}

// Study is the complete result of the measurement campaign: the inputs
// to every table and figure in the paper.
type Study struct {
	Config StudyConfig

	// Random are the random-sampling sessions (chapter 4).
	Random []*Session

	// HighConc and Transition are the triggered sessions (sections
	// 3.5 and 4.3).
	HighConc   []*TriggeredSession
	Transition []*TriggeredSession

	// Overall is the sum of hardware event counts over all random
	// sessions (Table 2, Figure 3).
	Overall monitor.EventCounts

	// OverallMeasures are the concurrency measures of the summed
	// random sessions.
	OverallMeasures Concurrency

	// RandomSamples are the per-sample measures of the random
	// sessions (Figures 4, 5, A.3-A.5, Table A.1).
	RandomSamples []SampleMeasures

	// AllSamples combines random and high-concurrency samples — the
	// population chapter 5 analyzes.
	AllSamples []SampleMeasures

	// Transitions is the record-level transition analysis (Figures
	// 6, 7).
	Transitions TransitionStats

	// Models are the chapter 5 regressions (Tables 3, 4; Figures
	// 12-14, B.9, B.10).
	Models ModelSet
}

// randomSpec returns the spec of random-sampling session i (derived
// seed: a different measurement day).
func (cfg StudyConfig) randomSpec(i int) SessionSpec {
	return SessionSpec{
		Samples:  cfg.SamplesPerSession,
		Sampling: cfg.Sampling,
		Seed:     cfg.BaseSeed + uint64(i),
	}
}

// triggeredSpec returns the spec of triggered session i in mode-
// specific seed space (+100 for all-8, +200 for transition sessions).
func (cfg StudyConfig) triggeredSpec(mode monitor.TriggerMode, i int) TriggeredSpec {
	off := uint64(100)
	if mode == monitor.TriggerTransition {
		off = 200
	}
	return TriggeredSpec{
		Mode:         mode,
		Samples:      cfg.TriggeredSamples,
		Buffers:      cfg.TriggeredBuffers,
		BudgetCycles: cfg.TriggerBudget,
		Seed:         cfg.BaseSeed + off + uint64(i),
		// Widen each factor before multiplying: the product of the
		// three int fields overflows 32-bit int for large budgets.
		WorkloadCycles: uint64(cfg.TriggeredSamples) * uint64(cfg.TriggeredBuffers) * uint64(cfg.TriggerBudget) / 4,
	}
}

// RunStudy executes the full campaign and computes every derived
// result, fanning sessions over one worker per available CPU.
func RunStudy(cfg StudyConfig) *Study {
	return RunStudyWorkers(cfg, 0)
}

// RunStudyWorkers executes the full campaign on a bounded worker pool.
// Every session is an independent unit — its own machine, OS and
// workload built from a derived seed — so the three session groups fan
// out over one shared pool and are reduced in session order, making
// the result identical for every worker count (workers <= 0 selects
// one worker per CPU).
func RunStudyWorkers(cfg StudyConfig, workers int) *Study {
	return RunStudyProgress(cfg, workers, nil)
}

// TotalSessions returns the number of sessions the campaign runs —
// the denominator of progress reports.
func (cfg StudyConfig) TotalSessions() int {
	return cfg.RandomSessions + cfg.HighConcSessions + cfg.TransitionSessions
}

// RunStudyProgress is RunStudyWorkers with a session-completion
// callback: progress(done, total) fires from worker goroutines as
// sessions finish (see engine.MapProgress for its contract); nil
// disables reporting.  The callback observes scheduling order, but
// the returned Study is identical regardless.
func RunStudyProgress(cfg StudyConfig, workers int, progress func(done, total int)) *Study {
	st, err := RunStudyRunner(context.Background(), cfg, workers, LocalStudyRunner(), progress)
	if err != nil {
		// The local runner never fails a unit: its compute function
		// returns no error and ignores the context.
		panic(err)
	}
	return st
}

// StudyUnit is one campaign session as a self-contained work unit:
// exactly one of Random or Triggered is set.  Units are pure data —
// they serialize to JSON for fx8d's POST /v1/run/session endpoint —
// and the session they describe is a pure function of the unit, so a
// unit may be executed anywhere (or more than once) with an identical
// result.
type StudyUnit struct {
	// ID is the 1-based session number within its group.
	ID int `json:"id"`

	Random    *SessionSpec   `json:"random,omitempty"`
	Triggered *TriggeredSpec `json:"triggered,omitempty"`
}

// StudyUnitResult is the completed session for a StudyUnit, mirroring
// which spec field was set.
type StudyUnitResult struct {
	Random    *Session          `json:"random,omitempty"`
	Triggered *TriggeredSession `json:"triggered,omitempty"`
}

// Units expands the campaign into its session work units in canonical
// order: random sessions, then all-8-triggered, then
// transition-triggered.  Reducing results in this order reproduces
// RunStudy exactly.
func (cfg StudyConfig) Units() []StudyUnit {
	units := make([]StudyUnit, 0, cfg.TotalSessions())
	for i := 0; i < cfg.RandomSessions; i++ {
		spec := cfg.randomSpec(i)
		units = append(units, StudyUnit{ID: i + 1, Random: &spec})
	}
	for i := 0; i < cfg.HighConcSessions; i++ {
		spec := cfg.triggeredSpec(monitor.TriggerAll8, i)
		units = append(units, StudyUnit{ID: i + 1, Triggered: &spec})
	}
	for i := 0; i < cfg.TransitionSessions; i++ {
		spec := cfg.triggeredSpec(monitor.TriggerTransition, i)
		units = append(units, StudyUnit{ID: i + 1, Triggered: &spec})
	}
	return units
}

// RunStudyUnit executes one session work unit in-process — the
// compute path shared by the local runner and fx8d's serving side.
func RunStudyUnit(u StudyUnit) (StudyUnitResult, error) {
	switch {
	case u.Random != nil:
		return StudyUnitResult{Random: RunRandomSession(u.ID, *u.Random)}, nil
	case u.Triggered != nil:
		return StudyUnitResult{Triggered: RunTriggeredSession(u.ID, *u.Triggered)}, nil
	}
	return StudyUnitResult{}, fmt.Errorf("core: study unit %d has no spec", u.ID)
}

// StudyRunner executes campaign session units: the engine's local
// pool, or the internal/remote client sharding across fx8d backends.
type StudyRunner = engine.Runner[StudyUnit, StudyUnitResult]

// LocalStudyRunner returns the in-process StudyRunner.
func LocalStudyRunner() StudyRunner {
	return engine.Local[StudyUnit, StudyUnitResult]{Fn: RunStudyUnit}
}

// RunStudyRunner executes the full campaign on an arbitrary
// StudyRunner and reduces unit results in session order, so the
// returned Study is byte-identical to local execution for every
// worker count, backend count and unit scheduling.  progress follows
// the engine.MapProgress contract.
func RunStudyRunner(ctx context.Context, cfg StudyConfig, workers int, r StudyRunner, progress func(done, total int)) (*Study, error) {
	st := &Study{Config: cfg}
	nR, nH := cfg.RandomSessions, cfg.HighConcSessions

	// One pool covers all three groups, so stragglers in one group
	// overlap work from the next.
	results, err := engine.RunAll(ctx, workers, cfg.Units(), r, progress)
	if err != nil {
		return nil, err
	}
	for i, res := range results {
		want := "triggered"
		if i < nR {
			want = "random"
		}
		if (i < nR && res.Random == nil) || (i >= nR && res.Triggered == nil) {
			return nil, fmt.Errorf("core: runner returned no %s session for unit %d", want, i+1)
		}
	}

	// Deterministic reduction in session order.
	for _, res := range results[:nR] {
		st.Random = append(st.Random, res.Random)
		st.Overall.Add(res.Random.Total)
		st.RandomSamples = append(st.RandomSamples, res.Random.Measures...)
	}
	st.OverallMeasures = MeasuresFromCounts(st.Overall)

	for _, res := range results[nR : nR+nH] {
		st.HighConc = append(st.HighConc, res.Triggered)
	}

	for _, res := range results[nR+nH:] {
		st.Transition = append(st.Transition, res.Triggered)
		for _, buf := range res.Triggered.Buffers {
			for _, rec := range buf {
				st.Transitions.AddRecord(rec)
			}
		}
	}

	st.AllSamples = append(st.AllSamples, st.RandomSamples...)
	for _, ts := range st.HighConc {
		st.AllSamples = append(st.AllSamples, ts.Measures...)
	}
	st.Models = FitModels(st.AllSamples)
	return st, nil
}

// CachedStudy returns the memoized campaign for cfg from the
// process-wide DefaultStudyCache, running it on first use with the
// given worker count.  The returned Study is shared across callers
// and must be treated as read-only.  Because RunStudy's output is
// identical for every worker count, the cache key is the
// configuration alone.
func CachedStudy(cfg StudyConfig, workers int) *Study {
	return DefaultStudyCache.Get(cfg, workers)
}
