package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/monitor"
	"repro/internal/trace"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMeasuresFromNumEmpty(t *testing.T) {
	m := MeasuresFromNum([P + 1]int{})
	if m.Defined || m.Cw != 0 || m.Pc != 0 {
		t.Errorf("empty measures = %+v", m)
	}
}

func TestMeasuresFromNumSerialOnly(t *testing.T) {
	var num [P + 1]int
	num[0] = 30
	num[1] = 70
	m := MeasuresFromNum(num)
	if m.Cw != 0 {
		t.Errorf("Cw = %v, want 0", m.Cw)
	}
	if m.Defined {
		t.Error("Pc should be undefined for serial workload")
	}
	if !approx(m.C[1], 0.7, 1e-12) {
		t.Errorf("c_1 = %v", m.C[1])
	}
}

func TestMeasuresFromNumPaperExample(t *testing.T) {
	// A distribution echoing Table 2: most time idle/serial, most
	// concurrency at 8-active.
	var num [P + 1]int
	num[0] = 150
	num[1] = 500
	num[2] = 5
	num[8] = 345
	m := MeasuresFromNum(num)
	if !approx(m.Cw, 0.35, 1e-12) {
		t.Errorf("Cw = %v, want 0.35", m.Cw)
	}
	if !m.Defined {
		t.Fatal("Pc should be defined")
	}
	wantPc := (2.0*5 + 8.0*345) / 350
	if !approx(m.Pc, wantPc, 1e-12) {
		t.Errorf("Pc = %v, want %v", m.Pc, wantPc)
	}
	if !approx(m.CCond[8], 345.0/350, 1e-12) {
		t.Errorf("c_8|c = %v", m.CCond[8])
	}
}

func TestMeasuresFullConcurrency(t *testing.T) {
	var num [P + 1]int
	num[8] = 100
	m := MeasuresFromNum(num)
	if m.Cw != 1 || m.Pc != 8 {
		t.Errorf("full concurrency: Cw=%v Pc=%v", m.Cw, m.Pc)
	}
}

func TestMeasuresProperties(t *testing.T) {
	// Properties: probabilities sum to 1; 0 <= Cw <= 1; when defined,
	// 2 <= Pc <= 8 and conditional probabilities sum to 1.
	f := func(raw [P + 1]uint16) bool {
		var num [P + 1]int
		total := 0
		for i, v := range raw {
			num[i] = int(v % 1000)
			total += num[i]
		}
		m := MeasuresFromNum(num)
		if total == 0 {
			return !m.Defined && m.Cw == 0
		}
		sum := 0.0
		for _, c := range m.C {
			if c < 0 || c > 1 {
				return false
			}
			sum += c
		}
		if !approx(sum, 1, 1e-9) {
			return false
		}
		if m.Cw < 0 || m.Cw > 1 {
			return false
		}
		if m.Defined {
			if m.Pc < 2 || m.Pc > 8 {
				return false
			}
			csum := 0.0
			for _, c := range m.CCond {
				csum += c
			}
			if !approx(csum, 1, 1e-9) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestMeasuresFromCounts(t *testing.T) {
	var r trace.Record
	r.Active[0] = true
	r.Active[1] = true
	e := monitor.Reduce([]trace.Record{r})
	m := MeasuresFromCounts(e)
	if m.Cw != 1 || !m.Defined || m.Pc != 2 {
		t.Errorf("measures = %+v", m)
	}
}

func TestMeasureSample(t *testing.T) {
	var r trace.Record
	r.Active[0] = true
	r.CE[0] = trace.CEReadMiss
	s := monitor.Sample{Counts: monitor.Reduce([]trace.Record{r}), PageFaults: 42}
	m := MeasureSample(s)
	if m.PageFaultRate != 42 {
		t.Errorf("fault rate = %v", m.PageFaultRate)
	}
	if !approx(m.MissRate, 1.0/8, 1e-12) {
		t.Errorf("miss rate = %v", m.MissRate)
	}
	if !approx(m.BusBusy, 1.0/8, 1e-12) {
		t.Errorf("bus busy = %v", m.BusBusy)
	}
	if m.Records != 1 {
		t.Errorf("records = %d", m.Records)
	}
}

func TestSplitByConcurrency(t *testing.T) {
	ms := []SampleMeasures{
		{Conc: Concurrency{Defined: true}},
		{Conc: Concurrency{Defined: false}},
		{Conc: Concurrency{Defined: true}},
	}
	c, s := SplitByConcurrency(ms)
	if len(c) != 2 || len(s) != 1 {
		t.Errorf("split = %d, %d", len(c), len(s))
	}
}

func TestColumnsSkipsUndefined(t *testing.T) {
	ms := []SampleMeasures{
		{Conc: Concurrency{Defined: true, Pc: 7}, MissRate: 0.01},
		{Conc: Concurrency{Defined: false}, MissRate: 0.02},
	}
	xs, ys := Columns(ms, SelPc, SelMissRate)
	if len(xs) != 1 || xs[0] != 7 || ys[0] != 0.01 {
		t.Errorf("columns = %v, %v", xs, ys)
	}
	// Cw is always defined.
	xs, _ = Columns(ms, SelCw, SelMissRate)
	if len(xs) != 2 {
		t.Errorf("Cw columns = %v", xs)
	}
}

func TestSystemMeasureStrings(t *testing.T) {
	if MeasureMissRate.String() != "Median Miss Rate" ||
		MeasureBusBusy.String() != "Median CE Bus Busy" ||
		MeasurePageFaultRate.String() != "Median Page Fault Rate" {
		t.Error("measure names wrong")
	}
	if SystemMeasure(9).String() != "SystemMeasure(9)" {
		t.Error("unknown measure name wrong")
	}
	if SystemMeasure(9).Selector() != nil {
		t.Error("unknown measure selector should be nil")
	}
}

func TestTransitionStats(t *testing.T) {
	mk := func(ids ...int) trace.Record {
		var r trace.Record
		for _, i := range ids {
			r.Active[i] = true
		}
		return r
	}
	buffers := [][]trace.Record{
		{mk(0, 1, 2, 3, 4, 5, 6, 7)}, // 8-active: not a transition state
		{mk(0, 7), mk(0, 7), mk(0, 7)},
		{mk(0, 3, 7)},
		{mk(0)}, // serial: not a transition state
	}
	ts := AnalyzeTransitions(buffers)
	if ts.Records != 6 {
		t.Fatalf("records = %d", ts.Records)
	}
	if ts.TransitionRecords != 4 {
		t.Fatalf("transition records = %d", ts.TransitionRecords)
	}
	if ts.Num[2] != 3 || ts.Num[3] != 1 || ts.Num[8] != 1 || ts.Num[1] != 1 {
		t.Errorf("num = %v", ts.Num)
	}
	if !approx(ts.TransitionShare(2), 0.75, 1e-12) {
		t.Errorf("share(2) = %v", ts.TransitionShare(2))
	}
	if ts.TransitionShare(8) != 0 || ts.TransitionShare(1) != 0 {
		t.Error("shares outside 2..7 should be 0")
	}
	// Prof counts only transition-state records: CE0 in 4, CE7 in 4,
	// CE3 in 1.
	if ts.Prof[0] != 4 || ts.Prof[7] != 4 || ts.Prof[3] != 1 || ts.Prof[1] != 0 {
		t.Errorf("prof = %v", ts.Prof)
	}
	a, b := ts.DominantPair()
	if !(a == 0 && b == 7 || a == 7 && b == 0) {
		t.Errorf("dominant pair = %d, %d", a, b)
	}
}

func TestTransitionStatsAdd(t *testing.T) {
	var a, b TransitionStats
	var r trace.Record
	r.Active[0], r.Active[1] = true, true
	a.AddRecord(r)
	b.AddRecord(r)
	a.Add(b)
	if a.Records != 2 || a.Num[2] != 2 || a.Prof[0] != 2 {
		t.Errorf("merged = %+v", a)
	}
}

func TestTransitionShareEmpty(t *testing.T) {
	var ts TransitionStats
	if ts.TransitionShare(2) != 0 {
		t.Error("empty share should be 0")
	}
}
