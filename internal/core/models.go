package core

import (
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/stats"
)

// SystemMeasure identifies one of the three chapter 5 system measures.
type SystemMeasure int

// The modeled system measures.
const (
	MeasureMissRate SystemMeasure = iota
	MeasureBusBusy
	MeasurePageFaultRate
	numSystemMeasures
)

// NumSystemMeasures is the number of modeled system measures.
const NumSystemMeasures = int(numSystemMeasures)

// String names the measure as the study's tables do.
func (m SystemMeasure) String() string {
	switch m {
	case MeasureMissRate:
		return "Median Miss Rate"
	case MeasureBusBusy:
		return "Median CE Bus Busy"
	case MeasurePageFaultRate:
		return "Median Page Fault Rate"
	}
	return fmt.Sprintf("SystemMeasure(%d)", int(m))
}

// Selector returns the Columns selector for the measure.
func (m SystemMeasure) Selector() func(SampleMeasures) (float64, bool) {
	switch m {
	case MeasureMissRate:
		return SelMissRate
	case MeasureBusBusy:
		return SelBusBusy
	case MeasurePageFaultRate:
		return SelPageFaultRate
	}
	return nil
}

// Grid constants of the section 5.2 median-binning procedure.
const (
	CwGridLo, CwGridHi, CwGridStep = 0.0, 1.0, 0.1
	PcGridLo, PcGridHi, PcGridStep = 2.0, 8.0, 1.0
)

// Model is one fitted regression: the quadratic, its median points,
// and which measure/axis it describes.
type Model struct {
	Measure SystemMeasure
	VsPc    bool // false: vs Workload Concurrency, true: vs Pc
	Fit     stats.QuadModel
	Points  []stats.MedianPoint
	Err     error // non-nil when the fit failed (too few points)
}

// modelJSON is Model's stored form: the error interface does not
// survive encoding/json, so a failed fit persists as its message.
type modelJSON struct {
	Measure SystemMeasure
	VsPc    bool
	Fit     stats.QuadModel
	Points  []stats.MedianPoint
	Err     string `json:",omitempty"`
}

// MarshalJSON encodes the model with its fit error flattened to a
// string, so fitted model sets round-trip through the campaign store.
func (m Model) MarshalJSON() ([]byte, error) {
	j := modelJSON{Measure: m.Measure, VsPc: m.VsPc, Fit: m.Fit, Points: m.Points}
	if m.Err != nil {
		j.Err = m.Err.Error()
	}
	return json.Marshal(j)
}

// UnmarshalJSON decodes a stored model.
func (m *Model) UnmarshalJSON(data []byte) error {
	var j modelJSON
	if err := json.Unmarshal(data, &j); err != nil {
		return err
	}
	*m = Model{Measure: j.Measure, VsPc: j.VsPc, Fit: j.Fit, Points: j.Points}
	if j.Err != "" {
		m.Err = errors.New(j.Err)
	}
	return nil
}

// ModelSet holds the six chapter 5 regressions (three measures, two
// concurrency axes) — the contents of Tables 3 and 4.
type ModelSet struct {
	VsCw [NumSystemMeasures]Model
	VsPc [NumSystemMeasures]Model
}

// FitModels runs the full section 5.2 procedure over the sample set:
// for each system measure, median-bin against the Workload Concurrency
// grid (midpoints 0.0, 0.1, ..., 1.0) and against the Mean Concurrency
// Level grid (midpoints 2.0 ... 8.0, concurrency-defined samples
// only), then fit second-order models.
func FitModels(samples []SampleMeasures) ModelSet {
	var set ModelSet
	for m := SystemMeasure(0); m < SystemMeasure(NumSystemMeasures); m++ {
		sel := m.Selector()

		xs, ys := Columns(samples, SelCw, sel)
		fit, pts, err := stats.FitMedianModel(xs, ys, CwGridLo, CwGridHi, CwGridStep)
		set.VsCw[m] = Model{Measure: m, Fit: fit, Points: pts, Err: err}

		xs, ys = Columns(samples, SelPc, sel)
		fit, pts, err = stats.FitMedianModel(xs, ys, PcGridLo, PcGridHi, PcGridStep)
		set.VsPc[m] = Model{Measure: m, VsPc: true, Fit: fit, Points: pts, Err: err}
	}
	return set
}

// MissRateIncrease evaluates the headline prediction of the abstract:
// the ratio of the modeled median miss rate at full workload
// concurrency to its value at half concurrency (the study reports
// .007 -> .024, a greater-than-triple increase).
func (s ModelSet) MissRateIncrease() (atHalf, atFull, ratio float64) {
	m := s.VsCw[MeasureMissRate].Fit
	atHalf, atFull = m.Eval(0.5), m.Eval(1.0)
	if atHalf > 0 {
		ratio = atFull / atHalf
	}
	return atHalf, atFull, ratio
}
