package core

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/monitor"
	"repro/internal/store"
)

// tinyConfig is a minimal but structurally complete campaign for
// cache-behavior tests: one session of each kind, a handful of
// samples, milliseconds of machine time.
func tinyConfig() StudyConfig {
	return StudyConfig{
		RandomSessions:     1,
		HighConcSessions:   1,
		TransitionSessions: 1,
		SamplesPerSession:  2,
		Sampling:           monitor.SampleSpec{Snapshots: 2, GapCycles: 2_000},
		TriggeredSamples:   1,
		TriggeredBuffers:   1,
		TriggerBudget:      50_000,
		BaseSeed:           42,
	}
}

func TestStudyEncodingRoundTrips(t *testing.T) {
	t.Parallel()
	st := RunStudy(tinyConfig())
	enc, err := EncodeStudy(st)
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeStudy(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := EncodeStudy(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("encode(decode(encode(study))) differs from encode(study): encoding is not canonical")
	}
	if dec.Overall != st.Overall {
		t.Error("Overall counts drifted through the codec")
	}
	if len(dec.AllSamples) != len(st.AllSamples) {
		t.Errorf("AllSamples = %d, want %d", len(dec.AllSamples), len(st.AllSamples))
	}
	if len(dec.Transition) != len(st.Transition) ||
		len(dec.Transition[0].Buffers) != len(st.Transition[0].Buffers) {
		t.Error("trigger buffers drifted through the codec")
	}
	for i, buf := range dec.Transition[0].Buffers {
		for j, rec := range buf {
			if rec != st.Transition[0].Buffers[i][j] {
				t.Fatalf("buffer %d record %d drifted through the packed-record codec", i, j)
			}
		}
	}
}

func TestStudyCacheComputeThenDisk(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := tinyConfig()

	// First process: memory and disk both cold, so the campaign is
	// computed once and written back.
	s1, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c1 := NewStudyCache()
	c1.SetStore(s1)
	first := c1.Get(cfg, 0)
	if st := c1.Stats(); st.Computes != 1 || st.DiskHits != 0 {
		t.Fatalf("first get stats = %+v, want one compute", st)
	}
	if again := c1.Get(cfg, 0); again != first {
		t.Error("second get in the same process did not hit the memo")
	}
	if st := c1.Stats(); st.MemoryHits != 1 {
		t.Errorf("stats = %+v, want one memory hit", st)
	}

	// Second process (fresh cache, same directory): served from disk
	// without recomputing, byte-identical under the canonical
	// encoding.
	s2, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	c2 := NewStudyCache()
	c2.SetStore(s2)
	second := c2.Get(cfg, 0)
	if st := c2.Stats(); st.DiskHits != 1 || st.Computes != 0 {
		t.Fatalf("second process stats = %+v, want one disk hit and no computes", st)
	}
	e1, _ := EncodeStudy(first)
	e2, _ := EncodeStudy(second)
	if !bytes.Equal(e1, e2) {
		t.Error("disk-restored study is not byte-identical to the computed one")
	}
}

func TestStudyCacheSingleflight(t *testing.T) {
	t.Parallel()
	c := NewStudyCache()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.SetStore(s)
	cfg := tinyConfig()
	const n = 16
	var wg sync.WaitGroup
	results := make([]*Study, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = c.Get(cfg, 2)
		}(i)
	}
	wg.Wait()
	for i := 1; i < n; i++ {
		if results[i] != results[0] {
			t.Fatal("concurrent gets returned distinct studies")
		}
	}
	if st := c.Stats(); st.Computes != 1 {
		t.Errorf("%d concurrent identical gets ran %d campaigns, want exactly 1", n, st.Computes)
	}
}

func TestStudyCacheCorruptEntryRecomputed(t *testing.T) {
	t.Parallel()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	cfg := tinyConfig()
	key, err := StudyKey(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// A store-valid entry whose payload is not a study: passes the
	// checksum, fails the decode, must be recomputed.
	if err := s.Put(key, []byte("not a study")); err != nil {
		t.Fatal(err)
	}
	c := NewStudyCache()
	c.SetStore(s)
	if st := c.Get(cfg, 0); st == nil || len(st.Random) != cfg.RandomSessions {
		t.Fatal("recomputed study malformed")
	}
	if st := c.Stats(); st.Computes != 1 || st.StoreErrors != 1 {
		t.Errorf("stats = %+v, want one compute and one store error", st)
	}
}

func TestStudyCachePurge(t *testing.T) {
	t.Parallel()
	s, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c := NewStudyCache()
	c.SetStore(s)
	cfg := tinyConfig()
	c.Get(cfg, 0)
	if !c.Cached(cfg) || s.Len() != 1 {
		t.Fatal("campaign not cached in both tiers")
	}
	if err := c.Purge(); err != nil {
		t.Fatal(err)
	}
	if c.Cached(cfg) || s.Len() != 0 {
		t.Error("Purge left entries behind")
	}
	c.Get(cfg, 0)
	if st := c.Stats(); st.Computes != 2 {
		t.Errorf("Computes after purge = %d, want 2", st.Computes)
	}
}

func TestStudyCacheProgressHook(t *testing.T) {
	t.Parallel()
	c := NewStudyCache()
	cfg := tinyConfig()
	var last atomic.Int64
	var calls atomic.Int64
	c.OnProgress = func(got StudyConfig, done, total int) {
		if got != cfg {
			t.Errorf("progress config mismatch")
		}
		if total != cfg.TotalSessions() {
			t.Errorf("total = %d, want %d", total, cfg.TotalSessions())
		}
		calls.Add(1)
		if done == total {
			last.Store(int64(done))
		}
	}
	c.Get(cfg, 2)
	// One announcement (done=0) plus one call per session.
	want := int64(cfg.TotalSessions()) + 1
	if calls.Load() != want {
		t.Errorf("progress called %d times, want %d", calls.Load(), want)
	}
	if last.Load() != int64(cfg.TotalSessions()) {
		t.Error("progress never reported completion")
	}
	// A memo hit must not re-fire progress.
	c.Get(cfg, 2)
	if calls.Load() != want {
		t.Error("memo hit re-ran progress callbacks")
	}
}

func TestScaleConfigErrorEnumeratesScales(t *testing.T) {
	t.Parallel()
	_, err := ScaleConfig("bogus")
	if err == nil {
		t.Fatal("unknown scale accepted")
	}
	for _, name := range ScaleNames() {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention valid scale %q", err, name)
		}
		if _, err := ScaleConfig(name); err != nil {
			t.Errorf("ScaleConfig(%q) = %v", name, err)
		}
	}
}
