package core

import (
	"slices"
	"sync"

	"repro/internal/concentrix"
	"repro/internal/fx8"
	"repro/internal/monitor"
	"repro/internal/workload"
)

// SessionArena is the reusable per-worker simulator state for one
// measurement session: a cluster, the OS over it, the analyzer
// controller and the workload generator.  Booting a session through
// an arena Reset()s those four in place instead of reallocating them,
// which removes the ~450 KB / ~1100 heap allocations a fresh boot
// costs — the allocator and GC traffic that serialized otherwise
// independent session workers and flattened RunStudy's parallel
// speedup.
//
// An arena is NOT safe for concurrent use: it is one worker's
// scratch.  Workers obtain private arenas from the process-wide pool
// (RunRandomSession and friends do this automatically) or thread one
// through engine.MapWith.  Reuse is exact by construction — a session
// run in a dirty arena is bit-identical to the same session run on
// freshly allocated state — and the reuse tests in arena_test.go pin
// that equivalence end to end.
type SessionArena struct {
	cfg fx8.Config
	cl  *fx8.Cluster
	sys *concentrix.System
	ctl *monitor.Controller
	gen *workload.Generator
}

// NewSessionArena returns an empty arena; the first Boot populates it.
func NewSessionArena() *SessionArena { return &SessionArena{} }

// comparableConfig is fx8.Config with the slice fields projected out,
// so sameHardware can compare the scalar remainder with ==.  scalars
// is a manual copy, so a field added to fx8.Config must be mirrored
// here by hand; TestComparableConfigCoversConfig fails the build of a
// PR that forgets, which is what keeps sameHardware from silently
// treating two different machines as identical.
type comparableConfig struct {
	NumCE, NumIP                                 int
	LineBytes, ICacheBytes                       int
	SharedCacheBytes, SharedModules, SharedWays  int
	LookupsPerModule, MemBuses                   int
	FillCycles, WriteBackCycles, MissExtraCycles int
	PageBytes, VectorLaneBytes, CStartCycles     int
	IPActivity, IPInvalidate                     int
}

func scalars(c fx8.Config) comparableConfig {
	return comparableConfig{
		NumCE: c.NumCE, NumIP: c.NumIP,
		LineBytes: c.LineBytes, ICacheBytes: c.ICacheBytes,
		SharedCacheBytes: c.SharedCacheBytes, SharedModules: c.SharedModules, SharedWays: c.SharedWays,
		LookupsPerModule: c.LookupsPerModule, MemBuses: c.MemBuses,
		FillCycles: c.FillCycles, WriteBackCycles: c.WriteBackCycles, MissExtraCycles: c.MissExtraCycles,
		PageBytes: c.PageBytes, VectorLaneBytes: c.VectorLaneBytes, CStartCycles: c.CStartCycles,
		IPActivity: c.IPActivity, IPInvalidate: c.IPInvalidate,
	}
}

// sameHardware reports whether two cluster configurations describe
// the same machine, ignoring the seed (which Reset replaces).
func sameHardware(a, b fx8.Config) bool {
	return scalars(a) == scalars(b) &&
		slices.Equal(a.ArbBias, b.ArbBias) &&
		slices.Equal(a.CCBDispatchExtra, b.CCBDispatchExtra)
}

// Boot prepares the arena's machine for one session: a cluster built
// from cfg (seeded by the profile), an OS configured by sysCfg, and
// the profile's job list covering span cycles.  When the arena
// already holds a machine with the same hardware configuration it is
// reset in place; otherwise a new one is allocated.  The returned
// system is the arena's — valid until the next Boot.
func (a *SessionArena) Boot(cfg fx8.Config, sysCfg concentrix.SysConfig, profile workload.Profile, span uint64) *concentrix.System {
	cfg.Seed = profile.Seed
	if a.cl == nil || !sameHardware(a.cfg, cfg) {
		// Construct before mutating the arena: fx8.New panics on an
		// invalid configuration, and a panicking Boot must leave the
		// arena coherent — its deferred release returns it to the
		// shared pool, where a half-updated cfg would make a later
		// sameHardware check reuse the wrong machine.
		cl := fx8.New(cfg)
		a.cfg = cfg
		a.cl = cl
		a.sys = concentrix.NewSystem(cl, sysCfg)
		a.ctl = monitor.NewController(a.sys)
		a.gen = workload.NewGenerator(profile)
	} else {
		a.cfg.Seed = cfg.Seed
		a.cl.Reset(cfg.Seed)
		a.sys.Reset(sysCfg)
		a.ctl.Reset(a.sys)
		a.gen.Reset(profile)
	}
	for _, p := range a.gen.Session(span) {
		a.sys.Submit(p)
	}
	return a.sys
}

// RunRandomSession performs one random-sampling session in the arena.
func (a *SessionArena) RunRandomSession(id int, spec SessionSpec) *Session {
	span := spec.WorkloadCycles
	if span == 0 {
		span = spec.span()
	}
	a.Boot(fx8.DefaultConfig(), concentrix.DefaultSysConfig(), workload.PaperMix(spec.Seed), span)
	return sampleWith(a.ctl, id, spec)
}

// RunTriggeredSession performs one triggered session in the arena.
func (a *SessionArena) RunTriggeredSession(id int, spec TriggeredSpec) *TriggeredSession {
	a.Boot(fx8.DefaultConfig(), concentrix.DefaultSysConfig(), workload.PaperMix(spec.Seed), spec.WorkloadCycles)
	return triggerWith(a.ctl, id, spec)
}

// RunCustomSession measures one random-sampling session on an
// arbitrary machine and OS configuration under the PaperMix workload
// — the parameter-sweep entry point.  The workload span follows
// spec.WorkloadCycles (or the sampling span when zero).
func (a *SessionArena) RunCustomSession(cfg fx8.Config, sysCfg concentrix.SysConfig, id int, spec SessionSpec) *Session {
	span := spec.WorkloadCycles
	if span == 0 {
		span = spec.span()
	}
	a.Boot(cfg, sysCfg, workload.PaperMix(spec.Seed), span)
	return sampleWith(a.ctl, id, spec)
}

// RunStudyUnit executes one campaign work unit in the arena.
func (a *SessionArena) RunStudyUnit(u StudyUnit) (StudyUnitResult, error) {
	switch {
	case u.Random != nil:
		return StudyUnitResult{Random: a.RunRandomSession(u.ID, *u.Random)}, nil
	case u.Triggered != nil:
		return StudyUnitResult{Triggered: a.RunTriggeredSession(u.ID, *u.Triggered)}, nil
	}
	return RunStudyUnit(u) // shared spec-less-unit error path
}

// arenaPool shares warm arenas across every session entry point in
// the process.  sync.Pool keeps per-P caches, so under a worker pool
// each goroutine effectively holds a private arena with no
// cross-worker synchronization on the session hot path.
var arenaPool = sync.Pool{New: func() any { return NewSessionArena() }}

func acquireArena() *SessionArena  { return arenaPool.Get().(*SessionArena) }
func releaseArena(a *SessionArena) { arenaPool.Put(a) }

// RunCustomSession is SessionArena.RunCustomSession on a pooled
// arena: the session runs on reused simulator state when a warm arena
// with the same hardware configuration is available, and on a fresh
// one otherwise — bit-identically either way.
func RunCustomSession(cfg fx8.Config, sysCfg concentrix.SysConfig, id int, spec SessionSpec) *Session {
	a := acquireArena()
	defer releaseArena(a)
	return a.RunCustomSession(cfg, sysCfg, id, spec)
}
