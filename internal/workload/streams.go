// Package workload synthesizes the measured machine's production
// workload: FORTRAN-style numerical jobs whose DO loops the Alliant
// compiler turned into self-scheduled concurrent loops, scalar batch
// jobs, and the arrival structure of a multi-user development machine.
//
// The paper measured a real CSRD workload that cannot be replayed;
// this package is the documented substitution (DESIGN.md section 2).
// Every property the study's analysis depends on is an explicit knob:
// the fraction of concurrent code, loop trip counts (including the
// "two leftover iterations" bias), per-iteration branch variance,
// dependence distances, the data intensity of parallel versus serial
// code, and streaming footprints that drive cache misses and page
// faults.
package workload

import (
	"slices"

	"repro/internal/fastrand"
	"repro/internal/fx8"
)

// SerialParams describes a scalar code phase: compiles, editors,
// scalar numerics — code with a modest working set and low memory
// intensity.
type SerialParams struct {
	// Instrs is the number of instructions in the phase.
	Instrs int

	// MemProb is the probability an instruction is a scalar memory
	// access; StoreProb the fraction of those that are stores.
	MemProb   float64
	StoreProb float64

	// WSBase/WSBytes is the phase's primary working set; FarProb of
	// memory accesses instead touch FarBase/FarBytes (cold data:
	// file buffers, symbol tables), generating the background miss
	// rate of serial code.
	WSBase   uint32
	WSBytes  uint32
	FarProb  float64
	FarBase  uint32
	FarBytes uint32

	// CodeBase/CodeBytes locate the phase's instruction footprint;
	// bodies below the icache size run fetch-free after warmup.
	CodeBase  uint32
	CodeBytes uint32

	// MeanCompute is the mean cycle cost of a compute instruction.
	MeanCompute int

	// Seed makes the phase deterministic.
	Seed uint64
}

// serialGen lazily generates a serial phase's instruction stream.
type serialGen struct {
	p    SerialParams
	rng  fastrand.PCG
	left int
	ipos uint32
}

// NewSerialPhase returns the instruction stream of a scalar phase.
func NewSerialPhase(p SerialParams) fx8.Stream {
	if p.WSBytes == 0 {
		p.WSBytes = 16 << 10
	}
	if p.CodeBytes == 0 {
		p.CodeBytes = 4 << 10
	}
	if p.MeanCompute < 1 {
		p.MeanCompute = 2
	}
	return &serialGen{
		p:    p,
		rng:  fastrand.New(p.Seed, 0x5e71a1),
		left: p.Instrs,
	}
}

// Next implements fx8.Stream.
func (g *serialGen) Next() (fx8.Instr, bool) {
	if g.left <= 0 {
		return fx8.Instr{}, false
	}
	g.left--
	ia := g.p.CodeBase + g.ipos
	g.ipos = (g.ipos + 4) % g.p.CodeBytes

	if g.rng.Float64() < g.p.MemProb {
		var addr uint32
		if g.p.FarBytes > 0 && g.rng.Float64() < g.p.FarProb {
			addr = g.p.FarBase + uint32(g.rng.Uint64()%uint64(g.p.FarBytes))&^7
		} else {
			addr = g.p.WSBase + uint32(g.rng.Uint64()%uint64(g.p.WSBytes))&^7
		}
		op := fx8.OpLoad
		if g.rng.Float64() < g.p.StoreProb {
			op = fx8.OpStore
		}
		return fx8.Instr{Op: op, Addr: addr, IAddr: ia}, true
	}
	n := 1 + g.rng.IntN(2*g.p.MeanCompute-1)
	return fx8.Instr{Op: fx8.OpCompute, N: int32(n), IAddr: ia}, true
}

// LoopParams describes a concurrent DO loop as the Alliant compiler
// would emit it: a trip count, a body of vector "chunks" (a blocked
// numerical kernel), optional compiler-generated synchronization for a
// loop-carried dependence, and the data regions the body touches.
type LoopParams struct {
	// Trips is the iteration count.
	Trips int

	// Dep, when positive, is the loop-carried dependence distance:
	// iteration i awaits stage i-Dep partway through its body and
	// advances stage i near the end.
	Dep int

	// ChunksMean/ChunksSpread give the per-iteration body length and
	// its variance (conditional branching that is
	// iteration-dependent, section 4.3).
	ChunksMean   int
	ChunksSpread int

	// VecLen is the vector length per memory operation, in elements
	// of 8 bytes.
	VecLen int

	// ReuseBase/ReuseBytes is the blocked, cache-resident region all
	// iterations walk — the cross-processor data locality of section
	// 5.1.  FreshBytesPerIter is the amount of new streaming data
	// each iteration pulls from FreshBase + iter*FreshBytesPerIter;
	// fresh lines are the loop's compulsory misses and its page
	// traffic.
	ReuseBase         uint32
	ReuseBytes        uint32
	FreshBase         uint32
	FreshBytesPerIter uint32

	// VComputeCycles and ScalarCycles are the per-chunk computation
	// costs between vector memory operations.
	VComputeCycles int
	ScalarCycles   int

	// CodeBase locates the body's instruction footprint.
	CodeBase uint32

	// Seed drives per-iteration variance deterministically: the
	// body of iteration i depends only on (Seed, i), never on which
	// CE runs it.
	Seed uint64
}

// NewLoop builds the fx8 loop descriptor for the parameters.  The
// descriptor provides both body forms: BodyInto appends each
// iteration into the executing CE's reusable buffer (the
// zero-allocation path the cluster prefers), and Body materializes a
// fresh stream for callers that hold iteration bodies beyond the
// iteration's execution.
func NewLoop(p LoopParams) *fx8.Loop {
	if p.VecLen <= 0 {
		p.VecLen = 32
	}
	if p.ChunksMean <= 0 {
		p.ChunksMean = 4
	}
	if p.ReuseBytes == 0 {
		p.ReuseBytes = 64 << 10
	}
	return &fx8.Loop{
		Trips:    p.Trips,
		Body:     func(iter int) fx8.Stream { return buildBody(p, iter) },
		BodyInto: func(iter int, s *fx8.SliceStream) { appendBody(p, iter, s) },
	}
}

// buildBody materializes the instruction list of one iteration as a
// fresh stream.  appendBody sizes the buffer itself once it has
// rolled the iteration's actual chunk count.
func buildBody(p LoopParams, iter int) fx8.Stream {
	s := &fx8.SliceStream{}
	appendBody(p, iter, s)
	return s
}

// appendBody appends the instruction list of iteration iter into s.
// The body is a pure function of (p, iter) — never of the buffer's
// history — so regenerating it into a reused buffer is bit-identical
// to building it fresh.
func appendBody(p LoopParams, iter int, s *fx8.SliceStream) {
	rng := fastrand.New(p.Seed, uint64(iter)+0xb0d9)
	chunks := p.ChunksMean
	if p.ChunksSpread > 0 {
		chunks += rng.IntN(2*p.ChunksSpread+1) - p.ChunksSpread
	}
	if chunks < 1 {
		chunks = 1
	}
	vecBytes := uint32(p.VecLen * 8)
	freshVecs := int(p.FreshBytesPerIter / vecBytes)

	// Synchronization placement: await at ~1/4 of the body, advance
	// at ~3/4, so distance-d loops keep up to d iterations in flight.
	awaitAt, advanceAt := chunks/4, 3*chunks/4

	// Six instructions per chunk at most, plus the two sync ops:
	// growing up front keeps the append loop reallocation-free for
	// fresh streams and for reused buffers seeing their largest body.
	s.Instrs = slices.Grow(s.Instrs, chunks*6+2)
	code := p.CodeBase
	emit := func(in fx8.Instr) {
		in.IAddr = code
		code += 4
		s.Instrs = append(s.Instrs, in)
	}

	for c := 0; c < chunks; c++ {
		if p.Dep > 0 && c == awaitAt {
			emit(fx8.Instr{Op: fx8.OpAwait, N: int32(iter - p.Dep)})
		}
		walk := (uint32(iter)*uint32(chunks) + uint32(c)) * vecBytes
		srcA := p.ReuseBase + walk%p.ReuseBytes
		dst := p.ReuseBase + (walk+p.ReuseBytes/2)%p.ReuseBytes

		emit(fx8.Instr{Op: fx8.OpVLoad, Addr: srcA, N: int32(p.VecLen)})
		if c < freshVecs {
			fresh := p.FreshBase + uint32(iter)*p.FreshBytesPerIter + uint32(c)*vecBytes
			emit(fx8.Instr{Op: fx8.OpVLoad, Addr: fresh, N: int32(p.VecLen)})
		} else {
			srcB := p.ReuseBase + (walk+p.ReuseBytes/4)%p.ReuseBytes
			emit(fx8.Instr{Op: fx8.OpVLoad, Addr: srcB, N: int32(p.VecLen)})
		}
		if p.VComputeCycles > 0 {
			emit(fx8.Instr{Op: fx8.OpVCompute, N: int32(p.VComputeCycles)})
		}
		emit(fx8.Instr{Op: fx8.OpVStore, Addr: dst, N: int32(p.VecLen)})
		if p.ScalarCycles > 0 {
			emit(fx8.Instr{Op: fx8.OpCompute, N: int32(p.ScalarCycles)})
		}
		if p.Dep > 0 && c == advanceAt {
			emit(fx8.Instr{Op: fx8.OpAdvance, N: int32(iter)})
		}
	}
}

// CStart wraps a loop into the single serial instruction that starts
// it.
func CStart(loop *fx8.Loop, iaddr uint32) fx8.Instr {
	return fx8.Instr{Op: fx8.OpCStart, Loop: loop, IAddr: iaddr}
}
