package workload

import "repro/internal/fx8"

// Named kernel builders: the concrete numerical codes the study's
// introduction cites as the machine's workload — BLAS-style vector
// kernels, blocked matrix operations, and dependence-carrying solver
// sweeps.  Each returns a concurrent loop plus the serial instructions
// around it, so examples and tests can run recognizable codes instead
// of abstract phase soups.

// KernelLayout fixes the address regions a kernel operates on.
type KernelLayout struct {
	// Base is the start of the kernel's data slot; arrays are laid
	// out inside it.
	Base uint32

	// CodeBase locates the kernel's instructions.
	CodeBase uint32

	// Seed drives per-iteration variance.
	Seed uint64
}

// vecBytes8 is the byte span of one 32-element vector of 64-bit
// elements.
const vecBytes8 = 32 * 8

// DAXPY builds y := a*x + y over n elements as the Alliant compiler
// would: a concurrent loop over 32-element strips, each iteration
// streaming one strip of x and y and storing y back.
func DAXPY(n int, l KernelLayout) *fx8.Loop {
	trips := (n + 31) / 32
	xBase := l.Base
	yBase := l.Base + uint32(n*8)
	return &fx8.Loop{
		Trips: trips,
		Body: func(iter int) fx8.Stream {
			off := uint32(iter) * vecBytes8
			code := l.CodeBase
			return &fx8.SliceStream{Instrs: []fx8.Instr{
				{Op: fx8.OpVLoad, Addr: xBase + off, N: 32, IAddr: code},
				{Op: fx8.OpVLoad, Addr: yBase + off, N: 32, IAddr: code + 4},
				{Op: fx8.OpVCompute, N: 32, IAddr: code + 8},
				{Op: fx8.OpVStore, Addr: yBase + off, N: 32, IAddr: code + 12},
			}}
		},
	}
}

// MatMulBlocked builds a blocked n x n matrix multiply (n a multiple
// of 32): the concurrent loop runs over output row blocks; each
// iteration re-walks a cache-resident block of B while streaming a row
// strip of A — the cross-processor locality pattern of section 5.1.
func MatMulBlocked(n int, l KernelLayout) *fx8.Loop {
	blocks := n / 32
	if blocks < 1 {
		blocks = 1
	}
	rowBytes := uint32(n * 8)
	aBase := l.Base
	bBase := l.Base + rowBytes*uint32(n)
	cBase := bBase + rowBytes*uint32(n)
	return &fx8.Loop{
		Trips: blocks,
		Body: func(iter int) fx8.Stream {
			s := &fx8.SliceStream{}
			code := l.CodeBase
			emit := func(in fx8.Instr) {
				in.IAddr = code
				code += 4
				s.Instrs = append(s.Instrs, in)
			}
			aRow := aBase + uint32(iter)*rowBytes
			cRow := cBase + uint32(iter)*rowBytes
			for k := 0; k < blocks; k++ {
				// Stream a strip of A, re-walk a shared block of B.
				emit(fx8.Instr{Op: fx8.OpVLoad, Addr: aRow + uint32(k)*vecBytes8, N: 32})
				emit(fx8.Instr{Op: fx8.OpVLoad, Addr: bBase + uint32(k)*vecBytes8, N: 32})
				emit(fx8.Instr{Op: fx8.OpVCompute, N: 64})
			}
			emit(fx8.Instr{Op: fx8.OpVStore, Addr: cRow, N: 32})
			return s
		},
	}
}

// SolverSweep builds a Gauss-Seidel-style sweep over n rows with a
// loop-carried dependence of the given distance: iteration i consumes
// row i-dist's result before producing its own — the compiler-
// generated DO-loop synchronization of [10] in the study's references.
func SolverSweep(n, dist int, l KernelLayout) *fx8.Loop {
	if dist < 1 {
		dist = 1
	}
	rowBytes := uint32(512)
	return &fx8.Loop{
		Trips: n,
		Body: func(iter int) fx8.Stream {
			row := l.Base + uint32(iter)*rowBytes
			prev := l.Base
			if iter >= dist {
				prev = l.Base + uint32(iter-dist)*rowBytes
			}
			code := l.CodeBase
			return &fx8.SliceStream{Instrs: []fx8.Instr{
				{Op: fx8.OpAwait, N: int32(iter - dist), IAddr: code},
				{Op: fx8.OpVLoad, Addr: prev, N: 32, IAddr: code + 4},
				{Op: fx8.OpVLoad, Addr: row, N: 32, IAddr: code + 8},
				{Op: fx8.OpVCompute, N: 48, IAddr: code + 12},
				{Op: fx8.OpVStore, Addr: row, N: 32, IAddr: code + 16},
				{Op: fx8.OpAdvance, N: int32(iter), IAddr: code + 20},
			}}
		},
	}
}

// Stencil builds a 1-D three-point stencil over n strips: independent
// iterations, each reading its strip and both neighbours — adjacent
// iterations share lines across processors.
func Stencil(n int, l KernelLayout) *fx8.Loop {
	return &fx8.Loop{
		Trips: n,
		Body: func(iter int) fx8.Stream {
			at := func(i int) uint32 {
				if i < 0 {
					i = 0
				}
				if i >= n {
					i = n - 1
				}
				return l.Base + uint32(i)*vecBytes8
			}
			code := l.CodeBase
			return &fx8.SliceStream{Instrs: []fx8.Instr{
				{Op: fx8.OpVLoad, Addr: at(iter - 1), N: 32, IAddr: code},
				{Op: fx8.OpVLoad, Addr: at(iter), N: 32, IAddr: code + 4},
				{Op: fx8.OpVLoad, Addr: at(iter + 1), N: 32, IAddr: code + 8},
				{Op: fx8.OpVCompute, N: 40, IAddr: code + 12},
				{Op: fx8.OpVStore, Addr: at(iter) + uint32(n)*vecBytes8, N: 32, IAddr: code + 16},
			}}
		},
	}
}

// KernelProgram wraps a kernel loop into a runnable serial stream:
// a short scalar prologue, the concurrent loop, and a scalar epilogue.
func KernelProgram(loop *fx8.Loop, l KernelLayout) fx8.Stream {
	return &fx8.ConcatStream{Streams: []fx8.Stream{
		NewSerialPhase(SerialParams{
			Instrs: 500, MemProb: 0.2,
			WSBase: l.Base, WSBytes: 16 << 10,
			CodeBase: l.CodeBase + 0x4000, Seed: l.Seed,
		}),
		&fx8.SliceStream{Instrs: []fx8.Instr{CStart(loop, l.CodeBase+0x5000)}},
		NewSerialPhase(SerialParams{
			Instrs: 500, MemProb: 0.2,
			WSBase: l.Base, WSBytes: 16 << 10,
			CodeBase: l.CodeBase + 0x4000, Seed: l.Seed + 1,
		}),
	}}
}
