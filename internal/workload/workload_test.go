package workload

import (
	"testing"

	"repro/internal/concentrix"
	"repro/internal/fx8"
)

func drain(s fx8.Stream) []fx8.Instr {
	var out []fx8.Instr
	for {
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}

func TestSerialPhaseLength(t *testing.T) {
	s := NewSerialPhase(SerialParams{Instrs: 500, MemProb: 0.3, Seed: 1})
	if got := len(drain(s)); got != 500 {
		t.Fatalf("instructions = %d, want 500", got)
	}
}

func TestSerialPhaseMix(t *testing.T) {
	p := SerialParams{
		Instrs: 20000, MemProb: 0.25, StoreProb: 0.4,
		WSBase: 0x10000, WSBytes: 16 << 10, Seed: 7,
	}
	instrs := drain(NewSerialPhase(p))
	mem, stores := 0, 0
	for _, in := range instrs {
		switch in.Op {
		case fx8.OpLoad:
			mem++
		case fx8.OpStore:
			mem++
			stores++
		case fx8.OpCompute:
		default:
			t.Fatalf("unexpected opcode %d in serial phase", in.Op)
		}
	}
	frac := float64(mem) / float64(len(instrs))
	if frac < 0.22 || frac > 0.28 {
		t.Errorf("memory fraction = %v, want ~0.25", frac)
	}
	sfrac := float64(stores) / float64(mem)
	if sfrac < 0.32 || sfrac > 0.48 {
		t.Errorf("store fraction = %v, want ~0.4", sfrac)
	}
}

func TestSerialPhaseAddressesInWorkingSet(t *testing.T) {
	p := SerialParams{
		Instrs: 5000, MemProb: 0.5,
		WSBase: 0x40000, WSBytes: 8 << 10,
		FarProb: 0, Seed: 3,
	}
	for _, in := range drain(NewSerialPhase(p)) {
		if in.Op == fx8.OpLoad || in.Op == fx8.OpStore {
			if in.Addr < 0x40000 || in.Addr >= 0x40000+8<<10 {
				t.Fatalf("address %#x outside working set", in.Addr)
			}
			if in.Addr%8 != 0 {
				t.Fatalf("address %#x not 8-byte aligned", in.Addr)
			}
		}
	}
}

func TestSerialPhaseDeterminism(t *testing.T) {
	p := SerialParams{Instrs: 1000, MemProb: 0.3, FarProb: 0.1,
		FarBase: 0x80000, FarBytes: 4096, Seed: 42}
	a := drain(NewSerialPhase(p))
	b := drain(NewSerialPhase(p))
	if len(a) != len(b) {
		t.Fatal("lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("instruction %d differs", i)
		}
	}
}

func TestLoopBodyDeterministicPerIteration(t *testing.T) {
	lp := LoopParams{
		Trips: 10, ChunksMean: 4, ChunksSpread: 2, VecLen: 32,
		ReuseBase: 0x100000, ReuseBytes: 64 << 10,
		FreshBase: 0x200000, FreshBytesPerIter: 512,
		VComputeCycles: 20, ScalarCycles: 8, Seed: 99,
	}
	loop := NewLoop(lp)
	for iter := 0; iter < 10; iter++ {
		a := drain(loop.Body(iter))
		b := drain(loop.Body(iter))
		if len(a) != len(b) {
			t.Fatalf("iteration %d lengths differ", iter)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("iteration %d instruction %d differs", iter, i)
			}
		}
	}
}

func TestLoopBodyVariance(t *testing.T) {
	lp := LoopParams{
		Trips: 64, ChunksMean: 4, ChunksSpread: 2, VecLen: 32,
		ReuseBase: 0x100000, ReuseBytes: 64 << 10, Seed: 5,
	}
	loop := NewLoop(lp)
	lengths := map[int]bool{}
	for iter := 0; iter < 64; iter++ {
		lengths[len(drain(loop.Body(iter)))] = true
	}
	if len(lengths) < 2 {
		t.Error("body lengths should vary across iterations (branch variance)")
	}
}

func TestLoopBodyDependenceBracketing(t *testing.T) {
	lp := LoopParams{
		Trips: 8, Dep: 4, ChunksMean: 4, VecLen: 32,
		ReuseBase: 0x100000, ReuseBytes: 64 << 10, Seed: 11,
	}
	loop := NewLoop(lp)
	for iter := 0; iter < 8; iter++ {
		instrs := drain(loop.Body(iter))
		awaits, advances := 0, 0
		awaitPos, advancePos := -1, -1
		for i, in := range instrs {
			switch in.Op {
			case fx8.OpAwait:
				awaits++
				awaitPos = i
				if got := int(in.N); got != iter-4 {
					t.Fatalf("iter %d awaits stage %d, want %d", iter, got, iter-4)
				}
			case fx8.OpAdvance:
				advances++
				advancePos = i
				if got := int(in.N); got != iter {
					t.Fatalf("iter %d advances stage %d, want %d", iter, got, iter)
				}
			}
		}
		if awaits != 1 || advances != 1 {
			t.Fatalf("iter %d has %d awaits, %d advances", iter, awaits, advances)
		}
		if awaitPos >= advancePos {
			t.Fatalf("await (%d) must precede advance (%d)", awaitPos, advancePos)
		}
	}
}

func TestLoopBodyFreshAddressesAdvance(t *testing.T) {
	lp := LoopParams{
		Trips: 4, ChunksMean: 4, VecLen: 32,
		ReuseBase: 0x100000, ReuseBytes: 64 << 10,
		FreshBase: 0x200000, FreshBytesPerIter: 512, Seed: 2,
	}
	loop := NewLoop(lp)
	seen := map[uint32]int{}
	for iter := 0; iter < 4; iter++ {
		for _, in := range drain(loop.Body(iter)) {
			if in.Op == fx8.OpVLoad && in.Addr >= 0x200000 {
				if prev, dup := seen[in.Addr]; dup {
					t.Fatalf("fresh address %#x reused by iterations %d and %d", in.Addr, prev, iter)
				}
				seen[in.Addr] = iter
			}
		}
	}
	if len(seen) == 0 {
		t.Fatal("no fresh streaming accesses generated")
	}
}

func TestGeneratorKindsAndDeterminism(t *testing.T) {
	prof := PaperMix(123)
	g1 := NewGenerator(prof)
	g2 := NewGenerator(prof)
	for i := 0; i < 20; i++ {
		k1, k2 := g1.NextKind(), g2.NextKind()
		if k1 != k2 {
			t.Fatal("generators with same seed diverge")
		}
	}
}

func TestGeneratorJobShapes(t *testing.T) {
	g := NewGenerator(PaperMix(7))
	p, est := g.Job(KindSerial)
	if p.ClusterSize != 1 {
		t.Errorf("serial job cluster size = %d, want 1", p.ClusterSize)
	}
	if est == 0 {
		t.Error("serial estimate should be positive")
	}
	p, _ = g.Job(KindNumeric)
	if p.ClusterSize != 8 {
		t.Errorf("numeric job cluster size = %d, want 8", p.ClusterSize)
	}
	p, _ = g.Job(KindSmallCluster)
	if p.ClusterSize < 2 || p.ClusterSize > 6 {
		t.Errorf("small-cluster size = %d", p.ClusterSize)
	}
}

func TestKindString(t *testing.T) {
	if KindSerial.String() != "serial" || KindNumeric.String() != "numeric" ||
		KindSmallCluster.String() != "small-cluster" {
		t.Error("kind names wrong")
	}
	if Kind(9).String() != "Kind(9)" {
		t.Error("unknown kind name wrong")
	}
}

func TestTripCountLeftoverBias(t *testing.T) {
	prof := PaperMix(99)
	prof.LeftoverTwoProb = 1.0
	prof.TinyTripProb = 0
	g := NewGenerator(prof)
	for i := 0; i < 50; i++ {
		lp := g.loopParams(0x1000000, i, true, 8)
		if lp.Trips%8 != 2 {
			t.Fatalf("trips = %d, want ≡ 2 (mod 8) with LeftoverTwoProb=1", lp.Trips)
		}
	}
}

func TestSessionArrivalsMonotone(t *testing.T) {
	g := NewGenerator(PaperMix(3))
	jobs := g.Session(5_000_000)
	if len(jobs) < 2 {
		t.Fatalf("session too small: %d jobs", len(jobs))
	}
	var prev uint64
	pids := map[int]bool{}
	for _, j := range jobs {
		if j.Arrival < prev {
			t.Fatal("arrivals must be non-decreasing")
		}
		prev = j.Arrival
		if pids[j.PID] {
			t.Fatalf("duplicate PID %d", j.PID)
		}
		pids[j.PID] = true
	}
}

func TestProcBaseSeparation(t *testing.T) {
	// Distinct nearby PIDs must land in distinct 4 MB slots.
	seen := map[uint32]int{}
	for pid := 1; pid <= 56; pid++ {
		b := procBase(pid)
		if other, ok := seen[b]; ok {
			t.Fatalf("pids %d and %d share base %#x", other, pid, b)
		}
		seen[b] = pid
	}
}

// TestSessionExecutesOnSystem runs a short generated session through
// the full OS + cluster stack and sanity-checks the emergent
// concurrency structure.
func TestSessionExecutesOnSystem(t *testing.T) {
	cfg := fx8.DefaultConfig()
	cl := fx8.New(cfg)
	sys := concentrix.NewSystem(cl, concentrix.DefaultSysConfig())

	g := NewGenerator(PaperMix(2026))
	for _, p := range g.Session(1_500_000) {
		sys.Submit(p)
	}

	cycles := 1_500_000
	counts := make([]uint64, 9)
	for i := 0; i < cycles; i++ {
		sys.Step()
		counts[cl.ActiveCount()]++
	}

	var conc, total uint64
	for n, c := range counts {
		total += c
		if n >= 2 {
			conc += c
		}
	}
	cw := float64(conc) / float64(total)
	if cw < 0.10 || cw > 0.60 {
		t.Errorf("workload concurrency = %v, want within (0.10, 0.60); counts=%v", cw, counts)
	}
	if counts[0] == 0 {
		t.Error("expected some idle time")
	}
	if counts[1] == 0 {
		t.Error("expected some serial time")
	}
	if counts[8] == 0 {
		t.Error("expected some full-concurrency time")
	}
	// Mean concurrency level should be near the top of the range.
	var wsum, csum uint64
	for n := 2; n <= 8; n++ {
		wsum += uint64(n) * counts[n]
		csum += counts[n]
	}
	if csum > 0 {
		pc := float64(wsum) / float64(csum)
		if pc < 6.0 {
			t.Errorf("mean concurrency level = %v, want > 6", pc)
		}
	}
	if sys.Kernel.PageFaults() == 0 {
		t.Error("expected page fault activity")
	}
}
