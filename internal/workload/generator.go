package workload

import (
	"fmt"
	"repro/internal/fastrand"

	"repro/internal/concentrix"
	"repro/internal/fx8"
)

// Kind classifies a generated job.
type Kind int

// Job kinds: scalar batch work (compiles, editors, serial numerics),
// vectorized numerical applications dominated by concurrent loops, and
// numerical jobs restricted to a small cluster resource class.
const (
	KindSerial Kind = iota
	KindNumeric
	KindSmallCluster
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindSerial:
		return "serial"
	case KindNumeric:
		return "numeric"
	case KindSmallCluster:
		return "small-cluster"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Profile is the tunable description of a workload mix.  PaperMix
// returns the calibration that reproduces the study's measured
// distributions.
type Profile struct {
	Seed uint64

	// Job mix weights (relative probabilities).
	WSerial, WNumeric, WSmallCluster int

	// Arrival structure: after scheduling a job the generator
	// advances time by the job's estimated service plus, with
	// IdleProb, an idle gap (uniform in [1, IdleGapMax] cycles) —
	// the machine's quiet periods.
	IdleProb   float64
	IdleGapMax int

	// Numeric job structure.
	LoopsPerJobMean   int     // concurrent loops per job
	TripsJMax         int     // trips = 8*j + leftover, j in [2, TripsJMax]
	LeftoverTwoProb   float64 // probability leftover == 2 (section 4.3)
	TinyTripProb      float64 // probability of a 3..6-trip loop
	DepProb           float64 // probability a loop carries a dependence
	DepMin, DepMax    int     // dependence distance range
	ChunksMean        int     // body chunks per iteration
	ChunksSpread      int     // +/- variance (conditional branching)
	ChunksSpreadProb  float64 // fraction of loops with branchy (variable) bodies
	VComputeCycles    int
	ScalarCycles      int
	FreshBytesPerIter uint32  // streaming (miss-generating) data per iteration
	StreamingProb     float64 // fraction of numeric jobs that are streaming (out-of-core) codes
	GapInstrsMax      int     // serial instructions between loops
	PrologueInstrs    int     // serial setup before the first loop

	// Serial job structure.
	SerialInstrsMin, SerialInstrsMax int
	SerialMemProb                    float64
	SerialFarProb                    float64

	// SmallClusterSizes are the resource classes small-cluster jobs
	// draw from.
	SmallClusterSizes []int
}

// PaperMix returns the workload calibration targeting the study's
// measured values: overall workload concurrency near 0.35, mean
// concurrency level near 7.7, a 2-dominant transition distribution,
// and the cache/bus/fault relationships of chapter 5.
func PaperMix(seed uint64) Profile {
	return Profile{
		Seed:              seed,
		WSerial:           56,
		WNumeric:          66,
		WSmallCluster:     3,
		IdleProb:          0.5,
		IdleGapMax:        420_000,
		LoopsPerJobMean:   10,
		TripsJMax:         30,
		LeftoverTwoProb:   0.5,
		TinyTripProb:      0.06,
		DepProb:           0.25,
		DepMin:            6,
		DepMax:            16,
		ChunksMean:        4,
		ChunksSpread:      1,
		ChunksSpreadProb:  0.2,
		VComputeCycles:    40,
		ScalarCycles:      16,
		FreshBytesPerIter: 1024,
		StreamingProb:     0.5,
		GapInstrsMax:      900,
		PrologueInstrs:    2500,
		SerialInstrsMin:   25_000,
		SerialInstrsMax:   150_000,
		SerialMemProb:     0.22,
		SerialFarProb:     0.015,
		SmallClusterSizes: []int{2, 3, 4, 5, 6},
	}
}

// Generator produces jobs and whole sessions from a profile,
// deterministically from the profile seed.
type Generator struct {
	prof Profile
	rng  fastrand.PCG
	pid  int
}

// NewGenerator builds a generator for the profile.
func NewGenerator(prof Profile) *Generator {
	g := &Generator{}
	g.Reset(prof)
	return g
}

// Reset rewinds the generator to the state NewGenerator(prof) would
// produce, so a session arena reuses one generator across sessions
// instead of allocating one per session.
func (g *Generator) Reset(prof Profile) {
	g.prof = prof
	g.rng = fastrand.New(prof.Seed, 0x90b)
	g.pid = 1
}

// procBase assigns each process a distinct 4 MB address slot so
// different jobs do not alias in the physically-indexed shared cache.
func procBase(pid int) uint32 {
	return uint32(pid%56)*(4<<20) + (16 << 20)
}

// Region offsets within a process slot.
const (
	offCode   = 0
	offWS     = 64 << 10
	offFar    = 512 << 10
	offReuse  = 1 << 20
	offFresh  = 2 << 20
	freshSpan = 2 << 20 // fresh regions cycle within [offFresh, offFresh+freshSpan)

	// residentWindow is the streaming span of blocked (non-streaming)
	// kernels: larger than the shared cache, so re-walks miss, but
	// small enough to stay page-resident after the prologue warms it.
	residentWindow = 192 << 10
)

// NextKind draws a job kind by the profile weights.
func (g *Generator) NextKind() Kind {
	total := g.prof.WSerial + g.prof.WNumeric + g.prof.WSmallCluster
	if total <= 0 {
		return KindNumeric
	}
	r := g.rng.IntN(total)
	if r < g.prof.WSerial {
		return KindSerial
	}
	if r < g.prof.WSerial+g.prof.WNumeric {
		return KindNumeric
	}
	return KindSmallCluster
}

// Job generates one job of the given kind.  The returned estimate is
// the generator's guess at the job's service demand in cycles, used
// for arrival spacing.
func (g *Generator) Job(kind Kind) (p *concentrix.Process, estimate uint64) {
	pid := g.pid
	g.pid++
	switch kind {
	case KindSerial:
		return g.serialJob(pid)
	case KindSmallCluster:
		size := g.prof.SmallClusterSizes[g.rng.IntN(len(g.prof.SmallClusterSizes))]
		return g.numericJob(pid, size)
	default:
		return g.numericJob(pid, 8)
	}
}

func (g *Generator) serialJob(pid int) (*concentrix.Process, uint64) {
	base := procBase(pid)
	span := g.prof.SerialInstrsMax - g.prof.SerialInstrsMin
	instrs := g.prof.SerialInstrsMin
	if span > 0 {
		instrs += g.rng.IntN(span)
	}
	stream := NewSerialPhase(SerialParams{
		Instrs:      instrs,
		MemProb:     g.prof.SerialMemProb,
		StoreProb:   0.3,
		WSBase:      base + offWS,
		WSBytes:     24 << 10,
		FarProb:     g.prof.SerialFarProb,
		FarBase:     base + offFar,
		FarBytes:    256 << 10,
		CodeBase:    base + offCode,
		CodeBytes:   6 << 10,
		MeanCompute: 2,
		Seed:        g.rng.Uint64(),
	})
	est := uint64(instrs) * 3
	return &concentrix.Process{
		PID:         pid,
		Name:        fmt.Sprintf("serial-%d", pid),
		ClusterSize: 1,
		Serial:      stream,
	}, est
}

// numericJob builds a vectorized numerical application: a serial
// prologue, then a chain of concurrent loops separated by short serial
// sections (data redistribution, scalar reductions).
func (g *Generator) numericJob(pid, clusterSize int) (*concentrix.Process, uint64) {
	base := procBase(pid)
	// The streaming decision is a property of the application: heavy
	// out-of-core codes both stream more data and run longer loop
	// chains, which is what couples high workload concurrency with
	// high data intensity in the measured machine's samples.
	streaming := g.rng.Float64() < g.prof.StreamingProb
	loopSpan := 3 * g.prof.LoopsPerJobMean / 2
	if streaming {
		loopSpan = 3 * g.prof.LoopsPerJobMean
	}
	if clusterSize < 8 {
		// Small-cluster runs are brief subset experiments, not
		// production chains.
		loopSpan = g.prof.LoopsPerJobMean / 2
		if loopSpan < 2 {
			loopSpan = 2
		}
	}
	loops := 1 + g.rng.IntN(loopSpan)
	streams := make([]fx8.Stream, 0, 2*loops+2)

	if !streaming || clusterSize < 8 {
		// Blocked codes read their input during setup, so the loop
		// phases run without page faults (their misses are cache
		// capacity misses over the warmed window).  One load per
		// page of the residentWindow.
		warm := &fx8.SliceStream{}
		for off := uint32(0); off < residentWindow; off += 4096 {
			warm.Instrs = append(warm.Instrs, fx8.Instr{
				Op: fx8.OpLoad, Addr: base + offFresh + off,
				IAddr: base + offCode + 0x1000 + off%4096,
			})
		}
		streams = append(streams, warm)
	}

	streams = append(streams, NewSerialPhase(SerialParams{
		Instrs:      g.prof.PrologueInstrs,
		MemProb:     g.prof.SerialMemProb,
		StoreProb:   0.4,
		WSBase:      base + offWS,
		WSBytes:     24 << 10,
		FarProb:     g.prof.SerialFarProb,
		FarBase:     base + offFar,
		FarBytes:    256 << 10,
		CodeBase:    base + offCode,
		CodeBytes:   6 << 10,
		MeanCompute: 2,
		Seed:        g.rng.Uint64(),
	}))
	var est uint64 = uint64(g.prof.PrologueInstrs) * 3

	bodyCycles := g.estBodyCycles()
	for l := 0; l < loops; l++ {
		lp := g.loopParams(base, l, streaming, clusterSize)
		cstart := CStart(NewLoop(lp), base+offCode+0x2000)
		streams = append(streams, &fx8.SliceStream{Instrs: []fx8.Instr{cstart}})
		workers := clusterSize
		if lp.Trips < workers {
			workers = lp.Trips
		}
		if workers < 1 {
			workers = 1
		}
		est += uint64(lp.Trips) * bodyCycles / uint64(workers)

		gapMax := g.prof.GapInstrsMax
		if !streaming {
			// Blocked kernels alternate with scalar reductions and
			// data rearrangement; streaming sweeps run back to back.
			gapMax *= 6
		}
		gap := 1 + g.rng.IntN(gapMax)
		streams = append(streams, NewSerialPhase(SerialParams{
			Instrs:      gap,
			MemProb:     g.prof.SerialMemProb,
			StoreProb:   0.4,
			WSBase:      base + offWS,
			WSBytes:     24 << 10,
			CodeBase:    base + offCode,
			CodeBytes:   6 << 10,
			MeanCompute: 2,
			Seed:        g.rng.Uint64(),
		}))
		est += uint64(gap) * 3
	}

	name := "numeric"
	if clusterSize < 8 {
		name = "small-cluster"
	}
	return &concentrix.Process{
		PID:         pid,
		Name:        fmt.Sprintf("%s-%d", name, pid),
		ClusterSize: clusterSize,
		Serial:      &fx8.ConcatStream{Streams: streams},
	}, est
}

// loopParams draws one concurrent loop for a numeric job.  A job
// restricted to a small cluster still processes the full problem, so
// its per-iteration data intensity scales up as the CE count scales
// down — which keeps per-bus miss density roughly independent of the
// concurrency level, the section 5.1 locality observation.
func (g *Generator) loopParams(base uint32, loopIdx int, streaming bool, clusterSize int) LoopParams {
	var trips int
	if g.rng.Float64() < g.prof.TinyTripProb {
		trips = 3 + g.rng.IntN(4)
	} else {
		j := 4 + g.rng.IntN(g.prof.TripsJMax-3)
		leftover := g.rng.IntN(8)
		if g.rng.Float64() < g.prof.LeftoverTwoProb {
			leftover = 2
		}
		trips = 8*j + leftover
	}
	dep := 0
	if g.rng.Float64() < g.prof.DepProb {
		dep = g.prof.DepMin + g.rng.IntN(g.prof.DepMax-g.prof.DepMin+1)
	}
	fresh := g.prof.FreshBytesPerIter
	if !streaming {
		// A blocked, mostly cache-resident kernel: a thin uniform
		// streaming component (same per iteration, so round
		// synchronization survives) instead of the full stream.
		fresh = 384
	}
	if clusterSize >= 1 && clusterSize < 8 {
		fresh = fresh * 8 / uint32(clusterSize)
	}
	// Fresh regions cycle within the process's streaming window.
	// Full-width streaming codes sweep the whole 2 MB window and
	// fault continuously; blocked (resident) kernels and small-
	// cluster runs cycle a window that exceeds the shared cache but
	// fits the resident set, so they keep missing in cache without
	// steady-state fault traffic — and without the fault-induced
	// iteration jitter that would break round synchronization.
	window := uint32(freshSpan)
	if !streaming || clusterSize < 8 {
		window = residentWindow
	}
	maxFresh := uint32(trips+1) * fresh
	freshOff := uint32(loopIdx) * maxFresh
	if window > maxFresh {
		freshOff %= window - maxFresh
	} else {
		freshOff = 0
	}
	spread := 0
	if g.rng.Float64() < g.prof.ChunksSpreadProb {
		spread = g.prof.ChunksSpread
	}
	return LoopParams{
		Trips:             trips,
		Dep:               dep,
		ChunksMean:        g.prof.ChunksMean,
		ChunksSpread:      spread,
		VecLen:            32,
		ReuseBase:         base + offReuse,
		ReuseBytes:        64 << 10,
		FreshBase:         base + offFresh + freshOff,
		FreshBytesPerIter: fresh,
		VComputeCycles:    g.prof.VComputeCycles,
		ScalarCycles:      g.prof.ScalarCycles,
		CodeBase:          base + offCode + 0x3000,
		Seed:              g.rng.Uint64(),
	}
}

// estBodyCycles estimates one iteration's cycle cost for arrival
// spacing.
func (g *Generator) estBodyCycles() uint64 {
	perChunk := 3*32 + g.prof.VComputeCycles + g.prof.ScalarCycles + 40
	return uint64(g.prof.ChunksMean*perChunk) + 80
}

// Session generates the job list of one measurement session: jobs with
// arrival times covering sessionCycles of machine time, spaced by
// their estimated service demand and idle gaps.
func (g *Generator) Session(sessionCycles uint64) []*concentrix.Process {
	var jobs []*concentrix.Process
	var t uint64
	for t < sessionCycles {
		p, est := g.Job(g.NextKind())
		p.Arrival = t
		jobs = append(jobs, p)
		t += est
		if g.rng.Float64() < g.prof.IdleProb {
			t += 1 + uint64(g.rng.IntN(g.prof.IdleGapMax))
		}
	}
	return jobs
}
