package workload

import (
	"testing"

	"repro/internal/fx8"
)

var testLayout = KernelLayout{Base: 0x800000, CodeBase: 0x10000, Seed: 1}

func runKernel(t *testing.T, loop *fx8.Loop, size, limit int) *fx8.Cluster {
	t.Helper()
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	cl := fx8.New(cfg)
	if err := cl.Run(KernelProgram(loop, testLayout), size); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < limit && !cl.Idle(); i++ {
		cl.Step()
	}
	if !cl.Idle() {
		t.Fatalf("kernel did not complete within %d cycles", limit)
	}
	return cl
}

func TestDAXPYStructure(t *testing.T) {
	loop := DAXPY(128, testLayout)
	if loop.Trips != 4 {
		t.Fatalf("trips = %d, want 4", loop.Trips)
	}
	instrs := drain(loop.Body(0))
	if len(instrs) != 4 {
		t.Fatalf("body length = %d", len(instrs))
	}
	// x load, y load, compute, y store; the store targets the y
	// region.
	if instrs[0].Op != fx8.OpVLoad || instrs[3].Op != fx8.OpVStore {
		t.Error("body shape wrong")
	}
	if instrs[3].Addr != instrs[1].Addr {
		t.Error("store should write back to y")
	}
}

func TestDAXPYRoundsUp(t *testing.T) {
	if got := DAXPY(33, testLayout).Trips; got != 2 {
		t.Errorf("trips = %d, want 2 (ceil)", got)
	}
}

func TestDAXPYRuns(t *testing.T) {
	cl := runKernel(t, DAXPY(1024, testLayout), 8, 1_000_000)
	if cl.CCBus().IterationsRun != 32 {
		t.Errorf("iterations = %d, want 32", cl.CCBus().IterationsRun)
	}
}

func TestMatMulBlockedRuns(t *testing.T) {
	cl := runKernel(t, MatMulBlocked(128, testLayout), 8, 2_000_000)
	if cl.CCBus().IterationsRun != 4 {
		t.Errorf("iterations = %d, want 4 row blocks", cl.CCBus().IterationsRun)
	}
	if cl.Cache().Hits == 0 {
		t.Error("blocked matmul should hit on the shared B block")
	}
}

func TestMatMulMinimumOneBlock(t *testing.T) {
	if got := MatMulBlocked(8, testLayout).Trips; got != 1 {
		t.Errorf("tiny matmul trips = %d, want 1", got)
	}
}

func TestSolverSweepDependence(t *testing.T) {
	loop := SolverSweep(16, 4, testLayout)
	instrs := drain(loop.Body(10))
	if instrs[0].Op != fx8.OpAwait || int(instrs[0].N) != 6 {
		t.Errorf("iteration 10 should await stage 6: %+v", instrs[0])
	}
	last := instrs[len(instrs)-1]
	if last.Op != fx8.OpAdvance || int(last.N) != 10 {
		t.Errorf("iteration should advance its own stage: %+v", last)
	}
}

func TestSolverSweepDistanceClamp(t *testing.T) {
	loop := SolverSweep(4, 0, testLayout)
	instrs := drain(loop.Body(1))
	if int(instrs[0].N) != 0 {
		t.Error("distance should clamp to 1")
	}
}

func TestSolverSweepRuns(t *testing.T) {
	cl := runKernel(t, SolverSweep(32, 4, testLayout), 8, 2_000_000)
	if cl.CCBus().IterationsRun != 32 {
		t.Errorf("iterations = %d", cl.CCBus().IterationsRun)
	}
	var await uint64
	for i := 0; i < 8; i++ {
		await += cl.CE(i).AwaitCycles
	}
	if await == 0 {
		t.Error("solver sweep should accumulate dependence waiting")
	}
}

func TestStencilNeighbours(t *testing.T) {
	loop := Stencil(8, testLayout)
	instrs := drain(loop.Body(3))
	// Loads at strips 2, 3, 4.
	want := []uint32{
		testLayout.Base + 2*vecBytes8,
		testLayout.Base + 3*vecBytes8,
		testLayout.Base + 4*vecBytes8,
	}
	for i, w := range want {
		if instrs[i].Addr != w {
			t.Errorf("load %d addr = %#x, want %#x", i, instrs[i].Addr, w)
		}
	}
	// Boundary clamping.
	edge := drain(loop.Body(0))
	if edge[0].Addr != testLayout.Base {
		t.Error("left boundary should clamp")
	}
	edge = drain(loop.Body(7))
	if edge[2].Addr != testLayout.Base+7*vecBytes8 {
		t.Error("right boundary should clamp")
	}
}

func TestStencilRuns(t *testing.T) {
	cl := runKernel(t, Stencil(64, testLayout), 8, 2_000_000)
	if cl.CCBus().IterationsRun != 64 {
		t.Errorf("iterations = %d", cl.CCBus().IterationsRun)
	}
}

func TestKernelProgramHasSerialPhases(t *testing.T) {
	prog := KernelProgram(DAXPY(64, testLayout), testLayout)
	sawCStart := false
	n := 0
	for {
		in, ok := prog.Next()
		if !ok {
			break
		}
		n++
		if in.Op == fx8.OpCStart {
			sawCStart = true
		}
	}
	if !sawCStart {
		t.Error("program should contain the concurrent start")
	}
	if n < 1000 {
		t.Errorf("program too short: %d instructions", n)
	}
}
