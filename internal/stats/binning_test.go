package stats

import (
	"math/rand/v2"
	"testing"
)

func TestMedianBinBasic(t *testing.T) {
	xs := []float64{0.0, 0.04, 0.1, 0.11, 0.52}
	ys := []float64{1, 3, 10, 20, 7}
	pts := MedianBin(xs, ys, 0, 1, 0.1)
	// Clusters: midpoint 0.0 gets {1,3} (0.04 rounds to 0.0);
	// midpoint 0.1 gets {10,20}; midpoint 0.5 gets {7}.
	if len(pts) != 3 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].X != 0 || !approx(pts[0].Y, 2, 1e-12) || pts[0].N != 2 {
		t.Errorf("pts[0] = %+v", pts[0])
	}
	if !approx(pts[1].X, 0.1, 1e-12) || !approx(pts[1].Y, 15, 1e-12) {
		t.Errorf("pts[1] = %+v", pts[1])
	}
	if !approx(pts[2].X, 0.5, 1e-12) || pts[2].Y != 7 || pts[2].N != 1 {
		t.Errorf("pts[2] = %+v", pts[2])
	}
}

func TestMedianBinDegenerate(t *testing.T) {
	if pts := MedianBin([]float64{1}, []float64{1, 2}, 0, 1, 0.1); pts != nil {
		t.Error("mismatched lengths should return nil")
	}
	if pts := MedianBin([]float64{1}, []float64{1}, 0, 1, 0); pts != nil {
		t.Error("zero step should return nil")
	}
}

func TestMedianBinClamps(t *testing.T) {
	pts := MedianBin([]float64{-3, 12}, []float64{5, 9}, 0, 1, 0.5)
	if len(pts) != 2 {
		t.Fatalf("points = %+v", pts)
	}
	if pts[0].X != 0 || pts[0].Y != 5 {
		t.Errorf("low clamp = %+v", pts[0])
	}
	if pts[1].X != 1 || pts[1].Y != 9 {
		t.Errorf("high clamp = %+v", pts[1])
	}
}

func TestFitMedianModelRecoversTrend(t *testing.T) {
	// Scatter with heavy noise but a quadratic median trend: the
	// median-binning procedure should recover the trend.
	rng := rand.New(rand.NewPCG(11, 4))
	var xs, ys []float64
	for i := 0; i < 3000; i++ {
		x := rng.Float64()
		base := 0.002 + 0.02*x*x
		noise := rng.Float64() * 0.004 // asymmetric noise; median robust
		xs = append(xs, x)
		ys = append(ys, base+noise)
	}
	m, pts, err := FitMedianModel(xs, ys, 0, 1, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 11 {
		t.Fatalf("expected 11 median points, got %d", len(pts))
	}
	if m.Eval(1.0) < 2*m.Eval(0.2) {
		t.Errorf("model did not recover rising trend: %v vs %v", m.Eval(1.0), m.Eval(0.2))
	}
	if m.R2 < 0.8 {
		t.Errorf("R2 = %v", m.R2)
	}
}

func TestFitMedianModelTooFewBins(t *testing.T) {
	_, _, err := FitMedianModel([]float64{0.5, 0.5}, []float64{1, 2}, 0, 1, 1)
	if err == nil {
		t.Error("expected error when fewer than 3 median points exist")
	}
}

func TestBandStats(t *testing.T) {
	xs := []float64{0.1, 0.3, 0.5, 0.7, 0.9}
	ys := []float64{1, 2, 3, 4, 5}
	// Bands: x <= 0.4, 0.4 < x <= 0.8, x > 0.8 — the Figure 10 cuts.
	bands := BandStats(xs, ys, []float64{0.4, 0.8})
	if len(bands) != 3 {
		t.Fatalf("bands = %d", len(bands))
	}
	if bands[0].N != 2 || !approx(bands[0].Median, 1.5, 1e-12) {
		t.Errorf("band 0 = %+v", bands[0])
	}
	if bands[1].N != 2 || !approx(bands[1].Median, 3.5, 1e-12) {
		t.Errorf("band 1 = %+v", bands[1])
	}
	if bands[2].N != 1 || bands[2].Median != 5 {
		t.Errorf("band 2 = %+v", bands[2])
	}
}

func TestBandStatsBoundaryInclusive(t *testing.T) {
	// x exactly at a cut belongs to the lower band (<=).
	bands := BandStats([]float64{0.4}, []float64{7}, []float64{0.4, 0.8})
	if bands[0].N != 1 || bands[1].N != 0 {
		t.Errorf("cut boundary should be inclusive on the left band: %+v", bands)
	}
}

func TestBandValuesPartitionProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(5, 6))
	for trial := 0; trial < 100; trial++ {
		n := rng.IntN(200)
		xs := make([]float64, n)
		ys := make([]float64, n)
		for i := range xs {
			xs[i] = rng.Float64() * 10
			ys[i] = rng.Float64()
		}
		cuts := []float64{2.5, 5, 7.5}
		bands := BandValues(xs, ys, cuts)
		total := 0
		for _, b := range bands {
			total += len(b)
		}
		if total != n {
			t.Fatalf("bands do not partition: %d != %d", total, n)
		}
	}
}
