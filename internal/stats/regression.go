package stats

import (
	"errors"
	"math"
)

// ErrSingular is returned when the normal equations of a least-squares
// fit are singular (for example, all abscissae identical).
var ErrSingular = errors.New("stats: singular normal equations")

// QuadModel is a second-order linear model of the form used in the
// study (equations 5.1 and 5.2):
//
//	y = B1*x + B2*x^2 + C
//
// R2 is the coefficient of determination of the fit against the data
// it was fitted to.
type QuadModel struct {
	B1, B2, C float64
	R2        float64
}

// Eval evaluates the model at x.
func (m QuadModel) Eval(x float64) float64 {
	return m.B1*x + m.B2*x*x + m.C
}

// FitQuad fits y = B1*x + B2*x^2 + C to the paired observations by
// ordinary least squares, minimizing equation 5.3 of the study.  It
// requires at least three points and a nonsingular design.
func FitQuad(xs, ys []float64) (QuadModel, error) {
	if len(xs) != len(ys) {
		return QuadModel{}, errors.New("stats: mismatched lengths")
	}
	if len(xs) < 3 {
		return QuadModel{}, errors.New("stats: need at least 3 points for a quadratic fit")
	}
	// Normal equations for the design matrix [x x^2 1].
	var s1, sx, sx2, sx3, sx4 float64
	var sy, sxy, sx2y float64
	for i := range xs {
		x, y := xs[i], ys[i]
		x2 := x * x
		s1++
		sx += x
		sx2 += x2
		sx3 += x2 * x
		sx4 += x2 * x2
		sy += y
		sxy += x * y
		sx2y += x2 * y
	}
	a := [3][4]float64{
		{sx2, sx3, sx, sxy},
		{sx3, sx4, sx2, sx2y},
		{sx, sx2, s1, sy},
	}
	sol, err := solve3(a)
	if err != nil {
		return QuadModel{}, err
	}
	m := QuadModel{B1: sol[0], B2: sol[1], C: sol[2]}
	m.R2 = RSquared(xs, ys, m.Eval)
	return m, nil
}

// FitLinear fits y = B1*x + C by ordinary least squares and returns it
// as a QuadModel with B2 = 0, for ablation comparisons against the
// second-order models.
func FitLinear(xs, ys []float64) (QuadModel, error) {
	if len(xs) != len(ys) || len(xs) < 2 {
		return QuadModel{}, errors.New("stats: need at least 2 paired points")
	}
	var s1, sx, sx2, sy, sxy float64
	for i := range xs {
		s1++
		sx += xs[i]
		sx2 += xs[i] * xs[i]
		sy += ys[i]
		sxy += xs[i] * ys[i]
	}
	det := s1*sx2 - sx*sx
	if math.Abs(det) < 1e-12*math.Max(1, math.Abs(s1*sx2)) {
		return QuadModel{}, ErrSingular
	}
	b1 := (s1*sxy - sx*sy) / det
	c := (sy - b1*sx) / s1
	m := QuadModel{B1: b1, C: c}
	m.R2 = RSquared(xs, ys, m.Eval)
	return m, nil
}

// RSquared returns the coefficient of determination of the predictor f
// over the paired observations: 1 - SSres/SStot.  A constant response
// yields 1 when predicted exactly and 0 otherwise.
func RSquared(xs, ys []float64, f func(float64) float64) float64 {
	if len(xs) != len(ys) || len(ys) == 0 {
		return 0
	}
	my := Mean(ys)
	var ssRes, ssTot float64
	for i := range ys {
		r := ys[i] - f(xs[i])
		ssRes += r * r
		d := ys[i] - my
		ssTot += d * d
	}
	if ssTot == 0 {
		if ssRes == 0 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// solve3 solves a 3x3 linear system given as an augmented matrix,
// using Gaussian elimination with partial pivoting.
func solve3(a [3][4]float64) ([3]float64, error) {
	var x [3]float64
	for col := 0; col < 3; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < 3; r++ {
			if math.Abs(a[r][col]) > math.Abs(a[piv][col]) {
				piv = r
			}
		}
		if math.Abs(a[piv][col]) < 1e-12 {
			return x, ErrSingular
		}
		a[col], a[piv] = a[piv], a[col]
		// Eliminate below.
		for r := col + 1; r < 3; r++ {
			f := a[r][col] / a[col][col]
			for c := col; c < 4; c++ {
				a[r][c] -= f * a[col][c]
			}
		}
	}
	// Back-substitute.
	for row := 2; row >= 0; row-- {
		v := a[row][3]
		for c := row + 1; c < 3; c++ {
			v -= a[row][c] * x[c]
		}
		x[row] = v / a[row][row]
	}
	return x, nil
}

// RelationshipLabel categorizes an R-squared value using the scale the
// study cites from Mendenhall & Sincich: 0 no relationship, 0.25
// moderately weak, 0.5 moderate, 0.75 moderately strong, 1.0 perfect.
func RelationshipLabel(r2 float64) string {
	switch {
	case r2 < 0.125:
		return "no relationship"
	case r2 < 0.375:
		return "moderately weak"
	case r2 < 0.625:
		return "moderate"
	case r2 < 0.875:
		return "moderately strong"
	default:
		return "perfect"
	}
}
