package stats

import "math"

// MedianPoint is one (midpoint, median of system measure) coordinate
// produced by the study's model-building procedure.
type MedianPoint struct {
	X float64 // concurrency-measure midpoint
	Y float64 // median of the system measure in the cluster
	N int     // observations clustered at the midpoint
}

// MedianBin implements the procedure of section 5.2: each (x, y)
// observation is clustered to its nearest midpoint on the regular grid
// {lo, lo+step, ..., hi}, and the median of y is taken within each
// nonempty cluster.  The resulting coordinate pairs are the input to
// the second-order regressions of Tables 3 and 4.
func MedianBin(xs, ys []float64, lo, hi, step float64) []MedianPoint {
	if len(xs) != len(ys) || step <= 0 || hi < lo {
		return nil
	}
	n := int(math.Round((hi-lo)/step)) + 1
	groups := make([][]float64, n)
	for i := range xs {
		k := int(math.Round((xs[i] - lo) / step))
		if k < 0 {
			k = 0
		}
		if k >= n {
			k = n - 1
		}
		groups[k] = append(groups[k], ys[i])
	}
	var pts []MedianPoint
	for k, g := range groups {
		if len(g) == 0 {
			continue
		}
		pts = append(pts, MedianPoint{
			X: lo + float64(k)*step,
			Y: Median(g),
			N: len(g),
		})
	}
	return pts
}

// FitMedianModel runs the full section 5.2 procedure: median-bin the
// scatter onto the midpoint grid and fit the second-order model to the
// median points.  The returned model's R2 is computed against the
// median points, matching the study's reported fit quality.
func FitMedianModel(xs, ys []float64, lo, hi, step float64) (QuadModel, []MedianPoint, error) {
	pts := MedianBin(xs, ys, lo, hi, step)
	px := make([]float64, len(pts))
	py := make([]float64, len(pts))
	for i, p := range pts {
		px[i] = p.X
		py[i] = p.Y
	}
	m, err := FitQuad(px, py)
	if err != nil {
		return QuadModel{}, pts, err
	}
	return m, pts, nil
}

// BandStats splits the paired observations into bands of x defined by
// the cut points (band i is cuts[i-1] < x <= cuts[i], with implicit
// -inf and +inf bounds) and summarizes y within each band.  This is
// the banding used in Figures 10, 11, B.3, B.4, B.7 and B.8.
func BandStats(xs, ys []float64, cuts []float64) []Summary {
	bands := make([][]float64, len(cuts)+1)
	for i := range xs {
		k := 0
		for k < len(cuts) && xs[i] > cuts[k] {
			k++
		}
		bands[k] = append(bands[k], ys[i])
	}
	out := make([]Summary, len(bands))
	for i, b := range bands {
		s, err := Summarize(b)
		if err == nil {
			out[i] = s
		}
	}
	return out
}

// BandValues splits the paired observations into bands of x as in
// BandStats but returns the raw y vectors, for distribution charts.
func BandValues(xs, ys []float64, cuts []float64) [][]float64 {
	bands := make([][]float64, len(cuts)+1)
	for i := range xs {
		k := 0
		for k < len(cuts) && xs[i] > cuts[k] {
			k++
		}
		bands[k] = append(bands[k], ys[i])
	}
	return bands
}
