package stats

import "math"

// Bin is one midpoint bin of a SAS-style frequency chart.
type Bin struct {
	Midpoint   float64
	Freq       int
	CumFreq    int
	Percent    float64
	CumPercent float64
}

// Histogram is a midpoint-binned frequency distribution in the style
// of SAS PROC CHART, as used throughout the study's figures: each
// observation is assigned to the nearest midpoint on a regular grid.
type Histogram struct {
	Bins []Bin
	N    int
}

// NewHistogram bins each observation to the nearest midpoint of the
// regular grid {lo, lo+step, ..., hi}.  Observations outside the grid
// clamp to the first or last midpoint, matching the presentation of
// the study's charts.  step must be positive and hi >= lo.
func NewHistogram(xs []float64, lo, hi, step float64) Histogram {
	if step <= 0 || hi < lo {
		return Histogram{}
	}
	n := int(math.Round((hi-lo)/step)) + 1
	bins := make([]Bin, n)
	for i := range bins {
		bins[i].Midpoint = lo + float64(i)*step
	}
	for _, x := range xs {
		i := int(math.Round((x - lo) / step))
		if i < 0 {
			i = 0
		}
		if i >= n {
			i = n - 1
		}
		bins[i].Freq++
	}
	total := len(xs)
	cum := 0
	for i := range bins {
		cum += bins[i].Freq
		bins[i].CumFreq = cum
		if total > 0 {
			bins[i].Percent = 100 * float64(bins[i].Freq) / float64(total)
			bins[i].CumPercent = 100 * float64(cum) / float64(total)
		}
	}
	return Histogram{Bins: bins, N: total}
}

// IntHistogram builds a histogram over integer categories 0..max from
// per-category counts, for charts such as "number of records with N
// processors active".
func IntHistogram(counts []int) Histogram {
	bins := make([]Bin, len(counts))
	total := 0
	for _, c := range counts {
		total += c
	}
	cum := 0
	for i, c := range counts {
		cum += c
		bins[i] = Bin{Midpoint: float64(i), Freq: c, CumFreq: cum}
		if total > 0 {
			bins[i].Percent = 100 * float64(c) / float64(total)
			bins[i].CumPercent = 100 * float64(cum) / float64(total)
		}
	}
	return Histogram{Bins: bins, N: total}
}

// MaxFreq returns the largest bin frequency, or 0 for an empty
// histogram.
func (h Histogram) MaxFreq() int {
	m := 0
	for _, b := range h.Bins {
		if b.Freq > m {
			m = b.Freq
		}
	}
	return m
}

// Mode returns the midpoint of the bin with the largest frequency.
func (h Histogram) Mode() float64 {
	best, bestF := 0.0, -1
	for _, b := range h.Bins {
		if b.Freq > bestF {
			best, bestF = b.Midpoint, b.Freq
		}
	}
	return best
}

// FreqAt returns the frequency of the bin whose midpoint is closest
// to x, or 0 when the histogram is empty.
func (h Histogram) FreqAt(x float64) int {
	if len(h.Bins) == 0 {
		return 0
	}
	best, bestD := 0, math.Inf(1)
	for i, b := range h.Bins {
		d := math.Abs(b.Midpoint - x)
		if d < bestD {
			best, bestD = i, d
		}
	}
	return h.Bins[best].Freq
}
