// Package stats provides the statistical procedures used by the study:
// SAS-style midpoint histograms, summary statistics, second-order
// linear regression with R-squared, and the median-binning procedure
// used to build the chapter 5 models.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by procedures that require at least one
// observation.
var ErrEmpty = errors.New("stats: no observations")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median of xs, or 0 for an empty slice.  The input
// is not modified.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics, or 0 for an empty slice.
// The input is not modified.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := make([]float64, len(xs))
	copy(s, xs)
	sort.Float64s(s)
	if q <= 0 {
		return s[0]
	}
	if q >= 1 {
		return s[len(s)-1]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Variance returns the sample variance (n-1 denominator) of xs, or 0
// when fewer than two observations are given.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// MinMax returns the smallest and largest values in xs.  It returns
// ErrEmpty when xs is empty.
func MinMax(xs []float64) (min, max float64, err error) {
	if len(xs) == 0 {
		return 0, 0, ErrEmpty
	}
	min, max = xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max, nil
}

// Summary holds the basic descriptive statistics of a data vector.
type Summary struct {
	N      int
	Mean   float64
	Median float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes descriptive statistics for xs.  It returns
// ErrEmpty when xs is empty.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	min, max, _ := MinMax(xs)
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		Median: Median(xs),
		StdDev: StdDev(xs),
		Min:    min,
		Max:    max,
	}, nil
}

// Correlation returns the Pearson correlation coefficient of the
// paired observations (xs[i], ys[i]).  It returns 0 when the inputs
// are degenerate (fewer than two points or zero variance).
func Correlation(xs, ys []float64) float64 {
	n := len(xs)
	if n != len(ys) || n < 2 {
		return 0
	}
	mx, my := Mean(xs), Mean(ys)
	var sxy, sxx, syy float64
	for i := range xs {
		dx, dy := xs[i]-mx, ys[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}
