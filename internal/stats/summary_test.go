package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMean(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{5}, 5},
		{[]float64{1, 2, 3, 4}, 2.5},
		{[]float64{-1, 1}, 0},
	}
	for _, c := range cases {
		if got := Mean(c.in); !approx(got, c.want, 1e-12) {
			t.Errorf("Mean(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedian(t *testing.T) {
	cases := []struct {
		in   []float64
		want float64
	}{
		{nil, 0},
		{[]float64{3}, 3},
		{[]float64{1, 3}, 2},
		{[]float64{9, 1, 5}, 5},
		{[]float64{4, 1, 3, 2}, 2.5},
	}
	for _, c := range cases {
		if got := Median(c.in); !approx(got, c.want, 1e-12) {
			t.Errorf("Median(%v) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestMedianDoesNotMutate(t *testing.T) {
	in := []float64{3, 1, 2}
	Median(in)
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated its input: %v", in)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{0, 1, 2, 3, 4}
	cases := []struct{ q, want float64 }{
		{0, 0}, {1, 4}, {0.5, 2}, {0.25, 1}, {0.125, 0.5},
		{-1, 0}, {2, 4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !approx(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance of this classic set is 32/7.
	if got := Variance(xs); !approx(got, 32.0/7.0, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !approx(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("StdDev = %v", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Error("Variance of singleton should be 0")
	}
}

func TestMinMax(t *testing.T) {
	if _, _, err := MinMax(nil); err != ErrEmpty {
		t.Errorf("MinMax(nil) err = %v, want ErrEmpty", err)
	}
	min, max, err := MinMax([]float64{3, -2, 7, 0})
	if err != nil || min != -2 || max != 7 {
		t.Errorf("MinMax = (%v, %v, %v)", min, max, err)
	}
}

func TestSummarize(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Error("Summarize(nil) should return ErrEmpty")
	}
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 || s.Mean != 2 || s.Median != 2 || s.Min != 1 || s.Max != 3 {
		t.Errorf("Summarize = %+v", s)
	}
}

func TestCorrelation(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	ys := []float64{2, 4, 6, 8, 10}
	if got := Correlation(xs, ys); !approx(got, 1, 1e-12) {
		t.Errorf("perfect positive correlation = %v", got)
	}
	neg := []float64{10, 8, 6, 4, 2}
	if got := Correlation(xs, neg); !approx(got, -1, 1e-12) {
		t.Errorf("perfect negative correlation = %v", got)
	}
	flat := []float64{3, 3, 3, 3, 3}
	if got := Correlation(xs, flat); got != 0 {
		t.Errorf("zero-variance correlation = %v, want 0", got)
	}
	if got := Correlation(xs, xs[:2]); got != 0 {
		t.Errorf("mismatched length correlation = %v, want 0", got)
	}
}

func TestQuantileMonotoneProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 1))
	f := func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 2))
		n := 1 + r.IntN(50)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.NormFloat64() * 10
		}
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := Quantile(xs, q)
			if v < prev-1e-9 {
				return false
			}
			prev = v
		}
		return true
	}
	for i := 0; i < 50; i++ {
		if !f(rng.Uint64()) {
			t.Fatal("quantiles not monotone in q")
		}
	}
}

func TestMeanBoundsProperty(t *testing.T) {
	// Property: min <= mean <= max and min <= median <= max.
	f := func(raw []float64) bool {
		xs := raw
		for i, v := range xs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				v = 0
			}
			// Keep magnitudes small enough that the sum cannot
			// overflow; the property under test is order, not range.
			xs[i] = math.Mod(v, 1e6)
		}
		if len(xs) == 0 {
			return true
		}
		min, max, _ := MinMax(xs)
		m := Mean(xs)
		md := Median(xs)
		return m >= min-1e-9*math.Abs(min)-1e-9 && m <= max+1e-9*math.Abs(max)+1e-9 &&
			md >= min && md <= max
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
