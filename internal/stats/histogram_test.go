package stats

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewHistogramBasic(t *testing.T) {
	xs := []float64{0.0, 0.12, 0.13, 0.26, 0.49, 1.0}
	h := NewHistogram(xs, 0, 1, 0.125)
	if len(h.Bins) != 9 {
		t.Fatalf("bins = %d, want 9", len(h.Bins))
	}
	if h.N != len(xs) {
		t.Fatalf("N = %d, want %d", h.N, len(xs))
	}
	// 0.0 -> bin 0; 0.12, 0.13 -> bin 1 (0.125); 0.26 -> bin 2 (0.25);
	// 0.49 -> bin 4 (0.5); 1.0 -> bin 8.
	wantFreq := []int{1, 2, 1, 0, 1, 0, 0, 0, 1}
	for i, w := range wantFreq {
		if h.Bins[i].Freq != w {
			t.Errorf("bin %d freq = %d, want %d", i, h.Bins[i].Freq, w)
		}
	}
	if h.Bins[8].CumFreq != 6 || !approx(h.Bins[8].CumPercent, 100, 1e-9) {
		t.Errorf("final cum = %+v", h.Bins[8])
	}
}

func TestNewHistogramClamping(t *testing.T) {
	h := NewHistogram([]float64{-5, 99}, 0, 1, 0.5)
	if h.Bins[0].Freq != 1 || h.Bins[len(h.Bins)-1].Freq != 1 {
		t.Errorf("out-of-range values should clamp: %+v", h.Bins)
	}
}

func TestNewHistogramDegenerate(t *testing.T) {
	if h := NewHistogram([]float64{1}, 0, 1, 0); len(h.Bins) != 0 {
		t.Error("zero step should give empty histogram")
	}
	if h := NewHistogram([]float64{1}, 1, 0, 0.5); len(h.Bins) != 0 {
		t.Error("hi < lo should give empty histogram")
	}
}

func TestIntHistogram(t *testing.T) {
	h := IntHistogram([]int{10, 0, 5})
	if h.N != 15 {
		t.Fatalf("N = %d, want 15", h.N)
	}
	if h.Bins[0].Midpoint != 0 || h.Bins[2].Midpoint != 2 {
		t.Error("midpoints should be category indices")
	}
	if !approx(h.Bins[0].Percent, 100.0*10/15, 1e-9) {
		t.Errorf("percent = %v", h.Bins[0].Percent)
	}
	if h.Bins[2].CumFreq != 15 {
		t.Errorf("cum freq = %d", h.Bins[2].CumFreq)
	}
}

func TestIntHistogramEmpty(t *testing.T) {
	h := IntHistogram([]int{0, 0})
	if h.N != 0 {
		t.Fatal("empty histogram should have N=0")
	}
	for _, b := range h.Bins {
		if b.Percent != 0 || b.CumPercent != 0 {
			t.Errorf("empty histogram percents should be 0: %+v", b)
		}
	}
}

func TestMaxFreqAndMode(t *testing.T) {
	h := IntHistogram([]int{3, 9, 1})
	if h.MaxFreq() != 9 {
		t.Errorf("MaxFreq = %d", h.MaxFreq())
	}
	if h.Mode() != 1 {
		t.Errorf("Mode = %v", h.Mode())
	}
	var empty Histogram
	if empty.MaxFreq() != 0 {
		t.Error("empty MaxFreq should be 0")
	}
}

func TestFreqAt(t *testing.T) {
	h := NewHistogram([]float64{0.5, 0.5, 0.51}, 0, 1, 0.25)
	if got := h.FreqAt(0.5); got != 3 {
		t.Errorf("FreqAt(0.5) = %d, want 3", got)
	}
	if got := h.FreqAt(0.0); got != 0 {
		t.Errorf("FreqAt(0.0) = %d, want 0", got)
	}
	var empty Histogram
	if empty.FreqAt(1) != 0 {
		t.Error("empty FreqAt should be 0")
	}
}

func TestHistogramConservationProperty(t *testing.T) {
	// Property: bin frequencies always sum to the observation count,
	// and cumulative percent ends at 100 for nonempty input.
	f := func(seed uint64, n uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 0))
		xs := make([]float64, int(n))
		for i := range xs {
			xs[i] = rng.Float64()*2 - 0.5 // includes out-of-grid values
		}
		h := NewHistogram(xs, 0, 1, 0.1)
		sum := 0
		for _, b := range h.Bins {
			sum += b.Freq
		}
		if sum != len(xs) || h.N != len(xs) {
			return false
		}
		if len(xs) > 0 {
			last := h.Bins[len(h.Bins)-1]
			if !approx(last.CumPercent, 100, 1e-9) || last.CumFreq != len(xs) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCumFreqMonotoneProperty(t *testing.T) {
	f := func(counts []uint8) bool {
		cs := make([]int, len(counts))
		for i, c := range counts {
			cs[i] = int(c)
		}
		h := IntHistogram(cs)
		prev := 0
		for _, b := range h.Bins {
			if b.CumFreq < prev {
				return false
			}
			prev = b.CumFreq
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
