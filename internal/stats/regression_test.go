package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestFitQuadExact(t *testing.T) {
	// y = 2x + 3x^2 + 1, noiseless: the fit must recover the
	// coefficients and report R2 = 1.
	var xs, ys []float64
	for x := 0.0; x <= 2.0; x += 0.25 {
		xs = append(xs, x)
		ys = append(ys, 2*x+3*x*x+1)
	}
	m, err := FitQuad(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.B1, 2, 1e-8) || !approx(m.B2, 3, 1e-8) || !approx(m.C, 1, 1e-8) {
		t.Errorf("coefficients = %+v", m)
	}
	if !approx(m.R2, 1, 1e-9) {
		t.Errorf("R2 = %v, want 1", m.R2)
	}
}

func TestFitQuadNoisy(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	var xs, ys []float64
	for i := 0; i < 200; i++ {
		x := rng.Float64() * 4
		xs = append(xs, x)
		ys = append(ys, -1.5*x+0.5*x*x+2+rng.NormFloat64()*0.05)
	}
	m, err := FitQuad(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.B1, -1.5, 0.1) || !approx(m.B2, 0.5, 0.05) || !approx(m.C, 2, 0.1) {
		t.Errorf("coefficients = %+v", m)
	}
	if m.R2 < 0.95 {
		t.Errorf("R2 = %v, want > 0.95", m.R2)
	}
}

func TestFitQuadErrors(t *testing.T) {
	if _, err := FitQuad([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("mismatched lengths should error")
	}
	if _, err := FitQuad([]float64{1, 2}, []float64{1, 2}); err == nil {
		t.Error("too few points should error")
	}
	// All x identical: singular design.
	if _, err := FitQuad([]float64{1, 1, 1, 1}, []float64{1, 2, 3, 4}); err == nil {
		t.Error("constant x should be singular")
	}
}

func TestFitLinearExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	m, err := FitLinear(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(m.B1, 2, 1e-10) || !approx(m.C, 1, 1e-10) || m.B2 != 0 {
		t.Errorf("model = %+v", m)
	}
	if !approx(m.R2, 1, 1e-12) {
		t.Errorf("R2 = %v", m.R2)
	}
}

func TestFitLinearSingular(t *testing.T) {
	if _, err := FitLinear([]float64{2, 2, 2}, []float64{1, 2, 3}); err == nil {
		t.Error("constant x should be singular")
	}
	if _, err := FitLinear([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
}

func TestRSquared(t *testing.T) {
	xs := []float64{1, 2, 3}
	ys := []float64{2, 4, 6}
	if got := RSquared(xs, ys, func(x float64) float64 { return 2 * x }); !approx(got, 1, 1e-12) {
		t.Errorf("perfect predictor R2 = %v", got)
	}
	// Predicting the mean gives R2 = 0.
	if got := RSquared(xs, ys, func(float64) float64 { return 4 }); !approx(got, 0, 1e-12) {
		t.Errorf("mean predictor R2 = %v", got)
	}
	// Constant data predicted exactly: R2 = 1 by convention.
	flat := []float64{5, 5, 5}
	if got := RSquared(xs, flat, func(float64) float64 { return 5 }); got != 1 {
		t.Errorf("exact constant R2 = %v", got)
	}
	if got := RSquared(xs, flat, func(float64) float64 { return 6 }); got != 0 {
		t.Errorf("wrong constant R2 = %v", got)
	}
	if got := RSquared(xs, ys[:2], func(x float64) float64 { return x }); got != 0 {
		t.Errorf("mismatched length R2 = %v", got)
	}
}

func TestQuadModelEval(t *testing.T) {
	m := QuadModel{B1: 1, B2: 2, C: 3}
	if got := m.Eval(2); got != 1*2+2*4+3 {
		t.Errorf("Eval(2) = %v", got)
	}
}

func TestSolve3Property(t *testing.T) {
	// Property: for random well-conditioned systems, solve3 recovers a
	// known solution.
	rng := rand.New(rand.NewPCG(9, 9))
	for trial := 0; trial < 200; trial++ {
		var want [3]float64
		for i := range want {
			want[i] = rng.NormFloat64() * 5
		}
		var a [3][4]float64
		for r := 0; r < 3; r++ {
			for c := 0; c < 3; c++ {
				a[r][c] = rng.NormFloat64()
			}
		}
		// Make it diagonally dominant so it is well conditioned.
		for r := 0; r < 3; r++ {
			a[r][r] += 5
		}
		for r := 0; r < 3; r++ {
			a[r][3] = a[r][0]*want[0] + a[r][1]*want[1] + a[r][2]*want[2]
		}
		got, err := solve3(a)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("trial %d: got %v, want %v", trial, got, want)
			}
		}
	}
}

func TestRelationshipLabel(t *testing.T) {
	cases := []struct {
		r2   float64
		want string
	}{
		{0, "no relationship"},
		{0.07, "no relationship"},
		{0.25, "moderately weak"},
		{0.5, "moderate"},
		{0.74, "moderately strong"},
		{0.89, "perfect"},
		{1, "perfect"},
	}
	for _, c := range cases {
		if got := RelationshipLabel(c.r2); got != c.want {
			t.Errorf("RelationshipLabel(%v) = %q, want %q", c.r2, got, c.want)
		}
	}
}

func TestFitQuadMatchesPaperShape(t *testing.T) {
	// A sanity check mirroring the paper's Missrate-vs-Cw model: fit
	// over median points rising from ~0.004 at 0 to ~0.024 at 1.0 and
	// confirm the model predicts a >3x increase from Cw=0.5 to Cw=1.0.
	xs := []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	ys := []float64{0.004, 0.004, 0.005, 0.005, 0.006, 0.007, 0.009, 0.012, 0.015, 0.019, 0.024}
	m, err := FitQuad(xs, ys)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := m.Eval(0.5), m.Eval(1.0)
	if hi/lo < 2.5 {
		t.Errorf("model ratio Eval(1.0)/Eval(0.5) = %v, want > 2.5", hi/lo)
	}
	if m.R2 < 0.9 {
		t.Errorf("R2 = %v", m.R2)
	}
}
