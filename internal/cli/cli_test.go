package cli

import (
	"errors"
	"flag"
	"io"
	"testing"
)

func TestParseTagsErrors(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	fs.Int("n", 0, "")

	if err := Parse(fs, []string{"-n", "3"}); err != nil {
		t.Fatalf("good args: %v", err)
	}

	err := Parse(fs, []string{"-bogus"})
	var pe ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("bad flag should return ParseError, got %T", err)
	}

	err = Parse(fs, []string{"-h"})
	if !errors.Is(err, flag.ErrHelp) {
		t.Fatalf("-h should unwrap to flag.ErrHelp, got %v", err)
	}
}
