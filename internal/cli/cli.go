// Package cli adapts the cmd tools' testable run(args, stdout)
// functions to process exit semantics: -h/-help exits 0 after the
// flag package prints usage, flag-parse errors exit 2 without being
// printed a second time, and every other error is logged once and
// exits 1.
package cli

import (
	"errors"
	"flag"
	"io"
	"log"
	"os"
)

// ParseError marks a flag-parse failure that the flag package has
// already reported to the FlagSet's output.
type ParseError struct{ Err error }

func (e ParseError) Error() string { return e.Err.Error() }
func (e ParseError) Unwrap() error { return e.Err }

// Parse runs fs.Parse and tags any failure as a ParseError so Main
// knows not to print it again.
func Parse(fs *flag.FlagSet, args []string) error {
	if err := fs.Parse(args); err != nil {
		return ParseError{err}
	}
	return nil
}

// Main invokes run with the process arguments and stdout and exits
// accordingly.
func Main(run func(args []string, stdout io.Writer) error) {
	log.SetFlags(0)
	err := run(os.Args[1:], os.Stdout)
	var pe ParseError
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
	case errors.As(err, &pe):
		os.Exit(2)
	default:
		log.Fatal(err)
	}
}
