package fxasm

import (
	"strings"
	"testing"

	"repro/internal/fx8"
)

const sample = `
# A DAXPY-style program.
compute 10
load 0x100

body strip
  vload  0x2000, 32, @*256
  vload  0x4000, 32, @*256
  vcompute 32
  vstore 0x4000, 32, @*256
end

cstart trips=8 body=strip
compute 5
`

func TestAssembleBasic(t *testing.T) {
	p, err := AssembleString(sample)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Serial) != 4 {
		t.Fatalf("serial instructions = %d, want 4", len(p.Serial))
	}
	if p.Serial[0].Op != fx8.OpCompute || p.Serial[0].N != 10 {
		t.Errorf("instr 0 = %+v", p.Serial[0])
	}
	if p.Serial[1].Op != fx8.OpLoad || p.Serial[1].Addr != 0x100 {
		t.Errorf("instr 1 = %+v", p.Serial[1])
	}
	cs := p.Serial[2]
	if cs.Op != fx8.OpCStart || cs.Loop == nil || cs.Loop.Trips != 8 {
		t.Fatalf("cstart = %+v", cs)
	}
}

func TestAssembledIterationStrides(t *testing.T) {
	p, err := AssembleString(sample)
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Serial[2].Loop
	body0 := drainStream(loop.Body(0))
	body3 := drainStream(loop.Body(3))
	if body0[0].Addr != 0x2000 {
		t.Errorf("iter 0 addr = %#x", body0[0].Addr)
	}
	if body3[0].Addr != 0x2000+3*256 {
		t.Errorf("iter 3 addr = %#x, want %#x", body3[0].Addr, 0x2000+3*256)
	}
	if body3[3].Op != fx8.OpVStore || body3[3].Addr != 0x4000+3*256 {
		t.Errorf("store addr = %+v", body3[3])
	}
}

func TestAssembleDependence(t *testing.T) {
	src := `
body chain
  await @-2
  compute 4
  advance @
end
cstart trips=6 body=chain
`
	p, err := AssembleString(src)
	if err != nil {
		t.Fatal(err)
	}
	loop := p.Serial[0].Loop
	b4 := drainStream(loop.Body(4))
	if b4[0].Op != fx8.OpAwait || b4[0].N != 2 {
		t.Errorf("await = %+v, want stage 2", b4[0])
	}
	if b4[2].Op != fx8.OpAdvance || b4[2].N != 4 {
		t.Errorf("advance = %+v, want stage 4", b4[2])
	}
}

func TestAssembledProgramRuns(t *testing.T) {
	p, err := AssembleString(sample)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fx8.DefaultConfig()
	cfg.NumIP = 0
	cl := fx8.New(cfg)
	if err := cl.Run(p.Stream(), 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100000 && !cl.Idle(); i++ {
		cl.Step()
	}
	if !cl.Idle() {
		t.Fatal("assembled program did not complete")
	}
	if cl.CCBus().IterationsRun != 8 {
		t.Errorf("iterations = %d", cl.CCBus().IterationsRun)
	}
}

func TestProgramStreamIsFresh(t *testing.T) {
	p, err := AssembleString("compute 1\ncompute 2\n")
	if err != nil {
		t.Fatal(err)
	}
	s1 := p.Stream()
	s1.Next()
	s1.Next()
	s2 := p.Stream()
	if in, ok := s2.Next(); !ok || in.N != 1 {
		t.Error("second stream should start from the beginning")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":    "frobnicate 1",
		"nested body":         "body a\nbody b\nend\nend",
		"end outside":         "end",
		"unterminated":        "body a\ncompute 1",
		"dup body":            "body a\nend\nbody a\nend",
		"unknown cstart body": "cstart trips=1 body=missing",
		"cstart in body":      "body a\ncstart trips=1 body=a\nend",
		"bad trips":           "body a\nend\ncstart trips=x body=a",
		"missing body arg":    "cstart trips=3",
		"bad cstart arg":      "cstart trips=1 frob=2 body=a",
		"malformed cstart":    "cstart trips",
		"compute no operand":  "compute",
		"bad number":          "load zzz",
		"iter outside body":   "await @",
		"bad stride":          "body a\nvload 0x0, 8, 9\nend",
		"bad scalar stride":   "body a\nload 0x0, 9\nend",
	}
	for name, src := range cases {
		if _, err := AssembleString(src); err == nil {
			t.Errorf("%s: expected error for %q", name, src)
		}
	}
}

// TestAssembleRejectsOutOfRangeImmediates pins the parse-time width
// bound: immediates that do not fit the int32/uint32 instruction
// fields are named assembly errors, not silent wraps.  The assembler
// previously parsed into int64 and narrowed at the assignment, so
// e.g. `compute 4294967297` assembled as `compute 1`.
func TestAssembleRejectsOutOfRangeImmediates(t *testing.T) {
	cases := map[string]string{
		"compute count past int32":  "compute 3000000000",
		"compute count wraps to 1":  "compute 4294967297",
		"vcompute count past int32": "vcompute 2147483648",
		"load addr past uint32":     "load 0x100000000",
		"negative load addr":        "load -1",
		"store addr past uint32":    "store 4294967296",
		"scalar stride past uint32": "body a\nload 0x0, @*4294967296\nend",
		"vload addr past uint32":    "vload 0x100000000, 4",
		"vload count past int32":    "vload 0x0, 3000000000",
		"vector stride past uint32": "body a\nvload 0x0, 4, @*4294967296\nend",
		"await count past int32":    "await 3000000000",
		"await offset past int32":   "body a\nawait @+3000000000\nend",
		"advance count past int32":  "advance 2147483648",
	}
	for name, src := range cases {
		if _, err := AssembleString(src); err == nil {
			t.Errorf("%s: expected out-of-range error for %q", name, src)
		}
	}
	// The boundary values still assemble.
	for _, src := range []string{"compute 2147483647", "load 4294967295", "await -2147483648"} {
		if _, err := AssembleString(src); err != nil {
			t.Errorf("boundary %q: unexpected error %v", src, err)
		}
	}
}

func TestAssembleCommentsAndBlanks(t *testing.T) {
	p, err := AssembleString("# only a comment\n\n  \ncompute 3 # trailing\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Serial) != 1 || p.Serial[0].N != 3 {
		t.Errorf("serial = %+v", p.Serial)
	}
}

func TestDisassembleRoundTrip(t *testing.T) {
	src := "compute 10\nload 0x100\nvload 0x2000, 32\nstore 0x8\nvstore 0x3000, 16\nawait 2\nadvance 3\nvcompute 7\n"
	p, err := AssembleString(src)
	if err != nil {
		t.Fatal(err)
	}
	out := Disassemble(p.Serial)
	p2, err := AssembleString(out)
	if err != nil {
		t.Fatalf("disassembly does not reassemble: %v\n%s", err, out)
	}
	if len(p2.Serial) != len(p.Serial) {
		t.Fatalf("round trip length: %d vs %d", len(p2.Serial), len(p.Serial))
	}
	for i := range p.Serial {
		if p.Serial[i] != p2.Serial[i] {
			t.Errorf("instr %d differs: %+v vs %+v", i, p.Serial[i], p2.Serial[i])
		}
	}
}

func TestDisassembleCStart(t *testing.T) {
	instrs := []fx8.Instr{{Op: fx8.OpCStart, Loop: &fx8.Loop{Trips: 5}}}
	out := Disassemble(instrs)
	if !strings.Contains(out, "cstart trips=5") {
		t.Errorf("disassembly = %q", out)
	}
}

func TestDisassembleUnknown(t *testing.T) {
	out := Disassemble([]fx8.Instr{{Op: fx8.Op(99)}})
	if !strings.Contains(out, "?op99") {
		t.Errorf("disassembly = %q", out)
	}
}

func drainStream(s fx8.Stream) []fx8.Instr {
	var out []fx8.Instr
	for {
		in, ok := s.Next()
		if !ok {
			return out
		}
		out = append(out, in)
	}
}
