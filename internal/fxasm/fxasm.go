// Package fxasm assembles and disassembles fx8 instruction streams in
// a small textual format, so tests, examples and tools can write
// programs for the simulated machine legibly:
//
//	compute 12
//	load    0x1000
//	vload   0x2000, 32
//	cstart  trips=10 dep=2 body=body1
//	await   -1
//	advance 0
//
// Loop bodies are named blocks defined with "body NAME" ... "end";
// cstart references them.  Iteration-dependent operands use the
// placeholder "@" for the iteration number in await/advance stages:
// "await @-2" awaits stage iter-2, "advance @" publishes stage iter.
package fxasm

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"repro/internal/fx8"
)

// Program is an assembled program: the serial instruction list and
// its named loop bodies.
type Program struct {
	Serial []fx8.Instr
	Bodies map[string][]bodyInstr
}

// bodyInstr is one body instruction with optional iteration-relative
// stage operands.
type bodyInstr struct {
	in       fx8.Instr
	iterRel  bool // N = iter + iterOff at body build time
	iterOff  int32
	addrIter bool // Addr += iter * addrStride
	stride   uint32
}

// Stream returns a fresh serial stream of the program.
func (p *Program) Stream() fx8.Stream {
	return &fx8.SliceStream{Instrs: append([]fx8.Instr(nil), p.Serial...)}
}

// Assemble parses the textual form.
func Assemble(r io.Reader) (*Program, error) {
	p := &Program{Bodies: map[string][]bodyInstr{}}
	sc := bufio.NewScanner(r)
	var curBody string
	line := 0
	// cstart fixups: instruction index -> body name + trips/dep.
	type fixup struct {
		idx   int
		body  string
		trips int
		dep   int
	}
	var fixups []fixup

	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if i := strings.IndexByte(text, '#'); i >= 0 {
			text = strings.TrimSpace(text[:i])
		}
		if text == "" {
			continue
		}
		fields := strings.FieldsFunc(text, func(r rune) bool {
			return r == ' ' || r == '\t' || r == ','
		})
		op := strings.ToLower(fields[0])
		args := fields[1:]

		switch op {
		case "body":
			if curBody != "" {
				return nil, fmt.Errorf("line %d: nested body", line)
			}
			if len(args) != 1 {
				return nil, fmt.Errorf("line %d: body needs a name", line)
			}
			curBody = args[0]
			if _, dup := p.Bodies[curBody]; dup {
				return nil, fmt.Errorf("line %d: duplicate body %q", line, curBody)
			}
			p.Bodies[curBody] = nil
			continue
		case "end":
			if curBody == "" {
				return nil, fmt.Errorf("line %d: end outside body", line)
			}
			curBody = ""
			continue
		case "cstart":
			if curBody != "" {
				return nil, fmt.Errorf("line %d: cstart inside body", line)
			}
			f := fixup{idx: len(p.Serial)}
			for _, a := range args {
				k, v, ok := strings.Cut(a, "=")
				if !ok {
					return nil, fmt.Errorf("line %d: cstart arg %q", line, a)
				}
				switch k {
				case "trips":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("line %d: trips: %v", line, err)
					}
					f.trips = n
				case "dep":
					n, err := strconv.Atoi(v)
					if err != nil {
						return nil, fmt.Errorf("line %d: dep: %v", line, err)
					}
					f.dep = n
				case "body":
					f.body = v
				default:
					return nil, fmt.Errorf("line %d: unknown cstart arg %q", line, k)
				}
			}
			if f.body == "" {
				return nil, fmt.Errorf("line %d: cstart needs body=", line)
			}
			fixups = append(fixups, f)
			p.Serial = append(p.Serial, fx8.Instr{Op: fx8.OpCStart})
			continue
		}

		bi, err := parseInstr(op, args, line)
		if err != nil {
			return nil, err
		}
		if curBody != "" {
			p.Bodies[curBody] = append(p.Bodies[curBody], bi)
		} else {
			if bi.iterRel || bi.addrIter {
				return nil, fmt.Errorf("line %d: iteration-relative operand outside body", line)
			}
			p.Serial = append(p.Serial, bi.in)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if curBody != "" {
		return nil, fmt.Errorf("unterminated body %q", curBody)
	}
	for _, f := range fixups {
		body, ok := p.Bodies[f.body]
		if !ok {
			return nil, fmt.Errorf("cstart references unknown body %q", f.body)
		}
		p.Serial[f.idx].Loop = buildLoop(f.trips, body)
	}
	return p, nil
}

// AssembleString is Assemble over a string.
func AssembleString(s string) (*Program, error) {
	return Assemble(strings.NewReader(s))
}

func buildLoop(trips int, body []bodyInstr) *fx8.Loop {
	return &fx8.Loop{
		Trips: trips,
		Body: func(iter int) fx8.Stream {
			instrs := make([]fx8.Instr, len(body))
			for i, bi := range body {
				in := bi.in
				if bi.iterRel {
					in.N = int32(iter) + bi.iterOff
				}
				if bi.addrIter {
					in.Addr += uint32(iter) * bi.stride
				}
				instrs[i] = in
			}
			return &fx8.SliceStream{Instrs: instrs}
		},
	}
}

// parseInstr parses one non-structural instruction.
func parseInstr(op string, args []string, line int) (bodyInstr, error) {
	var bi bodyInstr
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("line %d: %s needs %d operand(s)", line, op, n)
		}
		return nil
	}
	// num parses a signed 32-bit operand; numAddr an address or
	// stride.  Both bound the value at parse time (bitSize 32), so an
	// out-of-range immediate is a named assembly error instead of a
	// silent wrap through the int32/uint32 instruction fields — the
	// truncation bug class fxlint forbids.
	num := func(s string) (int32, error) {
		v, err := strconv.ParseInt(s, 0, 32)
		if err != nil {
			return 0, err
		}
		return int32(v), nil //fxlint:allow truncation — ParseInt bitSize 32 bounds v
	}
	numAddr := func(s string) (uint32, error) {
		v, err := strconv.ParseUint(s, 0, 32)
		if err != nil {
			return 0, err
		}
		return uint32(v), nil //fxlint:allow truncation — ParseUint bitSize 32 bounds v
	}
	switch op {
	case "compute", "vcompute":
		if err := need(1); err != nil {
			return bi, err
		}
		n, err := num(args[0])
		if err != nil {
			return bi, fmt.Errorf("line %d: %v", line, err)
		}
		bi.in.Op = fx8.OpCompute
		if op == "vcompute" {
			bi.in.Op = fx8.OpVCompute
		}
		bi.in.N = n
	case "load", "store":
		if len(args) < 1 || len(args) > 2 {
			return bi, fmt.Errorf("line %d: %s needs addr [, @*stride]", line, op)
		}
		a, err := numAddr(args[0])
		if err != nil {
			return bi, fmt.Errorf("line %d: %v", line, err)
		}
		bi.in.Op = fx8.OpLoad
		if op == "store" {
			bi.in.Op = fx8.OpStore
		}
		bi.in.Addr = a
		if len(args) == 2 {
			stride, ok := strings.CutPrefix(args[1], "@*")
			if !ok {
				return bi, fmt.Errorf("line %d: second operand must be @*stride", line)
			}
			sv, err := numAddr(stride)
			if err != nil {
				return bi, fmt.Errorf("line %d: %v", line, err)
			}
			bi.addrIter = true
			bi.stride = sv
		}
	case "vload", "vstore":
		if len(args) < 2 || len(args) > 3 {
			return bi, fmt.Errorf("line %d: %s needs addr, n [, @*stride]", line, op)
		}
		a, err := numAddr(args[0])
		if err != nil {
			return bi, fmt.Errorf("line %d: %v", line, err)
		}
		n, err := num(args[1])
		if err != nil {
			return bi, fmt.Errorf("line %d: %v", line, err)
		}
		bi.in.Op = fx8.OpVLoad
		if op == "vstore" {
			bi.in.Op = fx8.OpVStore
		}
		bi.in.Addr = a
		bi.in.N = n
		if len(args) == 3 {
			stride, ok := strings.CutPrefix(args[2], "@*")
			if !ok {
				return bi, fmt.Errorf("line %d: third operand must be @*stride", line)
			}
			sv, err := numAddr(stride)
			if err != nil {
				return bi, fmt.Errorf("line %d: %v", line, err)
			}
			bi.addrIter = true
			bi.stride = sv
		}
	case "await", "advance":
		if err := need(1); err != nil {
			return bi, err
		}
		bi.in.Op = fx8.OpAwait
		if op == "advance" {
			bi.in.Op = fx8.OpAdvance
		}
		arg := args[0]
		if rest, ok := strings.CutPrefix(arg, "@"); ok {
			bi.iterRel = true
			if rest == "" {
				bi.iterOff = 0
			} else {
				off, err := num(rest)
				if err != nil {
					return bi, fmt.Errorf("line %d: %v", line, err)
				}
				bi.iterOff = off
			}
		} else {
			n, err := num(arg)
			if err != nil {
				return bi, fmt.Errorf("line %d: %v", line, err)
			}
			bi.in.N = n
		}
	default:
		return bi, fmt.Errorf("line %d: unknown mnemonic %q", line, op)
	}
	return bi, nil
}

// Disassemble renders an instruction list in the assembler's format.
func Disassemble(instrs []fx8.Instr) string {
	var b strings.Builder
	for _, in := range instrs {
		switch in.Op {
		case fx8.OpCompute:
			fmt.Fprintf(&b, "compute %d\n", in.N)
		case fx8.OpVCompute:
			fmt.Fprintf(&b, "vcompute %d\n", in.N)
		case fx8.OpLoad:
			fmt.Fprintf(&b, "load 0x%x\n", in.Addr)
		case fx8.OpStore:
			fmt.Fprintf(&b, "store 0x%x\n", in.Addr)
		case fx8.OpVLoad:
			fmt.Fprintf(&b, "vload 0x%x, %d\n", in.Addr, in.N)
		case fx8.OpVStore:
			fmt.Fprintf(&b, "vstore 0x%x, %d\n", in.Addr, in.N)
		case fx8.OpAwait:
			fmt.Fprintf(&b, "await %d\n", in.N)
		case fx8.OpAdvance:
			fmt.Fprintf(&b, "advance %d\n", in.N)
		case fx8.OpCStart:
			trips := 0
			if in.Loop != nil {
				trips = in.Loop.Trips
			}
			fmt.Fprintf(&b, "cstart trips=%d body=?\n", trips)
		default:
			fmt.Fprintf(&b, "?op%d\n", in.Op)
		}
	}
	return b.String()
}
