package fx8

import "repro/internal/trace"

// MemSystem models the two 64-bit data buses between the caches and
// four-way-interleaved main memory.  Transactions on a bus are served
// first-come first-served; each occupies the bus for a fixed number of
// cycles.  The per-cycle bus opcode is the wire the study's monitor
// probed.
type MemSystem struct {
	buses []busQueue

	// Statistics.
	Transactions uint64
	BusyCycles   uint64
}

type busQueue struct {
	// segs[head:] is the FIFO of live occupancy segments; the prefix
	// below head is expired and its space is reused in place, so
	// steady-state operation allocates nothing.
	segs []busSeg
	head int
}

// prune drops segments that ended at or before cycle.  OpAt queries
// are non-decreasing and Enqueue is never called with an earlier now,
// so a dropped segment can never be observed again.
func (q *busQueue) prune(cycle uint64) {
	for q.head < len(q.segs) && q.segs[q.head].end <= cycle {
		q.head++
	}
	if q.head == len(q.segs) {
		q.segs = q.segs[:0]
		q.head = 0
	}
}

type busSeg struct {
	op    trace.MemOp
	start uint64
	end   uint64 // exclusive
}

// NewMemSystem builds a memory system with n buses.
func NewMemSystem(n int) *MemSystem {
	return &MemSystem{buses: make([]busQueue, n)}
}

// NumBuses returns the number of memory buses.
func (m *MemSystem) NumBuses() int { return len(m.buses) }

// Reset drops every queued transaction and zeroes the statistics,
// reusing the per-bus segment arrays.
func (m *MemSystem) Reset() {
	for i := range m.buses {
		m.buses[i].segs = m.buses[i].segs[:0]
		m.buses[i].head = 0
	}
	m.Transactions = 0
	m.BusyCycles = 0
}

// Enqueue schedules a transaction of the given opcode and duration on
// the bus, beginning no earlier than now and no earlier than the end
// of the bus's last queued transaction.  It returns the cycle at which
// the transaction completes (exclusive).
func (m *MemSystem) Enqueue(bus int, op trace.MemOp, dur int, now uint64) uint64 {
	q := &m.buses[bus]
	// Pruning here (not just in OpAt) keeps the queue bounded by the
	// number of in-flight transactions even when no monitor ever calls
	// OpAt.
	q.prune(now)
	start := now
	if n := len(q.segs); n > q.head && q.segs[n-1].end > start {
		start = q.segs[n-1].end
	}
	end := start + uint64(dur)
	if q.head > 0 && len(q.segs) == cap(q.segs) {
		// Compact so append reuses the expired prefix instead of
		// growing the backing array.
		n := copy(q.segs, q.segs[q.head:])
		q.segs = q.segs[:n]
		q.head = 0
	}
	q.segs = append(q.segs, busSeg{op: op, start: start, end: end})
	m.Transactions++
	m.BusyCycles += uint64(dur)
	return end
}

// OpAt returns the opcode driven on the bus during the given cycle,
// discarding expired segments as it goes.  Cycles must be queried in
// non-decreasing order per bus.
func (m *MemSystem) OpAt(bus int, cycle uint64) trace.MemOp {
	q := &m.buses[bus]
	q.prune(cycle)
	if q.head < len(q.segs) && q.segs[q.head].start <= cycle {
		return q.segs[q.head].op
	}
	return trace.MemIdle
}

// QueueDepth returns the number of pending or in-flight transactions
// on the bus.
func (m *MemSystem) QueueDepth(bus int) int {
	q := &m.buses[bus]
	return len(q.segs) - q.head
}

// BusFor maps a cache module to its memory bus: module i uses bus
// i mod buses, matching the FX/8's pairing of cache modules with
// memory buses.
func (m *MemSystem) BusFor(module int) int { return module % len(m.buses) }
