package fx8

import (
	"math/rand/v2"
	"testing"
)

// Robustness fuzzing: random but well-formed instruction streams must
// never wedge, panic, or corrupt the cluster — the simulator is the
// substrate for every experiment, so it must digest anything the
// workload generator could conceivably emit.

// randomProgram builds a random program of serial code and concurrent
// loops.  Dependences are emitted in the safe Await(i-d)/Advance(i)
// shape so programs always terminate.
func randomProgram(rng *rand.Rand) *SliceStream {
	s := &SliceStream{}
	nPhases := 1 + rng.IntN(6)
	for ph := 0; ph < nPhases; ph++ {
		if rng.IntN(2) == 0 {
			// Serial burst.
			for i := 0; i < 1+rng.IntN(30); i++ {
				s.Instrs = append(s.Instrs, randomInstr(rng))
			}
			continue
		}
		// Concurrent loop.
		trips := rng.IntN(40) // includes 0-trip loops
		dep := 0
		if rng.IntN(3) == 0 {
			dep = 1 + rng.IntN(8)
		}
		bodyLen := 1 + rng.IntN(8)
		seed := rng.Uint64()
		loop := &Loop{
			Trips: trips,
			Body: func(iter int) Stream {
				brng := rand.New(rand.NewPCG(seed, uint64(iter)))
				body := &SliceStream{}
				if dep > 0 {
					body.Instrs = append(body.Instrs,
						Instr{Op: OpAwait, N: int32(iter - dep), IAddr: 0x8000})
				}
				for i := 0; i < bodyLen; i++ {
					body.Instrs = append(body.Instrs, randomInstr(brng))
				}
				if dep > 0 {
					body.Instrs = append(body.Instrs,
						Instr{Op: OpAdvance, N: int32(iter), IAddr: 0x8100})
				}
				return body
			},
		}
		s.Instrs = append(s.Instrs, Instr{Op: OpCStart, Loop: loop, IAddr: uint32(rng.IntN(1 << 16))})
	}
	return s
}

// randomInstr emits one random non-control instruction.
func randomInstr(rng *rand.Rand) Instr {
	ia := uint32(rng.IntN(1 << 18))
	switch rng.IntN(6) {
	case 0:
		return Instr{Op: OpCompute, N: int32(rng.IntN(20)), IAddr: ia}
	case 1:
		return Instr{Op: OpVCompute, N: int32(rng.IntN(64)), IAddr: ia}
	case 2:
		return Instr{Op: OpLoad, Addr: uint32(rng.Uint64() % (64 << 20)), IAddr: ia}
	case 3:
		return Instr{Op: OpStore, Addr: uint32(rng.Uint64() % (64 << 20)), IAddr: ia}
	case 4:
		return Instr{Op: OpVLoad, Addr: uint32(rng.Uint64() % (64 << 20)), N: int32(rng.IntN(64)), IAddr: ia}
	default:
		return Instr{Op: OpVStore, Addr: uint32(rng.Uint64() % (64 << 20)), N: int32(rng.IntN(64)), IAddr: ia}
	}
}

// FuzzClusterPrograms is the native fuzz entry over the same program
// space: the fuzzer drives the generator seed and resource class, so
// the scheduled CI fuzz job (.github/workflows/fuzz.yml) explores
// program shapes the fixed-seed trials above never reach.  Under
// plain `go test` only the seed corpus runs.
func FuzzClusterPrograms(f *testing.F) {
	f.Add(uint64(0xF00D), uint8(8))
	f.Add(uint64(1), uint8(1))
	f.Add(uint64(0xBEEF), uint8(4))
	f.Fuzz(func(t *testing.T, seed uint64, size uint8) {
		rng := rand.New(rand.NewPCG(seed, 0xF2))
		cl := New(quietConfig())
		clusterSize := int(size%8) + 1
		if err := cl.Run(randomProgram(rng), clusterSize); err != nil {
			t.Fatal(err)
		}
		limit := 3_000_000
		for i := 0; i < limit && !cl.Idle(); i++ {
			cl.Step()
		}
		if !cl.Idle() {
			t.Fatalf("seed %#x size %d wedged", seed, clusterSize)
		}
		if cl.ActiveCount() != 0 {
			t.Fatalf("seed %#x left CEs active after completion", seed)
		}
		if cl.CCBus().Running() {
			t.Fatalf("seed %#x left the CCB running", seed)
		}
	})
}

func TestRandomProgramsNeverWedge(t *testing.T) {
	rng := rand.New(rand.NewPCG(0xF0, 0x0D))
	for trial := 0; trial < 40; trial++ {
		cfg := quietConfig()
		cl := New(cfg)
		prog := randomProgram(rng)
		size := 1 + rng.IntN(8)
		if err := cl.Run(prog, size); err != nil {
			t.Fatal(err)
		}
		limit := 3_000_000
		for i := 0; i < limit && !cl.Idle(); i++ {
			cl.Step()
		}
		if !cl.Idle() {
			t.Fatalf("trial %d (size %d) wedged", trial, size)
		}
		if cl.ActiveCount() != 0 {
			t.Fatalf("trial %d left CEs active after completion", trial)
		}
		if cl.CCBus().Running() {
			t.Fatalf("trial %d left the CCB running", trial)
		}
	}
}

func TestRandomProgramsUnderTinyCaches(t *testing.T) {
	// Degenerate hardware: one-line icache sets, minimal shared
	// cache, single memory bus, slow fills.
	rng := rand.New(rand.NewPCG(0xBEE, 0xF))
	cfg := quietConfig()
	cfg.ICacheBytes = 64
	cfg.SharedCacheBytes = 2 << 10
	cfg.SharedModules = 1
	cfg.SharedWays = 1
	cfg.MemBuses = 1
	cfg.FillCycles = 40
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		cl := New(cfg)
		if err := cl.Run(randomProgram(rng), 8); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 5_000_000 && !cl.Idle(); i++ {
			cl.Step()
		}
		if !cl.Idle() {
			t.Fatalf("trial %d wedged on tiny-cache machine", trial)
		}
	}
}

func TestRandomProgramsWithHostileMMU(t *testing.T) {
	// An MMU that faults on every access (worst-case paging) must
	// slow but never deadlock execution.
	rng := rand.New(rand.NewPCG(0xAB, 0xCD))
	for trial := 0; trial < 6; trial++ {
		cl := New(quietConfig())
		cl.SetMMU(&fixedMMU{stall: 200})
		if err := cl.Run(randomProgram(rng), 8); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 20_000_000 && !cl.Idle(); i++ {
			cl.Step()
		}
		if !cl.Idle() {
			t.Fatalf("trial %d wedged under hostile MMU", trial)
		}
	}
}

func TestRandomProgramsDeterministic(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		seed := uint64(trial) + 0x51
		run := func() (uint64, uint64) {
			rng := rand.New(rand.NewPCG(seed, 1))
			cl := New(quietConfig())
			if err := cl.Run(randomProgram(rng), 8); err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 3_000_000 && !cl.Idle(); i++ {
				cl.Step()
			}
			var retired uint64
			for i := 0; i < 8; i++ {
				retired += cl.CE(i).InstrsRetired
			}
			return cl.Cycle(), retired
		}
		c1, r1 := run()
		c2, r2 := run()
		if c1 != c2 || r1 != r2 {
			t.Fatalf("trial %d nondeterministic: (%d,%d) vs (%d,%d)", trial, c1, r1, c2, r2)
		}
	}
}
