package fx8

import (
	"math/rand/v2"
	"testing"
)

func testCacheConfig() Config {
	cfg := DefaultConfig()
	return cfg
}

func TestSharedCacheHitAfterFill(t *testing.T) {
	c := NewSharedCache(testCacheConfig())
	addr := uint32(0x1000)
	if res := c.Lookup(addr, false); res.Hit {
		t.Fatal("cold cache should miss")
	}
	if res := c.Lookup(addr, false); !res.Hit {
		t.Fatal("second access should hit")
	}
	// Same line, different offset.
	if res := c.Lookup(addr+31, false); !res.Hit {
		t.Fatal("same-line offset should hit")
	}
	// Next line misses.
	if res := c.Lookup(addr+32, false); res.Hit {
		t.Fatal("next line should miss")
	}
	if c.Hits != 2 || c.Misses != 2 {
		t.Fatalf("stats hits=%d misses=%d", c.Hits, c.Misses)
	}
}

func TestSharedCacheModuleInterleave(t *testing.T) {
	cfg := testCacheConfig()
	c := NewSharedCache(cfg)
	// Consecutive lines alternate modules (two-module interleave).
	m0 := c.Module(0)
	m1 := c.Module(uint32(cfg.LineBytes))
	m2 := c.Module(uint32(2 * cfg.LineBytes))
	if m0 == m1 {
		t.Errorf("adjacent lines should map to different modules: %d %d", m0, m1)
	}
	if m0 != m2 {
		t.Errorf("lines two apart should share a module: %d %d", m0, m2)
	}
	// Offsets within a line share a module.
	if c.Module(5) != m0 {
		t.Error("intra-line offset changed module")
	}
}

func TestSharedCacheLRUEviction(t *testing.T) {
	cfg := testCacheConfig()
	c := NewSharedCache(cfg)
	// Addresses mapping to the same module and set: stride by
	// (modules * sets * lineBytes).
	stride := uint32(cfg.SharedModules * c.sets * cfg.LineBytes)
	base := uint32(0)
	// Fill all ways.
	for w := 0; w < cfg.SharedWays; w++ {
		c.Lookup(base+uint32(w)*stride, false)
	}
	// Touch way 0 so way 1 is LRU.
	c.Lookup(base, false)
	// New conflicting line evicts way 1.
	c.Lookup(base+uint32(cfg.SharedWays)*stride, false)
	if !c.Contains(base) {
		t.Error("recently used line was evicted")
	}
	if c.Contains(base + stride) {
		t.Error("LRU line should have been evicted")
	}
}

func TestSharedCacheWriteBack(t *testing.T) {
	cfg := testCacheConfig()
	c := NewSharedCache(cfg)
	stride := uint32(cfg.SharedModules * c.sets * cfg.LineBytes)
	// Dirty a line, then evict it through conflict misses.
	c.Lookup(0, true)
	var sawWriteBack bool
	for w := 1; w <= cfg.SharedWays; w++ {
		res := c.Lookup(uint32(w)*stride, false)
		if res.WriteBack {
			sawWriteBack = true
			if res.VictimAddr != 0 {
				t.Errorf("victim address = %#x, want 0", res.VictimAddr)
			}
		}
	}
	if !sawWriteBack {
		t.Error("evicting a dirty line should request a write-back")
	}
	if c.WriteBacks == 0 {
		t.Error("write-back statistic not counted")
	}
}

func TestSharedCacheCleanEvictionNoWriteBack(t *testing.T) {
	cfg := testCacheConfig()
	c := NewSharedCache(cfg)
	stride := uint32(cfg.SharedModules * c.sets * cfg.LineBytes)
	for w := 0; w <= cfg.SharedWays+2; w++ {
		if res := c.Lookup(uint32(w)*stride, false); res.WriteBack {
			t.Fatal("clean lines must not be written back")
		}
	}
}

func TestSharedCacheInvalidate(t *testing.T) {
	c := NewSharedCache(testCacheConfig())
	c.Lookup(0x2000, false)
	if !c.Contains(0x2000) {
		t.Fatal("line should be resident")
	}
	if !c.Invalidate(0x2000) {
		t.Fatal("invalidate should find the line")
	}
	if c.Contains(0x2000) {
		t.Fatal("line should be gone after invalidate")
	}
	if c.Invalidate(0x2000) {
		t.Fatal("second invalidate should find nothing")
	}
	if c.Invalidations != 1 {
		t.Fatalf("invalidations = %d", c.Invalidations)
	}
}

func TestSharedCacheFlush(t *testing.T) {
	c := NewSharedCache(testCacheConfig())
	for a := uint32(0); a < 4096; a += 32 {
		c.Lookup(a, true)
	}
	c.Flush()
	for a := uint32(0); a < 4096; a += 32 {
		if c.Contains(a) {
			t.Fatalf("line %#x survived flush", a)
		}
	}
}

func TestSharedCacheVictimAddressRoundTrip(t *testing.T) {
	// Property: when a dirty victim is reported, its address maps to
	// the same module and set as the line that displaced it.
	cfg := testCacheConfig()
	c := NewSharedCache(cfg)
	rng := rand.New(rand.NewPCG(8, 8))
	for i := 0; i < 20000; i++ {
		addr := uint32(rng.Uint64() % (16 << 20))
		res := c.Lookup(addr, rng.IntN(2) == 0)
		if res.WriteBack {
			if c.Module(res.VictimAddr) != c.Module(addr) {
				t.Fatalf("victim %#x module %d != addr %#x module %d",
					res.VictimAddr, c.Module(res.VictimAddr), addr, c.Module(addr))
			}
		}
	}
}

func TestSharedCacheMissRatioStreamVsResident(t *testing.T) {
	cfg := testCacheConfig()
	// Streaming a footprint much larger than the cache must miss per
	// line; re-walking a resident footprint must hit.
	stream := NewSharedCache(cfg)
	for a := uint32(0); a < 4<<20; a += 32 {
		stream.Lookup(a, false)
	}
	if r := stream.MissRatio(); r < 0.99 {
		t.Errorf("streaming miss ratio = %v, want ~1", r)
	}

	resident := NewSharedCache(cfg)
	for pass := 0; pass < 10; pass++ {
		for a := uint32(0); a < 32<<10; a += 32 {
			resident.Lookup(a, false)
		}
	}
	if r := resident.MissRatio(); r > 0.15 {
		t.Errorf("resident miss ratio = %v, want small", r)
	}
}

func TestMissRatioEmpty(t *testing.T) {
	c := NewSharedCache(testCacheConfig())
	if c.MissRatio() != 0 {
		t.Error("empty cache MissRatio should be 0")
	}
}

func TestICacheBasic(t *testing.T) {
	ic := newICache(16<<10, 32)
	if ic.lookup(0x100) {
		t.Fatal("cold icache should miss")
	}
	if !ic.lookup(0x100) {
		t.Fatal("refetch should hit")
	}
	if !ic.lookup(0x11F) {
		t.Fatal("same line should hit")
	}
	if ic.lookup(0x100 + 16<<10) {
		t.Fatal("aliasing line should conflict-miss in a direct-mapped cache")
	}
	if ic.lookup(0x100) {
		t.Fatal("original line was displaced; should miss")
	}
}

func TestICacheLoopFits(t *testing.T) {
	// A loop body smaller than the icache hits on every re-execution
	// after the first pass — the section 5.1 locality effect.
	ic := newICache(16<<10, 32)
	body := uint32(8 << 10)
	for pass := 0; pass < 5; pass++ {
		for a := uint32(0); a < body; a += 4 {
			ic.lookup(a)
		}
	}
	total := ic.hits + ic.misses
	if ratio := float64(ic.misses) / float64(total); ratio > 0.03 {
		t.Errorf("loop-resident miss ratio = %v", ratio)
	}
}

func TestICacheInvalidate(t *testing.T) {
	ic := newICache(1<<10, 32)
	ic.lookup(0)
	ic.invalidate()
	if ic.lookup(0) {
		t.Fatal("invalidated icache should miss")
	}
}
