package fx8

// CCB models the Concurrency Control Bus: the hardware that starts
// concurrent loops, self-schedules iterations to CEs, tracks loop
// completion, and carries dependence synchronization — all without
// touching the memory system, matching the observation in section 5.1
// that dependence waiting generates no cache traffic.
type CCB struct {
	running   bool
	loop      *Loop
	trips     int
	next      int // next iteration to dispatch
	completed int
	lastCE    int // CE assigned the final iteration (-1 until assigned)

	// Dependence synchronization: watermark counts consecutively
	// advanced iterations from 0; out-of-order advances park in the
	// pending set until the watermark reaches them.
	watermark int
	pending   map[int]struct{}

	// Statistics.
	LoopsStarted  uint64
	IterationsRun uint64
	AdvanceOps    uint64
}

// NewCCB returns an idle concurrency control bus.
func NewCCB() *CCB {
	return &CCB{lastCE: -1, pending: make(map[int]struct{})}
}

// Running reports whether a concurrent loop is in progress.
func (b *CCB) Running() bool { return b.running }

// Reset returns the bus to its just-constructed idle state, zeroing
// the statistics and reusing the pending set.
func (b *CCB) Reset() {
	b.running = false
	b.loop = nil
	b.trips, b.next, b.completed = 0, 0, 0
	b.lastCE = -1
	b.watermark = 0
	clear(b.pending)
	b.LoopsStarted, b.IterationsRun, b.AdvanceOps = 0, 0, 0
}

// Start broadcasts a concurrent loop.  Starting while a loop is
// running indicates nested concurrency, which the cluster does not
// support (matching the FX/8's single outer concurrent loop).
func (b *CCB) Start(loop *Loop) {
	if b.running {
		panic("fx8: nested concurrent loop start on CCB")
	}
	b.running = true
	b.loop = loop
	b.trips = loop.Trips
	b.next = 0
	b.completed = 0
	b.lastCE = -1
	b.watermark = 0
	clear(b.pending)
	b.LoopsStarted++
}

// Take self-schedules the next iteration to the requesting CE.  It
// returns ok=false when no iterations remain.
func (b *CCB) Take(ce int) (iter int, ok bool) {
	if !b.running || b.next >= b.trips {
		return 0, false
	}
	iter = b.next
	b.next++
	if iter == b.trips-1 {
		b.lastCE = ce
	}
	b.IterationsRun++
	return iter, true
}

// Complete records that an iteration has finished executing and
// reports whether the whole loop is now complete.
func (b *CCB) Complete(iter int) (loopDone bool) {
	b.completed++
	return b.completed >= b.trips
}

// AllComplete reports whether every iteration has completed.
func (b *CCB) AllComplete() bool { return b.completed >= b.trips }

// LastCE returns the CE that executed the final iteration; the FX/8
// resumes serial execution there.  It returns -1 when the final
// iteration has not been dispatched (including zero-trip loops).
func (b *CCB) LastCE() int { return b.lastCE }

// Finish returns the CCB to the idle state after the cluster has
// transferred serial execution.
func (b *CCB) Finish() {
	b.running = false
	b.loop = nil
}

// Advance publishes completion of dependence stage iter.
func (b *CCB) Advance(iter int) {
	b.AdvanceOps++
	if iter == b.watermark {
		b.watermark++
		for {
			if _, ok := b.pending[b.watermark]; !ok {
				break
			}
			delete(b.pending, b.watermark)
			b.watermark++
		}
		return
	}
	if iter > b.watermark {
		b.pending[iter] = struct{}{}
	}
}

// StageReached reports whether dependence stage iter has been
// published.  Negative stages are vacuously reached, so iteration i of
// a distance-d loop can Await(i-d) unconditionally.
func (b *CCB) StageReached(iter int) bool {
	return iter < b.watermark
}
