// Package fx8 simulates the Alliant FX/8 Computational Cluster at the
// bus-cycle level: eight Computational Elements (CEs) with private
// instruction caches, a shared four-way-interleaved write-back cache
// split across two modules, a crossbar between CEs and the cache, two
// memory buses to interleaved main memory, and the hardware
// Concurrency Control Bus (CCB) that implements self-scheduled
// loop-level concurrency.
//
// The simulator exposes exactly the signals the study's logic analyzer
// probed: per-CE bus opcodes (with miss qualification), memory bus
// opcodes, and per-CE activity, so the measurement methodology of
// internal/core can observe it non-intrusively.
package fx8

import (
	"fmt"

	"repro/internal/trace"
)

// Config describes the hardware configuration of a simulated cluster.
// DefaultConfig returns the FX/8 as measured in the study.
type Config struct {
	// NumCE is the number of Computational Elements in the cluster
	// (1 for an FX/1 through 8 for an FX/8).
	NumCE int

	// NumIP is the number of Interactive Processors generating
	// background memory-bus traffic.
	NumIP int

	// LineBytes is the cache line size shared by the instruction and
	// data caches.
	LineBytes int

	// ICacheBytes is the per-CE private instruction cache size
	// (direct mapped).
	ICacheBytes int

	// SharedCacheBytes is the total shared data cache size, split
	// evenly across SharedModules interleaved modules.
	SharedCacheBytes int
	SharedModules    int
	SharedWays       int

	// LookupsPerModule is the number of new cache lookups each shared
	// cache module can accept per cycle; requests beyond it queue in
	// the crossbar.
	LookupsPerModule int

	// ArbBias is the per-CE crossbar arbitration bias: a contended
	// request is granted by highest (cycles waited + bias).  Larger
	// bias wins contention sooner.  Length must be NumCE; nil means
	// no bias.
	ArbBias []int

	// MemBuses is the number of cache-to-memory buses.
	MemBuses int

	// FillCycles is the memory bus occupancy of one line fill;
	// WriteBackCycles of one dirty-line write-back.
	FillCycles      int
	WriteBackCycles int

	// MissExtraCycles is the additional CE stall beyond memory bus
	// occupancy when an access misses.
	MissExtraCycles int

	// PageBytes is the virtual memory page size used for page-fault
	// checks by the MMU hook.
	PageBytes int

	// VectorLaneBytes is the data moved per bus cycle by a vector
	// memory operation (one element per cycle).
	VectorLaneBytes int

	// CStartCycles is the Concurrency Control Bus broadcast latency
	// of a concurrent-start instruction.
	CStartCycles int

	// CCBDispatchExtra is the per-CE iteration dispatch latency in
	// cycles, modelling each CE's position on the concurrency
	// control bus daisy chain.  CEs with lower dispatch latency run
	// iterations marginally faster, free up first at round
	// boundaries, and therefore absorb a loop's leftover iterations
	// — the mechanism behind the transition asymmetry of section
	// 4.3.  Length must be at least NumCE; nil means uniform.
	CCBDispatchExtra []int

	// IPActivity is the per-cycle probability (x1000) that an IP
	// issues a memory bus transaction; IPInvalidate the probability
	// (x1000) that an IP write invalidates a shared-cache line.
	IPActivity   int
	IPInvalidate int

	// Seed drives the IP background traffic generator.  CE execution
	// is fully deterministic and does not consume randomness.
	Seed uint64
}

// DefaultConfig returns the configuration of the measured FX/8:
// 8 CEs, 16 KB icaches, 128 KB shared cache in two four-way modules,
// two memory buses, 4 KB pages.  The arbitration bias and CCB
// dispatch-chain latencies encode the priority asymmetry hypothesized
// in section 4.4: CEs 0 and 7 are marginally favored, so they free up
// first at loop round boundaries and absorb leftover iterations.
func DefaultConfig() Config {
	return Config{
		NumCE:            trace.NumCE,
		NumIP:            3,
		LineBytes:        32,
		ICacheBytes:      16 << 10,
		SharedCacheBytes: 128 << 10,
		SharedModules:    2,
		SharedWays:       4,
		LookupsPerModule: 1,
		ArbBias:          []int{8, 2, 5, 5, 5, 2, 2, 8},
		MemBuses:         trace.NumMemBus,
		FillCycles:       5,
		WriteBackCycles:  3,
		MissExtraCycles:  2,
		PageBytes:        4 << 10,
		VectorLaneBytes:  8,
		CStartCycles:     4,
		CCBDispatchExtra: []int{0, 4, 2, 2, 2, 4, 4, 0},
		IPActivity:       60,
		IPInvalidate:     5,
		Seed:             1987,
	}
}

// Validate reports the first configuration inconsistency found, or
// nil when the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.NumCE < 1 || c.NumCE > trace.NumCE:
		return fmt.Errorf("fx8: NumCE %d out of range 1..%d", c.NumCE, trace.NumCE)
	case c.LineBytes <= 0 || c.LineBytes&(c.LineBytes-1) != 0:
		return fmt.Errorf("fx8: LineBytes %d must be a positive power of two", c.LineBytes)
	case c.ICacheBytes < c.LineBytes:
		return fmt.Errorf("fx8: ICacheBytes %d smaller than a line", c.ICacheBytes)
	case c.SharedModules <= 0 || c.SharedModules&(c.SharedModules-1) != 0:
		return fmt.Errorf("fx8: SharedModules %d must be a positive power of two", c.SharedModules)
	case c.SharedWays <= 0:
		return fmt.Errorf("fx8: SharedWays %d must be positive", c.SharedWays)
	case c.SharedCacheBytes%(c.SharedModules*c.SharedWays*c.LineBytes) != 0:
		return fmt.Errorf("fx8: SharedCacheBytes %d not divisible into %d modules x %d ways of %d-byte lines",
			c.SharedCacheBytes, c.SharedModules, c.SharedWays, c.LineBytes)
	case c.LookupsPerModule <= 0:
		return fmt.Errorf("fx8: LookupsPerModule must be positive")
	case c.ArbBias != nil && len(c.ArbBias) < c.NumCE:
		return fmt.Errorf("fx8: ArbBias length %d < NumCE %d", len(c.ArbBias), c.NumCE)
	case c.MemBuses < 1 || c.MemBuses > trace.NumMemBus:
		return fmt.Errorf("fx8: MemBuses %d out of range 1..%d", c.MemBuses, trace.NumMemBus)
	case c.FillCycles <= 0 || c.WriteBackCycles <= 0:
		return fmt.Errorf("fx8: bus occupancies must be positive")
	case c.PageBytes <= 0 || c.PageBytes&(c.PageBytes-1) != 0:
		return fmt.Errorf("fx8: PageBytes %d must be a positive power of two", c.PageBytes)
	case c.VectorLaneBytes <= 0:
		return fmt.Errorf("fx8: VectorLaneBytes must be positive")
	case c.CStartCycles < 0:
		return fmt.Errorf("fx8: CStartCycles must be non-negative")
	case c.CCBDispatchExtra != nil && len(c.CCBDispatchExtra) < c.NumCE:
		return fmt.Errorf("fx8: CCBDispatchExtra length %d < NumCE %d", len(c.CCBDispatchExtra), c.NumCE)
	}
	return nil
}

// FX1Config returns the entry configuration of the product line: one
// CE, one IP, and a single 64 KB cache module on one memory bus.
func FX1Config() Config {
	cfg := DefaultConfig()
	cfg.NumCE = 1
	cfg.NumIP = 1
	cfg.SharedCacheBytes = 64 << 10
	cfg.SharedModules = 1
	cfg.MemBuses = 1
	cfg.ArbBias = nil
	cfg.CCBDispatchExtra = nil
	return cfg
}

// FX4Config returns a mid-range four-CE configuration.
func FX4Config() Config {
	cfg := DefaultConfig()
	cfg.NumCE = 4
	cfg.NumIP = 2
	cfg.ArbBias = cfg.ArbBias[:4]
	cfg.CCBDispatchExtra = cfg.CCBDispatchExtra[:4]
	return cfg
}
