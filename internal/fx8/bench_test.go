package fx8

import (
	"testing"

	"repro/internal/trace"
)

// Per-layer benchmarks for the cluster hot path: the CE step loop,
// the shared cache, and the memory buses.  make bench records them in
// BENCH_fx8.json and the CI bench-gate diffs them against the merge
// base, so a regression in the simulator's inner loop fails the build
// before it multiplies through every session of every campaign.

// benchLoopBody builds one iteration of a vectorized loop body: the
// load-load-compute-store chunk shape the workload generator emits.
func benchLoopBody(iter int) Stream {
	base := uint32(iter) * 4096
	return &SliceStream{Instrs: []Instr{
		{Op: OpVLoad, Addr: 0x10000 + base%(64<<10), N: 32, IAddr: 0x100},
		{Op: OpVLoad, Addr: 0x40000 + base, N: 32, IAddr: 0x104},
		{Op: OpVCompute, N: 24, IAddr: 0x108},
		{Op: OpVStore, Addr: 0x20000 + base%(64<<10), N: 32, IAddr: 0x10c},
		{Op: OpCompute, N: 8, IAddr: 0x110},
	}}
}

// benchProgram interleaves serial bursts with concurrent loops — a
// deterministic miniature of a cluster job.
func benchProgram() Stream {
	var s SliceStream
	for ph := 0; ph < 4; ph++ {
		for i := 0; i < 16; i++ {
			s.Instrs = append(s.Instrs, Instr{Op: OpCompute, N: 3, IAddr: uint32(i * 4)})
			if i%4 == 0 {
				s.Instrs = append(s.Instrs, Instr{Op: OpLoad, Addr: uint32(0x8000 + i*64), IAddr: uint32(i*4 + 2)})
			}
		}
		s.Instrs = append(s.Instrs, Instr{Op: OpCStart, IAddr: 0x200, Loop: &Loop{Trips: 24, Body: benchLoopBody}})
	}
	return &s
}

// BenchmarkClusterStep measures one bus cycle of the full cluster
// (arbitration, eight CEs, IP traffic) under a representative
// serial+concurrent program — the innermost loop of every session.
func BenchmarkClusterStep(b *testing.B) {
	cl := New(DefaultConfig())
	if err := cl.Run(benchProgram(), 8); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cl.Idle() {
			if err := cl.Run(benchProgram(), 8); err != nil {
				b.Fatal(err)
			}
		}
		cl.Step()
	}
}

// BenchmarkClusterStepSnapshot is BenchmarkClusterStep with the probe
// latched every cycle — the monitored (acquisition) stepping mode.
func BenchmarkClusterStepSnapshot(b *testing.B) {
	cl := New(DefaultConfig())
	if err := cl.Run(benchProgram(), 8); err != nil {
		b.Fatal(err)
	}
	var sink trace.Record
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cl.Idle() {
			if err := cl.Run(benchProgram(), 8); err != nil {
				b.Fatal(err)
			}
		}
		cl.Step()
		sink = cl.Snapshot()
	}
	_ = sink
}

// BenchmarkSharedCacheLookup measures one shared-cache access over a
// working set that misses at a realistic rate.
func BenchmarkSharedCacheLookup(b *testing.B) {
	c := NewSharedCache(DefaultConfig())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		addr := uint32(i*232) % (512 << 10) // walks past the 128 KB cache
		c.Lookup(addr, i%4 == 0)
	}
}

// BenchmarkMemSystem measures the memory-bus schedule: one enqueue
// plus the probe's same-cycle opcode query.
func BenchmarkMemSystem(b *testing.B) {
	m := NewMemSystem(trace.NumMemBus)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := uint64(i)
		bus := i & 1
		m.Enqueue(bus, trace.MemRead, 5, now)
		if m.OpAt(bus, now) == trace.MemIdle {
			b.Fatal("enqueued transaction should occupy the bus")
		}
	}
}
