package fx8

import (
	"testing"

	"repro/internal/trace"
)

// quietConfig returns a configuration with IP background traffic
// disabled so tests observe only CE-driven behaviour.
func quietConfig() Config {
	cfg := DefaultConfig()
	cfg.NumIP = 0
	return cfg
}

// runUntilIdle steps the cluster until the installed process
// completes, failing the test if it does not finish within limit
// cycles.
func runUntilIdle(t *testing.T, cl *Cluster, limit int) {
	t.Helper()
	for i := 0; i < limit; i++ {
		if cl.Idle() {
			return
		}
		cl.Step()
	}
	t.Fatalf("process did not complete within %d cycles", limit)
}

func computeStream(n int, cycles int32) *SliceStream {
	s := &SliceStream{}
	for i := 0; i < n; i++ {
		s.Instrs = append(s.Instrs, Instr{Op: OpCompute, N: cycles, IAddr: uint32(i * 4)})
	}
	return s
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := DefaultConfig()
	bad.NumCE = 0
	if bad.Validate() == nil {
		t.Error("NumCE=0 should be invalid")
	}
	bad = DefaultConfig()
	bad.LineBytes = 33
	if bad.Validate() == nil {
		t.Error("non-power-of-two line should be invalid")
	}
	bad = DefaultConfig()
	bad.SharedCacheBytes = 100
	if bad.Validate() == nil {
		t.Error("indivisible cache size should be invalid")
	}
	bad = DefaultConfig()
	bad.ArbBias = []int{1}
	if bad.Validate() == nil {
		t.Error("short ArbBias should be invalid")
	}
	bad = DefaultConfig()
	bad.PageBytes = 3000
	if bad.Validate() == nil {
		t.Error("non-power-of-two page should be invalid")
	}
}

func TestNewPanicsOnInvalidConfig(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New should panic on invalid config")
		}
	}()
	cfg := DefaultConfig()
	cfg.NumCE = -1
	New(cfg)
}

func TestSerialExecution(t *testing.T) {
	cl := New(quietConfig())
	if !cl.Idle() {
		t.Fatal("fresh cluster should be idle")
	}
	if err := cl.Run(computeStream(10, 3), 8); err != nil {
		t.Fatal(err)
	}
	if cl.Idle() {
		t.Fatal("cluster should be busy after Run")
	}
	// Only CE 0 should be active while serial.
	cl.Step()
	if n := cl.ActiveCount(); n != 1 {
		t.Fatalf("serial active count = %d, want 1", n)
	}
	if !cl.CE(0).Active() || cl.CE(1).Active() {
		t.Fatal("serial thread should be on CE 0")
	}
	runUntilIdle(t, cl, 10000)
	if cl.ActiveCount() != 0 {
		t.Fatal("no CE should be active after completion")
	}
}

func TestRunWhileBusy(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(computeStream(5, 1), 8); err != nil {
		t.Fatal(err)
	}
	if err := cl.Run(computeStream(5, 1), 8); err != ErrBusy {
		t.Fatalf("second Run = %v, want ErrBusy", err)
	}
}

// loopProgram builds a serial stream that executes a concurrent loop
// of the given trip count, with bodyLen compute instructions per
// iteration, then a short serial tail.
func loopProgram(trips, bodyLen int) *SliceStream {
	loop := &Loop{
		Trips: trips,
		Body: func(iter int) Stream {
			body := &SliceStream{}
			for k := 0; k < bodyLen; k++ {
				body.Instrs = append(body.Instrs,
					Instr{Op: OpCompute, N: 2, IAddr: 0x8000 + uint32(k*4)})
			}
			return body
		},
	}
	return &SliceStream{Instrs: []Instr{
		{Op: OpCompute, N: 5, IAddr: 0},
		{Op: OpCStart, Loop: loop, IAddr: 4},
		{Op: OpCompute, N: 5, IAddr: 8},
	}}
}

func TestConcurrentLoopUsesAllCEs(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(64, 20), 8); err != nil {
		t.Fatal(err)
	}
	maxActive := 0
	for i := 0; i < 100000 && !cl.Idle(); i++ {
		cl.Step()
		if n := cl.ActiveCount(); n > maxActive {
			maxActive = n
		}
	}
	if !cl.Idle() {
		t.Fatal("program did not complete")
	}
	if maxActive != 8 {
		t.Fatalf("max active = %d, want 8", maxActive)
	}
	if got := cl.CCBus().IterationsRun; got != 64 {
		t.Fatalf("iterations run = %d, want 64", got)
	}
	if cl.CCBus().Running() {
		t.Fatal("CCB should be idle after the loop")
	}
}

func TestClusterSizeLimitsConcurrency(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(32, 20), 3); err != nil {
		t.Fatal(err)
	}
	maxActive := 0
	for i := 0; i < 100000 && !cl.Idle(); i++ {
		cl.Step()
		if n := cl.ActiveCount(); n > maxActive {
			maxActive = n
		}
	}
	if maxActive != 3 {
		t.Fatalf("max active = %d, want 3 (cluster size)", maxActive)
	}
}

func TestSerialResumesAfterLoop(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(16, 10), 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 100000)
	// The serial tail must have executed: every CE instruction
	// retires, so total retired >= serial (2 instrs + compute
	// cycles) plus all loop bodies.
	var retired uint64
	for i := 0; i < 8; i++ {
		retired += cl.CE(i).InstrsRetired
	}
	if retired == 0 {
		t.Fatal("nothing retired")
	}
}

func TestZeroTripLoopFallsThrough(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(0, 10), 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	if cl.CCBus().IterationsRun != 0 {
		t.Fatal("zero-trip loop should run no iterations")
	}
}

func TestSingleTripLoop(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(1, 10), 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	if cl.CCBus().IterationsRun != 1 {
		t.Fatal("single-trip loop should run one iteration")
	}
}

func TestTransitionDescendsToSerial(t *testing.T) {
	// Watch the active count during the end of a loop: it must pass
	// through intermediate values and end at 1 (serial continuation).
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(24, 40), 8); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	prev := 0
	for i := 0; i < 200000 && !cl.Idle(); i++ {
		cl.Step()
		n := cl.ActiveCount()
		if n != prev {
			seen[n] = true
			prev = n
		}
	}
	if !seen[8] {
		t.Error("never reached 8-active")
	}
	if !seen[1] {
		t.Error("never returned to serial (1-active)")
	}
}

func TestDependenceLoopSerializes(t *testing.T) {
	// A fully dependence-chained loop: iteration i awaits i-1.  All
	// iterations must still complete (no deadlock), with substantial
	// await cycles accumulated.
	cfg := quietConfig()
	cl := New(cfg)
	loop := &Loop{
		Trips: 16,
		Body: func(iter int) Stream {
			return &SliceStream{Instrs: []Instr{
				{Op: OpAwait, N: int32(iter - 1), IAddr: 0x9000},
				{Op: OpCompute, N: 10, IAddr: 0x9004},
				{Op: OpAdvance, N: int32(iter), IAddr: 0x9008},
			}}
		},
	}
	serial := &SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: loop, IAddr: 0}}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 100000)
	if cl.CCBus().IterationsRun != 16 {
		t.Fatalf("iterations = %d", cl.CCBus().IterationsRun)
	}
	var await uint64
	for i := 0; i < 8; i++ {
		await += cl.CE(i).AwaitCycles
	}
	if await == 0 {
		t.Error("dependence chain should accumulate await cycles")
	}
}

func TestAwaitingCEIsActiveButBusIdle(t *testing.T) {
	cfg := quietConfig()
	release := &Loop{
		Trips: 2,
		Body: func(iter int) Stream {
			if iter == 1 {
				// Iteration 1 waits on iteration 0.
				return &SliceStream{Instrs: []Instr{
					{Op: OpAwait, N: 0, IAddr: 0x9100},
					{Op: OpCompute, N: 2, IAddr: 0x9104},
				}}
			}
			return &SliceStream{Instrs: []Instr{
				{Op: OpCompute, N: 200, IAddr: 0x9108},
				{Op: OpAdvance, N: 0, IAddr: 0x910C},
			}}
		},
	}
	cl2 := New(cfg)
	if err := cl2.Run(&SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: release, IAddr: 0}}}, 8); err != nil {
		t.Fatal(err)
	}
	sawAwaitActive := false
	for i := 0; i < 50000 && !cl2.Idle(); i++ {
		cl2.Step()
		for ce := 0; ce < 8; ce++ {
			c := cl2.CE(ce)
			if c.mode == ceAwait {
				if !c.Active() {
					t.Fatal("awaiting CE must count as active")
				}
				if c.BusOp() != trace.CEIdle {
					t.Fatal("awaiting CE must not occupy its bus")
				}
				sawAwaitActive = true
			}
		}
	}
	if !sawAwaitActive {
		t.Error("test never observed an awaiting CE")
	}
}

func TestVectorOperationStreams(t *testing.T) {
	cfg := quietConfig()
	cl := New(cfg)
	// One vector load of 32 elements: expect 32 bus-busy element
	// cycles on CE 0 and lookups at each line crossing (8-byte lanes,
	// 32-byte lines: 8 line crossings for 32 elements).
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpVLoad, Addr: 0x40000, N: 32, IAddr: 0},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	ce := cl.CE(0)
	// 32 element cycles plus 1 instruction-fetch cycle (cold icache).
	if ce.BusBusyCycles != 33 {
		t.Errorf("bus busy cycles = %d, want 33", ce.BusBusyCycles)
	}
	wantLookups := uint64(9) // 32 elems * 8 B / 32 B lines, + 1 ifetch
	if got := cl.Cache().Hits + cl.Cache().Misses; got != wantLookups {
		t.Errorf("cache lookups = %d, want %d", got, wantLookups)
	}
	if cl.Cache().Misses != 9 {
		t.Errorf("cold vector should miss each line: misses = %d", cl.Cache().Misses)
	}
}

func TestVectorRevisitHits(t *testing.T) {
	cfg := quietConfig()
	cl := New(cfg)
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpVLoad, Addr: 0x40000, N: 32, IAddr: 0},
		{Op: OpVLoad, Addr: 0x40000, N: 32, IAddr: 4},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	// 8 cold vector line misses + 1 cold instruction fetch miss; the
	// second pass (same icache line) hits all 8 data lines.
	if cl.Cache().Misses != 9 {
		t.Errorf("second pass should hit: misses = %d", cl.Cache().Misses)
	}
	if cl.Cache().Hits != 8 {
		t.Errorf("hits = %d, want 8", cl.Cache().Hits)
	}
}

func TestScalarMissDrivesMemoryBus(t *testing.T) {
	cfg := quietConfig()
	cl := New(cfg)
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpLoad, Addr: 0x1234, IAddr: 0},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	sawMissOp := false
	sawMemRead := false
	for i := 0; i < 1000 && !cl.Idle(); i++ {
		cl.Step()
		rec := cl.Snapshot()
		if rec.CE[0] == trace.CEReadMiss {
			sawMissOp = true
		}
		for _, m := range rec.Mem {
			if m == trace.MemRead {
				sawMemRead = true
			}
		}
	}
	if !sawMissOp {
		t.Error("miss-qualified opcode never observed on CE bus")
	}
	if !sawMemRead {
		t.Error("memory bus fill never observed")
	}
}

func TestPreemptAndResume(t *testing.T) {
	cl := New(quietConfig())
	s := computeStream(100, 5)
	if err := cl.Run(s, 8); err != nil {
		t.Fatal(err)
	}
	cl.StepN(50)
	stream, ok := cl.Preempt()
	if !ok {
		t.Fatal("preempt at a serial point should succeed")
	}
	if !cl.Idle() {
		t.Fatal("cluster should be idle after preempt")
	}
	if cl.ActiveCount() != 0 {
		t.Fatal("no CE should be active after preempt")
	}
	// Resume and finish.
	if err := cl.Run(stream, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
}

func TestPreemptRefusedDuringLoop(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(64, 50), 8); err != nil {
		t.Fatal(err)
	}
	// Step into the loop.
	for i := 0; i < 10000 && !cl.InConcurrentLoop(); i++ {
		cl.Step()
	}
	if !cl.InConcurrentLoop() {
		t.Fatal("never entered the loop")
	}
	if _, ok := cl.Preempt(); ok {
		t.Fatal("preempt during a concurrent loop must be refused")
	}
}

func TestPreemptWhenIdle(t *testing.T) {
	cl := New(quietConfig())
	if _, ok := cl.Preempt(); ok {
		t.Fatal("preempt of idle cluster should fail")
	}
}

func TestSnapshotBeforeStep(t *testing.T) {
	cl := New(quietConfig())
	rec := cl.Snapshot()
	if rec.ActiveCount() != 0 || rec.BusyCount() != 0 {
		t.Error("pre-step snapshot should be empty")
	}
}

func TestSnapshotActiveMatchesCluster(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(32, 15), 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20000 && !cl.Idle(); i++ {
		cl.Step()
		rec := cl.Snapshot()
		if rec.ActiveCount() != cl.ActiveCount() {
			t.Fatalf("snapshot active %d != cluster active %d",
				rec.ActiveCount(), cl.ActiveCount())
		}
	}
}

// fixedMMU stalls every access by a constant and counts touches.
type fixedMMU struct {
	stall   int
	touches int
}

func (m *fixedMMU) Touch(ce int, addr uint32) int {
	m.touches++
	return m.stall
}

func TestMMUHookStallsCE(t *testing.T) {
	cfg := quietConfig()
	clFast := New(cfg)
	clSlow := New(cfg)
	mmu := &fixedMMU{stall: 50}
	clSlow.SetMMU(mmu)

	prog := func() *SliceStream {
		s := &SliceStream{}
		for i := 0; i < 10; i++ {
			s.Instrs = append(s.Instrs, Instr{Op: OpLoad, Addr: uint32(i * 64), IAddr: uint32(i * 4)})
		}
		return s
	}
	if err := clFast.Run(prog(), 8); err != nil {
		t.Fatal(err)
	}
	if err := clSlow.Run(prog(), 8); err != nil {
		t.Fatal(err)
	}
	fast, slow := 0, 0
	for ; fast < 100000 && !clFast.Idle(); fast++ {
		clFast.Step()
	}
	for ; slow < 100000 && !clSlow.Idle(); slow++ {
		clSlow.Step()
	}
	if mmu.touches != 10 {
		t.Errorf("touches = %d, want 10", mmu.touches)
	}
	if slow <= fast+10*40 {
		t.Errorf("MMU stalls should slow execution: fast=%d slow=%d", fast, slow)
	}
}

func TestIPTrafficAppearsOnMemoryBus(t *testing.T) {
	cfg := DefaultConfig() // IPs enabled
	cfg.IPActivity = 500
	cl := New(cfg)
	sawIP := false
	for i := 0; i < 5000; i++ {
		cl.Step()
		rec := cl.Snapshot()
		for _, m := range rec.Mem {
			if m == trace.MemIPRead || m == trace.MemIPWrite {
				sawIP = true
			}
		}
	}
	if !sawIP {
		t.Error("IP traffic never observed on the memory bus")
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []trace.Record {
		cl := New(DefaultConfig())
		if err := cl.Run(loopProgram(32, 25), 8); err != nil {
			t.Fatal(err)
		}
		var recs []trace.Record
		for i := 0; i < 20000; i++ {
			cl.Step()
			recs = append(recs, cl.Snapshot())
		}
		return recs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at cycle %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestArbitrationBiasSlowsDisfavoredCEs(t *testing.T) {
	// Under contention, CEs with zero bias must accumulate more
	// crossbar wait cycles than strongly favored CEs.
	cfg := quietConfig()
	cfg.ArbBias = []int{0, 8, 8, 8, 8, 8, 8, 0}
	cl := New(cfg)
	// Data-intensive loop: all CEs stream vectors continuously.
	loop := &Loop{
		Trips: 200,
		Body: func(iter int) Stream {
			base := uint32(0x100000 + iter*0x4000)
			return &SliceStream{Instrs: []Instr{
				{Op: OpVLoad, Addr: base, N: 64, IAddr: 0x8000},
				{Op: OpVLoad, Addr: base + 0x1000, N: 64, IAddr: 0x8004},
			}}
		},
	}
	serial := &SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: loop, IAddr: 0}}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 2000000)
	disfavored := cl.CE(0).XbarWaitCycles + cl.CE(7).XbarWaitCycles
	favored := cl.CE(3).XbarWaitCycles + cl.CE(4).XbarWaitCycles
	if disfavored <= favored {
		t.Errorf("disfavored wait %d should exceed favored wait %d", disfavored, favored)
	}
}

func TestInstrStreams(t *testing.T) {
	s := &SliceStream{Instrs: []Instr{{Op: OpCompute, N: 1}, {Op: OpCompute, N: 2}}}
	in, ok := s.Next()
	if !ok || in.N != 1 {
		t.Fatal("first instruction wrong")
	}
	s.Next()
	if _, ok := s.Next(); ok {
		t.Fatal("stream should be exhausted")
	}
	s.Reset()
	if _, ok := s.Next(); !ok {
		t.Fatal("reset should rewind")
	}

	calls := 0
	f := FuncStream(func() (Instr, bool) {
		calls++
		if calls > 2 {
			return Instr{}, false
		}
		return Instr{Op: OpCompute, N: int32(calls)}, true
	})
	n := 0
	for {
		if _, ok := f.Next(); !ok {
			break
		}
		n++
	}
	if n != 2 {
		t.Fatalf("FuncStream yielded %d", n)
	}

	c := &ConcatStream{Streams: []Stream{
		&SliceStream{Instrs: []Instr{{Op: OpCompute, N: 1}}},
		&SliceStream{},
		&SliceStream{Instrs: []Instr{{Op: OpCompute, N: 2}}},
	}}
	var got []int32
	for {
		in, ok := c.Next()
		if !ok {
			break
		}
		got = append(got, in.N)
	}
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("ConcatStream yielded %v", got)
	}
}
