package fx8

import (
	"testing"

	"repro/internal/trace"
)

// Additional behavioural tests: opcode emission, store paths, write
// backs, cluster-size edge cases, and monitor-visible semantics.

func TestStoreMissEmitsWriteMissOpcode(t *testing.T) {
	cl := New(quietConfig())
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpStore, Addr: 0x5000, IAddr: 0},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	saw := false
	for i := 0; i < 1000 && !cl.Idle(); i++ {
		cl.Step()
		if cl.Snapshot().CE[0] == trace.CEWriteMiss {
			saw = true
		}
	}
	if !saw {
		t.Error("cold store should emit WRITE.MISS")
	}
}

func TestStoreHitEmitsWriteOpcode(t *testing.T) {
	cl := New(quietConfig())
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpLoad, Addr: 0x5000, IAddr: 0},
		{Op: OpStore, Addr: 0x5000, IAddr: 4},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	saw := false
	for i := 0; i < 1000 && !cl.Idle(); i++ {
		cl.Step()
		if cl.Snapshot().CE[0] == trace.CEWrite {
			saw = true
		}
	}
	if !saw {
		t.Error("store after load should hit and emit WRITE")
	}
}

func TestFetchMissEmitsFetchOpcodes(t *testing.T) {
	cl := New(quietConfig())
	// A compute instruction at a cold code address: the fetch goes to
	// the shared cache and misses there too.
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpCompute, N: 1, IAddr: 0x9999000},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	sawFetchMiss := false
	for i := 0; i < 1000 && !cl.Idle(); i++ {
		cl.Step()
		op := cl.Snapshot().CE[0]
		if op == trace.CEFetchMiss {
			sawFetchMiss = true
		}
	}
	if !sawFetchMiss {
		t.Error("cold instruction fetch should emit FETCH.MISS")
	}
}

func TestDirtyEvictionDrivesWriteBack(t *testing.T) {
	cfg := quietConfig()
	cl := New(cfg)
	// Dirty a line, then stream enough conflicting lines to evict it.
	stride := uint32(cfg.SharedCacheBytes) // same set, different tag
	var instrs []Instr
	instrs = append(instrs, Instr{Op: OpStore, Addr: 0x40, IAddr: 0})
	for w := 1; w <= cfg.SharedWays+1; w++ {
		instrs = append(instrs, Instr{Op: OpLoad, Addr: 0x40 + uint32(w)*stride, IAddr: 4})
	}
	if err := cl.Run(&SliceStream{Instrs: instrs}, 8); err != nil {
		t.Fatal(err)
	}
	sawWB := false
	for i := 0; i < 5000 && !cl.Idle(); i++ {
		cl.Step()
		for _, m := range cl.Snapshot().Mem {
			if m == trace.MemWrite {
				sawWB = true
			}
		}
	}
	if !sawWB {
		t.Error("dirty eviction should drive a write-back on the memory bus")
	}
	if cl.Cache().WriteBacks == 0 {
		t.Error("write-back statistic should advance")
	}
}

func TestClusterSizeOneLoopRunsSerially(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(8, 10), 1); err != nil {
		t.Fatal(err)
	}
	maxActive := 0
	for i := 0; i < 100000 && !cl.Idle(); i++ {
		cl.Step()
		if n := cl.ActiveCount(); n > maxActive {
			maxActive = n
		}
	}
	if maxActive != 1 {
		t.Fatalf("max active = %d, want 1", maxActive)
	}
	if cl.CCBus().IterationsRun != 8 {
		t.Fatalf("iterations = %d, want 8 (run one at a time)", cl.CCBus().IterationsRun)
	}
}

func TestClusterSizeClamped(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(computeStream(5, 1), 99); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	cl2 := New(quietConfig())
	if err := cl2.Run(computeStream(5, 1), -3); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl2, 10000)
}

func TestBackToBackLoops(t *testing.T) {
	cl := New(quietConfig())
	mkLoop := func() *Loop {
		return &Loop{
			Trips: 10,
			Body: func(int) Stream {
				return &SliceStream{Instrs: []Instr{{Op: OpCompute, N: 5, IAddr: 0x8000}}}
			},
		}
	}
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpCStart, Loop: mkLoop(), IAddr: 0},
		{Op: OpCStart, Loop: mkLoop(), IAddr: 4},
		{Op: OpCStart, Loop: mkLoop(), IAddr: 8},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 100000)
	if cl.CCBus().LoopsStarted != 3 || cl.CCBus().IterationsRun != 30 {
		t.Fatalf("loops=%d iters=%d", cl.CCBus().LoopsStarted, cl.CCBus().IterationsRun)
	}
}

func TestSerialMigratesToLastIterationCE(t *testing.T) {
	// After a loop, serial execution continues on the CE that ran the
	// final iteration — which need not be CE 0.
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(17, 30), 8); err != nil {
		t.Fatal(err)
	}
	migrated := false
	for i := 0; i < 100000 && !cl.Idle(); i++ {
		cl.Step()
		for ce := 1; ce < 8; ce++ {
			if cl.CE(ce).mode == ceSerial {
				migrated = true
			}
		}
	}
	if !migrated {
		t.Log("serial stayed on CE 0 (possible but unusual); not failing")
	}
}

func TestIPInvalidationReachesCECache(t *testing.T) {
	cfg := DefaultConfig()
	cfg.IPActivity = 900
	cfg.IPInvalidate = 1000 // every IP write attempts an invalidation
	cfg.Seed = 7
	cl := New(cfg)
	// Fill the cache densely with lines in the IP-reachable address
	// span so random IP writes have a realistic chance of hitting a
	// resident line.
	var instrs []Instr
	for a := uint32(0); a < 64<<10; a += 32 {
		instrs = append(instrs, Instr{Op: OpLoad, Addr: a, IAddr: 0})
	}
	if err := cl.Run(&SliceStream{Instrs: instrs}, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500000 && cl.Cache().Invalidations == 0; i++ {
		cl.Step()
		if cl.Idle() {
			// Keep the machine ticking so IPs continue.
			break
		}
	}
	// Run extra cycles with the cache populated.
	for i := 0; i < 500000 && cl.Cache().Invalidations == 0; i++ {
		cl.Step()
	}
	if cl.Cache().Invalidations == 0 {
		t.Error("IP coherence invalidations never occurred")
	}
}

func TestAwaitImmediatelySatisfied(t *testing.T) {
	// Await on a negative stage (iteration 0 of a dep loop) must not
	// block.
	cl := New(quietConfig())
	loop := &Loop{
		Trips: 1,
		Body: func(iter int) Stream {
			return &SliceStream{Instrs: []Instr{
				{Op: OpAwait, N: -1, IAddr: 0x8000},
				{Op: OpCompute, N: 2, IAddr: 0x8004},
			}}
		},
	}
	serial := &SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: loop, IAddr: 0}}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
}

func TestVectorStoreDirtiesLines(t *testing.T) {
	cfg := quietConfig()
	cl := New(cfg)
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpVStore, Addr: 0x40000, N: 32, IAddr: 0},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	// Evicting those lines later must produce write-backs; verify via
	// direct cache inspection: re-stream conflicting addresses.
	if !cl.Cache().Contains(0x40000) {
		t.Fatal("stored line should be resident")
	}
}

func TestZeroLengthVector(t *testing.T) {
	cl := New(quietConfig())
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpVLoad, Addr: 0x40000, N: 0, IAddr: 0},
		{Op: OpCompute, N: 1, IAddr: 4},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
}

func TestCStartInsideLoopPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nested CStart should panic")
		}
	}()
	cl := New(quietConfig())
	inner := &Loop{Trips: 1, Body: func(int) Stream {
		return &SliceStream{Instrs: []Instr{{Op: OpCompute, N: 1, IAddr: 0}}}
	}}
	outer := &Loop{Trips: 1, Body: func(int) Stream {
		return &SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: inner, IAddr: 4}}}
	}}
	serial := &SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: outer, IAddr: 0}}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10000 && !cl.Idle(); i++ {
		cl.Step()
	}
}

func TestCCBDispatchExtraOrdersIterationStarts(t *testing.T) {
	// With a strong dispatch asymmetry, the unbiased CEs complete
	// more iterations of a long uniform loop.
	cfg := quietConfig()
	cfg.CCBDispatchExtra = []int{0, 200, 200, 200, 200, 200, 200, 0}
	cl := New(cfg)
	perCE := make([]int, 8)
	loop := &Loop{
		Trips: 400,
		Body: func(iter int) Stream {
			return &SliceStream{Instrs: []Instr{{Op: OpCompute, N: 50, IAddr: 0x8000}}}
		},
	}
	serial := &SliceStream{Instrs: []Instr{{Op: OpCStart, Loop: loop, IAddr: 0}}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	prev := make([]int, 8)
	for i := 0; i < 1000000 && !cl.Idle(); i++ {
		cl.Step()
		for ce := 0; ce < 8; ce++ {
			if it := cl.CE(ce).iter; cl.CE(ce).mode == ceConc && it != prev[ce] {
				perCE[ce]++
				prev[ce] = it
			}
		}
	}
	if perCE[0] <= perCE[1] || perCE[7] <= perCE[4] {
		t.Errorf("fast CEs should run more iterations: %v", perCE)
	}
}

func TestMissRateStatisticsConsistent(t *testing.T) {
	cl := New(quietConfig())
	if err := cl.Run(loopProgram(32, 20), 8); err != nil {
		t.Fatal(err)
	}
	var missWire uint64
	for i := 0; i < 100000 && !cl.Idle(); i++ {
		cl.Step()
		missWire += uint64(cl.Snapshot().MissCount())
	}
	var missCE uint64
	for i := 0; i < 8; i++ {
		missCE += cl.CE(i).MissCycles
	}
	if missWire != missCE {
		t.Errorf("wire-observed misses %d != CE counters %d", missWire, missCE)
	}
	if missCE != cl.Cache().Misses {
		t.Errorf("CE miss cycles %d != cache misses %d", missCE, cl.Cache().Misses)
	}
}

func TestAccessorsAndValidateBranches(t *testing.T) {
	cl := New(quietConfig())
	if cl.CE(3).ID() != 3 {
		t.Error("CE ID accessor wrong")
	}
	if cl.Config().NumCE != 8 {
		t.Error("Config accessor wrong")
	}
	if cl.Mem() == nil {
		t.Error("Mem accessor nil")
	}

	// Exercise every Validate branch not covered elsewhere.
	bad := func(mut func(*Config)) {
		t.Helper()
		cfg := DefaultConfig()
		mut(&cfg)
		if cfg.Validate() == nil {
			t.Errorf("expected invalid config after mutation: %+v", cfg)
		}
	}
	bad(func(c *Config) { c.ICacheBytes = 4 })
	bad(func(c *Config) { c.SharedModules = 3 })
	bad(func(c *Config) { c.SharedWays = 0 })
	bad(func(c *Config) { c.LookupsPerModule = 0 })
	bad(func(c *Config) { c.MemBuses = 0 })
	bad(func(c *Config) { c.FillCycles = 0 })
	bad(func(c *Config) { c.WriteBackCycles = 0 })
	bad(func(c *Config) { c.VectorLaneBytes = 0 })
	bad(func(c *Config) { c.CStartCycles = -1 })
	bad(func(c *Config) { c.CCBDispatchExtra = []int{1} })
}

func TestZeroLengthVectorIsNop(t *testing.T) {
	cl := New(quietConfig())
	serial := &SliceStream{Instrs: []Instr{
		{Op: OpVLoad, Addr: 0x40000, N: 0, IAddr: 0},
	}}
	if err := cl.Run(serial, 8); err != nil {
		t.Fatal(err)
	}
	runUntilIdle(t, cl, 10000)
	// Only the instruction fetch touches the cache; the vector op
	// itself generates no data access.
	if cl.Cache().Hits+cl.Cache().Misses > 1 {
		t.Errorf("zero-length vector generated data accesses: %d lookups",
			cl.Cache().Hits+cl.Cache().Misses)
	}
}

func TestProductLineConfigs(t *testing.T) {
	for name, cfg := range map[string]Config{
		"FX/1": FX1Config(),
		"FX/4": FX4Config(),
		"FX/8": DefaultConfig(),
	} {
		if err := cfg.Validate(); err != nil {
			t.Errorf("%s config invalid: %v", name, err)
		}
	}
	// An FX/4 runs a loop at most 4 wide.
	cfg := FX4Config()
	cfg.NumIP = 0
	cl := New(cfg)
	if err := cl.Run(loopProgram(32, 20), 8); err != nil {
		t.Fatal(err)
	}
	maxActive := 0
	for i := 0; i < 200000 && !cl.Idle(); i++ {
		cl.Step()
		if n := cl.ActiveCount(); n > maxActive {
			maxActive = n
		}
	}
	if maxActive != 4 {
		t.Errorf("FX/4 max active = %d, want 4", maxActive)
	}
	// An FX/1 executes everything serially.
	cfg1 := FX1Config()
	cfg1.NumIP = 0
	cl1 := New(cfg1)
	if err := cl1.Run(loopProgram(8, 10), 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200000 && !cl1.Idle(); i++ {
		cl1.Step()
		if cl1.ActiveCount() > 1 {
			t.Fatal("FX/1 can never have more than one active CE")
		}
	}
}
