package fx8

import (
	"fmt"

	"repro/internal/trace"
)

// ceMode is the execution state of a Computational Element.
type ceMode uint8

const (
	ceIdle    ceMode = iota // no work; not counted active
	ceSerial                // executing the process's serial thread
	ceConc                  // executing a self-scheduled loop iteration
	ceAwait                 // blocked on CCB dependence synchronization
	ceBarrier               // ran the final iteration; waiting for stragglers
)

// lookup continuation kinds: what an outstanding cache access
// completes when it is granted.
type lookupKind uint8

const (
	lkScalar lookupKind = iota // completes a scalar load/store
	lkVector                   // completes one vector line crossing
	lkFetch                    // completes an instruction fetch
)

// CE is one Computational Element of the cluster.
type CE struct {
	id     int
	icache *icache

	mode   ceMode
	stream Stream
	iter   int

	// Current instruction state.
	cur     Instr
	hasCur  bool
	fetched bool

	computeLeft int
	vecLeft     int
	vecAddr     uint32
	vecWrite    bool
	vecLine     uint32 // line currently streaming (valid when vecLineOK)
	vecLineOK   bool

	// Outstanding cache access.
	wantLookup  bool
	lookupAddr  uint32
	lookupWrite bool
	lookupKind  lookupKind
	waited      int
	granted     bool

	stall      int
	awaitStage int

	// bodyBuf is the CE's private loop-body buffer: loops built with
	// BodyInto materialize each self-scheduled iteration here, reusing
	// the backing array, so iteration dispatch allocates nothing after
	// the first few iterations grow it to the largest body seen.
	bodyBuf SliceStream

	// busOp is the opcode driven on this CE's bus in the cycle just
	// executed — the wire the monitor probes.
	busOp trace.CEOp

	// Statistics.
	InstrsRetired  uint64
	BusBusyCycles  uint64
	MissCycles     uint64
	StallCycles    uint64
	AwaitCycles    uint64
	XbarWaitCycles uint64
}

func newCE(id int, cfg Config) CE {
	return CE{id: id, icache: newICache(cfg.ICacheBytes, cfg.LineBytes)}
}

// ID returns the CE's index within the cluster.
func (ce *CE) ID() int { return ce.id }

// Active reports whether the CE counts as active for the monitor's
// per-record activity bit: executing serially, executing or stalled
// inside a concurrent iteration, or waiting on dependence
// synchronization.  Barrier wait (out of iterations) and idle are
// inactive — the states whose onset the transition study measures.
func (ce *CE) Active() bool {
	switch ce.mode {
	case ceSerial, ceConc, ceAwait:
		return true
	}
	return false
}

// BusOp returns the opcode driven on the CE bus during the last
// executed cycle.
func (ce *CE) BusOp() trace.CEOp { return ce.busOp }

// reset returns the CE to the idle state, clearing any in-flight
// work.  Used on process switch.
func (ce *CE) reset(cl *Cluster) {
	ce.mode = ceIdle
	ce.stream = nil
	ce.hasCur = false
	ce.fetched = false
	ce.computeLeft = 0
	ce.vecLeft = 0
	ce.vecLineOK = false
	if ce.wantLookup {
		cl.wantLookups--
	}
	ce.wantLookup = false
	ce.granted = false
	ce.waited = 0
	ce.stall = 0
	ce.busOp = trace.CEIdle
	ce.icache.invalidate()
}

// step executes one cycle.  The cluster has already run crossbar
// arbitration, so ce.granted tells the CE whether an outstanding
// lookup proceeds this cycle.
func (ce *CE) step(cl *Cluster) {
	ce.busOp = trace.CEIdle

	switch ce.mode {
	case ceIdle:
		// An idle CE of the cluster process joins a running loop by
		// self-scheduling an iteration over the CCB.
		if cl.ccb.Running() && ce.id < cl.clusterSize {
			if it, ok := cl.ccb.Take(ce.id); ok {
				ce.beginIteration(cl, it)
			}
		}
		return
	case ceBarrier:
		return
	case ceAwait:
		ce.AwaitCycles++
		if !cl.ccb.StageReached(ce.awaitStage) {
			return
		}
		ce.mode = ceConc
	}

	if ce.stall > 0 {
		ce.stall--
		ce.StallCycles++
		return
	}

	if ce.wantLookup {
		if !ce.granted {
			ce.waited++
			ce.XbarWaitCycles++
			return
		}
		ce.granted = false
		ce.wantLookup = false
		cl.wantLookups--
		ce.waited = 0
		ce.performLookup(cl)
		return
	}

	ce.exec(cl)
}

// exec advances the instruction state machine by one cycle.
func (ce *CE) exec(cl *Cluster) {
	if ce.computeLeft > 0 {
		ce.computeLeft--
		ce.InstrsRetired++
		return
	}
	if ce.vecLeft > 0 {
		ce.vecElement(cl)
		return
	}
	if !ce.hasCur {
		if ce.stream == nil {
			ce.streamEnded(cl)
			return
		}
		in, ok := ce.stream.Next()
		if !ok {
			ce.streamEnded(cl)
			return
		}
		ce.cur = in
		ce.hasCur = true
		ce.fetched = false
	}
	if !ce.fetched {
		if ce.icache.lookup(ce.cur.IAddr) {
			ce.fetched = true
		} else {
			// Instruction fetch forwarded to the shared cache.
			ce.postLookup(cl, ce.cur.IAddr, false, lkFetch)
			return
		}
	}
	ce.dispatch(cl)
}

// dispatch begins executing the fetched current instruction; the
// dispatch cycle performs the first cycle of work.
func (ce *CE) dispatch(cl *Cluster) {
	in := ce.cur
	switch in.Op {
	case OpCompute, OpVCompute:
		ce.hasCur = false
		ce.InstrsRetired++
		if in.N > 1 {
			ce.computeLeft = int(in.N) - 1
		}
	case OpLoad:
		ce.postLookup(cl, in.Addr, false, lkScalar)
	case OpStore:
		ce.postLookup(cl, in.Addr, true, lkScalar)
	case OpVLoad, OpVStore:
		ce.hasCur = false
		if in.N <= 0 {
			// Zero-length vector operations retire as no-ops.
			ce.InstrsRetired++
			return
		}
		ce.vecLeft = int(in.N)
		ce.vecAddr = in.Addr
		ce.vecWrite = in.Op == OpVStore
		ce.vecLineOK = false
		ce.vecElement(cl)
	case OpCStart:
		if cl.ccb.Running() {
			panic(fmt.Sprintf("fx8: CE %d issued OpCStart inside a concurrent loop", ce.id))
		}
		if ce.mode != ceSerial {
			panic(fmt.Sprintf("fx8: CE %d issued OpCStart outside serial mode", ce.id))
		}
		ce.hasCur = false
		ce.InstrsRetired++
		cl.beginLoop(in.Loop, ce)
	case OpAdvance:
		ce.hasCur = false
		ce.InstrsRetired++
		cl.ccb.Advance(int(in.N))
	case OpAwait:
		ce.hasCur = false
		ce.InstrsRetired++
		if !cl.ccb.StageReached(int(in.N)) {
			ce.awaitStage = int(in.N)
			ce.mode = ceAwait
		}
	default:
		panic(fmt.Sprintf("fx8: CE %d: unknown opcode %d", ce.id, in.Op))
	}
}

// vecElement advances a streaming vector memory operation by one
// element: line crossings require a shared-cache lookup; elements
// within a resident line stream one per bus cycle.
func (ce *CE) vecElement(cl *Cluster) {
	line := ce.vecAddr >> cl.lineShift
	if !ce.vecLineOK || line != ce.vecLine {
		ce.postLookup(cl, ce.vecAddr, ce.vecWrite, lkVector)
		return
	}
	ce.driveBus(busOpFor(ce.vecWrite, false, false))
	ce.consumeElement(cl)
}

// consumeElement retires one vector element.
func (ce *CE) consumeElement(cl *Cluster) {
	ce.vecLeft--
	ce.vecAddr += cl.laneBytes
	ce.InstrsRetired++
	if ce.vecLeft == 0 {
		ce.vecLineOK = false
	}
}

// postLookup records an outstanding shared-cache access and consults
// the MMU; a page fault stalls the CE before the access is eligible
// for arbitration.
func (ce *CE) postLookup(cl *Cluster, addr uint32, write bool, kind lookupKind) {
	if !ce.wantLookup {
		cl.wantLookups++
	}
	ce.wantLookup = true
	ce.lookupAddr = addr
	ce.lookupWrite = write
	ce.lookupKind = kind
	ce.waited = 0
	if cl.mmu != nil && kind != lkFetch {
		if s := cl.mmu.Touch(ce.id, addr); s > 0 {
			ce.stall = s
		}
	}
}

// performLookup executes a granted cache access and drives the CE bus
// with the (possibly miss-qualified) opcode.
func (ce *CE) performLookup(cl *Cluster) {
	res := cl.cache.Lookup(ce.lookupAddr, ce.lookupWrite)
	if res.WriteBack {
		bus := cl.mem.BusFor(cl.cache.Module(res.VictimAddr))
		cl.mem.Enqueue(bus, trace.MemWrite, cl.cfg.WriteBackCycles, cl.cycle)
	}
	fetch := ce.lookupKind == lkFetch
	if res.Hit {
		ce.driveBus(busOpFor(ce.lookupWrite, false, fetch))
	} else {
		ce.driveBus(busOpFor(ce.lookupWrite, true, fetch))
		ce.MissCycles++
		bus := cl.mem.BusFor(res.Module)
		end := cl.mem.Enqueue(bus, trace.MemRead, cl.cfg.FillCycles, cl.cycle)
		// end-cl.cycle is this fill's queue wait plus service time,
		// bounded by the handful of transactions ahead of it on the
		// bus — it fits int on every GOARCH.
		ce.stall = int(end-cl.cycle) + cl.cfg.MissExtraCycles //fxlint:allow truncation
	}

	switch ce.lookupKind {
	case lkScalar:
		ce.hasCur = false
		ce.InstrsRetired++
	case lkVector:
		ce.vecLine = ce.lookupAddr >> cl.lineShift
		ce.vecLineOK = true
		ce.consumeElement(cl)
	case lkFetch:
		ce.fetched = true
	}
}

// driveBus sets the CE bus opcode for this cycle.
func (ce *CE) driveBus(op trace.CEOp) {
	ce.busOp = op
	ce.BusBusyCycles++
}

// busOpFor selects the CE bus opcode for an access.
func busOpFor(write, miss, fetch bool) trace.CEOp {
	switch {
	case fetch && miss:
		return trace.CEFetchMiss
	case fetch:
		return trace.CEFetch
	case write && miss:
		return trace.CEWriteMiss
	case write:
		return trace.CEWrite
	case miss:
		return trace.CEReadMiss
	default:
		return trace.CERead
	}
}

// streamEnded handles exhaustion of the CE's current stream: end of
// the serial thread terminates the process; end of a loop-body stream
// completes the iteration and self-schedules the next.
func (ce *CE) streamEnded(cl *Cluster) {
	switch ce.mode {
	case ceSerial:
		ce.mode = ceIdle
		ce.stream = nil
		cl.processDone()
	case ceConc:
		loopDone := cl.ccb.Complete(ce.iter)
		if it, ok := cl.ccb.Take(ce.id); ok {
			ce.beginIteration(cl, it)
			return
		}
		if loopDone {
			cl.endLoop()
			return
		}
		// Out of iterations but stragglers remain.  The CE that ran
		// the final iteration parks at the barrier so serial
		// execution can resume there; others go idle.
		ce.stream = nil
		if cl.ccb.LastCE() == ce.id {
			ce.mode = ceBarrier
		} else {
			ce.mode = ceIdle
		}
	default:
		panic(fmt.Sprintf("fx8: CE %d stream ended in mode %d", ce.id, ce.mode))
	}
}

// beginIteration installs a self-scheduled iteration; the CCB dispatch
// costs one cycle plus the CE's position-dependent daisy-chain
// latency.
func (ce *CE) beginIteration(cl *Cluster, iter int) {
	ce.installBody(cl.ccb.loop, iter)
	ce.mode = ceConc
	ce.stall = 1
	if cl.cfg.CCBDispatchExtra != nil {
		ce.stall += cl.cfg.CCBDispatchExtra[ce.id]
	}
}

// installBody points the CE's stream at the body of iteration iter:
// into the CE's private reusable buffer when the loop provides
// BodyInto, through the allocating Body callback otherwise.
func (ce *CE) installBody(loop *Loop, iter int) {
	ce.iter = iter
	if loop.BodyInto != nil {
		ce.bodyBuf.Instrs = ce.bodyBuf.Instrs[:0]
		ce.bodyBuf.pos = 0
		loop.BodyInto(iter, &ce.bodyBuf)
		ce.stream = &ce.bodyBuf
		return
	}
	ce.stream = loop.Body(iter)
}

// hardReset returns the CE to its just-constructed state — idle, no
// statistics, instruction cache invalid — while keeping the
// allocations that survive a session: the icache arrays and the
// loop-body buffer's backing array.
func (ce *CE) hardReset() {
	id, ic, body := ce.id, ce.icache, ce.bodyBuf.Instrs[:0]
	*ce = CE{id: id, icache: ic}
	ce.bodyBuf.Instrs = body
	ic.reset()
}
