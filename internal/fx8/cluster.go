package fx8

import (
	"errors"
	"math/rand/v2"

	"repro/internal/trace"
)

// Cluster is the simulated Computational Cluster: the CEs, shared
// cache, crossbar, memory buses, CCB and IPs assembled per a Config,
// stepped one bus cycle at a time.
//
// An operating system layer installs one cluster process at a time via
// Run; the process's serial thread executes on one CE and concurrent
// loops fan out over the CCB.  Snapshot exposes the probe wires after
// each Step.
type Cluster struct {
	cfg       Config
	cycle     uint64
	lineShift uint // derived from cfg.LineBytes; fxlint:keep

	// Invariant configuration values hoisted out of the per-cycle
	// paths: cfg is consulted once at construction, not per step.
	// Reset keeps the configuration (only the seed changes), so the
	// derived values survive it too.
	laneBytes  uint32 // cfg.VectorLaneBytes; fxlint:keep
	lookupsCap int    // cfg.LookupsPerModule; fxlint:keep
	arbBias    []int  // cfg.ArbBias; fxlint:keep

	ces   []CE
	cache *SharedCache
	mem   *MemSystem
	ccb   *CCB
	ips   []IP
	mmu   MMU // the OS re-installs its hook; kept across Reset (fxlint:keep)

	serialStream Stream
	clusterSize  int
	running      bool

	// wantLookups counts CEs with an outstanding shared-cache access,
	// so arbitration can skip its scan entirely on the (frequent)
	// cycles with no requests.
	wantLookups int

	// Arbitration scratch (reused each cycle).  capacity is fully
	// rewritten at the top of every arbitrate pass, so Reset leaves
	// it alone.
	reqBuf   []*CE
	capacity []int // fxlint:keep
}

// New builds a cluster from cfg.  It panics on an invalid
// configuration; use cfg.Validate first when the configuration is not
// statically known.
func New(cfg Config) *Cluster {
	if err := cfg.Validate(); err != nil {
		panic(err)
	}
	lineShift := uint(0)
	for 1<<lineShift < cfg.LineBytes {
		lineShift++
	}
	cl := &Cluster{
		cfg:        cfg,
		lineShift:  lineShift,
		laneBytes:  uint32(cfg.VectorLaneBytes),
		lookupsCap: cfg.LookupsPerModule,
		arbBias:    cfg.ArbBias,
		cache:      NewSharedCache(cfg),
		mem:        NewMemSystem(cfg.MemBuses),
		ccb:        NewCCB(),
		capacity:   make([]int, cfg.SharedModules),
	}
	// CEs and IPs live in value slices: the per-cycle loops walk one
	// contiguous block instead of chasing eight heap pointers.
	cl.ces = make([]CE, cfg.NumCE)
	for i := range cl.ces {
		cl.ces[i] = newCE(i, cfg)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x1F8))
	cl.ips = make([]IP, cfg.NumIP)
	for i := range cl.ips {
		cl.ips[i] = newIP(i, rng.Uint64())
	}
	return cl
}

// Reset returns the cluster to the state New(cfg) would produce with
// cfg.Seed = seed, reusing every allocation — the CE and IP slices,
// the cache line arrays, the bus queues, the CCB and the arbitration
// scratch — so a worker can rebuild a session's machine in place
// instead of booting a fresh cluster.  The installed MMU hook is
// kept.  Execution after Reset is bit-identical to execution on a
// freshly constructed cluster with the same configuration and seed.
func (cl *Cluster) Reset(seed uint64) {
	cl.cfg.Seed = seed
	cl.cycle = 0
	cl.serialStream = nil
	cl.clusterSize = 0
	cl.running = false
	cl.wantLookups = 0
	cl.reqBuf = cl.reqBuf[:0]
	for i := range cl.ces {
		cl.ces[i].hardReset()
	}
	cl.cache.Reset()
	cl.mem.Reset()
	cl.ccb.Reset()
	// Re-seed the IP traffic sources exactly as New does.
	rng := rand.New(rand.NewPCG(seed, 0x1F8))
	for i := range cl.ips {
		cl.ips[i] = newIP(i, rng.Uint64())
	}
}

// Config returns the cluster's configuration.
func (cl *Cluster) Config() Config { return cl.cfg }

// Cache exposes the shared cache for statistics inspection.
func (cl *Cluster) Cache() *SharedCache { return cl.cache }

// Mem exposes the memory system for statistics inspection.
func (cl *Cluster) Mem() *MemSystem { return cl.mem }

// CCBus exposes the concurrency control bus for statistics inspection.
func (cl *Cluster) CCBus() *CCB { return cl.ccb }

// CE returns computational element i.
func (cl *Cluster) CE(i int) *CE { return &cl.ces[i] }

// Cycle returns the number of cycles executed.
func (cl *Cluster) Cycle() uint64 { return cl.cycle }

// SetMMU installs the operating system's virtual memory hook.
func (cl *Cluster) SetMMU(m MMU) { cl.mmu = m }

// ErrBusy is returned by Run when a process is already installed.
var ErrBusy = errors.New("fx8: cluster already running a process")

// Run installs a cluster process: its serial thread begins on CE 0 and
// concurrent loops may fan out over up to clusterSize CEs (clamped to
// the configured CE count), matching Concentrix's cluster-with-k-CEs
// resource classes.
func (cl *Cluster) Run(serial Stream, clusterSize int) error {
	if cl.running {
		return ErrBusy
	}
	if clusterSize < 1 {
		clusterSize = 1
	}
	if clusterSize > cl.cfg.NumCE {
		clusterSize = cl.cfg.NumCE
	}
	cl.clusterSize = clusterSize
	cl.running = true
	ce := &cl.ces[0]
	ce.reset(cl)
	ce.mode = ceSerial
	ce.stream = serial
	return nil
}

// Idle reports whether no process is installed.
func (cl *Cluster) Idle() bool { return !cl.running }

// InConcurrentLoop reports whether a concurrent loop is executing.
func (cl *Cluster) InConcurrentLoop() bool { return cl.ccb.Running() }

// Preempt removes the current process at a serial point and returns
// its serial stream so a scheduler can reinstall it later.  Preemption
// during a concurrent loop is refused (ok=false): Concentrix
// deschedules cluster jobs between, not inside, concurrent operations.
func (cl *Cluster) Preempt() (serial Stream, ok bool) {
	if !cl.running || cl.ccb.Running() {
		return nil, false
	}
	for i := range cl.ces {
		ce := &cl.ces[i]
		if ce.mode == ceSerial {
			s := ce.stream
			if ce.hasCur {
				// The CE had already pulled an instruction from the
				// stream; requeue it so no work is lost across the
				// context switch.
				s = &ConcatStream{Streams: []Stream{
					&SliceStream{Instrs: []Instr{ce.cur}},
					s,
				}}
			}
			ce.reset(cl)
			cl.running = false
			return s, true
		}
	}
	return nil, false
}

// Step executes one bus cycle: crossbar arbitration, then every CE,
// then the IPs.
func (cl *Cluster) Step() {
	cl.arbitrate()
	for i := range cl.ces {
		ce := &cl.ces[i]
		// An idle CE with no loop to join does nothing in step:
		// every transition into ceIdle leaves busOp at CEIdle, so
		// skipping preserves the probe wires exactly.  The CCB state
		// is re-read per CE because an earlier CE may start a loop
		// this very cycle, which the rest must join immediately.
		if ce.mode == ceIdle && !cl.ccb.running {
			continue
		}
		ce.step(cl)
	}
	for i := range cl.ips {
		cl.ips[i].step(cl)
	}
	cl.cycle++
}

// StepN executes n cycles.
func (cl *Cluster) StepN(n int) {
	for i := 0; i < n; i++ {
		cl.Step()
	}
}

// arbitrate grants pending shared-cache lookups up to each module's
// per-cycle capacity.  Contended grants go to the highest
// (cycles-waited + configured bias); aging guarantees progress while
// the bias reproduces the machine's priority asymmetry.
func (cl *Cluster) arbitrate() {
	if cl.wantLookups == 0 {
		return
	}
	// Scores (cycles waited + bias) are computed once while
	// collecting requests, not per sort comparison.
	var scores [trace.NumCE]int
	reqs := cl.reqBuf[:0]
	for i := range cl.ces {
		ce := &cl.ces[i]
		if ce.wantLookup && ce.stall == 0 && !ce.granted && ce.mode != ceIdle {
			s := ce.waited
			if cl.arbBias != nil {
				s += cl.arbBias[ce.id]
			}
			scores[len(reqs)] = s
			reqs = append(reqs, ce)
		}
	}
	cl.reqBuf = reqs
	if len(reqs) == 0 {
		return
	}
	for i := range cl.capacity {
		cl.capacity[i] = cl.lookupsCap
	}
	// Insertion sort by descending score; ties break by CE id for
	// determinism.  At most NumCE entries.
	for i := 1; i < len(reqs); i++ {
		for j := i; j > 0 && scores[j] > scores[j-1]; j-- {
			scores[j], scores[j-1] = scores[j-1], scores[j]
			reqs[j], reqs[j-1] = reqs[j-1], reqs[j]
		}
	}
	for _, ce := range reqs {
		m := cl.cache.Module(ce.lookupAddr)
		if cl.capacity[m] > 0 {
			cl.capacity[m]--
			ce.granted = true
		}
	}
}

// ActiveCount returns the number of CEs currently active.
func (cl *Cluster) ActiveCount() int {
	n := 0
	for i := range cl.ces {
		if cl.ces[i].Active() {
			n++
		}
	}
	return n
}

// Snapshot latches the probe wires for the cycle just executed: the
// per-CE bus opcodes, the memory bus opcodes, and the per-CE activity
// bits.  It is meaningful only after at least one Step.
func (cl *Cluster) Snapshot() trace.Record {
	var r trace.Record
	if cl.cycle == 0 {
		return r
	}
	now := cl.cycle - 1
	for i := range cl.ces {
		if i >= trace.NumCE {
			break
		}
		r.CE[i] = cl.ces[i].busOp
		r.Active[i] = cl.ces[i].Active()
	}
	for b := 0; b < cl.mem.NumBuses() && b < trace.NumMemBus; b++ {
		r.Mem[b] = cl.mem.OpAt(b, now)
	}
	return r
}

// beginLoop starts a concurrent loop from serial CE ce: the serial
// stream parks, the CCB broadcasts the loop, and the starting CE
// self-schedules the first iteration.  Zero-trip loops fall straight
// through to serial continuation.
func (cl *Cluster) beginLoop(loop *Loop, ce *CE) {
	cl.ccb.Start(loop)
	cl.serialStream = ce.stream
	ce.stream = nil
	if loop.Trips <= 0 {
		cl.ccb.Finish()
		ce.stream = cl.serialStream
		cl.serialStream = nil
		ce.stall = cl.cfg.CStartCycles
		return
	}
	it, _ := cl.ccb.Take(ce.id)
	ce.installBody(loop, it)
	ce.mode = ceConc
	ce.stall = cl.cfg.CStartCycles
}

// endLoop resumes serial execution on the CE that ran the final
// iteration.
func (cl *Cluster) endLoop() {
	last := cl.ccb.LastCE()
	cl.ccb.Finish()
	for i := range cl.ces {
		ce := &cl.ces[i]
		if ce.mode == ceBarrier || ce.mode == ceConc {
			ce.mode = ceIdle
			ce.stream = nil
		}
	}
	ce := &cl.ces[last]
	ce.mode = ceSerial
	ce.stream = cl.serialStream
	cl.serialStream = nil
}

// processDone marks the installed process finished (its serial stream
// is exhausted).
func (cl *Cluster) processDone() {
	cl.running = false
}
