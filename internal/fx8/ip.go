package fx8

import (
	"repro/internal/fastrand"
	"repro/internal/trace"
)

// IP is an Interactive Processor: the 68012-based front-end processors
// that handle interactive load, operating system functions and I/O
// through their own caches.  For the cluster measures they matter as
// background memory-bus traffic and as the occasional coherence
// invalidation of a shared-cache line (the unique-copy rule), so the
// model is a seeded stochastic traffic source.
type IP struct {
	id        int
	rng       fastrand.PCG
	busyUntil uint64

	// Statistics.
	Transactions  uint64
	Invalidations uint64
}

func newIP(id int, seed uint64) IP {
	return IP{id: id, rng: fastrand.New(seed, uint64(id)+0xA5)}
}

// memSpan is the modelled physical memory the IPs touch (the machine
// maxes out at 64 MB).
const memSpan = 64 << 20

// step possibly issues one memory-bus transaction for this IP.
func (ip *IP) step(cl *Cluster) {
	if cl.cycle < ip.busyUntil {
		return
	}
	if ip.rng.IntN(1000) >= cl.cfg.IPActivity {
		return
	}
	write := ip.rng.IntN(4) == 0 // reads dominate interactive work
	op := trace.MemIPRead
	if write {
		op = trace.MemIPWrite
	}
	bus := ip.rng.IntN(cl.mem.NumBuses())
	end := cl.mem.Enqueue(bus, op, 2, cl.cycle)
	ip.busyUntil = end
	ip.Transactions++

	if write && ip.rng.IntN(1000) < cl.cfg.IPInvalidate {
		// Unique-copy coherence: an IP write may steal a line from
		// the CE cache, which appears as an invalidate transaction.
		addr := uint32(ip.rng.Uint64() % memSpan)
		if cl.cache.Invalidate(addr) {
			cl.mem.Enqueue(bus, trace.MemInval, 1, end)
			ip.Invalidations++
		}
	}
}
