package fx8

import "testing"

func TestCCBStartTake(t *testing.T) {
	b := NewCCB()
	if b.Running() {
		t.Fatal("new CCB should be idle")
	}
	loop := &Loop{Trips: 3, Body: func(int) Stream { return &SliceStream{} }}
	b.Start(loop)
	if !b.Running() {
		t.Fatal("CCB should be running after Start")
	}
	for want := 0; want < 3; want++ {
		it, ok := b.Take(want % 2)
		if !ok || it != want {
			t.Fatalf("Take = (%d, %v), want (%d, true)", it, ok, want)
		}
	}
	if _, ok := b.Take(0); ok {
		t.Fatal("Take beyond trip count should fail")
	}
	if b.LastCE() != 2%2 {
		t.Fatalf("LastCE = %d", b.LastCE())
	}
}

func TestCCBComplete(t *testing.T) {
	b := NewCCB()
	b.Start(&Loop{Trips: 2, Body: func(int) Stream { return &SliceStream{} }})
	b.Take(0)
	b.Take(1)
	if b.Complete(0) {
		t.Fatal("loop should not be done after one completion")
	}
	if !b.Complete(1) {
		t.Fatal("loop should be done after both completions")
	}
	if !b.AllComplete() {
		t.Fatal("AllComplete should be true")
	}
	b.Finish()
	if b.Running() {
		t.Fatal("Finish should stop the loop")
	}
}

func TestCCBNestedStartPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("nested Start should panic")
		}
	}()
	b := NewCCB()
	l := &Loop{Trips: 1, Body: func(int) Stream { return &SliceStream{} }}
	b.Start(l)
	b.Start(l)
}

func TestCCBTakeWhenIdle(t *testing.T) {
	b := NewCCB()
	if _, ok := b.Take(0); ok {
		t.Fatal("Take on idle CCB should fail")
	}
}

func TestCCBDependenceInOrder(t *testing.T) {
	b := NewCCB()
	b.Start(&Loop{Trips: 4, Body: func(int) Stream { return &SliceStream{} }})
	if b.StageReached(0) {
		t.Fatal("no stage published yet")
	}
	if !b.StageReached(-1) {
		t.Fatal("negative stages are vacuously reached")
	}
	b.Advance(0)
	if !b.StageReached(0) || b.StageReached(1) {
		t.Fatal("watermark should be exactly 1")
	}
	b.Advance(1)
	if !b.StageReached(1) {
		t.Fatal("stage 1 published")
	}
}

func TestCCBDependenceOutOfOrder(t *testing.T) {
	b := NewCCB()
	b.Start(&Loop{Trips: 5, Body: func(int) Stream { return &SliceStream{} }})
	// Iterations 2 and 1 advance before 0: the watermark must hold
	// until 0 arrives, then jump over the parked stages.
	b.Advance(2)
	b.Advance(1)
	if b.StageReached(0) || b.StageReached(1) {
		t.Fatal("no stage should be reached before iteration 0 advances")
	}
	b.Advance(0)
	if !b.StageReached(2) {
		t.Fatal("watermark should jump to 3 after the gap fills")
	}
	if b.StageReached(3) {
		t.Fatal("stage 3 not yet published")
	}
}

func TestCCBStartResetsDependence(t *testing.T) {
	b := NewCCB()
	mk := func(trips int) *Loop {
		return &Loop{Trips: trips, Body: func(int) Stream { return &SliceStream{} }}
	}
	b.Start(mk(2))
	b.Advance(0)
	b.Advance(1)
	b.Take(0)
	b.Take(0)
	b.Complete(0)
	b.Complete(1)
	b.Finish()

	b.Start(mk(2))
	if b.StageReached(0) {
		t.Fatal("dependence state should reset between loops")
	}
}

func TestCCBZeroTripLoop(t *testing.T) {
	b := NewCCB()
	b.Start(&Loop{Trips: 0, Body: func(int) Stream { return &SliceStream{} }})
	if _, ok := b.Take(0); ok {
		t.Fatal("zero-trip loop should dispatch nothing")
	}
	if b.LastCE() != -1 {
		t.Fatal("no last CE for zero-trip loop")
	}
	if !b.AllComplete() {
		t.Fatal("zero-trip loop is vacuously complete")
	}
}

func TestCCBStats(t *testing.T) {
	b := NewCCB()
	b.Start(&Loop{Trips: 2, Body: func(int) Stream { return &SliceStream{} }})
	b.Take(0)
	b.Take(1)
	b.Advance(0)
	if b.LoopsStarted != 1 || b.IterationsRun != 2 || b.AdvanceOps != 1 {
		t.Fatalf("stats = %d loops, %d iters, %d advances",
			b.LoopsStarted, b.IterationsRun, b.AdvanceOps)
	}
}
