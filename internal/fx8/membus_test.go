package fx8

import (
	"testing"

	"repro/internal/trace"
)

func TestMemSystemImmediateService(t *testing.T) {
	m := NewMemSystem(2)
	end := m.Enqueue(0, trace.MemRead, 12, 100)
	if end != 112 {
		t.Fatalf("end = %d, want 112", end)
	}
	if op := m.OpAt(0, 100); op != trace.MemRead {
		t.Errorf("OpAt(100) = %v", op)
	}
	if op := m.OpAt(0, 111); op != trace.MemRead {
		t.Errorf("OpAt(111) = %v", op)
	}
	if op := m.OpAt(0, 112); op != trace.MemIdle {
		t.Errorf("OpAt(112) = %v, want idle", op)
	}
}

func TestMemSystemQueueing(t *testing.T) {
	m := NewMemSystem(1)
	e1 := m.Enqueue(0, trace.MemRead, 10, 0)
	e2 := m.Enqueue(0, trace.MemWrite, 5, 0)
	if e1 != 10 || e2 != 15 {
		t.Fatalf("ends = %d %d, want 10 15", e1, e2)
	}
	if op := m.OpAt(0, 3); op != trace.MemRead {
		t.Errorf("during first txn OpAt = %v", op)
	}
	if op := m.OpAt(0, 12); op != trace.MemWrite {
		t.Errorf("during second txn OpAt = %v", op)
	}
	if op := m.OpAt(0, 20); op != trace.MemIdle {
		t.Errorf("after queue drained OpAt = %v", op)
	}
	if m.QueueDepth(0) != 0 {
		t.Errorf("queue depth = %d after drain", m.QueueDepth(0))
	}
}

func TestMemSystemBusIndependence(t *testing.T) {
	m := NewMemSystem(2)
	m.Enqueue(0, trace.MemRead, 10, 0)
	end := m.Enqueue(1, trace.MemWrite, 10, 0)
	if end != 10 {
		t.Fatalf("second bus should not queue behind the first: end = %d", end)
	}
}

func TestMemSystemGapThenIdle(t *testing.T) {
	m := NewMemSystem(1)
	m.Enqueue(0, trace.MemRead, 4, 10)
	if op := m.OpAt(0, 5); op != trace.MemIdle {
		t.Errorf("before scheduled start OpAt = %v, want idle", op)
	}
	if op := m.OpAt(0, 10); op != trace.MemRead {
		t.Errorf("at start OpAt = %v", op)
	}
}

func TestMemSystemStats(t *testing.T) {
	m := NewMemSystem(2)
	m.Enqueue(0, trace.MemRead, 12, 0)
	m.Enqueue(1, trace.MemWrite, 6, 0)
	if m.Transactions != 2 {
		t.Errorf("Transactions = %d", m.Transactions)
	}
	if m.BusyCycles != 18 {
		t.Errorf("BusyCycles = %d", m.BusyCycles)
	}
}

func TestMemSystemBusFor(t *testing.T) {
	m := NewMemSystem(2)
	if m.BusFor(0) != 0 || m.BusFor(1) != 1 {
		t.Error("modules should pair with buses")
	}
	m1 := NewMemSystem(1)
	if m1.BusFor(1) != 0 {
		t.Error("single-bus system should fold modules onto bus 0")
	}
}

func TestMemSystemExpiredSegmentsDiscarded(t *testing.T) {
	m := NewMemSystem(1)
	for i := 0; i < 100; i++ {
		m.Enqueue(0, trace.MemRead, 1, uint64(i*10))
	}
	// Querying far in the future drains the queue.
	m.OpAt(0, 1e6)
	if d := m.QueueDepth(0); d != 0 {
		t.Errorf("queue depth after drain = %d", d)
	}
}
