package fx8

// SharedCache models the FX/8's Computational Element Cache: a
// write-back, write-allocate cache split into interleaved modules
// (CPCs), each set-associative with LRU replacement.  Lines are
// interleaved across modules by line address, matching the machine's
// four-way interleave across two physical modules.
type SharedCache struct {
	// The cache geometry is a pure function of the configuration,
	// which cannot change without rebuilding the line array: Reset
	// keeps all of it (fxlint:keep below).
	lineShift uint   // fxlint:keep
	modMask   uint32 // fxlint:keep
	modShift  uint   // fxlint:keep
	setMask   uint32 // fxlint:keep
	tagShift  uint   // modShift + set index bits: line >> tagShift = tag; fxlint:keep
	ways      int    // fxlint:keep

	// sets[module][set*ways+way]
	lines []cacheLine
	sets  int // per module; fxlint:keep

	// lruStamp provides cheap LRU ordering: it increases on every
	// access and lines carry the stamp of their last use.
	lruStamp uint32

	// Statistics.
	Hits, Misses, WriteBacks, Invalidations uint64
}

type cacheLine struct {
	tag   uint32
	valid bool
	dirty bool
	lru   uint32
}

// NewSharedCache builds the cache described by cfg.
func NewSharedCache(cfg Config) *SharedCache {
	lineShift := uint(0)
	for 1<<lineShift < cfg.LineBytes {
		lineShift++
	}
	modShift := uint(0)
	for 1<<modShift < cfg.SharedModules {
		modShift++
	}
	totalLines := cfg.SharedCacheBytes / cfg.LineBytes
	linesPerModule := totalLines / cfg.SharedModules
	sets := linesPerModule / cfg.SharedWays
	c := &SharedCache{
		lineShift: lineShift,
		modMask:   uint32(cfg.SharedModules - 1),
		modShift:  modShift,
		setMask:   uint32(sets - 1),
		tagShift:  modShift + setBits(uint32(sets-1)),
		ways:      cfg.SharedWays,
		sets:      sets,
		lines:     make([]cacheLine, totalLines),
	}
	return c
}

// Module returns the cache module (and hence memory bus affinity) an
// address maps to.
func (c *SharedCache) Module(addr uint32) int {
	return int(addr >> c.lineShift & c.modMask)
}

// LookupResult describes the outcome of a cache access.
type LookupResult struct {
	Hit        bool
	WriteBack  bool   // a dirty victim must be written back
	VictimAddr uint32 // line address of the victim (if WriteBack)
	Module     int
}

// Lookup performs an access at addr; write marks the line dirty.  On a
// miss the line is allocated immediately (the fill delay is modelled
// by the caller through the memory bus).  The returned result reports
// whether a dirty victim needs writing back.
func (c *SharedCache) Lookup(addr uint32, write bool) LookupResult {
	line := addr >> c.lineShift
	module := int(line & c.modMask)
	set := int(line >> c.modShift & c.setMask)
	tag := line >> c.tagShift

	base := (module*c.sets + set) * c.ways
	ways := c.lines[base : base+c.ways]

	c.lruStamp++
	// Hit check.
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].lru = c.lruStamp
			if write {
				ways[i].dirty = true
			}
			c.Hits++
			return LookupResult{Hit: true, Module: module}
		}
	}
	// Miss: choose victim (invalid first, then LRU).
	victim := 0
	for i := range ways {
		if !ways[i].valid {
			victim = i
			break
		}
		if ways[i].lru < ways[victim].lru {
			victim = i
		}
	}
	res := LookupResult{Module: module}
	if ways[victim].valid && ways[victim].dirty {
		res.WriteBack = true
		victimLine := ways[victim].tag<<c.tagShift |
			uint32(set)<<c.modShift | uint32(module)
		res.VictimAddr = victimLine << c.lineShift
		c.WriteBacks++
	}
	ways[victim] = cacheLine{tag: tag, valid: true, dirty: write, lru: c.lruStamp}
	c.Misses++
	return res
}

// Contains reports whether addr's line is resident, without touching
// LRU state or statistics.
func (c *SharedCache) Contains(addr uint32) bool {
	line := addr >> c.lineShift
	module := int(line & c.modMask)
	set := int(line >> c.modShift & c.setMask)
	tag := line >> c.tagShift
	base := (module*c.sets + set) * c.ways
	for _, w := range c.lines[base : base+c.ways] {
		if w.valid && w.tag == tag {
			return true
		}
	}
	return false
}

// Invalidate removes addr's line if resident, enforcing the
// unique-copy coherence rule when another cache (an IP cache) takes
// ownership.  It reports whether a line was actually invalidated.
func (c *SharedCache) Invalidate(addr uint32) bool {
	line := addr >> c.lineShift
	module := int(line & c.modMask)
	set := int(line >> c.modShift & c.setMask)
	tag := line >> c.tagShift
	base := (module*c.sets + set) * c.ways
	ways := c.lines[base : base+c.ways]
	for i := range ways {
		if ways[i].valid && ways[i].tag == tag {
			ways[i].valid = false
			c.Invalidations++
			return true
		}
	}
	return false
}

// Flush invalidates every line (context switch of the cluster owner
// does not flush on the real machine, but tests use it to reset
// state).
func (c *SharedCache) Flush() {
	for i := range c.lines {
		c.lines[i] = cacheLine{}
	}
}

// Reset returns the cache to its just-constructed state — every line
// invalid, statistics and the LRU clock zeroed — reusing the line
// array.
func (c *SharedCache) Reset() {
	c.Flush()
	c.lruStamp = 0
	c.Hits, c.Misses, c.WriteBacks, c.Invalidations = 0, 0, 0, 0
}

// MissRatio returns misses/(hits+misses), or 0 before any access.
func (c *SharedCache) MissRatio() float64 {
	t := c.Hits + c.Misses
	if t == 0 {
		return 0
	}
	return float64(c.Misses) / float64(t)
}

func setBits(mask uint32) uint {
	n := uint(0)
	for mask != 0 {
		n++
		mask >>= 1
	}
	return n
}
