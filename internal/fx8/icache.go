package fx8

// icache is a CE's private direct-mapped instruction cache.  Each CE
// of the FX/8 holds a 16 KB instruction cache so that loop bodies
// execute without generating shared-cache instruction fetches — the
// effect section 5.1 credits for low miss rates in tight concurrent
// code.
type icache struct {
	tags      []uint32
	valid     []bool
	lineShift uint
	mask      uint32

	hits, misses uint64
}

func newICache(bytes, lineBytes int) *icache {
	lines := bytes / lineBytes
	shift := uint(0)
	for 1<<shift < lineBytes {
		shift++
	}
	return &icache{
		tags:      make([]uint32, lines),
		valid:     make([]bool, lines),
		lineShift: shift,
		mask:      uint32(lines - 1),
	}
}

// lookup checks addr and fills the line on miss, returning whether the
// access hit.
func (c *icache) lookup(addr uint32) bool {
	line := addr >> c.lineShift
	idx := line & c.mask
	tag := line // store the whole line number; comparison is exact
	if c.valid[idx] && c.tags[idx] == tag {
		c.hits++
		return true
	}
	c.valid[idx] = true
	c.tags[idx] = tag
	c.misses++
	return false
}

// invalidate clears the whole cache (used on context switch).
func (c *icache) invalidate() {
	for i := range c.valid {
		c.valid[i] = false
	}
}

// reset invalidates the cache and zeroes its statistics.  Stale tags
// are left behind: with every line invalid they are unreachable, so
// behaviour is identical to a fresh cache.
func (c *icache) reset() {
	c.invalidate()
	c.hits, c.misses = 0, 0
}
