package fx8

// Op is an instruction class executed by a CE.  The simulator models
// instruction cost and bus behaviour, not semantics: compute classes
// consume cycles, memory classes generate shared-cache traffic, and
// the concurrency classes drive the Concurrency Control Bus.
type Op uint8

// Instruction classes.
const (
	// OpCompute performs N cycles of scalar register-to-register
	// work; no CE bus activity.
	OpCompute Op = iota

	// OpLoad and OpStore access the shared data cache at Addr.
	OpLoad
	OpStore

	// OpVLoad and OpVStore stream N vector elements starting at
	// Addr, occupying the CE bus one element per cycle and performing
	// a cache lookup at each line crossing.
	OpVLoad
	OpVStore

	// OpVCompute performs N cycles of vector register work; no CE
	// bus activity.
	OpVCompute

	// OpCStart begins a concurrent loop described by Loop.  Idle CEs
	// of the cluster join and iterations are self-scheduled over the
	// CCB.
	OpCStart

	// OpAdvance publishes completion of dependence stage N (the
	// iteration number) on the CCB; OpAwait blocks until stage N has
	// been published.  Together they implement compiler-generated DO
	// loop synchronization.  Waiting occupies no bus cycles.
	OpAdvance
	OpAwait
)

// Instr is one instruction as seen by a CE.
type Instr struct {
	Op    Op
	Addr  uint32 // data address for memory classes
	IAddr uint32 // code address, checked against the private icache
	N     int32  // cycles (compute), elements (vector), stage (await/advance)
	Loop  *Loop  // loop descriptor for OpCStart
}

// Stream is a source of instructions.  A CE pulls from its current
// stream; exhaustion of the serial stream terminates the process,
// exhaustion of a loop-body stream completes the iteration.
type Stream interface {
	// Next returns the next instruction, or ok=false when the stream
	// is exhausted.
	Next() (Instr, bool)
}

// Loop describes a concurrent DO loop: its trip count, the body
// executed for each iteration, and an optional loop-carried dependence
// distance (enforced by the body via OpAwait/OpAdvance).
type Loop struct {
	// Trips is the total number of iterations.
	Trips int

	// Body returns the instruction stream of one iteration.  It is
	// invoked once per iteration, on the CE the iteration was
	// self-scheduled to.
	Body func(iter int) Stream

	// BodyInto, when non-nil, takes precedence over Body: it appends
	// the instructions of one iteration into s (which arrives rewound
	// and empty, its backing array reused across iterations).  A CE
	// executes one iteration at a time, so the cluster hands each CE
	// its own private buffer — iteration bodies then cost zero heap
	// allocations in steady state, which is what lets independent
	// sessions scale across worker goroutines without serializing in
	// the allocator and GC.  The instructions appended for iteration
	// i must depend only on i, never on the CE or the buffer's
	// previous contents.
	BodyInto func(iter int, s *SliceStream)
}

// SliceStream adapts a fixed instruction slice to the Stream
// interface.
type SliceStream struct {
	Instrs []Instr // the stream's data: Reset rewinds, never clears; fxlint:keep
	pos    int
}

// Next implements Stream.
func (s *SliceStream) Next() (Instr, bool) {
	if s.pos >= len(s.Instrs) {
		return Instr{}, false
	}
	in := s.Instrs[s.pos]
	s.pos++
	return in, true
}

// Reset rewinds the stream to its beginning.
func (s *SliceStream) Reset() { s.pos = 0 }

// FuncStream adapts a generator function to the Stream interface.
type FuncStream func() (Instr, bool)

// Next implements Stream.
func (f FuncStream) Next() (Instr, bool) { return f() }

// ConcatStream yields the instructions of each source stream in turn.
type ConcatStream struct {
	Streams []Stream
	pos     int
}

// Next implements Stream.
func (c *ConcatStream) Next() (Instr, bool) {
	for c.pos < len(c.Streams) {
		if in, ok := c.Streams[c.pos].Next(); ok {
			return in, true
		}
		c.pos++
	}
	return Instr{}, false
}

// MMU is the hook by which an operating system layer imposes virtual
// memory behaviour on CE data accesses.  Touch is consulted once per
// cache lookup with the accessing CE and byte address; a nonzero
// return stalls the CE for that many cycles (a page fault being
// serviced).  Implementations are responsible for their own fault
// accounting.
type MMU interface {
	Touch(ce int, addr uint32) (stallCycles int)
}
