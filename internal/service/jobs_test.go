package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/monitor"
	"repro/internal/remote"
)

func cheapJobSpec(n int) coord.JobSpec {
	units := make([]core.StudyUnit, n)
	for i := range units {
		spec := core.SessionSpec{
			Samples:  1,
			Sampling: monitor.SampleSpec{Snapshots: 1, GapCycles: 2_000},
			Seed:     300 + uint64(i),
		}
		units[i] = core.StudyUnit{ID: i + 1, Random: &spec}
	}
	return coord.JobSpec{Kind: "sessions", Units: units}
}

func postJSON(t *testing.T, srv *Server, path string, body any) (int, http.Header, []byte) {
	t.Helper()
	payload, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, strings.NewReader(string(payload)))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Header(), rec.Body.Bytes()
}

func awaitJobDone(t *testing.T, srv *Server, id string) coord.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		code, body := get(t, srv, coord.JobsPath+"/"+id)
		if code != http.StatusOK {
			t.Fatalf("job status = %d: %s", code, body)
		}
		var st coord.JobStatus
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		if coord.TerminalState(st.State) {
			return st
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never finished", id)
	return coord.JobStatus{}
}

func TestJobSubmitPollResult(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	spec := cheapJobSpec(3)

	code, hdr, body := postJSON(t, srv, coord.JobsPath, spec)
	if code != http.StatusCreated {
		t.Fatalf("submit = %d: %s", code, body)
	}
	var st coord.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if want := coord.JobsPath + "/" + st.ID; hdr.Get("Location") != want {
		t.Errorf("Location = %q, want %q", hdr.Get("Location"), want)
	}
	if st.Total != 3 || st.Kind != "sessions" {
		t.Errorf("submitted status = %+v", st)
	}

	// Idempotent resubmission addresses the same job with 200.
	code, _, body = postJSON(t, srv, coord.JobsPath, spec)
	if code != http.StatusOK {
		t.Errorf("resubmit = %d: %s", code, body)
	}
	var again coord.JobStatus
	if err := json.Unmarshal(body, &again); err != nil {
		t.Fatal(err)
	}
	if again.ID != st.ID {
		t.Errorf("resubmit ID = %s, want %s", again.ID, st.ID)
	}

	final := awaitJobDone(t, srv, st.ID)
	if final.State != coord.StateDone || final.Done != 3 {
		t.Fatalf("final status = %+v", final)
	}

	code, body = get(t, srv, coord.JobsPath+"/"+st.ID+"/result")
	if code != http.StatusOK {
		t.Fatalf("result = %d: %s", code, body)
	}
	var res coord.JobResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if len(res.Sessions) != 3 {
		t.Errorf("result sessions = %d, want 3", len(res.Sessions))
	}

	code, body = get(t, srv, coord.JobsPath)
	if code != http.StatusOK {
		t.Fatalf("list = %d: %s", code, body)
	}
	var list JobListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, j := range list.Jobs {
		found = found || j.ID == st.ID
	}
	if !found {
		t.Errorf("job %s missing from list %+v", st.ID, list.Jobs)
	}
}

func TestJobEventsStream(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	spec := cheapJobSpec(2)
	_, _, body := postJSON(t, srv, coord.JobsPath, spec)
	var st coord.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	awaitJobDone(t, srv, st.ID)

	code, body := get(t, srv, coord.JobsPath+"/"+st.ID+"/events")
	if code != http.StatusOK {
		t.Fatalf("events = %d: %s", code, body)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	lastData := ""
	for _, ln := range lines {
		if strings.HasPrefix(ln, "data: ") {
			lastData = strings.TrimPrefix(ln, "data: ")
		}
	}
	if lastData == "" {
		t.Fatalf("no SSE data lines in %q", body)
	}
	var ev coord.JobStatus
	if err := json.Unmarshal([]byte(lastData), &ev); err != nil {
		t.Fatalf("decoding event %q: %v", lastData, err)
	}
	if ev.State != coord.StateDone || ev.Done != 2 {
		t.Errorf("final event = %+v", ev)
	}

	code, body = get(t, srv, coord.JobsPath+"/nope/events")
	if code != http.StatusNotFound {
		t.Errorf("events for unknown job = %d: %s", code, body)
	}
}

func TestJobErrorEnvelope(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")

	// Unknown job: not_found, with the request ID echoed into the
	// envelope when the caller supplies one.
	req := httptest.NewRequest("GET", coord.JobsPath+"/deadbeef", nil)
	req.Header.Set("X-Request-Id", "trace-me-1")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusNotFound {
		t.Fatalf("unknown job = %d: %s", rec.Code, rec.Body)
	}
	var env remote.ErrorResponse
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != remote.CodeNotFound || env.RequestID != "trace-me-1" {
		t.Errorf("envelope = %+v", env)
	}

	// Invalid spec: invalid_config.
	code, _, body := postJSON(t, srv, coord.JobsPath, coord.JobSpec{Kind: "nope"})
	if code != http.StatusBadRequest {
		t.Fatalf("bad spec = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != remote.CodeInvalidConfig {
		t.Errorf("bad-spec envelope = %+v", env)
	}

	// Cancelling a finished job: conflict.
	_, _, body = postJSON(t, srv, coord.JobsPath, cheapJobSpec(1))
	var st coord.JobStatus
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	awaitJobDone(t, srv, st.ID)
	req = httptest.NewRequest("DELETE", coord.JobsPath+"/"+st.ID, nil)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusConflict {
		t.Fatalf("cancel done job = %d: %s", rec.Code, rec.Body)
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != remote.CodeConflict {
		t.Errorf("cancel envelope = %+v", env)
	}

	// Unknown artefact kind rides the same envelope.
	code, body = get(t, srv, "/v1/artefacts/poem/1?scale=quick")
	if code != http.StatusNotFound {
		t.Fatalf("unknown kind = %d: %s", code, body)
	}
	if err := json.Unmarshal(body, &env); err != nil {
		t.Fatal(err)
	}
	if env.Code != remote.CodeNotFound {
		t.Errorf("unknown-kind envelope = %+v", env)
	}
}

func TestBackendRegisterAndList(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")

	code, _, body := postJSON(t, srv, coord.BackendsRegisterPath, coord.RegisterRequest{Addr: "10.0.0.7:8080", TTLSeconds: 60})
	if code != http.StatusOK {
		t.Fatalf("register = %d: %s", code, body)
	}
	var m coord.Member
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	if m.Addr != "10.0.0.7:8080" || !m.Expires.After(time.Now()) {
		t.Errorf("registration = %+v", m)
	}

	code, body = get(t, srv, coord.BackendsPath)
	if code != http.StatusOK {
		t.Fatalf("backends = %d: %s", code, body)
	}
	var list BackendListResponse
	if err := json.Unmarshal(body, &list); err != nil {
		t.Fatal(err)
	}
	if len(list.Backends) != 1 || list.Backends[0].Addr != "10.0.0.7:8080" {
		t.Errorf("backend list = %+v", list)
	}
	if got := srv.Coordinator().Registry().Snapshot(); len(got) != 1 {
		t.Errorf("registry snapshot = %v", got)
	}

	// Registration without an address is rejected.
	code, _, body = postJSON(t, srv, coord.BackendsRegisterPath, coord.RegisterRequest{})
	if code != http.StatusBadRequest {
		t.Errorf("empty register = %d: %s", code, body)
	}
}

// TestArtefactAliasByteIdentity pins the alias contract: the legacy
// /v1/tables/{name} and /v1/figures/{name} paths answer with exactly
// the bytes — body and ETag — of their /v1/artefacts/{kind}/{name}
// form.
func TestArtefactAliasByteIdentity(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	pairs := [][2]string{
		{"/v1/tables/1?scale=quick", "/v1/artefacts/table/1?scale=quick"},
		{"/v1/figures/6?scale=quick", "/v1/artefacts/figure/6?scale=quick"},
		// The plural kind spelling normalizes to the same artefact.
		{"/v1/tables/1?scale=quick", "/v1/artefacts/tables/1?scale=quick"},
	}
	for _, p := range pairs {
		reqA := httptest.NewRequest("GET", p[0], nil)
		recA := httptest.NewRecorder()
		srv.ServeHTTP(recA, reqA)
		reqB := httptest.NewRequest("GET", p[1], nil)
		recB := httptest.NewRecorder()
		srv.ServeHTTP(recB, reqB)
		if recA.Code != http.StatusOK || recB.Code != http.StatusOK {
			t.Fatalf("%s = %d, %s = %d", p[0], recA.Code, p[1], recB.Code)
		}
		if recA.Body.String() != recB.Body.String() {
			t.Errorf("%s and %s bodies differ", p[0], p[1])
		}
		etagA, etagB := recA.Header().Get("ETag"), recB.Header().Get("ETag")
		if etagA == "" || etagA != etagB {
			t.Errorf("%s ETag %q != %s ETag %q", p[0], etagA, p[1], etagB)
		}
		// A tag learned from one spelling revalidates the other.
		reqC := httptest.NewRequest("GET", p[1], nil)
		reqC.Header.Set("If-None-Match", etagA)
		recC := httptest.NewRecorder()
		srv.ServeHTTP(recC, reqC)
		if recC.Code != http.StatusNotModified {
			t.Errorf("%s with %s's ETag = %d, want 304", p[1], p[0], recC.Code)
		}
	}
}
