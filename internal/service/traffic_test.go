package service

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/monitor"
)

// Wire-behavior tests: conditional requests (ETag/304), bounded
// backpressure (429 + Retry-After), disconnect accounting, request
// cost bounds, and the batched unit endpoint.

// getH is get returning the response headers too.
func getH(t *testing.T, srv *Server, path string, hdr map[string]string) (int, []byte, http.Header) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes(), rec.Result().Header
}

func TestStudyETagRevalidatesWithoutComputing(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("campaign-computing ETag check in -short mode")
	}
	// Server A computes the campaign and hands out its ETag.
	a := newTestServer(t, "")
	code, _, hdr := getH(t, a, "/v1/study?scale=quick", nil)
	if code != http.StatusOK {
		t.Fatalf("study = %d", code)
	}
	etag := hdr.Get("ETag")
	if etag == "" || !strings.HasPrefix(etag, `"`) {
		t.Fatalf("ETag = %q, want a quoted strong tag", etag)
	}

	// Server B has computed nothing.  Revalidating against it answers
	// 304 from the tag alone — before any campaign work.
	b := newTestServer(t, "")
	code, body, _ := getH(t, b, "/v1/study?scale=quick", map[string]string{"If-None-Match": etag})
	if code != http.StatusNotModified {
		t.Fatalf("revalidation = %d, want 304", code)
	}
	if len(body) != 0 {
		t.Errorf("304 carried a body: %q", body)
	}
	if st := b.cache.Stats(); st.Computes != 0 {
		t.Errorf("revalidation computed %d campaigns, want 0", st.Computes)
	}

	// A stale tag still gets the full (recomputed) response.
	code, _, hdr = getH(t, b, "/v1/study?scale=quick", map[string]string{"If-None-Match": `"stale"`})
	if code != http.StatusOK {
		t.Fatalf("stale revalidation = %d, want 200", code)
	}
	if hdr.Get("ETag") != etag {
		t.Errorf("ETag drifted between servers: %q vs %q", hdr.Get("ETag"), etag)
	}
}

func TestArtefactETagIdentity(t *testing.T) {
	t.Parallel()
	// ETags are pure functions of the request identity, so they can be
	// checked without computing anything.
	cfg := core.QuickScale()
	t1 := etagFor(artefactETagNamespace, artefactIdentity{Kind: "table", Name: "1", Config: cfg})
	t2 := etagFor(artefactETagNamespace, artefactIdentity{Kind: "table", Name: "2", Config: cfg})
	f1 := etagFor(artefactETagNamespace, artefactIdentity{Kind: "figure", Name: "1", Config: cfg})
	if t1 == "" || t1 == t2 {
		t.Errorf("table ETags not distinct per name: %q vs %q", t1, t2)
	}
	if t1 == f1 {
		t.Error("table and figure ETags collide for one name")
	}
	st := etagFor(studyETagNamespace, cfg)
	if st == "" || st == t1 {
		t.Errorf("study ETag %q not distinct from artefact ETags", st)
	}

	// Case-insensitive spellings of one artefact share one tag, which
	// the handlers guarantee by lowercasing the name.
	srv := newTestServer(t, "")
	code, _, h1 := getH(t, srv, "/v1/figures/bogus", nil)
	if code != http.StatusNotFound {
		t.Fatalf("unknown figure = %d, want 404", code)
	}
	if h1.Get("ETag") != "" {
		t.Error("404 carried an ETag")
	}
}

func TestBackpressureShedsPastQueueBound(t *testing.T) {
	t.Parallel()
	srv := New(Config{Cache: core.NewStudyCache(), MaxInFlight: 1, MaxQueue: 1})
	// Occupy the only admission slot so every request queues.
	srv.sem <- struct{}{}
	defer func() { <-srv.sem }()

	// First request queues (within MaxQueue)...
	queuedCtx, cancelQueued := context.WithCancel(context.Background())
	queuedDone := make(chan struct{})
	go func() {
		defer close(queuedDone)
		req := httptest.NewRequest("GET", "/v1/study?scale=quick", nil).WithContext(queuedCtx)
		srv.ServeHTTP(httptest.NewRecorder(), req)
	}()
	deadline := time.Now().Add(5 * time.Second)
	for srv.waiting.Load() != 1 {
		if time.Now().After(deadline) {
			t.Fatal("first request never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// ...the second is past the bound: shed immediately with 429 and a
	// Retry-After hint.
	code, body, hdr := getH(t, srv, "/v1/study?scale=quick", nil)
	if code != http.StatusTooManyRequests {
		t.Fatalf("request past queue bound = %d (%s), want 429", code, body)
	}
	if hdr.Get("Retry-After") == "" {
		t.Error("429 without a Retry-After header")
	}

	// The queued client gives up: booked as canceled, not as an error.
	cancelQueued()
	<-queuedDone
	snap := srv.metricsSnapshot()
	var study EndpointMetrics
	for _, ep := range snap.Endpoints {
		if ep.Endpoint == "study" {
			study = ep
		}
	}
	if study.Shed != 1 {
		t.Errorf("shed = %d, want 1", study.Shed)
	}
	if study.Canceled != 1 {
		t.Errorf("canceled = %d, want 1", study.Canceled)
	}
	if study.Errors != 0 {
		t.Errorf("errors = %d; sheds and disconnects are not server errors", study.Errors)
	}
	if st := srv.cache.Stats(); st.Computes != 0 {
		t.Errorf("shed/canceled requests computed %d campaigns, want 0", st.Computes)
	}
}

func TestDisconnectBeforeComputeIsNotAnError(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // the client is gone before the handler runs
	req := httptest.NewRequest("GET", "/v1/study?scale=quick", nil).WithContext(ctx)
	srv.ServeHTTP(httptest.NewRecorder(), req)

	snap := srv.metricsSnapshot()
	for _, ep := range snap.Endpoints {
		if ep.Endpoint == "study" {
			if ep.Canceled != 1 || ep.Errors != 0 {
				t.Errorf("study metrics = %+v, want 1 canceled and 0 errors", ep)
			}
		}
	}
	if st := srv.cache.Stats(); st.Computes != 0 {
		t.Errorf("canceled request computed %d campaigns, want 0", st.Computes)
	}
}

func TestSweepSamplesBound(t *testing.T) {
	t.Parallel()
	srv := New(Config{Cache: core.NewStudyCache(), MaxSweepSamples: 1})
	if code, body := get(t, srv, "/v1/sweep?param=ce&samples=1&seed=23"); code != http.StatusOK {
		t.Errorf("samples at the bound = %d (%s), want 200", code, body)
	}
	code, body := get(t, srv, "/v1/sweep?param=ce&samples=2&seed=23")
	if code != http.StatusBadRequest {
		t.Errorf("samples past the bound = %d, want 400", code)
	}
	if !strings.Contains(string(body), "bound") {
		t.Errorf("bound rejection = %s, want the bound named", body)
	}
}

func TestRunSessionBatchEndpoint(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	units := make([]core.StudyUnit, 3)
	for i := range units {
		units[i] = core.StudyUnit{ID: i + 1, Random: &core.SessionSpec{
			Samples:  2,
			Sampling: monitor.SampleSpec{Snapshots: 2, GapCycles: 2_000},
			Seed:     uint64(31 + i),
		}}
	}
	payload, err := json.Marshal(units)
	if err != nil {
		t.Fatal(err)
	}

	code, body := post(t, srv, "/v1/run/sessions", string(payload))
	if code != http.StatusOK {
		t.Fatalf("run/sessions = %d: %s", code, body)
	}
	var results []core.StudyUnitResult
	if err := json.Unmarshal(body, &results); err != nil {
		t.Fatal(err)
	}
	if len(results) != len(units) {
		t.Fatalf("batch returned %d results for %d units", len(results), len(units))
	}

	// Each batched result is byte-identical to the single-unit
	// endpoint's answer for the same unit.
	for i, u := range units {
		uJSON, _ := json.Marshal(u)
		code, single := post(t, srv, "/v1/run/session", string(uJSON))
		if code != http.StatusOK {
			t.Fatalf("run/session unit %d = %d", i, code)
		}
		batched, _ := json.Marshal(results[i])
		if string(batched)+"\n" != string(single) {
			t.Errorf("unit %d: batched result differs from unbatched result", i)
		}
	}

	// The batch populated the per-unit cache: re-running it writes
	// nothing new.
	writes := srv.cache.Store().Stats().Writes
	if code, _ := post(t, srv, "/v1/run/sessions", string(payload)); code != http.StatusOK {
		t.Fatal("second batch failed")
	}
	if st := srv.cache.Store().Stats(); st.Writes != writes {
		t.Errorf("duplicate batch wrote %d new records, want 0", st.Writes-writes)
	}

	// Defective batches are rejected before any compute.
	for name, bad := range map[string]string{
		"empty":     `[]`,
		"spec-less": `[{"id":9}]`,
		"malformed": `[{"id":`,
	} {
		if code, _ := post(t, srv, "/v1/run/sessions", bad); code != http.StatusBadRequest {
			t.Errorf("%s batch = %d, want 400", name, code)
		}
	}
}

func TestRunSessionBatchSizeBound(t *testing.T) {
	t.Parallel()
	srv := New(Config{Cache: core.NewStudyCache(), MaxBatchUnits: 2})
	unit := func(id int) core.StudyUnit {
		return core.StudyUnit{ID: id, Random: &core.SessionSpec{
			Samples:  1,
			Sampling: monitor.SampleSpec{Snapshots: 1, GapCycles: 2_000},
			Seed:     uint64(id),
		}}
	}
	over, _ := json.Marshal([]core.StudyUnit{unit(1), unit(2), unit(3)})
	code, body := post(t, srv, "/v1/run/sessions", string(over))
	if code != http.StatusBadRequest {
		t.Fatalf("oversize batch = %d (%s), want 400", code, body)
	}
	if !strings.Contains(string(body), "bound") {
		t.Errorf("oversize rejection = %s, want the bound named", body)
	}
	at, _ := json.Marshal([]core.StudyUnit{unit(1), unit(2)})
	if code, body := post(t, srv, "/v1/run/sessions", string(at)); code != http.StatusOK {
		t.Errorf("batch at the bound = %d (%s), want 200", code, body)
	}
}
