package service

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// metrics accumulates per-endpoint request counters.
type metrics struct {
	mu  sync.Mutex
	per map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests uint64
	errors   uint64
	total    time.Duration
	max      time.Duration
}

func newMetrics() *metrics {
	return &metrics{per: make(map[string]*endpointMetrics)}
}

func (m *metrics) record(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.per[endpoint]
	if em == nil {
		em = &endpointMetrics{}
		m.per[endpoint] = em
	}
	em.requests++
	if failed {
		em.errors++
	}
	em.total += d
	if d > em.max {
		em.max = d
	}
}

// EndpointMetrics is one endpoint's row in the /v1/metrics body.
type EndpointMetrics struct {
	Endpoint string  `json:"endpoint"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	AvgMs    float64 `json:"avg_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// MetricsResponse is the /v1/metrics body: request latencies per
// endpoint plus the hit rates of both campaign-cache tiers and the
// underlying store.
type MetricsResponse struct {
	Endpoints []EndpointMetrics `json:"endpoints"`
	Cache     core.CacheStats   `json:"cache"`
	Store     *store.Stats      `json:"store,omitempty"`
}

func (s *Server) metricsSnapshot() MetricsResponse {
	s.metrics.mu.Lock()
	eps := make([]EndpointMetrics, 0, len(s.metrics.per))
	for name, em := range s.metrics.per {
		row := EndpointMetrics{
			Endpoint: name,
			Requests: em.requests,
			Errors:   em.errors,
			MaxMs:    float64(em.max) / float64(time.Millisecond),
		}
		if em.requests > 0 {
			row.AvgMs = float64(em.total) / float64(em.requests) / float64(time.Millisecond)
		}
		eps = append(eps, row)
	}
	s.metrics.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })

	resp := MetricsResponse{Endpoints: eps, Cache: s.cache.Stats()}
	if st := s.cache.Store(); st != nil {
		stats := st.Stats()
		resp.Store = &stats
	}
	return resp
}
