package service

import (
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/retry"
	"repro/internal/store"
)

// metrics is the server's telemetry surface: per-endpoint obs
// counters and latency histograms plus the registry that renders them
// as Prometheus text exposition.  Endpoints register during New —
// before the server serves — so the per map is read-only on the
// request path and recording never takes a lock.
type metrics struct {
	reg *obs.Registry
	per map[string]*endpointMetrics
}

// endpointMetrics is one endpoint's recording surface.  Requests and
// average/max latency derive from the histogram; the counters book
// the outcomes that need separating (a client hangup is not a server
// failure, and a shed request never reached a handler).
type endpointMetrics struct {
	errors   *obs.Counter
	canceled *obs.Counter // client gave up before the handler ran
	shed     *obs.Counter // rejected with 429 past the admission queue bound
	lat      *obs.Histogram
}

func newMetrics() *metrics {
	return &metrics{reg: obs.NewRegistry(), per: make(map[string]*endpointMetrics)}
}

// register names an endpoint's series.  New-time only: the per map
// must not grow once the server is serving.
func (m *metrics) register(endpoint string) *endpointMetrics {
	if em := m.per[endpoint]; em != nil {
		return em
	}
	labels := obs.Labels{"endpoint": endpoint}
	em := &endpointMetrics{
		errors:   m.reg.Counter("fx8d_request_errors_total", "Requests answered with an error status.", labels),
		canceled: m.reg.Counter("fx8d_requests_canceled_total", "Requests whose client disconnected before a response.", labels),
		shed:     m.reg.Counter("fx8d_requests_shed_total", "Requests rejected with 429 past the admission queue bound.", labels),
		lat: m.reg.Histogram("fx8d_request_duration_seconds",
			"Request latency from arrival to response.", labels, nil, 1e-9),
	}
	m.per[endpoint] = em
	return em
}

func (m *metrics) record(endpoint string, d time.Duration, failed bool) {
	em := m.per[endpoint]
	if em == nil {
		return
	}
	if failed {
		em.errors.Inc()
	}
	em.lat.Observe(int64(d))
}

// recordCanceled books a request whose client disconnected before any
// response could be written.  Cancellations are counted apart from
// errors: a client hanging up is not a server failure, and folding the
// two together made error rates unreadable under load.
func (m *metrics) recordCanceled(endpoint string, d time.Duration) {
	em := m.per[endpoint]
	if em == nil {
		return
	}
	em.canceled.Inc()
	em.lat.Observe(int64(d))
}

// recordShed books a request rejected with 429 past the admission
// queue bound.  Sheds are neither errors nor regular requests — they
// never reached a handler — so they get their own counter and stay
// out of the latency histogram.
func (m *metrics) recordShed(endpoint string) {
	if em := m.per[endpoint]; em != nil {
		em.shed.Inc()
	}
}

// registerProcess wires the registry to the counters owned elsewhere
// — the admission semaphore, the engine's worker accounting, the
// campaign cache, the store — via render-time func series, so one
// scrape sees the whole process without double bookkeeping.
func (s *Server) registerProcess() {
	reg := s.metrics.reg
	reg.GaugeFunc("fx8d_inflight_requests",
		"Expensive requests holding an admission slot.", nil,
		func() float64 { return float64(len(s.sem)) })
	reg.GaugeFunc("fx8d_admission_waiting",
		"Expensive requests queued for admission.", nil,
		func() float64 { return float64(s.waiting.Load()) })

	reg.GaugeFunc("fx8d_engine_queued_units",
		"Units accepted by a worker pool but not yet started.", nil,
		func() float64 { return float64(engine.Stats().Queued) })
	reg.GaugeFunc("fx8d_engine_inflight_units",
		"Units executing on engine workers right now.", nil,
		func() float64 { return float64(engine.Stats().InFlight) })
	reg.CounterFunc("fx8d_engine_units_completed_total",
		"Units that returned normally from an engine worker.", nil,
		func() float64 { return float64(engine.Stats().UnitsCompleted) })
	reg.CounterFunc("fx8d_engine_busy_seconds_total",
		"Cumulative worker time spent inside units.", nil,
		func() float64 { return float64(engine.Stats().BusyNs) / 1e9 })
	reg.CounterFunc("fx8d_engine_pools_total",
		"Worker-pool invocations (one per RunAll/Map).", nil,
		func() float64 { return float64(engine.Stats().Pools) })

	for _, tier := range []struct {
		name string
		fn   func(core.CacheStats) uint64
	}{
		{"memory", func(cs core.CacheStats) uint64 { return cs.MemoryHits }},
		{"disk", func(cs core.CacheStats) uint64 { return cs.DiskHits }},
		{"compute", func(cs core.CacheStats) uint64 { return cs.Computes }},
	} {
		fn := tier.fn
		reg.CounterFunc("fx8d_cache_outcomes_total",
			"Campaign-cache Gets by serving tier (memory|disk|compute).",
			obs.Labels{"tier": tier.name},
			func() float64 { return float64(fn(s.cache.Stats())) })
	}
	reg.CounterFunc("fx8d_cache_store_errors_total",
		"Campaign-cache store write failures.", nil,
		func() float64 { return float64(s.cache.Stats().StoreErrors) })

	if st := s.cache.Store(); st != nil {
		for _, c := range []struct {
			name, help string
			fn         func(store.Stats) uint64
		}{
			{"fx8d_store_hits_total", "Store entries served intact.", func(ss store.Stats) uint64 { return ss.Hits }},
			{"fx8d_store_misses_total", "Store lookups of absent entries.", func(ss store.Stats) uint64 { return ss.Misses }},
			{"fx8d_store_corrupt_total", "Store entries rejected as corrupt.", func(ss store.Stats) uint64 { return ss.Corrupt }},
			{"fx8d_store_writes_total", "Store entries written.", func(ss store.Stats) uint64 { return ss.Writes }},
			{"fx8d_store_evicted_total", "Store entries evicted by the size bound.", func(ss store.Stats) uint64 { return ss.Evicted }},
		} {
			fn := c.fn
			reg.CounterFunc(c.name, c.help, nil,
				func() float64 { return float64(fn(st.Stats())) })
		}
		reg.GaugeFunc("fx8d_store_disk_bytes",
			"Total bytes of store entries on disk.", nil,
			func() float64 { _, bytes := st.Disk(); return float64(bytes) })
	}

	if c := s.coord; c != nil {
		for _, row := range []struct {
			name, help string
			fn         func(retry.Snapshot) float64
		}{
			{"fx8d_retry_attempts_total", "Operation launches under the coordinator's retry policy.",
				func(rs retry.Snapshot) float64 { return float64(rs.Attempts) }},
			{"fx8d_retry_retries_total", "Relaunches after a retryable failure.",
				func(rs retry.Snapshot) float64 { return float64(rs.Retries) }},
			{"fx8d_retry_giveups_total", "Operations abandoned after exhausting the retry policy.",
				func(rs retry.Snapshot) float64 { return float64(rs.GiveUps) }},
			{"fx8d_retry_backoff_waits_total", "Backoff sleeps taken between retry attempts.",
				func(rs retry.Snapshot) float64 { return float64(rs.BackoffWaits) }},
			{"fx8d_retry_backoff_seconds_total", "Cumulative time spent in backoff waits.",
				func(rs retry.Snapshot) float64 { return rs.BackoffSecs }},
		} {
			fn := row.fn
			reg.CounterFunc(row.name, row.help, nil,
				func() float64 { return fn(c.RetryStats()) })
		}
	}
}

// EndpointMetrics is one endpoint's row in the /v1/metrics body.
type EndpointMetrics struct {
	Endpoint string  `json:"endpoint"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	Canceled uint64  `json:"canceled"`
	Shed     uint64  `json:"shed"`
	AvgMs    float64 `json:"avg_ms"`
	MaxMs    float64 `json:"max_ms"`
	P50Ms    float64 `json:"p50_ms"`
	P95Ms    float64 `json:"p95_ms"`
	P99Ms    float64 `json:"p99_ms"`
}

// EngineMetrics is the engine's worker accounting in the /v1/metrics
// body.
type EngineMetrics struct {
	UnitsStarted   uint64  `json:"units_started"`
	UnitsCompleted uint64  `json:"units_completed"`
	InFlight       int64   `json:"in_flight"`
	Queued         int64   `json:"queued"`
	BusySeconds    float64 `json:"busy_seconds"`
	Pools          uint64  `json:"pools"`
}

// MetricsResponse is the /v1/metrics JSON body: request latencies per
// endpoint plus the hit rates of both campaign-cache tiers, the
// underlying store, and the engine's worker accounting.  The same
// endpoint renders Prometheus text exposition when the request asks
// for it (?format=prometheus or an Accept header naming text/plain or
// openmetrics).
type MetricsResponse struct {
	Endpoints []EndpointMetrics `json:"endpoints"`
	Cache     core.CacheStats   `json:"cache"`
	Store     *store.Stats      `json:"store,omitempty"`
	Engine    EngineMetrics     `json:"engine"`

	// Retry snapshots the coordinator's retry-policy outcomes —
	// attempts, retries, give-ups, backoff waits (see internal/retry).
	Retry *retry.Snapshot `json:"retry,omitempty"`
}

const msPerNs = 1e-6

func (s *Server) metricsSnapshot() MetricsResponse {
	eps := make([]EndpointMetrics, 0, len(s.metrics.per))
	for name, em := range s.metrics.per {
		snap := em.lat.Snapshot()
		p50, p95, p99 := snap.Quantiles()
		row := EndpointMetrics{
			Endpoint: name,
			Requests: snap.Count,
			Errors:   em.errors.Value(),
			Canceled: em.canceled.Value(),
			Shed:     em.shed.Value(),
			MaxMs:    float64(snap.Max) * msPerNs,
			P50Ms:    float64(p50) * msPerNs,
			P95Ms:    float64(p95) * msPerNs,
			P99Ms:    float64(p99) * msPerNs,
		}
		if snap.Count > 0 {
			row.AvgMs = float64(snap.Sum) / float64(snap.Count) * msPerNs
		}
		if row.Requests == 0 && row.Shed == 0 {
			continue // endpoint registered but never hit
		}
		eps = append(eps, row)
	}
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })

	es := engine.Stats()
	resp := MetricsResponse{
		Endpoints: eps,
		Cache:     s.cache.Stats(),
		Engine: EngineMetrics{
			UnitsStarted:   es.UnitsStarted,
			UnitsCompleted: es.UnitsCompleted,
			InFlight:       es.InFlight,
			Queued:         es.Queued,
			BusySeconds:    float64(es.BusyNs) / 1e9,
			Pools:          es.Pools,
		},
	}
	if st := s.cache.Store(); st != nil {
		stats := st.Stats()
		resp.Store = &stats
	}
	if s.coord != nil {
		rs := s.coord.RetryStats()
		resp.Retry = &rs
	}
	return resp
}
