package service

import (
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/store"
)

// metrics accumulates per-endpoint request counters.
type metrics struct {
	mu  sync.Mutex
	per map[string]*endpointMetrics
}

type endpointMetrics struct {
	requests uint64
	errors   uint64
	canceled uint64 // client gave up before the handler ran
	shed     uint64 // rejected with 429 past the admission queue bound
	total    time.Duration
	max      time.Duration
}

func newMetrics() *metrics {
	return &metrics{per: make(map[string]*endpointMetrics)}
}

func (m *metrics) get(endpoint string) *endpointMetrics {
	em := m.per[endpoint]
	if em == nil {
		em = &endpointMetrics{}
		m.per[endpoint] = em
	}
	return em
}

func (m *metrics) record(endpoint string, d time.Duration, failed bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.get(endpoint)
	em.requests++
	if failed {
		em.errors++
	}
	em.total += d
	if d > em.max {
		em.max = d
	}
}

// recordCanceled books a request whose client disconnected before any
// response could be written.  Cancellations are counted apart from
// errors: a client hanging up is not a server failure, and folding the
// two together made error rates unreadable under load.
func (m *metrics) recordCanceled(endpoint string, d time.Duration) {
	m.mu.Lock()
	defer m.mu.Unlock()
	em := m.get(endpoint)
	em.requests++
	em.canceled++
	em.total += d
	if d > em.max {
		em.max = d
	}
}

// recordShed books a request rejected with 429 past the admission
// queue bound.  Sheds are neither errors nor regular requests — they
// never reached a handler — so they get their own counter.
func (m *metrics) recordShed(endpoint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.get(endpoint).shed++
}

// EndpointMetrics is one endpoint's row in the /v1/metrics body.
type EndpointMetrics struct {
	Endpoint string  `json:"endpoint"`
	Requests uint64  `json:"requests"`
	Errors   uint64  `json:"errors"`
	Canceled uint64  `json:"canceled"`
	Shed     uint64  `json:"shed"`
	AvgMs    float64 `json:"avg_ms"`
	MaxMs    float64 `json:"max_ms"`
}

// MetricsResponse is the /v1/metrics body: request latencies per
// endpoint plus the hit rates of both campaign-cache tiers and the
// underlying store.
type MetricsResponse struct {
	Endpoints []EndpointMetrics `json:"endpoints"`
	Cache     core.CacheStats   `json:"cache"`
	Store     *store.Stats      `json:"store,omitempty"`
}

func (s *Server) metricsSnapshot() MetricsResponse {
	s.metrics.mu.Lock()
	eps := make([]EndpointMetrics, 0, len(s.metrics.per))
	for name, em := range s.metrics.per {
		row := EndpointMetrics{
			Endpoint: name,
			Requests: em.requests,
			Errors:   em.errors,
			Canceled: em.canceled,
			Shed:     em.shed,
			MaxMs:    float64(em.max) / float64(time.Millisecond),
		}
		if em.requests > 0 {
			row.AvgMs = float64(em.total) / float64(em.requests) / float64(time.Millisecond)
		}
		eps = append(eps, row)
	}
	s.metrics.mu.Unlock()
	sort.Slice(eps, func(i, j int) bool { return eps[i].Endpoint < eps[j].Endpoint })

	resp := MetricsResponse{Endpoints: eps, Cache: s.cache.Stats()}
	if st := s.cache.Store(); st != nil {
		stats := st.Stats()
		resp.Store = &stats
	}
	return resp
}
