// Package service is the fx8d measurement service: it exposes the
// study's campaign artefacts — the full study, every table and
// figure, and the parameter sweeps — as addressable HTTP resources
// backed by the two-tier campaign cache (memory -> disk -> compute).
// Expensive endpoints run on top of the session-execution engine
// behind a bounded admission semaphore; identical concurrent requests
// singleflight down to one campaign run.  The daemon in cmd/fx8d
// wraps this package in a listener with graceful shutdown.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/healthz                 liveness, uptime, in-flight count
//	GET  /v1/study?scale=S           campaign summary (quick|paper)
//	GET  /v1/artefacts/{kind}/{name} rendered table or figure
//	GET  /v1/tables/{name}           alias of /v1/artefacts/table/{name}
//	GET  /v1/figures/{name}          alias of /v1/artefacts/figure/{name}
//	GET  /v1/sweep?param=P           sweep sched|cache|ce
//	GET  /v1/progress?scale=S        SSE stream of campaign progress
//	GET  /v1/metrics                 per-endpoint latency + cache hit rates
//	GET  /v1/trace/{id}              spans recorded under one request ID
//	POST /v1/purge                   drop both cache tiers
//	POST /v1/run/session             execute one campaign session unit
//	POST /v1/run/sessions            execute a batch of session units
//	POST /v1/run/sweep               execute one sweep-point unit
//	POST /v1/jobs                    submit a campaign job (201/200)
//	GET  /v1/jobs                    list known jobs
//	GET  /v1/jobs/{id}               job state machine + progress
//	GET  /v1/jobs/{id}/result        finished job's payload
//	GET  /v1/jobs/{id}/events        SSE stream of job progress
//	DELETE /v1/jobs/{id}             cancel a running job
//	POST /v1/backends/register       announce a worker (TTL'd)
//	GET  /v1/backends                live fleet membership
//
// The /v1/jobs endpoints are internal/coord's job-resource API:
// campaigns as persistent, resumable resources with checkpoint in the
// unit cache (see that package's doc for the lifecycle and resume
// semantics).  Every non-2xx response from any endpoint carries the
// unified error envelope — remote.ErrorResponse: a machine-readable
// code, the message, and the request ID for trace correlation.
//
// The /v1/run endpoints are the serving side of sharded execution
// (internal/remote): each request carries JSON work units, runs
// behind the same admission semaphore as the other expensive
// endpoints, and is cached per unit in the campaign store, so a
// re-routed or hedged unit that was already computed here is served
// from disk.  The batch endpoint carries many units per POST —
// amortizing the per-unit HTTP round trip — and computes each unit
// through the same per-unit cache namespace as the single-unit
// endpoint, so batched and unbatched results are byte-identical.
//
// # Conditional requests
//
// Every campaign artefact is a pure function of its canonically
// encoded configuration, so /v1/study, /v1/tables/{name} and
// /v1/figures/{name} carry a strong ETag derived from the same
// sha256 content address the campaign store uses.  A request
// revalidating with If-None-Match gets 304 Not Modified before any
// campaign work happens — revalidation is free even when the
// campaign is not.  (/v1/sweep responses embed cache-tier provenance
// in the body, so they are deliberately ETag-less.)
//
// # Backpressure
//
// Admission is doubly bounded: MaxInFlight expensive requests run
// concurrently and at most MaxQueue more may wait.  A request past
// both bounds is shed immediately with 429 Too Many Requests and a
// Retry-After header instead of queuing unboundedly — under
// overload the daemon degrades to fast rejections, never to an
// unbounded latency tail.
//
// # Observability
//
// Every request is measured into lock-free obs counters and sharded
// latency histograms; /v1/metrics renders them as the historical
// JSON document or, when the request asks (?format=prometheus or a
// text/plain Accept header), as Prometheus text exposition covering
// the endpoints plus the engine's worker pool, the campaign cache,
// and the store.  Every request also carries an X-Request-Id —
// assigned here if the client sent none, echoed on the response —
// and a request arriving with a caller-supplied ID records one span
// under it; GET /v1/trace/{id} returns the spans, which for a
// sharded campaign (whose remote client forwards the ID on every
// unit POST) reconstructs which units ran on this daemon and how
// long each took.  Tracing is opt-in by supplying the ID, so
// uncorrelated traffic never evicts a campaign's trace.
package service

import (
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net/http"
	"runtime"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro/internal/coord"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/experiments"
	"repro/internal/obs"
	"repro/internal/remote"
	"repro/internal/store"
)

// Version and Commit identify the running build in /v1/healthz.
// cmd/fx8d stamps them at link time:
//
//	go build -ldflags "-X repro/internal/service.Version=v1.2.3 \
//	                   -X repro/internal/service.Commit=abc1234"
var (
	Version = "dev"
	Commit  = "unknown"
)

// Config sizes a Server.
type Config struct {
	// Cache is the campaign cache; nil creates a private memory-only
	// cache.  Attach a store to share campaigns with the CLI tools.
	Cache *core.StudyCache

	// Workers bounds each campaign's session parallelism (0 = one
	// worker per CPU), passed through to the engine.
	Workers int

	// MaxInFlight bounds concurrently admitted expensive requests
	// (study, tables, figures, sweep); further requests queue until
	// a slot frees or the client gives up.  0 means 4.
	MaxInFlight int

	// MaxQueue bounds how many expensive requests may wait for
	// admission; a request arriving past the bound is shed with
	// 429 + Retry-After instead of queuing.  0 means
	// 4 * MaxInFlight.
	MaxQueue int

	// MaxSweepSamples bounds the samples parameter of /v1/sweep:
	// admission bounds how many requests run, not how big one
	// request is, so an unbounded samples value would let a single
	// request monopolize a slot indefinitely.  Requests past the
	// bound get 400.  0 means DefaultMaxSweepSamples.
	MaxSweepSamples int

	// MaxBatchUnits bounds how many units one POST /v1/run/sessions
	// request may carry; requests past the bound get 400.  0 means
	// DefaultMaxBatchUnits.
	MaxBatchUnits int

	// MaxTraces bounds how many request IDs the trace store retains
	// for GET /v1/trace/{id}; the oldest trace is evicted past the
	// bound.  0 means obs.DefaultMaxTraces.
	MaxTraces int

	// Logger, when set, receives one structured access-log record per
	// request (endpoint, method, path, outcome, duration, request
	// ID).  nil disables access logging.
	Logger *slog.Logger

	// Coordinator backs the /v1/jobs API.  nil creates a private
	// coordinator sharing the cache's store and Registry; pass one to
	// share jobs with the daemon's resume-at-boot logic (cmd/fx8d).
	Coordinator *coord.Coordinator

	// Registry backs /v1/backends registration.  nil creates a fresh
	// registry.  Ignored when Coordinator is set — the coordinator's
	// own registry is authoritative, so register a Registry there.
	Registry *coord.Registry
}

// Default request-cost bounds for Config's zero fields.
const (
	DefaultMaxSweepSamples = 10_000
	DefaultMaxBatchUnits   = 256
)

// Server is the fx8d HTTP handler.
type Server struct {
	cfg      Config
	cache    *core.StudyCache
	coord    *coord.Coordinator
	ownCoord bool // New built the coordinator; Close tears it down
	mux      *http.ServeMux
	sem      chan struct{}
	waiting  atomic.Int64 // expensive requests queued for admission
	metrics  *metrics
	tracer   *obs.Tracer
	progress *progressBoard
	start    time.Time
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = core.NewStudyCache()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = 4 * cfg.MaxInFlight
	}
	if cfg.MaxSweepSamples <= 0 {
		cfg.MaxSweepSamples = DefaultMaxSweepSamples
	}
	if cfg.MaxBatchUnits <= 0 {
		cfg.MaxBatchUnits = DefaultMaxBatchUnits
	}
	s := &Server{
		cfg:      cfg,
		cache:    cfg.Cache,
		coord:    cfg.Coordinator,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		metrics:  newMetrics(),
		tracer:   obs.NewTracer(cfg.MaxTraces),
		progress: newProgressBoard(),
		start:    time.Now(),
	}
	if s.coord == nil {
		s.coord = coord.New(coord.Config{
			Store:    cfg.Cache.Store(),
			Registry: cfg.Registry,
			Workers:  cfg.Workers,
		})
		s.ownCoord = true
	}
	s.cache.OnProgress = s.progress.observe
	s.registerProcess()

	s.handle("GET /v1/healthz", "healthz", false, s.handleHealthz)
	s.handle("GET /v1/study", "study", true, s.handleStudy)
	s.handle("GET /v1/artefacts/{kind}/{name}", "artefacts", true, s.handleArtefact)
	s.handle("GET /v1/tables/{name}", "tables", true, s.handleTableAlias)
	s.handle("GET /v1/figures/{name}", "figures", true, s.handleFigureAlias)
	s.handle("GET /v1/sweep", "sweep", true, s.handleSweep)
	s.handle("GET /v1/metrics", "metrics", false, s.handleMetrics)
	s.handle("GET /v1/trace/{id}", "trace", false, s.handleTrace)
	s.handle("POST /v1/purge", "purge", false, s.handlePurge)
	s.handle("POST "+remote.SessionPath, "run_session", true, s.handleRunSession)
	s.handle("POST "+remote.SessionBatchPath, "run_sessions", true, s.handleRunSessionBatch)
	s.handle("POST "+remote.SweepPath, "run_sweep", true, s.handleRunSweep)
	s.handle("POST "+coord.JobsPath, "jobs", false, s.handleJobSubmit)
	s.handle("GET "+coord.JobsPath, "jobs", false, s.handleJobList)
	s.handle("GET "+coord.JobsPath+"/{id}", "jobs", false, s.handleJobGet)
	s.handle("GET "+coord.JobsPath+"/{id}/result", "jobs", false, s.handleJobResult)
	s.handle("DELETE "+coord.JobsPath+"/{id}", "jobs", false, s.handleJobCancel)
	s.handle("POST "+coord.BackendsRegisterPath, "backends", false, s.handleBackendRegister)
	s.handle("GET "+coord.BackendsPath, "backends", false, s.handleBackendList)
	s.metrics.register("progress")
	s.mux.HandleFunc("GET /v1/progress", s.handleProgress) // streams; self-instrumented
	s.metrics.register("jobs_events")
	s.mux.HandleFunc("GET "+coord.JobsPath+"/{id}/events", s.handleJobEvents) // streams; self-instrumented
	return s
}

// Coordinator returns the server's campaign coordinator — the one
// behind /v1/jobs.  cmd/fx8d uses it to resume interrupted jobs at
// boot.
func (s *Server) Coordinator() *coord.Coordinator {
	return s.coord
}

// Close stops a coordinator the server built itself (Config without
// an explicit Coordinator); a caller-supplied coordinator is the
// caller's to close.
func (s *Server) Close() {
	if s.ownCoord {
		s.coord.Close()
	}
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError carries an HTTP status and a machine-readable error code
// (one of remote's Code* constants) out of a handler.
type httpError struct {
	status int
	code   string
	msg    string
}

func (e httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return httpError{http.StatusBadRequest, remote.CodeInvalidConfig, fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return httpError{http.StatusNotFound, remote.CodeNotFound, fmt.Sprintf(format, args...)}
}

func conflict(format string, args ...any) error {
	return httpError{http.StatusConflict, remote.CodeConflict, fmt.Sprintf(format, args...)}
}

// writeError emits the unified error envelope every non-2xx response
// carries: a machine-readable code, the human-readable message, and
// the request ID already echoed on the response headers — the handle
// for GET /v1/trace/{id} when correlating the failure with a trace.
func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, remote.ErrorResponse{
		Code:      code,
		Message:   msg,
		RequestID: w.Header().Get(obs.RequestIDHeader),
	})
}

// spanUnits carries the work-unit IDs a handler executed out to the
// request's trace span.  The wrapper plants one per traced request;
// the unit handlers append to it from the request goroutine only.
type spanUnits struct{ ids []int }

type spanUnitsKey struct{}

func withSpanUnits(ctx context.Context, su *spanUnits) context.Context {
	return context.WithValue(ctx, spanUnitsKey{}, su)
}

func spanUnitsFrom(ctx context.Context) *spanUnits {
	su, _ := ctx.Value(spanUnitsKey{}).(*spanUnits)
	return su
}

// handle registers a handler with metrics, tracing and, for expensive
// endpoints, doubly bounded admission: MaxInFlight requests run,
// at most MaxQueue more wait, and anything past both is shed with
// 429 + Retry-After — overload degrades to fast rejections, never
// to an unbounded queue.
//
// Every request gets a request ID — the inbound X-Request-Id if the
// client sent one (the remote client forwards its campaign's ID on
// every unit POST), a fresh one otherwise — echoed on the response.
// Spans are recorded only under caller-supplied IDs: tracing is the
// caller's opt-in, so uncorrelated traffic (dashboards, load tests)
// costs nothing on the hot path and cannot evict a campaign's trace
// from the bounded store.  GET /v1/trace/{id} reconstructs where a
// sharded campaign's time went.
func (s *Server) handle(pattern, endpoint string, expensive bool, h func(w http.ResponseWriter, r *http.Request) error) {
	s.metrics.register(endpoint)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		id := r.Header.Get(obs.RequestIDHeader)
		traced := id != ""
		if !traced {
			id = obs.NewRequestID()
		}
		w.Header().Set(obs.RequestIDHeader, id)
		outcome := "ok"
		if traced {
			su := &spanUnits{}
			r = r.WithContext(withSpanUnits(obs.WithRequestID(r.Context(), id), su))
			defer func() {
				s.tracer.Record(id, obs.Span{
					Name: endpoint, Start: start, Duration: time.Since(start),
					Outcome: outcome, Units: su.ids,
				})
			}()
		}
		if s.cfg.Logger != nil {
			defer func() {
				s.cfg.Logger.Info("request",
					"id", id, "endpoint", endpoint,
					"method", r.Method, "path", r.URL.Path,
					"outcome", outcome,
					"duration_ms", float64(time.Since(start))/float64(time.Millisecond))
			}()
		}
		if expensive {
			ok, why := s.admit(w, r, endpoint)
			if !ok {
				outcome = why
				return
			}
			defer func() { <-s.sem }()
			if r.Context().Err() != nil {
				// The client gave up between admission and compute:
				// don't spend a campaign on a response nobody will
				// read, and don't book the disconnect as a server
				// error.
				s.metrics.recordCanceled(endpoint, time.Since(start))
				outcome = "canceled"
				return
			}
		}
		err := h(w, r)
		s.metrics.record(endpoint, time.Since(start), err != nil)
		if err != nil {
			outcome = "error"
			status, code := http.StatusInternalServerError, remote.CodeInternal
			if he, ok := err.(httpError); ok {
				status, code = he.status, he.code
			}
			writeError(w, status, code, err.Error())
		}
	})
}

// retryAfterSeconds is the Retry-After hint on shed responses: one
// admission slot's typical turnaround at quick scale.
const retryAfterSeconds = "1"

// admit acquires an admission slot, reporting ok == false (with the
// response already written or abandoned, and why — "shed" or
// "canceled" — for the trace span) when the request was shed or the
// client gave up while queued.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, endpoint string) (ok bool, why string) {
	select {
	case s.sem <- struct{}{}:
		return true, "" // free slot: no queuing, no shed check
	default:
	}
	// Compare in int64: int(n) on GOARCH=386 would wrap negative past
	// 2^31 waiters and silently bypass the queue bound.
	if n := s.waiting.Add(1); n > int64(s.cfg.MaxQueue) {
		s.waiting.Add(-1)
		s.metrics.recordShed(endpoint)
		w.Header().Set("Retry-After", retryAfterSeconds)
		writeError(w, http.StatusTooManyRequests, remote.CodeShed,
			"admission queue full; retry later")
		return false, "shed"
	}
	defer s.waiting.Add(-1)
	select {
	case s.sem <- struct{}{}:
		return true, ""
	case <-r.Context().Done():
		// Client gave up while queued; nothing to write.
		s.metrics.recordCanceled(endpoint, 0)
		return false, "canceled"
	}
}

// writeJSON emits one canonical JSON document: compact encoding plus
// a trailing newline.  Canonical bytes are part of the service's
// contract — the same artefact is byte-identical no matter which
// cache tier produced it.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		// Even the failure path speaks the envelope; ErrorResponse
		// itself always marshals, so this cannot recurse.
		writeError(w, http.StatusInternalServerError, remote.CodeInternal, err.Error())
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
	return nil
}

// ETag namespaces version the request-identity encoding behind each
// artefact endpoint's ETag.  They are distinct from the campaign
// store's namespaces: an ETag names a response shape, not a stored
// record.
const (
	studyETagNamespace    = "http/study/v1"
	artefactETagNamespace = "http/artefact/v1"
)

// etagFor derives a strong ETag from the canonical content address of
// a response's request identity.  Artefact responses are pure
// functions of that identity, so the tag is computable before any
// campaign work — revalidation costs nothing even when computing the
// response would not.
func etagFor(namespace string, v any) string {
	key, err := store.Key(namespace, v)
	if err != nil {
		return "" // unencodable identity: skip conditional handling
	}
	return `"` + key + `"`
}

// clientHasETag reports whether the request's If-None-Match matches
// etag.  Weak-prefixed tags compare equal to their strong form: the
// byte-identical-responses discipline makes every match semantically
// exact.
func clientHasETag(r *http.Request, etag string) bool {
	if etag == "" {
		return false
	}
	for _, c := range strings.Split(r.Header.Get("If-None-Match"), ",") {
		c = strings.TrimSpace(c)
		c = strings.TrimPrefix(c, "W/")
		if c == etag || c == "*" {
			return true
		}
	}
	return false
}

// maybeNotModified sets the ETag header and, when the client already
// holds the current representation, answers 304 — reporting true so
// the handler skips the campaign entirely.
func maybeNotModified(w http.ResponseWriter, r *http.Request, etag string) bool {
	if etag == "" {
		return false
	}
	w.Header().Set("ETag", etag)
	if clientHasETag(r, etag) {
		w.WriteHeader(http.StatusNotModified)
		return true
	}
	return false
}

// scaleParam resolves the scale query parameter (default quick).
func scaleParam(r *http.Request) (string, core.StudyConfig, error) {
	scale := r.FormValue("scale")
	if scale == "" {
		scale = "quick"
	}
	cfg, err := core.ScaleConfig(scale)
	if err != nil {
		return "", core.StudyConfig{}, badRequest("%v", err)
	}
	return scale, cfg, nil
}

// HealthzResponse is the /v1/healthz body: liveness plus the build
// identity (stamped via -ldflags -X, see Version) and a few Go
// runtime vitals.
type HealthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int     `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Store         bool    `json:"store_attached"`
	Version       string  `json:"version"`
	Commit        string  `json:"commit"`
	GoVersion     string  `json:"go_version"`
	Goroutines    int     `json:"goroutines"`
	HeapAlloc     uint64  `json:"heap_alloc_bytes"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      len(s.sem),
		MaxInFlight:   s.cfg.MaxInFlight,
		Store:         s.cache.Store() != nil,
		Version:       Version,
		Commit:        Commit,
		GoVersion:     runtime.Version(),
		Goroutines:    runtime.NumGoroutine(),
		HeapAlloc:     ms.HeapAlloc,
	})
}

// StudyResponse is the /v1/study body: the campaign's configuration
// and headline results.  Every field is a pure function of the
// configuration, so responses are byte-identical across processes and
// cache tiers.
type StudyResponse struct {
	Scale    string           `json:"scale"`
	Config   core.StudyConfig `json:"config"`
	Sessions struct {
		Random     int `json:"random"`
		HighConc   int `json:"high_conc"`
		Transition int `json:"transition"`
	} `json:"sessions"`
	Samples  int              `json:"samples"`
	Overall  core.Concurrency `json:"overall"`
	Records  int              `json:"records"`
	Headline struct {
		MissRateAtHalf float64 `json:"missrate_at_half_cw"`
		MissRateAtFull float64 `json:"missrate_at_full_cw"`
		Ratio          float64 `json:"ratio"`
	} `json:"headline"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) error {
	scale, cfg, err := scaleParam(r)
	if err != nil {
		return err
	}
	if maybeNotModified(w, r, etagFor(studyETagNamespace, cfg)) {
		return nil
	}
	st := s.cache.Get(cfg, s.cfg.Workers)
	resp := StudyResponse{Scale: scale, Config: st.Config}
	resp.Sessions.Random = len(st.Random)
	resp.Sessions.HighConc = len(st.HighConc)
	resp.Sessions.Transition = len(st.Transition)
	resp.Samples = len(st.AllSamples)
	resp.Overall = st.OverallMeasures
	resp.Records = st.Overall.Records
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	resp.Headline.MissRateAtHalf = atHalf
	resp.Headline.MissRateAtFull = atFull
	resp.Headline.Ratio = ratio
	return writeJSON(w, http.StatusOK, resp)
}

// ArtefactResponse is the body of /v1/tables/{name} and
// /v1/figures/{name}: the artefact rendered in the same SAS-style
// text form the CLI tools print.
type ArtefactResponse struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Scale string `json:"scale"`
	Text  string `json:"text"`
}

// artefactIdentity is the request identity behind a table or figure
// ETag: everything the rendered text is a function of.  Name is
// lowercased so the case-insensitive spellings of one artefact share
// one ETag.
type artefactIdentity struct {
	Kind   string
	Name   string
	Config core.StudyConfig
}

// handleArtefact serves GET /v1/artefacts/{kind}/{name}, the single
// handler behind every rendered artefact.  The historical
// /v1/tables/{name} and /v1/figures/{name} paths are thin aliases
// onto it, so the two spellings of one artefact are byte-identical —
// same body, same ETag.
func (s *Server) handleArtefact(w http.ResponseWriter, r *http.Request) error {
	kind := r.PathValue("kind")
	switch kind {
	case "table", "tables":
		kind = "table"
	case "figure", "figures":
		kind = "figure"
	default:
		return notFound("unknown artefact kind %q (valid kinds: table, figure)", kind)
	}
	return s.renderArtefact(w, r, kind, r.PathValue("name"))
}

func (s *Server) handleTableAlias(w http.ResponseWriter, r *http.Request) error {
	return s.renderArtefact(w, r, "table", r.PathValue("name"))
}

func (s *Server) handleFigureAlias(w http.ResponseWriter, r *http.Request) error {
	return s.renderArtefact(w, r, "figure", r.PathValue("name"))
}

// renderArtefact is the shared artefact pipeline: validate the name
// against kind's catalogue, answer 304 off the ETag when possible,
// otherwise render from the cached study.  kind is "table" or
// "figure" (already normalized).
func (s *Server) renderArtefact(w http.ResponseWriter, r *http.Request, kind, name string) error {
	scale, cfg, err := scaleParam(r)
	if err != nil {
		return err
	}
	has, render, catalogue := experiments.HasTable, experiments.RenderTable, experiments.Tables
	if kind == "figure" {
		has, render, catalogue = experiments.HasFigure, experiments.RenderFigure, experiments.Figures
	}
	if !has(name) {
		return notFound("unknown %s %q (valid %ss: %v)", kind, name, kind, experiments.Names(catalogue()))
	}
	id := artefactIdentity{Kind: kind, Name: strings.ToLower(name), Config: cfg}
	if maybeNotModified(w, r, etagFor(artefactETagNamespace, id)) {
		return nil
	}
	st := s.cache.Get(cfg, s.cfg.Workers)
	text, _ := render(name, st)
	return writeJSON(w, http.StatusOK, ArtefactResponse{Kind: kind, Name: name, Scale: scale, Text: text})
}

// SweepResponse is the /v1/sweep body.
type SweepResponse struct {
	Param  string                   `json:"param"`
	Title  string                   `json:"title"`
	Cached bool                     `json:"cached"`
	Points []experiments.SweepPoint `json:"points"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	param := r.FormValue("param")
	if param == "" {
		param = "sched"
	}
	samples := 12
	if v := r.FormValue("samples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return badRequest("samples must be a positive integer, got %q", v)
		}
		if n > s.cfg.MaxSweepSamples {
			return badRequest("samples %d exceeds the %d-sample bound", n, s.cfg.MaxSweepSamples)
		}
		samples = n
	}
	seed := uint64(1987)
	if v := r.FormValue("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return badRequest("seed must be an unsigned integer, got %q", v)
		}
		seed = n
	}
	cfg := experiments.SweepConfig{
		Kind:    param,
		Values:  experiments.DefaultSweepValues(param),
		Seed:    seed,
		Samples: samples,
	}
	pts, hit, err := experiments.CachedSweep(s.cache.Store(), cfg, s.cfg.Workers)
	if err != nil {
		return badRequest("%v", err)
	}
	return writeJSON(w, http.StatusOK, SweepResponse{
		Param:  param,
		Title:  experiments.SweepTitle(param),
		Cached: hit,
		Points: pts,
	})
}

// PurgeResponse is the /v1/purge body.
type PurgeResponse struct {
	Purged bool `json:"purged"`
}

func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) error {
	if err := s.cache.Purge(); err != nil {
		return fmt.Errorf("purging store: %w", err)
	}
	// Purged campaigns are no longer "done"; forget their progress.
	s.progress.reset()
	return writeJSON(w, http.StatusOK, PurgeResponse{Purged: true})
}

// wantsPrometheus reports whether a /v1/metrics request asked for
// text exposition instead of the historical JSON document: an
// explicit ?format=prometheus, or an Accept header naming text/plain
// or the OpenMetrics type (what Prometheus scrapers send).  Plain
// curl and the loadgen scraper keep getting JSON.
func wantsPrometheus(r *http.Request) bool {
	switch r.FormValue("format") {
	case "prometheus":
		return true
	case "json":
		return false
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") ||
		strings.Contains(accept, "application/openmetrics-text")
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	if wantsPrometheus(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		return s.metrics.reg.WritePrometheus(w)
	}
	return writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// TraceResponse is the GET /v1/trace/{id} body: every span this
// daemon recorded under one request ID, in recording order.  For a
// sharded campaign, querying each backend for the campaign's ID
// reconstructs which units ran where and how long each took.
type TraceResponse struct {
	ID      string     `json:"id"`
	Spans   []obs.Span `json:"spans"`
	Dropped int        `json:"dropped,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) error {
	id := r.PathValue("id")
	spans, dropped, ok := s.tracer.Trace(id)
	if !ok {
		retained := s.cfg.MaxTraces
		if retained <= 0 {
			retained = obs.DefaultMaxTraces
		}
		return notFound("unknown trace %q (traces are retained for the last %d request IDs)",
			id, retained)
	}
	return writeJSON(w, http.StatusOK, TraceResponse{ID: id, Spans: spans, Dropped: dropped})
}

// Unit-execution endpoints: the serving side of internal/remote.

// Unit results are cached under the shared namespaces in
// internal/coord (SessionUnitNamespace, SweepUnitNamespace): the
// fleet coordinator replays exactly the entries these endpoints
// write, which is what makes a job's checkpoint nothing more than the
// unit cache filling up.

// maxUnitBody bounds a /v1/run request body; work units are small
// configuration records.
const maxUnitBody = 1 << 20

// decodeUnit reads one JSON work unit from a request body.
func decodeUnit(w http.ResponseWriter, r *http.Request, unit any) error {
	body := http.MaxBytesReader(w, r.Body, maxUnitBody)
	if err := json.NewDecoder(body).Decode(unit); err != nil {
		return badRequest("decoding work unit: %v", err)
	}
	return nil
}

// Unit results flow through store.GetOrComputeJSON: a unit already
// computed here (or by a peer sharing the store directory) is served
// from disk, and computed results are written back — a re-routed or
// hedged duplicate never recomputes.

func (s *Server) handleRunSession(w http.ResponseWriter, r *http.Request) error {
	var unit core.StudyUnit
	if err := decodeUnit(w, r, &unit); err != nil {
		return err
	}
	if unit.Random == nil && unit.Triggered == nil {
		return badRequest("session unit %d has no spec", unit.ID)
	}
	if su := spanUnitsFrom(r.Context()); su != nil {
		su.ids = append(su.ids, unit.ID)
	}
	res, err := store.GetOrComputeJSON(s.cache.Store(), coord.SessionUnitNamespace, unit, func() (core.StudyUnitResult, error) {
		return core.RunStudyUnit(unit)
	})
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, res)
}

// maxBatchBody bounds a /v1/run/sessions request body; even a
// full-size batch of unit configurations is far below this.
const maxBatchBody = 8 << 20

// handleRunSessionBatch executes many session units in one request,
// amortizing the per-unit HTTP round trip.  Each unit flows through
// the same sessionUnitNamespace cache as the single-unit endpoint, so
// a batched result is byte-identical to its unbatched equivalent and
// duplicates (re-routes, hedges, unbatched retries) never recompute.
func (s *Server) handleRunSessionBatch(w http.ResponseWriter, r *http.Request) error {
	var units []core.StudyUnit
	body := http.MaxBytesReader(w, r.Body, maxBatchBody)
	if err := json.NewDecoder(body).Decode(&units); err != nil {
		return badRequest("decoding work units: %v", err)
	}
	if len(units) == 0 {
		return badRequest("empty session batch")
	}
	if len(units) > s.cfg.MaxBatchUnits {
		return badRequest("batch of %d units exceeds the %d-unit bound", len(units), s.cfg.MaxBatchUnits)
	}
	for _, u := range units {
		if u.Random == nil && u.Triggered == nil {
			return badRequest("session unit %d has no spec", u.ID)
		}
	}
	if su := spanUnitsFrom(r.Context()); su != nil {
		for _, u := range units {
			su.ids = append(su.ids, u.ID)
		}
	}
	runner := engine.Local[core.StudyUnit, core.StudyUnitResult]{
		Fn: func(u core.StudyUnit) (core.StudyUnitResult, error) {
			return store.GetOrComputeJSON(s.cache.Store(), coord.SessionUnitNamespace, u, func() (core.StudyUnitResult, error) {
				return core.RunStudyUnit(u)
			})
		},
	}
	res, err := engine.RunAll(r.Context(), s.cfg.Workers, units, runner, nil)
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRunSweep(w http.ResponseWriter, r *http.Request) error {
	var unit experiments.SweepUnit
	if err := decodeUnit(w, r, &unit); err != nil {
		return err
	}
	if experiments.DefaultSweepValues(unit.Kind) == nil {
		return badRequest("unknown sweep kind %q", unit.Kind)
	}
	res, err := store.GetOrComputeJSON(s.cache.Store(), coord.SweepUnitNamespace, unit, func() (experiments.SweepPoint, error) {
		return experiments.RunSweepUnit(unit)
	})
	if err != nil {
		// The kind was validated above; remaining unit errors are
		// out-of-range values — the client's fault, not ours.
		return badRequest("%v", err)
	}
	return writeJSON(w, http.StatusOK, res)
}
