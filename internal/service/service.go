// Package service is the fx8d measurement service: it exposes the
// study's campaign artefacts — the full study, every table and
// figure, and the parameter sweeps — as addressable HTTP resources
// backed by the two-tier campaign cache (memory -> disk -> compute).
// Expensive endpoints run on top of the session-execution engine
// behind a bounded admission semaphore; identical concurrent requests
// singleflight down to one campaign run.  The daemon in cmd/fx8d
// wraps this package in a listener with graceful shutdown.
//
// Endpoints (all JSON unless noted):
//
//	GET  /v1/healthz          liveness, uptime, in-flight count
//	GET  /v1/study?scale=S    campaign summary (quick|paper)
//	GET  /v1/tables/{name}    table 1|2|3|4|a1
//	GET  /v1/figures/{name}   figure 3..14, A.*, B.*
//	GET  /v1/sweep?param=P    sweep sched|cache|ce
//	GET  /v1/progress?scale=S SSE stream of campaign progress
//	GET  /v1/metrics          per-endpoint latency + cache hit rates
//	POST /v1/purge            drop both cache tiers
//	POST /v1/run/session      execute one campaign session unit
//	POST /v1/run/sweep        execute one sweep-point unit
//
// The /v1/run endpoints are the serving side of sharded execution
// (internal/remote): each request carries one JSON work unit, runs
// behind the same admission semaphore as the other expensive
// endpoints, and is cached per unit in the campaign store, so a
// re-routed or hedged unit that was already computed here is served
// from disk.
package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/remote"
	"repro/internal/store"
)

// Config sizes a Server.
type Config struct {
	// Cache is the campaign cache; nil creates a private memory-only
	// cache.  Attach a store to share campaigns with the CLI tools.
	Cache *core.StudyCache

	// Workers bounds each campaign's session parallelism (0 = one
	// worker per CPU), passed through to the engine.
	Workers int

	// MaxInFlight bounds concurrently admitted expensive requests
	// (study, tables, figures, sweep); further requests queue until
	// a slot frees or the client gives up.  0 means 4.
	MaxInFlight int
}

// Server is the fx8d HTTP handler.
type Server struct {
	cfg      Config
	cache    *core.StudyCache
	mux      *http.ServeMux
	sem      chan struct{}
	metrics  *metrics
	progress *progressBoard
	start    time.Time
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.Cache == nil {
		cfg.Cache = core.NewStudyCache()
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	s := &Server{
		cfg:      cfg,
		cache:    cfg.Cache,
		mux:      http.NewServeMux(),
		sem:      make(chan struct{}, cfg.MaxInFlight),
		metrics:  newMetrics(),
		progress: newProgressBoard(),
		start:    time.Now(),
	}
	s.cache.OnProgress = s.progress.observe

	s.handle("GET /v1/healthz", "healthz", false, s.handleHealthz)
	s.handle("GET /v1/study", "study", true, s.handleStudy)
	s.handle("GET /v1/tables/{name}", "tables", true, s.handleTable)
	s.handle("GET /v1/figures/{name}", "figures", true, s.handleFigure)
	s.handle("GET /v1/sweep", "sweep", true, s.handleSweep)
	s.handle("GET /v1/metrics", "metrics", false, s.handleMetrics)
	s.handle("POST /v1/purge", "purge", false, s.handlePurge)
	s.handle("POST "+remote.SessionPath, "run_session", true, s.handleRunSession)
	s.handle("POST "+remote.SweepPath, "run_sweep", true, s.handleRunSweep)
	s.mux.HandleFunc("GET /v1/progress", s.handleProgress) // streams; self-instrumented
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError carries a status code out of a handler.
type httpError struct {
	status int
	msg    string
}

func (e httpError) Error() string { return e.msg }

func badRequest(format string, args ...any) error {
	return httpError{http.StatusBadRequest, fmt.Sprintf(format, args...)}
}

func notFound(format string, args ...any) error {
	return httpError{http.StatusNotFound, fmt.Sprintf(format, args...)}
}

// handle registers a handler with metrics and, for expensive
// endpoints, bounded admission.
func (s *Server) handle(pattern, endpoint string, expensive bool, h func(w http.ResponseWriter, r *http.Request) error) {
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		if expensive {
			select {
			case s.sem <- struct{}{}:
				defer func() { <-s.sem }()
			case <-r.Context().Done():
				// Client gave up while queued; nothing to write.
				s.metrics.record(endpoint, time.Since(start), true)
				return
			}
		}
		err := h(w, r)
		s.metrics.record(endpoint, time.Since(start), err != nil)
		if err != nil {
			status := http.StatusInternalServerError
			if he, ok := err.(httpError); ok {
				status = he.status
			}
			writeJSON(w, status, map[string]string{"error": err.Error()})
		}
	})
}

// writeJSON emits one canonical JSON document: compact encoding plus
// a trailing newline.  Canonical bytes are part of the service's
// contract — the same artefact is byte-identical no matter which
// cache tier produced it.
func writeJSON(w http.ResponseWriter, status int, v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return err
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
	return nil
}

// scaleParam resolves the scale query parameter (default quick).
func scaleParam(r *http.Request) (string, core.StudyConfig, error) {
	scale := r.FormValue("scale")
	if scale == "" {
		scale = "quick"
	}
	cfg, err := core.ScaleConfig(scale)
	if err != nil {
		return "", core.StudyConfig{}, badRequest("%v", err)
	}
	return scale, cfg, nil
}

// study runs (or fetches) the campaign for a request's scale.
func (s *Server) study(r *http.Request) (string, *core.Study, error) {
	scale, cfg, err := scaleParam(r)
	if err != nil {
		return "", nil, err
	}
	return scale, s.cache.Get(cfg, s.cfg.Workers), nil
}

// HealthzResponse is the /v1/healthz body.
type HealthzResponse struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	InFlight      int     `json:"in_flight"`
	MaxInFlight   int     `json:"max_in_flight"`
	Store         bool    `json:"store_attached"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, http.StatusOK, HealthzResponse{
		Status:        "ok",
		UptimeSeconds: time.Since(s.start).Seconds(),
		InFlight:      len(s.sem),
		MaxInFlight:   s.cfg.MaxInFlight,
		Store:         s.cache.Store() != nil,
	})
}

// StudyResponse is the /v1/study body: the campaign's configuration
// and headline results.  Every field is a pure function of the
// configuration, so responses are byte-identical across processes and
// cache tiers.
type StudyResponse struct {
	Scale    string           `json:"scale"`
	Config   core.StudyConfig `json:"config"`
	Sessions struct {
		Random     int `json:"random"`
		HighConc   int `json:"high_conc"`
		Transition int `json:"transition"`
	} `json:"sessions"`
	Samples  int              `json:"samples"`
	Overall  core.Concurrency `json:"overall"`
	Records  int              `json:"records"`
	Headline struct {
		MissRateAtHalf float64 `json:"missrate_at_half_cw"`
		MissRateAtFull float64 `json:"missrate_at_full_cw"`
		Ratio          float64 `json:"ratio"`
	} `json:"headline"`
}

func (s *Server) handleStudy(w http.ResponseWriter, r *http.Request) error {
	scale, st, err := s.study(r)
	if err != nil {
		return err
	}
	resp := StudyResponse{Scale: scale, Config: st.Config}
	resp.Sessions.Random = len(st.Random)
	resp.Sessions.HighConc = len(st.HighConc)
	resp.Sessions.Transition = len(st.Transition)
	resp.Samples = len(st.AllSamples)
	resp.Overall = st.OverallMeasures
	resp.Records = st.Overall.Records
	atHalf, atFull, ratio := st.Models.MissRateIncrease()
	resp.Headline.MissRateAtHalf = atHalf
	resp.Headline.MissRateAtFull = atFull
	resp.Headline.Ratio = ratio
	return writeJSON(w, http.StatusOK, resp)
}

// ArtefactResponse is the body of /v1/tables/{name} and
// /v1/figures/{name}: the artefact rendered in the same SAS-style
// text form the CLI tools print.
type ArtefactResponse struct {
	Kind  string `json:"kind"`
	Name  string `json:"name"`
	Scale string `json:"scale"`
	Text  string `json:"text"`
}

func (s *Server) handleTable(w http.ResponseWriter, r *http.Request) error {
	scale, st, err := s.study(r)
	if err != nil {
		return err
	}
	name := r.PathValue("name")
	text, ok := experiments.RenderTable(name, st)
	if !ok {
		return notFound("unknown table %q (valid tables: %v)", name, experiments.Names(experiments.Tables()))
	}
	return writeJSON(w, http.StatusOK, ArtefactResponse{Kind: "table", Name: name, Scale: scale, Text: text})
}

func (s *Server) handleFigure(w http.ResponseWriter, r *http.Request) error {
	scale, st, err := s.study(r)
	if err != nil {
		return err
	}
	name := r.PathValue("name")
	text, ok := experiments.RenderFigure(name, st)
	if !ok {
		return notFound("unknown figure %q (valid figures: %v)", name, experiments.Names(experiments.Figures()))
	}
	return writeJSON(w, http.StatusOK, ArtefactResponse{Kind: "figure", Name: name, Scale: scale, Text: text})
}

// SweepResponse is the /v1/sweep body.
type SweepResponse struct {
	Param  string                   `json:"param"`
	Title  string                   `json:"title"`
	Cached bool                     `json:"cached"`
	Points []experiments.SweepPoint `json:"points"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) error {
	param := r.FormValue("param")
	if param == "" {
		param = "sched"
	}
	samples := 12
	if v := r.FormValue("samples"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return badRequest("samples must be a positive integer, got %q", v)
		}
		samples = n
	}
	seed := uint64(1987)
	if v := r.FormValue("seed"); v != "" {
		n, err := strconv.ParseUint(v, 10, 64)
		if err != nil {
			return badRequest("seed must be an unsigned integer, got %q", v)
		}
		seed = n
	}
	cfg := experiments.SweepConfig{
		Kind:    param,
		Values:  experiments.DefaultSweepValues(param),
		Seed:    seed,
		Samples: samples,
	}
	pts, hit, err := experiments.CachedSweep(s.cache.Store(), cfg, s.cfg.Workers)
	if err != nil {
		return badRequest("%v", err)
	}
	return writeJSON(w, http.StatusOK, SweepResponse{
		Param:  param,
		Title:  experiments.SweepTitle(param),
		Cached: hit,
		Points: pts,
	})
}

// PurgeResponse is the /v1/purge body.
type PurgeResponse struct {
	Purged bool `json:"purged"`
}

func (s *Server) handlePurge(w http.ResponseWriter, r *http.Request) error {
	if err := s.cache.Purge(); err != nil {
		return fmt.Errorf("purging store: %w", err)
	}
	// Purged campaigns are no longer "done"; forget their progress.
	s.progress.reset()
	return writeJSON(w, http.StatusOK, PurgeResponse{Purged: true})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) error {
	return writeJSON(w, http.StatusOK, s.metricsSnapshot())
}

// Unit-execution endpoints: the serving side of internal/remote.

// Unit namespaces version the stored encoding of per-unit results;
// they are distinct from the whole-campaign and whole-sweep
// namespaces so a sharded unit and a local artefact never collide.
const (
	sessionUnitNamespace = "unit-session/v1"
	sweepUnitNamespace   = "unit-sweep/v1"
)

// maxUnitBody bounds a /v1/run request body; work units are small
// configuration records.
const maxUnitBody = 1 << 20

// decodeUnit reads one JSON work unit from a request body.
func decodeUnit(w http.ResponseWriter, r *http.Request, unit any) error {
	body := http.MaxBytesReader(w, r.Body, maxUnitBody)
	if err := json.NewDecoder(body).Decode(unit); err != nil {
		return badRequest("decoding work unit: %v", err)
	}
	return nil
}

// Unit results flow through store.GetOrComputeJSON: a unit already
// computed here (or by a peer sharing the store directory) is served
// from disk, and computed results are written back — a re-routed or
// hedged duplicate never recomputes.

func (s *Server) handleRunSession(w http.ResponseWriter, r *http.Request) error {
	var unit core.StudyUnit
	if err := decodeUnit(w, r, &unit); err != nil {
		return err
	}
	if unit.Random == nil && unit.Triggered == nil {
		return badRequest("session unit %d has no spec", unit.ID)
	}
	res, err := store.GetOrComputeJSON(s.cache.Store(), sessionUnitNamespace, unit, func() (core.StudyUnitResult, error) {
		return core.RunStudyUnit(unit)
	})
	if err != nil {
		return err
	}
	return writeJSON(w, http.StatusOK, res)
}

func (s *Server) handleRunSweep(w http.ResponseWriter, r *http.Request) error {
	var unit experiments.SweepUnit
	if err := decodeUnit(w, r, &unit); err != nil {
		return err
	}
	if experiments.DefaultSweepValues(unit.Kind) == nil {
		return badRequest("unknown sweep kind %q", unit.Kind)
	}
	res, err := store.GetOrComputeJSON(s.cache.Store(), sweepUnitNamespace, unit, func() (experiments.SweepPoint, error) {
		return experiments.RunSweepUnit(unit)
	})
	if err != nil {
		// The kind was validated above; remaining unit errors are
		// out-of-range values — the client's fault, not ours.
		return badRequest("%v", err)
	}
	return writeJSON(w, http.StatusOK, res)
}
