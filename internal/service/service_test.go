package service

import (
	"bufio"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/monitor"
	"repro/internal/store"
)

// quickish is a scaled-down "quick" campaign used where the test only
// needs cache behavior, not paper-fidelity numbers.  Tests that hit
// /v1/study?scale=quick use the real quick scale.
func newTestServer(t *testing.T, dir string) *Server {
	t.Helper()
	cache := core.NewStudyCache()
	if dir != "" {
		s, err := store.Open(dir)
		if err != nil {
			t.Fatal(err)
		}
		cache.SetStore(s)
	}
	srv := New(Config{Cache: cache, Workers: 0, MaxInFlight: 8})
	t.Cleanup(srv.Close)
	return srv
}

func get(t *testing.T, srv *Server, path string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("GET", path, nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

func TestHealthz(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	code, body := get(t, srv, "/v1/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthz = %d: %s", code, body)
	}
	var h HealthzResponse
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || !h.Store || h.MaxInFlight != 8 {
		t.Errorf("healthz body = %+v", h)
	}
}

// TestStudyComputeOnceThenDiskOnce is the acceptance-criteria
// integration test: two sequential requests for the same quick-scale
// study, served by two daemon instances sharing one store directory,
// hit compute exactly once then disk exactly once, and the response
// JSON is byte-identical.
func TestStudyComputeOnceThenDiskOnce(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()

	srv1 := newTestServer(t, dir)
	code, body1 := get(t, srv1, "/v1/study?scale=quick")
	if code != http.StatusOK {
		t.Fatalf("first study request = %d: %s", code, body1)
	}
	if st := srv1.cache.Stats(); st.Computes != 1 || st.DiskHits != 0 {
		t.Fatalf("first request stats = %+v, want exactly one compute", st)
	}

	// A second daemon over the same store: cold memory, warm disk.
	srv2 := newTestServer(t, dir)
	code, body2 := get(t, srv2, "/v1/study?scale=quick")
	if code != http.StatusOK {
		t.Fatalf("second study request = %d: %s", code, body2)
	}
	if st := srv2.cache.Stats(); st.DiskHits != 1 || st.Computes != 0 {
		t.Fatalf("second request stats = %+v, want exactly one disk hit and no compute", st)
	}
	if string(body1) != string(body2) {
		t.Errorf("disk-served study JSON differs from computed JSON:\n%s\nvs\n%s", body1, body2)
	}

	var resp StudyResponse
	if err := json.Unmarshal(body2, &resp); err != nil {
		t.Fatal(err)
	}
	quick := core.QuickScale()
	if resp.Sessions.Random != quick.RandomSessions || resp.Config != quick {
		t.Errorf("study response = %+v, want quick-scale campaign", resp)
	}
}

// TestConcurrentStudyRequestsRunOneCampaign is the second acceptance
// proof: N concurrent identical requests trigger exactly one campaign
// run, with every response byte-identical.
func TestConcurrentStudyRequestsRunOneCampaign(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	const n = 12
	bodies := make([][]byte, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			code, body := get(t, srv, "/v1/study?scale=quick")
			if code != http.StatusOK {
				t.Errorf("request %d = %d", i, code)
			}
			bodies[i] = body
		}(i)
	}
	wg.Wait()
	if st := srv.cache.Stats(); st.Computes != 1 {
		t.Errorf("%d concurrent requests ran %d campaigns, want exactly 1", n, st.Computes)
	}
	for i := 1; i < n; i++ {
		if string(bodies[i]) != string(bodies[0]) {
			t.Fatalf("response %d differs from response 0", i)
		}
	}
}

func TestTablesAndFiguresEndpoints(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("campaign-heavy rendering check in -short mode (covered without -race)")
	}
	srv := newTestServer(t, "")
	for _, tc := range []struct {
		path, want string
	}{
		{"/v1/tables/1?scale=quick", "TABLE 1"},
		{"/v1/tables/a1?scale=quick", "Table A.1"},
		{"/v1/figures/6?scale=quick", "Figure 6"},
		{"/v1/figures/B.3?scale=quick", "BUS BUSY"},
	} {
		code, body := get(t, srv, tc.path)
		if code != http.StatusOK {
			t.Errorf("%s = %d: %s", tc.path, code, body)
			continue
		}
		var a ArtefactResponse
		if err := json.Unmarshal(body, &a); err != nil {
			t.Errorf("%s: %v", tc.path, err)
			continue
		}
		if !strings.Contains(a.Text, tc.want) {
			t.Errorf("%s text missing %q", tc.path, tc.want)
		}
	}
	// All artefacts for one scale share one campaign run.
	if st := srv.cache.Stats(); st.Computes != 1 {
		t.Errorf("artefact endpoints ran %d campaigns, want 1", st.Computes)
	}

	if code, body := get(t, srv, "/v1/tables/9?scale=quick"); code != http.StatusNotFound {
		t.Errorf("unknown table = %d: %s", code, body)
	}
	if code, body := get(t, srv, "/v1/figures/99?scale=quick"); code != http.StatusNotFound {
		t.Errorf("unknown figure = %d: %s", code, body)
	}
}

func TestBadScaleReportsValidScales(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")
	code, body := get(t, srv, "/v1/study?scale=bogus")
	if code != http.StatusBadRequest {
		t.Fatalf("bad scale = %d", code)
	}
	for _, name := range core.ScaleNames() {
		if !strings.Contains(string(body), name) {
			t.Errorf("error %s does not enumerate scale %q", body, name)
		}
	}
}

func TestSweepEndpoint(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	code, body := get(t, srv, "/v1/sweep?param=ce&samples=1&seed=17")
	if code != http.StatusOK {
		t.Fatalf("sweep = %d: %s", code, body)
	}
	var resp SweepResponse
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Points) != 4 || resp.Points[0].Label != "CEs=1" {
		t.Errorf("sweep points = %+v", resp.Points)
	}
	// Same request again: served from a cache tier.
	_, body2 := get(t, srv, "/v1/sweep?param=ce&samples=1&seed=17")
	var resp2 SweepResponse
	json.Unmarshal(body2, &resp2)
	if !resp2.Cached {
		t.Error("repeated sweep not served from cache")
	}
	if code, _ := get(t, srv, "/v1/sweep?param=bogus"); code != http.StatusBadRequest {
		t.Errorf("unknown sweep param = %d", code)
	}
	if code, _ := get(t, srv, "/v1/sweep?param=ce&samples=zero"); code != http.StatusBadRequest {
		t.Errorf("bad samples = %d", code)
	}
}

func TestMetricsAndPurge(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("campaign-heavy metrics check in -short mode (covered without -race)")
	}
	srv := newTestServer(t, t.TempDir())
	get(t, srv, "/v1/study?scale=quick")
	get(t, srv, "/v1/study?scale=quick")
	code, body := get(t, srv, "/v1/metrics")
	if code != http.StatusOK {
		t.Fatalf("metrics = %d", code)
	}
	var m MetricsResponse
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatal(err)
	}
	var study *EndpointMetrics
	for i := range m.Endpoints {
		if m.Endpoints[i].Endpoint == "study" {
			study = &m.Endpoints[i]
		}
	}
	if study == nil || study.Requests != 2 || study.Errors != 0 {
		t.Errorf("study metrics = %+v", study)
	}
	if m.Cache.Computes != 1 || m.Cache.MemoryHits != 1 {
		t.Errorf("cache stats = %+v, want one compute and one memory hit", m.Cache)
	}
	if m.Store == nil || m.Store.Writes != 1 {
		t.Errorf("store stats = %+v, want one write", m.Store)
	}

	// Purge drops both tiers; the next request recomputes.
	req := httptest.NewRequest("POST", "/v1/purge", nil)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("purge = %d: %s", rec.Code, rec.Body)
	}
	// A purged campaign is no longer "done" to the progress stream.
	_, pbody := get(t, srv, "/v1/progress?scale=quick")
	if !strings.Contains(string(pbody), `"state":"idle"`) {
		t.Errorf("progress after purge = %s, want idle", pbody)
	}
	get(t, srv, "/v1/study?scale=quick")
	if st := srv.cache.Stats(); st.Computes != 2 {
		t.Errorf("Computes after purge = %d, want 2", st.Computes)
	}
	// The recompute re-registered with the board: done at full count.
	_, pbody = get(t, srv, "/v1/progress?scale=quick")
	if !strings.Contains(string(pbody), `"state":"done"`) {
		t.Errorf("progress after recompute = %s, want done", pbody)
	}
}

func TestProgressStream(t *testing.T) {
	t.Parallel()
	if testing.Short() {
		t.Skip("campaign-heavy sequential stream check in -short mode (covered without -race; the concurrent stream test still races)")
	}
	srv := newTestServer(t, "")

	// Idle before any campaign.
	code, body := get(t, srv, "/v1/progress?scale=quick")
	if code != http.StatusOK {
		t.Fatalf("progress = %d", code)
	}
	if !strings.Contains(string(body), `"state":"idle"`) {
		t.Errorf("cold progress = %s, want idle", body)
	}

	// Run the campaign, then the stream reports done with the full
	// session count.
	get(t, srv, "/v1/study?scale=quick")
	_, body = get(t, srv, "/v1/progress?scale=quick")
	var ev ProgressEvent
	line := lastDataLine(t, body)
	if err := json.Unmarshal([]byte(line), &ev); err != nil {
		t.Fatalf("decoding %q: %v", line, err)
	}
	total := core.QuickScale().TotalSessions()
	if ev.State != "done" || ev.Done != total || ev.Total != total {
		t.Errorf("progress after campaign = %+v, want done %d/%d", ev, total, total)
	}
	if code, _ := get(t, srv, "/v1/progress?scale=bogus"); code != http.StatusBadRequest {
		t.Errorf("bad progress scale = %d", code)
	}
}

// TestProgressStreamWhileRunning drives a campaign from one goroutine
// and watches the SSE stream concurrently: it must observe running
// events strictly increasing to done.
func TestProgressStreamWhileRunning(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, "")
	started := make(chan struct{})
	go func() {
		close(started)
		get(t, srv, "/v1/study?scale=quick")
	}()
	<-started

	code, body := get(t, srv, "/v1/progress?scale=quick")
	if code != http.StatusOK {
		t.Fatalf("progress = %d", code)
	}
	var states []ProgressEvent
	sc := bufio.NewScanner(strings.NewReader(string(body)))
	for sc.Scan() {
		line := strings.TrimPrefix(sc.Text(), "data: ")
		if line == sc.Text() || line == "" {
			continue
		}
		var ev ProgressEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("decoding %q: %v", line, err)
		}
		states = append(states, ev)
	}
	if len(states) == 0 {
		t.Fatal("no progress events")
	}
	last := states[len(states)-1]
	if last.State != "done" && last.State != "idle" {
		t.Errorf("final event = %+v, want a terminal state", last)
	}
	prev := -1
	for _, ev := range states {
		if ev.State == "running" {
			if ev.Done < prev {
				t.Errorf("progress went backwards: %d after %d", ev.Done, prev)
			}
			prev = ev.Done
		}
	}
}

func lastDataLine(t *testing.T, body []byte) string {
	t.Helper()
	var last string
	for _, line := range strings.Split(string(body), "\n") {
		if rest, ok := strings.CutPrefix(line, "data: "); ok {
			last = rest
		}
	}
	if last == "" {
		t.Fatalf("no SSE data lines in %q", body)
	}
	return last
}

func post(t *testing.T, srv *Server, path, body string) (int, []byte) {
	t.Helper()
	req := httptest.NewRequest("POST", path, strings.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// TestRunSessionEndpoint exercises the serving side of sharded
// execution: one session unit in, the completed session out, with the
// unit result cached in the store for re-routed or hedged duplicates.
func TestRunSessionEndpoint(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	unit := core.StudyUnit{ID: 1, Random: &core.SessionSpec{
		Samples:  2,
		Sampling: monitor.SampleSpec{Snapshots: 2, GapCycles: 2_000},
		Seed:     7,
	}}
	body, err := json.Marshal(unit)
	if err != nil {
		t.Fatal(err)
	}

	code, resp1 := post(t, srv, "/v1/run/session", string(body))
	if code != http.StatusOK {
		t.Fatalf("run/session = %d: %s", code, resp1)
	}
	var res core.StudyUnitResult
	if err := json.Unmarshal(resp1, &res); err != nil {
		t.Fatal(err)
	}
	if res.Random == nil || res.Triggered != nil || len(res.Random.Samples) != 2 {
		t.Fatalf("unit result = %+v, want a 2-sample random session", res)
	}
	want, err := core.RunStudyUnit(unit)
	if err != nil {
		t.Fatal(err)
	}
	wantJSON, _ := json.Marshal(want)
	if string(resp1) != string(wantJSON)+"\n" {
		t.Error("served unit result differs from local execution")
	}

	// The same unit again is served from the store, not recomputed.
	writes := srv.cache.Store().Stats().Writes
	code, resp2 := post(t, srv, "/v1/run/session", string(body))
	if code != http.StatusOK {
		t.Fatalf("second run/session = %d", code)
	}
	if string(resp2) != string(resp1) {
		t.Error("cached unit result differs from computed result")
	}
	st := srv.cache.Store().Stats()
	if st.Writes != writes || st.Hits == 0 {
		t.Errorf("store stats after duplicate unit = %+v, want a hit and no new write", st)
	}

	// Defective units are rejected before any compute.
	if code, _ := post(t, srv, "/v1/run/session", `{"id":3}`); code != http.StatusBadRequest {
		t.Errorf("spec-less unit = %d, want 400", code)
	}
	if code, _ := post(t, srv, "/v1/run/session", `{"id":`); code != http.StatusBadRequest {
		t.Errorf("malformed unit = %d, want 400", code)
	}
}

func TestRunSweepEndpoint(t *testing.T) {
	t.Parallel()
	srv := newTestServer(t, t.TempDir())
	code, body := post(t, srv, "/v1/run/sweep", `{"kind":"ce","value":2,"seed":17,"samples":1}`)
	if code != http.StatusOK {
		t.Fatalf("run/sweep = %d: %s", code, body)
	}
	var pt experiments.SweepPoint
	if err := json.Unmarshal(body, &pt); err != nil {
		t.Fatal(err)
	}
	if pt.Label != "CEs=2" {
		t.Errorf("sweep point = %+v", pt)
	}
	if code, _ := post(t, srv, "/v1/run/sweep", `{"kind":"bogus","value":1}`); code != http.StatusBadRequest {
		t.Errorf("unknown sweep kind = %d, want 400", code)
	}
	// Out-of-range values from the network are a 400, not a panic.
	for _, body := range []string{
		`{"kind":"ce","value":9,"seed":1,"samples":1}`,
		`{"kind":"ce","value":-1,"seed":1,"samples":1}`,
		`{"kind":"sched","value":10000,"seed":1,"samples":0}`,
	} {
		if code, resp := post(t, srv, "/v1/run/sweep", body); code != http.StatusBadRequest {
			t.Errorf("%s = %d (%s), want 400", body, code, resp)
		}
	}
}

// TestCLIAndServiceShareOneStore proves the -cache contract: a
// campaign computed through core.StudyAt-style CLI access is restored
// by a daemon pointed at the same directory, without recomputing.
func TestCLIAndServiceShareOneStore(t *testing.T) {
	t.Parallel()
	dir := t.TempDir()
	cfg := core.StudyConfig{
		RandomSessions:     1,
		HighConcSessions:   1,
		TransitionSessions: 1,
		SamplesPerSession:  2,
		Sampling:           monitor.SampleSpec{Snapshots: 2, GapCycles: 2_000},
		TriggeredSamples:   1,
		TriggeredBuffers:   1,
		TriggerBudget:      50_000,
		BaseSeed:           7,
	}

	// "CLI" side: a private cache writing to dir.
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	cliCache := core.NewStudyCache()
	cliCache.SetStore(st)
	cliCache.Get(cfg, 0)

	// "Daemon" side: fresh memory over the same directory.
	srv := newTestServer(t, dir)
	srv.cache.Get(cfg, 0)
	if stats := srv.cache.Stats(); stats.DiskHits != 1 || stats.Computes != 0 {
		t.Errorf("daemon stats = %+v, want the CLI-written campaign restored from disk", stats)
	}
}

// TestAdmitQueueBoundPastInt32 pins the 386 admission fix: the queue
// bound comparison happens in int64.  The previous int(n) narrowing
// wraps negative on 32-bit platforms once the waiting counter passes
// 2^31, silently bypassing MaxQueue; with the fix, a request arriving
// past the bound is shed regardless of how large the counter is.
func TestAdmitQueueBoundPastInt32(t *testing.T) {
	t.Parallel()
	srv := New(Config{Cache: core.NewStudyCache(), MaxInFlight: 1, MaxQueue: 2})

	// Occupy the only admission slot so admit must consult the queue.
	srv.sem <- struct{}{}

	// Wind the waiting counter past 2^31.  int(n) would be negative
	// here on GOARCH=386 and compare below MaxQueue.
	const wound = int64(1)<<31 + 7
	srv.waiting.Store(wound)

	req := httptest.NewRequest("GET", "/v1/study", nil)
	rec := httptest.NewRecorder()
	ok, why := srv.admit(rec, req, "study")
	if ok || why != "shed" {
		t.Fatalf("admit with waiting=%d: ok=%v why=%q, want a shed", wound, ok, why)
	}
	if rec.Code != http.StatusTooManyRequests {
		t.Errorf("shed status = %d, want %d", rec.Code, http.StatusTooManyRequests)
	}
	if got := srv.waiting.Load(); got != wound {
		t.Errorf("waiting counter = %d after shed, want %d (shed must undo its increment)", got, wound)
	}
}
